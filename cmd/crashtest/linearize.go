package main

// The -check linearize cycle: instead of the per-worker key-prefix
// condition, every operation of a mixed set workload is recorded with its
// invoke/response timestamps, and after each crash/recover epoch the
// history plus the probed recovered state must admit a durable
// linearization (buffered durable with the ε+β−1 completed-loss allowance
// for PREP-Buffered). -epochs chains crash/recover cycles on one machine:
// each epoch's probed state is the next epoch's initial state, so recovery
// bugs that only corrupt the second crash are still caught.

import (
	"prepuc/internal/linearize"
	"prepuc/internal/nvm"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
	"prepuc/internal/workload"
)

// linKeyRange keeps the probe (a Get per key after every epoch) cheap while
// leaving enough collision pressure to exercise overwrite paths.
const linKeyRange = 128

// linSpec is the recorded workload: the paper's mixed set mix at 30% reads.
func linSpec() workload.Spec {
	s := workload.SetSpec(30, linKeyRange)
	s.Prefill = 0
	return s
}

// runLinearizeCycle executes one boot → (workload-crash → recover → probe →
// check) × epochs cycle. The fault adversary, nested-crash arming and
// recovery retry loop match the prefix cycle exactly; only the workload
// (mixed ops instead of disjoint inserts) and the verdict differ.
func runLinearizeCycle(mk driverMaker, iter int, crashAt uint64) (checkBlock, cycleStats, bool) {
	d := mk()
	base := *seed + int64(iter)*101 + d.offset
	tp := topo()
	spec := linSpec()
	model := linearize.SetModel()
	allowance := int(*epsilon) + tp.ThreadsPerNode - 1

	bootSch := sim.New(base)
	sys := nvm.NewSystem(bootSch, nvm.Config{
		Costs: sim.UnitCosts(), BGFlushOneIn: 128, Seed: uint64(base) + 7,
		NoFlushElision: !*flushElide,
	})
	sys.SetFaultPolicy(cyclePolicy(iter, base))
	var err error
	bootSch.Spawn("boot", 0, 0, func(t *sim.Thread) { err = d.boot(t, sys) })
	bootSch.Run()
	if err != nil {
		panic(err)
	}

	cb := checkBlock{Mode: "linearize", Epochs: *epochs, OK: true, FailedEpoch: -1}
	var cs cycleStats
	cur := sys
	init := model.Empty()
	for epoch := 0; epoch < *epochs; epoch++ {
		sch := sim.New(base + 1 + int64(epoch)*23)
		sch.CrashAtEvent(crashAt + uint64(epoch)*7_777)
		cur.SetScheduler(sch)
		if d.spawnAux != nil {
			d.spawnAux()
		}
		rec := linearize.NewRecorder(*workers)
		for tid := 0; tid < *workers; tid++ {
			tid := tid
			sch.Spawn("worker", tp.NodeOf(tid), 0, func(t *sim.Thread) {
				defer func() {
					if r := recover(); r != nil && !sim.Crashed(r) {
						panic(r)
					}
				}()
				gen := workload.NewGen(spec, base+int64(epoch)*53+17, tid)
				for {
					op := gen.Next()
					rec.Exec(t, tid, op, func() uint64 { return d.exec(t, tid, op) })
				}
			})
		}
		sch.Run()

		for attempt := 0; ; attempt++ {
			recSch := sim.New(base + 2 + int64(epoch)*23 + int64(attempt)*17)
			if attempt < *nested {
				recSch.CrashAtEvent(nestedEvent(iter, attempt))
			}
			cur = cur.Recover(recSch)
			cs.RecoveryAttempts++
			var replayed uint64
			recSch.Spawn("recover", 0, 0, func(t *sim.Thread) {
				start := t.Clock()
				replayed, err = d.recov(t, cur)
				cs.RecoveryVirtualNS += t.Clock() - start
			})
			recSch.Run()
			if recSch.Frozen() {
				cs.Fault.NestedCrashes++
				continue
			}
			if err != nil {
				panic(err)
			}
			cs.Replayed += replayed
			break
		}

		recovered := map[uint64]uint64{}
		probeSch := sim.New(base + 900 + int64(epoch)*23)
		cur.SetScheduler(probeSch)
		probeSch.Spawn("probe", 0, 0, func(t *sim.Thread) {
			for k := uint64(0); k < linKeyRange; k++ {
				if v := d.exec(t, 0, uc.Get(k)); v != uc.NotFound {
					recovered[k] = v
				}
			}
		})
		probeSch.Run()

		opt := linearize.Options{}
		if d.buffered {
			opt = linearize.Options{Buffered: true, Allowance: allowance}
		}
		res := linearize.CheckEpoch(model, init, rec.Ops(), recovered, opt)
		cb.Ops += res.Ops
		cb.Partitions += res.Partitions
		cb.Lost += res.Lost
		if !res.OK {
			cb.OK = false
			cb.FailedEpoch = epoch
			cb.FailedPartition = res.FailedPartition
			cb.Reason = res.Reason
			break
		}
		init = recovered
	}

	ms := cur.Metrics().Snapshot()
	cs.Fault.Policy = policyLabel()
	cs.Fault.PendingDropped = ms.CrashLinesDropped
	cs.Fault.PendingPersisted = ms.CrashLinesPersisted
	cs.Fault.RecoveryRestarts = ms.RecoveryRestarts
	cs.Fault.ReplayHoles = ms.ReplayHoles
	return cb, cs, cb.OK
}
