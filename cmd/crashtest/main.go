// Command crashtest tortures the persistent universal constructions with
// randomly placed full-system crashes and verifies the correctness
// conditions after every recovery:
//
//	PREP-Durable   durable linearizability — no completed operation lost;
//	PREP-Buffered  buffered durable linearizability — the recovered state is
//	               a per-worker prefix, with at most ε+β−1 completed
//	               operations lost per crash;
//	CX-PUC         durable linearizability;
//	SOFT, ONLL     durable linearizability.
//
// Each iteration runs workers inserting per-worker key sequences, freezes
// the machine at a pseudo-random event (mid-operation: threads are unwound
// from their next memory access), recovers, and checks the recovered state
// against the host-side completion record. Background flushes and unfenced
// write-back resolution are enabled to make the crash states adversarial.
//
// v2 additions:
//
//   - -policy selects the fault adversary that decides which
//     flushed-but-unfenced lines survive each crash (dropall, persistall,
//     coinflip[=p], targeted[=k]; empty = the substrate's built-in fair
//     coin). Targeted advances its dropped-line index with the iteration,
//     so an -iterations run sweeps single-line-missing states.
//   - -nested N arms a crash INSIDE the recovery run itself for the first N
//     recovery attempts of every cycle, exercising re-entrant recovery; the
//     cycle then retries recovery until it completes.
//   - -crash-at / -nested-at pin the workload and nested crash points, so a
//     failure reproduces from its printed one-line repro.
//   - -bisect (on by default) shrinks a failing cycle's crash point by
//     binary search before printing the repro.
//   - -j N fans a system's cycles out across N workers (default GOMAXPROCS;
//     each cycle owns a private simulator); the document and the progress
//     stream are identical for every -j value. -cpuprofile/-memprofile
//     write standard pprof profiles.
//   - -check linearize swaps the per-worker prefix condition for a full
//     durable-linearizability check: every operation of a mixed set
//     workload is recorded with invoke/response timestamps
//     (internal/linearize) and each epoch's history plus the probed
//     recovered state must admit a legal linearization — buffered durable
//     with the ε+β−1 loss allowance for PREP-Buffered, strict for the
//     rest. -epochs N (default 2) chains N crash/recover cycles on one
//     machine, feeding each epoch's recovered state into the next. The
//     JSON document gains a per-cycle "check" block and a top-level
//     "checker" summary (schema stays prepuc-crash/v2; all prior fields
//     are unchanged).
//   - -sweep N strides N nested crash points across one recovery, cloning
//     the crashed machine copy-on-write per point instead of re-running the
//     workload; each system's document entry gains an additive "sweep"
//     block whose "timing" summary (wall_ms, clones, pages_copied) shows
//     what the sweep cost the host. -sweep-stride overrides the stride.
//
// Besides the correctness verdicts, every cycle measures how long recovery
// took in virtual time, how many log entries it replayed, and what the
// fault adversary did (lines dropped/persisted at crashes, recovery
// restarts, replay holes); with -format json the run emits one
// machine-readable document (schema "prepuc-crash/v2"; all v1 fields are
// unchanged) carrying those per-cycle records plus an aggregate "fault"
// block.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"prepuc/internal/core"
	"prepuc/internal/cxpuc"
	"prepuc/internal/fault"
	"prepuc/internal/history"
	"prepuc/internal/numa"
	"prepuc/internal/nvm"
	"prepuc/internal/onll"
	"prepuc/internal/par"
	"prepuc/internal/prof"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/soft"
	"prepuc/internal/uc"
)

var (
	iterations  = flag.Int("iterations", 20, "crash/recover cycles per system")
	workers     = flag.Int("workers", 8, "worker threads")
	epsilon     = flag.Uint64("epsilon", 64, "PREP flush boundary increment ε")
	logSize     = flag.Uint64("log", 256, "shared log entries")
	seed        = flag.Int64("seed", 1, "base seed")
	system      = flag.String("system", "all", "prep-durable, prep-buffered, cx, soft, onll or all")
	format      = flag.String("format", "table", "output format: table or json")
	outPath     = flag.String("o", "", "write results to this file (default stdout)")
	policySpec  = flag.String("policy", "", "fault policy for unfenced lines at crash: dropall, persistall, coinflip[=p], targeted[=k] (empty: built-in fair coin)")
	nested      = flag.Int("nested", 0, "nested crashes to inject inside recovery, per cycle")
	crashAtFlg  = flag.Uint64("crash-at", 0, "pin the workload crash to this event index (0: per-iteration pseudo-random)")
	nestedAt    = flag.Uint64("nested-at", 0, "pin nested crashes to this recovery event index (0: per-attempt pseudo-random)")
	bisect      = flag.Bool("bisect", true, "on failure, bisect the crash point before printing the repro")
	checkMode   = flag.String("check", "prefix", "correctness checker: prefix (per-worker key-prefix condition) or linearize (WGL durable-linearizability check of the recorded history)")
	epochs      = flag.Int("epochs", 2, "chained crash/recover epochs per iteration (linearize checker only)")
	jobs        = flag.Int("j", 0, "run up to N crash/recover cycles in parallel (0 = GOMAXPROCS)")
	sweepN      = flag.Int("sweep", 0, "per system, sweep N nested crash points inside one recovery via COW clones and report a timing block (0: off)")
	sweepStride = flag.Uint64("sweep-stride", 0, "event stride between swept nested crash points (0: recovery_events/(sweep+1))")
	cpuProfile  = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile  = flag.String("memprofile", "", "write a pprof heap profile to this file")
	flushElide  = flag.Bool("flush-elide", true, "FliT-style clean-line flush elision in the NVM substrate (false: reference no-elision cost model)")
)

// CrashSchema identifies the machine-readable crashtest output format.
const CrashSchema = "prepuc-crash/v2"

// recStats is what one recovery run measured.
type recStats struct {
	// RecoveryVirtualNS is the virtual time the (final, successful) recovery
	// procedure took.
	RecoveryVirtualNS uint64 `json:"recovery_virtual_ns"`
	// Replayed is the number of log entries recovery re-applied (zero for
	// systems whose recovery attaches to persisted state without replay).
	Replayed uint64 `json:"replayed"`
}

// faultStats is what the fault adversary did across one scope (a cycle, or
// the whole run).
type faultStats struct {
	Policy           string `json:"policy"`
	PendingDropped   uint64 `json:"pending_dropped"`
	PendingPersisted uint64 `json:"pending_persisted"`
	RecoveryRestarts uint64 `json:"recovery_restarts"`
	ReplayHoles      uint64 `json:"replay_holes"`
	NestedCrashes    uint64 `json:"nested_crashes"`
}

func (f *faultStats) add(g faultStats) {
	f.PendingDropped += g.PendingDropped
	f.PendingPersisted += g.PendingPersisted
	f.RecoveryRestarts += g.RecoveryRestarts
	f.ReplayHoles += g.ReplayHoles
	f.NestedCrashes += g.NestedCrashes
}

// checkBlock is one cycle's linearizability verdict (-check linearize
// only; additive to schema v2).
type checkBlock struct {
	// Mode is the checker that produced the verdict ("linearize").
	Mode string `json:"mode"`
	// Epochs is how many chained crash/recover epochs the cycle ran.
	Epochs int `json:"epochs"`
	// Ops and Partitions total the checked operations and WGL partitions
	// across the cycle's epochs.
	Ops        int `json:"ops"`
	Partitions int `json:"partitions"`
	// Lost is the total completed-operation loss the checker had to grant
	// (0 except under the buffered allowance).
	Lost int  `json:"lost"`
	OK   bool `json:"ok"`
	// FailedEpoch / FailedPartition / Reason locate the first failure
	// (FailedEpoch is -1 when OK).
	FailedEpoch     int    `json:"failed_epoch"`
	FailedPartition string `json:"failed_partition,omitempty"`
	Reason          string `json:"reason,omitempty"`
}

// checkerSummary aggregates the run's linearizability checking (-check
// linearize only; additive to schema v2).
type checkerSummary struct {
	Mode     string `json:"mode"`
	Epochs   int    `json:"epochs"`
	Cycles   int    `json:"cycles"`
	Ops      int    `json:"ops"`
	Lost     int    `json:"lost"`
	Failures int    `json:"failures"`
}

// crashCycle is one iteration's record in the JSON document. The first
// seven fields are unchanged from schema v1.
type crashCycle struct {
	Iteration int    `json:"iteration"`
	OK        bool   `json:"ok"`
	Completed uint64 `json:"completed_ops"`
	Recovered uint64 `json:"recovered_ops"`
	Lost      uint64 `json:"lost_completed"`
	recStats
	CrashAt          uint64        `json:"crash_at"`
	RecoveryAttempts int           `json:"recovery_attempts"`
	Fault            faultStats    `json:"fault"`
	Check            *checkBlock   `json:"check,omitempty"`
	Sharded          *shardedBlock `json:"sharded,omitempty"`
}

// crashSystemDoc groups one system's cycles, plus its nested-recovery sweep
// record when -sweep is on (additive; absent by default so the document is
// unchanged for existing consumers).
type crashSystemDoc struct {
	System string       `json:"system"`
	Cycles []crashCycle `json:"cycles"`
	Sweep  *sweepBlock  `json:"sweep,omitempty"`
}

// crashDoc is the whole run.
type crashDoc struct {
	Schema     string           `json:"schema"`
	Iterations int              `json:"iterations"`
	Workers    int              `json:"workers"`
	Epsilon    uint64           `json:"epsilon"`
	LogSize    uint64           `json:"log_size"`
	Seed       int64            `json:"seed"`
	Nested     int              `json:"nested"`
	Instances  int              `json:"instances,omitempty"`
	Fault      faultStats       `json:"fault"`
	Checker    *checkerSummary  `json:"checker,omitempty"`
	Systems    []crashSystemDoc `json:"systems"`
}

func main() {
	flag.Parse()
	if *format != "table" && *format != "json" {
		fmt.Fprintf(os.Stderr, "unknown format %q (want table or json)\n", *format)
		os.Exit(2)
	}
	if *checkMode != "prefix" && *checkMode != "linearize" {
		fmt.Fprintf(os.Stderr, "unknown checker %q (want prefix or linearize)\n", *checkMode)
		os.Exit(2)
	}
	if _, err := fault.Parse(*policySpec, 1); err != nil {
		fmt.Fprintf(os.Stderr, "crashtest: %v\n", err)
		os.Exit(2)
	}
	if *instancesFlg > 1 {
		switch {
		case *workers%*instancesFlg != 0:
			fmt.Fprintf(os.Stderr, "crashtest: -workers=%d not divisible by -instances=%d\n", *workers, *instancesFlg)
			os.Exit(2)
		case *checkMode != "prefix":
			fmt.Fprintln(os.Stderr, "crashtest: -instances > 1 supports only -check prefix (sharded linearizability lives in prepserve -check)")
			os.Exit(2)
		case *nested > 0 || *sweepN > 0:
			fmt.Fprintln(os.Stderr, "crashtest: -instances > 1 does not compose with -nested or -sweep")
			os.Exit(2)
		case *system != "all" && *system != "prep-durable" && *system != "prep-buffered":
			fmt.Fprintf(os.Stderr, "crashtest: -instances > 1 is PREP-only; -system=%s has no multi-instance region naming\n", *system)
			os.Exit(2)
		}
	}
	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crashtest: %v\n", err)
		os.Exit(1)
	}
	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crashtest: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	progress := out
	if *format == "json" {
		progress = os.Stderr
	}

	doc, failures := buildDoc(progress)
	// Stop profiling before the exit paths below; os.Exit skips defers.
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "crashtest: %v\n", err)
		os.Exit(1)
	}
	if *format == "json" {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "crashtest: %v\n", err)
			os.Exit(1)
		}
	}
	if failures > 0 {
		fmt.Fprintf(progress, "\n%d FAILURES\n", failures)
		os.Exit(1)
	}
	fmt.Fprintln(progress, "\nall crash/recover cycles satisfied their correctness condition")
}

// buildDoc runs every selected system's crash/recover cycles under the
// configured checker and returns the machine-readable document plus the
// failure count. It is the whole run minus flag validation and I/O setup,
// so tests can drive it deterministically.
func buildDoc(progress io.Writer) (crashDoc, int) {
	if *instancesFlg > 1 {
		return buildShardedDoc(progress)
	}
	doc := crashDoc{
		Schema: CrashSchema, Iterations: *iterations, Workers: *workers,
		Epsilon: *epsilon, LogSize: *logSize, Seed: *seed, Nested: *nested,
		Fault: faultStats{Policy: policyLabel()},
	}
	if *checkMode == "linearize" {
		doc.Checker = &checkerSummary{Mode: "linearize", Epochs: *epochs}
	}
	failures := 0
	// Each cycle builds its machine from scratch on a private scheduler, so
	// cycles of one system fan out across jobs workers; per-cycle records are
	// slotted by iteration index and the progress lines (including any
	// bisected failure repro, which re-runs cycles inside the worker) are
	// buffered and released in iteration order, making both the document and
	// the output identical for every -j value.
	run := func(mk driverMaker) {
		name := mk().name
		fmt.Fprintf(progress, "=== %s: %d crash/recover cycles ===\n", name, *iterations)
		sd := crashSystemDoc{System: name}
		cycles := make([]crashCycle, *iterations)
		var seqOut par.Seq
		par.Do(par.Jobs(*jobs), *iterations, func(i int) {
			crashAt := crashEvent(i)
			var buf bytes.Buffer
			if *checkMode == "linearize" {
				cycles[i] = runLinearizeIteration(&buf, mk, i, crashAt)
			} else {
				cycles[i] = runPrefixIteration(&buf, mk, i, crashAt)
			}
			seqOut.Done(i, func() { progress.Write(buf.Bytes()) })
		})
		if *sweepN > 0 {
			sd.Sweep = runSweep(progress, mk)
			failures += sd.Sweep.Failures
		}
		for _, c := range cycles {
			if !c.OK {
				failures++
			}
			doc.Fault.add(c.Fault)
			if doc.Checker != nil && c.Check != nil {
				doc.Checker.Cycles++
				doc.Checker.Ops += c.Check.Ops
				doc.Checker.Lost += c.Check.Lost
				if !c.Check.OK {
					doc.Checker.Failures++
				}
			}
			sd.Cycles = append(sd.Cycles, c)
		}
		doc.Systems = append(doc.Systems, sd)
	}
	if *system == "all" || *system == "prep-durable" {
		run(prepDriver(core.Durable))
	}
	if *system == "all" || *system == "prep-buffered" {
		run(prepDriver(core.Buffered))
	}
	if *system == "all" || *system == "cx" {
		run(cxDriver)
	}
	if *system == "all" || *system == "soft" {
		run(softDriver)
	}
	if *system == "all" || *system == "onll" {
		run(onllDriver)
	}
	return doc, failures
}

// runPrefixIteration is one -check prefix iteration: the v1 cycle plus its
// progress line and failure repro.
func runPrefixIteration(buf *bytes.Buffer, mk driverMaker, i int, crashAt uint64) crashCycle {
	rep, cs, ok := runCycle(mk, i, crashAt)
	status := "OK "
	if !ok {
		status = "FAIL"
	}
	fmt.Fprintf(buf, "  [%s] crash %2d @%-6d: %s replayed=%d attempts=%d nested=%d restarts=%d recovery=%.3fms(virtual)\n",
		status, i, crashAt, rep, cs.Replayed, cs.RecoveryAttempts,
		cs.Fault.NestedCrashes, cs.Fault.RecoveryRestarts,
		float64(cs.RecoveryVirtualNS)/1e6)
	if !ok {
		reportFailure(buf, mk, i, crashAt)
	}
	return crashCycle{
		Iteration: i, OK: ok,
		Completed: rep.Completed, Recovered: rep.Recovered,
		Lost: rep.LostCompleted, recStats: cs.recStats,
		CrashAt: crashAt, RecoveryAttempts: cs.RecoveryAttempts,
		Fault: cs.Fault,
	}
}

// runLinearizeIteration is one -check linearize iteration: -epochs chained
// crash/recover epochs of the recorded mixed set workload, each checked for
// (buffered) durable linearizability.
func runLinearizeIteration(buf *bytes.Buffer, mk driverMaker, i int, crashAt uint64) crashCycle {
	cb, cs, ok := runLinearizeCycle(mk, i, crashAt)
	status := "OK "
	if !ok {
		status = "FAIL"
	}
	fmt.Fprintf(buf, "  [%s] crash %2d @%-6d: linearize epochs=%d ops=%d partitions=%d lost=%d replayed=%d attempts=%d nested=%d restarts=%d recovery=%.3fms(virtual)\n",
		status, i, crashAt, cb.Epochs, cb.Ops, cb.Partitions, cb.Lost,
		cs.Replayed, cs.RecoveryAttempts,
		cs.Fault.NestedCrashes, cs.Fault.RecoveryRestarts,
		float64(cs.RecoveryVirtualNS)/1e6)
	if !ok {
		fmt.Fprintf(buf, "       check: epoch %d, %s: %s\n", cb.FailedEpoch, cb.FailedPartition, cb.Reason)
		reportFailure(buf, mk, i, crashAt)
	}
	return crashCycle{
		Iteration: i, OK: ok,
		Completed: uint64(cb.Ops), Lost: uint64(cb.Lost), recStats: cs.recStats,
		CrashAt: crashAt, RecoveryAttempts: cs.RecoveryAttempts,
		Fault: cs.Fault, Check: &cb,
	}
}

// cycleOK re-runs one iteration under the active checker and reports only
// the verdict (the bisection probe).
func cycleOK(mk driverMaker, iter int, crashAt uint64) bool {
	if *checkMode == "linearize" {
		_, _, ok := runLinearizeCycle(mk, iter, crashAt)
		return ok
	}
	_, _, ok := runCycle(mk, iter, crashAt)
	return ok
}

func topo() numa.Topology { return numa.Topology{Nodes: 2, ThreadsPerNode: (*workers + 1) / 2} }

// policyLabel names the adversary in output ("" would be ambiguous).
func policyLabel() string {
	if *policySpec == "" {
		return "default-coin"
	}
	return *policySpec
}

// cyclePolicy builds a fresh policy value for one cycle's crash lineage (a
// stateful policy must not be shared across machines). A bare "targeted"
// advances its starting drop index with the iteration so that successive
// cycles sweep different single-line-missing states.
func cyclePolicy(iter int, base int64) fault.Policy {
	spec := *policySpec
	if spec == "targeted" {
		spec = fmt.Sprintf("targeted=%d", iter)
	}
	p, err := fault.Parse(spec, uint64(base)+11)
	if err != nil {
		panic(err) // spec already validated in main
	}
	return p
}

// crashEvent picks the iteration's workload crash point.
func crashEvent(iter int) uint64 {
	if *crashAtFlg != 0 {
		return *crashAtFlg
	}
	return 20_000 + uint64(iter)*37_511%600_000
}

// nestedEvent picks the recovery event index at which nested crash attempt
// a of iteration iter fires. The auto placement stays low so it lands
// inside even short recovery runs; attempts shift so a retried recovery is
// not killed at the same point forever.
func nestedEvent(iter, attempt int) uint64 {
	if *nestedAt != 0 {
		return *nestedAt + uint64(attempt)*257
	}
	return 400 + (uint64(iter)*733+uint64(attempt)*311)%2600
}

// cycleStats is everything one cycle measured beyond the history report.
type cycleStats struct {
	recStats
	RecoveryAttempts int
	Fault            faultStats
}

// driver adapts one construction to the generic crash cycle. boot builds
// the engine on a fresh system and recov rebuilds it from a recovered
// system; exec/get dispatch to whichever engine is current.
type driver struct {
	name     string
	offset   int64 // per-system seed offset, disjoint across systems
	buffered bool  // buffered durable: gets the ε+β−1 loss allowance
	ok       func(history.Report) bool
	boot     func(t *sim.Thread, sys *nvm.System) error
	spawnAux func() // spawn auxiliary threads on the workload scheduler; may be nil
	recov    func(t *sim.Thread, recSys *nvm.System) (replayed uint64, err error)
	exec     func(t *sim.Thread, tid int, op uc.Op) uint64
	get      func(t *sim.Thread, key uint64) bool
}

// driverMaker builds a fresh driver; every cycle (and every bisection
// probe) gets its own, so no engine state leaks between machines.
type driverMaker func() *driver

// runCycle executes one boot → workload-crash → recover(×attempts) → probe
// cycle and checks the recovered state.
func runCycle(mk driverMaker, iter int, crashAt uint64) (history.Report, cycleStats, bool) {
	d := mk()
	base := *seed + int64(iter)*101 + d.offset
	tp := topo()

	bootSch := sim.New(base)
	sys := nvm.NewSystem(bootSch, nvm.Config{
		Costs: sim.UnitCosts(), BGFlushOneIn: 128, Seed: uint64(base) + 7,
		NoFlushElision: !*flushElide,
	})
	sys.SetFaultPolicy(cyclePolicy(iter, base))
	var err error
	bootSch.Spawn("boot", 0, 0, func(t *sim.Thread) { err = d.boot(t, sys) })
	bootSch.Run()
	if err != nil {
		panic(err)
	}

	sch := sim.New(base + 1)
	sch.CrashAtEvent(crashAt)
	sys.SetScheduler(sch)
	if d.spawnAux != nil {
		d.spawnAux()
	}
	completed := runInsertWorkers(sch, tp, *workers, d.exec)

	// Recovery loop: the first -nested attempts run with a crash armed
	// inside the recovery itself; recovery must be re-entrant, so the cycle
	// keeps recovering until an attempt completes.
	var cs cycleStats
	cur := sys
	for attempt := 0; ; attempt++ {
		recSch := sim.New(base + 2 + int64(attempt)*17)
		if attempt < *nested {
			recSch.CrashAtEvent(nestedEvent(iter, attempt))
		}
		cur = cur.Recover(recSch)
		cs.RecoveryAttempts++
		recSch.Spawn("recover", 0, 0, func(t *sim.Thread) {
			start := t.Clock()
			cs.Replayed, err = d.recov(t, cur)
			cs.RecoveryVirtualNS = t.Clock() - start
		})
		recSch.Run()
		if recSch.Frozen() {
			cs.Fault.NestedCrashes++
			continue
		}
		if err != nil {
			panic(err)
		}
		break
	}

	keys := probeKeys(cur, base+1000, completed, d.get)
	ms := cur.Metrics().Snapshot()
	cs.Fault.Policy = policyLabel()
	cs.Fault.PendingDropped = ms.CrashLinesDropped
	cs.Fault.PendingPersisted = ms.CrashLinesPersisted
	cs.Fault.RecoveryRestarts = ms.RecoveryRestarts
	cs.Fault.ReplayHoles = ms.ReplayHoles
	rep := history.Check(keys, completed)
	return rep, cs, d.ok(rep)
}

// reportFailure prints a one-line repro for the failing cycle, optionally
// bisecting the crash point down first. The printed command re-runs exactly
// this machine: iteration 0 with the adjusted -seed reproduces the failing
// iteration's seed stream, -crash-at pins the crash.
func reportFailure(w io.Writer, mk driverMaker, iter int, crashAt uint64) {
	at := crashAt
	if *bisect {
		at = bisectCrash(w, mk, iter, crashAt)
	}
	d := mk()
	args := []string{
		fmt.Sprintf("-system=%s", systemFlagOf(d.name)),
		"-iterations=1",
		fmt.Sprintf("-workers=%d", *workers),
		fmt.Sprintf("-epsilon=%d", *epsilon),
		fmt.Sprintf("-log=%d", *logSize),
		fmt.Sprintf("-seed=%d", *seed+int64(iter)*101),
		fmt.Sprintf("-crash-at=%d", at),
	}
	if *checkMode != "prefix" {
		args = append(args, fmt.Sprintf("-check=%s", *checkMode), fmt.Sprintf("-epochs=%d", *epochs))
	}
	if !*flushElide {
		args = append(args, "-flush-elide=false")
	}
	if *policySpec != "" {
		spec := *policySpec
		if spec == "targeted" {
			spec = fmt.Sprintf("targeted=%d", iter)
		}
		args = append(args, fmt.Sprintf("-policy=%s", spec))
	}
	if *nested > 0 {
		na := *nestedAt
		if na == 0 {
			na = nestedEvent(iter, 0)
		}
		args = append(args, fmt.Sprintf("-nested=%d", *nested), fmt.Sprintf("-nested-at=%d", na))
	}
	fmt.Fprintf(w, "       repro: crashtest %s\n", strings.Join(args, " "))
}

// bisectCrash binary-searches the smallest failing crash point below the
// observed failure, assuming (best-effort) that the failure boundary is
// monotone between a passing low point and the failing high point.
func bisectCrash(w io.Writer, mk driverMaker, iter int, failAt uint64) uint64 {
	lo, hi := uint64(64), failAt // crash during boot replay is uninteresting
	if !cycleOK(mk, iter, lo) {
		return lo
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if cycleOK(mk, iter, mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	fmt.Fprintf(w, "       bisect: crash point shrunk %d -> %d\n", failAt, hi)
	return hi
}

// systemFlagOf maps a display name back to its -system spelling.
func systemFlagOf(name string) string {
	switch name {
	case "PREP-Durable":
		return "prep-durable"
	case "PREP-Buffered":
		return "prep-buffered"
	case "CX-PUC":
		return "cx"
	case "SOFT":
		return "soft"
	case "ONLL":
		return "onll"
	}
	return name
}

// runInsertWorkers drives per-worker key insertions until the crash.
func runInsertWorkers(sch *sim.Scheduler, tp numa.Topology, n int,
	exec func(t *sim.Thread, tid int, op uc.Op) uint64) []uint64 {
	completed := make([]uint64, n)
	for tid := 0; tid < n; tid++ {
		tid := tid
		sch.Spawn("worker", tp.NodeOf(tid), 0, func(t *sim.Thread) {
			defer func() {
				if r := recover(); r != nil && !sim.Crashed(r) {
					panic(r)
				}
			}()
			for i := uint64(0); ; i++ {
				exec(t, tid, uc.Insert(history.Key(tid, i), i))
				completed[tid] = i + 1
			}
		})
	}
	sch.Run()
	return completed
}

// probeKeys reads back which keys survived recovery.
func probeKeys(recSys *nvm.System, seed int64, completed []uint64,
	get func(t *sim.Thread, key uint64) bool) [][]bool {
	keys := make([][]bool, len(completed))
	sch := sim.New(seed)
	recSys.SetScheduler(sch)
	sch.Spawn("probe", 0, 0, func(t *sim.Thread) {
		for tid := range completed {
			n := completed[tid] + 32
			keys[tid] = make([]bool, n)
			for i := uint64(0); i < n; i++ {
				keys[tid][i] = get(t, history.Key(tid, i))
			}
		}
	})
	sch.Run()
	return keys
}

func prepDriver(mode core.Mode) driverMaker {
	return func() *driver {
		name := "PREP-Durable"
		okFn := history.Report.DurableOK
		if mode == core.Buffered {
			name = "PREP-Buffered"
			beta := uint64(topo().ThreadsPerNode)
			okFn = func(r history.Report) bool { return r.BufferedOK(*epsilon, beta) }
		}
		cfg := core.Config{
			Mode: mode, Topology: topo(), Workers: *workers,
			LogSize: *logSize, Epsilon: *epsilon,
			Factory:   seq.HashMapFactory(256),
			Attacher:  seq.HashMapAttacher,
			HeapWords: 1 << 21,
		}
		d := &driver{name: name, offset: 0, buffered: mode == core.Buffered, ok: okFn}
		var cur *core.PREP
		d.spawnAux = func() { cur.SpawnPersistence(0) }
		d.boot = func(t *sim.Thread, sys *nvm.System) error {
			p, err := core.New(t, sys, cfg)
			if err != nil {
				return err
			}
			cur = p
			return nil
		}
		d.recov = func(t *sim.Thread, recSys *nvm.System) (uint64, error) {
			rec, report, err := core.Recover(t, recSys, cfg)
			if err != nil {
				return 0, err
			}
			cur = rec
			return report.Replayed, nil
		}
		d.exec = func(t *sim.Thread, tid int, op uc.Op) uint64 { return cur.Execute(t, tid, op) }
		d.get = func(t *sim.Thread, key uint64) bool {
			return cur.Execute(t, 0, uc.Get(key)) != uc.NotFound
		}
		return d
	}
}

func cxDriver() *driver {
	cfg := cxpuc.Config{
		Workers:   *workers,
		Factory:   seq.HashMapFactory(256),
		Attacher:  seq.HashMapAttacher,
		HeapWords: 1 << 20, QueueCapacity: 1 << 18, CapReplicas: 8,
	}
	d := &driver{name: "CX-PUC", offset: 50_000, ok: history.Report.DurableOK}
	var cur *cxpuc.CX
	d.boot = func(t *sim.Thread, sys *nvm.System) error {
		cx, err := cxpuc.New(t, sys, cfg)
		cur = cx
		return err
	}
	d.recov = func(t *sim.Thread, recSys *nvm.System) (uint64, error) {
		rec, err := cxpuc.Recover(t, recSys, cfg)
		if err != nil {
			return 0, err
		}
		cur = rec
		return 0, nil
	}
	d.exec = func(t *sim.Thread, tid int, op uc.Op) uint64 { return cur.Execute(t, tid, op) }
	d.get = func(t *sim.Thread, key uint64) bool {
		return cur.Execute(t, 0, uc.Get(key)) != uc.NotFound
	}
	return d
}

func softDriver() *driver {
	cfg := soft.Config{Buckets: 512, VolatileWords: 1 << 20, PersistentWords: 1 << 20}
	d := &driver{name: "SOFT", offset: 90_000, ok: history.Report.DurableOK}
	var cur *soft.Soft
	d.boot = func(t *sim.Thread, sys *nvm.System) error {
		cur = soft.New(t, sys, cfg)
		return nil
	}
	d.recov = func(t *sim.Thread, recSys *nvm.System) (uint64, error) {
		rec, replayed, err := soft.Recover(t, recSys, cfg)
		if err != nil {
			return 0, err
		}
		cur = rec
		return replayed, nil
	}
	d.exec = func(t *sim.Thread, tid int, op uc.Op) uint64 { return cur.Execute(t, tid, op) }
	d.get = func(t *sim.Thread, key uint64) bool { return cur.Get(t, key) != uc.NotFound }
	return d
}

func onllDriver() *driver {
	cfg := onll.Config{
		Workers: *workers, Factory: seq.HashMapFactory(256),
		HeapWords: 1 << 21, LogEntries: 1 << 13,
	}
	d := &driver{name: "ONLL", offset: 130_000, ok: history.Report.DurableOK}
	var cur *onll.ONLL
	d.boot = func(t *sim.Thread, sys *nvm.System) error {
		o, err := onll.New(t, sys, cfg)
		cur = o
		return err
	}
	d.recov = func(t *sim.Thread, recSys *nvm.System) (uint64, error) {
		rec, replayed, err := onll.Recover(t, recSys, cfg)
		if err != nil {
			return 0, err
		}
		cur = rec
		return replayed, nil
	}
	d.exec = func(t *sim.Thread, tid int, op uc.Op) uint64 { return cur.Execute(t, tid, op) }
	d.get = func(t *sim.Thread, key uint64) bool {
		return cur.Execute(t, 0, uc.Get(key)) != uc.NotFound
	}
	return d
}
