// Command crashtest tortures the persistent universal constructions with
// randomly placed full-system crashes and verifies the correctness
// conditions after every recovery:
//
//	PREP-Durable   durable linearizability — no completed operation lost;
//	PREP-Buffered  buffered durable linearizability — the recovered state is
//	               a per-worker prefix, with at most ε+β−1 completed
//	               operations lost per crash;
//	CX-PUC         durable linearizability.
//
// Each iteration runs workers inserting per-worker key sequences, freezes
// the machine at a pseudo-random event (mid-operation: threads are unwound
// from their next memory access), recovers, and checks the recovered state
// against the host-side completion record. Background flushes and unfenced
// write-back coin flips are enabled to make the crash states adversarial.
package main

import (
	"flag"
	"fmt"
	"os"

	"prepuc/internal/core"
	"prepuc/internal/cxpuc"
	"prepuc/internal/history"
	"prepuc/internal/numa"
	"prepuc/internal/nvm"
	"prepuc/internal/onll"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/soft"
	"prepuc/internal/uc"
)

var (
	iterations = flag.Int("iterations", 20, "crash/recover cycles per system")
	workers    = flag.Int("workers", 8, "worker threads")
	epsilon    = flag.Uint64("epsilon", 64, "PREP flush boundary increment ε")
	logSize    = flag.Uint64("log", 256, "shared log entries")
	seed       = flag.Int64("seed", 1, "base seed")
	system     = flag.String("system", "all", "prep-durable, prep-buffered, cx, soft, onll or all")
)

func main() {
	flag.Parse()
	failures := 0
	run := func(name string, fn func(iter int) (history.Report, bool)) {
		fmt.Printf("=== %s: %d crash/recover cycles ===\n", name, *iterations)
		for i := 0; i < *iterations; i++ {
			rep, ok := fn(i)
			status := "OK "
			if !ok {
				status = "FAIL"
				failures++
			}
			fmt.Printf("  [%s] crash %2d: %s\n", status, i, rep)
		}
	}
	if *system == "all" || *system == "prep-durable" {
		run("PREP-Durable", func(i int) (history.Report, bool) {
			rep := crashPrep(core.Durable, i)
			return rep, rep.DurableOK()
		})
	}
	if *system == "all" || *system == "prep-buffered" {
		beta := uint64(topo().ThreadsPerNode)
		run("PREP-Buffered", func(i int) (history.Report, bool) {
			rep := crashPrep(core.Buffered, i)
			return rep, rep.BufferedOK(*epsilon, beta)
		})
	}
	if *system == "all" || *system == "cx" {
		run("CX-PUC", func(i int) (history.Report, bool) {
			rep := crashCX(i)
			return rep, rep.DurableOK()
		})
	}
	if *system == "all" || *system == "soft" {
		run("SOFT", func(i int) (history.Report, bool) {
			rep := crashSOFT(i)
			return rep, rep.DurableOK()
		})
	}
	if *system == "all" || *system == "onll" {
		run("ONLL", func(i int) (history.Report, bool) {
			rep := crashONLL(i)
			return rep, rep.DurableOK()
		})
	}
	if failures > 0 {
		fmt.Printf("\n%d FAILURES\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall crash/recover cycles satisfied their correctness condition")
}

func topo() numa.Topology { return numa.Topology{Nodes: 2, ThreadsPerNode: (*workers + 1) / 2} }

// crashEvent picks the iteration's crash point.
func crashEvent(iter int) uint64 { return 20_000 + uint64(iter)*37_511%600_000 }

// runInsertWorkers drives per-worker key insertions until the crash.
func runInsertWorkers(sch *sim.Scheduler, tp numa.Topology, n int,
	exec func(t *sim.Thread, tid int, op uc.Op) uint64) []uint64 {
	completed := make([]uint64, n)
	for tid := 0; tid < n; tid++ {
		tid := tid
		sch.Spawn("worker", tp.NodeOf(tid), 0, func(t *sim.Thread) {
			defer func() {
				if r := recover(); r != nil && !sim.Crashed(r) {
					panic(r)
				}
			}()
			for i := uint64(0); ; i++ {
				exec(t, tid, uc.Op{Code: uc.OpInsert, A0: history.Key(tid, i), A1: i})
				completed[tid] = i + 1
			}
		})
	}
	sch.Run()
	return completed
}

// probeKeys reads back which keys survived recovery.
func probeKeys(recSys *nvm.System, seed int64, completed []uint64,
	get func(t *sim.Thread, key uint64) bool) [][]bool {
	keys := make([][]bool, len(completed))
	sch := sim.New(seed)
	recSys.SetScheduler(sch)
	sch.Spawn("probe", 0, 0, func(t *sim.Thread) {
		for tid := range completed {
			n := completed[tid] + 32
			keys[tid] = make([]bool, n)
			for i := uint64(0); i < n; i++ {
				keys[tid][i] = get(t, history.Key(tid, i))
			}
		}
	})
	sch.Run()
	return keys
}

func crashPrep(mode core.Mode, iter int) history.Report {
	tp := topo()
	base := *seed + int64(iter)*101
	cfg := core.Config{
		Mode: mode, Topology: tp, Workers: *workers,
		LogSize: *logSize, Epsilon: *epsilon,
		Factory:   seq.HashMapFactory(256),
		Attacher:  seq.HashMapAttacher,
		HeapWords: 1 << 21,
	}
	bootSch := sim.New(base)
	sys := nvm.NewSystem(bootSch, nvm.Config{
		Costs: sim.UnitCosts(), BGFlushOneIn: 128, Seed: uint64(base) + 7,
	})
	var p *core.PREP
	var err error
	bootSch.Spawn("boot", 0, 0, func(t *sim.Thread) { p, err = core.New(t, sys, cfg) })
	bootSch.Run()
	if err != nil {
		panic(err)
	}

	sch := sim.New(base + 1)
	sch.CrashAtEvent(crashEvent(iter))
	sys.SetScheduler(sch)
	p.SpawnPersistence(0)
	completed := runInsertWorkers(sch, tp, *workers, p.Execute)

	recSch := sim.New(base + 2)
	recSys := sys.Recover(recSch)
	var rec *core.PREP
	recSch.Spawn("recover", 0, 0, func(t *sim.Thread) {
		rec, _, err = core.Recover(t, recSys, cfg)
	})
	recSch.Run()
	if err != nil {
		panic(err)
	}
	keys := probeKeys(recSys, base+3, completed, func(t *sim.Thread, key uint64) bool {
		return rec.Execute(t, 0, uc.Op{Code: uc.OpGet, A0: key}) != uc.NotFound
	})
	return history.Check(keys, completed)
}

func crashSOFT(iter int) history.Report {
	tp := topo()
	base := *seed + int64(iter)*107 + 90_000
	cfg := soft.Config{Buckets: 512, VolatileWords: 1 << 20, PersistentWords: 1 << 20}
	bootSch := sim.New(base)
	sys := nvm.NewSystem(bootSch, nvm.Config{
		Costs: sim.UnitCosts(), BGFlushOneIn: 128, Seed: uint64(base) + 7,
	})
	var s *soft.Soft
	bootSch.Spawn("boot", 0, 0, func(t *sim.Thread) { s = soft.New(t, sys, cfg) })
	bootSch.Run()

	sch := sim.New(base + 1)
	sch.CrashAtEvent(crashEvent(iter))
	sys.SetScheduler(sch)
	completed := runInsertWorkers(sch, tp, *workers, s.Execute)

	recSch := sim.New(base + 2)
	recSys := sys.Recover(recSch)
	var rec *soft.Soft
	recSch.Spawn("recover", 0, 0, func(t *sim.Thread) {
		rec, _, _ = soft.Recover(t, recSys, cfg)
	})
	recSch.Run()
	keys := probeKeys(recSys, base+3, completed, func(t *sim.Thread, key uint64) bool {
		return rec.Get(t, key) != uc.NotFound
	})
	return history.Check(keys, completed)
}

func crashONLL(iter int) history.Report {
	tp := topo()
	base := *seed + int64(iter)*109 + 130_000
	cfg := onll.Config{
		Workers: *workers, Factory: seq.HashMapFactory(256),
		HeapWords: 1 << 21, LogEntries: 1 << 13,
	}
	bootSch := sim.New(base)
	sys := nvm.NewSystem(bootSch, nvm.Config{
		Costs: sim.UnitCosts(), BGFlushOneIn: 128, Seed: uint64(base) + 7,
	})
	var o *onll.ONLL
	var err error
	bootSch.Spawn("boot", 0, 0, func(t *sim.Thread) { o, err = onll.New(t, sys, cfg) })
	bootSch.Run()
	if err != nil {
		panic(err)
	}

	sch := sim.New(base + 1)
	sch.CrashAtEvent(crashEvent(iter))
	sys.SetScheduler(sch)
	completed := runInsertWorkers(sch, tp, *workers, o.Execute)

	recSch := sim.New(base + 2)
	recSys := sys.Recover(recSch)
	var rec *onll.ONLL
	recSch.Spawn("recover", 0, 0, func(t *sim.Thread) {
		rec, _, err = onll.Recover(t, recSys, cfg)
	})
	recSch.Run()
	if err != nil {
		panic(err)
	}
	keys := probeKeys(recSys, base+3, completed, func(t *sim.Thread, key uint64) bool {
		return rec.Execute(t, 0, uc.Op{Code: uc.OpGet, A0: key}) != uc.NotFound
	})
	return history.Check(keys, completed)
}

func crashCX(iter int) history.Report {
	tp := topo()
	base := *seed + int64(iter)*103 + 50_000
	cfg := cxpuc.Config{
		Workers:   *workers,
		Factory:   seq.HashMapFactory(256),
		Attacher:  seq.HashMapAttacher,
		HeapWords: 1 << 20, QueueCapacity: 1 << 18, CapReplicas: 8,
	}
	bootSch := sim.New(base)
	sys := nvm.NewSystem(bootSch, nvm.Config{
		Costs: sim.UnitCosts(), BGFlushOneIn: 128, Seed: uint64(base) + 7,
	})
	var cx *cxpuc.CX
	var err error
	bootSch.Spawn("boot", 0, 0, func(t *sim.Thread) { cx, err = cxpuc.New(t, sys, cfg) })
	bootSch.Run()
	if err != nil {
		panic(err)
	}

	sch := sim.New(base + 1)
	sch.CrashAtEvent(crashEvent(iter))
	sys.SetScheduler(sch)
	completed := runInsertWorkers(sch, tp, *workers, cx.Execute)

	recSch := sim.New(base + 2)
	recSys := sys.Recover(recSch)
	var rec *cxpuc.CX
	recSch.Spawn("recover", 0, 0, func(t *sim.Thread) {
		rec, err = cxpuc.Recover(t, recSys, cfg)
	})
	recSch.Run()
	if err != nil {
		panic(err)
	}
	keys := probeKeys(recSys, base+3, completed, func(t *sim.Thread, key uint64) bool {
		return rec.Execute(t, 0, uc.Op{Code: uc.OpGet, A0: key}) != uc.NotFound
	})
	return history.Check(keys, completed)
}
