// Command crashtest tortures the persistent universal constructions with
// randomly placed full-system crashes and verifies the correctness
// conditions after every recovery:
//
//	PREP-Durable   durable linearizability — no completed operation lost;
//	PREP-Buffered  buffered durable linearizability — the recovered state is
//	               a per-worker prefix, with at most ε+β−1 completed
//	               operations lost per crash;
//	CX-PUC         durable linearizability.
//
// Each iteration runs workers inserting per-worker key sequences, freezes
// the machine at a pseudo-random event (mid-operation: threads are unwound
// from their next memory access), recovers, and checks the recovered state
// against the host-side completion record. Background flushes and unfenced
// write-back coin flips are enabled to make the crash states adversarial.
//
// Besides the correctness verdicts, every cycle measures how long recovery
// took in virtual time and how many log entries it replayed; with
// -format json the run emits one machine-readable document (schema
// "prepuc-crash/v1") carrying those per-cycle records.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"prepuc/internal/core"
	"prepuc/internal/cxpuc"
	"prepuc/internal/history"
	"prepuc/internal/numa"
	"prepuc/internal/nvm"
	"prepuc/internal/onll"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/soft"
	"prepuc/internal/uc"
)

var (
	iterations = flag.Int("iterations", 20, "crash/recover cycles per system")
	workers    = flag.Int("workers", 8, "worker threads")
	epsilon    = flag.Uint64("epsilon", 64, "PREP flush boundary increment ε")
	logSize    = flag.Uint64("log", 256, "shared log entries")
	seed       = flag.Int64("seed", 1, "base seed")
	system     = flag.String("system", "all", "prep-durable, prep-buffered, cx, soft, onll or all")
	format     = flag.String("format", "table", "output format: table or json")
	outPath    = flag.String("o", "", "write results to this file (default stdout)")
)

// CrashSchema identifies the machine-readable crashtest output format.
const CrashSchema = "prepuc-crash/v1"

// recStats is what one recovery run measured.
type recStats struct {
	// RecoveryVirtualNS is the virtual time the recovery procedure took.
	RecoveryVirtualNS uint64 `json:"recovery_virtual_ns"`
	// Replayed is the number of log entries recovery re-applied (zero for
	// systems whose recovery attaches to persisted state without replay).
	Replayed uint64 `json:"replayed"`
}

// crashCycle is one iteration's record in the JSON document.
type crashCycle struct {
	Iteration int    `json:"iteration"`
	OK        bool   `json:"ok"`
	Completed uint64 `json:"completed_ops"`
	Recovered uint64 `json:"recovered_ops"`
	Lost      uint64 `json:"lost_completed"`
	recStats
}

// crashSystemDoc groups one system's cycles.
type crashSystemDoc struct {
	System string       `json:"system"`
	Cycles []crashCycle `json:"cycles"`
}

// crashDoc is the whole run.
type crashDoc struct {
	Schema     string           `json:"schema"`
	Iterations int              `json:"iterations"`
	Workers    int              `json:"workers"`
	Epsilon    uint64           `json:"epsilon"`
	LogSize    uint64           `json:"log_size"`
	Seed       int64            `json:"seed"`
	Systems    []crashSystemDoc `json:"systems"`
}

func main() {
	flag.Parse()
	if *format != "table" && *format != "json" {
		fmt.Fprintf(os.Stderr, "unknown format %q (want table or json)\n", *format)
		os.Exit(2)
	}
	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crashtest: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	progress := out
	if *format == "json" {
		progress = os.Stderr
	}

	doc := crashDoc{
		Schema: CrashSchema, Iterations: *iterations, Workers: *workers,
		Epsilon: *epsilon, LogSize: *logSize, Seed: *seed,
	}
	failures := 0
	run := func(name string, fn func(iter int) (history.Report, recStats, bool)) {
		fmt.Fprintf(progress, "=== %s: %d crash/recover cycles ===\n", name, *iterations)
		sd := crashSystemDoc{System: name}
		for i := 0; i < *iterations; i++ {
			rep, rs, ok := fn(i)
			status := "OK "
			if !ok {
				status = "FAIL"
				failures++
			}
			fmt.Fprintf(progress, "  [%s] crash %2d: %s replayed=%d recovery=%.3fms(virtual)\n",
				status, i, rep, rs.Replayed, float64(rs.RecoveryVirtualNS)/1e6)
			sd.Cycles = append(sd.Cycles, crashCycle{
				Iteration: i, OK: ok,
				Completed: rep.Completed, Recovered: rep.Recovered,
				Lost: rep.LostCompleted, recStats: rs,
			})
		}
		doc.Systems = append(doc.Systems, sd)
	}
	if *system == "all" || *system == "prep-durable" {
		run("PREP-Durable", func(i int) (history.Report, recStats, bool) {
			rep, rs := crashPrep(core.Durable, i)
			return rep, rs, rep.DurableOK()
		})
	}
	if *system == "all" || *system == "prep-buffered" {
		beta := uint64(topo().ThreadsPerNode)
		run("PREP-Buffered", func(i int) (history.Report, recStats, bool) {
			rep, rs := crashPrep(core.Buffered, i)
			return rep, rs, rep.BufferedOK(*epsilon, beta)
		})
	}
	if *system == "all" || *system == "cx" {
		run("CX-PUC", func(i int) (history.Report, recStats, bool) {
			rep, rs := crashCX(i)
			return rep, rs, rep.DurableOK()
		})
	}
	if *system == "all" || *system == "soft" {
		run("SOFT", func(i int) (history.Report, recStats, bool) {
			rep, rs := crashSOFT(i)
			return rep, rs, rep.DurableOK()
		})
	}
	if *system == "all" || *system == "onll" {
		run("ONLL", func(i int) (history.Report, recStats, bool) {
			rep, rs := crashONLL(i)
			return rep, rs, rep.DurableOK()
		})
	}
	if *format == "json" {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "crashtest: %v\n", err)
			os.Exit(1)
		}
	}
	if failures > 0 {
		fmt.Fprintf(progress, "\n%d FAILURES\n", failures)
		os.Exit(1)
	}
	fmt.Fprintln(progress, "\nall crash/recover cycles satisfied their correctness condition")
}

func topo() numa.Topology { return numa.Topology{Nodes: 2, ThreadsPerNode: (*workers + 1) / 2} }

// crashEvent picks the iteration's crash point.
func crashEvent(iter int) uint64 { return 20_000 + uint64(iter)*37_511%600_000 }

// runInsertWorkers drives per-worker key insertions until the crash.
func runInsertWorkers(sch *sim.Scheduler, tp numa.Topology, n int,
	exec func(t *sim.Thread, tid int, op uc.Op) uint64) []uint64 {
	completed := make([]uint64, n)
	for tid := 0; tid < n; tid++ {
		tid := tid
		sch.Spawn("worker", tp.NodeOf(tid), 0, func(t *sim.Thread) {
			defer func() {
				if r := recover(); r != nil && !sim.Crashed(r) {
					panic(r)
				}
			}()
			for i := uint64(0); ; i++ {
				exec(t, tid, uc.Op{Code: uc.OpInsert, A0: history.Key(tid, i), A1: i})
				completed[tid] = i + 1
			}
		})
	}
	sch.Run()
	return completed
}

// probeKeys reads back which keys survived recovery.
func probeKeys(recSys *nvm.System, seed int64, completed []uint64,
	get func(t *sim.Thread, key uint64) bool) [][]bool {
	keys := make([][]bool, len(completed))
	sch := sim.New(seed)
	recSys.SetScheduler(sch)
	sch.Spawn("probe", 0, 0, func(t *sim.Thread) {
		for tid := range completed {
			n := completed[tid] + 32
			keys[tid] = make([]bool, n)
			for i := uint64(0); i < n; i++ {
				keys[tid][i] = get(t, history.Key(tid, i))
			}
		}
	})
	sch.Run()
	return keys
}

func crashPrep(mode core.Mode, iter int) (history.Report, recStats) {
	tp := topo()
	base := *seed + int64(iter)*101
	cfg := core.Config{
		Mode: mode, Topology: tp, Workers: *workers,
		LogSize: *logSize, Epsilon: *epsilon,
		Factory:   seq.HashMapFactory(256),
		Attacher:  seq.HashMapAttacher,
		HeapWords: 1 << 21,
	}
	bootSch := sim.New(base)
	sys := nvm.NewSystem(bootSch, nvm.Config{
		Costs: sim.UnitCosts(), BGFlushOneIn: 128, Seed: uint64(base) + 7,
	})
	var p *core.PREP
	var err error
	bootSch.Spawn("boot", 0, 0, func(t *sim.Thread) { p, err = core.New(t, sys, cfg) })
	bootSch.Run()
	if err != nil {
		panic(err)
	}

	sch := sim.New(base + 1)
	sch.CrashAtEvent(crashEvent(iter))
	sys.SetScheduler(sch)
	p.SpawnPersistence(0)
	completed := runInsertWorkers(sch, tp, *workers, p.Execute)

	recSch := sim.New(base + 2)
	recSys := sys.Recover(recSch)
	var rec *core.PREP
	var report *core.RecoveryReport
	var rs recStats
	recSch.Spawn("recover", 0, 0, func(t *sim.Thread) {
		start := t.Clock()
		rec, report, err = core.Recover(t, recSys, cfg)
		rs.RecoveryVirtualNS = t.Clock() - start
	})
	recSch.Run()
	if err != nil {
		panic(err)
	}
	rs.Replayed = report.Replayed
	keys := probeKeys(recSys, base+3, completed, func(t *sim.Thread, key uint64) bool {
		return rec.Execute(t, 0, uc.Op{Code: uc.OpGet, A0: key}) != uc.NotFound
	})
	return history.Check(keys, completed), rs
}

func crashSOFT(iter int) (history.Report, recStats) {
	tp := topo()
	base := *seed + int64(iter)*107 + 90_000
	cfg := soft.Config{Buckets: 512, VolatileWords: 1 << 20, PersistentWords: 1 << 20}
	bootSch := sim.New(base)
	sys := nvm.NewSystem(bootSch, nvm.Config{
		Costs: sim.UnitCosts(), BGFlushOneIn: 128, Seed: uint64(base) + 7,
	})
	var s *soft.Soft
	bootSch.Spawn("boot", 0, 0, func(t *sim.Thread) { s = soft.New(t, sys, cfg) })
	bootSch.Run()

	sch := sim.New(base + 1)
	sch.CrashAtEvent(crashEvent(iter))
	sys.SetScheduler(sch)
	completed := runInsertWorkers(sch, tp, *workers, s.Execute)

	recSch := sim.New(base + 2)
	recSys := sys.Recover(recSch)
	var rec *soft.Soft
	var rs recStats
	recSch.Spawn("recover", 0, 0, func(t *sim.Thread) {
		start := t.Clock()
		rec, rs.Replayed, _ = soft.Recover(t, recSys, cfg)
		rs.RecoveryVirtualNS = t.Clock() - start
	})
	recSch.Run()
	keys := probeKeys(recSys, base+3, completed, func(t *sim.Thread, key uint64) bool {
		return rec.Get(t, key) != uc.NotFound
	})
	return history.Check(keys, completed), rs
}

func crashONLL(iter int) (history.Report, recStats) {
	tp := topo()
	base := *seed + int64(iter)*109 + 130_000
	cfg := onll.Config{
		Workers: *workers, Factory: seq.HashMapFactory(256),
		HeapWords: 1 << 21, LogEntries: 1 << 13,
	}
	bootSch := sim.New(base)
	sys := nvm.NewSystem(bootSch, nvm.Config{
		Costs: sim.UnitCosts(), BGFlushOneIn: 128, Seed: uint64(base) + 7,
	})
	var o *onll.ONLL
	var err error
	bootSch.Spawn("boot", 0, 0, func(t *sim.Thread) { o, err = onll.New(t, sys, cfg) })
	bootSch.Run()
	if err != nil {
		panic(err)
	}

	sch := sim.New(base + 1)
	sch.CrashAtEvent(crashEvent(iter))
	sys.SetScheduler(sch)
	completed := runInsertWorkers(sch, tp, *workers, o.Execute)

	recSch := sim.New(base + 2)
	recSys := sys.Recover(recSch)
	var rec *onll.ONLL
	var rs recStats
	recSch.Spawn("recover", 0, 0, func(t *sim.Thread) {
		start := t.Clock()
		rec, rs.Replayed, err = onll.Recover(t, recSys, cfg)
		rs.RecoveryVirtualNS = t.Clock() - start
	})
	recSch.Run()
	if err != nil {
		panic(err)
	}
	keys := probeKeys(recSys, base+3, completed, func(t *sim.Thread, key uint64) bool {
		return rec.Execute(t, 0, uc.Op{Code: uc.OpGet, A0: key}) != uc.NotFound
	})
	return history.Check(keys, completed), rs
}

func crashCX(iter int) (history.Report, recStats) {
	tp := topo()
	base := *seed + int64(iter)*103 + 50_000
	cfg := cxpuc.Config{
		Workers:   *workers,
		Factory:   seq.HashMapFactory(256),
		Attacher:  seq.HashMapAttacher,
		HeapWords: 1 << 20, QueueCapacity: 1 << 18, CapReplicas: 8,
	}
	bootSch := sim.New(base)
	sys := nvm.NewSystem(bootSch, nvm.Config{
		Costs: sim.UnitCosts(), BGFlushOneIn: 128, Seed: uint64(base) + 7,
	})
	var cx *cxpuc.CX
	var err error
	bootSch.Spawn("boot", 0, 0, func(t *sim.Thread) { cx, err = cxpuc.New(t, sys, cfg) })
	bootSch.Run()
	if err != nil {
		panic(err)
	}

	sch := sim.New(base + 1)
	sch.CrashAtEvent(crashEvent(iter))
	sys.SetScheduler(sch)
	completed := runInsertWorkers(sch, tp, *workers, cx.Execute)

	recSch := sim.New(base + 2)
	recSys := sys.Recover(recSch)
	var rec *cxpuc.CX
	var rs recStats
	recSch.Spawn("recover", 0, 0, func(t *sim.Thread) {
		start := t.Clock()
		rec, err = cxpuc.Recover(t, recSys, cfg)
		rs.RecoveryVirtualNS = t.Clock() - start
	})
	recSch.Run()
	if err != nil {
		panic(err)
	}
	keys := probeKeys(recSys, base+3, completed, func(t *sim.Thread, key uint64) bool {
		return rec.Execute(t, 0, uc.Op{Code: uc.OpGet, A0: key}) != uc.NotFound
	})
	return history.Check(keys, completed), rs
}
