package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// withFlags sets command-line flags for one subtest and restores them after.
func withFlags(t *testing.T, vals map[string]string) {
	t.Helper()
	for name, v := range vals {
		f := flag.Lookup(name)
		if f == nil {
			t.Fatalf("unknown flag %q", name)
		}
		old := f.Value.String()
		if err := flag.Set(name, v); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { flag.Set(name, old) })
	}
}

// TestSchemaGolden locks the prepuc-crash/v2 JSON document byte for byte:
// every field of a run is virtual-time or seed-derived, so a tiny
// deterministic run must reproduce its golden exactly. One golden covers
// the v1-compatible prefix checker, one the -check linearize additions
// (per-cycle "check" blocks and the top-level "checker" summary). Run
// `go test ./cmd/crashtest -run TestSchemaGolden -update` to regenerate
// after an intentional (additive-only) schema change.
func TestSchemaGolden(t *testing.T) {
	base := map[string]string{
		"iterations": "2", "workers": "2", "epsilon": "16", "log": "128",
		"seed": "42", "policy": "targeted", "j": "1", "nested": "1",
	}
	cases := []struct {
		name   string
		golden string
		extra  map[string]string
	}{
		{"prefix", "crash_v2_prefix.golden.json",
			map[string]string{"system": "prep-durable", "check": "prefix"}},
		{"linearize", "crash_v2_linearize.golden.json",
			map[string]string{"system": "prep-buffered", "check": "linearize", "epochs": "2"}},
		{"sharded", "crash_v2_sharded.golden.json",
			map[string]string{"system": "all", "check": "prefix",
				"instances": "2", "nested": "0"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			withFlags(t, base)
			withFlags(t, tc.extra)
			var progress bytes.Buffer
			doc, failures := buildDoc(&progress)
			if failures != 0 {
				t.Fatalf("deterministic run failed %d cycles:\n%s", failures, progress.String())
			}
			got, err := json.MarshalIndent(doc, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("schema document drifted from %s (regenerate with -update if intentional)\ngot:\n%s", path, got)
			}
		})
	}
}

// TestSweepBlock covers the -sweep addition by field assertion rather than
// golden bytes: timing.wall_ms is host wall-clock and nondeterministic, so
// the block can never appear in a golden document — which is also why the
// mode must stay off by default (the goldens above prove the default
// document carries no "sweep" key).
func TestSweepBlock(t *testing.T) {
	withFlags(t, map[string]string{
		"iterations": "1", "workers": "2", "epsilon": "16", "log": "128",
		"seed": "42", "policy": "dropall", "j": "1",
		"system": "prep-durable", "sweep": "4",
	})
	var progress bytes.Buffer
	doc, failures := buildDoc(&progress)
	if failures != 0 {
		t.Fatalf("deterministic sweep run failed %d cycles/points:\n%s", failures, progress.String())
	}
	sw := doc.Systems[0].Sweep
	if sw == nil {
		t.Fatal("-sweep=4 produced no sweep block")
	}
	if sw.Points != 4 {
		t.Errorf("sweep points = %d, want 4", sw.Points)
	}
	if sw.Stride == 0 || sw.RecoveryEvents == 0 {
		t.Errorf("sweep stride=%d recovery_events=%d, want both nonzero", sw.Stride, sw.RecoveryEvents)
	}
	if sw.NestedCrashes == 0 {
		t.Error("auto stride placed no point inside recovery")
	}
	// One clone per swept point plus the ceiling probe.
	if want := uint64(sw.Points + 1); sw.Timing.Clones != want {
		t.Errorf("timing.clones = %d, want %d", sw.Timing.Clones, want)
	}
	if sw.Timing.PagesCopied == 0 {
		t.Error("timing.pages_copied = 0, want > 0 (recovery writes must privatize pages)")
	}
	// Wire names: the block is additive to prepuc-crash/v2 and its field
	// spellings are contract.
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	swm := m["systems"].([]any)[0].(map[string]any)["sweep"].(map[string]any)
	for _, k := range []string{"points", "stride", "recovery_events", "nested_crashes", "failures", "timing"} {
		if _, ok := swm[k]; !ok {
			t.Errorf("sweep block is missing field %q", k)
		}
	}
	timing := swm["timing"].(map[string]any)
	for _, k := range []string{"wall_ms", "clones", "pages_copied"} {
		if _, ok := timing[k]; !ok {
			t.Errorf("timing summary is missing field %q", k)
		}
	}
}

// TestShardedCrashFields guards the -instances additions: the top-level
// instances field, the per-cycle "sharded" block with one verdict per
// co-resident instance, zero cross-instance foreign keys, rotating
// first-wave recovery subsets across iterations, and -j independence of
// the document bytes.
func TestShardedCrashFields(t *testing.T) {
	base := map[string]string{
		"iterations": "3", "workers": "4", "epsilon": "16", "log": "128",
		"seed": "42", "policy": "targeted", "j": "1", "nested": "0",
		"system": "prep-durable", "check": "prefix", "instances": "2",
	}
	withFlags(t, base)
	var progress bytes.Buffer
	doc, failures := buildDoc(&progress)
	if failures != 0 {
		t.Fatalf("sharded run failed %d cycles:\n%s", failures, progress.String())
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["instances"].(float64) != 2 {
		t.Fatalf("top-level instances = %v, want 2", m["instances"])
	}
	cycles := m["systems"].([]any)[0].(map[string]any)["cycles"].([]any)
	if len(cycles) != 3 {
		t.Fatalf("got %d cycles, want 3", len(cycles))
	}
	firsts := map[string]bool{}
	for i, c := range cycles {
		cm := c.(map[string]any)
		sb, ok := cm["sharded"].(map[string]any)
		if !ok {
			t.Fatalf("cycle %d has no sharded block", i)
		}
		for _, k := range []string{"instances", "recovered_first", "foreign_keys", "per_instance"} {
			if _, ok := sb[k]; !ok {
				t.Errorf("cycle %d sharded block is missing %q", i, k)
			}
		}
		if sb["foreign_keys"].(float64) != 0 {
			t.Errorf("cycle %d: %v foreign keys", i, sb["foreign_keys"])
		}
		first := sb["recovered_first"].([]any)
		if len(first) == 0 || len(first) >= 2 {
			t.Errorf("cycle %d: first wave %v is not a proper nonempty subset of 2", i, first)
		}
		firsts[fmt.Sprint(first)] = true
		per := sb["per_instance"].([]any)
		if len(per) != 2 {
			t.Fatalf("cycle %d: %d per-instance entries, want 2", i, len(per))
		}
		var sum float64
		for k, e := range per {
			em := e.(map[string]any)
			if em["instance"].(float64) != float64(k) || em["ok"] != true {
				t.Errorf("cycle %d instance %d: %v", i, k, em)
			}
			sum += em["completed_ops"].(float64)
		}
		if sum != cm["completed_ops"].(float64) {
			t.Errorf("cycle %d: per-instance completed sums to %v, cycle says %v",
				i, sum, cm["completed_ops"])
		}
	}
	if len(firsts) < 2 {
		t.Errorf("first-wave subset never rotated: %v", firsts)
	}
	// The document is a pure function of the flags at any -j.
	withFlags(t, map[string]string{"j": "4"})
	progress.Reset()
	doc2, failures := buildDoc(&progress)
	if failures != 0 {
		t.Fatalf("-j 4 run failed %d cycles", failures)
	}
	raw2, _ := json.Marshal(doc2)
	if !bytes.Equal(raw, raw2) {
		t.Errorf("-j 1 and -j 4 sharded documents disagree")
	}
}

// TestSchemaRequiredFields guards the stability contract independently of
// the golden bytes: the v1 field names and the v2/check additions must
// survive any refactor of the Go structs.
func TestSchemaRequiredFields(t *testing.T) {
	withFlags(t, map[string]string{
		"iterations": "1", "workers": "2", "epsilon": "16", "log": "128",
		"seed": "7", "policy": "targeted", "j": "1",
		"system": "prep-buffered", "check": "linearize", "epochs": "1",
	})
	var progress bytes.Buffer
	doc, failures := buildDoc(&progress)
	if failures != 0 {
		t.Fatalf("run failed:\n%s", progress.String())
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["schema"] != CrashSchema {
		t.Fatalf("schema = %v, want %v", m["schema"], CrashSchema)
	}
	for _, k := range []string{"iterations", "workers", "epsilon", "log_size", "seed", "nested", "fault", "checker", "systems"} {
		if _, ok := m[k]; !ok {
			t.Errorf("document is missing top-level field %q", k)
		}
	}
	systems := m["systems"].([]any)
	cycle := systems[0].(map[string]any)["cycles"].([]any)[0].(map[string]any)
	for _, k := range []string{"iteration", "ok", "completed_ops", "recovered_ops", "lost_completed",
		"recovery_virtual_ns", "replayed", "crash_at", "recovery_attempts", "fault", "check"} {
		if _, ok := cycle[k]; !ok {
			t.Errorf("cycle is missing field %q", k)
		}
	}
	check := cycle["check"].(map[string]any)
	for _, k := range []string{"mode", "epochs", "ops", "partitions", "lost", "ok", "failed_epoch"} {
		if _, ok := check[k]; !ok {
			t.Errorf("check block is missing field %q", k)
		}
	}
	checker := m["checker"].(map[string]any)
	for _, k := range []string{"mode", "epochs", "cycles", "ops", "lost", "failures"} {
		if _, ok := checker[k]; !ok {
			t.Errorf("checker summary is missing field %q", k)
		}
	}
}
