package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// withFlags sets command-line flags for one subtest and restores them after.
func withFlags(t *testing.T, vals map[string]string) {
	t.Helper()
	for name, v := range vals {
		f := flag.Lookup(name)
		if f == nil {
			t.Fatalf("unknown flag %q", name)
		}
		old := f.Value.String()
		if err := flag.Set(name, v); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { flag.Set(name, old) })
	}
}

// TestSchemaGolden locks the prepuc-crash/v2 JSON document byte for byte:
// every field of a run is virtual-time or seed-derived, so a tiny
// deterministic run must reproduce its golden exactly. One golden covers
// the v1-compatible prefix checker, one the -check linearize additions
// (per-cycle "check" blocks and the top-level "checker" summary). Run
// `go test ./cmd/crashtest -run TestSchemaGolden -update` to regenerate
// after an intentional (additive-only) schema change.
func TestSchemaGolden(t *testing.T) {
	base := map[string]string{
		"iterations": "2", "workers": "2", "epsilon": "16", "log": "128",
		"seed": "42", "policy": "targeted", "j": "1", "nested": "1",
	}
	cases := []struct {
		name   string
		golden string
		extra  map[string]string
	}{
		{"prefix", "crash_v2_prefix.golden.json",
			map[string]string{"system": "prep-durable", "check": "prefix"}},
		{"linearize", "crash_v2_linearize.golden.json",
			map[string]string{"system": "prep-buffered", "check": "linearize", "epochs": "2"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			withFlags(t, base)
			withFlags(t, tc.extra)
			var progress bytes.Buffer
			doc, failures := buildDoc(&progress)
			if failures != 0 {
				t.Fatalf("deterministic run failed %d cycles:\n%s", failures, progress.String())
			}
			got, err := json.MarshalIndent(doc, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("schema document drifted from %s (regenerate with -update if intentional)\ngot:\n%s", path, got)
			}
		})
	}
}

// TestSweepBlock covers the -sweep addition by field assertion rather than
// golden bytes: timing.wall_ms is host wall-clock and nondeterministic, so
// the block can never appear in a golden document — which is also why the
// mode must stay off by default (the goldens above prove the default
// document carries no "sweep" key).
func TestSweepBlock(t *testing.T) {
	withFlags(t, map[string]string{
		"iterations": "1", "workers": "2", "epsilon": "16", "log": "128",
		"seed": "42", "policy": "dropall", "j": "1",
		"system": "prep-durable", "sweep": "4",
	})
	var progress bytes.Buffer
	doc, failures := buildDoc(&progress)
	if failures != 0 {
		t.Fatalf("deterministic sweep run failed %d cycles/points:\n%s", failures, progress.String())
	}
	sw := doc.Systems[0].Sweep
	if sw == nil {
		t.Fatal("-sweep=4 produced no sweep block")
	}
	if sw.Points != 4 {
		t.Errorf("sweep points = %d, want 4", sw.Points)
	}
	if sw.Stride == 0 || sw.RecoveryEvents == 0 {
		t.Errorf("sweep stride=%d recovery_events=%d, want both nonzero", sw.Stride, sw.RecoveryEvents)
	}
	if sw.NestedCrashes == 0 {
		t.Error("auto stride placed no point inside recovery")
	}
	// One clone per swept point plus the ceiling probe.
	if want := uint64(sw.Points + 1); sw.Timing.Clones != want {
		t.Errorf("timing.clones = %d, want %d", sw.Timing.Clones, want)
	}
	if sw.Timing.PagesCopied == 0 {
		t.Error("timing.pages_copied = 0, want > 0 (recovery writes must privatize pages)")
	}
	// Wire names: the block is additive to prepuc-crash/v2 and its field
	// spellings are contract.
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	swm := m["systems"].([]any)[0].(map[string]any)["sweep"].(map[string]any)
	for _, k := range []string{"points", "stride", "recovery_events", "nested_crashes", "failures", "timing"} {
		if _, ok := swm[k]; !ok {
			t.Errorf("sweep block is missing field %q", k)
		}
	}
	timing := swm["timing"].(map[string]any)
	for _, k := range []string{"wall_ms", "clones", "pages_copied"} {
		if _, ok := timing[k]; !ok {
			t.Errorf("timing summary is missing field %q", k)
		}
	}
}

// TestSchemaRequiredFields guards the stability contract independently of
// the golden bytes: the v1 field names and the v2/check additions must
// survive any refactor of the Go structs.
func TestSchemaRequiredFields(t *testing.T) {
	withFlags(t, map[string]string{
		"iterations": "1", "workers": "2", "epsilon": "16", "log": "128",
		"seed": "7", "policy": "targeted", "j": "1",
		"system": "prep-buffered", "check": "linearize", "epochs": "1",
	})
	var progress bytes.Buffer
	doc, failures := buildDoc(&progress)
	if failures != 0 {
		t.Fatalf("run failed:\n%s", progress.String())
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["schema"] != CrashSchema {
		t.Fatalf("schema = %v, want %v", m["schema"], CrashSchema)
	}
	for _, k := range []string{"iterations", "workers", "epsilon", "log_size", "seed", "nested", "fault", "checker", "systems"} {
		if _, ok := m[k]; !ok {
			t.Errorf("document is missing top-level field %q", k)
		}
	}
	systems := m["systems"].([]any)
	cycle := systems[0].(map[string]any)["cycles"].([]any)[0].(map[string]any)
	for _, k := range []string{"iteration", "ok", "completed_ops", "recovered_ops", "lost_completed",
		"recovery_virtual_ns", "replayed", "crash_at", "recovery_attempts", "fault", "check"} {
		if _, ok := cycle[k]; !ok {
			t.Errorf("cycle is missing field %q", k)
		}
	}
	check := cycle["check"].(map[string]any)
	for _, k := range []string{"mode", "epochs", "ops", "partitions", "lost", "ok", "failed_epoch"} {
		if _, ok := check[k]; !ok {
			t.Errorf("check block is missing field %q", k)
		}
	}
	checker := m["checker"].(map[string]any)
	for _, k := range []string{"mode", "epochs", "cycles", "ops", "lost", "failures"} {
		if _, ok := checker[k]; !ok {
			t.Errorf("checker summary is missing field %q", k)
		}
	}
}
