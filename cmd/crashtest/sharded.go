package main

// The -instances N > 1 cycle: one machine hosts N co-resident PREP
// instances (Config.Instance region naming on a single nvm.System), each
// with its own log, replicas, generation lineage and descriptor table.
// Every cycle crashes the whole machine mid-workload, then recovers the
// instances in two waves — a rotating proper subset first, the rest on a
// later scheduler — so recovery-order independence is exercised across
// iterations. Each instance is verified against its own completion record
// under the active durable condition, and a cross-instance isolation scan
// (recovered Size minus the instance's own surviving keys) proves no
// instance's recovery resurrected another's writes: instance keys are
// tagged with the instance index, so any bleed is a nonzero foreign count.
//
// Sharded cycles are PREP-only (-system prep-durable / prep-buffered /
// all, which narrows to those two): the comparison systems have no
// multi-instance region naming. The JSON document is additive to schema
// prepuc-crash/v2 — a top-level "instances" field and a per-cycle
// "sharded" block, both omitted in single-instance runs so existing
// goldens and consumers are unchanged.

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"strings"

	"prepuc/internal/core"
	"prepuc/internal/history"
	"prepuc/internal/nvm"
	"prepuc/internal/par"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

var instancesFlg = flag.Int("instances", 1, "co-resident PREP instances per machine; >1 runs sharded crash cycles (PREP systems only, -check prefix)")

// shardedBlock is one cycle's multi-instance record (additive to schema
// v2; absent when -instances is 1).
type shardedBlock struct {
	Instances int `json:"instances"`
	// RecoveredFirst is the rotating proper subset of instances recovered
	// in the first wave; the rest recovered on a later scheduler.
	RecoveredFirst []int `json:"recovered_first"`
	// ForeignKeys counts keys found in some instance's recovered state
	// that were inserted into a different instance (must be 0).
	ForeignKeys uint64          `json:"foreign_keys"`
	PerInstance []instanceCycle `json:"per_instance"`
}

// instanceCycle is one instance's verdict within a sharded cycle.
type instanceCycle struct {
	Instance  int    `json:"instance"`
	Completed uint64 `json:"completed_ops"`
	Recovered uint64 `json:"recovered_ops"`
	Lost      uint64 `json:"lost_completed"`
	Replayed  uint64 `json:"replayed"`
	OK        bool   `json:"ok"`
}

// instKey tags a per-worker sequence key with its owning instance so
// cross-instance leakage is observable after recovery. history.Key packs
// (tid, i) into the low 48 bits; the tag sits above it.
func instKey(k, tid int, i uint64) uint64 {
	return uint64(k+1)<<56 | history.Key(tid, i)
}

// shardedCfg is instance k's engine config: the flat PREP config with a
// per-instance worker slice and the region namespace.
func shardedCfg(mode core.Mode, k, wp int) core.Config {
	return core.Config{
		Mode: mode, Topology: topo(), Workers: wp,
		LogSize: *logSize, Epsilon: *epsilon,
		Factory:  seq.HashMapFactory(256),
		Attacher: seq.HashMapAttacher,
		// Smaller than the flat driver's heap: N instances share the machine.
		HeapWords: 1 << 19,
		Instance:  fmt.Sprintf("s%d", k),
	}
}

// recoverFirst picks the cycle's first-wave recovery subset: a proper
// subset whose start and size both rotate with the iteration, so an
// -iterations run sweeps recovery orders.
func recoverFirst(iter, n int) []int {
	size := 1 + iter%(n-1)
	first := make([]int, 0, size)
	for j := 0; j < size; j++ {
		first = append(first, (iter+j)%n)
	}
	return first
}

// buildShardedDoc is buildDoc for -instances > 1: the same document shape
// with the per-cycle sharded additions, over the PREP systems only.
func buildShardedDoc(progress io.Writer) (crashDoc, int) {
	doc := crashDoc{
		Schema: CrashSchema, Iterations: *iterations, Workers: *workers,
		Epsilon: *epsilon, LogSize: *logSize, Seed: *seed, Nested: *nested,
		Instances: *instancesFlg,
		Fault:     faultStats{Policy: policyLabel()},
	}
	failures := 0
	run := func(mode core.Mode, name string) {
		fmt.Fprintf(progress, "=== %s: %d sharded crash/recover cycles (instances=%d) ===\n",
			name, *iterations, *instancesFlg)
		sd := crashSystemDoc{System: name}
		cycles := make([]crashCycle, *iterations)
		var seqOut par.Seq
		par.Do(par.Jobs(*jobs), *iterations, func(i int) {
			var buf bytes.Buffer
			cycles[i] = runShardedIteration(&buf, mode, i, crashEvent(i))
			seqOut.Done(i, func() { progress.Write(buf.Bytes()) })
		})
		for _, c := range cycles {
			if !c.OK {
				failures++
			}
			doc.Fault.add(c.Fault)
			sd.Cycles = append(sd.Cycles, c)
		}
		doc.Systems = append(doc.Systems, sd)
	}
	if *system == "all" || *system == "prep-durable" {
		run(core.Durable, "PREP-Durable")
	}
	if *system == "all" || *system == "prep-buffered" {
		run(core.Buffered, "PREP-Buffered")
	}
	return doc, failures
}

// runShardedIteration is one sharded iteration: the cycle plus its
// progress line and failure repro.
func runShardedIteration(buf *bytes.Buffer, mode core.Mode, iter int, crashAt uint64) crashCycle {
	cyc, ok := runShardedCycle(mode, iter, crashAt)
	status := "OK "
	if !ok {
		status = "FAIL"
	}
	sb := cyc.Sharded
	fmt.Fprintf(buf, "  [%s] crash %2d @%-6d: instances=%d first=%v completed=%d recovered=%d lost=%d foreign=%d replayed=%d recovery=%.3fms(virtual)\n",
		status, iter, crashAt, sb.Instances, sb.RecoveredFirst, cyc.Completed,
		cyc.Recovered, cyc.Lost, sb.ForeignKeys, cyc.Replayed,
		float64(cyc.RecoveryVirtualNS)/1e6)
	if !ok {
		name := "prep-durable"
		if mode == core.Buffered {
			name = "prep-buffered"
		}
		args := []string{
			fmt.Sprintf("-system=%s", name),
			fmt.Sprintf("-instances=%d", *instancesFlg),
			"-iterations=1",
			fmt.Sprintf("-workers=%d", *workers),
			fmt.Sprintf("-epsilon=%d", *epsilon),
			fmt.Sprintf("-log=%d", *logSize),
			fmt.Sprintf("-seed=%d", *seed+int64(iter)*101),
			fmt.Sprintf("-crash-at=%d", crashAt),
		}
		if !*flushElide {
			args = append(args, "-flush-elide=false")
		}
		if *policySpec != "" {
			spec := *policySpec
			if spec == "targeted" {
				spec = fmt.Sprintf("targeted=%d", iter)
			}
			args = append(args, fmt.Sprintf("-policy=%s", spec))
		}
		fmt.Fprintf(buf, "       repro: crashtest %s\n", strings.Join(args, " "))
	}
	return cyc
}

// runShardedCycle executes one boot(×N) → workload-crash → recover(first
// wave, then rest) → probe cycle and checks every instance plus the
// cross-instance isolation scan.
func runShardedCycle(mode core.Mode, iter int, crashAt uint64) (crashCycle, bool) {
	S := *instancesFlg
	wp := *workers / S
	var offset int64
	if mode == core.Buffered {
		offset = 50_000 // disjoint seed stream per system, as in the flat drivers
	}
	base := *seed + int64(iter)*101 + offset
	tp := topo()

	bootSch := sim.New(base)
	sys := nvm.NewSystem(bootSch, nvm.Config{
		Costs: sim.UnitCosts(), BGFlushOneIn: 128, Seed: uint64(base) + 7,
		NoFlushElision: !*flushElide,
	})
	sys.SetFaultPolicy(cyclePolicy(iter, base))
	engines := make([]*core.PREP, S)
	var err error
	bootSch.Spawn("boot", 0, 0, func(t *sim.Thread) {
		for k := 0; k < S; k++ {
			engines[k], err = core.New(t, sys, shardedCfg(mode, k, wp))
			if err != nil {
				return
			}
		}
	})
	bootSch.Run()
	if err != nil {
		panic(err)
	}

	// Workload: wp insert workers per instance, all interleaved on one
	// crash-armed scheduler with each instance's persistence thread live.
	sch := sim.New(base + 1)
	sch.CrashAtEvent(crashAt)
	sys.SetScheduler(sch)
	for k := 0; k < S; k++ {
		engines[k].SpawnPersistence(0)
	}
	completed := make([][]uint64, S)
	for k := 0; k < S; k++ {
		completed[k] = make([]uint64, wp)
		for tid := 0; tid < wp; tid++ {
			k, tid := k, tid
			sch.Spawn("worker", tp.NodeOf(k*wp+tid), 0, func(t *sim.Thread) {
				defer func() {
					if r := recover(); r != nil && !sim.Crashed(r) {
						panic(r)
					}
				}()
				for i := uint64(0); ; i++ {
					engines[k].Execute(t, tid, uc.Insert(instKey(k, tid, i), i))
					completed[k][tid] = i + 1
				}
			})
		}
	}
	sch.Run()

	// Two recovery waves over one crashed image: the rotating first-wave
	// subset, then the rest on a later scheduler. Each instance's recovery
	// reads only its own prefixed regions, so wave order must not matter;
	// the per-instance checks below catch any bleed.
	first := recoverFirst(iter, S)
	inFirst := make([]bool, S)
	for _, k := range first {
		inFirst[k] = true
	}
	var cs cycleStats
	cs.RecoveryAttempts = 1
	rec := make([]*core.PREP, S)
	replayed := make([]uint64, S)
	recSch := sim.New(base + 2)
	recovered := sys.Recover(recSch)
	recoverWave := func(waveSch *sim.Scheduler, pick func(k int) bool) {
		waveSch.Spawn("recover", 0, 0, func(t *sim.Thread) {
			start := t.Clock()
			for k := 0; k < S; k++ {
				if !pick(k) {
					continue
				}
				p, rp, e := core.Recover(t, recovered, shardedCfg(mode, k, wp))
				if e != nil {
					err = e
					return
				}
				rec[k] = p
				replayed[k] = rp.Replayed
			}
			cs.RecoveryVirtualNS += t.Clock() - start
		})
		waveSch.Run()
		if err != nil {
			panic(err)
		}
	}
	recoverWave(recSch, func(k int) bool { return inFirst[k] })
	lateSch := sim.New(base + 3)
	recovered.SetScheduler(lateSch)
	recoverWave(lateSch, func(k int) bool { return !inFirst[k] })

	// Probe: each instance's own key prefix (the per-worker condition),
	// plus its recovered Size for the isolation scan — any key beyond the
	// instance's own surviving set is a foreign resurrection.
	keys := make([][][]bool, S)
	sizes := make([]uint64, S)
	own := make([]uint64, S)
	probeSch := sim.New(base + 1000)
	recovered.SetScheduler(probeSch)
	probeSch.Spawn("probe", 0, 0, func(t *sim.Thread) {
		for k := 0; k < S; k++ {
			keys[k] = make([][]bool, wp)
			for tid := 0; tid < wp; tid++ {
				n := completed[k][tid] + 32
				keys[k][tid] = make([]bool, n)
				for i := uint64(0); i < n; i++ {
					present := rec[k].Execute(t, 0, uc.Get(instKey(k, tid, i))) != uc.NotFound
					keys[k][tid][i] = present
					if present {
						own[k]++
					}
				}
			}
			sizes[k] = rec[k].Execute(t, 0, uc.Size())
		}
	})
	probeSch.Run()

	ms := recovered.Metrics().Snapshot()
	cs.Fault.Policy = policyLabel()
	cs.Fault.PendingDropped = ms.CrashLinesDropped
	cs.Fault.PendingPersisted = ms.CrashLinesPersisted
	cs.Fault.RecoveryRestarts = ms.RecoveryRestarts
	cs.Fault.ReplayHoles = ms.ReplayHoles

	beta := uint64(tp.ThreadsPerNode)
	blk := &shardedBlock{Instances: S, RecoveredFirst: first}
	allOK := true
	var totC, totR, totL, totRep uint64
	for k := 0; k < S; k++ {
		r := history.Check(keys[k], completed[k])
		ok := r.DurableOK()
		if mode == core.Buffered {
			ok = r.BufferedOK(*epsilon, beta)
		}
		foreign := sizes[k] - own[k]
		blk.ForeignKeys += foreign
		if foreign != 0 {
			ok = false
		}
		allOK = allOK && ok
		blk.PerInstance = append(blk.PerInstance, instanceCycle{
			Instance: k, Completed: r.Completed, Recovered: r.Recovered,
			Lost: r.LostCompleted, Replayed: replayed[k], OK: ok,
		})
		totC += r.Completed
		totR += r.Recovered
		totL += r.LostCompleted
		totRep += replayed[k]
	}
	cyc := crashCycle{
		Iteration: iter, OK: allOK,
		Completed: totC, Recovered: totR, Lost: totL,
		recStats: recStats{RecoveryVirtualNS: cs.RecoveryVirtualNS, Replayed: totRep},
		CrashAt:  crashAt, RecoveryAttempts: cs.RecoveryAttempts,
		Fault:   cs.Fault,
		Sharded: blk,
	}
	return cyc, allOK
}
