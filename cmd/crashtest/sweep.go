package main

// The -sweep mode: a stride sweep of nested crash points INSIDE one
// recovery, materialized with COW clones instead of re-running the workload
// per point. One machine boots, runs the insert workload to a crash, and is
// materialized once; every swept point then clones that base (O(pages
// touched), thanks to the copy-on-write substrate), arms a crash at
// k*stride recovery events, recovers through the nested crash and checks
// the final state. The per-sweep timing summary (wall_ms, clones,
// pages_copied) lands in the prepuc-crash/v2 document as an additive
// "sweep" block; wall_ms is host time and therefore nondeterministic, which
// is why the mode is off by default and absent from the golden documents.

import (
	"fmt"
	"io"
	"time"

	"prepuc/internal/history"
	"prepuc/internal/nvm"
	"prepuc/internal/sim"
)

// sweepTiming is what the sweep cost on the host: wall-clock plus the COW
// substrate's work counters (clones taken, pages privatized on write).
type sweepTiming struct {
	WallMS      float64 `json:"wall_ms"`
	Clones      uint64  `json:"clones"`
	PagesCopied uint64  `json:"pages_copied"`
}

// sweepBlock is one system's nested-recovery sweep record (additive to
// schema v2; present only with -sweep > 0).
type sweepBlock struct {
	// Points is the number of swept nested crash points, Stride the event
	// distance between them, RecoveryEvents the unperturbed recovery's event
	// count (the sweep ceiling, measured on a clone).
	Points         int    `json:"points"`
	Stride         uint64 `json:"stride"`
	RecoveryEvents uint64 `json:"recovery_events"`
	// NestedCrashes counts the points whose armed crash actually landed
	// inside recovery; Failures the points whose final recovered state
	// violated the system's correctness condition.
	NestedCrashes int         `json:"nested_crashes"`
	Failures      int         `json:"failures"`
	Timing        sweepTiming `json:"timing"`
}

// runSweep executes one system's nested-recovery crash sweep. It runs
// serially: point k's verdict and the fault policy's decision stream are
// then functions of the seed alone, so everything in the block except
// wall_ms is deterministic.
func runSweep(progress io.Writer, mk driverMaker) *sweepBlock {
	start := time.Now()
	d := mk()
	base := *seed + 909 + d.offset
	tp := topo()

	bootSch := sim.New(base)
	sys := nvm.NewSystem(bootSch, nvm.Config{
		Costs: sim.UnitCosts(), BGFlushOneIn: 128, Seed: uint64(base) + 7,
		NoFlushElision: !*flushElide,
	})
	sys.SetFaultPolicy(cyclePolicy(0, base))
	var err error
	bootSch.Spawn("boot", 0, 0, func(t *sim.Thread) { err = d.boot(t, sys) })
	bootSch.Run()
	if err != nil {
		panic(err)
	}

	sch := sim.New(base + 1)
	sch.CrashAtEvent(crashEvent(0))
	sys.SetScheduler(sch)
	if d.spawnAux != nil {
		d.spawnAux()
	}
	completed := runInsertWorkers(sch, tp, *workers, d.exec)

	// Materialize the crashed machine once; it is the shared base every
	// swept point clones. Snapshot its substrate counters so the sweep
	// reports only its own clone/copy work.
	crashed := sys.Recover(sim.New(base + 2))
	before := crashed.Metrics().Snapshot()

	// Ceiling probe: recover a clone to completion with no crash armed to
	// learn how many events an undisturbed recovery takes.
	probeSch := sim.New(base + 3)
	probe := crashed.Clone(probeSch)
	pd := mk()
	probeSch.Spawn("recover", 0, 0, func(t *sim.Thread) { _, err = pd.recov(t, probe) })
	probeSch.Run()
	if err != nil {
		panic(err)
	}
	ceiling := probeSch.Events()

	sb := &sweepBlock{Points: *sweepN, RecoveryEvents: ceiling}
	sb.Stride = *sweepStride
	if sb.Stride == 0 {
		sb.Stride = ceiling / uint64(*sweepN+1)
		if sb.Stride == 0 {
			sb.Stride = 1
		}
	}
	var pagesCopied uint64
	for k := 1; k <= *sweepN; k++ {
		at := sb.Stride * uint64(k)
		trialSch := sim.New(base + 4 + int64(k)*13)
		trial := crashed.Clone(trialSch)
		trialSch.CrashAtEvent(at)
		td := mk()
		var terr error
		trialSch.Spawn("recover", 0, 0, func(t *sim.Thread) { _, terr = td.recov(t, trial) })
		trialSch.Run()
		cur := trial
		if trialSch.Frozen() {
			// The armed crash landed inside recovery: materialize it and
			// recover the re-crashed machine to completion.
			sb.NestedCrashes++
			afterSch := sim.New(base + 5 + int64(k)*13)
			cur = cur.Recover(afterSch)
			afterSch.Spawn("recover", 0, 0, func(t *sim.Thread) { _, terr = td.recov(t, cur) })
			afterSch.Run()
		}
		if terr != nil {
			panic(terr)
		}
		keys := probeKeys(cur, base+1000+int64(k)*13, completed, td.get)
		if !d.ok(history.Check(keys, completed)) {
			sb.Failures++
		}
		pagesCopied += cur.Metrics().Snapshot().PagesCopied - before.PagesCopied
	}

	after := crashed.Metrics().Snapshot()
	sb.Timing = sweepTiming{
		WallMS:      float64(time.Since(start).Microseconds()) / 1e3,
		Clones:      after.Clones - before.Clones,
		PagesCopied: pagesCopied + probe.Metrics().Snapshot().PagesCopied - before.PagesCopied,
	}
	fmt.Fprintf(progress, "  sweep: %d points stride=%d ceiling=%d nested=%d failures=%d clones=%d pages_copied=%d wall=%.1fms\n",
		sb.Points, sb.Stride, sb.RecoveryEvents, sb.NestedCrashes, sb.Failures,
		sb.Timing.Clones, sb.Timing.PagesCopied, sb.Timing.WallMS)
	return sb
}
