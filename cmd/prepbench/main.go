// Command prepbench regenerates the paper's evaluation figures.
//
// Usage:
//
//	prepbench [-scale tiny|small|paper] [-experiment fig2a,fig3|all] [-seed N]
//	          [-format table|json] [-o FILE] [-j N] [-list]
//	          [-cpuprofile FILE] [-memprofile FILE]
//
// Every experiment cell (algo × thread-count) owns an independent simulator,
// so -j N runs up to N cells on real CPUs in parallel (default GOMAXPROCS);
// results and progress are emitted in cell order, so the output is
// bit-identical for every -j value.
//
// With -format table (the default) each experiment prints one table: thread
// counts down the rows, one throughput column (ops per virtual second) per
// system, matching the series of the corresponding figure in the paper.
// With -format json the run emits one machine-readable document (schema
// "prepuc-bench/v1") whose per-point records carry the full metrics
// breakdown — flushes, fences, WBINVD invocations, coherence transfers,
// combiner batch statistics — of the measurement phase. Absolute numbers are
// simulator-relative; the shapes (who wins, by what factor, where the
// crossovers fall) are the reproduction target — see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"prepuc/internal/harness"
	"prepuc/internal/prof"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "prepbench: %v\n", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	scaleName := flag.String("scale", "small", "experiment scale: tiny, small or paper")
	expList := flag.String("experiment", "all", "comma-separated figure IDs, or 'all'")
	seed := flag.Int64("seed", 1, "simulation seed (runs are deterministic per seed)")
	format := flag.String("format", "table", "output format: table or json")
	outPath := flag.String("o", "", "write results to this file (default stdout)")
	jobs := flag.Int("j", 0, "run up to N experiment cells in parallel (0 = GOMAXPROCS)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	list := flag.Bool("list", false, "list available experiments and exit")
	flushElide := flag.Bool("flush-elide", true, "FliT-style clean-line flush elision in the NVM substrate (false: reference no-elision cost model for every cell)")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	var sc harness.Scale
	switch *scaleName {
	case "tiny":
		sc = harness.TinyScale()
	case "small":
		sc = harness.SmallScale()
	case "paper":
		sc = harness.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	sc.NoFlushElision = !*flushElide
	if *format != "table" && *format != "json" {
		fmt.Fprintf(os.Stderr, "unknown format %q (want table or json)\n", *format)
		os.Exit(2)
	}
	figs := harness.Catalog(sc)

	if *list {
		for _, id := range harness.FigureIDs(figs) {
			fmt.Printf("%-18s %s\n", id, figs[id].Title)
		}
		fmt.Printf("%-18s %s\n", "ext-recovery",
			"Recovery time: PREP-Durable ε windows vs ONLL full-history replay")
		return nil
	}

	var ids []string
	if *expList == "all" {
		ids = append(harness.FigureIDs(figs), "ext-recovery")
	} else {
		for _, id := range strings.Split(*expList, ",") {
			id = strings.TrimSpace(id)
			if _, ok := figs[id]; !ok && id != "ext-recovery" {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	// In table mode progress and tables go to the output; in json mode the
	// document is the output and progress lines go to stderr.
	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	progress := out
	if *format == "json" {
		progress = os.Stderr
	}

	doc := harness.NewBenchDoc(sc, *seed)
	fmt.Fprintf(progress, "PREP-UC evaluation — scale=%s seed=%d topology=%dx%d duration=%.1fms(virtual)\n",
		sc.Name, *seed, sc.Topology.Nodes, sc.Topology.ThreadsPerNode,
		float64(sc.DurationNS)/1e6)
	for _, id := range ids {
		start := time.Now()
		if id == "ext-recovery" {
			fmt.Fprintf(progress, "\n=== ext-recovery: recovery time, checkpointing (PREP) vs log replay (ONLL) ===\n")
			points, err := harness.RunRecoveryExperiment(sc, *seed, *jobs, progress)
			if err != nil {
				return err
			}
			doc.AddRecovery(points)
			fmt.Fprintf(progress, "(wall time %.1fs)\n", time.Since(start).Seconds())
			continue
		}
		fig := figs[id]
		fmt.Fprintf(progress, "\n=== %s: %s ===\n", fig.ID, fig.Title)
		points, err := harness.RunFigure(fig, sc, *seed, *jobs, progress)
		if err != nil {
			return err
		}
		doc.AddFigure(fig, points)
		if *format == "table" {
			harness.WriteTable(out, fig, points)
		}
		fmt.Fprintf(progress, "(wall time %.1fs)\n", time.Since(start).Seconds())
	}
	if *format == "json" {
		return doc.WriteBenchJSON(out)
	}
	return nil
}
