// Command prepbench regenerates the paper's evaluation figures.
//
// Usage:
//
//	prepbench [-scale tiny|small|paper] [-experiment fig2a,fig3|all] [-seed N] [-list]
//
// Each experiment prints one table: thread counts down the rows, one
// throughput column (ops per virtual second) per system, matching the
// series of the corresponding figure in the paper. Absolute numbers are
// simulator-relative; the shapes (who wins, by what factor, where the
// crossovers fall) are the reproduction target — see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"prepuc/internal/harness"
)

func main() {
	scaleName := flag.String("scale", "small", "experiment scale: tiny, small or paper")
	expList := flag.String("experiment", "all", "comma-separated figure IDs, or 'all'")
	seed := flag.Int64("seed", 1, "simulation seed (runs are deterministic per seed)")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	var sc harness.Scale
	switch *scaleName {
	case "tiny":
		sc = harness.TinyScale()
	case "small":
		sc = harness.SmallScale()
	case "paper":
		sc = harness.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	figs := harness.Catalog(sc)

	if *list {
		for _, id := range harness.FigureIDs(figs) {
			fmt.Printf("%-18s %s\n", id, figs[id].Title)
		}
		fmt.Printf("%-18s %s\n", "ext-recovery",
			"Recovery time: PREP-Durable ε windows vs ONLL full-history replay")
		return
	}

	var ids []string
	if *expList == "all" {
		ids = append(harness.FigureIDs(figs), "ext-recovery")
	} else {
		for _, id := range strings.Split(*expList, ",") {
			id = strings.TrimSpace(id)
			if _, ok := figs[id]; !ok && id != "ext-recovery" {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	fmt.Printf("PREP-UC evaluation — scale=%s seed=%d topology=%dx%d duration=%.1fms(virtual)\n",
		sc.Name, *seed, sc.Topology.Nodes, sc.Topology.ThreadsPerNode,
		float64(sc.DurationNS)/1e6)
	for _, id := range ids {
		start := time.Now()
		if id == "ext-recovery" {
			fmt.Printf("\n=== ext-recovery: recovery time, checkpointing (PREP) vs log replay (ONLL) ===\n")
			harness.RunRecoveryExperiment(sc, *seed, os.Stdout)
			fmt.Printf("(wall time %.1fs)\n", time.Since(start).Seconds())
			continue
		}
		fig := figs[id]
		fmt.Printf("\n=== %s: %s ===\n", fig.ID, fig.Title)
		points := harness.RunFigure(fig, sc, *seed, os.Stdout)
		harness.WriteTable(os.Stdout, fig, points)
		fmt.Printf("(wall time %.1fs)\n", time.Since(start).Seconds())
	}
}
