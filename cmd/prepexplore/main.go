// Command prepexplore runs the bounded exhaustive explorer
// (internal/explore): for a tiny configuration it model-checks the recovery
// protocol over every schedule (up to DPOR equivalence), every crash-point
// equivalence class, every persist-subset materialization, and — at -depth 2
// — every persist-relevant crash inside recovery itself, adjudicating
// durable linearizability at every leaf.
//
// The default mode explores and emits one JSON document (schema
// "prepuc-explore/v1") on stdout or -o; the exit status is 1 when any leaf
// produced a counterexample, so CI can gate on it directly. Every
// counterexample carries a one-line repro invocation built from the
// -repro-* flags:
//
//	prepexplore -system=prep-durable -workers=2 -ops=3 -seed=1 \
//	    -repro-schedule=1,0,0 -repro-crash-at=63 -repro-mask=0x2
//
// replays exactly that leaf (forced dispatch prefix, crash event threshold,
// persist mask, optional nested pair) and re-adjudicates it, printing the
// verdict. -repro-schedule= (present but empty) names the root
// minimum-clock schedule. The report is deterministic: invariant across
// hosts, runs, and -j, except the wall_ms field (dropped with -strip-wall).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"prepuc/internal/explore"
)

var (
	system   = flag.String("system", "prep-durable", "construction: prep-durable, prep-buffered, cx, soft, onll")
	workers  = flag.Int("workers", 2, "concurrent workload clients")
	ops      = flag.Int("ops", 3, "workload operations, round-robined over the workers")
	prefill  = flag.Int("prefill", 0, "keys inserted (and checkpointed) before the explored epoch")
	seed     = flag.Int64("seed", 1, "base seed for every scheduler and substrate RNG")
	jobs     = flag.Int("j", 0, "host-side parallelism (0 = GOMAXPROCS; the report is invariant under -j)")
	depth    = flag.Int("depth", 1, "crash nesting depth: 2 also crashes each recovery at its persist-relevant points")
	detect   = flag.Bool("detect", false, "detectable execution: adjudicate crash-cut ops as InFlightCommitted/InFlightNever (PREP only)")
	bg       = flag.Uint64("bg", 0, "background write-back rate: one-in-N chance per NVM store (0: off)")
	rounds   = flag.Int("rounds", 0, "DPOR delay bound in BFS rounds (0: default 3; negative: unbounded)")
	maskBits = flag.Int("mask-bits", 0, "exhaustive persist-mask limit: crashes with <= N pending lines branch over all 2^N subsets (0: default 10)")
	maxSched = flag.Int("max-schedules", 0, "schedule-prefix execution budget (0: default 4096)")
	maxCrash = flag.Int("max-crash-points", 0, "sample at most N crash classes per schedule (0: all)")
	maxNest  = flag.Int("max-nested", 0, "sample at most N nested crash points per mask branch (0: depth-2 default 2; negative: all)")
	maxEvts  = flag.Uint64("max-events", 0, "per-execution event guard against non-quiescing runs (0: default 5e6)")
	nodes    = flag.Int("nodes", 0, "NUMA nodes (0: default 2)")
	eps      = flag.Uint64("eps", 0, "PREP flush boundary increment ε (0: default 8)")
	logSize  = flag.Uint64("log", 0, "shared log entries (0: default 64)")
	heap     = flag.Uint64("heap", 0, "persistent heap words (0: default 4096)")
	outPath  = flag.String("o", "", "write the JSON report to this file (default stdout)")
	stripW   = flag.Bool("strip-wall", false, "zero the wall_ms field (byte-identical reports across runs)")

	reproSched  = flag.String("repro-schedule", "", "repro mode: forced dispatch prefix, comma-separated thread ids (empty value = root schedule)")
	reproCrash  = flag.Uint64("repro-crash-at", 0, "repro mode: crash event threshold (0: crash-free completion leaf)")
	reproMask   = flag.String("repro-mask", "0x0", "repro mode: persist mask, hex")
	reproNestAt = flag.Uint64("repro-nested-at", 0, "repro mode: nested crash event inside recovery (0: depth 1)")
	reproNestMk = flag.String("repro-nested-mask", "0x0", "repro mode: nested persist mask, hex")
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prepexplore:", err)
	os.Exit(2)
}

func config() explore.Config {
	return explore.Config{
		System: *system, Workers: *workers, Ops: *ops, PrefillN: *prefill,
		Seed: *seed, Jobs: *jobs, Depth: *depth, Detect: *detect,
		BGFlushOneIn: *bg, MaskBits: *maskBits, MaxRounds: *rounds,
		MaxSchedules: *maxSched, MaxCrashPoints: *maxCrash, MaxNested: *maxNest,
		MaxRunEvents: *maxEvts,
		Nodes:        *nodes, Epsilon: *eps, LogSize: *logSize, HeapWords: *heap,
	}
}

func parseMask(s string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 64)
}

func parseSchedule(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad -repro-schedule entry %q: %v", p, err)
		}
		out[i] = v
	}
	return out, nil
}

func main() {
	flag.Parse()

	// Repro mode is selected by the presence of any -repro-* flag, so an
	// empty -repro-schedule= (the root schedule) still counts.
	repro := false
	flag.Visit(func(f *flag.Flag) {
		if strings.HasPrefix(f.Name, "repro-") {
			repro = true
		}
	})
	if repro {
		runRepro()
		return
	}

	rep, err := explore.Run(config())
	if err != nil {
		fatal(err)
	}
	if *stripW {
		rep.WallMS = 0
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	b = append(b, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, b, 0o644); err != nil {
			fatal(err)
		}
	} else {
		os.Stdout.Write(b)
	}
	if n := len(rep.Counterexamples); n > 0 {
		fmt.Fprintf(os.Stderr, "prepexplore: %d counterexamples; first repro:\n  %s\n",
			n, rep.Counterexamples[0].Repro)
		os.Exit(1)
	}
}

func runRepro() {
	sched, err := parseSchedule(*reproSched)
	if err != nil {
		fatal(err)
	}
	mask, err := parseMask(*reproMask)
	if err != nil {
		fatal(err)
	}
	nmask, err := parseMask(*reproNestMk)
	if err != nil {
		fatal(err)
	}
	lf := explore.Leaf{Schedule: sched, CrashAt: *reproCrash, Mask: mask,
		NestedAt: *reproNestAt, NestedMask: nmask}
	res, ce, err := explore.Repro(config(), lf)
	if err != nil {
		fatal(err)
	}
	if res.OK {
		fmt.Println("leaf OK: the replayed state admits a durable linearization")
		return
	}
	b, err := json.MarshalIndent(ce, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Printf("leaf FAILED: %s\n%s\n", ce.Reason, b)
	os.Exit(1)
}
