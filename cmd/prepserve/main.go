// Command prepserve drives the asynchronous service front-end
// (internal/svc) with an open-loop heavy-traffic workload
// (internal/openloop): a large simulated client population submits
// operations on a Poisson arrival process with Zipfian key skew, periodic
// bursts and think times, and every completion's latency is measured from
// its arrival stamp — free of coordinated omission, so server stalls are
// charged to the percentiles.
//
// Two scenarios:
//
//	steady  the full schedule runs against an undisturbed machine;
//	crash   the whole machine freezes mid-load at -crash-at, the
//	        construction recovers, the (volatile) submission rings are
//	        rebuilt, and the load resumes: in-flight operations are
//	        retried, the outage window's arrivals are charged their full
//	        queueing delay, and the report carries the recovery stall
//	        window and backlog drain time.
//
// Both scenarios run against all five recoverable constructions
// (PREP-Durable, PREP-Buffered, CX-PUC, SOFT, ONLL) unless -system narrows
// the set. -format json emits one machine-readable document with schema
// "prepuc-serve/v1".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"prepuc/internal/harness"
	"prepuc/internal/openloop"
)

var (
	scenario = flag.String("scenario", "steady", "steady or crash")
	system   = flag.String("system", "all", "prep-durable, prep-buffered, cx, soft, onll or all")
	shards   = flag.Int("shards", 4, "submission rings / consumer threads (engine workers)")
	ringSize = flag.Uint64("ring", 1024, "per-shard ring capacity (power of two)")
	maxBatch = flag.Int("batch", 32, "max operations per combiner handoff")
	batched  = flag.Bool("batched", true, "use the batched submission path where the engine supports it")
	epsilon  = flag.Uint64("epsilon", 64, "PREP flush boundary increment ε")

	clients  = flag.Int("clients", 200_000, "simulated client population")
	keys     = flag.Uint64("keys", 1<<16, "key-space size")
	skew     = flag.Float64("skew", 1.2, "Zipf key-skew exponent (≤1: uniform)")
	readPct  = flag.Int("readpct", 80, "percentage of read-only operations")
	rate     = flag.Float64("rate", 4e6, "aggregate arrival rate (ops per virtual second)")
	duration = flag.Uint64("duration", 3_000_000, "schedule horizon in virtual ns")
	thinkNS  = flag.Uint64("think", 50_000, "per-client think time in virtual ns")
	burstEv  = flag.Uint64("burst-every", 500_000, "burst period in virtual ns (0: no bursts)")
	burstLen = flag.Uint64("burst-len", 100_000, "burst length in virtual ns")
	burstX   = flag.Float64("burst-factor", 4, "arrival-rate multiplier inside bursts")

	crashAt = flag.Uint64("crash-at", 0, "crash instant in virtual ns (0: duration/2; crash scenario only)")
	seed    = flag.Int64("seed", 1, "base seed")
	format  = flag.String("format", "table", "output format: table or json")
	outPath = flag.String("o", "", "write results to this file (default stdout)")
)

// ServeSchema identifies the machine-readable prepserve output format.
const ServeSchema = "prepuc-serve/v1"

// serveDoc is the whole run.
type serveDoc struct {
	Schema            string                 `json:"schema"`
	Scenario          string                 `json:"scenario"`
	Clients           int                    `json:"clients"`
	RateOpsPerSec     float64                `json:"rate_ops_per_sec"`
	DurationVirtualNS uint64                 `json:"duration_virtual_ns"`
	Shards            int                    `json:"shards"`
	Batched           bool                   `json:"batched"`
	Seed              int64                  `json:"seed"`
	Systems           []*harness.ServeResult `json:"systems"`
}

// systemFlag maps driver names to their -system spellings.
func systemFlag(name string) string {
	return strings.ReplaceAll(strings.ToLower(name), "-puc", "")
}

func main() {
	flag.Parse()
	if *scenario != "steady" && *scenario != "crash" {
		fmt.Fprintf(os.Stderr, "prepserve: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	cfg := harness.ServeConfig{
		Shards:   *shards,
		RingSize: *ringSize,
		MaxBatch: *maxBatch,
		Batched:  *batched,
		Seed:     *seed,
		Open: openloop.Config{
			Clients:      *clients,
			Keys:         *keys,
			KeySkew:      *skew,
			ReadPct:      *readPct,
			Rate:         *rate,
			DurationNS:   *duration,
			ThinkNS:      *thinkNS,
			BurstEveryNS: *burstEv,
			BurstLenNS:   *burstLen,
			BurstFactor:  *burstX,
			Seed:         *seed + 1000,
		},
	}
	if *scenario == "crash" {
		cfg.CrashAtNS = *crashAt
		if cfg.CrashAtNS == 0 {
			cfg.CrashAtNS = *duration / 2
		}
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prepserve: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	doc := serveDoc{
		Schema: ServeSchema, Scenario: *scenario,
		Clients: *clients, RateOpsPerSec: *rate,
		DurationVirtualNS: *duration, Shards: *shards,
		Batched: *batched, Seed: *seed,
	}
	for _, d := range harness.ServeDrivers(*shards, *epsilon) {
		if *system != "all" && *system != systemFlag(d.Name) {
			continue
		}
		res, err := harness.RunServe(d, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prepserve: %v\n", err)
			os.Exit(1)
		}
		doc.Systems = append(doc.Systems, res)
		if *format != "json" {
			printResult(out, res)
		}
	}
	if len(doc.Systems) == 0 {
		fmt.Fprintf(os.Stderr, "prepserve: unknown system %q\n", *system)
		os.Exit(2)
	}
	if *format == "json" {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "prepserve: %v\n", err)
			os.Exit(1)
		}
	}
}

// printResult renders one system's record as the human table.
func printResult(w io.Writer, r *harness.ServeResult) {
	fmt.Fprintf(w, "%-14s  %9.0f ops/s  completed=%d/%d\n",
		r.System, r.OpsPerSec, r.Completed, r.Submitted)
	fmt.Fprintf(w, "  latency(ns): p50=%d p99=%d p999=%d max=%d mean=%.0f\n",
		r.Latency.P50, r.Latency.P99, r.Latency.P999, r.Latency.Max, r.Latency.Mean)
	if r.Ring.Batches > 0 {
		fmt.Fprintf(w, "  ring: submits=%d full_stalls=%d mean_batch=%.1f\n",
			r.Ring.Submits, r.Ring.FullStalls, r.Ring.MeanBatch)
	} else {
		fmt.Fprintf(w, "  ring: submits=%d full_stalls=%d (per-op path)\n",
			r.Ring.Submits, r.Ring.FullStalls)
	}
	if c := r.Crash; c != nil {
		fmt.Fprintf(w, "  crash@%d: recovery=%.3fms(virtual) replayed=%d stall=%.3fms lost_inflight=%d backlog=%d drain=%.3fms\n",
			c.CrashAtNS, float64(c.RecoveryVirtualNS)/1e6, c.Replayed,
			float64(c.StallNS)/1e6, c.LostInflight, c.BacklogAtResume,
			float64(c.BacklogDrainNS)/1e6)
	}
}
