// Command prepserve drives the asynchronous service front-end
// (internal/svc) with an open-loop heavy-traffic workload
// (internal/openloop): a large simulated client population submits
// operations on a Poisson arrival process with Zipfian key skew, periodic
// bursts and think times, and every completion's latency is measured from
// its arrival stamp — free of coordinated omission, so server stalls are
// charged to the percentiles.
//
// Two scenarios:
//
//	steady  the full schedule runs against an undisturbed machine;
//	crash   the whole machine freezes mid-load at -crash-at, the
//	        construction recovers, the (volatile) submission rings are
//	        rebuilt, and the load resumes: the in-flight window is
//	        deduplicated against recovery's operation descriptors where
//	        the construction records them (the PREP drivers — exactly
//	        once, duplicates_applied measured) and blindly retried where
//	        it does not, the outage window's arrivals are charged their
//	        full queueing delay, and the report carries the recovery
//	        stall window, backlog drain time and resolution tallies.
//
// -policy arms a fault adversary over the crash cut's unfenced lines
// (persistall, dropall, coinflip[=p], targeted[=n]). -check verifies every
// run for (buffered) durable linearizability — the crash epoch's in-flight
// operations held to their descriptor verdicts — and the process exits
// nonzero if any system fails it.
//
// Both scenarios run against all five recoverable constructions
// (PREP-Durable, PREP-Buffered, CX-PUC, SOFT, ONLL) unless -system narrows
// the set. -format json emits one machine-readable document with schema
// "prepuc-serve/v3".
//
// -instances S > 1 selects the sharded multi-instance deployment: S fully
// independent machines (each with its own scheduler, NVM, engine, rings and
// recovery state machine) behind a -route key-space router, with -shards
// read as the TOTAL worker count split evenly across machines — so a
// scaling sweep holds total resources fixed while varying S. The steady
// sharded matrix adds PREP-Volatile (the scaling headline's engine); the
// crash scenario crashes the -crash-shards subset of machines (default:
// all) while survivors keep serving, each crashed shard recovering
// independently. -j caps host-side parallelism across machine sub-runs;
// the document is byte-identical at any -j.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"prepuc/internal/harness"
	"prepuc/internal/openloop"
	"prepuc/internal/shard"
)

var (
	scenario = flag.String("scenario", "steady", "steady or crash")
	system   = flag.String("system", "all", "prep-durable, prep-buffered, cx, soft, onll or all")
	shards   = flag.Int("shards", 4, "submission rings / consumer threads (engine workers)")
	ringSize = flag.Uint64("ring", 1024, "per-shard ring capacity (power of two)")
	maxBatch = flag.Int("batch", 32, "max operations per combiner handoff")
	batched  = flag.Bool("batched", true, "use the batched submission path where the engine supports it")
	epsilon  = flag.Uint64("epsilon", 64, "PREP flush boundary increment ε")

	clients  = flag.Int("clients", 200_000, "simulated client population")
	keys     = flag.Uint64("keys", 1<<16, "key-space size")
	skew     = flag.Float64("skew", 1.2, "Zipf key-skew exponent (≤1: uniform)")
	readPct  = flag.Int("readpct", 80, "percentage of read-only operations")
	rate     = flag.Float64("rate", 4e6, "aggregate arrival rate (ops per virtual second)")
	duration = flag.Uint64("duration", 3_000_000, "schedule horizon in virtual ns")
	thinkNS  = flag.Uint64("think", 50_000, "per-client think time in virtual ns")
	burstEv  = flag.Uint64("burst-every", 500_000, "burst period in virtual ns (0: no bursts)")
	burstLen = flag.Uint64("burst-len", 100_000, "burst length in virtual ns")
	burstX   = flag.Float64("burst-factor", 4, "arrival-rate multiplier inside bursts")

	crashAt = flag.Uint64("crash-at", 0, "crash instant in virtual ns (0: duration/2; crash scenario only)")
	policy  = flag.String("policy", "", "crash-time fault adversary: persistall, dropall, coinflip[=p], targeted[=n] (empty: fence-accurate default)")
	check   = flag.Bool("check", false, "verify each run for (buffered) durable linearizability; exit 1 on failure")
	seed    = flag.Int64("seed", 1, "base seed")
	format  = flag.String("format", "table", "output format: table or json")
	outPath = flag.String("o", "", "write results to this file (default stdout)")

	instances   = flag.Int("instances", 1, "independent machines behind the router (>1: sharded mode; -shards becomes the total worker count)")
	route       = flag.String("route", "hash", "sharded key partitioning policy: hash or range")
	crashShards = flag.String("crash-shards", "", "comma-separated machine indices to crash in sharded crash runs (empty: all)")
	jobs        = flag.Int("j", 1, "host workers for sharded machine sub-runs (0: all cores; never affects output bytes)")
)

// ServeSchema identifies the machine-readable prepserve output format.
// v2 added the detectable-recovery fields to crash blocks (detectable,
// in_flight_resolved, resolved_completed, duplicates_applied), the fault
// "policy" and the optional per-system "check" block. v3 adds the sharded
// multi-instance mode: top-level instances/route/crash_shards, and — on
// sharded documents only — per-system route, imbalance, shards breakdowns
// and the composition verdict. Single-instance documents keep the v2 shape
// apart from the schema string; all v3 additions are strictly additive.
const ServeSchema = "prepuc-serve/v3"

// serveDoc is the whole run.
type serveDoc struct {
	Schema            string                 `json:"schema"`
	Scenario          string                 `json:"scenario"`
	Clients           int                    `json:"clients"`
	RateOpsPerSec     float64                `json:"rate_ops_per_sec"`
	DurationVirtualNS uint64                 `json:"duration_virtual_ns"`
	Shards            int                    `json:"shards"`
	Batched           bool                   `json:"batched"`
	Seed              int64                  `json:"seed"`
	Policy            string                 `json:"policy"`
	Check             bool                   `json:"check"`
	Instances         int                    `json:"instances,omitempty"`
	Route             string                 `json:"route,omitempty"`
	CrashShards       []int                  `json:"crash_shards,omitempty"`
	Systems           []*harness.ServeResult `json:"systems"`
}

// systemFlag maps driver names to their -system spellings.
func systemFlag(name string) string {
	return strings.ReplaceAll(strings.ToLower(name), "-puc", "")
}

// buildDoc runs the selected scenario against the selected systems under the
// current flag values and returns the document plus the number of failed
// linearize checks. Table-format rendering goes to progress as the runs
// finish.
func buildDoc(progress io.Writer) (*serveDoc, int, error) {
	cfg := harness.ServeConfig{
		Shards:   *shards,
		RingSize: *ringSize,
		MaxBatch: *maxBatch,
		Batched:  *batched,
		Seed:     *seed,
		Policy:   *policy,
		Check:    *check,
		Open: openloop.Config{
			Clients:      *clients,
			Keys:         *keys,
			KeySkew:      *skew,
			ReadPct:      *readPct,
			Rate:         *rate,
			DurationNS:   *duration,
			ThinkNS:      *thinkNS,
			BurstEveryNS: *burstEv,
			BurstLenNS:   *burstLen,
			BurstFactor:  *burstX,
			Seed:         *seed + 1000,
		},
	}
	if *scenario == "crash" {
		cfg.CrashAtNS = *crashAt
		if cfg.CrashAtNS == 0 {
			cfg.CrashAtNS = *duration / 2
		}
	}

	doc := &serveDoc{
		Schema: ServeSchema, Scenario: *scenario,
		Clients: *clients, RateOpsPerSec: *rate,
		DurationVirtualNS: *duration, Shards: *shards,
		Batched: *batched, Seed: *seed,
		Policy: *policy, Check: *check,
	}
	failures := 0
	if *instances > 1 {
		return buildShardedDoc(progress, doc, cfg)
	}
	drivers := harness.ServeDrivers(*shards, *epsilon)
	// Steady-only systems (PREP-Volatile, the no-persistence ceiling) are
	// available on explicit selection so single-machine baselines for the
	// sharded scaling sweeps come from the same binary; "all" keeps the
	// recoverable five for document stability.
	if *scenario == "steady" && *system != "all" {
		for _, sys := range harness.ServeSystems() {
			if sys.SteadyOnly && *system == systemFlag(sys.Name) {
				drivers = append([]*harness.ServeDriver{sys.New(*shards, *epsilon)}, drivers...)
			}
		}
	}
	for _, d := range drivers {
		if *system != "all" && *system != systemFlag(d.Name) {
			continue
		}
		res, err := harness.RunServe(d, cfg)
		if err != nil {
			return nil, failures, err
		}
		doc.Systems = append(doc.Systems, res)
		if res.Check != nil && !res.Check.OK {
			failures++
		}
		if *format != "json" {
			printResult(progress, res)
		}
	}
	if len(doc.Systems) == 0 {
		return nil, failures, fmt.Errorf("unknown system %q", *system)
	}
	return doc, failures, nil
}

// buildShardedDoc runs the sharded multi-instance matrix: all six systems
// (PREP-Volatile included) on steady runs, the recoverable five on crash
// runs, each deployed as *instances independent machines with the total
// worker budget split evenly.
func buildShardedDoc(progress io.Writer, doc *serveDoc, cfg harness.ServeConfig) (*serveDoc, int, error) {
	per := *shards / *instances
	scfg := harness.ShardedServeConfig{
		Instances: *instances, Route: *route, TotalWorkers: *shards,
		RingSize: cfg.RingSize, MaxBatch: cfg.MaxBatch, Batched: cfg.Batched,
		Open: cfg.Open, Seed: cfg.Seed, Policy: cfg.Policy, Check: cfg.Check,
		Jobs: *jobs,
	}
	if *scenario == "crash" {
		scfg.CrashAtNS = cfg.CrashAtNS
		set, err := shard.ParseSet(*crashShards, *instances)
		if err != nil {
			return nil, 0, err
		}
		if set == nil {
			for i := 0; i < *instances; i++ {
				set = append(set, i)
			}
		}
		scfg.CrashShards = set
		doc.CrashShards = set
	}
	doc.Instances = *instances
	doc.Route = *route

	failures := 0
	for _, sys := range harness.ServeSystems() {
		sys := sys
		if *system != "all" && *system != systemFlag(sys.Name) {
			continue
		}
		if sys.SteadyOnly && *scenario == "crash" {
			if *system != "all" {
				return nil, failures, fmt.Errorf("%s has no recovery path; steady scenario only", sys.Name)
			}
			continue
		}
		res, err := harness.RunShardedServe(func() *harness.ServeDriver {
			return sys.New(per, *epsilon)
		}, scfg)
		if err != nil {
			return nil, failures, err
		}
		doc.Systems = append(doc.Systems, res)
		if res.Check != nil && !res.Check.OK {
			failures++
		}
		if *format != "json" {
			printResult(progress, res)
		}
	}
	if len(doc.Systems) == 0 {
		return nil, failures, fmt.Errorf("unknown system %q", *system)
	}
	return doc, failures, nil
}

func main() {
	flag.Parse()
	if *scenario != "steady" && *scenario != "crash" {
		fmt.Fprintf(os.Stderr, "prepserve: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prepserve: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	progress := out
	if *format == "json" {
		progress = io.Discard
	}
	doc, failures, err := buildDoc(progress)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prepserve: %v\n", err)
		os.Exit(1)
	}
	if *format == "json" {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "prepserve: %v\n", err)
			os.Exit(1)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "prepserve: %d system(s) failed the linearize check\n", failures)
		os.Exit(1)
	}
}

// printResult renders one system's record as the human table.
func printResult(w io.Writer, r *harness.ServeResult) {
	fmt.Fprintf(w, "%-14s  %9.0f ops/s  completed=%d/%d\n",
		r.System, r.OpsPerSec, r.Completed, r.Submitted)
	fmt.Fprintf(w, "  latency(ns): p50=%d p99=%d p999=%d max=%d mean=%.0f\n",
		r.Latency.P50, r.Latency.P99, r.Latency.P999, r.Latency.Max, r.Latency.Mean)
	if r.Ring.Batches > 0 {
		fmt.Fprintf(w, "  ring: submits=%d full_stalls=%d mean_batch=%.1f\n",
			r.Ring.Submits, r.Ring.FullStalls, r.Ring.MeanBatch)
	} else {
		fmt.Fprintf(w, "  ring: submits=%d full_stalls=%d (per-op path)\n",
			r.Ring.Submits, r.Ring.FullStalls)
	}
	if c := r.Crash; c != nil {
		fmt.Fprintf(w, "  crash@%d: recovery=%.3fms(virtual) replayed=%d stall=%.3fms lost_inflight=%d backlog=%d drain=%.3fms\n",
			c.CrashAtNS, float64(c.RecoveryVirtualNS)/1e6, c.Replayed,
			float64(c.StallNS)/1e6, c.LostInflight, c.BacklogAtResume,
			float64(c.BacklogDrainNS)/1e6)
		if c.Detectable {
			fmt.Fprintf(w, "  detect: in_flight_resolved=%d resolved_completed=%d duplicates_applied=%d\n",
				c.InFlightResolved, c.ResolvedCompleted, *c.DuplicatesApplied)
		}
	}
	if cb := r.Check; cb != nil {
		if cb.OK {
			fmt.Fprintf(w, "  check: %s ok epochs=%d ops=%d lost=%d committed=%d never=%d\n",
				cb.Mode, cb.Epochs, cb.Ops, cb.Lost, cb.InFlightCommitted, cb.InFlightNever)
		} else {
			fmt.Fprintf(w, "  check: %s FAILED epoch=%d %s: %s\n",
				cb.Mode, cb.FailedEpoch, cb.FailedPartition, cb.Reason)
		}
	}
	if len(r.Shards) > 0 {
		fmt.Fprintf(w, "  sharded: route=%s imbalance=%.2f\n", r.Route, r.Imbalance)
		for _, sh := range r.Shards {
			mark := ""
			if sh.Crashed {
				mark = " crashed"
			}
			fmt.Fprintf(w, "    shard %d: %9.0f ops/s completed=%d/%d%s\n",
				sh.Shard, sh.Result.OpsPerSec, sh.Result.Completed, sh.Result.Submitted, mark)
		}
		if c := r.Composition; c != nil {
			verdict := "ok"
			if !c.OK {
				verdict = "FAILED: " + c.Reason + c.UnionReason
			}
			fmt.Fprintf(w, "    composition: %s (ops_audited=%d keys_probed=%d union=%v)\n",
				verdict, c.OpsAudited, c.KeysProbed, c.UnionChecked)
		}
	}
}
