package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// withFlags sets command-line flags for one subtest and restores them after.
func withFlags(t *testing.T, vals map[string]string) {
	t.Helper()
	for name, v := range vals {
		f := flag.Lookup(name)
		if f == nil {
			t.Fatalf("unknown flag %q", name)
		}
		old := f.Value.String()
		if err := flag.Set(name, v); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { flag.Set(name, old) })
	}
}

// serveBase is a small deterministic run: every field of the document is
// virtual-time or seed-derived, so the goldens lock it byte for byte.
var serveBase = map[string]string{
	"shards": "2", "ring": "256", "batch": "32", "epsilon": "16",
	"clients": "20000", "keys": "4096", "skew": "1.2", "readpct": "80",
	"rate": "2e+06", "duration": "400000", "think": "20000",
	"burst-every": "100000", "burst-len": "20000", "burst-factor": "4",
	"seed": "42", "format": "json",
}

// TestSchemaGolden locks the prepuc-serve/v3 JSON document byte for byte.
// One golden covers the steady scenario, one the checked crash scenario
// under the targeted fault adversary, and two the sharded multi-instance
// mode — a steady 4-machine deployment (all six systems, PREP-Volatile
// included) and a partial crash of machines {0,2} with survivors serving
// through. Run `go test ./cmd/prepserve -run TestSchemaGolden -update` to
// regenerate after an intentional (additive-only) schema change.
func TestSchemaGolden(t *testing.T) {
	cases := []struct {
		name   string
		golden string
		extra  map[string]string
	}{
		{"steady", "serve_v3_steady.golden.json",
			map[string]string{"scenario": "steady", "check": "true"}},
		{"crash", "serve_v3_crash.golden.json",
			map[string]string{"scenario": "crash", "crash-at": "200000",
				"policy": "targeted", "check": "true"}},
		{"sharded-steady", "serve_v3_sharded_steady.golden.json",
			map[string]string{"scenario": "steady", "check": "true",
				"instances": "4", "shards": "4"}},
		{"sharded-crash", "serve_v3_sharded_crash.golden.json",
			map[string]string{"scenario": "crash", "crash-at": "200000",
				"crash-shards": "0,2", "policy": "targeted", "check": "true",
				"instances": "4", "shards": "4"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			withFlags(t, serveBase)
			withFlags(t, tc.extra)
			var progress bytes.Buffer
			doc, failures, err := buildDoc(&progress)
			if err != nil {
				t.Fatal(err)
			}
			if failures != 0 {
				t.Fatalf("deterministic run failed %d checks", failures)
			}
			got, err := json.MarshalIndent(doc, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("schema document drifted from %s (regenerate with -update if intentional)\ngot:\n%s", path, got)
			}
		})
	}
}

// TestSchemaRequiredFields guards the wire contract independently of the
// golden bytes: the v1 field names and the v2 detect/check additions must
// survive any refactor of the Go structs.
func TestSchemaRequiredFields(t *testing.T) {
	withFlags(t, serveBase)
	withFlags(t, map[string]string{
		"scenario": "crash", "crash-at": "200000",
		"policy": "coinflip", "check": "true",
	})
	var progress bytes.Buffer
	doc, failures, err := buildDoc(&progress)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("run failed %d checks", failures)
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["schema"] != ServeSchema {
		t.Fatalf("schema = %v, want %v", m["schema"], ServeSchema)
	}
	for _, k := range []string{"scenario", "clients", "rate_ops_per_sec",
		"duration_virtual_ns", "shards", "batched", "seed", "policy", "check", "systems"} {
		if _, ok := m[k]; !ok {
			t.Errorf("document is missing top-level field %q", k)
		}
	}
	systems := m["systems"].([]any)
	if len(systems) != 5 {
		t.Fatalf("got %d systems, want 5", len(systems))
	}
	for _, s := range systems {
		sm := s.(map[string]any)
		name := sm["system"].(string)
		for _, k := range []string{"submitted", "completed", "ops_per_sec", "latency_ns", "ring", "crash", "check"} {
			if _, ok := sm[k]; !ok {
				t.Errorf("%s: record is missing field %q", name, k)
			}
		}
		crash := sm["crash"].(map[string]any)
		for _, k := range []string{"crash_at_ns", "recovery_virtual_ns", "replayed",
			"stall_ns", "lost_inflight", "backlog_at_resume", "backlog_drain_ns",
			"detectable", "in_flight_resolved", "resolved_completed"} {
			if _, ok := crash[k]; !ok {
				t.Errorf("%s: crash block is missing field %q", name, k)
			}
		}
		detect := crash["detectable"].(bool)
		dup, hasDup := crash["duplicates_applied"]
		if detect != hasDup {
			t.Errorf("%s: detectable=%v but duplicates_applied present=%v", name, detect, hasDup)
		}
		if detect {
			if dup.(float64) != 0 {
				t.Errorf("%s: duplicates_applied = %v, want 0", name, dup)
			}
			if crash["in_flight_resolved"] != crash["lost_inflight"] {
				t.Errorf("%s: resolved %v of %v in-flight operations",
					name, crash["in_flight_resolved"], crash["lost_inflight"])
			}
		}
		check := sm["check"].(map[string]any)
		for _, k := range []string{"mode", "ok", "epochs", "ops", "lost",
			"in_flight_committed", "in_flight_never", "failed_epoch"} {
			if _, ok := check[k]; !ok {
				t.Errorf("%s: check block is missing field %q", name, k)
			}
		}
		if check["ok"] != true {
			t.Errorf("%s: check failed: %v", name, check)
		}
	}
}

// TestShardedSchemaFields guards the v3 sharded additions: top-level
// instances/route (and crash_shards on crash runs), per-system breakdowns
// with one entry per machine, and the composition verdict.
func TestShardedSchemaFields(t *testing.T) {
	withFlags(t, serveBase)
	withFlags(t, map[string]string{
		"scenario": "crash", "crash-at": "200000", "crash-shards": "1,3",
		"policy": "coinflip", "check": "true",
		"instances": "4", "shards": "4",
	})
	var progress bytes.Buffer
	doc, failures, err := buildDoc(&progress)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 0 {
		t.Fatalf("run failed %d checks", failures)
	}
	raw, _ := json.Marshal(doc)
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["instances"].(float64) != 4 || m["route"] != "hash" {
		t.Fatalf("sharded header: instances=%v route=%v", m["instances"], m["route"])
	}
	cs := m["crash_shards"].([]any)
	if len(cs) != 2 || cs[0].(float64) != 1 || cs[1].(float64) != 3 {
		t.Fatalf("crash_shards = %v", cs)
	}
	systems := m["systems"].([]any)
	if len(systems) != 5 {
		t.Fatalf("sharded crash matrix: got %d systems, want the 5 recoverable ones", len(systems))
	}
	for _, s := range systems {
		sm := s.(map[string]any)
		name := sm["system"].(string)
		for _, k := range []string{"route", "imbalance", "shards", "composition", "crash", "check"} {
			if _, ok := sm[k]; !ok {
				t.Errorf("%s: sharded record is missing %q", name, k)
			}
		}
		shards := sm["shards"].([]any)
		if len(shards) != 4 {
			t.Fatalf("%s: %d shard entries, want 4", name, len(shards))
		}
		for i, e := range shards {
			em := e.(map[string]any)
			wantCrash := i == 1 || i == 3
			if em["shard"].(float64) != float64(i) || em["crashed"].(bool) != wantCrash {
				t.Errorf("%s shard %d: %v", name, i, em)
			}
			rm := em["result"].(map[string]any)
			if _, hasCrash := rm["crash"]; hasCrash != wantCrash {
				t.Errorf("%s shard %d: crash block present=%v, want %v", name, i, hasCrash, wantCrash)
			}
		}
		comp := sm["composition"].(map[string]any)
		if comp["ok"] != true {
			t.Errorf("%s: composition failed: %v", name, comp)
		}
		crash := sm["crash"].(map[string]any)
		if crash["detectable"] == true && crash["duplicates_applied"].(float64) != 0 {
			t.Errorf("%s: aggregate duplicates_applied = %v", name, crash["duplicates_applied"])
		}
		if sm["check"].(map[string]any)["ok"] != true {
			t.Errorf("%s: aggregate check failed", name)
		}
	}
	// The steady sharded matrix adds PREP-Volatile.
	withFlags(t, map[string]string{"scenario": "steady", "crash-shards": "", "policy": ""})
	doc, failures, err = buildDoc(&progress)
	if err != nil || failures != 0 {
		t.Fatalf("steady sharded: err=%v failures=%d", err, failures)
	}
	if len(doc.Systems) != 6 || doc.Systems[0].System != "PREP-Volatile" {
		names := make([]string, len(doc.Systems))
		for i, s := range doc.Systems {
			names[i] = s.System
		}
		t.Fatalf("steady sharded matrix = %v, want PREP-Volatile + the 5 recoverable", names)
	}
}

// TestCheckOffByDefault proves an unchecked document carries no "check" key
// per system — the v1-compatible shape.
func TestCheckOffByDefault(t *testing.T) {
	withFlags(t, serveBase)
	withFlags(t, map[string]string{"scenario": "steady", "system": "soft"})
	var progress bytes.Buffer
	doc, _, err := buildDoc(&progress)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(doc)
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	sm := m["systems"].([]any)[0].(map[string]any)
	if _, ok := sm["check"]; ok {
		t.Error("unchecked run emitted a check block")
	}
	if _, ok := sm["crash"]; ok {
		t.Error("steady run emitted a crash block")
	}
}
