// crashrecovery: why PREP-UC keeps TWO dedicated persistent replicas.
//
// §4.1 of the paper: during an update a replica passes through inconsistent
// intermediate states, and the cache-coherence protocol may write any dirty
// line back to NVM at any time ("background flush") — so a single persistent
// replica can leak a torn state to the media and a crash then recovers
// garbage. PREP-UC's answer is two dedicated persistent replicas, only one
// of which is ever being written; the other stays quiescent in NVM.
//
// This example runs the same crash schedule twice — once with the sound
// two-replica design and once with the unsound single-replica variant — and
// checks each recovery for per-worker prefix anomalies.
//
//	go run ./examples/crashrecovery
package main

import (
	"fmt"

	"prepuc/internal/core"
	"prepuc/internal/history"
	"prepuc/internal/numa"
	"prepuc/internal/nvm"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

const workers = 8

func run(single bool, seed int64) (history.Report, bool) {
	topo := numa.Topology{Nodes: 2, ThreadsPerNode: 4}
	cfg := core.Config{
		Mode:      core.Buffered,
		Topology:  topo,
		Workers:   workers,
		LogSize:   128,
		Epsilon:   32,
		Factory:   seq.HashMapFactory(64),
		Attacher:  seq.HashMapAttacher,
		HeapWords: 1 << 20,
		Ablations: core.Ablations{SinglePReplica: single},
	}
	bootSch := sim.New(seed)
	// Aggressive background flushing makes the hazard likely.
	sys := nvm.NewSystem(bootSch, nvm.Config{
		Costs: sim.UnitCosts(), BGFlushOneIn: 8, Seed: uint64(seed) + 5,
	})
	var p *core.PREP
	var err error
	bootSch.Spawn("boot", 0, 0, func(t *sim.Thread) { p, err = core.New(t, sys, cfg) })
	bootSch.Run()
	if err != nil {
		panic(err)
	}

	sch := sim.New(seed + 1)
	sch.CrashAtEvent(90_000 + uint64(seed%13)*21_001)
	sys.SetScheduler(sch)
	p.SpawnPersistence(0)
	completed := make([]uint64, workers)
	for tid := 0; tid < workers; tid++ {
		tid := tid
		sch.Spawn("w", topo.NodeOf(tid), 0, func(t *sim.Thread) {
			defer func() {
				if r := recover(); r != nil && !sim.Crashed(r) {
					panic(r)
				}
			}()
			for i := uint64(0); ; i++ {
				p.Execute(t, tid, uc.Insert(history.Key(tid, i), i))
				completed[tid] = i + 1
			}
		})
	}
	sch.Run()

	recSch := sim.New(seed + 2)
	recSys := sys.Recover(recSch)
	var rec *core.PREP
	corrupted := false
	recSch.Spawn("recover", 0, 0, func(t *sim.Thread) {
		defer func() {
			if recover() != nil {
				corrupted = true // recovery walked torn state
			}
		}()
		rec, _, err = core.Recover(t, recSys, cfg)
	})
	recSch.Run()
	if corrupted || err != nil {
		return history.Report{Workers: workers}, true
	}

	keys := make([][]bool, workers)
	checkSch := sim.New(seed + 3)
	recSys.SetScheduler(checkSch)
	checkSch.Spawn("probe", 0, 0, func(t *sim.Thread) {
		for tid := 0; tid < workers; tid++ {
			n := completed[tid] + 32
			keys[tid] = make([]bool, n)
			for i := uint64(0); i < n; i++ {
				keys[tid][i] = rec.Execute(t, 0, uc.Get(history.Key(tid, i))) != uc.NotFound
			}
		}
	})
	checkSch.Run()
	rep := history.Check(keys, completed)
	return rep, rep.PrefixViolations > 0
}

func main() {
	const trials = 6
	fmt.Println("two persistent replicas (the paper's design):")
	anomalies := 0
	for s := int64(0); s < trials; s++ {
		rep, bad := run(false, s*1000+1)
		status := "consistent prefix"
		if bad {
			status = "ANOMALY"
			anomalies++
		}
		fmt.Printf("  crash %d: %s — %s\n", s, rep, status)
	}
	fmt.Printf("  anomalies: %d/%d\n\n", anomalies, trials)

	fmt.Println("single persistent replica (the unsound variant §4.1 warns about):")
	anomalies = 0
	for s := int64(0); s < trials; s++ {
		rep, bad := run(true, s*1000+1)
		status := "consistent prefix"
		if bad {
			status = "ANOMALY (torn or non-prefix state recovered)"
			anomalies++
		}
		fmt.Printf("  crash %d: %s — %s\n", s, rep, status)
	}
	fmt.Printf("  anomalies: %d/%d\n", anomalies, trials)
	fmt.Println("\nthe background-flush hazard is real: one replica is not enough.")
}
