// kvstore: a crash-safe key-value store built on PREP-Durable.
//
// The scenario the paper's introduction motivates: you have a plain
// sequential map and want a persistent, linearizable, NUMA-scalable
// concurrent store without writing a single flush yourself. This example
// runs a mixed workload, pulls the power mid-flight, recovers, verifies
// that every acknowledged write survived (durable linearizability), and
// keeps serving traffic on the recovered store.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"prepuc/internal/core"
	"prepuc/internal/history"
	"prepuc/internal/numa"
	"prepuc/internal/nvm"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

const workers = 6

func config() core.Config {
	return core.Config{
		Mode:      core.Durable, // acknowledged writes must survive crashes
		Topology:  numa.Topology{Nodes: 2, ThreadsPerNode: 4},
		Workers:   workers,
		LogSize:   1 << 10,
		Epsilon:   128,
		Factory:   seq.HashMapFactory(512),
		Attacher:  seq.HashMapAttacher,
		HeapWords: 1 << 21,
	}
}

func main() {
	cfg := config()
	bootSch := sim.New(1)
	// Background flushes on: the adversarial cache behaviour real NVM has.
	sys := nvm.NewSystem(bootSch, nvm.Config{
		Costs: sim.DefaultCosts(), BGFlushOneIn: 256, Seed: 42,
	})
	var store *core.PREP
	var err error
	bootSch.Spawn("boot", 0, 0, func(t *sim.Thread) {
		store, err = core.New(t, sys, cfg)
	})
	bootSch.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: serve writes until the power fails. Each worker records,
	// host-side, how many of its PUTs were acknowledged.
	runSch := sim.New(2)
	runSch.CrashAtEvent(400_000) // pull the plug mid-run
	sys.SetScheduler(runSch)
	store.SpawnPersistence(0)
	acked := make([]uint64, workers)
	for tid := 0; tid < workers; tid++ {
		tid := tid
		runSch.Spawn("client", cfg.Topology.NodeOf(tid), 0, func(t *sim.Thread) {
			defer func() {
				if r := recover(); r != nil && !sim.Crashed(r) {
					panic(r)
				}
			}()
			for i := uint64(0); ; i++ {
				store.Execute(t, tid, uc.Insert(history.Key(tid, i), i))
				acked[tid] = i + 1 // PUT acknowledged to the client
			}
		})
	}
	runSch.Run()
	var total uint64
	for _, n := range acked {
		total += n
	}
	fmt.Printf("power failure after %d acknowledged PUTs\n", total)

	// Phase 2: recover from NVM.
	recSch := sim.New(3)
	recSys := sys.Recover(recSch)
	var recovered *core.PREP
	var report *core.RecoveryReport
	recSch.Spawn("recovery", 0, 0, func(t *sim.Thread) {
		recovered, report, err = core.Recover(t, recSys, cfg)
	})
	recSch.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered from stable replica %d (checkpointed at log index %d); replayed %d durable log entries up to completedTail %d\n",
		report.StableReplica, report.StableLocalTail, report.Replayed, report.CompletedTail)

	// Phase 3: verify durable linearizability — every acknowledged PUT is
	// present — then keep serving.
	verifySch := sim.New(4)
	recSys.SetScheduler(verifySch)
	lost := 0
	verifySch.Spawn("verify", 0, 0, func(t *sim.Thread) {
		for tid := 0; tid < workers; tid++ {
			for i := uint64(0); i < acked[tid]; i++ {
				if recovered.Execute(t, 0, uc.Get(history.Key(tid, i))) == uc.NotFound {
					lost++
				}
			}
		}
	})
	verifySch.Run()
	if lost != 0 {
		log.Fatalf("DURABILITY VIOLATION: %d acknowledged PUTs lost", lost)
	}
	fmt.Printf("all %d acknowledged PUTs survived the crash\n", total)

	// Phase 4: the recovered store serves new traffic.
	serveSch := sim.New(5)
	recSys.SetScheduler(serveSch)
	recovered.SpawnPersistence(0)
	remaining := workers
	for tid := 0; tid < workers; tid++ {
		tid := tid
		serveSch.Spawn("client", cfg.Topology.NodeOf(tid), 0, func(t *sim.Thread) {
			defer func() {
				remaining--
				if remaining == 0 {
					recovered.StopPersistence(t)
				}
			}()
			for i := uint64(0); i < 200; i++ {
				k := uint64(1)<<62 | history.Key(tid, i)
				recovered.Execute(t, tid, uc.Insert(k, i))
			}
		})
	}
	serveSch.Run()
	fmt.Println("post-recovery traffic served; store is live")
}
