// Quickstart: build a persistent concurrent hashmap from a *sequential*
// hashmap using PREP-Buffered, run a few concurrent workers, and read the
// results back — the minimal end-to-end use of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"prepuc/internal/core"
	"prepuc/internal/numa"
	"prepuc/internal/nvm"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

func main() {
	// A simulated machine: 2 NUMA nodes × 4 hardware threads, calibrated
	// Optane-like latencies, deterministic from the seed.
	topo := numa.Topology{Nodes: 2, ThreadsPerNode: 4}
	bootSch := sim.New(1)
	sys := nvm.NewSystem(bootSch, nvm.Config{Costs: sim.DefaultCosts()})

	// Build PREP-Buffered around the sequential hashmap. The sequential
	// implementation is a black box: PREP-UC never interposes its loads and
	// stores, which is the whole point of a persistent universal
	// construction.
	cfg := core.Config{
		Mode:      core.Buffered,
		Topology:  topo,
		Workers:   7, // leave one hardware thread for the persistence thread
		LogSize:   1 << 12,
		Epsilon:   256, // at most ε+β−1 completed ops lost per crash
		Factory:   seq.HashMapFactory(1024),
		Attacher:  seq.HashMapAttacher,
		HeapWords: 1 << 20,
	}
	var p *core.PREP
	var err error
	bootSch.Spawn("boot", 0, 0, func(t *sim.Thread) {
		p, err = core.New(t, sys, cfg)
	})
	bootSch.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Run 7 workers concurrently (in deterministic virtual time); the
	// dedicated persistence thread checkpoints the object as they go.
	runSch := sim.New(2)
	sys.SetScheduler(runSch)
	p.SpawnPersistence(0)
	const perWorker = 500
	remaining := cfg.Workers
	for tid := 0; tid < cfg.Workers; tid++ {
		tid := tid
		runSch.Spawn("worker", topo.NodeOf(tid), 0, func(t *sim.Thread) {
			defer func() {
				remaining--
				if remaining == 0 {
					p.StopPersistence(t)
				}
			}()
			for i := uint64(0); i < perWorker; i++ {
				key := uint64(tid)*1_000_000 + i
				p.Execute(t, tid, uc.Insert(key, key * 2))
				// Read-only operations take the local replica's reader lock
				// and never touch the log.
				if got := p.Execute(t, tid, uc.Get(key)); got != key*2 {
					log.Fatalf("read own write: got %d", got)
				}
			}
		})
	}
	runSch.Run()

	// Inspect the final state.
	checkSch := sim.New(3)
	sys.SetScheduler(checkSch)
	checkSch.Spawn("check", 0, 0, func(t *sim.Thread) {
		size := p.Execute(t, 0, uc.Size())
		fmt.Printf("final size: %d (expected %d)\n", size, cfg.Workers*perWorker)
		st := p.Stats()
		fmt.Printf("updates: %d  reads: %d  combines: %d (avg batch %.1f)  persistence cycles: %d\n",
			st.Updates, st.Reads, st.CombinerAcquisitions,
			st.MeanBatchSize, st.PersistCycles)
	})
	checkSch.Run()
}
