// taskqueue: a persistent priority work queue built on PREP-Buffered.
//
// A scheduler accepts prioritized tasks and hands the most urgent one to the
// next free worker. Losing a handful of very recent submissions at a power
// failure is acceptable for this application — what is not acceptable is an
// inconsistent queue. PREP-Buffered fits exactly: it bounds the loss at
// ε+β−1 submissions per crash while running far faster than a fully durable
// construction, and recovery always yields a consistent prefix.
//
//	go run ./examples/taskqueue
package main

import (
	"fmt"
	"log"

	"prepuc/internal/core"
	"prepuc/internal/numa"
	"prepuc/internal/nvm"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

const (
	producers = 4
	consumers = 3
	workers   = producers + consumers
)

// A task is encoded as priority<<20 | id, so DeleteMin pops the most urgent
// task and the id stays recoverable.
func task(priority, id uint64) uint64 { return priority<<20 | id }

func main() {
	topo := numa.Topology{Nodes: 2, ThreadsPerNode: 4}
	cfg := core.Config{
		Mode:      core.Buffered,
		Topology:  topo,
		Workers:   workers,
		LogSize:   1 << 10,
		Epsilon:   64, // lose at most 64+4−1 submissions per crash
		Factory:   seq.PQueueFactory(),
		Attacher:  seq.PQueueAttacher,
		HeapWords: 1 << 20,
	}
	bootSch := sim.New(1)
	sys := nvm.NewSystem(bootSch, nvm.Config{Costs: sim.DefaultCosts(), BGFlushOneIn: 256, Seed: 9})
	var q *core.PREP
	var err error
	bootSch.Spawn("boot", 0, 0, func(t *sim.Thread) { q, err = core.New(t, sys, cfg) })
	bootSch.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Producers submit prioritized tasks; consumers pop the most urgent.
	runSch := sim.New(2)
	runSch.CrashAtEvent(300_000)
	sys.SetScheduler(runSch)
	q.SpawnPersistence(0)
	submitted := make([]uint64, producers)
	processed := make([]uint64, consumers)
	for pid := 0; pid < producers; pid++ {
		pid := pid
		runSch.Spawn("producer", topo.NodeOf(pid), 0, func(t *sim.Thread) {
			defer func() {
				if r := recover(); r != nil && !sim.Crashed(r) {
					panic(r)
				}
			}()
			for i := uint64(0); ; i++ {
				prio := (i*7 + uint64(pid)) % 100
				q.Execute(t, pid, uc.Enqueue(task(prio, uint64(pid)<<12|i)))
				submitted[pid] = i + 1
			}
		})
	}
	for c := 0; c < consumers; c++ {
		c := c
		tid := producers + c
		runSch.Spawn("consumer", topo.NodeOf(tid), 0, func(t *sim.Thread) {
			defer func() {
				if r := recover(); r != nil && !sim.Crashed(r) {
					panic(r)
				}
			}()
			for {
				if q.Execute(t, tid, uc.DeleteMin()) != uc.NotFound {
					processed[c]++
				}
			}
		})
	}
	runSch.Run()
	var subTotal, procTotal uint64
	for _, n := range submitted {
		subTotal += n
	}
	for _, n := range processed {
		procTotal += n
	}
	fmt.Printf("crash after %d submissions, %d completions\n", subTotal, procTotal)

	// Recover and inspect the queue: it must be consistent (a prefix of the
	// pre-crash history), and the loss window bounded.
	recSch := sim.New(3)
	recSys := sys.Recover(recSch)
	var rq *core.PREP
	var report *core.RecoveryReport
	recSch.Spawn("recovery", 0, 0, func(t *sim.Thread) {
		rq, report, err = core.Recover(t, recSys, cfg)
	})
	recSch.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered from stable replica %d (checkpoint at log index %d)\n",
		report.StableReplica, report.StableLocalTail)

	checkSch := sim.New(4)
	recSys.SetScheduler(checkSch)
	// Draining performs updates, so the recovered engine needs its
	// persistence thread back.
	rq.SpawnPersistence(0)
	checkSch.Spawn("check", 0, 0, func(t *sim.Thread) {
		defer rq.StopPersistence(t)
		size := rq.Execute(t, 0, uc.Size())
		fmt.Printf("recovered queue holds %d pending tasks\n", size)
		// Drain in priority order to show the heap is intact.
		prev := uint64(0)
		popped := 0
		for {
			v := rq.Execute(t, 0, uc.DeleteMin())
			if v == uc.NotFound {
				break
			}
			if prio := v >> 20; prio < prev {
				log.Fatalf("heap order violated after recovery: %d after %d", prio, prev)
			} else {
				prev = prio
			}
			popped++
		}
		fmt.Printf("drained %d tasks in priority order — recovered state is consistent\n", popped)
	})
	checkSch.Run()
	beta := uint64(topo.ThreadsPerNode)
	fmt.Printf("loss bound honoured: at most ε+β−1 = %d submissions may be missing\n",
		cfg.Epsilon+beta-1)
}
