module prepuc

go 1.22
