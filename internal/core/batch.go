package core

import (
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// This file is the engine half of the async submission path (internal/svc):
// ExecuteBatch lets one caller — typically a ring consumer draining a
// submission queue — push a whole batch of operations through the combiner
// protocol in a single handoff, and AwaitDurable turns the durability mark
// ExecuteBatch returns into an explicit persistence barrier, decoupling
// completion from durability in the style of delay-free persistent objects.

// MaxBatch is the largest batch ExecuteBatch accepts. It must stay well
// below LogSize − β: a batch reserves all its log entries at once, and a
// reservation larger than the reuse window (logMin − β ahead of the tail)
// could never be granted.
const MaxBatch = 64

// ExecuteBatch runs ops in submitted order on behalf of worker tid, writing
// each operation's result to the corresponding res element. The whole batch
// becomes one combiner session: one combiner-lock acquisition, one logTail
// CAS covering every update in the batch, one write-lock catch-up — the
// per-op contention cost of Execute amortized over len(ops).
//
// The returned mark is the log index one past the batch's last update (0 for
// a pure-read batch): passing it to AwaitDurable blocks until every update
// in the batch is persistent. In Durable mode the mark is already durable on
// return (completedTail is persisted before any response, as in Execute); in
// Buffered mode up to ε+MaxBatch−1 completed operations may still be lost to
// a crash, the paper's ε+β−1 bound with the batch standing in for the β
// combining slots.
//
// len(res) must be at least len(ops), and len(ops) at most MaxBatch.
func (p *PREP) ExecuteBatch(t *sim.Thread, tid int, ops []uc.Op, res []uint64) uint64 {
	if len(ops) == 0 {
		return 0
	}
	if len(ops) > MaxBatch {
		panic("core: ExecuteBatch batch exceeds MaxBatch")
	}
	node := p.cfg.Topology.NodeOf(tid)
	rep := p.reps[node]
	durable := p.cfg.Mode == Durable
	f := rep.flusher // nil outside durable mode

	num := uint64(0)
	det := false
	for _, op := range ops {
		if !rep.ds.IsReadOnly(op.Code) {
			num++
			if op.Invid != 0 && p.desc != nil {
				det = true
			}
		}
	}
	p.met.RingBatches++
	p.met.RingBatchedOps += uint64(len(ops))

	// Become the node's combiner. Unlike update() there is no batch slot to
	// park the ops in, so this blocks rather than waiting for service.
	var b backoff
	for !rep.combiner.TryAcquire(t) {
		b.spin(t, 1024)
	}
	if det {
		return p.executeBatchDetect(t, tid, rep, ops, res, num)
	}

	var tail, newTail uint64
	if num > 0 {
		p.met.ObserveBatch(num)
		tail = p.reserveLogEntries(t, rep, num)
		newTail = tail + num

		// Publish the updates into the reserved entries in submitted order,
		// with the same flush/fence discipline as combine().
		i := uint64(0)
		for _, op := range ops {
			if rep.ds.IsReadOnly(op.Code) {
				continue
			}
			p.log.WriteArgs(t, tail+i, op.Code, op.A0, op.A1)
			if durable {
				f.FlushLine(t, p.log.Mem(), p.log.EntryOff(tail+i))
			}
			i++
		}
		if durable {
			f.Fence(t)
		}
		for i := uint64(0); i < num; i++ {
			p.log.SetFull(t, tail+i)
			if durable {
				f.FlushLine(t, p.log.Mem(), p.log.EntryOff(tail+i))
			}
		}
	} else {
		// Pure-read batch: no reservation, just read at the current frontier.
		newTail = p.log.CompletedTail(t)
	}

	rep.rw.WriteLock(t)
	p.applyLog(t, rep.ds, rep.localTail(t), tail, f, func(applied uint64) {
		rep.setLocalTail(t, applied)
	})
	if num > 0 {
		rep.setLocalTail(t, newTail)
		if durable {
			f.Fence(t)
		}
		for {
			ct := p.log.CompletedTail(t)
			if ct >= newTail {
				break
			}
			if p.log.CASCompletedTail(t, ct, newTail) {
				break
			}
		}
		if durable {
			p.log.PersistCompletedTail(t, f)
		}
	} else if rep.localTail(t) < newTail {
		p.catchUp(t, rep, newTail)
	}

	// Execute the batch in submitted order: updates replay from their log
	// entries (the log is the source of truth, exactly as in combine());
	// reads run directly against the caught-up replica and see every earlier
	// update of their own batch.
	i := uint64(0)
	for j, op := range ops {
		t.Step(p.sys.Costs().OpBase)
		if rep.ds.IsReadOnly(op.Code) {
			p.met.Reads++
			res[j] = rep.ds.Execute(t, op.Code, op.A0, op.A1)
			continue
		}
		p.met.Updates++
		code, a0, a1 := p.log.ReadEntry(t, tail+i)
		res[j] = rep.ds.Execute(t, code, a0, a1)
		i++
	}
	rep.rw.WriteUnlock(t)
	rep.combiner.Release(t)
	if num == 0 {
		return 0
	}
	return newTail
}

// executeBatchDetect is ExecuteBatch past the combiner acquisition when the
// batch carries invocation ids, in the detectable order of combineDetect:
// args published not-full, replica caught up, batch applied with a
// descriptor written (durable: flushed) per detectable update, one fence,
// and only then the full marks. Every descriptor lands in worker tid's slot
// region; at most one batch of at most MaxBatch = DescSlots operations is
// outstanding per tid, so an unacknowledged descriptor is never
// overwritten. The caller holds the combiner lock; this releases it.
//
// Read-only operations in the batch never get descriptors — re-executing a
// read after a crash is always legal, so their post-crash verdict is simply
// "never applied, resubmit".
func (p *PREP) executeBatchDetect(t *sim.Thread, tid int, rep *replica, ops []uc.Op, res []uint64, num uint64) uint64 {
	durable := p.cfg.Mode == Durable
	f := rep.flusher

	p.met.ObserveBatch(num)
	tail := p.reserveLogEntries(t, rep, num)
	newTail := tail + num

	i := uint64(0)
	for _, op := range ops {
		if rep.ds.IsReadOnly(op.Code) {
			continue
		}
		p.log.WriteArgs(t, tail+i, op.Code, op.A0, op.A1)
		if durable {
			f.FlushLine(t, p.log.Mem(), p.log.EntryOff(tail+i))
		}
		i++
	}

	rep.rw.WriteLock(t)
	p.applyLog(t, rep.ds, rep.localTail(t), tail, f, func(applied uint64) {
		rep.setLocalTail(t, applied)
	})

	// Execute in submitted order: updates replay from their entries (and
	// record descriptors), reads run against the replica and see every
	// earlier update of their own batch.
	i = 0
	for j, op := range ops {
		t.Step(p.sys.Costs().OpBase)
		if rep.ds.IsReadOnly(op.Code) {
			p.met.Reads++
			res[j] = rep.ds.Execute(t, op.Code, op.A0, op.A1)
			continue
		}
		p.met.Updates++
		code, a0, a1 := p.log.ReadEntry(t, tail+i)
		res[j] = rep.ds.Execute(t, code, a0, a1)
		if op.Invid != 0 {
			off := p.desc.write(t, tid, op.Invid, tail+i, res[j])
			p.met.DescriptorWrites++
			if durable {
				f.FlushLine(t, p.desc.mem, off)
				p.met.DescriptorFlushes++
			}
		}
		i++
	}
	if durable {
		f.Fence(t) // entries, catch-up lines and descriptors all durable
	}
	for k := uint64(0); k < num; k++ {
		p.log.SetFull(t, tail+k)
		if durable {
			f.FlushLine(t, p.log.Mem(), p.log.EntryOff(tail+k))
		}
	}
	rep.setLocalTail(t, newTail)
	if durable {
		f.Fence(t)
	}
	for {
		ct := p.log.CompletedTail(t)
		if ct >= newTail {
			break
		}
		if p.log.CASCompletedTail(t, ct, newTail) {
			break
		}
	}
	if durable {
		p.log.PersistCompletedTail(t, f)
	}
	rep.rw.WriteUnlock(t)
	rep.combiner.Release(t)
	return newTail
}

// awaitDurableHelpSpins is how many backoff spins AwaitDurable waits before
// pulling the flush boundary down to force a persistence cycle.
const awaitDurableHelpSpins = 16

// AwaitDurable blocks until every update covered by mark (a return value of
// ExecuteBatch) is durable, i.e. would survive a crash at any later instant.
//
// In Durable mode this is a no-op beyond a sanity check: ExecuteBatch
// persisted completedTail past mark before returning (persist-before-respond,
// §4.1). In Buffered mode the caller waits until the *stable* persistent
// replica has checkpointed past mark; if the persistence thread is pacing
// itself on a distant flush boundary, the waiter pulls the boundary down to
// completedTail — the same §5.1 helping mechanism combiners use — to force a
// cycle rather than wait out the full ε window. The persistence thread must
// be running or the wait cannot terminate.
//
// With the SinglePReplica ablation there is no stable replica: the wait
// tracks the lone replica's applied tail, which runs ahead of its last
// checkpoint, so the barrier is advisory only under that configuration.
func (p *PREP) AwaitDurable(t *sim.Thread, mark uint64) {
	if mark == 0 || !p.cfg.Mode.Persistent() {
		return
	}
	if p.cfg.Mode == Durable {
		var b backoff
		for p.log.CompletedTail(t) < mark {
			b.spin(t, 512)
		}
		return
	}
	stable := func() int {
		if len(p.preps) == 2 {
			return 1 - int(p.activeP(t))
		}
		return 0
	}
	var b backoff
	spins := 0
	for p.pTail(t, stable()) < mark {
		spins++
		if spins%awaitDurableHelpSpins == 0 {
			if ct := p.log.CompletedTail(t); p.flushBoundary(t) > ct {
				p.setFlushBoundary(t, ct)
				p.met.BoundaryReductions++
			}
		}
		b.spin(t, 4096)
	}
}
