// Package core implements PREP-UC, the paper's contribution: a persistent
// universal construction based on node replication (NR-UC, Calciu et al.).
//
// The engine runs in one of three modes sharing a single code path:
//
//	Volatile  — PREP-V: plain node replication, no persistence machinery.
//	Buffered  — PREP-Buffered: buffered durably linearizable. The shared log
//	            stays volatile; two dedicated persistent replicas in NVM are
//	            maintained by a persistence thread and checkpointed (WBINVD)
//	            every ε operations, bounding loss at ε+β−1 completed update
//	            operations per crash.
//	Durable   — PREP-Durable: durably linearizable. Additionally places the
//	            log in NVM (flush args → fence → set emptyBits → flush →
//	            fence per combined batch) and persists completedTail before
//	            operations complete; no completed operation is ever lost.
//
// §3/§4/§5 of the paper map onto this package as follows: the shared log and
// its indexes live in internal/oplog; flat combining, the combiner protocol
// and read-only path are in engine.go; log-entry reuse (Algorithm 3) and
// reservation gating (Algorithm 4) in logmin.go; the persistence thread
// (Algorithm 2) in persist.go; and the recovery procedures in recovery.go.
package core

import (
	"fmt"

	"prepuc/internal/numa"
	"prepuc/internal/uc"
)

// Mode selects the persistence level of the construction.
type Mode int

const (
	// Volatile is PREP-V / NR-UC: no persistence.
	Volatile Mode = iota
	// Buffered is PREP-Buffered: buffered durable linearizability.
	Buffered
	// Durable is PREP-Durable: durable linearizability.
	Durable
)

func (m Mode) String() string {
	switch m {
	case Volatile:
		return "PREP-V"
	case Buffered:
		return "PREP-Buffered"
	case Durable:
		return "PREP-Durable"
	default:
		return "unknown"
	}
}

// Persistent reports whether the mode maintains persistent replicas.
func (m Mode) Persistent() bool { return m != Volatile }

// Config parameterizes a PREP-UC instance.
type Config struct {
	Mode     Mode
	Topology numa.Topology
	// Workers is the number of worker threads n; replicas are created for
	// ceil(n/β) nodes.
	Workers int
	// LogSize is the shared log capacity in entries (the paper uses 1M).
	LogSize uint64
	// Epsilon is the flush-boundary increment ε: the persistence thread
	// checkpoints the active persistent replica after ε log entries. Must
	// satisfy ε ≤ LogSize − β − 1. Ignored in Volatile mode.
	Epsilon uint64
	// Factory creates the sequential object; Attacher re-opens it after a
	// crash (required for Buffered/Durable).
	Factory  uc.Factory
	Attacher uc.Attacher
	// HeapWords is the per-replica heap size in words.
	HeapWords uint64
	// Generation disambiguates memory names across crash/recovery cycles;
	// Recover bumps it automatically.
	Generation int
	// Instance namespaces every region name (log, replicas, generations,
	// descriptors, commit record) so multiple fully independent PREP engines
	// can co-reside on one nvm.System — the multi-instance boot path of the
	// sharded deployment. Empty keeps the historical bare names, so every
	// existing persisted layout (and golden) is untouched. Recovery threads
	// the same prefix through, which is what makes per-shard generations
	// independent: shard "s3" recovering to generation 2 never collides
	// with shard "s1" still on generation 0.
	Instance string
	// Detect enables detectable execution: a per-worker persistent
	// descriptor table records (invocation id, log position, result) for
	// every update operation submitted with a nonzero uc.Op.Invid, so
	// recovery can answer completed-with-result / never-applied for each
	// in-flight invocation (RecoveryReport.Resolved). Costs one descriptor
	// write per detectable update, plus one flush in Durable mode — no
	// extra fences (the descriptor flush shares the pre-full-mark fence);
	// Buffered-mode descriptors ride the checkpoint WBINVD for free. Off,
	// the engine's behavior is bit-identical to a build without the
	// feature.
	Detect bool

	// Ablations holds the design-ablation switches. The embedding promotes
	// each switch (cfg.NoBatching etc.), so call sites toggling a single
	// switch read the same as before the grouping.
	Ablations
}

// Ablations are the switches that disable individual design elements of the
// paper for ablation studies. The zero value is the paper's design.
type Ablations struct {
	// NoFlushElision disables the substrate's FliT-style clean-line flush
	// elision (nvm.Config.NoFlushElision applied to the engine's system),
	// restoring the reference cost model where every flush request pays a
	// full write-back. This subsumes the old completedTail-only §5.2 elision
	// ablation: the substrate facility elides that flush and every other
	// clean-line flush on the durable path.
	NoFlushElision bool
	// PerLineFlush replaces WBINVD checkpointing with flushing exactly the
	// dirty lines of the active persistent replica — the write-tracking
	// strategy a black-box PUC cannot actually implement; quantifies the
	// cost of WBINVD.
	PerLineFlush bool
	// NoBatching disables flat combining: each combiner appends only its own
	// operation (ablation for the batching design choice).
	NoBatching bool
	// SinglePReplica keeps only one persistent replica — the unsound design
	// §4.1 warns about; crash tests demonstrate it corrupts recovery when
	// background flushes are enabled.
	SinglePReplica bool
}

// Validate checks the configuration for internal consistency; New calls it,
// and external tooling that assembles Configs programmatically can call it
// early to fail before allocating a machine.
func (c *Config) Validate() error {
	if c.Workers <= 0 {
		return fmt.Errorf("core: Workers must be positive, got %d", c.Workers)
	}
	if c.Topology.Nodes <= 0 || c.Topology.ThreadsPerNode <= 0 {
		return fmt.Errorf("core: invalid topology %+v", c.Topology)
	}
	if c.Workers > c.Topology.TotalThreads() {
		return fmt.Errorf("core: %d workers exceed %d hardware threads",
			c.Workers, c.Topology.TotalThreads())
	}
	if c.LogSize < 2 {
		return fmt.Errorf("core: LogSize %d too small", c.LogSize)
	}
	beta := uint64(c.Topology.ThreadsPerNode)
	if c.Mode.Persistent() {
		if c.Epsilon == 0 {
			return fmt.Errorf("core: Epsilon required in persistent modes")
		}
		if c.Epsilon > c.LogSize-beta-1 {
			return fmt.Errorf("core: Epsilon %d violates ε ≤ LogSize−β−1 = %d",
				c.Epsilon, c.LogSize-beta-1)
		}
		if c.Attacher == nil {
			return fmt.Errorf("core: Attacher required in persistent modes")
		}
	}
	if c.Factory == nil {
		return fmt.Errorf("core: Factory required")
	}
	if c.HeapWords == 0 {
		return fmt.Errorf("core: HeapWords required")
	}
	return nil
}
