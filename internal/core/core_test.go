package core

import (
	"testing"

	"prepuc/internal/numa"
	"prepuc/internal/nvm"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// testTopo is a small machine: 2 nodes × 4 threads.
func testTopo() numa.Topology { return numa.Topology{Nodes: 2, ThreadsPerNode: 4} }

func hashCfg(mode Mode, workers int, logSize, eps uint64) Config {
	return Config{
		Mode:      mode,
		Topology:  testTopo(),
		Workers:   workers,
		LogSize:   logSize,
		Epsilon:   eps,
		Factory:   seq.HashMapFactory(64),
		Attacher:  seq.HashMapAttacher,
		HeapWords: 1 << 20,
	}
}

// world is a built engine plus the machinery to run worker phases on it.
type world struct {
	t    *testing.T
	sys  *nvm.System
	p    *PREP
	seed int64
}

// newWorld boots an engine on a fresh system.
func newWorld(t *testing.T, cfg Config, nvmCfg nvm.Config, seed int64) *world {
	t.Helper()
	sch := sim.New(seed)
	sys := nvm.NewSystem(sch, nvmCfg)
	w := &world{t: t, sys: sys, seed: seed}
	var err error
	sch.Spawn("boot", 0, 0, func(th *sim.Thread) {
		w.p, err = New(th, sys, cfg)
	})
	sch.Run()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return w
}

// runWorkers executes fn(th, tid) for each worker on a fresh scheduler,
// with the persistence thread running in persistent modes. The last worker
// to finish stops the persistence thread. Returns the scheduler (frozen if
// crashAt fired).
func (w *world) runWorkers(workers int, crashAt uint64, fn func(th *sim.Thread, tid int)) *sim.Scheduler {
	w.t.Helper()
	sch := sim.New(w.seed + 1000)
	if crashAt != 0 {
		sch.CrashAtEvent(crashAt)
	}
	w.sys.SetScheduler(sch)
	persistent := w.p.Config().Mode.Persistent()
	if persistent {
		w.p.SpawnPersistence(0)
	}
	remaining := workers
	for tid := 0; tid < workers; tid++ {
		tid := tid
		node := w.p.Config().Topology.NodeOf(tid)
		sch.Spawn("worker", node, 0, func(th *sim.Thread) {
			defer func() {
				if r := recover(); r != nil && !sim.Crashed(r) {
					panic(r)
				}
				remaining--
				if remaining == 0 && persistent && !sch.Frozen() {
					w.p.StopPersistence(th)
				}
			}()
			fn(th, tid)
		})
	}
	sch.Run()
	return sch
}

// query runs a read-only inspection phase with a single thread.
func (w *world) query(fn func(th *sim.Thread)) {
	w.t.Helper()
	sch := sim.New(w.seed + 2000)
	w.sys.SetScheduler(sch)
	sch.Spawn("query", 0, 0, fn)
	sch.Run()
}

func TestVolatileSingleWorkerSequential(t *testing.T) {
	w := newWorld(t, hashCfg(Volatile, 1, 256, 0), nvm.Config{}, 1)
	w.runWorkers(1, 0, func(th *sim.Thread, tid int) {
		for k := uint64(0); k < 50; k++ {
			if got := w.p.Execute(th, tid, uc.Insert(k, k * 2)); got != 1 {
				t.Errorf("insert(%d) = %d, want 1", k, got)
			}
		}
		for k := uint64(0); k < 50; k++ {
			if got := w.p.Execute(th, tid, uc.Get(k)); got != k*2 {
				t.Errorf("get(%d) = %d, want %d", k, got, k*2)
			}
		}
		if got := w.p.Execute(th, tid, uc.Delete(7)); got != 1 {
			t.Errorf("delete = %d, want 1", got)
		}
		if got := w.p.Execute(th, tid, uc.Get(7)); got != uc.NotFound {
			t.Errorf("get deleted = %d", got)
		}
	})
}

func TestVolatileConcurrentDistinctKeys(t *testing.T) {
	const workers, perWorker = 8, 60
	w := newWorld(t, hashCfg(Volatile, workers, 1024, 0), nvm.Config{Costs: sim.UnitCosts()}, 2)
	w.runWorkers(workers, 0, func(th *sim.Thread, tid int) {
		for i := uint64(0); i < perWorker; i++ {
			k := uint64(tid)*1000 + i
			if got := w.p.Execute(th, tid, uc.Insert(k, k + 7)); got != 1 {
				t.Errorf("worker %d insert(%d) = %d", tid, k, got)
			}
		}
	})
	w.query(func(th *sim.Thread) {
		if got := w.p.Execute(th, 0, uc.Size()); got != workers*perWorker {
			t.Errorf("size = %d, want %d", got, workers*perWorker)
		}
		for tid := 0; tid < workers; tid++ {
			for i := uint64(0); i < perWorker; i++ {
				k := uint64(tid)*1000 + i
				if got := w.p.Execute(th, 0, uc.Get(k)); got != k+7 {
					t.Errorf("get(%d) = %d, want %d", k, got, k+7)
				}
			}
		}
	})
}

func TestReadsSeeCompletedUpdates(t *testing.T) {
	// A worker on node 1 must observe a value inserted by a worker on node 0
	// once the insert has completed (reads wait for completedTail).
	const workers = 8 // spans both nodes
	w := newWorld(t, hashCfg(Volatile, workers, 512, 0), nvm.Config{Costs: sim.UnitCosts()}, 3)
	w.runWorkers(workers, 0, func(th *sim.Thread, tid int) {
		// Every worker inserts its key then reads every key it has already
		// written, alternating; reads of its own completed writes must hit.
		for i := uint64(0); i < 40; i++ {
			k := uint64(tid)*100 + i
			w.p.Execute(th, tid, uc.Insert(k, k))
			if got := w.p.Execute(th, tid, uc.Get(k)); got != k {
				t.Errorf("worker %d read own write %d: got %d", tid, k, got)
			}
		}
	})
}

func TestStackResponsesLinearizable(t *testing.T) {
	// Workers push unique values and pop; every pop response must be a value
	// pushed exactly once, or NotFound, and accounting must balance.
	const workers, pairs = 8, 50
	cfg := hashCfg(Volatile, workers, 1024, 0)
	cfg.Factory = seq.StackFactory()
	cfg.Attacher = seq.StackAttacher
	w := newWorld(t, cfg, nvm.Config{Costs: sim.UnitCosts()}, 4)
	popped := make([]map[uint64]int, workers)
	emptyPops := make([]int, workers)
	w.runWorkers(workers, 0, func(th *sim.Thread, tid int) {
		popped[tid] = map[uint64]int{}
		for i := uint64(0); i < pairs; i++ {
			v := uint64(tid)*1000 + i + 1
			w.p.Execute(th, tid, uc.Push(v))
			res := w.p.Execute(th, tid, uc.Pop())
			if res == uc.NotFound {
				emptyPops[tid]++
			} else {
				popped[tid][res]++
			}
		}
	})
	all := map[uint64]int{}
	totalPopped := 0
	for tid := range popped {
		for v, c := range popped[tid] {
			all[v] += c
			totalPopped += c
		}
	}
	for v, c := range all {
		if c > 1 {
			t.Errorf("value %d popped %d times", v, c)
		}
		wtid := (v - 1) / 1000
		if wtid >= workers || (v-1)%1000 >= pairs {
			t.Errorf("popped value %d was never pushed", v)
		}
	}
	var finalSize uint64
	w.query(func(th *sim.Thread) {
		finalSize = w.p.Execute(th, 0, uc.Size())
	})
	if uint64(totalPopped)+finalSize != workers*pairs {
		t.Errorf("pushed %d, popped %d, remaining %d: accounting broken",
			workers*pairs, totalPopped, finalSize)
	}
}

func TestLogWrapsManyTimes(t *testing.T) {
	// Log of 32 entries, hundreds of updates from both nodes: exercises
	// emptyBit parity, logMin advancement and helping.
	const workers, perWorker = 8, 80
	w := newWorld(t, hashCfg(Volatile, workers, 32, 0), nvm.Config{Costs: sim.UnitCosts()}, 5)
	w.runWorkers(workers, 0, func(th *sim.Thread, tid int) {
		for i := uint64(0); i < perWorker; i++ {
			k := uint64(tid)*1000 + i
			w.p.Execute(th, tid, uc.Insert(k, k))
		}
	})
	w.query(func(th *sim.Thread) {
		if got := w.p.Execute(th, 0, uc.Size()); got != workers*perWorker {
			t.Errorf("size = %d, want %d", got, workers*perWorker)
		}
		if tail := w.p.Log().LogTail(th); tail != workers*perWorker {
			t.Errorf("logTail = %d, want %d (one entry per update)", tail, workers*perWorker)
		}
	})
}

func TestBufferedRunsAndPersists(t *testing.T) {
	const workers, perWorker = 8, 100
	cfg := hashCfg(Buffered, workers, 128, 32)
	w := newWorld(t, cfg, nvm.Config{Costs: sim.UnitCosts()}, 6)
	w.runWorkers(workers, 0, func(th *sim.Thread, tid int) {
		for i := uint64(0); i < perWorker; i++ {
			k := uint64(tid)*1000 + i
			w.p.Execute(th, tid, uc.Insert(k, k))
		}
	})
	if w.p.Stats().PersistCycles == 0 {
		t.Error("no persistence cycles despite ops >> ε")
	}
	w.query(func(th *sim.Thread) {
		if got := w.p.Execute(th, 0, uc.Size()); got != workers*perWorker {
			t.Errorf("size = %d, want %d", got, workers*perWorker)
		}
	})
}

func TestDurableRunsCorrectly(t *testing.T) {
	const workers, perWorker = 8, 60
	cfg := hashCfg(Durable, workers, 128, 32)
	w := newWorld(t, cfg, nvm.Config{Costs: sim.UnitCosts()}, 7)
	w.runWorkers(workers, 0, func(th *sim.Thread, tid int) {
		for i := uint64(0); i < perWorker; i++ {
			k := uint64(tid)*1000 + i
			if got := w.p.Execute(th, tid, uc.Insert(k, k)); got != 1 {
				t.Errorf("insert = %d", got)
			}
		}
	})
	w.query(func(th *sim.Thread) {
		if got := w.p.Execute(th, 0, uc.Size()); got != workers*perWorker {
			t.Errorf("size = %d, want %d", got, workers*perWorker)
		}
	})
}

// crashRun drives a crash-recovery scenario: workers insert per-worker
// sequential keys until the crash; recovery returns the recovered engine and
// the per-worker completed-op counts.
type crashResult struct {
	completed []uint64 // per worker: ops whose Execute returned
	rec       *PREP
	report    *RecoveryReport
	recSys    *nvm.System
}

func crashAndRecover(t *testing.T, cfg Config, nvmCfg nvm.Config, seed int64, workers int, crashAt uint64) *crashResult {
	t.Helper()
	w := newWorld(t, cfg, nvmCfg, seed)
	res := &crashResult{completed: make([]uint64, workers)}
	sch := w.runWorkers(workers, crashAt, func(th *sim.Thread, tid int) {
		for i := uint64(0); ; i++ {
			k := uint64(tid)<<32 | i
			w.p.Execute(th, tid, uc.Insert(k, k))
			res.completed[tid] = i + 1
		}
	})
	if !sch.Frozen() {
		t.Fatal("run finished without crashing; raise crashAt")
	}
	recSch := sim.New(seed + 5000)
	res.recSys = w.sys.Recover(recSch)
	var err error
	recSch.Spawn("recover", 0, 0, func(th *sim.Thread) {
		res.rec, res.report, err = Recover(th, res.recSys, cfg)
	})
	recSch.Run()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return res
}

// recoveredKeys reads back which of each worker's keys survived.
func recoveredKeys(t *testing.T, res *crashResult, workers int) [][]bool {
	t.Helper()
	out := make([][]bool, workers)
	sch := sim.New(12345)
	res.recSys.SetScheduler(sch)
	sch.Spawn("inspect", 0, 0, func(th *sim.Thread) {
		for tid := 0; tid < workers; tid++ {
			n := res.completed[tid] + 64 // probe a bit past completion
			out[tid] = make([]bool, n)
			for i := uint64(0); i < n; i++ {
				k := uint64(tid)<<32 | i
				got := res.rec.Execute(th, 0, uc.Get(k))
				out[tid][i] = got != uc.NotFound
			}
		}
	})
	sch.Run()
	return out
}

func TestBufferedCrashLossBound(t *testing.T) {
	const workers = 8
	beta := uint64(testTopo().ThreadsPerNode)
	for _, crashAt := range []uint64{30_000, 120_000, 400_000} {
		cfg := hashCfg(Buffered, workers, 128, 32)
		res := crashAndRecover(t, cfg, nvm.Config{Costs: sim.UnitCosts(), BGFlushOneIn: 512, Seed: 9}, int64(crashAt), workers, crashAt)
		keys := recoveredKeys(t, res, workers)

		var lostCompleted uint64
		for tid := 0; tid < workers; tid++ {
			// Per-worker prefix property: a worker's recovered keys must be a
			// prefix of its insertion order (ops of one thread are logged in
			// program order).
			firstMissing := uint64(len(keys[tid]))
			for i, ok := range keys[tid] {
				if !ok {
					firstMissing = uint64(i)
					break
				}
			}
			for i := firstMissing; i < uint64(len(keys[tid])); i++ {
				if keys[tid][i] {
					t.Fatalf("crashAt=%d worker %d: key %d recovered but %d missing (not a prefix)",
						crashAt, tid, i, firstMissing)
				}
			}
			if res.completed[tid] > firstMissing {
				lostCompleted += res.completed[tid] - firstMissing
			}
		}
		bound := cfg.Epsilon + beta - 1
		if lostCompleted > bound {
			t.Errorf("crashAt=%d: lost %d completed ops, bound ε+β−1 = %d",
				crashAt, lostCompleted, bound)
		}
	}
}

func TestDurableCrashLosesNoCompletedOp(t *testing.T) {
	const workers = 8
	for _, crashAt := range []uint64{50_000, 200_000, 600_000} {
		cfg := hashCfg(Durable, workers, 128, 32)
		res := crashAndRecover(t, cfg, nvm.Config{Costs: sim.UnitCosts(), BGFlushOneIn: 512, Seed: 11}, int64(crashAt)+1, workers, crashAt)
		keys := recoveredKeys(t, res, workers)
		for tid := 0; tid < workers; tid++ {
			for i := uint64(0); i < res.completed[tid]; i++ {
				if !keys[tid][i] {
					t.Errorf("crashAt=%d worker %d: completed op %d lost (durable!)", crashAt, tid, i)
				}
			}
		}
		if res.report.Holes != 0 {
			t.Errorf("crashAt=%d: %d holes below completedTail", crashAt, res.report.Holes)
		}
	}
}

func TestCrashBeforeFirstCycleRecoversEmpty(t *testing.T) {
	const workers = 4
	cfg := hashCfg(Buffered, workers, 1024, 512)
	// Crash almost immediately: well before ε ops complete.
	res := crashAndRecover(t, cfg, nvm.Config{Costs: sim.UnitCosts()}, 21, workers, 3000)
	sch := sim.New(99)
	res.recSys.SetScheduler(sch)
	sch.Spawn("inspect", 0, 0, func(th *sim.Thread) {
		size := res.rec.Execute(th, 0, uc.Size())
		// Buffered: possibly everything lost; state must still be a valid
		// (small) prefix.
		if size > cfg.Epsilon+uint64(testTopo().ThreadsPerNode) {
			t.Errorf("recovered size %d exceeds loss-window expectation", size)
		}
	})
	sch.Run()
}

func TestRecoveredEngineIsUsable(t *testing.T) {
	const workers = 8
	cfg := hashCfg(Durable, workers, 128, 32)
	res := crashAndRecover(t, cfg, nvm.Config{Costs: sim.UnitCosts()}, 31, workers, 100_000)
	// Run a second workload phase on the recovered engine.
	sch := sim.New(777)
	res.recSys.SetScheduler(sch)
	res.rec.SpawnPersistence(0)
	remaining := workers
	for tid := 0; tid < workers; tid++ {
		tid := tid
		sch.Spawn("w2", cfg.Topology.NodeOf(tid), 0, func(th *sim.Thread) {
			defer func() {
				remaining--
				if remaining == 0 {
					res.rec.StopPersistence(th)
				}
			}()
			for i := uint64(0); i < 50; i++ {
				k := 1<<62 | uint64(tid)<<40 | i
				if got := res.rec.Execute(th, tid, uc.Insert(k, k)); got != 1 {
					t.Errorf("post-recovery insert = %d", got)
				}
			}
		})
	}
	sch.Run()
	sch2 := sim.New(778)
	res.recSys.SetScheduler(sch2)
	sch2.Spawn("check", 0, 0, func(th *sim.Thread) {
		for tid := 0; tid < workers; tid++ {
			for i := uint64(0); i < 50; i++ {
				k := 1<<62 | uint64(tid)<<40 | i
				if got := res.rec.Execute(th, 0, uc.Get(k)); got != k {
					t.Errorf("post-recovery get(%d) = %d", k, got)
				}
			}
		}
	})
	sch2.Run()
}

func TestDoubleCrash(t *testing.T) {
	const workers = 4
	cfg := hashCfg(Durable, workers, 128, 32)
	res := crashAndRecover(t, cfg, nvm.Config{Costs: sim.UnitCosts()}, 41, workers, 80_000)
	// Crash the recovered engine again mid-run and recover once more.
	sch := sim.New(888)
	sch.CrashAtEvent(40_000)
	res.recSys.SetScheduler(sch)
	res.rec.SpawnPersistence(0)
	completed2 := make([]uint64, workers)
	for tid := 0; tid < workers; tid++ {
		tid := tid
		sch.Spawn("w2", cfg.Topology.NodeOf(tid), 0, func(th *sim.Thread) {
			defer func() {
				if r := recover(); r != nil && !sim.Crashed(r) {
					panic(r)
				}
			}()
			for i := uint64(0); ; i++ {
				k := 1<<62 | uint64(tid)<<40 | i
				res.rec.Execute(th, tid, uc.Insert(k, k))
				completed2[tid] = i + 1
			}
		})
	}
	sch.Run()
	if !sch.Frozen() {
		t.Fatal("second run did not crash")
	}
	recSch := sim.New(889)
	recSys2 := res.recSys.Recover(recSch)
	cfg2 := res.rec.Config()
	var rec2 *PREP
	var err error
	recSch.Spawn("recover2", 0, 0, func(th *sim.Thread) {
		rec2, _, err = Recover(th, recSys2, cfg2)
	})
	recSch.Run()
	if err != nil {
		t.Fatalf("second Recover: %v", err)
	}
	// All phase-2 completed ops must survive (durable).
	sch3 := sim.New(890)
	recSys2.SetScheduler(sch3)
	sch3.Spawn("check", 0, 0, func(th *sim.Thread) {
		for tid := 0; tid < workers; tid++ {
			for i := uint64(0); i < completed2[tid]; i++ {
				k := 1<<62 | uint64(tid)<<40 | i
				if got := rec2.Execute(th, 0, uc.Get(k)); got != k {
					t.Errorf("op (%d,%d) completed before 2nd crash but lost", tid, i)
				}
			}
		}
	})
	sch3.Run()
}

func TestSinglePReplicaUnsound(t *testing.T) {
	// §4.1: with only one persistent replica, background flushes leak
	// mid-update state into NVM; a crash then recovers a state that is not a
	// prefix of any worker's operation sequence. With two replicas the same
	// schedule always recovers a prefix (TestBufferedCrashLossBound).
	const workers = 8
	violations := 0
	for seed := int64(0); seed < 24 && violations == 0; seed++ {
		cfg := hashCfg(Buffered, workers, 128, 32)
		cfg.SinglePReplica = true
		func() {
			defer func() {
				if recover() != nil {
					violations++ // recovery walked corrupt state
				}
			}()
			res := crashAndRecover(t, cfg,
				nvm.Config{Costs: sim.UnitCosts(), BGFlushOneIn: 8, Seed: uint64(seed + 1)},
				seed*13+1, workers, 90_000+uint64(seed)*21_001)
			keys := recoveredKeys(t, res, workers)
			for tid := 0; tid < workers; tid++ {
				firstMissing := -1
				for i, ok := range keys[tid] {
					if !ok && firstMissing < 0 {
						firstMissing = i
					}
					if ok && firstMissing >= 0 {
						violations++ // hole: not a prefix
						return
					}
				}
			}
		}()
	}
	if violations == 0 {
		t.Error("single persistent replica produced no recovery anomaly across seeds; hazard not exercised")
	}
}

func TestAblationVariantsRun(t *testing.T) {
	const workers, perWorker = 8, 40
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"NoBatching", func(c *Config) { c.NoBatching = true }},
		{"PerLineFlush", func(c *Config) { c.PerLineFlush = true }},
		{"NoFlushElision", func(c *Config) { c.NoFlushElision = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := hashCfg(Durable, workers, 128, 32)
			tc.mut(&cfg)
			w := newWorld(t, cfg, nvm.Config{Costs: sim.UnitCosts()}, 61)
			w.runWorkers(workers, 0, func(th *sim.Thread, tid int) {
				for i := uint64(0); i < perWorker; i++ {
					k := uint64(tid)*1000 + i
					w.p.Execute(th, tid, uc.Insert(k, k))
				}
			})
			w.query(func(th *sim.Thread) {
				if got := w.p.Execute(th, 0, uc.Size()); got != workers*perWorker {
					t.Errorf("size = %d, want %d", got, workers*perWorker)
				}
			})
		})
	}
}

func TestConfigValidation(t *testing.T) {
	base := hashCfg(Buffered, 4, 64, 16)
	bad := []func(*Config){
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.Workers = 100 },
		func(c *Config) { c.LogSize = 1 },
		func(c *Config) { c.Epsilon = 0 },
		func(c *Config) { c.Epsilon = c.LogSize }, // violates ε ≤ LogSize−β−1
		func(c *Config) { c.Factory = nil },
		func(c *Config) { c.Attacher = nil },
		func(c *Config) { c.HeapWords = 0 },
	}
	for i, mut := range bad {
		cfg := base
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestModeStrings(t *testing.T) {
	if Volatile.String() != "PREP-V" || Buffered.String() != "PREP-Buffered" || Durable.String() != "PREP-Durable" {
		t.Error("mode names wrong")
	}
	if Volatile.Persistent() || !Buffered.Persistent() || !Durable.Persistent() {
		t.Error("Persistent() wrong")
	}
}

func TestEpsilonGatesLogGrowth(t *testing.T) {
	// With a tiny ε the log tail must never run more than ε+β past the last
	// persisted boundary. We check the weaker, directly observable property
	// that persistence cycles keep pace: cycles ≥ floor(updates/ε) is too
	// strict under batching, so assert at least one cycle per 4ε updates.
	const workers, perWorker = 8, 200
	cfg := hashCfg(Buffered, workers, 4096, 64)
	w := newWorld(t, cfg, nvm.Config{Costs: sim.UnitCosts()}, 71)
	w.runWorkers(workers, 0, func(th *sim.Thread, tid int) {
		for i := uint64(0); i < perWorker; i++ {
			k := uint64(tid)*1000 + i
			w.p.Execute(th, tid, uc.Insert(k, k))
		}
	})
	totalUpdates := uint64(workers * perWorker)
	if min := totalUpdates / (4 * cfg.Epsilon); w.p.Stats().PersistCycles < min {
		t.Errorf("persist cycles = %d, want ≥ %d for %d updates at ε=%d",
			w.p.Stats().PersistCycles, min, totalUpdates, cfg.Epsilon)
	}
}
