package core

import (
	"prepuc/internal/nvm"
	"prepuc/internal/sim"
)

// This file implements detectable execution for PREP-UC: per-worker
// persistent operation descriptors in the style of Memento's per-op
// recoverable checkpoints and Sela & Petrank's detectable constructions.
//
// A descriptor is one cache line recording (invocation id, log position,
// result) for one update operation a combiner serviced on a worker's
// behalf. The combiner writes and — in Durable mode — flushes the
// descriptor, then fences, *before* it sets the batch's full marks. That
// ordering is the whole protocol: an operation's effect can become visible
// to any other combiner (and hence to a persisted completedTail) only after
// its descriptor is durable, so recovery can classify every invocation id
// with certainty:
//
//   - descriptor present with logpos below the recovery horizon
//     (persisted completedTail in Durable mode, the stable replica's
//     checkpointed tail in Buffered mode) → the operation committed, and
//     the descriptor carries its result;
//   - otherwise → the operation never applied: its effect is not in the
//     recovered state and the client may safely resubmit.
//
// Torn descriptors cannot lie: the NVM substrate materializes crashes per
// cache line, a descriptor is exactly one line, and a descriptor whose line
// did not persist is indistinguishable from an absent one — which recovery
// answers "never applied", the safe verdict, because the fence-before-full
// ordering guarantees no full mark (and so no committed effect) can exist
// for an operation whose descriptor is not durable. See DESIGN.md §11.
//
// Slot discipline: worker w owns DescSlots slots used round-robin. A slot
// is reused only after DescSlots further operations of the same worker,
// and a worker (or the ring consumer submitting on its behalf) has at most
// one batch of at most MaxBatch = DescSlots operations outstanding, so a
// live in-flight descriptor is never overwritten.

// DescSlots is the number of descriptor slots per worker. It equals
// MaxBatch so one ExecuteBatch worth of in-flight operations — the largest
// outstanding window a single worker tid can have — always fits without
// overwriting an unacknowledged descriptor.
const DescSlots = MaxBatch

// Descriptor record layout (word offsets within the one-line record).
const (
	descWords  = nvm.WordsPerLine
	descFlags  = 0 // descEmpty / descLive / descResolved
	descInvid  = 1
	descLogPos = 2
	descResult = 3
)

// Descriptor flag values.
const (
	descEmpty    = 0 // slot never written this generation
	descLive     = 1 // written by a combiner; committed iff logpos < horizon
	descResolved = 2 // carried forward by recovery; committed unconditionally
)

// descTable is the per-generation descriptor region: Workers contiguous
// per-worker blocks of DescSlots one-line records.
type descTable struct {
	mem     *nvm.Memory
	workers int
	// seq is the host-side next-slot cursor per worker (slot = seq mod
	// DescSlots). It is accessed only while holding the combiner lock of
	// the worker's node, which serializes all descriptor writers for that
	// worker.
	seq []uint64
}

// descTableWords is the memory size for a table covering workers workers.
func descTableWords(workers int) uint64 {
	return uint64(workers) * DescSlots * descWords
}

func newDescTable(mem *nvm.Memory, workers int) *descTable {
	return &descTable{mem: mem, workers: workers, seq: make([]uint64, workers)}
}

// off returns the word offset of worker w's slot.
func (d *descTable) off(w int, slot uint64) uint64 {
	return (uint64(w)*DescSlots + slot%DescSlots) * descWords
}

// write records (invid, logpos, result) in worker w's next slot and returns
// the record's word offset so a durable-mode caller can flush its line. The
// caller holds the combiner lock of w's node.
func (d *descTable) write(t *sim.Thread, w int, invid, logpos, result uint64) uint64 {
	off := d.off(w, d.seq[w])
	d.seq[w]++
	d.mem.Store(t, off+descInvid, invid)
	d.mem.Store(t, off+descLogPos, logpos)
	d.mem.Store(t, off+descResult, result)
	d.mem.Store(t, off+descFlags, descLive)
	return off
}

// carry records an already-resolved committed operation in worker w's next
// slot — recovery's carry-forward, making the verdict re-queryable if the
// new generation itself crashes before the client learned it.
func (d *descTable) carry(t *sim.Thread, w int, invid, result uint64) {
	off := d.off(w, d.seq[w])
	d.seq[w]++
	d.mem.Store(t, off+descInvid, invid)
	d.mem.Store(t, off+descLogPos, ^uint64(0))
	d.mem.Store(t, off+descResult, result)
	d.mem.Store(t, off+descFlags, descResolved)
}

// scanDescriptors reads the persisted view of a crashed generation's
// descriptor table and classifies every record against horizon: the verdict
// map holds invid → result for every committed operation, keyed per worker
// in byWorker so carry-forward can preserve worker attribution. Absence
// from the map is itself definite: the operation never applied.
func scanDescriptors(mem *nvm.Memory, workers int, horizon uint64) (resolved map[uint64]uint64, byWorker [][][2]uint64) {
	resolved = map[uint64]uint64{}
	byWorker = make([][][2]uint64, workers)
	for w := 0; w < workers; w++ {
		base := uint64(w) * DescSlots * descWords
		for s := uint64(0); s < DescSlots; s++ {
			off := base + s*descWords
			invid := mem.PersistedLoad(off + descInvid)
			if invid == 0 {
				continue
			}
			committed := false
			switch mem.PersistedLoad(off + descFlags) {
			case descLive:
				committed = mem.PersistedLoad(off+descLogPos) < horizon
			case descResolved:
				committed = true
			}
			if committed {
				resolved[invid] = mem.PersistedLoad(off + descResult)
				byWorker[w] = append(byWorker[w], [2]uint64{invid, mem.PersistedLoad(off + descResult)})
			}
		}
	}
	return resolved, byWorker
}
