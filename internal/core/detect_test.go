package core

import (
	"testing"

	"prepuc/internal/history"
	"prepuc/internal/nvm"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// detectCfg is hashCfg with operation descriptors on.
func detectCfg(mode Mode, workers int, logSize, eps uint64) Config {
	cfg := hashCfg(mode, workers, logSize, eps)
	cfg.Detect = true
	return cfg
}

// invidOf gives each (worker, index) pair a unique nonzero invocation id.
func invidOf(tid int, i uint64) uint64 { return uint64(tid+1)<<32 | (i + 1) }

// TestDetectDurableDescriptorCost pins the tentpole's cost claim at the
// counter level: in Durable mode each detectable update writes and flushes
// exactly one descriptor, and the batch fence count is unchanged from the
// legacy combiner — two per batch (metrics_test pins the same bound with
// descriptors off) — because the descriptor flushes share the fence the
// entry args already needed.
func TestDetectDurableDescriptorCost(t *testing.T) {
	cfg := detectCfg(Durable, 1, 256, 64)
	w := newWorld(t, cfg, nvm.Config{Costs: sim.UnitCosts(), Seed: 11}, 1)
	base := w.p.Stats()
	const ops = 5
	runBare(w, 1, func(th *sim.Thread, tid int) {
		for i := uint64(0); i < ops; i++ {
			op := uc.Insert(i, i)
			op.Invid = invidOf(tid, i)
			w.p.Execute(th, tid, op)
		}
		// A non-detectable update and a read cost no descriptor traffic.
		w.p.Execute(th, tid, uc.Insert(100, 100))
		w.p.Execute(th, tid, uc.Get(0))
	})
	d := w.p.Stats().Sub(base)
	if d.DescriptorWrites != ops {
		t.Errorf("descriptor writes = %d for %d detectable updates, want %d",
			d.DescriptorWrites, ops, ops)
	}
	if d.DescriptorFlushes != ops {
		t.Errorf("descriptor flushes = %d, want exactly %d (one line per detectable update)",
			d.DescriptorFlushes, ops)
	}
	// ops+1 single-op batches (the read combines nothing): two fences each,
	// same as the legacy path.
	if d.Fences != 2*(ops+1) {
		t.Errorf("fences = %d over %d single-op update batches, want %d (zero extra for detection)",
			d.Fences, ops+1, 2*(ops+1))
	}
}

// TestDetectBufferedVolatileFlushFree pins the other half of the cost
// claim: Buffered descriptors ride the checkpoint WBINVD (no per-line
// flushes), and Volatile detection costs no persistence traffic at all.
func TestDetectBufferedVolatileFlushFree(t *testing.T) {
	const ops = 6
	for _, tc := range []struct {
		name string
		mode Mode
		eps  uint64
	}{
		{"Buffered", Buffered, 64},
		{"Volatile", Volatile, 0},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := detectCfg(tc.mode, 1, 256, tc.eps)
			w := newWorld(t, cfg, nvm.Config{Costs: sim.UnitCosts(), Seed: 13}, 3)
			base := w.p.Stats()
			runBare(w, 1, func(th *sim.Thread, tid int) {
				for i := uint64(0); i < ops; i++ {
					op := uc.Insert(i, i)
					op.Invid = invidOf(tid, i)
					w.p.Execute(th, tid, op)
				}
			})
			d := w.p.Stats().Sub(base)
			if d.DescriptorWrites != ops {
				t.Errorf("descriptor writes = %d, want %d", d.DescriptorWrites, ops)
			}
			if d.DescriptorFlushes != 0 {
				t.Errorf("descriptor flushes = %d in %s mode, want 0", d.DescriptorFlushes, tc.name)
			}
			if tc.mode == Volatile {
				if d.Flushes != 0 || d.Fences != 0 || d.WBINVDs != 0 {
					t.Errorf("volatile detection issued persistence traffic: flushes=%d fences=%d wbinvds=%d",
						d.Flushes, d.Fences, d.WBINVDs)
				}
			}
		})
	}
}

// detectWorld runs a detectable durable/buffered workload to a crash and
// materializes the post-crash state. Every operation inserts a unique key,
// so the recovered state answers per-invocation "did my effect survive"
// through one Get.
type detectWorld struct {
	cfg       Config
	base      *nvm.System
	completed []uint64 // per worker: ops whose Execute returned pre-crash
	submitted []uint64 // per worker: ops whose Execute was entered
}

func newDetectWorld(t *testing.T, mode Mode, seed int64, crashAt uint64) *detectWorld {
	t.Helper()
	cfg := detectCfg(mode, 4, 128, 16)
	cfg.HeapWords = 1 << 13
	const workers = 4
	w := newWorld(t, cfg, nvm.Config{Costs: sim.UnitCosts(), BGFlushOneIn: 64, Seed: uint64(seed)}, seed)
	dw := &detectWorld{cfg: cfg,
		completed: make([]uint64, workers), submitted: make([]uint64, workers)}
	sch := w.runWorkers(workers, crashAt, func(th *sim.Thread, tid int) {
		for i := uint64(0); ; i++ {
			op := uc.Insert(history.Key(tid, i), history.Key(tid, i))
			op.Invid = invidOf(tid, i)
			dw.submitted[tid] = i + 1
			w.p.Execute(th, tid, op)
			dw.completed[tid] = i + 1
		}
	})
	if !sch.Frozen() {
		t.Fatal("workload finished without crashing; raise crashAt")
	}
	dw.base = w.sys.Recover(sim.New(seed + 5000))
	return dw
}

// corroborate asserts the detectability contract between a resolved map and
// the recovered state: every submitted invocation id resolves committed if
// and only if its (unique) key is present, and committed results carry the
// fresh-key insert's return value. ids never submitted must be absent.
func (dw *detectWorld) corroborate(t *testing.T, sys *nvm.System, rec *PREP, resolved map[uint64]uint64, seed int64) {
	t.Helper()
	sch := sim.New(seed)
	sys.SetScheduler(sch)
	sch.Spawn("probe", 0, 0, func(th *sim.Thread) {
		for tid := range dw.submitted {
			for i := uint64(0); i < dw.submitted[tid]+8; i++ {
				invid := invidOf(tid, i)
				res, committed := resolved[invid]
				if i >= dw.submitted[tid] {
					if committed {
						t.Errorf("worker %d op %d: never submitted but resolved committed", tid, i)
					}
					continue
				}
				present := rec.Execute(th, 0, uc.Get(history.Key(tid, i))) != uc.NotFound
				if committed != present {
					t.Errorf("worker %d op %d: verdict committed=%v but key present=%v",
						tid, i, committed, present)
				}
				if committed && res != 1 {
					t.Errorf("worker %d op %d: resolved result %#x, want 1 (fresh-key insert)",
						tid, i, res)
				}
			}
		}
	})
	sch.Run()
}

// TestDetectCrashResolution is the tentpole's core acceptance: after a
// crash, recovery's resolved map answers completed-with-result or
// never-applied for EVERY submitted invocation id, and the recovered state
// corroborates each verdict. In Durable mode the map must additionally
// cover every operation whose Execute returned (persist-before-respond);
// Buffered mode may lose a completed suffix, but verdict↔state agreement
// is unconditional.
func TestDetectCrashResolution(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode Mode
	}{{"Durable", Durable}, {"Buffered", Buffered}} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			const seed = 211
			dw := newDetectWorld(t, tc.mode, seed, 9000)
			sys := dw.base.Clone(sim.New(seed + 1))
			rec, rep, _ := recoverOn(t, sys, dw.cfg, seed+1, 0)
			if rec == nil {
				t.Fatal("recovery failed")
			}
			if rep.Resolved == nil {
				t.Fatal("detectable recovery returned no resolved map")
			}
			if tc.mode == Durable {
				for tid := range dw.completed {
					for i := uint64(0); i < dw.completed[tid]; i++ {
						if _, ok := rep.Resolved[invidOf(tid, i)]; !ok {
							t.Fatalf("worker %d op %d completed pre-crash but is not resolved committed", tid, i)
						}
					}
				}
			}
			dw.corroborate(t, sys, rec, rep.Resolved, seed+2)
		})
	}
}

// TestDetectDoubleRecoveryIdempotent: recovering a second time — the first
// recovery committed a new generation carrying the verdicts forward — must
// reproduce the identical resolved map, so a client that crashes during its
// own post-recovery dedup can simply ask again.
func TestDetectDoubleRecoveryIdempotent(t *testing.T) {
	const seed = 223
	dw := newDetectWorld(t, Durable, seed, 9000)
	sys := dw.base.Clone(sim.New(seed + 1))
	rec1, rep1, _ := recoverOn(t, sys, dw.cfg, seed+1, 0)
	if rec1 == nil {
		t.Fatal("first recovery failed")
	}
	if rep1.DescriptorsCarried != uint64(len(rep1.Resolved)) {
		t.Errorf("carried %d descriptors, resolved %d verdicts; every verdict must be carried",
			rep1.DescriptorsCarried, len(rep1.Resolved))
	}
	// Crash the machine again without running any workload: the second
	// recovery reads the carried descriptors of the new generation.
	after := sys.Recover(sim.New(seed + 2))
	rec2, rep2, _ := recoverOn(t, after, dw.cfg, seed+2, 0)
	if rec2 == nil {
		t.Fatal("second recovery failed")
	}
	assertSameResolved(t, rep1.Resolved, rep2.Resolved)
	dw.corroborate(t, after, rec2, rep2.Resolved, seed+3)
}

// TestDetectNestedCrashResolutionSweep crashes recovery itself at a stride
// of event indices and re-recovers: whatever the nested crash destroyed,
// the verdict map must come back identical to the uncrashed baseline's.
// (TestCrashSweepInsideRecovery sweeps every index for state durability;
// the stride here keeps the detectable variant proportionate.)
func TestDetectNestedCrashResolutionSweep(t *testing.T) {
	const seed = 227
	dw := newDetectWorld(t, Durable, seed, 9000)

	probe := dw.base.Clone(sim.New(seed + 1))
	rec0, rep0, _ := recoverOn(t, probe, dw.cfg, seed+1, 0)
	if rec0 == nil {
		t.Fatal("baseline recovery failed")
	}
	events := probe.Scheduler().Events()
	stride := events / 24
	if stride == 0 {
		stride = 1
	}
	for k := uint64(1); k <= events; k += stride {
		trial := dw.base.Clone(sim.New(seed + 1)) // same seed: identical schedule
		_, _, frozen := recoverOn(t, trial, dw.cfg, seed+1, k)
		if !frozen {
			t.Fatalf("crash-at=%d: recovery completed before the armed crash", k)
		}
		after := trial.Recover(sim.New(seed + 2))
		rec2, rep2, _ := recoverOn(t, after, dw.cfg, seed+2, 0)
		if rec2 == nil {
			t.Fatalf("crash-at=%d: second recovery failed", k)
		}
		assertSameResolved(t, rep0.Resolved, rep2.Resolved)
		dw.corroborate(t, after, rec2, rep2.Resolved, seed+3)
	}
}

func assertSameResolved(t *testing.T, want, got map[uint64]uint64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("resolved %d invocation ids, want %d", len(got), len(want))
	}
	for id, r := range want {
		if g, ok := got[id]; !ok || g != r {
			t.Fatalf("invid %#x: resolved (%#x,%v), want (%#x,true)", id, g, ok, r)
		}
	}
}
