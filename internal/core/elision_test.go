package core

import (
	"testing"

	"prepuc/internal/nvm"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// runStaggered runs fn for each listed worker WITHOUT the persistence
// thread, like runBare, but starts each worker at its own virtual clock so a
// test can force strict ordering between combiners on different nodes (the
// second combiner then catches up over the first one's already-persisted
// entries — the durable path's elision case).
func runStaggered(w *world, tids []int, starts []uint64, fn func(th *sim.Thread, tid int)) {
	sch := sim.New(w.seed + 500)
	w.sys.SetScheduler(sch)
	for i, tid := range tids {
		tid := tid
		node := w.p.Config().Topology.NodeOf(tid)
		sch.Spawn("worker", node, starts[i], func(th *sim.Thread) { fn(th, tid) })
	}
	sch.Run()
}

// TestDurableElisionExactCounts pins the Durable combine path's flush
// accounting with elision on, at exact counts (mirroring the 2-fence test
// style above). Worker A (node 0) completes one insert before worker B
// (node 1) starts; B's combiner catch-up (applyLog) re-flushes A's log entry
// line, which A already flushed and fenced — the one clean-line flush the
// substrate elides here.
//
// Per single-op durable combine: 2 tracked FlushLines (args, full mark — the
// full-mark store re-dirties the line after the first fence persisted it),
// 2 fences, 1 sync flush of the CASed (dirty) completedTail line. B adds one
// catch-up FlushLine of A's entry line: clean ⇒ elided.
func TestDurableElisionExactCounts(t *testing.T) {
	cfg := hashCfg(Durable, 8, 256, 64) // 8 workers: tids 0 and 4 sit on different nodes
	w := newWorld(t, cfg, nvm.Config{Costs: sim.UnitCosts(), Seed: 21}, 5)
	base := w.p.Stats()
	runStaggered(w, []int{0, 4}, []uint64{0, 200_000}, func(th *sim.Thread, tid int) {
		w.p.Execute(th, tid, uc.Insert(uint64(tid), 1))
	})
	d := w.p.Stats().Sub(base)
	if d.CombinerAcquisitions != 2 || d.CombinedOps != 2 {
		t.Fatalf("combines = %d (%d ops), want 2 batches of 1", d.CombinerAcquisitions, d.CombinedOps)
	}
	if d.FlushAsync != 4 || d.FlushSync != 2 {
		t.Errorf("flush_async=%d flush_sync=%d, want 4,2", d.FlushAsync, d.FlushSync)
	}
	if d.FlushesElided != 1 {
		t.Errorf("flushes_elided = %d, want exactly 1 (B's catch-up over A's clean entry)", d.FlushesElided)
	}
	if d.FlushElisionChecks != 7 {
		t.Errorf("flush_elision_checks = %d, want 7 (every flush request consulted)", d.FlushElisionChecks)
	}
	if d.Fences != 4 {
		t.Errorf("fences = %d, want 4", d.Fences)
	}
}

// TestDurableBatchElisionExactCounts pins the same accounting on the
// ExecuteBatch path, and checks the delta bookkeeping against a reference
// no-elision run of the identical workload: the elided count is exactly the
// extra FlushAsync the reference mode pays, and the persisted object state
// is identical in both modes.
func TestDurableBatchElisionExactCounts(t *testing.T) {
	const k = 5 // ops per batch; 3 batches of k stay below ε=64
	run := func(noElide bool) (d struct {
		async, sync, elided, checks uint64
	}, size uint64) {
		cfg := hashCfg(Durable, 8, 256, 64)
		cfg.NoFlushElision = noElide
		w := newWorld(t, cfg, nvm.Config{Costs: sim.UnitCosts(), Seed: 22}, 6)
		base := w.p.Stats()
		ops := func(tid int) []uc.Op {
			out := make([]uc.Op, k)
			for i := range out {
				out[i] = uc.Insert(uint64(tid)<<32|uint64(i), uint64(i))
			}
			return out
		}
		// A batch on node 0, then (strictly later) one on node 1, then one
		// more on node 0 — the node-1 combiner catches up over A's k entries,
		// and the second node-0 combiner over the node-1 batch's k entries.
		runStaggered(w, []int{0, 4, 1}, []uint64{0, 200_000, 400_000}, func(th *sim.Thread, tid int) {
			w.p.ExecuteBatch(th, tid, ops(tid), make([]uint64, k))
		})
		delta := w.p.Stats().Sub(base)
		d.async, d.sync = delta.FlushAsync, delta.FlushSync
		d.elided, d.checks = delta.FlushesElided, delta.FlushElisionChecks
		w.query(func(th *sim.Thread) { size = w.p.Execute(th, 0, uc.Size()) })
		return d, size
	}

	on, sizeOn := run(false)
	off, sizeOff := run(true)

	// Elision on: per batch 2k tracked flushes + 1 sync; the 2nd and 3rd
	// combiners each elide k clean catch-up flushes.
	if on.async != 3*2*k || on.sync != 3 {
		t.Errorf("elision on: flush_async=%d flush_sync=%d, want %d,3", on.async, on.sync, 3*2*k)
	}
	if on.elided != 2*k {
		t.Errorf("elision on: flushes_elided=%d, want %d", on.elided, 2*k)
	}
	if on.checks != 3*(2*k+1)+2*k {
		t.Errorf("elision on: checks=%d, want %d", on.checks, 3*(2*k+1)+2*k)
	}
	// Reference mode: zero elision accounting; the catch-up flushes land in
	// flush_async instead, so flushes_elided accounts exactly for the delta.
	if off.elided != 0 || off.checks != 0 {
		t.Errorf("elision off: elided=%d checks=%d, want 0,0", off.elided, off.checks)
	}
	if off.async != on.async+on.elided {
		t.Errorf("flush_async off=%d, want on(%d) + elided(%d)", off.async, on.async, on.elided)
	}
	if off.sync != on.sync {
		t.Errorf("flush_sync off=%d on=%d, want equal", off.sync, on.sync)
	}
	if sizeOn != 3*k || sizeOff != 3*k {
		t.Errorf("object size on=%d off=%d, want %d", sizeOn, sizeOff, 3*k)
	}
}
