package core

import (
	"fmt"

	"prepuc/internal/locks"
	"prepuc/internal/metrics"
	"prepuc/internal/nvm"
	"prepuc/internal/oplog"
	"prepuc/internal/pmem"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// Per-replica control memory layout (word offsets). Locks, the localTail
// and the flat-combining batch live in node-local volatile memory so worker
// threads pay local access costs, exactly like NR-UC's per-node replica
// metadata. The reader–writer lock is NR's distributed lock — one cache
// line per reader — so read-only operations never ping-pong a shared lock
// word; its region starts at ctrlRW and spans (1+β) lines, with the β
// flat-combining slots following it.
const (
	ctrlCombiner  = 0  // combiner trylock word
	ctrlLocalTail = 8  // replica's localTail
	ctrlUpdateNow = 16 // updateReplicaNow flag for this replica
	ctrlRW        = 24 // distributed reader–writer lock region
	slotWords     = 8  // one cache line per batch slot
	slotState     = 0
	slotCode      = 1
	slotA0        = 2
	slotA1        = 3
	slotResp      = 4
	slotInvid     = 5 // invocation id for detectable execution (0 = none)
)

// Batch slot states.
const (
	slotEmpty   = 0
	slotPending = 1
	slotDone    = 2
)

// Global control memory layout (volatile, interleaved).
const (
	gFlushBoundary = 0
	gStop          = 8
	gPTail0        = 16 // volatile mirror of persistent replica 0's localTail
	gPTail1        = 24
	gActive        = 32 // volatile mirror of p_activePReplica
)

// Persistent metadata memory layout (NVM).
const metaActive = 0 // p_activePReplica

// commitMemName is the generation-commit record (uc.CommitCell): one NVM
// line, shared by every generation (the name carries no g%d prefix).
// Recovery starts from the committed generation and flips the record only
// after the rebuilt generation's checkpoint, which is what makes Recover
// re-entrant: killed at any event and re-run, it reads the same source state.
const commitMemName = "prep.commit"

// The heap root slot where each persistent replica stores its localTail
// (slot 0 is the sequential object's own root).
const pTailRootSlot = 1

// replica is one NUMA node's volatile replica with its flat-combining state.
type replica struct {
	node     int
	heap     *nvm.Memory
	alloc    *pmem.Allocator
	ds       uc.DataStructure
	ctrl     *nvm.Memory
	combiner locks.TryLock
	rw       locks.DistRWLock
	// slotsBase is where the β flat-combining slots start in ctrl.
	slotsBase uint64
	// flusher is used only while holding the combiner lock (durable mode),
	// so it is effectively thread-exclusive.
	flusher *nvm.Flusher
	// batchScratch backs the combiner's batch slice; like flusher it is only
	// touched under the combiner lock, so one buffer per replica suffices.
	batchScratch []int
	// resScratch buffers the detectable path's batch results between apply
	// and response delivery (persist-before-respond); combiner-lock
	// protected like batchScratch.
	resScratch []uint64
}

func (r *replica) localTail(t *sim.Thread) uint64 { return r.ctrl.Load(t, ctrlLocalTail) }
func (r *replica) setLocalTail(t *sim.Thread, v uint64) {
	r.ctrl.Store(t, ctrlLocalTail, v)
}
func (r *replica) updateNow(t *sim.Thread) bool { return r.ctrl.Load(t, ctrlUpdateNow) != 0 }
func (r *replica) setUpdateNow(t *sim.Thread, v uint64) {
	r.ctrl.Store(t, ctrlUpdateNow, v)
}
func (r *replica) slotOff(slot int) uint64 { return r.slotsBase + uint64(slot)*slotWords }

// pReplica is one of the two dedicated persistent replicas (§4.1).
type pReplica struct {
	id    int
	heap  *nvm.Memory
	alloc *pmem.Allocator
	ds    uc.DataStructure
}

// PREP is one instance of the PREP-UC universal construction.
type PREP struct {
	cfg   Config
	sys   *nvm.System
	log   *oplog.Log
	beta  uint64
	nodes int
	reps   []*replica
	preps  []*pReplica
	meta   *nvm.Memory
	commit uc.CommitCell // generation-commit record; zero in Volatile mode
	gctrl  *nvm.Memory
	desc   *descTable // operation descriptors; nil unless cfg.Detect
	met    *metrics.Registry
}

var (
	_ uc.UC           = (*PREP)(nil)
	_ uc.Instrumented = (*PREP)(nil)
)

func (c Config) memName(s string) string {
	if c.Instance == "" {
		return fmt.Sprintf("g%d.%s", c.Generation, s)
	}
	return fmt.Sprintf("%s.g%d.%s", c.Instance, c.Generation, s)
}

// commitName is the instance's generation-commit record name. Like memName
// it is prefixed by Config.Instance, so co-resident engines keep disjoint
// commit records; the bare name is preserved for single-instance systems
// (every existing persisted layout).
func (c Config) commitName() string {
	if c.Instance == "" {
		return commitMemName
	}
	return c.Instance + "." + commitMemName
}

// New builds a PREP-UC instance inside sys. In persistent modes it also
// writes the initial checkpoint (empty persistent replicas plus metadata)
// and commits the generation, so a crash before the first persistence cycle
// recovers an empty object.
func New(t *sim.Thread, sys *nvm.System, cfg Config) (*PREP, error) {
	p, err := newEngine(t, sys, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Mode.Persistent() {
		p.commitGeneration(t)
	}
	return p, nil
}

// newEngine builds the engine without committing its generation. Recover
// uses it directly: the new generation must not become the recovery source
// until its replicas hold the recovered state and are checkpointed.
func newEngine(t *sim.Thread, sys *nvm.System, cfg Config) (*PREP, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.NoFlushElision {
		// The ablation only ever disables elision: a system booted with
		// elision off (nvm.Config.NoFlushElision) stays off regardless of the
		// engine config, so a harness-wide reference run cannot be undone.
		sys.SetFlushElision(false)
	}
	p := &PREP{
		cfg:   cfg,
		sys:   sys,
		beta:  uint64(cfg.Topology.ThreadsPerNode),
		nodes: cfg.Topology.NodesFor(cfg.Workers),
		met:   sys.Metrics(),
	}
	logKind := nvm.Volatile
	if cfg.Mode == Durable {
		logKind = nvm.NVM
	}
	logMem := sys.NewMemory(cfg.memName("log"), logKind, nvm.Interleaved, oplog.WordsFor(cfg.LogSize))
	p.log = oplog.New(t, logMem, cfg.LogSize)

	p.gctrl = sys.NewMemory(cfg.memName("gctrl"), nvm.Volatile, nvm.Interleaved, 64)
	if cfg.Mode.Persistent() {
		p.gctrl.Store(t, gFlushBoundary, cfg.Epsilon)
	}

	if cfg.Detect {
		// The descriptor table shares the log's placement: written by any
		// node's combiner, read only by recovery. It is volatile in Volatile
		// mode (descriptors still record, for API uniformity and tests, but
		// nothing persists them).
		descKind := nvm.Volatile
		if cfg.Mode.Persistent() {
			descKind = nvm.NVM
		}
		p.desc = newDescTable(
			sys.NewMemory(cfg.memName("desc"), descKind, nvm.Interleaved, descTableWords(cfg.Workers)),
			cfg.Workers)
	}

	slotsBase := ctrlRW + locks.DistRWLockWords(int(p.beta))
	for node := 0; node < p.nodes; node++ {
		heap := sys.NewMemory(cfg.memName(fmt.Sprintf("rheap%d", node)), nvm.Volatile, node, cfg.HeapWords)
		alloc := pmem.New(t, heap)
		r := &replica{
			node:      node,
			heap:      heap,
			alloc:     alloc,
			ds:        cfg.Factory(t, alloc),
			ctrl:      sys.NewMemory(cfg.memName(fmt.Sprintf("rctrl%d", node)), nvm.Volatile, node, slotsBase+p.beta*slotWords),
			slotsBase: slotsBase,
		}
		r.batchScratch = make([]int, 0, p.beta) // a batch holds at most β slots
		r.combiner = locks.NewTryLock(r.ctrl, ctrlCombiner)
		r.rw = locks.NewDistRWLock(r.ctrl, ctrlRW, int(p.beta))
		if cfg.Mode == Durable {
			r.flusher = sys.NewFlusher()
		}
		p.reps = append(p.reps, r)
	}

	if cfg.Mode.Persistent() {
		pn := cfg.Topology.PersistenceNode()
		p.meta = sys.NewMemory(cfg.memName("meta"), nvm.NVM, pn, nvm.WordsPerLine)
		nP := 2
		if cfg.SinglePReplica {
			nP = 1
		}
		for i := 0; i < nP; i++ {
			heap := sys.NewMemory(cfg.memName(fmt.Sprintf("pheap%d", i)), nvm.NVM, pn, cfg.HeapWords)
			alloc := pmem.New(t, heap)
			pr := &pReplica{id: i, heap: heap, alloc: alloc, ds: cfg.Factory(t, alloc)}
			alloc.SetRoot(t, pTailRootSlot, 0)
			p.preps = append(p.preps, pr)
		}
		p.meta.Store(t, metaActive, 0)
		p.gctrl.Store(t, gActive, 0)
		// The commit record spans generations, so only the first engine in a
		// machine's lineage creates it; recovered generations attach.
		p.commit = uc.EnsureCommitCell(sys, cfg.commitName(), pn)
		p.checkpoint(t)
	}
	return p, nil
}

// commitGeneration durably marks this engine's generation as the one
// recovery must start from. Callers run it only after the generation's
// persistent replicas hold their intended initial state and are
// checkpointed.
func (p *PREP) commitGeneration(t *sim.Thread) {
	p.commit.Commit(t, p.cfg.Generation)
}

// committedGeneration reads the instance's persisted commit record,
// returning fallback when the record is absent (a machine booted by a
// pre-commit-record build) or unwritten.
func committedGeneration(recSys *nvm.System, cfg Config, fallback int) int {
	return uc.CommittedGeneration(recSys, cfg.commitName(), fallback)
}

// checkpoint persists every persistent replica and the metadata word. With
// detectable execution the descriptor table is checkpointed too: Buffered
// mode's descriptors are plain volatile-path stores whose durability rides
// this WBINVD, and the ordering below (descriptors written before full
// marks, the persistence thread applying only full entries, the stable tail
// advancing only through a checkpoint) guarantees every operation the
// stable replica contains has a durable descriptor.
func (p *PREP) checkpoint(t *sim.Thread) {
	mems := make([]*nvm.Memory, 0, 3)
	for _, pr := range p.preps {
		mems = append(mems, pr.heap)
	}
	if p.desc != nil {
		mems = append(mems, p.desc.mem)
	}
	p.sys.WBINVD(t, mems...)
	f := p.sys.NewFlusher()
	f.FlushLineSync(t, p.meta, metaActive)
}

// Prefill applies ops directly to every replica — volatile and persistent —
// before measurement, then re-checkpoints the persistent state. It must run
// before any worker executes operations (the log stays empty; prefilled
// state plays the role of the recovered-from checkpoint).
func (p *PREP) Prefill(t *sim.Thread, ops []uc.Op) {
	for _, r := range p.reps {
		for _, op := range ops {
			r.ds.Execute(t, op.Code, op.A0, op.A1)
		}
	}
	for _, pr := range p.preps {
		for _, op := range ops {
			pr.ds.Execute(t, op.Code, op.A0, op.A1)
		}
	}
	if p.cfg.Mode.Persistent() {
		p.checkpoint(t)
	}
}

// Config returns the configuration the engine was built with.
func (p *PREP) Config() Config { return p.cfg }

// DumpState returns replica 0's state as the flat (code, a0, a1) triples its
// Dump emits. Tests compare dumps across recovery attempts for idempotence.
func (p *PREP) DumpState(t *sim.Thread) []uint64 {
	var out []uint64
	p.reps[0].ds.Dump(t, func(code, a0, a1 uint64) {
		out = append(out, code, a0, a1)
	})
	return out
}

// Log exposes the shared log (tests and the harness use it).
func (p *PREP) Log() *oplog.Log { return p.log }

// Stats snapshots the machine-wide metrics registry (uc.Instrumented).
func (p *PREP) Stats() metrics.Snapshot { return p.met.Snapshot() }

// Nodes returns the number of populated NUMA nodes (volatile replicas).
func (p *PREP) Nodes() int { return p.nodes }

// flushBoundary accessors.
func (p *PREP) flushBoundary(t *sim.Thread) uint64 { return p.gctrl.Load(t, gFlushBoundary) }
func (p *PREP) setFlushBoundary(t *sim.Thread, v uint64) {
	p.gctrl.Store(t, gFlushBoundary, v)
}

// pTail reads the volatile mirror of persistent replica i's localTail.
func (p *PREP) pTail(t *sim.Thread, i int) uint64 {
	return p.gctrl.Load(t, gPTail0+uint64(i)*nvm.WordsPerLine)
}

// setPTail writes both the volatile mirror and the NVM copy (heap root
// slot); the NVM copy rides to the media with the next WBINVD, keeping the
// persisted (state, localTail) pair consistent.
func (p *PREP) setPTail(t *sim.Thread, pr *pReplica, v uint64) {
	p.gctrl.Store(t, gPTail0+uint64(pr.id)*nvm.WordsPerLine, v)
	pr.alloc.SetRoot(t, pTailRootSlot, v)
}

// activeP reads the volatile mirror of p_activePReplica.
func (p *PREP) activeP(t *sim.Thread) uint64 { return p.gctrl.Load(t, gActive) }

// backoff is truncated exponential backoff for spin loops. Under the
// virtual-time scheduler a blocked thread otherwise wakes every dozen
// nanoseconds, which is both unrealistic (real spinners execute PAUSE and
// get descheduled) and slow to simulate.
type backoff struct{ cur uint64 }

func (b *backoff) spin(t *sim.Thread, cap uint64) {
	if b.cur == 0 {
		b.cur = 16
	}
	t.Step(b.cur)
	if b.cur < cap {
		b.cur *= 2
	}
}

func (b *backoff) reset() { b.cur = 0 }

// Execute implements the paper's ExecuteConcurrent: run op on behalf of
// worker tid and return its result.
func (p *PREP) Execute(t *sim.Thread, tid int, op uc.Op) uint64 {
	t.Step(p.sys.Costs().OpBase)
	node := p.cfg.Topology.NodeOf(tid)
	rep := p.reps[node]
	slot := p.cfg.Topology.SlotOf(tid)
	if rep.ds.IsReadOnly(op.Code) {
		p.met.Reads++
		return p.readOnly(t, rep, slot, op)
	}
	p.met.Updates++
	return p.update(t, rep, slot, op)
}

// readOnly performs a read-only operation: the thread waits (helping if it
// can) until the local replica has applied everything up to completedTail,
// then reads under its slot of the distributed reader lock (§3).
func (p *PREP) readOnly(t *sim.Thread, rep *replica, slot int, op uc.Op) uint64 {
	ct := p.log.CompletedTail(t)
	var b backoff
	for rep.localTail(t) < ct {
		if rep.combiner.TryAcquire(t) {
			if rep.localTail(t) < ct {
				rep.rw.WriteLock(t)
				p.catchUp(t, rep, p.log.CompletedTail(t))
				rep.rw.WriteUnlock(t)
			}
			rep.combiner.Release(t)
			break
		}
		b.spin(t, 512)
	}
	rep.rw.ReadLock(t, slot)
	res := rep.ds.Execute(t, op.Code, op.A0, op.A1)
	rep.rw.ReadUnlock(t, slot)
	return res
}

// catchUp applies log entries [localTail, upTo) to rep. Callers hold the
// replica's combiner lock and write lock.
func (p *PREP) catchUp(t *sim.Thread, rep *replica, upTo uint64) {
	from := rep.localTail(t)
	if from >= upTo {
		return
	}
	p.applyLog(t, rep.ds, from, upTo, nil, func(applied uint64) {
		rep.setLocalTail(t, applied)
	})
}

// applyLog replays entries [from, to) onto ds, spinning until each entry is
// full. When f is non-nil (a durable-mode combiner about to advance
// completedTail), every applied entry's line is also asynchronously flushed
// so that the caller's fence + completedTail persist cannot cover an
// unpersisted entry of another combiner (see DESIGN.md §3).
//
// progress (optional) is invoked after each applied entry with the new
// applied-up-to index. Publishing the replica's localTail incrementally is
// load-bearing for liveness: an applier can stall mid-replay on an entry
// that a *blocked* combiner reserved but has not written, and that combiner
// may itself be waiting (in UpdateOrWaitOnLogMin) for this replica's
// localTail to move past the reuse horizon — without incremental progress
// the two would deadlock.
func (p *PREP) applyLog(t *sim.Thread, ds uc.DataStructure, from, to uint64, f *nvm.Flusher, progress func(uint64)) {
	var b backoff
	for idx := from; idx < to; idx++ {
		b.reset() // each entry restarts the truncated-exponential ladder
		for !p.log.IsFull(t, idx) {
			b.spin(t, 512)
		}
		code, a0, a1 := p.log.ReadEntry(t, idx)
		if f != nil {
			f.FlushLine(t, p.log.Mem(), p.log.EntryOff(idx))
		}
		ds.Execute(t, code, a0, a1)
		if progress != nil {
			progress(idx + 1)
		}
	}
}

// update performs an update operation through flat combining (§3): publish
// the op in this thread's batch slot, then either become the combiner or
// wait for a combiner to deliver the response.
func (p *PREP) update(t *sim.Thread, rep *replica, slot int, op uc.Op) uint64 {
	so := rep.slotOff(slot)
	rep.ctrl.Store(t, so+slotCode, op.Code)
	rep.ctrl.Store(t, so+slotA0, op.A0)
	rep.ctrl.Store(t, so+slotA1, op.A1)
	if p.desc != nil {
		rep.ctrl.Store(t, so+slotInvid, op.Invid)
	}
	rep.ctrl.Store(t, so+slotState, slotPending)
	var b backoff
	for {
		if rep.ctrl.Load(t, so+slotState) == slotDone {
			rep.ctrl.Store(t, so+slotState, slotEmpty)
			return rep.ctrl.Load(t, so+slotResp)
		}
		if rep.combiner.TryAcquire(t) {
			if rep.ctrl.Load(t, so+slotState) == slotDone {
				// A previous combiner already serviced us.
				rep.combiner.Release(t)
				rep.ctrl.Store(t, so+slotState, slotEmpty)
				return rep.ctrl.Load(t, so+slotResp)
			}
			res := p.combine(t, rep, slot)
			rep.combiner.Release(t)
			return res
		}
		b.spin(t, 1024)
	}
}

// combine runs the combiner protocol for rep. The caller holds rep's
// combiner lock and has a pending op in mySlot. Returns the caller's result.
func (p *PREP) combine(t *sim.Thread, rep *replica, mySlot int) uint64 {
	durable := p.cfg.Mode == Durable
	f := rep.flusher // nil outside durable mode

	// Collect the batch: every pending slot on this node (or just ours under
	// the no-batching ablation). The scratch buffer is combiner-lock
	// protected, so reusing it allocates only on the first combine.
	batch := rep.batchScratch[:0]
	if p.cfg.NoBatching {
		batch = append(batch, mySlot)
	} else {
		for s := 0; s < int(p.beta); s++ {
			if rep.ctrl.Load(t, rep.slotOff(s)+slotState) == slotPending {
				batch = append(batch, s)
			}
		}
	}
	rep.batchScratch = batch // keep any growth for the next combiner
	num := uint64(len(batch))
	p.met.ObserveBatch(num)

	if p.desc != nil {
		for _, s := range batch {
			if rep.ctrl.Load(t, rep.slotOff(s)+slotInvid) != 0 {
				return p.combineDetect(t, rep, mySlot, batch)
			}
		}
	}

	tail := p.reserveLogEntries(t, rep, num)
	newTail := tail + num

	// Write arguments and codes for the whole batch; durable mode flushes
	// each entry line and fences once (§4.1), then sets emptyBits, flushes
	// and fences again so full marks are durable before completedTail can
	// cover them.
	for i, s := range batch {
		so := rep.slotOff(s)
		code := rep.ctrl.Load(t, so+slotCode)
		a0 := rep.ctrl.Load(t, so+slotA0)
		a1 := rep.ctrl.Load(t, so+slotA1)
		p.log.WriteArgs(t, tail+uint64(i), code, a0, a1)
		if durable {
			f.FlushLine(t, p.log.Mem(), p.log.EntryOff(tail+uint64(i)))
		}
	}
	if durable {
		f.Fence(t)
	}
	for i := uint64(0); i < num; i++ {
		p.log.SetFull(t, tail+i)
		if durable {
			f.FlushLine(t, p.log.Mem(), p.log.EntryOff(tail+i))
		}
	}

	rep.rw.WriteLock(t)
	// Bring the local replica up to date with operations preceding our
	// batch; in durable mode their entry lines join our pending flush set.
	// localTail is published per applied entry (see applyLog) and then
	// advanced over our own batch, which we are guaranteed to apply below.
	p.applyLog(t, rep.ds, rep.localTail(t), tail, f, func(applied uint64) {
		rep.setLocalTail(t, applied)
	})
	rep.setLocalTail(t, newTail)
	if durable {
		f.Fence(t)
	}

	// Advance completedTail to cover the batch (monotonic CAS loop), and in
	// durable mode make it persistent before any response is written.
	for {
		ct := p.log.CompletedTail(t)
		if ct >= newTail {
			break
		}
		if p.log.CASCompletedTail(t, ct, newTail) {
			break
		}
	}
	if durable {
		p.log.PersistCompletedTail(t, f)
	}

	// Apply the batch and deliver responses.
	var myRes uint64
	for i, s := range batch {
		code, a0, a1 := p.log.ReadEntry(t, tail+uint64(i))
		res := rep.ds.Execute(t, code, a0, a1)
		so := rep.slotOff(s)
		if s == mySlot {
			myRes = res
			rep.ctrl.Store(t, so+slotState, slotEmpty)
		} else {
			rep.ctrl.Store(t, so+slotResp, res)
			rep.ctrl.Store(t, so+slotState, slotDone)
		}
	}
	rep.rw.WriteUnlock(t)
	return myRes
}

// combineDetect is combine() in detectable order, taken when the batch
// carries at least one invocation id. The difference from the legacy path
// is *when* the batch executes and the full marks appear: the local replica
// is caught up and the batch applied (computing results) first, each
// detectable operation's descriptor is written — and, durable, flushed —
// next, and only after the fence covering those descriptors do the full
// marks go up. The full marks are the operations' only escape hatch: no
// other combiner, no persistence thread, and no persisted completedTail can
// cover an entry before its mark is set, so by the time any effect of the
// batch can survive a crash, its descriptors already have. Cost relative to
// the legacy path: one flush per detectable operation and zero extra fences
// (the descriptor flushes share the fence the entry args already needed).
//
// Liveness is unchanged: between reservation and the full marks this
// combiner only waits on entries *below* its reservation (the catch-up),
// exactly like the legacy path waits during its own catch-up; induction on
// the earliest unfull reserved entry goes through as before.
func (p *PREP) combineDetect(t *sim.Thread, rep *replica, mySlot int, batch []int) uint64 {
	durable := p.cfg.Mode == Durable
	f := rep.flusher
	num := uint64(len(batch))

	tail := p.reserveLogEntries(t, rep, num)
	newTail := tail + num

	// Publish the batch's args (entries stay not-full).
	for i, s := range batch {
		so := rep.slotOff(s)
		p.log.WriteArgs(t, tail+uint64(i),
			rep.ctrl.Load(t, so+slotCode), rep.ctrl.Load(t, so+slotA0), rep.ctrl.Load(t, so+slotA1))
		if durable {
			f.FlushLine(t, p.log.Mem(), p.log.EntryOff(tail+uint64(i)))
		}
	}

	rep.rw.WriteLock(t)
	p.applyLog(t, rep.ds, rep.localTail(t), tail, f, func(applied uint64) {
		rep.setLocalTail(t, applied)
	})

	// Apply the batch in log order, recording a descriptor per detectable
	// operation. Results are buffered host-side and delivered only after
	// persist-before-respond below.
	if cap(rep.resScratch) < len(batch) {
		rep.resScratch = make([]uint64, p.beta)
	}
	resBuf := rep.resScratch[:len(batch)]
	for i, s := range batch {
		so := rep.slotOff(s)
		code, a0, a1 := p.log.ReadEntry(t, tail+uint64(i))
		resBuf[i] = rep.ds.Execute(t, code, a0, a1)
		if invid := rep.ctrl.Load(t, so+slotInvid); invid != 0 {
			w := rep.node*int(p.beta) + s // slot owner's worker tid
			off := p.desc.write(t, w, invid, tail+uint64(i), resBuf[i])
			p.met.DescriptorWrites++
			if durable {
				f.FlushLine(t, p.desc.mem, off)
				p.met.DescriptorFlushes++
			}
		}
	}
	if durable {
		f.Fence(t) // entries, catch-up lines and descriptors all durable
	}
	for i := uint64(0); i < num; i++ {
		p.log.SetFull(t, tail+i)
		if durable {
			f.FlushLine(t, p.log.Mem(), p.log.EntryOff(tail+i))
		}
	}
	rep.setLocalTail(t, newTail)
	if durable {
		f.Fence(t)
	}
	for {
		ct := p.log.CompletedTail(t)
		if ct >= newTail {
			break
		}
		if p.log.CASCompletedTail(t, ct, newTail) {
			break
		}
	}
	if durable {
		p.log.PersistCompletedTail(t, f)
	}

	var myRes uint64
	for i, s := range batch {
		so := rep.slotOff(s)
		if s == mySlot {
			myRes = resBuf[i]
			rep.ctrl.Store(t, so+slotState, slotEmpty)
		} else {
			rep.ctrl.Store(t, so+slotResp, resBuf[i])
			rep.ctrl.Store(t, so+slotState, slotDone)
		}
	}
	rep.rw.WriteUnlock(t)
	return myRes
}
