package core

import (
	"testing"

	"prepuc/internal/nvm"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// BenchmarkDurableFlushPath is the wall-clock benchmark of the durable hot
// path recorded in BENCH_wallclock.json: boot a small PREP-Durable engine
// and push 8 workers × 8 batches × 8 ops through combine — entry flushes,
// fences, combiner catch-up over other nodes' entries (the elision site) and
// the completedTail sync flush. The CI bench-smoke guards its ns/op at the
// usual 2x threshold, so a regression in the per-flush state lookup or the
// pending-set bookkeeping shows up even when virtual-time figures hide it.
func BenchmarkDurableFlushPath(b *testing.B) {
	b.ReportAllocs()
	const workers, batches, k = 8, 8, 8
	cfg := hashCfg(Durable, workers, 4096, 64)
	for i := 0; i < b.N; i++ {
		sch := sim.New(1)
		sys := nvm.NewSystem(sch, nvm.Config{Seed: 1})
		var p *PREP
		var err error
		sch.Spawn("boot", 0, 0, func(th *sim.Thread) { p, err = New(th, sys, cfg) })
		sch.Run()
		if err != nil {
			b.Fatal(err)
		}
		sch = sim.New(2)
		sys.SetScheduler(sch)
		// The workers outrun the flush boundary, so the persistence thread
		// must run to pace them — exactly the production geometry.
		p.SpawnPersistence(0)
		remaining := workers
		for tid := 0; tid < workers; tid++ {
			tid := tid
			node := cfg.Topology.NodeOf(tid)
			sch.Spawn("worker", node, 0, func(th *sim.Thread) {
				ops := make([]uc.Op, k)
				res := make([]uint64, k)
				for bn := 0; bn < batches; bn++ {
					for j := range ops {
						ops[j] = uc.Insert(uint64(tid)<<32|uint64(bn*k+j), 1)
					}
					p.ExecuteBatch(th, tid, ops, res)
				}
				remaining--
				if remaining == 0 {
					p.StopPersistence(th)
				}
			})
		}
		sch.Run()
		if remaining != 0 {
			b.Fatalf("%d workers did not finish", remaining)
		}
	}
}
