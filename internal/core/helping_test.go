package core

import (
	"testing"

	"prepuc/internal/nvm"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// TestReaderHelpsWhenNoCombiner exercises the read-only helping path: after
// updates from node 0 complete, a reader on node 1 (whose replica is stale
// and has no active combiner) must catch the replica up itself.
func TestReaderHelpsWhenNoCombiner(t *testing.T) {
	w := newWorld(t, hashCfg(Volatile, 8, 256, 0), nvm.Config{Costs: sim.UnitCosts()}, 301)
	// Phase 1: single worker on node 0 performs updates.
	w.runWorkers(1, 0, func(th *sim.Thread, tid int) {
		for k := uint64(0); k < 30; k++ {
			w.p.Execute(th, tid, uc.Insert(k, k))
		}
	})
	// Phase 2: a reader pinned to node 1 (tid 4 with β=4) reads; node 1's
	// replica has never been touched, so the reader must self-help.
	sch := sim.New(999)
	w.sys.SetScheduler(sch)
	sch.Spawn("reader", 1, 0, func(th *sim.Thread) {
		for k := uint64(0); k < 30; k++ {
			if got := w.p.Execute(th, 4, uc.Get(k)); got != k {
				t.Errorf("reader on stale node: get(%d) = %d", k, got)
			}
		}
	})
	sch.Run()
}

// TestCrossNodeHelpWhenNodeQuiescent forces the log to wrap while node 1 is
// completely idle; node 0's combiners must help node 1's replica directly or
// the run deadlocks (caught by the test timeout).
func TestCrossNodeHelpWhenNodeQuiescent(t *testing.T) {
	cfg := hashCfg(Volatile, 8, 32, 0) // tiny log: wraps constantly
	w := newWorld(t, cfg, nvm.Config{Costs: sim.UnitCosts()}, 302)
	// First touch node 1's replica so it exists and is behind, then go idle.
	w.runWorkers(8, 0, func(th *sim.Thread, tid int) {
		if tid >= 4 { // node 1 workers do one op then stop
			w.p.Execute(th, tid, uc.Insert(9999 + uint64(tid), 1))
			return
		}
		for i := uint64(0); i < 200; i++ { // node 0 wraps the log many times
			w.p.Execute(th, tid, uc.Insert(uint64(tid)*1000 + i, i))
		}
	})
	if w.p.Stats().CrossNodeHelps == 0 {
		t.Log("note: run completed without cross-node helps (updateReplicaNow sufficed)")
	}
	w.query(func(th *sim.Thread) {
		if got := w.p.Execute(th, 0, uc.Size()); got != 4*200+4 {
			t.Errorf("size = %d, want %d", got, 4*200+4)
		}
	})
}

// TestBoundaryReductionUnblocksStablePReplica uses a log barely larger than
// ε so the stable persistent replica pins logMin; combiners must reduce the
// flush boundary to force a persistence cycle.
func TestBoundaryReductionUnblocksStablePReplica(t *testing.T) {
	cfg := hashCfg(Buffered, 8, 64, 32)
	w := newWorld(t, cfg, nvm.Config{Costs: sim.UnitCosts()}, 303)
	w.runWorkers(8, 0, func(th *sim.Thread, tid int) {
		for i := uint64(0); i < 100; i++ {
			w.p.Execute(th, tid, uc.Insert(uint64(tid)*1000 + i, i))
		}
	})
	// The run completing at all (log of 64, 800 updates, two p-replicas)
	// proves the unblocking machinery works; check the state too.
	w.query(func(th *sim.Thread) {
		if got := w.p.Execute(th, 0, uc.Size()); got != 800 {
			t.Errorf("size = %d, want 800", got)
		}
	})
	if w.p.Stats().PersistCycles == 0 {
		t.Error("no persistence cycles on a wrapping log")
	}
}

// TestBatchingCollectsConcurrentOps verifies flat combining actually
// batches: with many workers per node, the average combine must cover more
// than one operation.
func TestBatchingCollectsConcurrentOps(t *testing.T) {
	w := newWorld(t, hashCfg(Volatile, 8, 1024, 0), nvm.Config{Costs: sim.UnitCosts()}, 304)
	w.runWorkers(8, 0, func(th *sim.Thread, tid int) {
		for i := uint64(0); i < 100; i++ {
			w.p.Execute(th, tid, uc.Insert(uint64(tid)*1000 + i, i))
		}
	})
	st := w.p.Stats()
	if st.CombinerAcquisitions == 0 {
		t.Fatal("no combines recorded")
	}
	avg := float64(st.CombinedOps) / float64(st.CombinerAcquisitions)
	if avg <= 1.05 {
		t.Errorf("average batch size %.2f; flat combining is not batching", avg)
	}
}

// TestNoBatchingAblationBatchesExactlyOne checks the ablation switch.
func TestNoBatchingAblationBatchesExactlyOne(t *testing.T) {
	cfg := hashCfg(Volatile, 8, 1024, 0)
	cfg.NoBatching = true
	w := newWorld(t, cfg, nvm.Config{Costs: sim.UnitCosts()}, 305)
	w.runWorkers(8, 0, func(th *sim.Thread, tid int) {
		for i := uint64(0); i < 50; i++ {
			w.p.Execute(th, tid, uc.Insert(uint64(tid)*1000 + i, i))
		}
	})
	st := w.p.Stats()
	if st.CombinedOps != st.CombinerAcquisitions {
		t.Errorf("no-batching: %d ops over %d combines; want 1:1", st.CombinedOps, st.CombinerAcquisitions)
	}
}

// TestPersistenceThreadTracksCompletedTail verifies the persistence thread
// keeps the active persistent replica within the flush window of the log.
func TestPersistenceThreadTracksCompletedTail(t *testing.T) {
	cfg := hashCfg(Buffered, 4, 256, 64)
	w := newWorld(t, cfg, nvm.Config{Costs: sim.UnitCosts()}, 306)
	w.runWorkers(4, 0, func(th *sim.Thread, tid int) {
		for i := uint64(0); i < 150; i++ {
			w.p.Execute(th, tid, uc.Insert(uint64(tid)*1000 + i, i))
		}
	})
	// After a clean run both p-replica states must replay-match the full
	// update set: crash (cleanly, everything quiesced) and recover.
	recSch := sim.New(307)
	recSys := w.sys.Recover(recSch)
	var rec *PREP
	var err error
	recSch.Spawn("rec", 0, 0, func(th *sim.Thread) {
		rec, _, err = Recover(th, recSys, cfg)
	})
	recSch.Run()
	if err != nil {
		t.Fatal(err)
	}
	sch := sim.New(308)
	recSys.SetScheduler(sch)
	sch.Spawn("chk", 0, 0, func(th *sim.Thread) {
		size := rec.Execute(th, 0, uc.Size())
		// Buffered: at most ε+β−1 of the 600 updates may be missing even on
		// a clean shutdown (the tail may not have been checkpointed).
		min := uint64(600) - (cfg.Epsilon + uint64(testTopo().ThreadsPerNode) - 1)
		if size < min || size > 600 {
			t.Errorf("recovered size %d outside [%d, 600]", size, min)
		}
	})
	sch.Run()
}

// TestVolatileModeHasNoPersistentMachinery ensures PREP-V allocates neither
// NVM memories nor a persistence thread dependency.
func TestVolatileModeHasNoPersistentMachinery(t *testing.T) {
	w := newWorld(t, hashCfg(Volatile, 4, 256, 0), nvm.Config{Costs: sim.UnitCosts()}, 309)
	if w.p.meta != nil || len(w.p.preps) != 0 {
		t.Error("volatile engine built persistent replicas")
	}
	if w.sys.WBINVDs() != 0 {
		t.Error("volatile engine executed WBINVD")
	}
	// And spawning the persistence loop must panic.
	sch := sim.New(310)
	w.sys.SetScheduler(sch)
	panicked := false
	sch.Spawn("p", 0, 0, func(th *sim.Thread) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		w.p.PersistenceLoop(th)
	})
	sch.Run()
	if !panicked {
		t.Error("PersistenceLoop in volatile mode did not panic")
	}
}

// TestDurableFlushesLogEntries confirms the durable combiner actually
// persists entries: after a clean run, the persisted view of the log holds
// every entry below completedTail.
func TestDurableFlushesLogEntries(t *testing.T) {
	cfg := hashCfg(Durable, 4, 512, 64)
	w := newWorld(t, cfg, nvm.Config{Costs: sim.UnitCosts()}, 311)
	w.runWorkers(4, 0, func(th *sim.Thread, tid int) {
		for i := uint64(0); i < 50; i++ {
			w.p.Execute(th, tid, uc.Insert(uint64(tid)*1000 + i, i))
		}
	})
	l := w.p.Log()
	ct := l.PersistedCompletedTail()
	if ct == 0 {
		t.Fatal("completedTail never persisted")
	}
	for idx := uint64(0); idx < ct; idx++ {
		if !l.PersistedIsFull(idx) {
			t.Errorf("entry %d below persisted completedTail %d is not durable", idx, ct)
		}
	}
}

func TestSeqDataStructuresAcrossEngine(t *testing.T) {
	// Every sequential structure must run under the engine unchanged.
	cases := []struct {
		name     string
		factory  uc.Factory
		attacher uc.Attacher
		ops      []uc.Op
		wantSize uint64
	}{
		{"skiplist", seq.SkipListFactory(), seq.SkipListAttacher,
			[]uc.Op{{Code: uc.OpInsert, A0: 1, A1: 2}, {Code: uc.OpInsert, A0: 3, A1: 4}}, 2},
		{"listset", seq.ListSetFactory(), seq.ListSetAttacher,
			[]uc.Op{{Code: uc.OpInsert, A0: 5, A1: 6}}, 1},
		{"queue", seq.QueueFactory(), seq.QueueAttacher,
			[]uc.Op{{Code: uc.OpEnqueue, A0: 7}, {Code: uc.OpEnqueue, A0: 8}}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := hashCfg(Buffered, 4, 128, 32)
			cfg.Factory = tc.factory
			cfg.Attacher = tc.attacher
			w := newWorld(t, cfg, nvm.Config{Costs: sim.UnitCosts()}, 313)
			w.runWorkers(1, 0, func(th *sim.Thread, tid int) {
				for _, op := range tc.ops {
					w.p.Execute(th, tid, op)
				}
			})
			w.query(func(th *sim.Thread) {
				if got := w.p.Execute(th, 0, uc.Size()); got != tc.wantSize {
					t.Errorf("size = %d, want %d", got, tc.wantSize)
				}
			})
		})
	}
}
