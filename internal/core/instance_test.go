package core

import (
	"testing"

	"prepuc/internal/nvm"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// TestMultiInstanceCoResident boots two fully independent durable engines on
// ONE nvm.System via Config.Instance naming: each owns its own log, replicas,
// descriptor region and commit record. Workloads on disjoint key ranges run
// concurrently, the machine crashes, and each instance recovers from its own
// committed generation — neither sees the other's keys, and neither loses a
// completed operation (durable mode).
func TestMultiInstanceCoResident(t *testing.T) {
	const workers = 2
	mkCfg := func(inst string) Config {
		cfg := hashCfg(Durable, workers, 128, 16)
		cfg.Instance = inst
		return cfg
	}
	cfgA, cfgB := mkCfg("s0"), mkCfg("s1")

	sch := sim.New(7)
	sys := nvm.NewSystem(sch, nvm.Config{Costs: sim.UnitCosts(), BGFlushOneIn: 256, Seed: 7})
	var engA, engB *PREP
	var errA, errB error
	sch.Spawn("boot", 0, 0, func(th *sim.Thread) {
		engA, errA = New(th, sys, cfgA)
		engB, errB = New(th, sys, cfgB)
	})
	sch.Run()
	if errA != nil || errB != nil {
		t.Fatalf("boot: %v / %v", errA, errB)
	}

	// Run both instances' workloads interleaved on one scheduler until the
	// machine-wide crash.
	run := sim.New(8)
	run.CrashAtEvent(150_000)
	sys.SetScheduler(run)
	engA.SpawnPersistence(0)
	engB.SpawnPersistence(0)
	completedA := make([]uint64, workers)
	completedB := make([]uint64, workers)
	spawn := func(eng *PREP, completed []uint64, base uint64) {
		for tid := 0; tid < workers; tid++ {
			tid := tid
			run.Spawn("w", eng.Config().Topology.NodeOf(tid), 0, func(th *sim.Thread) {
				defer func() {
					if r := recover(); r != nil && !sim.Crashed(r) {
						panic(r)
					}
				}()
				for i := uint64(0); ; i++ {
					k := base | uint64(tid)<<32 | i
					eng.Execute(th, tid, uc.Insert(k, k))
					completed[tid] = i + 1
				}
			})
		}
	}
	spawn(engA, completedA, 0)
	spawn(engB, completedB, 1<<62)
	run.Run()
	if !run.Frozen() {
		t.Fatal("workload finished without crashing")
	}

	// One machine crash, two independent recoveries on the recovered system.
	recSch := sim.New(9)
	recSys := sys.Recover(recSch)
	var recA, recB *PREP
	recSch.Spawn("recover", 0, 0, func(th *sim.Thread) {
		recA, _, errA = Recover(th, recSys, cfgA)
		recB, _, errB = Recover(th, recSys, cfgB)
	})
	recSch.Run()
	if errA != nil || errB != nil {
		t.Fatalf("recover: %v / %v", errA, errB)
	}

	check := sim.New(10)
	recSys.SetScheduler(check)
	check.Spawn("inspect", 0, 0, func(th *sim.Thread) {
		for tid := 0; tid < workers; tid++ {
			// Durable: every completed op of each instance survives, in its
			// own instance only.
			for i := uint64(0); i < completedA[tid]; i++ {
				k := uint64(tid)<<32 | i
				if got := recA.Execute(th, 0, uc.Get(k)); got != k {
					t.Errorf("instance s0: completed op (%d,%d) lost", tid, i)
				}
				if got := recB.Execute(th, 0, uc.Get(k)); got != uc.NotFound {
					t.Errorf("instance s1 holds s0's key %d", k)
				}
			}
			for i := uint64(0); i < completedB[tid]; i++ {
				k := 1<<62 | uint64(tid)<<32 | i
				if got := recB.Execute(th, 0, uc.Get(k)); got != k {
					t.Errorf("instance s1: completed op (%d,%d) lost", tid, i)
				}
				if got := recA.Execute(th, 0, uc.Get(k)); got != uc.NotFound {
					t.Errorf("instance s0 holds s1's key %d", k)
				}
			}
		}
	})
	check.Run()

	// Region naming really is namespaced: both instances' generation-0 and
	// recovered-generation regions coexist, plus per-instance commit records.
	for _, name := range []string{
		"s0.g0.log", "s1.g0.log", "s0.g1.log", "s1.g1.log",
		"s0.prep.commit", "s1.prep.commit",
	} {
		if !recSys.HasMemory(name) {
			t.Errorf("expected region %q to exist", name)
		}
	}
	if recSys.HasMemory("g0.log") || recSys.HasMemory("prep.commit") {
		t.Error("instance-prefixed engines created bare-named regions")
	}
}

// TestInstanceGenerationsIndependent crashes a two-instance machine twice,
// but only instance s0 runs load between the crashes: its generation advances
// past s1's, and both still recover correctly — per-shard generations are
// genuinely independent state machines.
func TestInstanceGenerationsIndependent(t *testing.T) {
	const workers = 2
	mkCfg := func(inst string) Config {
		cfg := hashCfg(Durable, workers, 128, 16)
		cfg.Instance = inst
		return cfg
	}
	cfgA, cfgB := mkCfg("s0"), mkCfg("s1")

	sch := sim.New(21)
	sys := nvm.NewSystem(sch, nvm.Config{Costs: sim.UnitCosts(), Seed: 21})
	var engA, engB *PREP
	var errA, errB error
	sch.Spawn("boot", 0, 0, func(th *sim.Thread) {
		engA, errA = New(th, sys, cfgA)
		engB, errB = New(th, sys, cfgB)
	})
	sch.Run()
	if errA != nil || errB != nil {
		t.Fatalf("boot: %v / %v", errA, errB)
	}
	_ = engB // s1 stays idle the whole scenario

	// Phase 1: s0 inserts, machine crashes.
	run := sim.New(22)
	run.CrashAtEvent(60_000)
	sys.SetScheduler(run)
	engA.SpawnPersistence(0)
	completed := uint64(0)
	run.Spawn("w", 0, 0, func(th *sim.Thread) {
		defer func() {
			if r := recover(); r != nil && !sim.Crashed(r) {
				panic(r)
			}
		}()
		for i := uint64(0); ; i++ {
			engA.Execute(th, 0, uc.Insert(i, i+1))
			completed = i + 1
		}
	})
	run.Run()
	if !run.Frozen() {
		t.Fatal("phase 1 finished without crashing")
	}

	// Recover ONLY s0 — shard s1 stays down across the next crash, exactly
	// the partial-recovery shape of the sharded deployment.
	recSch := sim.New(23)
	recSys := sys.Recover(recSch)
	var recA *PREP
	var repA *RecoveryReport
	recSch.Spawn("recover", 0, 0, func(th *sim.Thread) {
		recA, repA, errA = Recover(th, recSys, cfgA)
	})
	recSch.Run()
	if errA != nil {
		t.Fatalf("recover: %v", errA)
	}
	if repA.SourceGeneration != 0 {
		t.Fatalf("first recovery source = %d, want 0", repA.SourceGeneration)
	}

	// Phase 2: only s0 runs again on the recovered machine; second crash.
	run2 := sim.New(24)
	run2.CrashAtEvent(60_000)
	recSys.SetScheduler(run2)
	recA.SpawnPersistence(0)
	completed2 := uint64(0)
	run2.Spawn("w", 0, 0, func(th *sim.Thread) {
		defer func() {
			if r := recover(); r != nil && !sim.Crashed(r) {
				panic(r)
			}
		}()
		for i := uint64(0); ; i++ {
			recA.Execute(th, 0, uc.Insert(i, i+1))
			completed2 = i + 1
		}
	})
	_ = completed2
	run2.Run()

	// Second recovery: s0 sources its bumped generation while s1 — finally
	// recovered after sitting out a whole crash cycle — still sources its
	// original generation 0. The two lineages never interact.
	recSch2 := sim.New(25)
	recSys2 := recSys.Recover(recSch2)
	var recA2, recB2 *PREP
	var repA2, repB2 *RecoveryReport
	recSch2.Spawn("recover2", 0, 0, func(th *sim.Thread) {
		recA2, repA2, errA = Recover(th, recSys2, recA.Config())
		recB2, repB2, errB = Recover(th, recSys2, cfgB)
	})
	recSch2.Run()
	if errA != nil || errB != nil {
		t.Fatalf("second recover: %v / %v", errA, errB)
	}
	if repA2.SourceGeneration != 1 || repB2.SourceGeneration != 0 {
		t.Errorf("source generations = s0:%d s1:%d, want s0:1 s1:0",
			repA2.SourceGeneration, repB2.SourceGeneration)
	}
	// s0's completed phase-1 prefix must still be present after two crashes;
	// s1 must still be empty.
	check := sim.New(26)
	recSys2.SetScheduler(check)
	check.Spawn("inspect", 0, 0, func(th *sim.Thread) {
		for i := uint64(0); i < completed; i++ {
			if got := recA2.Execute(th, 0, uc.Get(i)); got != i+1 {
				t.Errorf("s0 lost key %d across double crash", i)
			}
		}
		if got := recB2.Execute(th, 0, uc.Size()); got != 0 {
			t.Errorf("idle instance s1 recovered %d entries, want 0", got)
		}
	})
	check.Run()
}
