package core

import (
	"prepuc/internal/sim"
)

// This file implements log-entry reuse: ReserveLogEntries with the
// flushBoundary gate (Algorithm 4) and UpdateOrWaitOnLogMin (Algorithm 3),
// including the anti-deadlock helping mechanisms of §5.1:
//
//   - a combiner blocked on a stale *persistent* replica pulls flushBoundary
//     down, forcing the persistence thread into a cycle that refreshes the
//     stable replica;
//   - a combiner blocked on a stale *volatile* replica raises that replica's
//     updateReplicaNow flag, which combiners on that node service while they
//     wait;
//   - additionally (an extension over the paper, which assumes every node
//     keeps executing operations) a combiner blocked long enough on a
//     quiescent node's replica updates it directly by taking that replica's
//     combiner and writer locks — preserving deadlock freedom even when a
//     node has gone idle.

// crossHelpSpins is how many backoff spins a combiner waits on a stale
// volatile replica before helping it across nodes.
const crossHelpSpins = 64

// reserveLogEntries implements Algorithm 4: reserve num contiguous log
// entries, blocking while the flush boundary forbids growth (persistent
// modes only), then settle the reuse horizon before returning the start
// index.
func (p *PREP) reserveLogEntries(t *sim.Thread, rep *replica, num uint64) uint64 {
	var b backoff
	for {
		tail := p.log.LogTail(t)
		if p.cfg.Mode.Persistent() && p.flushBoundary(t) < tail {
			// Blocked until the stable persistent replica is up to date with
			// the boundary; keep our own replica from stalling the system
			// while we wait. The stall is the price of checkpoint pacing, so
			// its virtual duration is accumulated for the bench output.
			start := t.Clock()
			for p.flushBoundary(t) < tail {
				p.serviceUpdateNow(t, rep)
				b.spin(t, 4096)
			}
			p.met.FlushBoundaryStallNS += t.Clock() - start
			b.reset()
		}
		if p.log.CASLogTail(t, tail, tail+num) {
			p.updateOrWaitOnLogMin(t, rep, tail+num)
			return tail
		}
		b.spin(t, 256)
	}
}

// serviceUpdateNow brings rep up to date with completedTail if another
// combiner flagged it as the straggler blocking logMin. The caller holds
// rep's combiner lock.
func (p *PREP) serviceUpdateNow(t *sim.Thread, rep *replica) {
	if !rep.updateNow(t) {
		return
	}
	p.met.UpdateNowServices++
	rep.rw.WriteLock(t)
	p.catchUp(t, rep, p.log.CompletedTail(t))
	rep.rw.WriteUnlock(t)
	rep.setUpdateNow(t, 0)
}

// updateOrWaitOnLogMin implements Algorithm 3. Having reserved entries up
// to newTail, the combiner may not write them until newTail is at most
// logMin − β; it advances logMin past applied entries, and when it cannot —
// because some replica's localTail pins the horizon — it arranges for that
// replica to catch up.
func (p *PREP) updateOrWaitOnLogMin(t *sim.Thread, rep *replica, newTail uint64) {
	lowMark := p.log.LogMin(t) - p.beta
	var b backoff
	for lowMark < newTail {
		// Scan the localTails of every replica: N volatile plus the
		// persistent ones (the paper's "replicas + p_replicas").
		lowest := ^uint64(0)
		stragVol, stragP := -1, -1
		for i, r := range p.reps {
			if lt := r.localTail(t); lt < lowest {
				lowest, stragVol, stragP = lt, i, -1
			}
		}
		for i := range p.preps {
			if lt := p.pTail(t, i); lt < lowest {
				lowest, stragVol, stragP = lt, -1, i
			}
		}
		logMin := p.log.LogMin(t)
		if lowest+p.cfg.LogSize-1 <= logMin {
			// The straggler pins logMin; make it advance.
			switch {
			case stragP >= 0:
				// A persistent replica. If it is the stable one, only a
				// persistence cycle (WBINVD + swap) lets it catch up: pull
				// the flush boundary down to trigger one (§5.1). The paper
				// reduces to lowMark−1, but completedTail can be frozen
				// below that (every other combiner is queued behind our
				// still-unwritten reserved entries), in which case the
				// persistence thread would never see flushBoundary ≤
				// completedTail — so we reduce to whichever is smaller.
				if uint64(stragP) != p.activeP(t) {
					target := lowMark - 1
					if ct := p.log.CompletedTail(t); ct < target {
						target = ct
					}
					if p.flushBoundary(t) > target {
						p.setFlushBoundary(t, target)
						p.met.BoundaryReductions++
					}
				}
				b.spin(t, 4096)
			case stragVol == rep.node:
				// We are the straggler: catch up ourselves (we already hold
				// our combiner lock).
				rep.rw.WriteLock(t)
				p.catchUp(t, rep, p.log.CompletedTail(t))
				rep.rw.WriteUnlock(t)
			default:
				straggler := p.reps[stragVol]
				straggler.setUpdateNow(t, 1)
				waited := 0
				var wb backoff
				for straggler.localTail(t) == lowest {
					wb.spin(t, 2048)
					waited++
					if waited >= crossHelpSpins {
						// The node may be quiescent; help it directly.
						if straggler.combiner.TryAcquire(t) {
							straggler.rw.WriteLock(t)
							p.catchUp(t, straggler, p.log.CompletedTail(t))
							straggler.rw.WriteUnlock(t)
							straggler.combiner.Release(t)
							p.met.CrossNodeHelps++
						}
						waited = 0
					}
				}
				straggler.setUpdateNow(t, 0)
			}
			continue
		}
		p.log.AdvanceLogMin(t, lowest+p.cfg.LogSize-1)
		lowMark = p.log.LogMin(t) - p.beta
		b.reset()
	}
}
