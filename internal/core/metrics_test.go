package core

import (
	"testing"

	"prepuc/internal/nvm"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// runBare runs fn per worker on a fresh scheduler WITHOUT spawning the
// persistence thread, so every persistence instruction in the counter delta
// is attributable to the combiner protocol alone. Total log growth must stay
// at or below ε or the workers block on the flush boundary forever.
func runBare(w *world, workers int, fn func(th *sim.Thread, tid int)) {
	sch := sim.New(w.seed + 500)
	w.sys.SetScheduler(sch)
	for tid := 0; tid < workers; tid++ {
		tid := tid
		node := w.p.Config().Topology.NodeOf(tid)
		sch.Spawn("worker", node, 0, func(th *sim.Thread) { fn(th, tid) })
	}
	sch.Run()
}

// TestDurableFencesPerBatch pins the §4.1 flush protocol's fence count: each
// combined batch costs exactly two SFENCEs (one after the argument flushes,
// one after the emptyBit flushes and replay), regardless of batch size, and
// persisting completedTail uses a synchronous flush, not a fence.
func TestDurableFencesPerBatch(t *testing.T) {
	cfg := hashCfg(Durable, 1, 256, 64)
	w := newWorld(t, cfg, nvm.Config{Costs: sim.UnitCosts(), Seed: 11}, 1)
	base := w.p.Stats()
	const ops = 3
	runBare(w, 1, func(th *sim.Thread, tid int) {
		for i := uint64(0); i < ops; i++ {
			w.p.Execute(th, tid, uc.Insert(i, i))
		}
	})
	d := w.p.Stats().Sub(base)
	// A single worker combines each of its own operations: ops batches of 1.
	if d.CombinerAcquisitions != ops || d.CombinedOps != ops {
		t.Fatalf("combines = %d (%d ops), want %d batches of 1",
			d.CombinerAcquisitions, d.CombinedOps, ops)
	}
	if d.Fences != 2*ops {
		t.Errorf("fences = %d for %d single-op batches, want exactly %d",
			d.Fences, ops, 2*ops)
	}
	if d.WBINVDs != 0 {
		t.Errorf("WBINVDs = %d without a persistence thread, want 0", d.WBINVDs)
	}
}

// TestDurableFencesManyWorkers checks the same invariant under contention,
// where batch sizes are scheduling-dependent: fences stay exactly twice the
// number of combined batches however the k operations group.
func TestDurableFencesManyWorkers(t *testing.T) {
	const workers = 4
	cfg := hashCfg(Durable, workers, 256, 64)
	w := newWorld(t, cfg, nvm.Config{Costs: sim.UnitCosts(), Seed: 12}, 2)
	base := w.p.Stats()
	runBare(w, workers, func(th *sim.Thread, tid int) {
		w.p.Execute(th, tid, uc.Insert(uint64(tid), 1))
	})
	d := w.p.Stats().Sub(base)
	if d.CombinedOps != workers {
		t.Fatalf("combined ops = %d, want %d", d.CombinedOps, workers)
	}
	if d.CombinerAcquisitions == 0 || d.CombinerAcquisitions > workers {
		t.Fatalf("combiner acquisitions = %d, want 1..%d", d.CombinerAcquisitions, workers)
	}
	if d.Fences != 2*d.CombinerAcquisitions {
		t.Errorf("fences = %d over %d batches, want exactly %d",
			d.Fences, d.CombinerAcquisitions, 2*d.CombinerAcquisitions)
	}
}

// TestVolatileZeroPersistenceTraffic pins the Volatile mode's zero-cost
// claim at the counter level: PREP-V issues no flush, fence, or WBINVD at
// all — the persistence machinery is absent, not merely idle.
func TestVolatileZeroPersistenceTraffic(t *testing.T) {
	const workers = 4
	cfg := hashCfg(Volatile, workers, 256, 0)
	w := newWorld(t, cfg, nvm.Config{Costs: sim.UnitCosts(), Seed: 13}, 3)
	base := w.p.Stats()
	runBare(w, workers, func(th *sim.Thread, tid int) {
		for i := uint64(0); i < 50; i++ {
			w.p.Execute(th, tid, uc.Insert(uint64(tid)<<32 | i, i))
			w.p.Execute(th, tid, uc.Get(uint64(tid) << 32))
		}
	})
	d := w.p.Stats().Sub(base)
	if d.Updates != workers*50 || d.Reads != workers*50 {
		t.Fatalf("updates=%d reads=%d, want %d each", d.Updates, d.Reads, workers*50)
	}
	if d.Flushes != 0 || d.FlushAsync != 0 || d.FlushSync != 0 {
		t.Errorf("flushes = %d (async %d, sync %d) in Volatile mode, want 0",
			d.Flushes, d.FlushAsync, d.FlushSync)
	}
	if d.Fences != 0 || d.WBINVDs != 0 || d.BGFlushes != 0 {
		t.Errorf("fences=%d wbinvds=%d bgflushes=%d in Volatile mode, want 0",
			d.Fences, d.WBINVDs, d.BGFlushes)
	}
}
