package core

import (
	"prepuc/internal/nvm"
	"prepuc/internal/sim"
)

// This file implements the dedicated persistence thread (Algorithm 2). The
// thread cycles between the two persistent replicas: the *active* replica
// receives updates from the log; when completedTail crosses the flush
// boundary the thread write-backs the whole cache (WBINVD + SFENCE),
// persists the active/stable swap, and only then opens the boundary by ε.
//
// Two deliberate deviations from the paper's pseudocode, both discussed in
// DESIGN.md:
//
//  1. The swap of p_activePReplica is persisted *before* flushBoundary is
//     advanced. Algorithm 2 advances the boundary first, which opens a
//     window where ε further operations complete while the freshly
//     checkpointed replica is not yet marked stable; a crash there loses up
//     to 2ε operations. Persisting the swap first preserves the paper's
//     claimed ε+β−1 bound.
//  2. The flush condition is evaluated even when the active replica is
//     already up to date with completedTail. Algorithm 2 `continue`s in
//     that case, which can deadlock when every combiner is blocked waiting
//     for a logMin advance that requires a persistence cycle (the §5.1
//     helping mechanism reduces flushBoundary to request one).

// persistIdleCost is the virtual-time cost of one idle poll of the
// persistence loop.
const persistIdleCost = 200

// PersistenceLoop runs the persistence thread until StopPersistence is
// called (or the system crashes, unwinding the thread). It must run on its
// own simulated thread, pinned per the topology's PersistenceNode.
func (p *PREP) PersistenceLoop(t *sim.Thread) {
	if !p.cfg.Mode.Persistent() {
		panic("core: PersistenceLoop in volatile mode")
	}
	f := p.sys.NewFlusher()
	// A previous persistence thread's stop request (StopPersistence sets
	// gStop and never clears it) must not kill this run: the loop is
	// re-entrant so a stopped engine can be driven again — e.g. the
	// verification probe phase after a measured phase.
	p.gctrl.Store(t, gStop, 0)
	for p.gctrl.Load(t, gStop) == 0 {
		active := int(p.activeP(t))
		pr := p.preps[active]
		tail := p.log.CompletedTail(t)
		lt := p.pTail(t, active)
		if tail > lt {
			// Publish progress through the volatile mirror per entry (for
			// the logMin scans); the NVM copy only needs the final value.
			p.applyLog(t, pr.ds, lt, tail, nil, func(applied uint64) {
				p.gctrl.Store(t, gPTail0+uint64(pr.id)*nvm.WordsPerLine, applied)
			})
			p.setPTail(t, pr, tail)
		} else {
			tail = lt
		}
		if p.flushBoundary(t) <= tail {
			p.persistCycle(t, f, pr)
		} else if p.log.CompletedTail(t) <= tail {
			t.Step(persistIdleCost)
		}
	}
}

// persistCycle checkpoints the active replica and swaps roles (end of an
// update cycle, §4.1).
func (p *PREP) persistCycle(t *sim.Thread, f *nvm.Flusher, pr *pReplica) {
	start := t.Clock()
	p.met.PersistCycles++
	if p.cfg.PerLineFlush {
		// Ablation: flush exactly the dirty lines (needs write tracking a
		// black-box PUC does not have).
		pr.heap.FlushAllDirty(t)
		if p.desc != nil {
			p.desc.mem.FlushAllDirty(t)
		}
	} else if p.desc != nil {
		// The descriptor table rides the checkpoint: persisting it before
		// the meta swap below means every operation at or below the stable
		// tail this cycle establishes has a durable descriptor (buffered
		// detectability costs no flushes on the operation path).
		p.sys.WBINVD(t, pr.heap, p.desc.mem)
		f.Fence(t)
	} else {
		p.sys.WBINVD(t, pr.heap)
		f.Fence(t)
	}
	if !p.cfg.SinglePReplica {
		newActive := 1 - uint64(pr.id)
		p.meta.Store(t, metaActive, newActive)
		f.FlushLineSync(t, p.meta, metaActive)
		p.gctrl.Store(t, gActive, newActive)
	}
	p.setFlushBoundary(t, p.flushBoundary(t)+p.cfg.Epsilon)
	p.met.PersistCycleNS += t.Clock() - start
}

// StopPersistence asks the persistence thread to exit after its current
// iteration. Call it only after every worker has finished: workers blocked
// on the flush boundary rely on the persistence thread for progress.
func (p *PREP) StopPersistence(t *sim.Thread) {
	p.gctrl.Store(t, gStop, 1)
}

// SpawnPersistence starts the persistence thread on the engine's scheduler,
// pinned to the topology's persistence node, starting at the given clock.
func (p *PREP) SpawnPersistence(startClock uint64) {
	p.sys.Scheduler().Spawn("persistence", p.cfg.Topology.PersistenceNode(), startClock,
		func(t *sim.Thread) {
			defer func() {
				if r := recover(); r != nil && !sim.Crashed(r) {
					panic(r)
				}
			}()
			p.PersistenceLoop(t)
		})
}
