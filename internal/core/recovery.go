package core

import (
	"fmt"

	"prepuc/internal/nvm"
	"prepuc/internal/oplog"
	"prepuc/internal/pmem"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// RecoveryReport describes what recovery found and rebuilt.
type RecoveryReport struct {
	// SourceGeneration is the generation recovery read its state from: the
	// last committed generation, which trails oldCfg.Generation while earlier
	// recovery attempts keep crashing and leads it once one succeeds (callers
	// may keep passing the boot configuration).
	SourceGeneration int
	// Generation is the rebuilt engine's generation.
	Generation int
	// Restarts is the number of abandoned, partially built generations this
	// recovery skipped over — one per crash that hit an earlier recovery
	// attempt since the last committed generation.
	Restarts uint64
	// StableReplica is the persistent replica recovery started from.
	StableReplica int
	// StableLocalTail is the log index the stable replica was persisted at.
	StableLocalTail uint64
	// CompletedTail is the recovered completedTail (durable mode only).
	CompletedTail uint64
	// Replayed is the number of log entries re-applied (durable mode only).
	Replayed uint64
	// Holes is the number of skipped not-fully-persisted entries during
	// replay; with the engine's flush protocol this is always 0 below
	// completedTail and a non-zero value indicates a protocol violation.
	Holes uint64
	// Resolved is detectable execution's verdict map (nil unless
	// Config.Detect): invocation id → result for every operation whose
	// durable descriptor proves it committed and whose effect is in the
	// recovered state. Absence is equally definite — the operation never
	// applied, its effect is not in the recovered state, and the client may
	// resubmit without risking a double apply.
	Resolved map[uint64]uint64
	// DescriptorsCarried counts resolved verdicts re-recorded in the new
	// generation's descriptor table, so a crash during or immediately after
	// this recovery re-resolves every invocation id to the same answer.
	DescriptorsCarried uint64
}

// DebugInPlaceReplay, when set, reintroduces the historical recovery bug
// this package once shipped: durable log replay executes into the *source*
// generation's stable heap in place, and the new generation's first replica
// is cloned from the mutated heap afterwards. A crash-free recovery produces
// the identical state either way — which is how the bug survived basic
// testing — but background write-backs during replay leak the partially
// replayed heap into its persisted view, so a nested crash makes the next
// recovery attempt start from a torn stable heap (e.g. a bucket head
// persisted pointing at a node whose line was not, cutting off every key
// behind it that the log cannot re-create). It exists solely so the
// exhaustive explorer's mutation test can prove the checker catches the bug;
// never set it outside a test.
var DebugInPlaceReplay = false

// Recover rebuilds a PREP-UC instance from the NVM contents that survived a
// crash (§5.1, §5.2). recSys must come from nvm.System.Recover, and oldCfg
// must be the configuration of the crashed lineage (any generation of it:
// the persisted generation-commit record, not oldCfg.Generation, selects the
// state recovery reads). The rebuilt engine takes the first generation whose
// memory names are unused; the source generation's NVM regions are read but
// never written. In particular, durable log replay executes into the NEW
// generation's first persistent replica, never into the source generation's
// stable heap: the stable heap is the only consistent copy in existence, and
// mutating it would make a crash during recovery unrecoverable (background
// write-backs leak the partially replayed heap into its persisted view,
// corrupting the state the next recovery attempt starts from).
//
// Recover is re-entrant: killed at any event and re-run against the
// re-crashed machine, it reads the same committed source state, because the
// commit record flips to the new generation only after that generation's
// replicas are checkpointed (the final step below).
//
// Buffered mode recovers exactly the stable persistent replica's state: all
// replicas are instantiated as copies of it, every index is reset, and the
// (volatile, hence lost) log starts empty. Durable mode clones the stable
// state and then replays the persisted log entries in
// [stable.localTail, completedTail) on top of the clone, so every completed
// operation is recovered.
func Recover(t *sim.Thread, recSys *nvm.System, oldCfg Config) (*PREP, *RecoveryReport, error) {
	if !oldCfg.Mode.Persistent() {
		return nil, nil, fmt.Errorf("core: cannot recover a volatile instance")
	}
	met := recSys.Metrics()
	rep := &RecoveryReport{}

	srcCfg := oldCfg
	srcCfg.Generation = committedGeneration(recSys, oldCfg, oldCfg.Generation)
	rep.SourceGeneration = srcCfg.Generation

	// Identify the stable persistent replica via p_activePReplica.
	meta := recSys.Memory(srcCfg.memName("meta"))
	active := meta.Load(t, metaActive)
	stable := 1 - active
	if srcCfg.SinglePReplica {
		stable = 0
	}
	rep.StableReplica = int(stable)

	sheap := recSys.Memory(srcCfg.memName(fmt.Sprintf("pheap%d", stable)))
	salloc := pmem.Attach(t, sheap)
	sds := srcCfg.Attacher(t, salloc)
	rep.StableLocalTail = salloc.Root(t, pTailRootSlot)

	// Build a fresh engine in the first free generation: recovery attempts
	// that crashed mid-build left their partially constructed NVM regions
	// behind under the generations between the committed one and here.
	ncfg := srcCfg
	ncfg.Generation++
	for recSys.HasMemory(ncfg.memName("meta")) ||
		recSys.HasMemory(ncfg.memName("log")) ||
		recSys.HasMemory(ncfg.memName("pheap0")) {
		ncfg.Generation++
		rep.Restarts++
		met.RecoveryRestarts++
	}
	rep.Generation = ncfg.Generation
	// The source generation is only read from here on: its stable heap seeds
	// the new generation's first persistent replica, durable replay runs on
	// that copy, and every other replica is cloned from the result. The new
	// generation stays uncommitted until its state is checkpointed.
	p, err := newEngine(t, recSys, ncfg)
	if err != nil {
		return nil, nil, err
	}
	rds := p.preps[0].ds
	inPlace := DebugInPlaceReplay && srcCfg.Mode == Durable
	if !inPlace {
		uc.Clone(t, sds, rds)
	}

	if srcCfg.Mode == Durable {
		target := rds
		if inPlace {
			target = sds
		}
		logMem := recSys.Memory(srcCfg.memName("log"))
		l := oplog.Attach(logMem, srcCfg.LogSize)
		rep.CompletedTail = l.PersistedCompletedTail()
		for idx := rep.StableLocalTail; idx < rep.CompletedTail; idx++ {
			if !l.PersistedIsFull(idx) {
				rep.Holes++
				met.ReplayHoles++
				continue
			}
			code, a0, a1 := l.PersistedReadEntry(idx)
			target.Execute(t, code, a0, a1)
			rep.Replayed++
		}
		if inPlace {
			uc.Clone(t, sds, rds)
		}
	}

	if srcCfg.Detect {
		// Resolve every operation descriptor of the crashed generation
		// against the recovery horizon: in Durable mode an operation is in
		// the recovered state iff its log position precedes the persisted
		// completedTail (the replay bound above); in Buffered mode iff it
		// precedes the stable replica's checkpointed tail. Descriptors are
		// one line each and the crash materializes per line, so a record is
		// either wholly present or absent — and the engine's
		// fence-before-full-mark order guarantees any operation whose effect
		// survived has a present descriptor (DESIGN.md §11).
		horizon := rep.StableLocalTail
		if srcCfg.Mode == Durable {
			horizon = rep.CompletedTail
		}
		resolved, byWorker := scanDescriptors(
			recSys.Memory(srcCfg.memName("desc")), srcCfg.Workers, horizon)
		rep.Resolved = resolved
		// Carry the verdicts into the new generation's table (flags mark
		// them committed unconditionally): a nested crash re-scans either
		// the old generation (commit record not yet flipped) or these
		// records, and resolves every invocation id identically.
		for w, recs := range byWorker {
			for _, r := range recs {
				p.desc.carry(t, w, r[0], r[1])
				rep.DescriptorsCarried++
			}
		}
	}

	// Instantiate every other replica — volatile and persistent — as a copy
	// of the recovered state.
	for _, r := range p.reps {
		uc.Clone(t, rds, r.ds)
	}
	for _, pr := range p.preps[1:] {
		uc.Clone(t, rds, pr.ds)
	}
	// Persist the rebuilt persistent replicas and metadata, then flip the
	// commit record: an immediate second crash — anywhere, including between
	// these two steps — recovers the same state.
	p.checkpoint(t)
	p.commitGeneration(t)
	return p, rep, nil
}
