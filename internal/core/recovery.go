package core

import (
	"fmt"

	"prepuc/internal/nvm"
	"prepuc/internal/oplog"
	"prepuc/internal/pmem"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// RecoveryReport describes what recovery found and rebuilt.
type RecoveryReport struct {
	// StableReplica is the persistent replica recovery started from.
	StableReplica int
	// StableLocalTail is the log index the stable replica was persisted at.
	StableLocalTail uint64
	// CompletedTail is the recovered completedTail (durable mode only).
	CompletedTail uint64
	// Replayed is the number of log entries re-applied (durable mode only).
	Replayed uint64
	// Holes is the number of skipped not-fully-persisted entries during
	// replay; with the engine's flush protocol this is always 0 below
	// completedTail and a non-zero value indicates a protocol violation.
	Holes uint64
}

// Recover rebuilds a PREP-UC instance from the NVM contents that survived a
// crash (§5.1, §5.2). recSys must come from nvm.System.Recover, and oldCfg
// must be the configuration of the crashed instance. The rebuilt engine uses
// generation oldCfg.Generation+1 for its memory names; the crashed
// generation's NVM regions are read but never written (except the stable
// replica's heap during durable log replay, mirroring the paper's "bring the
// active persistent replica up-to-date" step).
//
// Buffered mode recovers exactly the stable persistent replica's state: all
// replicas are instantiated as copies of it, every index is reset, and the
// (volatile, hence lost) log starts empty. Durable mode first replays the
// persisted log entries in [stable.localTail, completedTail) on top of the
// stable state, so every completed operation is recovered.
func Recover(t *sim.Thread, recSys *nvm.System, oldCfg Config) (*PREP, *RecoveryReport, error) {
	if !oldCfg.Mode.Persistent() {
		return nil, nil, fmt.Errorf("core: cannot recover a volatile instance")
	}
	rep := &RecoveryReport{}

	// Identify the stable persistent replica via p_activePReplica.
	meta := recSys.Memory(oldCfg.memName("meta"))
	active := meta.Load(t, metaActive)
	stable := 1 - active
	if oldCfg.SinglePReplica {
		stable = 0
	}
	rep.StableReplica = int(stable)

	sheap := recSys.Memory(oldCfg.memName(fmt.Sprintf("pheap%d", stable)))
	salloc := pmem.Attach(t, sheap)
	sds := oldCfg.Attacher(t, salloc)
	rep.StableLocalTail = salloc.Root(t, pTailRootSlot)

	if oldCfg.Mode == Durable {
		logMem := recSys.Memory(oldCfg.memName("log"))
		l := oplog.Attach(logMem, oldCfg.LogSize)
		rep.CompletedTail = l.PersistedCompletedTail()
		for idx := rep.StableLocalTail; idx < rep.CompletedTail; idx++ {
			if !l.PersistedIsFull(idx) {
				rep.Holes++
				continue
			}
			code, a0, a1 := l.PersistedReadEntry(idx)
			sds.Execute(t, code, a0, a1)
			rep.Replayed++
		}
	}

	// Build a fresh engine one generation up and instantiate every replica —
	// volatile and persistent — as a copy of the recovered state.
	ncfg := oldCfg
	ncfg.Generation++
	p, err := New(t, recSys, ncfg)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range p.reps {
		uc.Clone(t, sds, r.ds)
	}
	for _, pr := range p.preps {
		uc.Clone(t, sds, pr.ds)
	}
	// Persist the rebuilt persistent replicas and metadata so an immediate
	// second crash recovers the same state.
	p.checkpoint(t)
	return p, rep, nil
}
