package core

import (
	"fmt"
	"testing"

	"prepuc/internal/history"
	"prepuc/internal/nvm"
	"prepuc/internal/oplog"
	"prepuc/internal/pmem"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// sweepCfg is deliberately tiny: the nested-crash sweep reruns recovery once
// per recovery event index, so total work is quadratic in the recovery event
// count. One NUMA node, a small heap and a short workload keep the full
// stride-1 sweep to a few million simulated events.
func sweepCfg() Config {
	cfg := hashCfg(Durable, 4, 128, 16)
	cfg.HeapWords = 1 << 13
	return cfg
}

// sweepWorld runs a durable workload to a crash and materializes the
// post-crash NVM state once. Sweep harnesses Clone it per crash point, so
// every sweep iteration recovers the exact same machine.
type sweepWorld struct {
	cfg       Config
	base      *nvm.System // materialized post-crash state (scheduler drained)
	completed []uint64
}

func newSweepWorld(t *testing.T, seed int64, crashAt uint64) *sweepWorld {
	t.Helper()
	cfg := sweepCfg()
	const workers = 4
	w := newWorld(t, cfg, nvm.Config{Costs: sim.UnitCosts(), BGFlushOneIn: 64, Seed: uint64(seed)}, seed)
	sw := &sweepWorld{cfg: cfg, completed: make([]uint64, workers)}
	sch := w.runWorkers(workers, crashAt, func(th *sim.Thread, tid int) {
		for i := uint64(0); ; i++ {
			w.p.Execute(th, tid, uc.Insert(history.Key(tid, i), history.Key(tid, i)))
			sw.completed[tid] = i + 1
		}
	})
	if !sch.Frozen() {
		t.Fatal("workload finished without crashing; raise crashAt")
	}
	sw.base = w.sys.Recover(sim.New(seed + 5000))
	return sw
}

// recoverOn runs core.Recover on sys with a fresh scheduler, optionally
// arming a crash at event index crashAt. Returns the engine (nil if the run
// crashed or Recover panicked walking corrupt state), the report, and
// whether the scheduler froze.
func recoverOn(t *testing.T, sys *nvm.System, cfg Config, seed int64, crashAt uint64) (rec *PREP, rep *RecoveryReport, frozen bool) {
	t.Helper()
	sch := sim.New(seed)
	if crashAt != 0 {
		sch.CrashAtEvent(crashAt)
	}
	sys.SetScheduler(sch)
	var err error
	sch.Spawn("recover", 0, 0, func(th *sim.Thread) {
		defer func() {
			if r := recover(); r != nil {
				if sim.Crashed(r) {
					panic(r) // unwind normally; sch.Frozen() records it
				}
				rec, err = nil, fmt.Errorf("recovery panicked: %v", r)
			}
		}()
		rec, rep, err = Recover(th, sys, cfg)
	})
	sch.Run()
	if sch.Frozen() {
		return nil, nil, true
	}
	if err != nil {
		t.Logf("Recover: %v", err)
		return nil, nil, false
	}
	return rec, rep, false
}

// probeDurable checks every completed pre-crash op against the recovered
// engine, returning a history report. Probing may panic if recovery rebuilt
// corrupt state; the caller sees that as a nil-engine failure instead.
func probeDurable(t *testing.T, sys *nvm.System, rec *PREP, completed []uint64, seed int64) history.Report {
	t.Helper()
	keys := make([][]bool, len(completed))
	sch := sim.New(seed)
	sys.SetScheduler(sch)
	sch.Spawn("inspect", 0, 0, func(th *sim.Thread) {
		for tid := range completed {
			n := completed[tid] + 16
			keys[tid] = make([]bool, n)
			for i := uint64(0); i < n; i++ {
				got := rec.Execute(th, 0, uc.Get(history.Key(tid, i)))
				keys[tid][i] = got != uc.NotFound
			}
		}
	})
	sch.Run()
	return history.Check(keys, completed)
}

// TestCrashSweepInsideRecovery is the tentpole's acceptance test: a crash at
// EVERY event index inside a durable recovery with a non-trivial replay
// window, each followed by a second recovery that must satisfy durable
// linearizability. The fixed Recover passes the whole sweep because the
// source generation is never written: however much of the new generation the
// nested crash destroys, the second attempt reads the same committed state.
func TestCrashSweepInsideRecovery(t *testing.T) {
	const seed = 101
	sw := newSweepWorld(t, seed, 9000)

	// Establish the sweep ceiling and sanity-check the scenario on an
	// uncrashed clone: recovery must have a non-trivial replay window.
	probe := sw.base.Clone(sim.New(seed + 1))
	rec0, rep0, _ := recoverOn(t, probe, sw.cfg, seed+1, 0)
	if rec0 == nil {
		t.Fatal("baseline recovery failed")
	}
	if rep0.Replayed == 0 {
		t.Fatalf("replay window is trivial (stable tail %d = completed tail %d); re-tune the workload",
			rep0.StableLocalTail, rep0.CompletedTail)
	}
	events := probe.Scheduler().Events()
	t.Logf("recovery spans %d events, replayed %d ops (window [%d,%d))",
		events, rep0.Replayed, rep0.StableLocalTail, rep0.CompletedTail)

	for k := uint64(1); k <= events; k++ {
		trial := sw.base.Clone(sim.New(seed + 1)) // same seed: identical schedule
		_, _, frozen := recoverOn(t, trial, sw.cfg, seed+1, k)
		if !frozen {
			t.Fatalf("crash-at=%d: recovery completed before the armed crash (nondeterministic schedule?)", k)
		}
		// Materialize the nested crash — unfenced lines resolved, volatile
		// memories gone — and recover from scratch.
		after := trial.Recover(sim.New(seed + 2))
		rec2, rep2, frozen2 := recoverOn(t, after, sw.cfg, seed+2, 0)
		if frozen2 {
			t.Fatalf("crash-at=%d: second recovery froze without an armed crash", k)
		}
		if rec2 == nil {
			t.Fatalf("crash-at=%d: second recovery failed", k)
		}
		if r := probeDurable(t, after, rec2, sw.completed, seed+3); !r.DurableOK() {
			t.Fatalf("crash-at=%d: second recovery not durable-linearizable: %s (restarts=%d)",
				k, r, rep2.Restarts)
		}
	}
}

// buggyRecoverInPlace reproduces the pre-fix hazard this PR's recovery
// rewrite removed: durable log replay executed IN PLACE on the crashed
// generation's stable persistent heap. With background write-backs enabled,
// a crash mid-replay leaks an arbitrary subset of the partially replayed
// heap into its persisted view — and the stable heap was the only consistent
// copy, so the next recovery attempt starts from corrupt state.
func buggyRecoverInPlace(t *sim.Thread, recSys *nvm.System, cfg Config) {
	srcCfg := cfg
	srcCfg.Generation = committedGeneration(recSys, cfg, cfg.Generation)
	meta := recSys.Memory(srcCfg.memName("meta"))
	active := meta.Load(t, metaActive)
	stable := 1 - active
	sheap := recSys.Memory(srcCfg.memName(fmt.Sprintf("pheap%d", stable)))
	salloc := pmem.Attach(t, sheap)
	sds := srcCfg.Attacher(t, salloc)
	stableTail := salloc.Root(t, pTailRootSlot)

	logMem := recSys.Memory(srcCfg.memName("log"))
	l := oplog.Attach(logMem, srcCfg.LogSize)
	for idx := stableTail; idx < l.PersistedCompletedTail(); idx++ {
		if !l.PersistedIsFull(idx) {
			continue
		}
		code, a0, a1 := l.PersistedReadEntry(idx)
		sds.Execute(t, code, a0, a1) // the bug: mutates the recovery source
	}
}

// TestInPlaceReplayFailsSweep demonstrates the pre-fix behaviour is actually
// broken: sweeping a crash across the in-place replay phase and re-running
// the (fixed) recovery afterwards must produce at least one durable-
// linearizability violation — the mutated stable heap corrupts the state the
// second attempt reads. This is the regression guard for the recovery
// rewrite; TestCrashSweepInsideRecovery shows the fixed path survives the
// same schedule.
func TestInPlaceReplayFailsSweep(t *testing.T) {
	const seed = 101
	sw := newSweepWorld(t, seed, 9000)

	// Background flushes are the leak vector; make them aggressive during
	// the buggy replay so partially replayed lines hit the persisted view.
	sw.base.SetBGFlushOneIn(4)

	probe := sw.base.Clone(sim.New(seed + 1))
	probeSch := probe.Scheduler()
	probeSch.Spawn("buggy", 0, 0, func(th *sim.Thread) {
		buggyRecoverInPlace(th, probe, sw.cfg)
	})
	probeSch.Run()
	events := probeSch.Events()
	if events < 16 {
		t.Fatalf("in-place replay spans only %d events; scenario too small", events)
	}

	violations := 0
	for k := uint64(1); k <= events; k++ {
		trial := sw.base.Clone(sim.New(seed + 1))
		sch := trial.Scheduler()
		sch.CrashAtEvent(k)
		sch.Spawn("buggy", 0, 0, func(th *sim.Thread) {
			buggyRecoverInPlace(th, trial, sw.cfg)
		})
		sch.Run()
		if !sch.Frozen() {
			break
		}
		func() {
			defer func() {
				if recover() != nil {
					violations++ // recovery or probing walked corrupt state
				}
			}()
			after := trial.Recover(sim.New(seed + 2))
			rec2, _, frozen2 := recoverOn(t, after, sw.cfg, seed+2, 0)
			if frozen2 {
				t.Fatalf("crash-at=%d: second recovery froze without an armed crash", k)
			}
			if rec2 == nil {
				violations++
				return
			}
			if r := probeDurable(t, after, rec2, sw.completed, seed+3); !r.DurableOK() {
				violations++
			}
		}()
	}
	if violations == 0 {
		t.Error("in-place replay survived the whole crash sweep; the regression scenario no longer exercises the hazard")
	} else {
		t.Logf("in-place replay produced %d violations across %d crash points", violations, events)
	}
}

// TestRecoveryRestartsCounted checks the free-generation scan: a crash
// inside recovery leaves a partial generation behind, and the next attempt
// must skip it, reporting the restart in both the report and the metrics
// registry.
func TestRecoveryRestartsCounted(t *testing.T) {
	const seed = 211
	sw := newSweepWorld(t, seed, 9000)

	trial := sw.base.Clone(sim.New(seed + 1))
	// Crash somewhere inside the rebuild, late enough that the new
	// generation's NVM names exist.
	_, _, frozen := recoverOn(t, trial, sw.cfg, seed+1, 2000)
	if !frozen {
		t.Skip("recovery completed before event 2000; nothing to restart")
	}
	after := trial.Recover(sim.New(seed + 2))
	base := after.Metrics().Snapshot()
	rec2, rep2, _ := recoverOn(t, after, sw.cfg, seed+2, 0)
	if rec2 == nil {
		t.Fatal("second recovery failed")
	}
	if rep2.Restarts == 0 {
		t.Skip("crash point preceded the new generation's first NVM allocation")
	}
	if rep2.Generation != rep2.SourceGeneration+1+int(rep2.Restarts) {
		t.Errorf("generation arithmetic: src=%d restarts=%d new=%d",
			rep2.SourceGeneration, rep2.Restarts, rep2.Generation)
	}
	if d := after.Metrics().Snapshot().Sub(base); d.RecoveryRestarts != rep2.Restarts {
		t.Errorf("metrics recovery_restarts = %d, report says %d", d.RecoveryRestarts, rep2.Restarts)
	}
}
