package core

import "prepuc/internal/sim"

// Snapshot is a point-in-time view of the engine's indexes — Table 1 of
// the paper made inspectable. It is intended for debugging, tooling and
// tests; reading it participates in the simulation (the loads are charged)
// but takes no locks, so values may be mutually inconsistent under
// concurrency, exactly like a debugger attached to the real system.
type Snapshot struct {
	// LogTail is the next free log entry (reservation horizon).
	LogTail uint64
	// CompletedTail is the last entry applied to some replica.
	CompletedTail uint64
	// LogMin is the reuse horizon: entries before LogMin−LogSize+1 may be
	// overwritten.
	LogMin uint64
	// FlushBoundary gates reservations in persistent modes (0 otherwise).
	FlushBoundary uint64
	// ActivePReplica identifies the persistent replica receiving updates.
	ActivePReplica uint64
	// LocalTails holds each volatile replica's applied-up-to index.
	LocalTails []uint64
	// PTails holds the persistent replicas' applied-up-to indexes.
	PTails []uint64
}

// Snapshot reads the engine's current indexes.
func (p *PREP) Snapshot(t *sim.Thread) Snapshot {
	s := Snapshot{
		LogTail:       p.log.LogTail(t),
		CompletedTail: p.log.CompletedTail(t),
		LogMin:        p.log.LogMin(t),
	}
	for _, r := range p.reps {
		s.LocalTails = append(s.LocalTails, r.localTail(t))
	}
	if p.cfg.Mode.Persistent() {
		s.FlushBoundary = p.flushBoundary(t)
		s.ActivePReplica = p.activeP(t)
		for i := range p.preps {
			s.PTails = append(s.PTails, p.pTail(t, i))
		}
	}
	return s
}
