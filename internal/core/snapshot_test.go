package core

import (
	"testing"

	"prepuc/internal/nvm"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

func TestSnapshotIndexInvariants(t *testing.T) {
	const workers, perWorker = 8, 80
	cfg := hashCfg(Buffered, workers, 256, 64)
	w := newWorld(t, cfg, nvm.Config{Costs: sim.UnitCosts()}, 401)
	w.runWorkers(workers, 0, func(th *sim.Thread, tid int) {
		for i := uint64(0); i < perWorker; i++ {
			w.p.Execute(th, tid, uc.Insert(uint64(tid)*1000 + i, i))
		}
	})
	w.query(func(th *sim.Thread) {
		s := w.p.Snapshot(th)
		total := uint64(workers * perWorker)
		if s.LogTail != total {
			t.Errorf("LogTail = %d, want %d", s.LogTail, total)
		}
		if s.CompletedTail > s.LogTail {
			t.Errorf("CompletedTail %d > LogTail %d", s.CompletedTail, s.LogTail)
		}
		if s.CompletedTail != total {
			t.Errorf("CompletedTail = %d after quiescence, want %d", s.CompletedTail, total)
		}
		for i, lt := range s.LocalTails {
			if lt > s.LogTail {
				t.Errorf("replica %d localTail %d > LogTail", i, lt)
			}
		}
		for i, pt := range s.PTails {
			if pt > s.CompletedTail {
				t.Errorf("pReplica %d tail %d > CompletedTail %d", i, pt, s.CompletedTail)
			}
		}
		if len(s.PTails) != 2 {
			t.Errorf("PTails = %v, want 2 persistent replicas", s.PTails)
		}
		// logMin invariant: reusable horizon never admits unapplied entries.
		lowest := s.LocalTails[0]
		for _, lt := range append(append([]uint64{}, s.LocalTails...), s.PTails...) {
			if lt < lowest {
				lowest = lt
			}
		}
		if s.LogMin > lowest+cfg.LogSize-1 {
			t.Errorf("LogMin %d beyond lowest localTail %d + size − 1", s.LogMin, lowest)
		}
	})
}

func TestSnapshotVolatileMode(t *testing.T) {
	w := newWorld(t, hashCfg(Volatile, 4, 128, 0), nvm.Config{Costs: sim.UnitCosts()}, 402)
	w.runWorkers(4, 0, func(th *sim.Thread, tid int) {
		w.p.Execute(th, tid, uc.Insert(uint64(tid), 1))
	})
	w.query(func(th *sim.Thread) {
		s := w.p.Snapshot(th)
		if s.FlushBoundary != 0 || len(s.PTails) != 0 {
			t.Errorf("volatile snapshot has persistence fields: %+v", s)
		}
		if s.LogTail != 4 {
			t.Errorf("LogTail = %d, want 4", s.LogTail)
		}
	})
}
