// Package cxpuc implements CX-PUC (Correia et al., EuroSys '20), the
// persistent universal construction PREP-UC is evaluated against.
//
// Structure (§2.3 of the PREP-UC paper):
//
//   - A shared global queue establishes the linearization order of update
//     operations.
//   - Up to 2n persistent replicas of the sequential object, each guarded by
//     a strong try reader–writer lock. A writer locks some replica (never
//     the currently published one), brings it up to date with the queue
//     through its own operation, flushes the ENTIRE replica to NVM — the
//     design decision that dominates its cost profile — persists the
//     replica's applied index, and publishes the replica with a CAS on a
//     persistent "latest" pointer.
//   - Readers execute on the currently published (persistent!) replica under
//     a shared try-lock, paying NVM read latency.
//
// Simplifications relative to the original, none of which change the cost
// profile the evaluation measures (see DESIGN.md §2): the replica count is
// min(2n, CapReplicas) to bound simulated memory; the queue is a bounded
// buffer sized for the run (CX's queue nodes are volatile: operations are
// durable only through published replicas, so recovery never reads it); and
// the whole-replica write-back is modelled as one bulk flush of the
// replica's used address range, as CX-PUC's allocator-assisted range flush
// does.
package cxpuc

import (
	"fmt"

	"prepuc/internal/locks"
	"prepuc/internal/metrics"
	"prepuc/internal/nvm"
	"prepuc/internal/pmem"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// Config parameterizes CX-PUC.
type Config struct {
	Workers   int
	Factory   uc.Factory
	Attacher  uc.Attacher
	HeapWords uint64
	// QueueCapacity bounds the operation queue; the run must not exceed it.
	QueueCapacity uint64
	// CapReplicas bounds the replica count (the original uses 2n).
	CapReplicas int
	// Generation disambiguates memory names across crash/recovery cycles.
	Generation int
}

// Queue entry layout: one line per op [state, code, a0, a1].
const (
	qeState = 0
	qeCode  = 1
	qeA0    = 2
	qeA1    = 3
)

// published pointer layout in the meta memory: word 0 holds
// index<<8 | replicaID (index = number of ops applied in that replica).
const metaLatest = 0

// commitMemName is CX-PUC's generation-commit record (uc.CommitCell),
// shared by every generation of a lineage. Without it, a crash inside
// Recover would be unrecoverable: New publishes an EMPTY replica 0 before
// the recovered state is cloned in, so a nested crash at that point would
// leave the new generation's meta pointing at an empty replica — and a
// naive second recovery reading the newest generation would lose every key.
// The commit record keeps the old generation the recovery source until the
// new one's replicas are persisted.
const commitMemName = "cx.commit"

const ctrlQTail = 0 // queue tail index, in volatile control memory

type cxReplica struct {
	id      int
	heap    *nvm.Memory
	alloc   *pmem.Allocator
	ds      uc.DataStructure
	lock    locks.RWLock
	applied uint64 // ops applied (mirrors the NVM copy in heap root slot 1)
}

const appliedRootSlot = 1

// CX is one CX-PUC instance.
type CX struct {
	cfg   Config
	sys   *nvm.System
	queue *nvm.Memory // volatile op queue
	ctrl  *nvm.Memory // volatile control (queue tail)
	meta   *nvm.Memory // NVM: published (index, replica) word
	commit uc.CommitCell
	reps   []*cxReplica
	flush  *nvm.Flusher
}

var (
	_ uc.UC           = (*CX)(nil)
	_ uc.Instrumented = (*CX)(nil)
)

// Stats snapshots the machine-wide metrics registry (uc.Instrumented).
func (c *CX) Stats() metrics.Snapshot { return c.sys.Metrics().Snapshot() }

func (c Config) memName(s string) string { return fmt.Sprintf("cx.g%d.%s", c.Generation, s) }

// Config returns the instance's (normalized) configuration; recovery
// harnesses feed it back to Recover after a crash.
func (c *CX) Config() Config { return c.cfg }

// New builds a CX-PUC instance inside sys and commits its generation, so a
// crash right after boot recovers the empty object.
func New(t *sim.Thread, sys *nvm.System, cfg Config) (*CX, error) {
	cx, err := newEngine(t, sys, cfg)
	if err != nil {
		return nil, err
	}
	cx.commit.Commit(t, cx.cfg.Generation)
	return cx, nil
}

// newEngine builds the instance without committing its generation. Recover
// uses it directly: the new generation publishes an empty replica here and
// must not become the recovery source until the recovered state has been
// cloned in and persisted.
func newEngine(t *sim.Thread, sys *nvm.System, cfg Config) (*CX, error) {
	if cfg.Workers <= 0 || cfg.Factory == nil || cfg.HeapWords == 0 {
		return nil, fmt.Errorf("cxpuc: incomplete config")
	}
	if cfg.QueueCapacity == 0 {
		cfg.QueueCapacity = 1 << 20
	}
	nReps := 2 * cfg.Workers
	if cfg.CapReplicas > 0 && nReps > cfg.CapReplicas {
		nReps = cfg.CapReplicas
	}
	if nReps < 2 {
		nReps = 2
	}
	cx := &CX{cfg: cfg, sys: sys}
	cx.queue = sys.NewMemory(cfg.memName("queue"), nvm.Volatile, nvm.Interleaved,
		cfg.QueueCapacity*nvm.WordsPerLine)
	// Control memory: queue tail at word 0, then one lock word per replica
	// (each on its own line). Lock state is volatile in CX-PUC too.
	cx.ctrl = sys.NewMemory(cfg.memName("ctrl"), nvm.Volatile, nvm.Interleaved,
		uint64(nReps+1)*nvm.WordsPerLine)
	cx.meta = sys.NewMemory(cfg.memName("meta"), nvm.NVM, 0, nvm.WordsPerLine)
	cx.commit = uc.EnsureCommitCell(sys, commitMemName, 0)
	cx.flush = sys.NewFlusher()
	for i := 0; i < nReps; i++ {
		heap := sys.NewMemory(cfg.memName(fmt.Sprintf("rep%d", i)), nvm.NVM, i%2, cfg.HeapWords)
		alloc := pmem.New(t, heap)
		r := &cxReplica{
			id:    i,
			heap:  heap,
			alloc: alloc,
			ds:    cfg.Factory(t, alloc),
			lock:  locks.NewRWLock(cx.ctrl, uint64(i+1)*nvm.WordsPerLine),
		}
		alloc.SetRoot(t, appliedRootSlot, 0)
		cx.reps = append(cx.reps, r)
	}
	// Publish replica 0 (empty, applied=0) and persist the initial state.
	cx.meta.Store(t, metaLatest, 0)
	cx.reps[0].heap.FlushRegion(t, 0, cx.reps[0].alloc.HeapTop(t))
	cx.flush.FlushLineSync(t, cx.meta, metaLatest)
	return cx, nil
}
