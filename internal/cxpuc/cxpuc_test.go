package cxpuc

import (
	"testing"

	"prepuc/internal/nvm"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

func testCfg(workers int) Config {
	return Config{
		Workers:       workers,
		Factory:       seq.HashMapFactory(64),
		Attacher:      seq.HashMapAttacher,
		HeapWords:     1 << 18,
		QueueCapacity: 1 << 14,
		CapReplicas:   8,
	}
}

type world struct {
	sys *nvm.System
	cx  *CX
}

func build(t *testing.T, cfg Config, nvmCfg nvm.Config, seed int64) *world {
	t.Helper()
	sch := sim.New(seed)
	sys := nvm.NewSystem(sch, nvmCfg)
	w := &world{sys: sys}
	var err error
	sch.Spawn("boot", 0, 0, func(th *sim.Thread) {
		w.cx, err = New(th, sys, cfg)
	})
	sch.Run()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return w
}

func (w *world) run(workers int, crashAt uint64, seed int64, fn func(*sim.Thread, int)) *sim.Scheduler {
	sch := sim.New(seed)
	if crashAt != 0 {
		sch.CrashAtEvent(crashAt)
	}
	w.sys.SetScheduler(sch)
	for tid := 0; tid < workers; tid++ {
		tid := tid
		sch.Spawn("w", tid%2, 0, func(th *sim.Thread) {
			defer func() {
				if r := recover(); r != nil && !sim.Crashed(r) {
					panic(r)
				}
			}()
			fn(th, tid)
		})
	}
	sch.Run()
	return sch
}

func TestSequentialSemantics(t *testing.T) {
	w := build(t, testCfg(1), nvm.Config{}, 1)
	w.run(1, 0, 100, func(th *sim.Thread, tid int) {
		for k := uint64(0); k < 30; k++ {
			if got := w.cx.Execute(th, tid, uc.Insert(k, k * 3)); got != 1 {
				t.Errorf("insert(%d) = %d", k, got)
			}
		}
		for k := uint64(0); k < 30; k++ {
			if got := w.cx.Execute(th, tid, uc.Get(k)); got != k*3 {
				t.Errorf("get(%d) = %d", k, got)
			}
		}
		if got := w.cx.Execute(th, tid, uc.Delete(5)); got != 1 {
			t.Errorf("delete = %d", got)
		}
		if got := w.cx.Execute(th, tid, uc.Get(5)); got != uc.NotFound {
			t.Errorf("get deleted = %d", got)
		}
	})
}

func TestConcurrentDistinctKeys(t *testing.T) {
	const workers, per = 6, 40
	w := build(t, testCfg(workers), nvm.Config{Costs: sim.UnitCosts()}, 2)
	w.run(workers, 0, 200, func(th *sim.Thread, tid int) {
		for i := uint64(0); i < per; i++ {
			k := uint64(tid)*1000 + i
			if got := w.cx.Execute(th, tid, uc.Insert(k, k)); got != 1 {
				t.Errorf("insert = %d", got)
			}
		}
	})
	w.run(1, 0, 300, func(th *sim.Thread, tid int) {
		for tid2 := 0; tid2 < workers; tid2++ {
			for i := uint64(0); i < per; i++ {
				k := uint64(tid2)*1000 + i
				if got := w.cx.Execute(th, 0, uc.Get(k)); got != k {
					t.Errorf("get(%d) = %d", k, got)
				}
			}
		}
	})
}

func TestReplicaCountCapped(t *testing.T) {
	w := build(t, testCfg(6), nvm.Config{}, 3)
	if w.cx.Replicas() != 8 {
		t.Errorf("replicas = %d, want cap 8", w.cx.Replicas())
	}
	cfg := testCfg(2)
	cfg.CapReplicas = 0
	w2 := build(t, cfg, nvm.Config{}, 4)
	if w2.cx.Replicas() != 4 {
		t.Errorf("replicas = %d, want 2n = 4", w2.cx.Replicas())
	}
}

func TestWholeReplicaFlushHappens(t *testing.T) {
	w := build(t, testCfg(2), nvm.Config{Costs: sim.UnitCosts()}, 5)
	before := w.sys.Fences()
	w.run(2, 0, 500, func(th *sim.Thread, tid int) {
		for i := uint64(0); i < 10; i++ {
			w.cx.Execute(th, tid, uc.Insert(uint64(tid)*100 + i, 1))
		}
	})
	if w.sys.Fences() <= before {
		t.Error("no replica flushes recorded for an update workload")
	}
}

func TestCrashRecoversCompletedUpdates(t *testing.T) {
	// CX-PUC is durably linearizable: every completed update must survive.
	const workers = 4
	cfg := testCfg(workers)
	w := build(t, cfg, nvm.Config{Costs: sim.UnitCosts(), BGFlushOneIn: 256, Seed: 7}, 6)
	completed := make([]uint64, workers)
	sch := w.run(workers, 60_000, 600, func(th *sim.Thread, tid int) {
		for i := uint64(0); ; i++ {
			k := uint64(tid)<<32 | i
			w.cx.Execute(th, tid, uc.Insert(k, k))
			completed[tid] = i + 1
		}
	})
	if !sch.Frozen() {
		t.Fatal("did not crash")
	}
	recSch := sim.New(700)
	recSys := w.sys.Recover(recSch)
	var rec *CX
	var err error
	recSch.Spawn("rec", 0, 0, func(th *sim.Thread) {
		rec, err = Recover(th, recSys, cfg)
	})
	recSch.Run()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	sch2 := sim.New(701)
	recSys.SetScheduler(sch2)
	sch2.Spawn("check", 0, 0, func(th *sim.Thread) {
		for tid := 0; tid < workers; tid++ {
			for i := uint64(0); i < completed[tid]; i++ {
				k := uint64(tid)<<32 | i
				if got := rec.Execute(th, 0, uc.Get(k)); got != k {
					t.Errorf("completed op (%d,%d) lost after crash", tid, i)
				}
			}
		}
	})
	sch2.Run()
}

func TestPrefillVisible(t *testing.T) {
	w := build(t, testCfg(2), nvm.Config{}, 8)
	w.run(1, 0, 800, func(th *sim.Thread, tid int) {
		ops := make([]uc.Op, 50)
		for i := range ops {
			ops[i] = uc.Insert(uint64(i), uint64(i) * 2)
		}
		w.cx.Prefill(th, ops)
		for i := uint64(0); i < 50; i++ {
			if got := w.cx.Execute(th, 0, uc.Get(i)); got != i*2 {
				t.Errorf("get(%d) = %d after prefill", i, got)
			}
		}
	})
}
