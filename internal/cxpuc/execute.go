package cxpuc

import (
	"fmt"

	"prepuc/internal/nvm"
	"prepuc/internal/pmem"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// qTail loads the queue tail (number of enqueued updates).
func (cx *CX) qTail(t *sim.Thread) uint64 { return cx.ctrl.Load(t, ctrlQTail) }

// enqueue appends op to the global queue and returns its 1-based
// linearization index.
func (cx *CX) enqueue(t *sim.Thread, op uc.Op) uint64 {
	var b backoff
	for {
		tail := cx.ctrl.Load(t, ctrlQTail)
		if tail >= cx.cfg.QueueCapacity {
			panic(fmt.Sprintf("cxpuc: operation queue capacity %d exceeded; size the run accordingly",
				cx.cfg.QueueCapacity))
		}
		if cx.ctrl.CAS(t, ctrlQTail, tail, tail+1) {
			off := tail * nvm.WordsPerLine
			cx.queue.Store(t, off+qeCode, op.Code)
			cx.queue.Store(t, off+qeA0, op.A0)
			cx.queue.Store(t, off+qeA1, op.A1)
			cx.queue.Store(t, off+qeState, 1) // ready
			return tail + 1
		}
		b.spin(t)
	}
}

// readQueued fetches the i-th (1-based) update, spinning until it is ready.
func (cx *CX) readQueued(t *sim.Thread, i uint64) (code, a0, a1 uint64) {
	off := (i - 1) * nvm.WordsPerLine
	var b backoff
	for cx.queue.Load(t, off+qeState) == 0 {
		b.spin(t)
	}
	return cx.queue.Load(t, off+qeCode), cx.queue.Load(t, off+qeA0), cx.queue.Load(t, off+qeA1)
}

// latest decodes the published (applied index, replica id) pair.
func (cx *CX) latest(t *sim.Thread) (applied uint64, rep int) {
	w := cx.meta.Load(t, metaLatest)
	return w >> 8, int(w & 0xFF)
}

// publish CASes the published pointer forward and persists it.
func (cx *CX) publish(t *sim.Thread, applied uint64, rep int) {
	newW := applied<<8 | uint64(rep)
	for {
		w := cx.meta.Load(t, metaLatest)
		if w>>8 >= applied {
			return // someone published a newer state
		}
		if cx.meta.CAS(t, metaLatest, w, newW) {
			cx.flush.FlushLineSync(t, cx.meta, metaLatest)
			return
		}
	}
}

// Execute implements the universal construction interface.
func (cx *CX) Execute(t *sim.Thread, tid int, op uc.Op) uint64 {
	t.Step(cx.sys.Costs().OpBase)
	if cx.reps[0].ds.IsReadOnly(op.Code) {
		return cx.read(t, op)
	}
	return cx.updateOp(t, op)
}

// read executes a read-only operation on the currently published replica
// under its shared try-lock.
func (cx *CX) read(t *sim.Thread, op uc.Op) uint64 {
	var b backoff
	for {
		_, repID := cx.latest(t)
		r := cx.reps[repID]
		if r.lock.TryReadLock(t) {
			// Confirm the replica is still the published one (a writer may
			// have republished while we raced to the lock).
			if _, cur := cx.latest(t); cur == repID {
				res := r.ds.Execute(t, op.Code, op.A0, op.A1)
				r.lock.ReadUnlock(t)
				return res
			}
			r.lock.ReadUnlock(t)
		}
		b.spin(t)
	}
}

// updateOp enqueues the update, then locks some non-published replica,
// brings it up to date through the new operation, flushes the whole replica,
// and publishes it.
func (cx *CX) updateOp(t *sim.Thread, op uc.Op) uint64 {
	myIdx := cx.enqueue(t, op)
	var b backoff
	for {
		// Fast path: someone already applied (and durably published) our op.
		applied, _ := cx.latest(t)
		if applied >= myIdx {
			// CX-PUC returns the response computed when the op was applied;
			// our queue keeps responses alongside entries.
			off := (myIdx - 1) * nvm.WordsPerLine
			for cx.queue.Load(t, off+qeState) != 2 {
				b.spin(t)
			}
			return cx.queue.Load(t, off+4)
		}
		_, published := cx.latest(t)
		for i := range cx.reps {
			if i == published {
				continue // never dirty the replica recovery would use
			}
			r := cx.reps[i]
			if !r.lock.TryWriteLock(t) {
				continue
			}
			applied, pub := cx.latest(t)
			if pub == i {
				// The replica was published while we raced to its lock;
				// dirtying it would corrupt the recovery point.
				r.lock.WriteUnlock(t)
				continue
			}
			if applied >= myIdx {
				r.lock.WriteUnlock(t)
				break
			}
			res := cx.applyThrough(t, r, myIdx)
			r.lock.WriteUnlock(t)
			return res
		}
		b.spin(t)
	}
}

// applyThrough applies queue entries (r.applied, upTo] to r, persists the
// whole replica, and publishes it. Returns the response of entry upTo.
// Caller holds r's write lock.
func (cx *CX) applyThrough(t *sim.Thread, r *cxReplica, upTo uint64) uint64 {
	var last uint64
	for i := r.applied + 1; i <= upTo; i++ {
		code, a0, a1 := cx.readQueued(t, i)
		res := r.ds.Execute(t, code, a0, a1)
		// Record the response so the invoking thread can pick it up.
		off := (i - 1) * nvm.WordsPerLine
		cx.queue.Store(t, off+4, res)
		cx.queue.Store(t, off+qeState, 2)
		last = res
	}
	r.applied = upTo
	r.alloc.SetRoot(t, appliedRootSlot, upTo)
	// The defining cost of CX-PUC: persist the ENTIRE replica after the
	// update batch, because a black box gives no way to know what changed.
	// The instruction stream stays whole-region; the substrate's FliT-style
	// clean-line check (DESIGN.md §12) write-backs only the lines actually
	// dirtied since the last flush and prices the rest as state checks —
	// CX-PUC is the construction that benefits most from it.
	r.heap.FlushRegion(t, 0, r.alloc.HeapTop(t))
	cx.publish(t, upTo, r.id)
	return last
}

// Prefill applies ops directly to every replica before measurement and
// persists the published one.
func (cx *CX) Prefill(t *sim.Thread, ops []uc.Op) {
	for _, r := range cx.reps {
		for _, op := range ops {
			r.ds.Execute(t, op.Code, op.A0, op.A1)
		}
	}
	r0 := cx.reps[0]
	r0.heap.FlushRegion(t, 0, r0.alloc.HeapTop(t))
	cx.flush.FlushLineSync(t, cx.meta, metaLatest)
}

// Replicas returns the replica count (tests).
func (cx *CX) Replicas() int { return len(cx.reps) }

// Recover rebuilds a CX-PUC instance from NVM after a crash: the committed
// generation's published replica (its heap was fully flushed before
// publication) seeds every replica of a fresh generation. oldCfg may carry
// any generation of the crashed lineage — the persisted commit record, not
// oldCfg.Generation, selects the source.
//
// Recover is re-entrant: the new generation's commit record flips only after
// its replica 0 and meta are persisted, so a crash at any event inside
// Recover leaves the previous committed generation as the source for the
// next attempt.
func Recover(t *sim.Thread, recSys *nvm.System, oldCfg Config) (*CX, error) {
	srcCfg := oldCfg
	srcCfg.Generation = uc.CommittedGeneration(recSys, commitMemName, oldCfg.Generation)
	meta := recSys.Memory(srcCfg.memName("meta"))
	w := meta.Load(t, metaLatest)
	repID := int(w & 0xFF)
	heap := recSys.Memory(srcCfg.memName(fmt.Sprintf("rep%d", repID)))
	alloc := pmem.Attach(t, heap)
	sds := srcCfg.Attacher(t, alloc)

	// Skip generations a crashed earlier recovery attempt left behind.
	met := recSys.Metrics()
	ncfg := srcCfg
	ncfg.Generation++
	for recSys.HasMemory(ncfg.memName("meta")) {
		ncfg.Generation++
		met.RecoveryRestarts++
	}
	cx, err := newEngine(t, recSys, ncfg)
	if err != nil {
		return nil, err
	}
	for _, r := range cx.reps {
		uc.Clone(t, sds, r.ds)
	}
	r0 := cx.reps[0]
	r0.heap.FlushRegion(t, 0, r0.alloc.HeapTop(t))
	cx.flush.FlushLineSync(t, cx.meta, metaLatest)
	cx.commit.Commit(t, ncfg.Generation)
	return cx, nil
}

// DumpState returns replica 0's state as the flat (code, a0, a1) triples its
// Dump emits. Tests compare dumps across recovery attempts for idempotence.
func (cx *CX) DumpState(t *sim.Thread) []uint64 {
	var out []uint64
	cx.reps[0].ds.Dump(t, func(code, a0, a1 uint64) {
		out = append(out, code, a0, a1)
	})
	return out
}

// backoff mirrors core's truncated exponential backoff.
type backoff struct{ cur uint64 }

func (b *backoff) spin(t *sim.Thread) {
	if b.cur == 0 {
		b.cur = 16
	}
	t.Step(b.cur)
	if b.cur < 2048 {
		b.cur *= 2
	}
}
