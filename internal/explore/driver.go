package explore

// Construction drivers: the same adapter shape cmd/crashtest uses, shrunk to
// explorer scale. Machines are tiny on purpose — the explorer's cost is
// (schedules x crash classes x persist masks) whole-machine executions, so
// every word of heap multiplies into the fingerprint walks and every extra
// event into the replays. recov returns the recovery's resolved-invocation
// map (nil for constructions without detectable execution) so leaf
// adjudication can classify crash-cut operations as InFlightCommitted /
// InFlightNever.

import (
	"fmt"

	"prepuc/internal/core"
	"prepuc/internal/cxpuc"
	"prepuc/internal/numa"
	"prepuc/internal/nvm"
	"prepuc/internal/onll"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/soft"
	"prepuc/internal/uc"
)

// driver adapts one construction to the explorer's generic leaf machinery.
// One driver instance is bound to one machine lineage (boot through its
// recovery chain); never share instances across machines.
type driver struct {
	name      string
	buffered  bool
	allowance int
	detect    bool
	boot      func(t *sim.Thread, sys *nvm.System) error
	recov     func(t *sim.Thread, recSys *nvm.System) (resolved map[uint64]uint64, err error)
	exec      func(t *sim.Thread, tid int, op uc.Op) uint64
	get       func(t *sim.Thread, key uint64) uint64
	// startAux/stopAux bracket auxiliary protocol threads over the workload
	// phase (PREP's persistence thread): startAux spawns them after the
	// workload scheduler is installed, stopAux — called by the last worker
	// to finish, on that worker's thread — asks them to exit so the run
	// quiesces. Nil when the construction has none.
	startAux func()
	stopAux  func(t *sim.Thread)
}

// Systems lists the -system spellings the explorer accepts.
func Systems() []string {
	return []string{"prep-durable", "prep-buffered", "cx", "soft", "onll"}
}

// mkDriver builds a fresh driver for the configured system.
func mkDriver(cfg *Config) (*driver, error) {
	switch cfg.System {
	case "prep-durable":
		return prepDriver(cfg, core.Durable), nil
	case "prep-buffered":
		return prepDriver(cfg, core.Buffered), nil
	case "cx":
		return cxDriver(cfg), nil
	case "soft":
		return softDriver(cfg), nil
	case "onll":
		return onllDriver(cfg), nil
	default:
		return nil, fmt.Errorf("explore: unknown system %q (want one of %v)", cfg.System, Systems())
	}
}

func (cfg *Config) topology() numa.Topology {
	nodes := cfg.Nodes
	if nodes > cfg.Workers {
		nodes = cfg.Workers
	}
	return numa.Topology{Nodes: nodes, ThreadsPerNode: (cfg.Workers + nodes - 1) / nodes}
}

func prepDriver(cfg *Config, mode core.Mode) *driver {
	tp := cfg.topology()
	ccfg := core.Config{
		Mode: mode, Topology: tp, Workers: cfg.Workers,
		LogSize: cfg.LogSize, Epsilon: cfg.Epsilon,
		Factory:   seq.HashMapFactory(8),
		Attacher:  seq.HashMapAttacher,
		HeapWords: cfg.HeapWords,
		Detect:    cfg.Detect,
	}
	d := &driver{
		name:     "PREP-Durable",
		buffered: mode == core.Buffered,
		// ε+β−1: PREP-Buffered's per-crash completed-loss bound.
		allowance: int(cfg.Epsilon) + tp.ThreadsPerNode - 1,
		detect:    cfg.Detect,
	}
	if mode == core.Buffered {
		d.name = "PREP-Buffered"
	}
	var cur *core.PREP
	d.boot = func(t *sim.Thread, sys *nvm.System) error {
		p, err := core.New(t, sys, ccfg)
		if err != nil {
			return err
		}
		if cfg.PrefillN > 0 {
			// Prefill checkpoints, so the prefilled state is durable in both
			// modes but absent from the log: recovery cannot re-create it by
			// replay, only preserve it.
			p.Prefill(t, cfg.prefill())
		}
		cur = p
		return nil
	}
	d.recov = func(t *sim.Thread, recSys *nvm.System) (map[uint64]uint64, error) {
		rec, report, err := core.Recover(t, recSys, ccfg)
		if err != nil {
			return nil, err
		}
		cur = rec
		return report.Resolved, nil
	}
	d.exec = func(t *sim.Thread, tid int, op uc.Op) uint64 { return cur.Execute(t, tid, op) }
	d.get = func(t *sim.Thread, key uint64) uint64 { return cur.Execute(t, 0, uc.Get(key)) }
	// The persistence thread (Algorithm 2) runs alongside the workload —
	// its WBINVD / replica-swap cycles are the persistence protocol's most
	// crash-sensitive window, so the explorer schedules and crashes it like
	// any other thread. The last worker to finish stops it, so runs
	// terminate.
	d.startAux = func() { cur.SpawnPersistence(0) }
	d.stopAux = func(t *sim.Thread) { cur.StopPersistence(t) }
	return d
}

func cxDriver(cfg *Config) *driver {
	ccfg := cxpuc.Config{
		Workers:   cfg.Workers,
		Factory:   seq.HashMapFactory(8),
		Attacher:  seq.HashMapAttacher,
		HeapWords: cfg.HeapWords, QueueCapacity: 1 << 10, CapReplicas: 4,
	}
	d := &driver{name: "CX-PUC"}
	var cur *cxpuc.CX
	d.boot = func(t *sim.Thread, sys *nvm.System) error {
		cx, err := cxpuc.New(t, sys, ccfg)
		if err != nil {
			return err
		}
		cur = cx
		for _, op := range cfg.prefill() {
			cur.Execute(t, 0, op)
		}
		return nil
	}
	d.recov = func(t *sim.Thread, recSys *nvm.System) (map[uint64]uint64, error) {
		rec, err := cxpuc.Recover(t, recSys, ccfg)
		if err != nil {
			return nil, err
		}
		cur = rec
		return nil, nil
	}
	d.exec = func(t *sim.Thread, tid int, op uc.Op) uint64 { return cur.Execute(t, tid, op) }
	d.get = func(t *sim.Thread, key uint64) uint64 { return cur.Execute(t, 0, uc.Get(key)) }
	return d
}

func softDriver(cfg *Config) *driver {
	ccfg := soft.Config{Buckets: 8, VolatileWords: cfg.HeapWords, PersistentWords: cfg.HeapWords}
	d := &driver{name: "SOFT"}
	var cur *soft.Soft
	d.boot = func(t *sim.Thread, sys *nvm.System) error {
		cur = soft.New(t, sys, ccfg)
		for _, op := range cfg.prefill() {
			cur.Execute(t, 0, op)
		}
		return nil
	}
	d.recov = func(t *sim.Thread, recSys *nvm.System) (map[uint64]uint64, error) {
		rec, _, err := soft.Recover(t, recSys, ccfg)
		if err != nil {
			return nil, err
		}
		cur = rec
		return nil, nil
	}
	d.exec = func(t *sim.Thread, tid int, op uc.Op) uint64 { return cur.Execute(t, tid, op) }
	d.get = func(t *sim.Thread, key uint64) uint64 { return cur.Get(t, key) }
	return d
}

func onllDriver(cfg *Config) *driver {
	ccfg := onll.Config{
		Workers: cfg.Workers, Factory: seq.HashMapFactory(8),
		HeapWords: cfg.HeapWords, LogEntries: 1 << 10,
	}
	d := &driver{name: "ONLL"}
	var cur *onll.ONLL
	d.boot = func(t *sim.Thread, sys *nvm.System) error {
		o, err := onll.New(t, sys, ccfg)
		if err != nil {
			return err
		}
		cur = o
		for _, op := range cfg.prefill() {
			cur.Execute(t, 0, op)
		}
		return nil
	}
	d.recov = func(t *sim.Thread, recSys *nvm.System) (map[uint64]uint64, error) {
		rec, _, err := onll.Recover(t, recSys, ccfg)
		if err != nil {
			return nil, err
		}
		cur = rec
		return nil, nil
	}
	d.exec = func(t *sim.Thread, tid int, op uc.Op) uint64 { return cur.Execute(t, tid, op) }
	d.get = func(t *sim.Thread, key uint64) uint64 { return cur.Execute(t, 0, uc.Get(key)) }
	return d
}
