// Package explore is the bounded exhaustive explorer: a model checker for
// the recovery protocol that, for a tiny configuration, enumerates every
// schedule (up to DPOR equivalence), every crash-point equivalence class
// along each schedule, every persist-subset materialization of each crash,
// and — at depth 2 — every persist-relevant crash inside recovery itself,
// adjudicating durable linearizability at every leaf.
//
// The state space is a tree:
//
//	schedule branch   one dispatch order of the workload (DPOR-reduced)
//	└ crash branch    one crash-point equivalence class along it
//	  └ mask branch   one subset of the pending flush set materialized
//	    └ nested …    (depth 2) one crash inside the recovery run
//	      └ leaf      recovered state, probed and checked
//
// Everything is deterministic: the simulator's virtual machine under a
// forced dispatch prefix replays executions exactly, fault.Subset pins the
// crash materialization, and the driver seeds every scheduler from
// Config.Seed — so a counterexample is a four-tuple (schedule prefix,
// crash event, persist mask, nested pair) that reproduces on any host,
// any -j, any time.
package explore

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"prepuc/internal/linearize"
	"prepuc/internal/par"
	"prepuc/internal/sim"
)

// Schema identifies the explorer's JSON report format.
const Schema = "prepuc-explore/v1"

// Config sizes and selects one exploration.
type Config struct {
	// System is the construction under test (see Systems()).
	System string
	// Workers / Ops size the workload: Ops operations round-robined over
	// Workers concurrent clients (op i runs on worker i%Workers).
	Workers int
	Ops     int
	// PrefillN inserts that many keys (disjoint from the workload's) before
	// the epoch starts; for PREP they are checkpointed and absent from the
	// log, so recovery must preserve rather than re-create them.
	PrefillN int
	// Seed derives every scheduler and substrate RNG seed.
	Seed int64
	// Jobs is host-side parallelism (<=0: GOMAXPROCS). The report is
	// invariant under Jobs.
	Jobs int
	// Depth is the crash-nesting depth: 1 explores crashes during the
	// workload, 2 additionally crashes each recovery at its own
	// persist-relevant points. (The seed's crashtest only samples this
	// space; the explorer covers it.)
	Depth int
	// Detect routes operations through detectable execution (PREP only) and
	// adjudicates crash-cut operations as InFlightCommitted/InFlightNever
	// from the recovery's verdict map instead of leaving them ambiguous.
	Detect bool
	// BGFlushOneIn enables the substrate's random background write-backs
	// (0 = off). Nonzero makes NVM stores crash-branch points.
	BGFlushOneIn uint64
	// MaskBits caps exhaustive persist-subset enumeration: a crash with at
	// most MaskBits pending lines branches over all 2^pending subsets,
	// larger pending sets fall back to an adversarial capped set (and mark
	// the report truncated).
	MaskBits int
	// MaxRounds is the delay bound: the worklist runs in BFS rounds, each
	// deviating from schedules of the previous round at one more DPOR
	// backtrack point, so round r covers every schedule reachable with at
	// most r-1 forced deviations from the baseline. Race-complete
	// exploration of a spinning, combining engine is exponential; the delay
	// bound is the explorer's declared systematic bound (alongside Depth),
	// and the report records the prefixes left unexplored when it bites.
	// 0 selects the default (3); negative means unbounded (then
	// MaxSchedules is the only brake).
	MaxRounds int
	// MaxSchedules bounds the number of schedule-prefix executions
	// (runaway guard; hitting it marks the report truncated).
	MaxSchedules int
	// MaxCrashPoints / MaxNested sample crash classes per schedule and
	// nested points per mask branch (0 = all).
	MaxCrashPoints int
	MaxNested      int
	// MaxRunEvents is the per-execution event guard against non-quiescing
	// runs.
	MaxRunEvents uint64
	// Machine sizing (defaults are explorer-scale).
	Nodes     int
	Epsilon   uint64
	LogSize   uint64
	HeapWords uint64
}

func (cfg *Config) defaults() {
	if cfg.System == "" {
		cfg.System = "prep-durable"
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.Ops == 0 {
		cfg.Ops = 3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Depth == 0 {
		cfg.Depth = 1
	}
	if cfg.Depth >= 2 && cfg.MaxNested == 0 {
		// Depth-2 multiplies every mask branch by (nested points x nested
		// masks); unsampled it dwarfs depth 1 without finding different
		// bugs. Explicit MaxNested<0 is "really all".
		cfg.MaxNested = 2
	}
	if cfg.MaskBits == 0 {
		cfg.MaskBits = 10
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 3
	}
	if cfg.MaxSchedules == 0 {
		cfg.MaxSchedules = 4096
	}
	if cfg.MaxRunEvents == 0 {
		cfg.MaxRunEvents = 5_000_000
	}
	if cfg.Nodes == 0 {
		cfg.Nodes = 2
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 8
	}
	if cfg.LogSize == 0 {
		cfg.LogSize = 64
	}
	if cfg.HeapWords == 0 {
		cfg.HeapWords = 1 << 12
	}
}

// Counterexample is one leaf that failed adjudication, with everything
// needed to replay it.
type Counterexample struct {
	System string `json:"system"`
	// Phase is "completion" (the crash-free leaf failed strict
	// linearizability) or "crash".
	Phase string `json:"phase"`
	// Schedule is the forced dispatch prefix that reproduces the execution
	// (decisions beyond it follow the deterministic minimum-clock rule).
	Schedule []int  `json:"schedule"`
	CrashAt  uint64 `json:"crash_at,omitempty"`
	Mask     string `json:"mask,omitempty"`
	NestedAt uint64 `json:"nested_at,omitempty"`
	// NestedMask is the persist mask of the crash inside recovery.
	NestedMask string `json:"nested_mask,omitempty"`
	Partition  string `json:"partition,omitempty"`
	Reason     string `json:"reason"`
	// Trace is the dispatch trace up to the crash, one line per dispatch.
	Trace []string `json:"trace"`
	// Repro is a one-line prepexplore invocation replaying exactly this leaf.
	Repro string `json:"repro"`
}

// Report is the explorer's result, stable across hosts and Jobs settings
// (WallMS excepted).
type Report struct {
	Schema  string `json:"schema"`
	System  string `json:"system"`
	Workers int    `json:"workers"`
	Ops     int    `json:"ops"`
	Depth   int    `json:"depth"`
	Seed    int64  `json:"seed"`
	Detect  bool   `json:"detect"`

	// PrefixRuns counts workload executions launched to mine schedules;
	// Schedules counts the distinct executions found (DPOR backtracks that
	// deterministically converge to an already-seen schedule are run but
	// not re-explored). Rounds is the number of BFS rounds executed and
	// UnexploredPrefixes the backtrack prefixes still queued when the
	// MaxRounds delay bound stopped the search (0 = the frontier drained).
	PrefixRuns         int    `json:"prefix_runs"`
	Schedules          int    `json:"schedules"`
	Rounds             int    `json:"rounds"`
	UnexploredPrefixes int    `json:"unexplored_prefixes"`
	ChoicePoints       uint64 `json:"choice_points"`
	// DPORBranches counts backtrack prefixes queued; DPORPruned counts
	// co-enabled commuting alternatives proven not to need a branch.
	DPORBranches uint64 `json:"dpor_branches"`
	DPORPruned   uint64 `json:"dpor_pruned"`

	CrashBranches  int `json:"crash_branches"`
	MaskBranches   int `json:"mask_branches"`
	CappedMasks    int `json:"capped_masks"`
	NestedBranches int `json:"nested_branches"`
	Leaves         int `json:"leaves"`
	MaxDepth       int `json:"max_depth"`

	// DistinctStates counts distinct post-crash materialization
	// fingerprints across all leaves; Fingerprints lists them (sorted) for
	// cross-validation against sampling harnesses.
	DistinctStates int      `json:"distinct_states"`
	Fingerprints   []string `json:"fingerprints"`

	// Truncated reports any coverage cap hit (schedule budget, crash-point
	// or nested sampling, capped masks): the run was not exhaustive.
	Truncated bool `json:"truncated"`
	// Diverged counts forced prefixes that named a non-dispatchable thread
	// (always 0 unless the DPOR analysis is buggy).
	Diverged int `json:"diverged"`

	Counterexamples []Counterexample `json:"counterexamples"`
	WallMS          float64          `json:"wall_ms"`
}

// bRes is one schedule's crash-exploration result (phase B of a round).
type bRes struct {
	crashBranches, maskBranches, cappedMasks int
	nestedBranches, leaves, maxDepth         int
	truncated                                bool
	fps                                      []uint64
	ces                                      []Counterexample
	err                                      error
}

// Run explores the configured state space to exhaustion (or its caps) and
// reports. The traversal runs in BFS rounds so host parallelism never
// changes the result: phase A executes the current prefix frontier and
// mines DPOR backtracks, phase B crash-explores the novel schedules; all
// aggregation happens in frontier index order.
func Run(cfg Config) (*Report, error) {
	cfg.defaults()
	start := time.Now()
	rep := &Report{
		Schema: Schema, System: cfg.System, Workers: cfg.Workers, Ops: cfg.Ops,
		Depth: cfg.Depth, Seed: cfg.Seed, Detect: cfg.Detect, MaxDepth: 1,
	}
	jobs := par.Jobs(cfg.Jobs)

	type aRes struct {
		prefix     []int
		wr         *workRun
		backtracks [][]int
		pruned     uint64
		err        error
	}

	seenSched := map[string]bool{}            // full schedules already crash-explored
	queuedPrefix := map[string]bool{"": true} // prefixes ever frontiered
	fpSet := map[uint64]bool{}
	frontier := [][]int{nil}

	for len(frontier) > 0 {
		if cfg.MaxSchedules > 0 && rep.PrefixRuns+len(frontier) > cfg.MaxSchedules {
			keep := cfg.MaxSchedules - rep.PrefixRuns
			if keep < 0 {
				keep = 0
			}
			frontier = frontier[:keep]
			rep.Truncated = true
			if keep == 0 {
				break
			}
		}

		// Phase A: execute and record every frontier prefix.
		ares := make([]aRes, len(frontier))
		par.Do(jobs, len(frontier), func(i int) {
			wr, err := runWorkload(&cfg, frontier[i], 0, true)
			if err != nil {
				ares[i] = aRes{err: err}
				return
			}
			bts, pruned := analyze(wr.tr)
			// Candidate snapshots are only needed by analyze; drop them so
			// retained traces cost one access per dispatch, not per candidate.
			for k := range wr.tr.dispatches {
				wr.tr.dispatches[k].cands = nil
			}
			ares[i] = aRes{prefix: frontier[i], wr: wr, backtracks: bts, pruned: pruned}
		})

		// Aggregate phase A in index order; collect novel schedules.
		var novel []int
		var next [][]int
		for i := range ares {
			a := &ares[i]
			if a.err != nil {
				return nil, a.err
			}
			rep.PrefixRuns++
			rep.ChoicePoints += a.wr.tr.choicePts
			rep.DPORPruned += a.pruned
			if a.wr.diverged {
				rep.Diverged++
			}
			for _, bt := range a.backtracks {
				k := prefixKey(bt)
				if !queuedPrefix[k] {
					queuedPrefix[k] = true
					rep.DPORBranches++
					next = append(next, bt)
				}
			}
			sk := prefixKey(a.wr.tr.schedule())
			if seenSched[sk] {
				a.wr = nil // duplicate execution: free the machine
				continue
			}
			seenSched[sk] = true
			novel = append(novel, i)
		}

		// Phase B: crash-explore each novel schedule.
		bres := make([]bRes, len(novel))
		par.Do(jobs, len(novel), func(k int) {
			a := &ares[novel[k]]
			bres[k] = exploreSchedule(&cfg, a.prefix, a.wr)
		})
		for k := range bres {
			b := &bres[k]
			if b.err != nil {
				return nil, b.err
			}
			rep.CrashBranches += b.crashBranches
			rep.MaskBranches += b.maskBranches
			rep.CappedMasks += b.cappedMasks
			rep.NestedBranches += b.nestedBranches
			rep.Leaves += b.leaves
			if b.maxDepth > rep.MaxDepth {
				rep.MaxDepth = b.maxDepth
			}
			rep.Truncated = rep.Truncated || b.truncated
			for _, fp := range b.fps {
				fpSet[fp] = true
			}
			rep.Counterexamples = append(rep.Counterexamples, b.ces...)
			ares[novel[k]].wr = nil
		}

		rep.Rounds++
		if cfg.MaxRounds > 0 && rep.Rounds >= cfg.MaxRounds {
			rep.UnexploredPrefixes = len(next)
			next = nil
		}
		frontier = next
	}

	rep.Schedules = len(seenSched)
	rep.DistinctStates = len(fpSet)
	rep.Fingerprints = make([]string, 0, len(fpSet))
	for fp := range fpSet {
		rep.Fingerprints = append(rep.Fingerprints, fmt.Sprintf("%016x", fp))
	}
	sort.Strings(rep.Fingerprints)
	rep.WallMS = float64(time.Since(start).Microseconds()) / 1000
	return rep, nil
}

// exploreSchedule runs phase B for one recorded execution: the crash-free
// completion leaf, then every (crash class x persist mask [x nested crash x
// nested mask]) leaf reachable along it.
func exploreSchedule(cfg *Config, prefix []int, wr *workRun) bRes {
	out := bRes{maxDepth: 1}

	// Completion leaf: no crash, so strict durable linearizability even for
	// buffered constructions — completion must reflect every operation.
	probed, perr := probeState(cfg, wr.d, wr.sys)
	if perr != nil {
		out.ces = append(out.ces, mkCE(cfg, "completion", prefix, wr.tr, 0, 0, 0, 0,
			linearize.Result{Reason: perr.Error()}))
	} else if res := adjudicate(cfg, wr.d, wr.rec, nil, probed, true); !res.OK {
		out.ces = append(out.ces, mkCE(cfg, "completion", prefix, wr.tr, 0, 0, 0, 0, res))
	}
	out.leaves++

	// Crash classes: one representative per equivalence class — the
	// earliest point (1), one point just past each persist-relevant
	// dispatch, and the quiescent crash just past the last event.
	E := wr.sch.Events()
	pts := make([]uint64, 0, len(wr.tr.crashPts)+2)
	pts = append(pts, 1)
	for _, n := range wr.tr.crashPts {
		if n != pts[len(pts)-1] {
			pts = append(pts, n)
		}
	}
	if pts[len(pts)-1] < E+1 {
		pts = append(pts, E+1)
	}
	pts, trunc := sampleUint64(pts, cfg.MaxCrashPoints)
	out.truncated = out.truncated || trunc

	for _, n := range pts {
		cw, err := runWorkload(cfg, prefix, n, false)
		if err != nil {
			out.err = err
			return out
		}
		if !cw.sch.Frozen() {
			// The quiescent class: the armed event never arrives, the
			// workload completes, and the crash hits the idle machine.
			cw.sch.CrashNow()
		}
		out.crashBranches++
		masks, capped := maskList(cw.sys.PendingLines(), cfg.MaskBits)
		if capped {
			out.cappedMasks++
			out.truncated = true
		}
		for _, mask := range masks {
			out.maskBranches++
			trace2 := cfg.Depth >= 2
			rr, err := recoverOnce(cfg, cw.d, cw.sys, mask, 0, trace2)
			out.leaves++
			if err != nil {
				// A recovery that hangs, errors, or panics is this leaf's
				// verdict; the remaining branches still get explored.
				out.ces = append(out.ces, mkCE(cfg, "crash", prefix, wr.tr, n, mask, 0, 0,
					linearize.Result{Reason: err.Error()}))
				continue
			}
			out.fps = append(out.fps, rr.fp)
			if probed, perr := probeState(cfg, cw.d, rr.sys); perr != nil {
				out.ces = append(out.ces, mkCE(cfg, "crash", prefix, wr.tr, n, mask, 0, 0,
					linearize.Result{Reason: perr.Error()}))
			} else if res := adjudicate(cfg, cw.d, cw.rec, rr.resolved, probed, false); !res.OK {
				out.ces = append(out.ces, mkCE(cfg, "crash", prefix, wr.tr, n, mask, 0, 0, res))
			}
			if !trace2 {
				continue
			}

			// Depth 2: crash the recovery itself at each of its
			// persist-relevant points, then recover the wreckage.
			nested := rr.nested
			for len(nested) > 0 && nested[len(nested)-1] > rr.events {
				nested = nested[:len(nested)-1]
			}
			nested, tr2 := sampleUint64(nested, cfg.MaxNested)
			out.truncated = out.truncated || tr2
			for _, n2 := range nested {
				r1, err := recoverOnce(cfg, cw.d, cw.sys, mask, n2, false)
				if err != nil {
					// The nested arm was set but the recovery failed on its
					// own (an error or panic before event n2).
					out.nestedBranches++
					out.ces = append(out.ces, mkCE(cfg, "crash", prefix, wr.tr, n, mask, n2, 0,
						linearize.Result{Reason: err.Error()}))
					continue
				}
				if !r1.frozen {
					// Threshold past the recovery's last event: the nested
					// crash never fired; the completed recovery is the
					// depth-1 leaf already checked above.
					continue
				}
				out.nestedBranches++
				masks2, capped2 := maskList(r1.sys.PendingLines(), cfg.MaskBits)
				if capped2 {
					out.cappedMasks++
					out.truncated = true
				}
				for _, m2 := range masks2 {
					out.maskBranches++
					fr, err := recoverOnce(cfg, cw.d, r1.sys, m2, 0, false)
					out.leaves++
					out.maxDepth = 2
					if err != nil {
						out.ces = append(out.ces,
							mkCE(cfg, "crash", prefix, wr.tr, n, mask, n2, m2,
								linearize.Result{Reason: err.Error()}))
						continue
					}
					if probed2, perr := probeState(cfg, cw.d, fr.sys); perr != nil {
						out.ces = append(out.ces,
							mkCE(cfg, "crash", prefix, wr.tr, n, mask, n2, m2,
								linearize.Result{Reason: perr.Error()}))
					} else if res := adjudicate(cfg, cw.d, cw.rec, fr.resolved, probed2, false); !res.OK {
						out.ces = append(out.ces,
							mkCE(cfg, "crash", prefix, wr.tr, n, mask, n2, m2, res))
					}
				}
			}
		}
	}
	return out
}

// mkCE assembles one counterexample record. nestedAt == 0 means depth 1.
func mkCE(cfg *Config, phase string, prefix []int, tr *runTrace,
	crashAt, mask, nestedAt, nestedMask uint64, res linearize.Result) Counterexample {
	ce := Counterexample{
		System:    cfg.System,
		Phase:     phase,
		Schedule:  append([]int(nil), prefix...),
		CrashAt:   crashAt,
		Partition: res.FailedPartition,
		Reason:    res.Reason,
		Trace:     renderTrace(tr, crashAt),
	}
	if phase != "completion" {
		ce.Mask = fmt.Sprintf("0x%x", mask)
		if nestedAt != 0 {
			ce.NestedAt = nestedAt
			ce.NestedMask = fmt.Sprintf("0x%x", nestedMask)
		}
	}
	ce.Repro = reproLine(cfg, &ce)
	return ce
}

// reproLine renders the one-line prepexplore invocation replaying a leaf.
func reproLine(cfg *Config, ce *Counterexample) string {
	parts := []string{
		"prepexplore",
		"-system=" + cfg.System,
		fmt.Sprintf("-workers=%d", cfg.Workers),
		fmt.Sprintf("-ops=%d", cfg.Ops),
		fmt.Sprintf("-seed=%d", cfg.Seed),
	}
	if cfg.Detect {
		parts = append(parts, "-detect")
	}
	if cfg.PrefillN > 0 {
		parts = append(parts, fmt.Sprintf("-prefill=%d", cfg.PrefillN))
	}
	if cfg.BGFlushOneIn > 0 {
		parts = append(parts, fmt.Sprintf("-bg=%d", cfg.BGFlushOneIn))
	}
	// Machine sizing beyond the defaults changes which executions exist;
	// spell it out so the line replays verbatim.
	var def Config
	def.defaults()
	if cfg.Nodes != def.Nodes {
		parts = append(parts, fmt.Sprintf("-nodes=%d", cfg.Nodes))
	}
	if cfg.Epsilon != def.Epsilon {
		parts = append(parts, fmt.Sprintf("-eps=%d", cfg.Epsilon))
	}
	if cfg.LogSize != def.LogSize {
		parts = append(parts, fmt.Sprintf("-log=%d", cfg.LogSize))
	}
	if cfg.HeapWords != def.HeapWords {
		parts = append(parts, fmt.Sprintf("-heap=%d", cfg.HeapWords))
	}
	if cfg.MaxRunEvents != def.MaxRunEvents {
		parts = append(parts, fmt.Sprintf("-max-events=%d", cfg.MaxRunEvents))
	}
	parts = append(parts, "-repro-schedule="+prefixKey(ce.Schedule))
	if ce.Phase != "completion" {
		parts = append(parts,
			fmt.Sprintf("-repro-crash-at=%d", ce.CrashAt),
			"-repro-mask="+ce.Mask)
		if ce.NestedAt != 0 {
			parts = append(parts,
				fmt.Sprintf("-repro-nested-at=%d", ce.NestedAt),
				"-repro-nested-mask="+ce.NestedMask)
		}
	}
	return strings.Join(parts, " ")
}

// Leaf names one leaf of the exploration tree for replay.
type Leaf struct {
	// Schedule is the forced dispatch prefix (nil = the root minimum-clock
	// schedule).
	Schedule []int
	// CrashAt is the crash event threshold; 0 replays the crash-free
	// completion leaf (Mask and the nested fields are then ignored).
	CrashAt uint64
	// Mask selects the persist-subset materialization.
	Mask uint64
	// NestedAt / NestedMask replay a depth-2 leaf (NestedAt 0 = depth 1).
	NestedAt   uint64
	NestedMask uint64
}

// Repro replays exactly one leaf and re-adjudicates it, returning the
// verdict and (on failure) the counterexample record.
func Repro(cfg Config, lf Leaf) (linearize.Result, *Counterexample, error) {
	cfg.defaults()
	wr, err := runWorkload(&cfg, lf.Schedule, lf.CrashAt, true)
	if err != nil {
		return linearize.Result{}, nil, err
	}
	// Leaf failures (hung/panicked recovery or probe) are verdicts, same as
	// in Run.
	fail := func(phase string, reason string) (linearize.Result, *Counterexample, error) {
		res := linearize.Result{Reason: reason}
		ce := mkCE(&cfg, phase, lf.Schedule, wr.tr, lf.CrashAt, lf.Mask, lf.NestedAt, lf.NestedMask, res)
		return res, &ce, nil
	}
	if lf.CrashAt == 0 {
		probed, perr := probeState(&cfg, wr.d, wr.sys)
		if perr != nil {
			return fail("completion", perr.Error())
		}
		res := adjudicate(&cfg, wr.d, wr.rec, nil, probed, true)
		if res.OK {
			return res, nil, nil
		}
		ce := mkCE(&cfg, "completion", lf.Schedule, wr.tr, 0, 0, 0, 0, res)
		return res, &ce, nil
	}
	if !wr.sch.Frozen() {
		wr.sch.CrashNow()
	}
	var rr *recRun
	if lf.NestedAt != 0 {
		r1, err := recoverOnce(&cfg, wr.d, wr.sys, lf.Mask, lf.NestedAt, false)
		if err != nil {
			return fail("crash", err.Error())
		}
		if !r1.frozen {
			return linearize.Result{}, nil, fmt.Errorf(
				"explore: nested crash at %d never fired (recovery ran %d events)",
				lf.NestedAt, r1.events)
		}
		rr, err = recoverOnce(&cfg, wr.d, r1.sys, lf.NestedMask, 0, false)
		if err != nil {
			return fail("crash", err.Error())
		}
	} else {
		rr, err = recoverOnce(&cfg, wr.d, wr.sys, lf.Mask, 0, false)
		if err != nil {
			return fail("crash", err.Error())
		}
	}
	probed, perr := probeState(&cfg, wr.d, rr.sys)
	if perr != nil {
		return fail("crash", perr.Error())
	}
	res := adjudicate(&cfg, wr.d, wr.rec, rr.resolved, probed, false)
	if res.OK {
		return res, nil, nil
	}
	ce := mkCE(&cfg, "crash", lf.Schedule, wr.tr, lf.CrashAt, lf.Mask, lf.NestedAt, lf.NestedMask, res)
	return res, &ce, nil
}

// StrideSweep is the sampling harness the explorer subsumes: it replays the
// root (minimum-clock) schedule, crashes it at every stride-th event plus
// the quiescent point, materializes each crash with the substrate's default
// coin policy, and returns the post-materialization persisted fingerprint of
// each point. Every fingerprint it can produce corresponds to some (crash
// class, persist mask) leaf of Run on the same Config — the cross-check that
// validates crash-class pruning (internal/harness).
func StrideSweep(cfg Config, stride uint64) ([]uint64, error) {
	cfg.defaults()
	if stride == 0 {
		stride = 1
	}
	wr0, err := runWorkload(&cfg, nil, 0, false)
	if err != nil {
		return nil, err
	}
	E := wr0.sch.Events()
	var fps []uint64
	sweep := func(n uint64) error {
		wr, err := runWorkload(&cfg, nil, n, false)
		if err != nil {
			return err
		}
		if !wr.sch.Frozen() {
			wr.sch.CrashNow()
		}
		r := wr.sys.Recover(sim.New(cfg.Seed + 2))
		fps = append(fps, r.PersistedFingerprint())
		return nil
	}
	for n := uint64(1); n <= E; n += stride {
		if err := sweep(n); err != nil {
			return nil, err
		}
	}
	if err := sweep(E + 1); err != nil {
		return nil, err
	}
	return fps, nil
}
