package explore

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"prepuc/internal/core"
)

// TestExploreSmallAllSystems is the tentpole acceptance run: for every
// construction, exhaustively explore the 2-worker / 3-op configuration within
// the declared bounds (DPOR delay bound 3, depth 1, all crash classes, all
// persist masks). Every leaf must adjudicate clean, the DPOR reduction must
// actually prune commuting branches, and no forced prefix may diverge.
func TestExploreSmallAllSystems(t *testing.T) {
	for _, sys := range Systems() {
		sys := sys
		t.Run(sys, func(t *testing.T) {
			cfg := Config{System: sys, Workers: 2, Ops: 3}
			if sys == "prep-buffered" {
				// The persistence thread checkpoints once the completed tail
				// reaches the flush boundary; at the default ε=8 a 3-op
				// workload never gets there and every crash image is the boot
				// image. ε=2 puts checkpoint cycles (the WBINVD / replica-swap
				// crash windows) inside the explored workload.
				cfg.Epsilon = 2
			}
			rep, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Counterexamples) != 0 {
				ce := rep.Counterexamples[0]
				t.Fatalf("%d counterexamples; first: phase=%s reason=%q\nrepro: %s",
					len(rep.Counterexamples), ce.Phase, ce.Reason, ce.Repro)
			}
			if rep.Schedules < 2 {
				t.Errorf("schedules = %d, want >= 2 (DPOR found no interleavings?)", rep.Schedules)
			}
			if rep.DPORPruned == 0 {
				t.Error("DPOR pruned nothing: the reduction is not engaging")
			}
			if rep.Diverged != 0 {
				t.Errorf("diverged = %d, want 0: a mined prefix named a non-candidate", rep.Diverged)
			}
			if rep.CrashBranches == 0 || rep.Leaves <= rep.Schedules {
				t.Errorf("crash space unexplored: crash=%d leaves=%d schedules=%d",
					rep.CrashBranches, rep.Leaves, rep.Schedules)
			}
			if rep.Truncated {
				t.Error("report truncated: a coverage cap bit at explorer scale")
			}
			if rep.DistinctStates < 2 {
				t.Errorf("distinct states = %d, want >= 2 (crash images all identical?)",
					rep.DistinctStates)
			}
			t.Logf("%s: %d schedules, %d crash branches, %d leaves, %d states, pruned %d, wall %.0fms",
				sys, rep.Schedules, rep.CrashBranches, rep.Leaves,
				rep.DistinctStates, rep.DPORPruned, rep.WallMS)
		})
	}
}

// TestExploreJobsInvariant pins the determinism contract: the JSON report is
// byte-identical for -j 1 and -j 8 once the sole wall-time field is zeroed.
func TestExploreJobsInvariant(t *testing.T) {
	run := func(jobs int) []byte {
		rep, err := Run(Config{System: "prep-durable", Workers: 2, Ops: 3,
			MaxRounds: 2, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		rep.WallMS = 0
		b, err := json.MarshalIndent(rep, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(1), run(8)
	if !bytes.Equal(a, b) {
		t.Fatalf("-j 1 and -j 8 reports differ:\n--- j=1 ---\n%s\n--- j=8 ---\n%s", a, b)
	}
}

// TestExploreDetect runs the detectable-execution adjudication path: crash-cut
// operations must resolve to InFlightCommitted/InFlightNever from the
// recovery's verdict map with zero counterexamples.
func TestExploreDetect(t *testing.T) {
	rep, err := Run(Config{System: "prep-durable", Workers: 2, Ops: 3,
		MaxRounds: 2, Detect: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Counterexamples) != 0 {
		ce := rep.Counterexamples[0]
		t.Fatalf("detect mode: %d counterexamples; first: %q\nrepro: %s",
			len(rep.Counterexamples), ce.Reason, ce.Repro)
	}
	if !rep.Detect {
		t.Error("report does not record detect mode")
	}
}

// TestExploreDepth2 checks that depth 2 actually reaches nested leaves:
// crashes armed inside recovery runs must fire, and their re-recoveries must
// adjudicate clean.
func TestExploreDepth2(t *testing.T) {
	rep, err := Run(Config{System: "prep-durable", Workers: 2, Ops: 2,
		MaxRounds: 2, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Counterexamples) != 0 {
		ce := rep.Counterexamples[0]
		t.Fatalf("depth 2: %d counterexamples; first: %q\nrepro: %s",
			len(rep.Counterexamples), ce.Reason, ce.Repro)
	}
	if rep.NestedBranches == 0 || rep.MaxDepth != 2 {
		t.Errorf("nested space unexplored: nested=%d maxDepth=%d",
			rep.NestedBranches, rep.MaxDepth)
	}
}

// mutationCfg is the explorer configuration that catches the pre-PR-2
// in-place-replay recovery bug: background write-backs make replay-time
// stores crash-branch points, prefilled state gives replay something to
// corrupt, and depth 2 crashes the recovery mid-replay. MaxRunEvents is
// tightened because the bug's signature is a recovery that never quiesces —
// each hung leaf burns the full event guard.
func mutationCfg() Config {
	return Config{System: "prep-durable", Workers: 2, Ops: 3,
		MaxRounds: 1, Depth: 2, BGFlushOneIn: 2, PrefillN: 2,
		MaxRunEvents: 200_000}
}

// TestExploreCatchesInPlaceReplayMutation reintroduces the historical
// recovery bug (replaying the log into the crashed heap in place instead of
// into a private clone) behind core.DebugInPlaceReplay and requires the
// explorer to find it with a replayable counterexample. The same
// configuration with the mutation off must be clean — the bug is only
// visible to systematic crash exploration, which is the point of the
// explorer.
func TestExploreCatchesInPlaceReplayMutation(t *testing.T) {
	clean, err := Run(mutationCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Counterexamples) != 0 {
		t.Fatalf("control run (mutation off) found %d counterexamples; first: %q",
			len(clean.Counterexamples), clean.Counterexamples[0].Reason)
	}

	core.DebugInPlaceReplay = true
	defer func() { core.DebugInPlaceReplay = false }()
	rep, err := Run(mutationCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Counterexamples) == 0 {
		t.Fatal("explorer missed the in-place-replay mutation")
	}
	ce := rep.Counterexamples[0]
	t.Logf("caught: phase=%s crash=%d mask=%s nested=%d reason=%q",
		ce.Phase, ce.CrashAt, ce.Mask, ce.NestedAt, ce.Reason)
	t.Logf("repro: %s", ce.Repro)

	// The counterexample must replay: feeding its four-tuple back through
	// Repro re-fails with the mutation still armed.
	lf := Leaf{Schedule: ce.Schedule, CrashAt: ce.CrashAt,
		Mask: parseMask(t, ce.Mask), NestedAt: ce.NestedAt,
		NestedMask: parseMask(t, ce.NestedMask)}
	res, rce, err := Repro(mutationCfg(), lf)
	if err != nil {
		t.Fatalf("replay errored: %v", err)
	}
	if res.OK || rce == nil {
		t.Fatalf("counterexample did not replay: ok=%v", res.OK)
	}

	// With the mutation reverted the same crash point must recover clean.
	// The nested coordinates are dropped: they address an event inside the
	// mutated recovery's execution, which the fixed recovery (a different,
	// shorter execution) never reaches.
	core.DebugInPlaceReplay = false
	res, rce, err = Repro(mutationCfg(), Leaf{Schedule: ce.Schedule,
		CrashAt: ce.CrashAt, Mask: parseMask(t, ce.Mask)})
	if err != nil {
		t.Fatalf("fixed replay errored: %v", err)
	}
	if !res.OK {
		reason := res.Reason
		if rce != nil {
			reason = rce.Reason
		}
		t.Fatalf("leaf still fails with the mutation off: %q", reason)
	}
}

func parseMask(t *testing.T, s string) uint64 {
	t.Helper()
	if s == "" {
		return 0
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 64)
	if err != nil {
		t.Fatalf("bad mask %q: %v", s, err)
	}
	return v
}

// BenchmarkExploreSmall is the wall-clock guard for the explorer: one full
// depth-1 exploration of PREP-Durable at 2 workers x 2 ops with the delay
// bound at 2. Tracked in BENCH_wallclock.json; CI fails on a >2x regression.
func BenchmarkExploreSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := Run(Config{System: "prep-durable", Workers: 2, Ops: 2,
			MaxRounds: 2, Jobs: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Counterexamples) != 0 {
			b.Fatalf("counterexamples: %d", len(rep.Counterexamples))
		}
	}
}
