package explore

// Leaf machinery: booting and running one workload execution under a forced
// schedule prefix, materializing crash branches (persist-subset masks, via
// COW clones of the frozen machine), driving recovery chains — including a
// nested crash inside recovery — and adjudicating every leaf against the
// durable-linearizability checker.

import (
	"fmt"
	"sort"

	"prepuc/internal/fault"
	"prepuc/internal/linearize"
	"prepuc/internal/nvm"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// workRun is one workload execution: the machine, its driver binding, the
// recorded invoke/response history, and (when recorded) the dispatch trace.
type workRun struct {
	d        *driver
	sys      *nvm.System
	sch      *sim.Scheduler
	rec      *linearize.Recorder
	tr       *runTrace // nil unless record
	diverged bool
}

// ops returns the workload: a fixed mixed sequence over two keys (conflicting
// writers, an overwrite, a delete) extended with per-index inserts beyond 4.
// Operation i is executed by worker i % Workers, i-th in that worker's
// program order; its detectable-execution invocation id is i+1.
func (cfg *Config) ops() []uc.Op {
	base := []uc.Op{
		uc.Insert(1, 101),
		uc.Insert(1, 202),
		uc.Delete(1),
		uc.Insert(2, 303),
	}
	out := make([]uc.Op, 0, cfg.Ops)
	for i := 0; i < cfg.Ops; i++ {
		if i < len(base) {
			out = append(out, base[i])
		} else {
			out = append(out, uc.Insert(2, uint64(400+i)))
		}
	}
	return out
}

// prefill returns the boot-time prefill operations: PrefillN inserts on keys
// disjoint from the workload's, durable before the workload starts (they form
// the epoch's initial state and — for PREP — live only in the checkpointed
// heap, outside log-replay's reach).
func (cfg *Config) prefill() []uc.Op {
	out := make([]uc.Op, 0, cfg.PrefillN)
	for i := 0; i < cfg.PrefillN; i++ {
		out = append(out, uc.Insert(uint64(100+i), uint64(1000+i)))
	}
	return out
}

// probeTargets lists every key the workload or prefill can touch, sorted.
func (cfg *Config) probeTargets() []uint64 {
	set := map[uint64]bool{}
	for _, op := range cfg.ops() {
		set[op.A0] = true
	}
	for _, op := range cfg.prefill() {
		set[op.A0] = true
	}
	keys := make([]uint64, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// runWorkload boots a fresh machine and executes the workload under the
// forced dispatch prefix (minimum-clock beyond it), with a crash armed at
// crashAt. crashAt = 0 runs to completion; a crashAt beyond the execution's
// event horizon also completes, after which the caller may CrashNow for the
// quiescent-crash branch. record additionally captures the dispatch trace
// and the crash-class thresholds. The runaway guard catches workloads that
// fail to quiesce (e.g. a misconfigured engine spinning forever).
func runWorkload(cfg *Config, prefix []int, crashAt uint64, record bool) (*workRun, error) {
	d, err := mkDriver(cfg)
	if err != nil {
		return nil, err
	}
	base := cfg.Seed
	tp := cfg.topology()

	bootSch := sim.New(base)
	sys := nvm.NewSystem(bootSch, nvm.Config{
		Costs: sim.UnitCosts(), BGFlushOneIn: cfg.BGFlushOneIn, Seed: uint64(base) + 7,
	})
	var berr error
	bootSch.Spawn("boot", 0, 0, func(t *sim.Thread) { berr = d.boot(t, sys) })
	bootSch.Run()
	if berr != nil {
		return nil, fmt.Errorf("explore: boot: %w", berr)
	}

	sch := sim.New(base + 1)
	ch := &chooser{sch: sch, forced: prefix}
	if record {
		ch.rec = &runTrace{}
		sys.SetAccessHook(ch.noteAccess)
		sys.SetPersistEffectHook(func(int) { ch.rec.addCrashPoint(sch.Events() + 1) })
	}
	sch.SetChooser(ch)
	if crashAt != 0 {
		sch.CrashAtEvent(crashAt)
	} else {
		sch.CrashAtEvent(cfg.MaxRunEvents)
	}
	sys.SetScheduler(sch)

	rec := linearize.NewRecorder(cfg.Workers)
	ops := cfg.ops()
	// The scheduler is cooperative (one goroutine holds the baton at a
	// time), so a plain counter coordinates the aux-thread shutdown.
	running := cfg.Workers
	for tid := 0; tid < cfg.Workers; tid++ {
		tid := tid
		sch.Spawn("worker", tp.NodeOf(tid), 0, func(t *sim.Thread) {
			defer func() {
				if r := recover(); r != nil && !sim.Crashed(r) {
					panic(r)
				}
			}()
			for k := tid; k < len(ops); k += cfg.Workers {
				op := ops[k]
				if d.detect {
					op.Invid = uint64(k + 1)
				}
				rec.Exec(t, tid, op, func() uint64 { return d.exec(t, tid, op) })
			}
			running--
			if running == 0 && d.stopAux != nil {
				d.stopAux(t)
			}
		})
	}
	if d.startAux != nil {
		d.startAux()
	}
	sch.Run()
	if record {
		sys.SetAccessHook(nil)
		sys.SetPersistEffectHook(nil)
	}
	if crashAt == 0 && sch.Frozen() {
		return nil, fmt.Errorf("explore: %s workload did not quiesce within %d events",
			d.name, cfg.MaxRunEvents)
	}
	return &workRun{d: d, sys: sys, sch: sch, rec: rec, tr: ch.rec, diverged: ch.diverged}, nil
}

// recRun is one recovery execution over a frozen machine's crash branch.
type recRun struct {
	sys      *nvm.System // the materialized system the recovery ran on
	fp       uint64      // persisted fingerprint right after materialization
	resolved map[uint64]uint64
	frozen   bool     // a nested crash cut the recovery short
	events   uint64   // recovery run's event count
	nested   []uint64 // persist-relevant crash thresholds inside recovery (trace only)
}

// recoverOnce clones the frozen machine frozenSys, materializes its crash
// under fault.Subset(mask), and runs the driver's recovery procedure on a
// fresh scheduler (seeded deterministically so traced and replayed recovery
// runs coincide). nestedAt > 0 arms a crash inside the recovery; trace
// collects the recovery's own persist-relevant crash thresholds for depth-2
// branching. The clone leaves frozenSys untouched, so one frozen machine
// fans out across every mask and nested point.
func recoverOnce(cfg *Config, d *driver, frozenSys *nvm.System, mask uint64,
	nestedAt uint64, trace bool) (*recRun, error) {
	aux := sim.New(cfg.Seed + 7777) // never run: the clone is immediately recovered
	c := frozenSys.Clone(aux)
	c.SetFaultPolicy(fault.Subset(mask))
	recSch := sim.New(cfg.Seed + 2)
	r := c.Recover(recSch)
	out := &recRun{sys: r, fp: r.PersistedFingerprint()}
	if trace {
		addPt := func(n uint64) {
			if len(out.nested) == 0 || out.nested[len(out.nested)-1] != n {
				out.nested = append(out.nested, n)
			}
		}
		r.SetAccessHook(func(a nvm.Access) {
			if a.PersistEffect() {
				addPt(recSch.Events() + 1)
			}
		})
		r.SetPersistEffectHook(func(int) { addPt(recSch.Events() + 1) })
	}
	if nestedAt != 0 {
		recSch.CrashAtEvent(nestedAt)
	} else {
		recSch.CrashAtEvent(cfg.MaxRunEvents)
	}
	var rerr error
	recSch.Spawn("recover", 0, 0, func(t *sim.Thread) {
		defer func() {
			if rc := recover(); rc == nil || sim.Crashed(rc) {
				return
			} else if rerr == nil {
				// A panic on corrupted state (e.g. a torn heap driving an
				// allocator or structure walk out of bounds) is a recovery
				// failure to report, not an explorer crash.
				rerr = fmt.Errorf("recovery panicked: %v", rc)
			}
		}()
		out.resolved, rerr = d.recov(t, r)
	})
	recSch.Run()
	if trace {
		r.SetAccessHook(nil)
		r.SetPersistEffectHook(nil)
	}
	out.frozen = recSch.Frozen()
	out.events = recSch.Events()
	// Every failure mode of the recovery run itself — spinning forever on a
	// corrupted structure, returning an error, panicking — is a *leaf
	// verdict* (the protocol failed to recover this crash), reported as a
	// counterexample by the caller, not an explorer failure.
	if out.frozen && nestedAt == 0 {
		return nil, fmt.Errorf("%s recovery did not quiesce within %d events",
			d.name, cfg.MaxRunEvents)
	}
	if !out.frozen && rerr != nil {
		return nil, fmt.Errorf("%s recovery failed: %w", d.name, rerr)
	}
	return out, nil
}

// probeState reads back the recovered (or live) state over the probe keys
// on a fresh scheduler. A probe that spins forever or panics (a read walk
// over a corrupted structure) is a leaf verdict like a failed recovery.
func probeState(cfg *Config, d *driver, sys *nvm.System) (map[uint64]uint64, error) {
	out := map[uint64]uint64{}
	sch := sim.New(cfg.Seed + 900)
	sys.SetScheduler(sch)
	sch.CrashAtEvent(cfg.MaxRunEvents)
	var perr error
	sch.Spawn("probe", 0, 0, func(t *sim.Thread) {
		defer func() {
			if rc := recover(); rc == nil || sim.Crashed(rc) {
				return
			} else if perr == nil {
				perr = fmt.Errorf("probe panicked: %v", rc)
			}
		}()
		for _, k := range cfg.probeTargets() {
			if v := d.get(t, k); v != uc.NotFound {
				out[k] = v
			}
		}
	})
	sch.Run()
	if sch.Frozen() {
		return nil, fmt.Errorf("probe of recovered state did not quiesce within %d events",
			cfg.MaxRunEvents)
	}
	if perr != nil {
		return nil, perr
	}
	return out, nil
}

// adjudicate checks one leaf: the recorded history (with crash-cut
// operations resolved through detectable execution's verdict map when the
// driver supports it), the prefill-derived initial state, and the probed
// recovered state must admit a durable linearization — buffered durable with
// the ε+β−1 allowance for PREP-Buffered unless strict is forced (the
// crash-free completion leaf, where nothing may be lost).
func adjudicate(cfg *Config, d *driver, rec *linearize.Recorder,
	resolved map[uint64]uint64, probed map[uint64]uint64, strict bool) linearize.Result {
	model := linearize.SetModel()
	ops := rec.Ops()
	if d.detect {
		// Recorder groups ops by client in program order; operation j of
		// worker w is global workload index w + j*Workers, invocation id
		// index+1 (see Config.ops).
		next := make(map[int]int, cfg.Workers)
		for i := range ops {
			j := next[ops[i].Client]
			next[ops[i].Client] = j + 1
			if ops[i].Class != linearize.InFlight {
				continue
			}
			invid := uint64(ops[i].Client + j*cfg.Workers + 1)
			if r, ok := resolved[invid]; ok {
				ops[i].Class, ops[i].Result = linearize.InFlightCommitted, r
			} else {
				ops[i].Class = linearize.InFlightNever
			}
		}
	}
	opt := linearize.Options{}
	if d.buffered && !strict {
		opt = linearize.Options{Buffered: true, Allowance: d.allowance}
	}
	init := linearize.Replay(model, nil, cfg.prefill())
	return linearize.CheckEpoch(model, init, ops, probed, opt)
}

// sampleUint64 evenly samples at most max values (0 = no cap), always
// keeping the first and last, preserving order.
func sampleUint64(vs []uint64, max int) ([]uint64, bool) {
	if max <= 0 || len(vs) <= max {
		return vs, false
	}
	if max == 1 {
		return vs[:1], true
	}
	out := make([]uint64, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, vs[i*(len(vs)-1)/(max-1)])
	}
	// The even stride can repeat endpoints on tiny inputs; dedup keeps order.
	ded := out[:1]
	for _, v := range out[1:] {
		if v != ded[len(ded)-1] {
			ded = append(ded, v)
		}
	}
	return ded, true
}
