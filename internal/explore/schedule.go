package explore

// Scheduling side of the explorer: the dispatch chooser that forces a branch
// prefix and records the dispatch trace, and the DPOR analysis that mines a
// recorded trace for the alternative prefixes worth exploring.
//
// Execution model (see nvm/trace.go): every memory-system operation
// announces itself immediately before its cost Step, and its effect (the
// data movement) runs when the announcing thread next resumes. So one
// *dispatch* — one Choose decision — executes exactly one pending access:
// the chosen thread's last announced one. The dispatch sequence therefore IS
// the schedule, each entry carrying the access it executed and a snapshot of
// what every other candidate would have executed instead — which is
// precisely the co-enabled-transition information dynamic partial-order
// reduction needs.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"prepuc/internal/nvm"
	"prepuc/internal/sim"
)

// candInfo is one dispatchable thread at a decision point, with the access
// it had announced and would execute if chosen (hasAcc false: the thread
// was between accesses — a pure compute step, which commutes with anything).
type candInfo struct {
	id     int
	hasAcc bool
	acc    nvm.Access
}

// dispatch is one recorded scheduling decision.
type dispatch struct {
	ev     uint64 // scheduler event counter at decision time
	chosen int
	hasAcc bool
	acc    nvm.Access
	cands  []candInfo
}

// runTrace accumulates one recorded execution.
type runTrace struct {
	dispatches []dispatch
	// crashPts are the crash-point equivalence class thresholds, ascending
	// and deduplicated: arming the scheduler crash at threshold n includes
	// exactly the persist effects of dispatches recorded with ev < n, and no
	// event between two consecutive thresholds changes the machine's crash
	// image (persisted views, pending-set membership, or pending-line
	// content) — so one crash per class covers every crash point.
	crashPts  []uint64
	choicePts uint64 // decisions offering >= 2 candidates
}

// addCrashPoint records threshold n (deduplicating the common same-threshold
// case: thresholds are generated in ascending order).
func (r *runTrace) addCrashPoint(n uint64) {
	if len(r.crashPts) > 0 && r.crashPts[len(r.crashPts)-1] == n {
		return
	}
	r.crashPts = append(r.crashPts, n)
}

// schedule renders the full dispatch sequence as its canonical key: the
// chosen thread ids, comma-joined. Two runs with equal keys are the same
// execution (the machine is deterministic given the dispatch sequence).
func (r *runTrace) schedule() []int {
	s := make([]int, len(r.dispatches))
	for i := range r.dispatches {
		s[i] = r.dispatches[i].chosen
	}
	return s
}

// prefixKey canonicalizes a forced-decision prefix for deduplication.
func prefixKey(p []int) string {
	var b strings.Builder
	for i, v := range p {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// chooser implements sim.Chooser: it forces a prefix of dispatch decisions,
// then falls back to the built-in minimum-clock rule, optionally recording
// the full dispatch trace. Determinism makes replay exact: re-running the
// same machine with a prefix extracted from a recorded trace reproduces that
// trace's dispatches verbatim up to (and past) the prefix.
type chooser struct {
	sch    *sim.Scheduler
	forced []int
	fi     int
	rec    *runTrace // nil: replay-only, no recording
	// pend[id] is thread id's announced-but-unexecuted access; pendSet[id]
	// false means the thread is between accesses (its next dispatch is pure
	// compute). Fed by the system's access hook, consumed at dispatch.
	pend     []nvm.Access
	pendSet  []bool
	diverged bool // a forced decision named a non-candidate thread
}

// noteAccess is the nvm access-hook target: thread a.Thread announced a and
// will execute it when next dispatched.
func (c *chooser) noteAccess(a nvm.Access) {
	c.grow(a.Thread)
	c.pend[a.Thread] = a
	c.pendSet[a.Thread] = true
}

func (c *chooser) grow(id int) {
	for len(c.pend) <= id {
		c.pend = append(c.pend, nvm.Access{})
		c.pendSet = append(c.pendSet, false)
	}
}

func (c *chooser) Choose(caller int, cands []sim.Candidate) int {
	pick := -1
	if c.fi < len(c.forced) {
		want := c.forced[c.fi]
		c.fi++
		for i := range cands {
			if cands[i].ID == want {
				pick = i
				break
			}
		}
		if pick < 0 {
			// The forced thread is not dispatchable here: the prefix was
			// mined from a different execution (an explorer bug, surfaced
			// as a Diverged count rather than a deadlock).
			c.diverged = true
			pick = sim.MinClock(cands)
		}
	} else {
		pick = sim.MinClock(cands)
	}
	id := cands[pick].ID
	c.grow(id)
	if c.rec != nil {
		d := dispatch{ev: c.sch.Events(), chosen: id}
		if c.pendSet[id] {
			d.hasAcc, d.acc = true, c.pend[id]
		}
		if len(cands) >= 2 {
			c.rec.choicePts++
		}
		d.cands = make([]candInfo, len(cands))
		for i, cd := range cands {
			ci := candInfo{id: cd.ID}
			if cd.ID < len(c.pendSet) && c.pendSet[cd.ID] {
				ci.hasAcc, ci.acc = true, c.pend[cd.ID]
			}
			d.cands[i] = ci
		}
		c.rec.dispatches = append(c.rec.dispatches, d)
		if d.hasAcc && d.acc.PersistEffect() {
			// The chosen access's effect executes before the next event is
			// announced, so the first crash point that includes it is ev+1.
			c.rec.addCrashPoint(c.sch.Events() + 1)
		}
	}
	// Consumed: when this thread next appears at a decision point it either
	// announced a fresh access (hook re-arms pendSet) or is mid-compute.
	c.pendSet[id] = false
	return pick
}

// conflicts reports whether two accesses do not commute: executing them in
// either order can differ in machine state, schedule, or crash image. It is
// DPOR's dependence relation; over-approximation is sound (more branches),
// under-approximation is not.
func conflicts(a, b nvm.Access) bool {
	// Word/line-addressed accesses interact only on the same memory line.
	aLine := a.Line != nvm.NoLine && a.Kind != nvm.AccFlushRegion
	bLine := b.Line != nvm.NoLine && b.Kind != nvm.AccFlushRegion
	if aLine && bLine {
		if a.Mem != b.Mem || a.Line != b.Line {
			return false
		}
		switch {
		case a.Kind == nvm.AccLoad && b.Kind == nvm.AccLoad:
			return false // load-load always commutes
		case isFlushKind(a.Kind) && b.Kind == nvm.AccLoad,
			a.Kind == nvm.AccLoad && isFlushKind(b.Kind):
			return false // flushes move data to media, loads read the cache view
		case a.Kind == nvm.AccFlush && b.Kind == nvm.AccFlush:
			// Two async flushes of one line track into their own flushers
			// regardless of order; neither clears the dirty bit.
			return false
		}
		return true
	}
	// Bulk operations: fences drain the issuing thread's pending set,
	// region/machine flushes persist dirty lines wholesale. Conservatively
	// dependent with any NVM mutation or persist operation (they commute
	// with loads and with all volatile traffic).
	bulk, other := a, b
	if bLine && !aLine {
		bulk, other = a, b
	} else if aLine && !bLine {
		bulk, other = b, a
	} else {
		// bulk vs bulk: dependent unless both are fences of different
		// threads with... order still matters for pending drain vs WBINVD;
		// keep it dependent. Rare enough not to matter.
		return a.NVM && b.NVM
	}
	if !bulk.NVM || !other.NVM {
		return false
	}
	if other.Kind == nvm.AccLoad {
		return false
	}
	if bulk.Kind != nvm.AccWBINVD && bulk.Mem != "" && other.Mem != bulk.Mem {
		return false
	}
	return true
}

func isFlushKind(k nvm.AccessKind) bool {
	return k == nvm.AccFlush || k == nvm.AccFlushSync
}

// analyze mines a recorded trace for DPOR backtrack prefixes, in the style
// of Flanagan & Godefroid: for each dispatch j executing access a_j by
// thread q, find the latest earlier dispatch i by a different thread whose
// access conflicts with a_j; the schedule where q's access executes before
// dispatch i belongs to a different Mazurkiewicz class, so the prefix
// (decisions before i) + [q] is queued for exploration. If q was not a
// candidate at i, every candidate at i is queued instead (the conservative
// fallback of the original algorithm). pruned counts the commuting
// co-enabled alternatives that provably need no branch — the reduction.
func analyze(tr *runTrace) (backtracks [][]int, pruned uint64) {
	ds := tr.dispatches
	for j := range ds {
		dj := &ds[j]
		if !dj.hasAcc {
			continue
		}
		// Count the reduction at this decision point: co-enabled candidate
		// accesses that commute with the chosen one.
		for _, ci := range dj.cands {
			if ci.id == dj.chosen {
				continue
			}
			if !ci.hasAcc || !conflicts(ci.acc, dj.acc) {
				pruned++
			}
		}
		last := -1
		for i := j - 1; i >= 0; i-- {
			di := &ds[i]
			if di.chosen == dj.chosen || !di.hasAcc {
				continue
			}
			if conflicts(di.acc, dj.acc) {
				last = i
				break
			}
		}
		if last < 0 {
			continue
		}
		di := &ds[last]
		qPresent := false
		for _, ci := range di.cands {
			if ci.id == dj.chosen {
				qPresent = true
				break
			}
		}
		prefix := make([]int, last, last+1)
		for k := 0; k < last; k++ {
			prefix[k] = ds[k].chosen
		}
		if qPresent {
			if dj.chosen != di.chosen {
				backtracks = append(backtracks, append(prefix, dj.chosen))
			}
		} else {
			for _, ci := range di.cands {
				if ci.id == di.chosen {
					continue
				}
				p := make([]int, len(prefix), len(prefix)+1)
				copy(p, prefix)
				backtracks = append(backtracks, append(p, ci.id))
			}
		}
	}
	return backtracks, pruned
}

// renderTrace formats the dispatches up to (exclusive) crash threshold n as
// counterexample evidence: one line per dispatch, oldest first.
func renderTrace(tr *runTrace, n uint64) []string {
	var out []string
	for i := range tr.dispatches {
		d := &tr.dispatches[i]
		if n != 0 && d.ev >= n {
			break
		}
		if !d.hasAcc {
			out = append(out, fmt.Sprintf("d%-4d ev=%-5d t%d compute", i, d.ev, d.chosen))
			continue
		}
		loc := d.acc.Mem
		if d.acc.Line != nvm.NoLine {
			loc = fmt.Sprintf("%s:%d", d.acc.Mem, d.acc.Line)
		}
		mark := ""
		if d.acc.PersistEffect() {
			mark = " [persist]"
		}
		out = append(out, fmt.Sprintf("d%-4d ev=%-5d t%d %s %s%s",
			i, d.ev, d.chosen, d.acc.Kind, loc, mark))
	}
	return out
}

// maskList enumerates the persist masks to branch on for a crash with
// pending lines: all 2^pending when pending <= maxBits, else a capped
// adversarial set (all, none, each single line dropped, each single line
// kept). The second return reports whether the set was capped.
func maskList(pending, maxBits int) ([]uint64, bool) {
	if pending == 0 {
		return []uint64{0}, false
	}
	if pending <= maxBits {
		n := uint64(1) << uint(pending)
		out := make([]uint64, 0, n)
		for m := uint64(0); m < n; m++ {
			out = append(out, m)
		}
		return out, false
	}
	if pending > 64 {
		pending = 64
	}
	all := ^uint64(0)
	if pending < 64 {
		all = (uint64(1) << uint(pending)) - 1
	}
	seen := map[uint64]bool{}
	var out []uint64
	add := func(m uint64) {
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	add(all)
	add(0)
	for i := 0; i < pending; i++ {
		add(all &^ (uint64(1) << uint(i)))
		add(uint64(1) << uint(i))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, true
}
