// Package fault supplies pluggable crash-time persistence adversaries for
// the simulated NVM substrate.
//
// When a crash hits, every cache line that was issued through an
// asynchronous flush (CLWB/CLFLUSHOPT) but not yet covered by a fence is in
// an undefined persistence state: real hardware may or may not have written
// it back. The nvm package's default models this as an independent fair coin
// flip per line. That is a *probabilistic* adversary — across n pending
// lines it hits any particular worst case (say, exactly one missing line)
// with probability 2^-n, so schedules that expose a missing-fence bug are
// found only by luck. The policies here replace the coin with deterministic
// adversaries that enumerate the worst cases directly:
//
//	PersistAll  every pending line reaches the media (the best case; useful
//	            as a control — a failure under PersistAll is never a
//	            fence-ordering bug).
//	DropAll     no pending line reaches the media — the behaviour of a
//	            machine whose write-pending queues are lost wholesale. Any
//	            protocol that completes an operation before fencing its
//	            lines fails under DropAll.
//	CoinFlip(p) independent biased coin per line (p = persist probability);
//	            CoinFlip(0.5) is the substrate's default behaviour under an
//	            explicit, separately seeded stream.
//	Targeted    drops exactly one pending line per crash and persists the
//	            rest — the state a single omitted SFENCE produces. Which
//	            line is dropped advances with every crash, so an iterated
//	            harness sweeps all single-line-missing states
//	            deterministically instead of waiting for the coin to land
//	            on each of them.
//
// The interface is deliberately expressed in plain integers so that nvm can
// depend on fault without an import cycle: the substrate presents its
// pending lines as an ordered sequence and asks, per index, whether the line
// persists.
package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// Policy decides, at crash time, which flushed-but-unfenced lines reach the
// media. Policies may be stateful across crashes (Targeted is); a policy
// value must only be attached to one machine's crash lineage.
type Policy interface {
	// Name identifies the policy in CLI flags and JSON output.
	Name() string
	// BeginCrash is called once per crash with the number of pending lines,
	// before any PersistPending query for that crash.
	BeginCrash(pending int)
	// PersistPending reports whether pending line i (0 ≤ i < pending, in
	// deterministic issue order) reaches the media.
	PersistPending(i int) bool
}

type persistAll struct{}

// PersistAll returns the policy under which every pending line persists.
func PersistAll() Policy { return persistAll{} }

func (persistAll) Name() string            { return "persistall" }
func (persistAll) BeginCrash(int)          {}
func (persistAll) PersistPending(int) bool { return true }

type dropAll struct{}

// DropAll returns the policy under which no pending line persists.
func DropAll() Policy { return dropAll{} }

func (dropAll) Name() string            { return "dropall" }
func (dropAll) BeginCrash(int)          {}
func (dropAll) PersistPending(int) bool { return false }

type coinFlip struct {
	p     float64
	state uint64
}

// CoinFlip returns the policy that persists each pending line independently
// with probability p, drawn from a deterministic stream seeded by seed.
func CoinFlip(p float64, seed uint64) Policy {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("fault: CoinFlip probability %v out of [0,1]", p))
	}
	if seed == 0 {
		seed = 0x1234_5678_9ABC_DEF1
	}
	return &coinFlip{p: p, state: seed}
}

func (c *coinFlip) Name() string   { return fmt.Sprintf("coinflip=%g", c.p) }
func (c *coinFlip) BeginCrash(int) {}
func (c *coinFlip) PersistPending(int) bool {
	x := c.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.state = x
	// 53 uniform mantissa bits give an unbiased comparison against p.
	return float64(x>>11)/float64(1<<53) < c.p
}

type targeted struct {
	crashes int // crashes materialized so far
	drop    int // pending index dropped at the current crash; -1 = none
}

// Targeted returns the policy that drops exactly one pending line per crash
// (persisting all others), sweeping which line is dropped across successive
// crashes: crash k drops pending line (first + k) mod n. It is strictly more
// adversarial than the fair coin for missing-fence bugs: the coin produces a
// given single-line-missing state with probability 2^-n, while Targeted
// enumerates all n of them in n crashes.
func Targeted(first int) Policy {
	if first < 0 {
		first = 0
	}
	return &targeted{crashes: first, drop: -1}
}

func (p *targeted) Name() string { return "targeted" }

func (p *targeted) BeginCrash(pending int) {
	if pending == 0 {
		p.drop = -1
	} else {
		p.drop = p.crashes % pending
	}
	p.crashes++
}

func (p *targeted) PersistPending(i int) bool { return i != p.drop }

// subsetMax is the widest pending set Subset can decide exactly: one bit
// per pending line in a uint64 mask.
const subsetMax = 64

type subset struct{ mask uint64 }

// Subset returns the policy that persists exactly the pending lines whose
// bit is set in mask (pending line i persists iff mask>>i&1 == 1). It is the
// exhaustive explorer's adversary: enumerating every mask over an n-line
// pending set visits all 2^n crash materializations, subsuming PersistAll
// (all bits set), DropAll (zero), and every Targeted single-drop state.
// Stateless, so one value may be shared across machines; crashes with more
// than 64 pending lines panic rather than silently truncate the enumeration.
func Subset(mask uint64) Policy { return subset{mask: mask} }

func (s subset) Name() string { return fmt.Sprintf("subset=%#x", s.mask) }

func (s subset) BeginCrash(pending int) {
	if pending > subsetMax {
		panic(fmt.Sprintf("fault: Subset mask covers %d lines, crash has %d pending", subsetMax, pending))
	}
}

func (s subset) PersistPending(i int) bool { return s.mask>>i&1 == 1 }

// Parse resolves a policy by its CLI spelling:
//
//	""             nil (the substrate's built-in fair coin)
//	"persistall"   PersistAll
//	"dropall"      DropAll
//	"coinflip"     CoinFlip(0.5, seed)
//	"coinflip=P"   CoinFlip(P, seed), P a float in [0,1]
//	"targeted"     Targeted(0)
//	"targeted=K"   Targeted(K), starting the drop sweep at pending index K
//	"subset=M"     Subset(M), M the persist bitmask (decimal, or 0x... hex)
func Parse(spec string, seed uint64) (Policy, error) {
	name, arg, hasArg := strings.Cut(spec, "=")
	switch name {
	case "":
		return nil, nil
	case "persistall":
		return PersistAll(), nil
	case "dropall":
		return DropAll(), nil
	case "coinflip":
		p := 0.5
		if hasArg {
			v, err := strconv.ParseFloat(arg, 64)
			if err != nil || v < 0 || v > 1 {
				return nil, fmt.Errorf("fault: bad coinflip probability %q", arg)
			}
			p = v
		}
		return CoinFlip(p, seed), nil
	case "targeted":
		first := 0
		if hasArg {
			v, err := strconv.Atoi(arg)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("fault: bad targeted start index %q", arg)
			}
			first = v
		}
		return Targeted(first), nil
	case "subset":
		if !hasArg {
			return nil, fmt.Errorf("fault: subset requires a mask (subset=M)")
		}
		mask, err := strconv.ParseUint(arg, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("fault: bad subset mask %q", arg)
		}
		return Subset(mask), nil
	default:
		return nil, fmt.Errorf("fault: unknown policy %q (want dropall, persistall, coinflip[=p], targeted[=k] or subset=m)", spec)
	}
}
