package fault

import "testing"

func decisions(p Policy, pending int) []bool {
	p.BeginCrash(pending)
	out := make([]bool, pending)
	for i := range out {
		out[i] = p.PersistPending(i)
	}
	return out
}

func TestExtremePolicies(t *testing.T) {
	for _, ok := range decisions(DropAll(), 9) {
		if ok {
			t.Fatal("DropAll persisted a line")
		}
	}
	for _, ok := range decisions(PersistAll(), 9) {
		if !ok {
			t.Fatal("PersistAll dropped a line")
		}
	}
}

func TestCoinFlipDeterministicAndBiased(t *testing.T) {
	a := CoinFlip(0.5, 42)
	b := CoinFlip(0.5, 42)
	const n = 4096
	da, db := decisions(a, n), decisions(b, n)
	persisted := 0
	for i := range da {
		if da[i] != db[i] {
			t.Fatal("same seed, different decisions")
		}
		if da[i] {
			persisted++
		}
	}
	if persisted < n/3 || persisted > 2*n/3 {
		t.Errorf("fair coin persisted %d of %d", persisted, n)
	}
	for i, ok := range decisions(CoinFlip(0, 7), 64) {
		if ok {
			t.Errorf("p=0 persisted line %d", i)
		}
	}
	for i, ok := range decisions(CoinFlip(1, 7), 64) {
		if !ok {
			t.Errorf("p=1 dropped line %d", i)
		}
	}
}

func TestTargetedSweepsDropIndex(t *testing.T) {
	p := Targeted(0)
	const n = 5
	for crash := 0; crash < 2*n; crash++ {
		d := decisions(p, n)
		dropped := -1
		for i, ok := range d {
			if !ok {
				if dropped >= 0 {
					t.Fatalf("crash %d dropped more than one line", crash)
				}
				dropped = i
			}
		}
		if dropped != crash%n {
			t.Errorf("crash %d dropped index %d, want %d", crash, dropped, crash%n)
		}
	}
	// Zero pending lines must not panic and must still advance the sweep.
	p.BeginCrash(0)
	if got := decisions(p, 3); !got[0] || !got[1] {
		t.Error("post-empty crash decisions wrong")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		spec string
		name string
	}{
		{"dropall", "dropall"},
		{"persistall", "persistall"},
		{"coinflip", "coinflip=0.5"},
		{"coinflip=0.25", "coinflip=0.25"},
		{"targeted", "targeted"},
		{"targeted=3", "targeted"},
	}
	for _, tc := range cases {
		p, err := Parse(tc.spec, 1)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.spec, err)
			continue
		}
		if p.Name() != tc.name {
			t.Errorf("Parse(%q).Name() = %q, want %q", tc.spec, p.Name(), tc.name)
		}
	}
	if p, err := Parse("", 1); p != nil || err != nil {
		t.Errorf("Parse(\"\") = %v, %v; want nil, nil", p, err)
	}
	for _, bad := range []string{"nope", "coinflip=2", "coinflip=x", "targeted=-1"} {
		if _, err := Parse(bad, 1); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
	// targeted=3 must start its sweep at index 3.
	p, _ := Parse("targeted=3", 1)
	for i, ok := range decisions(p, 5) {
		if ok == (i == 3) {
			t.Errorf("targeted=3 first crash: index %d persisted=%v", i, ok)
		}
	}
}

// TestTargetedEdgeCases pins the Targeted policy's behaviour at the edges
// the exhaustive explorer leans on: a starting index far beyond the pending
// set (crash point beyond the trace end), crashes with zero pending lines,
// and sweep-state advancement across BeginCrash(0) no-op recoveries.
func TestTargetedEdgeCases(t *testing.T) {
	cases := []struct {
		name     string
		first    int
		pendings []int // successive crashes' pending counts
		want     []int // dropped index per crash; -1 = nothing dropped
	}{
		{
			// Start index beyond the pending set wraps modulo n instead of
			// running off the end.
			name: "first-beyond-pending", first: 100,
			pendings: []int{4, 4}, want: []int{0, 1},
		},
		{
			// A crash with zero pending lines drops nothing and must not
			// panic (there is no index to drop).
			name: "zero-line-crash", first: 0,
			pendings: []int{0}, want: []int{-1},
		},
		{
			// No-op recoveries (BeginCrash(0)) still advance the sweep:
			// crash k drops (first+k) mod n counting the empty crashes.
			name: "state-across-empty-crashes", first: 0,
			pendings: []int{5, 0, 0, 5}, want: []int{0, -1, -1, 3},
		},
		{
			// Single pending line: always index 0, never out of range.
			name: "single-line", first: 3,
			pendings: []int{1, 1}, want: []int{0, 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Targeted(tc.first)
			for crash, pending := range tc.pendings {
				d := decisions(p, pending)
				dropped := -1
				for i, ok := range d {
					if !ok {
						if dropped >= 0 {
							t.Fatalf("crash %d dropped more than one line", crash)
						}
						dropped = i
					}
				}
				if dropped != tc.want[crash] {
					t.Errorf("crash %d (pending=%d): dropped %d, want %d",
						crash, pending, dropped, tc.want[crash])
				}
			}
		})
	}
}

// TestSubsetPolicy: the mask decides each pending index exactly, the policy
// is stateless across crashes, and oversized pending sets are rejected.
func TestSubsetPolicy(t *testing.T) {
	p := Subset(0b1011)
	for crash := 0; crash < 2; crash++ { // identical decisions every crash
		d := decisions(p, 4)
		want := []bool{true, true, false, true}
		for i := range want {
			if d[i] != want[i] {
				t.Errorf("crash %d: index %d persisted=%v, want %v", crash, i, d[i], want[i])
			}
		}
	}
	if got := Subset(0).Name(); got != "subset=0x0" {
		t.Errorf("Name() = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("BeginCrash(65) did not panic")
		}
	}()
	Subset(0).BeginCrash(65)
}

// TestParseSubset covers the subset=M CLI spellings.
func TestParseSubset(t *testing.T) {
	p, err := Parse("subset=0x5", 1)
	if err != nil {
		t.Fatalf("Parse(subset=0x5): %v", err)
	}
	if got := decisions(p, 3); !got[0] || got[1] || !got[2] {
		t.Errorf("subset=0x5 decisions = %v", got)
	}
	if p, err := Parse("subset=9", 1); err != nil || p.Name() != "subset=0x9" {
		t.Errorf("Parse(subset=9) = %v, %v", p, err)
	}
	for _, bad := range []string{"subset", "subset=", "subset=zz", "subset=-1"} {
		if _, err := Parse(bad, 1); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}
