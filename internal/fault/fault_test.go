package fault

import "testing"

func decisions(p Policy, pending int) []bool {
	p.BeginCrash(pending)
	out := make([]bool, pending)
	for i := range out {
		out[i] = p.PersistPending(i)
	}
	return out
}

func TestExtremePolicies(t *testing.T) {
	for _, ok := range decisions(DropAll(), 9) {
		if ok {
			t.Fatal("DropAll persisted a line")
		}
	}
	for _, ok := range decisions(PersistAll(), 9) {
		if !ok {
			t.Fatal("PersistAll dropped a line")
		}
	}
}

func TestCoinFlipDeterministicAndBiased(t *testing.T) {
	a := CoinFlip(0.5, 42)
	b := CoinFlip(0.5, 42)
	const n = 4096
	da, db := decisions(a, n), decisions(b, n)
	persisted := 0
	for i := range da {
		if da[i] != db[i] {
			t.Fatal("same seed, different decisions")
		}
		if da[i] {
			persisted++
		}
	}
	if persisted < n/3 || persisted > 2*n/3 {
		t.Errorf("fair coin persisted %d of %d", persisted, n)
	}
	for i, ok := range decisions(CoinFlip(0, 7), 64) {
		if ok {
			t.Errorf("p=0 persisted line %d", i)
		}
	}
	for i, ok := range decisions(CoinFlip(1, 7), 64) {
		if !ok {
			t.Errorf("p=1 dropped line %d", i)
		}
	}
}

func TestTargetedSweepsDropIndex(t *testing.T) {
	p := Targeted(0)
	const n = 5
	for crash := 0; crash < 2*n; crash++ {
		d := decisions(p, n)
		dropped := -1
		for i, ok := range d {
			if !ok {
				if dropped >= 0 {
					t.Fatalf("crash %d dropped more than one line", crash)
				}
				dropped = i
			}
		}
		if dropped != crash%n {
			t.Errorf("crash %d dropped index %d, want %d", crash, dropped, crash%n)
		}
	}
	// Zero pending lines must not panic and must still advance the sweep.
	p.BeginCrash(0)
	if got := decisions(p, 3); !got[0] || !got[1] {
		t.Error("post-empty crash decisions wrong")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		spec string
		name string
	}{
		{"dropall", "dropall"},
		{"persistall", "persistall"},
		{"coinflip", "coinflip=0.5"},
		{"coinflip=0.25", "coinflip=0.25"},
		{"targeted", "targeted"},
		{"targeted=3", "targeted"},
	}
	for _, tc := range cases {
		p, err := Parse(tc.spec, 1)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.spec, err)
			continue
		}
		if p.Name() != tc.name {
			t.Errorf("Parse(%q).Name() = %q, want %q", tc.spec, p.Name(), tc.name)
		}
	}
	if p, err := Parse("", 1); p != nil || err != nil {
		t.Errorf("Parse(\"\") = %v, %v; want nil, nil", p, err)
	}
	for _, bad := range []string{"nope", "coinflip=2", "coinflip=x", "targeted=-1"} {
		if _, err := Parse(bad, 1); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
	// targeted=3 must start its sweep at index 3.
	p, _ := Parse("targeted=3", 1)
	for i, ok := range decisions(p, 5) {
		if ok == (i == 3) {
			t.Errorf("targeted=3 first crash: index %d persisted=%v", i, ok)
		}
	}
}
