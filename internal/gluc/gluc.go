// Package gluc implements the trivial universal construction used as the
// volatile baseline in Figure 1: a single copy of the sequential object
// protected by one global lock. Every operation — read-only or update —
// serializes through the lock, and every thread off the object's home node
// pays remote access costs, which is exactly why NR-UC exists.
package gluc

import (
	"prepuc/internal/locks"
	"prepuc/internal/metrics"
	"prepuc/internal/nvm"
	"prepuc/internal/pmem"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// Config parameterizes the construction.
type Config struct {
	Factory   uc.Factory
	HeapWords uint64
	// HomeNode is the NUMA node the single copy lives on (0 in the paper's
	// setup, so threads on other sockets pay cross-socket latency).
	HomeNode int
	// ReadersShare lets read-only operations take the lock in shared mode.
	// The paper's "Global Lock (GL)" baseline is a plain mutex; sharing is
	// off by default and exists for the ablation benchmark.
	ReadersShare bool
}

// GL is the global-lock universal construction.
type GL struct {
	sys          *nvm.System
	heap         *nvm.Memory
	alloc        *pmem.Allocator
	ds           uc.DataStructure
	ctrl         *nvm.Memory
	lock         locks.RWLock
	readersShare bool
}

var (
	_ uc.UC           = (*GL)(nil)
	_ uc.Instrumented = (*GL)(nil)
)

// New builds the construction inside sys.
func New(t *sim.Thread, sys *nvm.System, cfg Config) *GL {
	heap := sys.NewMemory("gl.heap", nvm.Volatile, cfg.HomeNode, cfg.HeapWords)
	ctrl := sys.NewMemory("gl.ctrl", nvm.Volatile, cfg.HomeNode, nvm.WordsPerLine)
	alloc := pmem.New(t, heap)
	return &GL{
		sys:          sys,
		heap:         heap,
		alloc:        alloc,
		ds:           cfg.Factory(t, alloc),
		ctrl:         ctrl,
		lock:         locks.NewRWLock(ctrl, 0),
		readersShare: cfg.ReadersShare,
	}
}

// Stats snapshots the machine-wide metrics registry (uc.Instrumented).
func (g *GL) Stats() metrics.Snapshot { return g.sys.Metrics().Snapshot() }

// Execute runs one operation under the global lock.
func (g *GL) Execute(t *sim.Thread, tid int, op uc.Op) uint64 {
	if g.readersShare && g.ds.IsReadOnly(op.Code) {
		g.lock.ReadLock(t)
		res := g.ds.Execute(t, op.Code, op.A0, op.A1)
		g.lock.ReadUnlock(t)
		return res
	}
	g.lock.WriteLock(t)
	res := g.ds.Execute(t, op.Code, op.A0, op.A1)
	g.lock.WriteUnlock(t)
	return res
}

// Prefill applies ops directly to the object before measurement begins.
func (g *GL) Prefill(t *sim.Thread, ops []uc.Op) {
	for _, op := range ops {
		g.ds.Execute(t, op.Code, op.A0, op.A1)
	}
}
