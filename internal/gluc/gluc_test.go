package gluc

import (
	"testing"

	"prepuc/internal/nvm"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

func build(t *testing.T, cfg Config, seed int64) (*nvm.System, *GL) {
	t.Helper()
	sch := sim.New(seed)
	sys := nvm.NewSystem(sch, nvm.Config{Costs: sim.UnitCosts()})
	var g *GL
	sch.Spawn("boot", 0, 0, func(th *sim.Thread) {
		g = New(th, sys, cfg)
	})
	sch.Run()
	return sys, g
}

func TestSequential(t *testing.T) {
	sys, g := build(t, Config{Factory: seq.HashMapFactory(16), HeapWords: 1 << 16}, 1)
	sch := sim.New(2)
	sys.SetScheduler(sch)
	sch.Spawn("w", 0, 0, func(th *sim.Thread) {
		for k := uint64(0); k < 40; k++ {
			if got := g.Execute(th, 0, uc.Insert(k, k + 1)); got != 1 {
				t.Errorf("insert = %d", got)
			}
		}
		for k := uint64(0); k < 40; k++ {
			if got := g.Execute(th, 0, uc.Get(k)); got != k+1 {
				t.Errorf("get(%d) = %d", k, got)
			}
		}
	})
	sch.Run()
}

func TestConcurrentCounterExact(t *testing.T) {
	// Read-modify-write through the lock must never lose updates.
	sys, g := build(t, Config{Factory: seq.HashMapFactory(16), HeapWords: 1 << 16}, 3)
	sch := sim.New(4)
	sys.SetScheduler(sch)
	const workers, per = 8, 30
	for w := 0; w < workers; w++ {
		w := w
		sch.Spawn("w", w%2, 0, func(th *sim.Thread) {
			for i := 0; i < per; i++ {
				k := uint64(w)*100 + uint64(i)
				if got := g.Execute(th, w, uc.Insert(k, k)); got != 1 {
					t.Errorf("insert = %d", got)
				}
			}
		})
	}
	sch.Run()
	sch2 := sim.New(5)
	sys.SetScheduler(sch2)
	sch2.Spawn("check", 0, 0, func(th *sim.Thread) {
		if got := g.Execute(th, 0, uc.Size()); got != workers*per {
			t.Errorf("size = %d, want %d", got, workers*per)
		}
	})
	sch2.Run()
}

func TestPrefill(t *testing.T) {
	sys, g := build(t, Config{Factory: seq.HashMapFactory(16), HeapWords: 1 << 16}, 6)
	sch := sim.New(7)
	sys.SetScheduler(sch)
	sch.Spawn("w", 0, 0, func(th *sim.Thread) {
		g.Prefill(th, []uc.Op{{Code: uc.OpInsert, A0: 1, A1: 2}})
		if got := g.Execute(th, 0, uc.Get(1)); got != 2 {
			t.Errorf("get = %d", got)
		}
	})
	sch.Run()
}

func TestReadersShareMode(t *testing.T) {
	sys, g := build(t, Config{Factory: seq.HashMapFactory(16), HeapWords: 1 << 16, ReadersShare: true}, 8)
	sch := sim.New(9)
	sys.SetScheduler(sch)
	sch.Spawn("w", 0, 0, func(th *sim.Thread) {
		g.Execute(th, 0, uc.Insert(1, 2))
		if got := g.Execute(th, 0, uc.Get(1)); got != 2 {
			t.Errorf("shared-mode get = %d", got)
		}
	})
	sch.Run()
}
