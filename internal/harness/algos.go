package harness

import (
	"prepuc/internal/core"
	"prepuc/internal/cxpuc"
	"prepuc/internal/gluc"
	"prepuc/internal/nvm"
	"prepuc/internal/onll"
	"prepuc/internal/sim"
	"prepuc/internal/soft"
	"prepuc/internal/uc"
)

// prepSystem adapts core.PREP to the harness, wiring the persistence
// thread into the Background lifecycle.
type prepSystem struct{ *core.PREP }

func (p prepSystem) SpawnBackground() {
	if p.Config().Mode.Persistent() {
		p.SpawnPersistence(0)
	}
}

func (p prepSystem) StopBackground(t *sim.Thread) {
	if p.Config().Mode.Persistent() {
		p.StopPersistence(t)
	}
}

// PREPBuilder builds PREP-V / PREP-Buffered / PREP-Durable around the given
// sequential object type.
func PREPBuilder(mode core.Mode, epsilon uint64, obj uc.ObjectType, heapWords func(Scale) uint64) BuildFunc {
	return func(t *sim.Thread, sys *nvm.System, sc Scale, workers int) (System, error) {
		cfg := core.Config{
			Mode:      mode,
			Topology:  sc.Topology,
			Workers:   workers,
			LogSize:   sc.LogSize,
			Epsilon:   epsilon,
			Factory:   obj.New,
			Attacher:  obj.Attach,
			HeapWords: heapWords(sc),
		}
		p, err := core.New(t, sys, cfg)
		if err != nil {
			return nil, err
		}
		return prepSystem{p}, nil
	}
}

// GLBuilder builds the global-lock baseline.
func GLBuilder(obj uc.ObjectType, heapWords func(Scale) uint64) BuildFunc {
	return func(t *sim.Thread, sys *nvm.System, sc Scale, workers int) (System, error) {
		return gluc.New(t, sys, gluc.Config{
			Factory:   obj.New,
			HeapWords: heapWords(sc),
			HomeNode:  0,
		}), nil
	}
}

// CXBuilder builds the CX-PUC baseline.
func CXBuilder(obj uc.ObjectType, heapWords func(Scale) uint64) BuildFunc {
	return func(t *sim.Thread, sys *nvm.System, sc Scale, workers int) (System, error) {
		return cxpuc.New(t, sys, cxpuc.Config{
			Workers:       workers,
			Factory:       obj.New,
			Attacher:      obj.Attach,
			HeapWords:     heapWords(sc),
			QueueCapacity: sc.CXQueueCap,
			CapReplicas:   sc.CXCapReplicas,
		})
	}
}

// SOFTBuilder builds the hand-crafted SOFT hashtable baseline.
func SOFTBuilder(buckets func(Scale) uint64) BuildFunc {
	return func(t *sim.Thread, sys *nvm.System, sc Scale, workers int) (System, error) {
		words := sc.KeyRange * 16
		if words < 1<<18 {
			words = 1 << 18
		}
		return soft.New(t, sys, soft.Config{
			Buckets:         buckets(sc),
			VolatileWords:   words,
			PersistentWords: words,
		}), nil
	}
}

// ONLLBuilder builds the ONLL extension baseline (per-thread persistent
// logs, durable linearizability).
func ONLLBuilder(obj uc.ObjectType, heapWords func(Scale) uint64) BuildFunc {
	return func(t *sim.Thread, sys *nvm.System, sc Scale, workers int) (System, error) {
		return onll.New(t, sys, onll.Config{
			Workers:    workers,
			Factory:    obj.New,
			HeapWords:  heapWords(sc),
			LogEntries: sc.ONLLLogEntries,
		})
	}
}

// PREPAblationBuilder exposes the engine's ablation switches.
func PREPAblationBuilder(mode core.Mode, epsilon uint64, obj uc.ObjectType,
	heapWords func(Scale) uint64, mut func(*core.Config)) BuildFunc {
	return func(t *sim.Thread, sys *nvm.System, sc Scale, workers int) (System, error) {
		cfg := core.Config{
			Mode:      mode,
			Topology:  sc.Topology,
			Workers:   workers,
			LogSize:   sc.LogSize,
			Epsilon:   epsilon,
			Factory:   obj.New,
			Attacher:  obj.Attach,
			HeapWords: heapWords(sc),
		}
		mut(&cfg)
		p, err := core.New(t, sys, cfg)
		if err != nil {
			return nil, err
		}
		return prepSystem{p}, nil
	}
}
