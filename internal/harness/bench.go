package harness

import (
	"encoding/json"
	"fmt"
	"io"
)

// BenchSchema identifies the machine-readable bench output format. Bump the
// version suffix on any incompatible change to BenchDoc or its nested
// structures; consumers must check it before interpreting the document.
const BenchSchema = "prepuc-bench/v1"

// BenchDoc is the machine-readable result of one prepbench invocation: run
// parameters plus every experiment's points, each carrying the metrics
// snapshot of its measurement phase.
type BenchDoc struct {
	Schema     string `json:"schema"`
	Scale      string `json:"scale"`
	Seed       int64  `json:"seed"`
	Topology   string `json:"topology"` // "NODESxTHREADS_PER_NODE"
	DurationNS uint64 `json:"duration_ns"`

	Experiments []BenchExperiment `json:"experiments"`
}

// BenchExperiment is one figure's worth of results. Throughput figures fill
// Points; the recovery extension fills Recovery.
type BenchExperiment struct {
	Figure        string          `json:"figure"`
	Title         string          `json:"title"`
	ExpectedShape string          `json:"expected_shape,omitempty"`
	Points        []Point         `json:"points,omitempty"`
	Recovery      []RecoveryPoint `json:"recovery,omitempty"`
}

// NewBenchDoc starts a document for a run at the given scale and seed.
func NewBenchDoc(sc Scale, seed int64) *BenchDoc {
	return &BenchDoc{
		Schema:     BenchSchema,
		Scale:      sc.Name,
		Seed:       seed,
		Topology:   fmt.Sprintf("%dx%d", sc.Topology.Nodes, sc.Topology.ThreadsPerNode),
		DurationNS: sc.DurationNS,
	}
}

// AddFigure appends a throughput experiment's points.
func (d *BenchDoc) AddFigure(fig Figure, points []Point) {
	d.Experiments = append(d.Experiments, BenchExperiment{
		Figure:        fig.ID,
		Title:         fig.Title,
		ExpectedShape: fig.ExpectedShape,
		Points:        points,
	})
}

// AddRecovery appends the recovery extension experiment's points.
func (d *BenchDoc) AddRecovery(points []RecoveryPoint) {
	d.Experiments = append(d.Experiments, BenchExperiment{
		Figure:   "ext-recovery",
		Title:    "Recovery time: PREP-Durable ε windows vs ONLL full-history replay",
		Recovery: points,
	})
}

// WriteBenchJSON emits the document as indented JSON.
func (d *BenchDoc) WriteBenchJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
