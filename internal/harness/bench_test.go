package harness

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestBenchJSONSchema validates the machine-readable bench output: the
// document carries the schema tag, every point exposes the required wire
// keys (including the counter breakdown the acceptance criteria name), and
// the document round-trips through JSON without losing a point.
func TestBenchJSONSchema(t *testing.T) {
	sc := TinyScale()
	fig := Catalog(sc)["fig1a"]
	points, err := RunFigure(fig, sc, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	doc := NewBenchDoc(sc, 1)
	doc.AddFigure(fig, points)

	var buf bytes.Buffer
	if err := doc.WriteBenchJSON(&buf); err != nil {
		t.Fatal(err)
	}

	// Wire-level keys.
	var raw struct {
		Schema      string `json:"schema"`
		Scale       string `json:"scale"`
		Experiments []struct {
			Figure string                   `json:"figure"`
			Points []map[string]interface{} `json:"points"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if raw.Schema != BenchSchema {
		t.Errorf("schema = %q, want %q", raw.Schema, BenchSchema)
	}
	if len(raw.Experiments) != 1 || raw.Experiments[0].Figure != "fig1a" {
		t.Fatalf("experiments = %+v, want one fig1a entry", raw.Experiments)
	}
	for _, pt := range raw.Experiments[0].Points {
		for _, key := range []string{"algo", "threads", "ops", "ops_per_sec", "metrics"} {
			if _, ok := pt[key]; !ok {
				t.Fatalf("point missing key %q: %v", key, pt)
			}
		}
		met, ok := pt["metrics"].(map[string]interface{})
		if !ok {
			t.Fatalf("metrics is %T, want object", pt["metrics"])
		}
		for _, key := range []string{
			"flushes", "fences", "wbinvd_count",
			"coherence_local", "coherence_remote",
			"combiner_acquisitions", "mean_batch_size",
		} {
			if _, ok := met[key]; !ok {
				t.Errorf("point metrics missing key %q", key)
			}
		}
	}

	// Round-trip.
	var back BenchDoc
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Experiments[0].Points) != len(points) {
		t.Fatalf("round-trip lost points: %d vs %d",
			len(back.Experiments[0].Points), len(points))
	}
	for i, p := range back.Experiments[0].Points {
		if p != points[i] {
			t.Errorf("point %d changed across round-trip:\n  %+v\nvs\n  %+v", i, p, points[i])
		}
	}
}

// TestBenchDocRecovery checks the recovery extension lands in the document
// with its own keys.
func TestBenchDocRecovery(t *testing.T) {
	doc := NewBenchDoc(TinyScale(), 7)
	doc.AddRecovery([]RecoveryPoint{{
		System: "PREP-Durable", Param: "e=32",
		UpdatesRun: 100, Replayed: 12, VirtualNS: 34567,
	}})
	var buf bytes.Buffer
	if err := doc.WriteBenchJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var raw struct {
		Experiments []struct {
			Figure   string                   `json:"figure"`
			Recovery []map[string]interface{} `json:"recovery"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if raw.Experiments[0].Figure != "ext-recovery" {
		t.Fatalf("figure = %q", raw.Experiments[0].Figure)
	}
	rec := raw.Experiments[0].Recovery[0]
	for _, key := range []string{"system", "param", "updates_run", "replayed", "recovery_virtual_ns"} {
		if _, ok := rec[key]; !ok {
			t.Errorf("recovery point missing key %q", key)
		}
	}
}
