package harness

import (
	"fmt"
	"sort"

	"prepuc/internal/core"
	"prepuc/internal/seq"
	"prepuc/internal/uc"
	"prepuc/internal/workload"
)

// Catalog returns every figure of the paper's evaluation, parameterized by
// scale, keyed by figure ID (fig1a … fig6b plus the ablations of DESIGN.md
// §6). The per-experiment index in DESIGN.md documents the mapping. Each
// structure appears as one uc.ObjectType descriptor; builders receive the
// descriptor whole instead of parallel factory/attacher arguments.
func Catalog(sc Scale) map[string]Figure {
	setHeap := func(s Scale) uint64 { return s.setHeapWords() }
	hashmap := seq.HashMapType(sc.KeyRange / 8)
	figs := map[string]Figure{}

	// --- Figure 1: volatile UCs (PREP-V vs Global Lock). ---
	figs["fig1a"] = Figure{
		ID: "fig1a", Title: "Volatile UCs, hashmap, 90% read-only",
		Workload: workload.SetSpec(90, sc.KeyRange),
		Algos: []AlgoSpec{
			{"PREP-V", PREPBuilder(core.Volatile, 0, hashmap, setHeap)},
			{"GL", GLBuilder(hashmap, setHeap)},
		},
		ExpectedShape: "PREP-V scales with threads; GL stays flat or degrades",
	}
	figs["fig1b"] = Figure{
		ID: "fig1b", Title: "Volatile UCs, red-black tree, 90% read-only",
		Workload: workload.SetSpec(90, sc.KeyRange),
		Algos: []AlgoSpec{
			{"PREP-V", PREPBuilder(core.Volatile, 0, seq.RBTreeType(), setHeap)},
			{"GL", GLBuilder(seq.RBTreeType(), setHeap)},
		},
		ExpectedShape: "PREP-V scales with threads; GL stays flat or degrades",
	}
	queueHeap := func(s Scale) uint64 { return containerHeapWords(1 << 16) }
	figs["fig1c"] = Figure{
		ID: "fig1c", Title: "Volatile UCs, FIFO queue, 100% update (enq+deq pairs)",
		Workload: workload.PairsSpec(uc.OpEnqueue, uc.OpDequeue, 1024),
		Algos: []AlgoSpec{
			{"PREP-V", PREPBuilder(core.Volatile, 0, seq.QueueType(), queueHeap)},
			{"GL", GLBuilder(seq.QueueType(), queueHeap)},
		},
		ExpectedShape: "PREP-V above GL; neither scales strongly at 100% updates",
	}

	// --- Figure 2: PUCs on hashmap and red-black tree, ε ∈ {small, large}. ---
	for _, sub := range []struct {
		id, name string
		obj      uc.ObjectType
	}{
		{"fig2a", "resizable hashmap", hashmap},
		{"fig2b", "red-black tree", seq.RBTreeType()},
	} {
		figs[sub.id] = Figure{
			ID: sub.id, Title: fmt.Sprintf("PUCs, %s, 90%% read-only, 1M-key style", sub.name),
			Workload: workload.SetSpec(90, sc.KeyRange),
			Algos: []AlgoSpec{
				{fmt.Sprintf("PREP-Buffered(e=%d)", sc.EpsSmall), PREPBuilder(core.Buffered, sc.EpsSmall, sub.obj, setHeap)},
				{fmt.Sprintf("PREP-Durable(e=%d)", sc.EpsSmall), PREPBuilder(core.Durable, sc.EpsSmall, sub.obj, setHeap)},
				{fmt.Sprintf("PREP-Buffered(e=%d)", sc.EpsLarge), PREPBuilder(core.Buffered, sc.EpsLarge, sub.obj, setHeap)},
				{fmt.Sprintf("PREP-Durable(e=%d)", sc.EpsLarge), PREPBuilder(core.Durable, sc.EpsLarge, sub.obj, setHeap)},
				{"CX-PUC", CXBuilder(sub.obj, setHeap)},
			},
			ExpectedShape: "CX-PUC far below both PREP variants; small ε makes Buffered≈Durable; large ε widens the gap and lifts both",
		}
	}

	// --- Figure 3: ε sweep on the hashmap. ---
	fig3 := Figure{
		ID: "fig3", Title: "PREP-UC hashmap throughput across ε, 90% read-only",
		Workload:      workload.SetSpec(90, sc.KeyRange),
		ExpectedShape: "throughput increases with ε, saturating near 1% of the log size",
	}
	for _, eps := range sc.EpsSweep {
		fig3.Algos = append(fig3.Algos,
			AlgoSpec{fmt.Sprintf("PREP-Buffered(e=%d)", eps), PREPBuilder(core.Buffered, eps, hashmap, setHeap)},
			AlgoSpec{fmt.Sprintf("PREP-Durable(e=%d)", eps), PREPBuilder(core.Durable, eps, hashmap, setHeap)},
		)
	}
	figs["fig3"] = fig3

	// --- Figure 4: priority queue, 100% update pairs. ---
	for _, sub := range []struct {
		id      string
		prefill uint64
		eps     uint64
	}{
		{"fig4a", sc.PQSmall, sc.PQSmallEps},
		{"fig4b", sc.PQLarge, sc.PQLargeEps},
	} {
		heap := func(n uint64) func(Scale) uint64 {
			return func(Scale) uint64 { return containerHeapWords(n * 4) }
		}(sub.prefill)
		figs[sub.id] = Figure{
			ID: sub.id, Title: fmt.Sprintf("Priority queue, %d items, ε=%d, 100%% update", sub.prefill, sub.eps),
			Workload: workload.PairsSpec(uc.OpEnqueue, uc.OpDeleteMin, sub.prefill),
			Algos: []AlgoSpec{
				{"PREP-Buffered", PREPBuilder(core.Buffered, sub.eps, seq.PQueueType(), heap)},
				{"PREP-Durable", PREPBuilder(core.Durable, sub.eps, seq.PQueueType(), heap)},
				{"CX-PUC", CXBuilder(seq.PQueueType(), heap)},
			},
			ExpectedShape: "small structure+small ε narrows PREP's lead; large ε lets PREP-Buffered pull far ahead",
		}
	}

	// --- Figure 5: stack, 100% update pairs. ---
	for _, sub := range []struct {
		id      string
		prefill uint64
	}{
		{"fig5a", sc.StackSmall},
		{"fig5b", sc.StackLarge},
	} {
		heap := func(n uint64) func(Scale) uint64 {
			return func(Scale) uint64 { return containerHeapWords(n * 8) }
		}(sub.prefill)
		algos := []AlgoSpec{
			{"PREP-Buffered", PREPBuilder(core.Buffered, sc.StackEps, seq.StackType(), heap)},
			{"PREP-Durable", PREPBuilder(core.Durable, sc.StackEps, seq.StackType(), heap)},
			{"CX-PUC", CXBuilder(seq.StackType(), heap)},
		}
		if sub.id == "fig5a" {
			// §6: on the tiny stack, CX-PUC's range flush beats PREP-UC's
			// frequent WBINVD when ε is small.
			algos = append(algos,
				AlgoSpec{fmt.Sprintf("PREP-Buffered(e=%d)", sc.StackSmallEps),
					PREPBuilder(core.Buffered, sc.StackSmallEps, seq.StackType(), heap)},
				AlgoSpec{fmt.Sprintf("PREP-Durable(e=%d)", sc.StackSmallEps),
					PREPBuilder(core.Durable, sc.StackSmallEps, seq.StackType(), heap)},
			)
		}
		figs[sub.id] = Figure{
			ID: sub.id, Title: fmt.Sprintf("Stack, %d items, ε=%d, 100%% update", sub.prefill, sc.StackEps),
			Workload:      workload.PairsSpec(uc.OpPush, uc.OpPop, sub.prefill),
			Algos:         algos,
			ExpectedShape: "tiny stack + small ε favours CX-PUC's range flush; PREP-Buffered leads at large ε or once the stack is larger",
		}
	}

	// --- Figure 6: PREP-UC hashmap vs hand-crafted SOFT. ---
	for _, sub := range []struct {
		id      string
		readPct int
	}{
		{"fig6a", 90},
		{"fig6b", 50},
	} {
		figs[sub.id] = Figure{
			ID: sub.id, Title: fmt.Sprintf("PREP-UC hashmap vs SOFT, %d%% read-only", sub.readPct),
			Workload: workload.SetSpec(sub.readPct, sc.KeyRange),
			Algos: []AlgoSpec{
				{"PREP-Buffered", PREPBuilder(core.Buffered, sc.EpsLarge, hashmap, setHeap)},
				{"PREP-Durable", PREPBuilder(core.Durable, sc.EpsLarge, hashmap, setHeap)},
				{"SOFT-smallB", SOFTBuilder(func(s Scale) uint64 { return s.SoftSmallBuckets })},
				{"SOFT-largeB", SOFTBuilder(func(s Scale) uint64 { return s.SoftLargeBuckets })},
			},
			ExpectedShape: "SOFT above PREP-UC, especially update-heavy; gap grows at 50% reads",
		}
	}

	// --- Ablations (DESIGN.md §6). ---
	figs["ablation-batching"] = Figure{
		ID: "ablation-batching", Title: "Flat combining vs per-op log CAS (PREP-Buffered)",
		Workload: workload.SetSpec(50, sc.KeyRange),
		Algos: []AlgoSpec{
			{"batching", PREPBuilder(core.Buffered, sc.EpsLarge, hashmap, setHeap)},
			{"no-batching", PREPAblationBuilder(core.Buffered, sc.EpsLarge, hashmap, setHeap,
				func(c *core.Config) { c.NoBatching = true })},
		},
		ExpectedShape: "batching wins at higher thread counts",
	}
	figs["ablation-flush"] = Figure{
		ID: "ablation-flush", Title: "WBINVD vs per-dirty-line checkpoint (PREP-Buffered)",
		Workload: workload.SetSpec(50, sc.KeyRange),
		Algos: []AlgoSpec{
			{"wbinvd", PREPBuilder(core.Buffered, sc.EpsSmall, hashmap, setHeap)},
			{"per-line", PREPAblationBuilder(core.Buffered, sc.EpsSmall, hashmap, setHeap,
				func(c *core.Config) { c.PerLineFlush = true })},
		},
		ExpectedShape: "per-line flush (needs write tracking a PUC lacks) beats WBINVD at small ε",
	}
	// --- Extension: ONLL (the other PUC, from the paper's related work). ---
	figs["ext-onll"] = Figure{
		ID: "ext-onll", Title: "PREP-UC vs ONLL (per-thread persistent logs), 90% read-only hashmap",
		Workload: workload.SetSpec(90, sc.KeyRange),
		Algos: []AlgoSpec{
			{"PREP-Buffered", PREPBuilder(core.Buffered, sc.EpsLarge, hashmap, setHeap)},
			{"PREP-Durable", PREPBuilder(core.Durable, sc.EpsLarge, hashmap, setHeap)},
			{"ONLL", ONLLBuilder(hashmap, setHeap)},
		},
		ExpectedShape: "ONLL's flush-free reads are competitive at 90% reads, but its serialized updates and per-op logging cap scaling below PREP; its recovery replays the whole history (see ext-recovery)",
	}

	figs["ablation-flushelide"] = Figure{
		ID: "ablation-flushelide", Title: "FliT-style flush elision (PREP-Durable)",
		Workload: workload.SetSpec(50, sc.KeyRange),
		Algos: []AlgoSpec{
			{"elide", PREPBuilder(core.Durable, sc.EpsLarge, hashmap, setHeap)},
			{"always-flush", PREPAblationBuilder(core.Durable, sc.EpsLarge, hashmap, setHeap,
				func(c *core.Config) { c.NoFlushElision = true })},
		},
		ExpectedShape: "elision matches or beats always-flush; flush_async drops, flushes_elided accounts for the delta",
	}
	return figs
}

// FigureIDs returns the catalog's keys in display order.
func FigureIDs(figs map[string]Figure) []string {
	ids := make([]string, 0, len(figs))
	for id := range figs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
