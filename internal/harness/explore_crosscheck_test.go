package harness

import (
	"fmt"
	"testing"

	"prepuc/internal/explore"
)

// TestExploreSubsumesStrideSweep cross-validates the explorer's crash-class
// pruning against the brute-force alternative it replaced: a stride sweep
// that crashes the root schedule at every stride-th event and materializes
// each crash with the substrate's fair-coin policy. The pruning argument says
// crashing anywhere between two persist-relevant dispatches yields the same
// crash image as the class representative, and the coin's drawn subset is one
// of the explorer's exhaustively enumerated persist masks — so every
// fingerprint the sweep can produce must already be in the explorer's leaf
// set. Strictness cuts the other way: the explorer branches over masks the
// coin did not draw and schedules the sweep never runs, so its set must be
// strictly larger. A missed persist-effect hook or a wrong class boundary
// breaks the subset direction; an explorer that stopped branching breaks
// strictness.
func TestExploreSubsumesStrideSweep(t *testing.T) {
	cfg := explore.Config{System: "prep-durable", Workers: 2, Ops: 3, MaxRounds: 2}

	rep, err := explore.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Counterexamples) != 0 {
		t.Fatalf("explorer found %d counterexamples", len(rep.Counterexamples))
	}
	if rep.Truncated {
		t.Fatal("explorer truncated: the subset argument needs uncapped masks")
	}
	leafSet := make(map[string]bool, len(rep.Fingerprints))
	for _, fp := range rep.Fingerprints {
		leafSet[fp] = true
	}

	// Stride 3 keeps the sweep to a few hundred whole-machine replays while
	// still landing inside many distinct crash classes; the quiescent point
	// is always included.
	fps, err := explore.StrideSweep(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	sweepSet := map[string]bool{}
	for _, fp := range fps {
		sweepSet[fmt.Sprintf("%016x", fp)] = true
	}

	for fp := range sweepSet {
		if !leafSet[fp] {
			t.Errorf("sweep fingerprint %s not among the explorer's %d leaf states:"+
				" crash-class pruning or a persist-effect hook is unsound", fp, len(leafSet))
		}
	}
	if len(sweepSet) >= len(leafSet) {
		t.Errorf("subset not strict: sweep %d states vs explorer %d — "+
			"the explorer is not branching beyond the sweep", len(sweepSet), len(leafSet))
	}
	t.Logf("sweep: %d points, %d distinct states; explorer: %d distinct states",
		len(fps), len(sweepSet), len(leafSet))
}
