// Package harness runs the paper's evaluation (§6): it builds each
// system (PREP-V, PREP-Buffered, PREP-Durable, CX-PUC, the global-lock UC,
// and the SOFT hashtable) at each thread count, prefills the object to the
// paper's occupancy, drives the workload for a fixed span of virtual time,
// and reports throughput in operations per (virtual) second — regenerating
// every figure of the evaluation. See catalog.go for the figure definitions.
package harness

import (
	"fmt"
	"io"
	"sort"

	"prepuc/internal/metrics"
	"prepuc/internal/nvm"
	"prepuc/internal/par"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
	"prepuc/internal/workload"
)

// System is what the harness drives: any universal construction (uc.UC)
// that additionally supports a direct prefill before measurement. Every
// construction in this repository also implements uc.Instrumented, which the
// harness uses to attach a metrics snapshot to each measured point.
type System interface {
	uc.UC
	Prefill(t *sim.Thread, ops []uc.Op)
}

// Background is implemented by systems that need auxiliary threads during
// measurement (PREP-UC's persistence thread).
type Background interface {
	// SpawnBackground starts auxiliary threads on the system's current
	// scheduler.
	SpawnBackground()
	// StopBackground asks them to exit; called by the last worker.
	StopBackground(t *sim.Thread)
}

// BuildFunc constructs a System for the given worker count inside sys.
type BuildFunc func(t *sim.Thread, sys *nvm.System, sc Scale, workers int) (System, error)

// AlgoSpec names one curve of a figure.
type AlgoSpec struct {
	Name  string
	Build BuildFunc
}

// Point is one measurement. Metrics holds the counter deltas of the
// measurement phase only (boot and prefill activity is subtracted out).
type Point struct {
	Algo      string           `json:"algo"`
	Threads   int              `json:"threads"`
	Ops       uint64           `json:"ops"`
	OpsPerSec float64          `json:"ops_per_sec"`
	Metrics   metrics.Snapshot `json:"metrics"`
}

// Figure is one reproducible experiment: a workload plus the systems
// compared on it.
type Figure struct {
	ID, Title string
	Workload  workload.Spec
	Algos     []AlgoSpec
	// ExpectedShape documents the qualitative result the paper reports,
	// checked in EXPERIMENTS.md.
	ExpectedShape string
}

// RunFigure measures every (algo, thread-count) pair of the figure and
// returns the points. Each cell owns a private scheduler and nvm.System, so
// up to jobs cells run concurrently (jobs <= 0 selects GOMAXPROCS); results
// are slotted by cell index and progress lines are released in cell order,
// so the points and the output are identical for every jobs value.
// Progress lines go to w when non-nil. A build failure is reported for the
// lowest-index failing cell (with the failing algo and thread count wrapped
// in) rather than panicking, so callers can exit cleanly.
func RunFigure(fig Figure, sc Scale, seed int64, jobs int, w io.Writer) ([]Point, error) {
	type cell struct {
		algo    AlgoSpec
		threads int
	}
	var cells []cell
	for _, algo := range fig.Algos {
		for _, threads := range sc.Threads {
			cells = append(cells, cell{algo, threads})
		}
	}
	points := make([]Point, len(cells))
	errs := make([]error, len(cells))
	var seq par.Seq
	par.Do(par.Jobs(jobs), len(cells), func(i int) {
		c := cells[i]
		p, err := runPoint(fig, sc, c.algo, c.threads, seed)
		points[i], errs[i] = p, err
		seq.Done(i, func() {
			if w == nil || err != nil {
				return
			}
			fmt.Fprintf(w, "  %-22s threads=%-3d ops=%-10d %12.0f ops/s\n",
				c.algo.Name, c.threads, p.Ops, p.OpsPerSec)
		})
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("harness: %s: %s threads=%d: %w",
				fig.ID, cells[i].algo.Name, cells[i].threads, err)
		}
	}
	return points, nil
}

// runPoint measures one (algo, threads) configuration.
func runPoint(fig Figure, sc Scale, algo AlgoSpec, threads int, seed int64) (Point, error) {
	// Boot phase: build and prefill on a single thread.
	bootSch := sim.New(seed)
	sys := nvm.NewSystem(bootSch, nvm.Config{Costs: sc.Costs, Seed: uint64(seed) + 1, NoFlushElision: sc.NoFlushElision})
	var sysImpl System
	var err error
	bootSch.Spawn("boot", 0, 0, func(t *sim.Thread) {
		sysImpl, err = algo.Build(t, sys, sc, threads)
		if err != nil {
			return
		}
		sysImpl.Prefill(t, fig.Workload.PrefillOps(seed))
	})
	bootSch.Run()
	if err != nil {
		return Point{}, fmt.Errorf("build: %w", err)
	}
	// Counter state after boot+prefill; subtracted from the post-measurement
	// snapshot so the point carries measurement-phase deltas only.
	base := sys.Metrics().Snapshot()

	// Measurement phase: fresh virtual timeline.
	sch := sim.New(seed + 7)
	sys.SetScheduler(sch)
	if bg, ok := sysImpl.(Background); ok {
		bg.SpawnBackground()
	}
	opsDone := make([]uint64, threads)
	remaining := threads
	for tid := 0; tid < threads; tid++ {
		tid := tid
		node := sc.Topology.NodeOf(tid)
		sch.Spawn("worker", node, 0, func(t *sim.Thread) {
			defer func() {
				remaining--
				if remaining == 0 {
					if bg, ok := sysImpl.(Background); ok {
						bg.StopBackground(t)
					}
				}
			}()
			gen := workload.NewGen(fig.Workload, seed+13, tid)
			for t.Clock() < sc.DurationNS {
				op := gen.Next()
				sysImpl.Execute(t, tid, op)
				opsDone[tid]++
			}
		})
	}
	sch.Run()

	var total uint64
	for _, n := range opsDone {
		total += n
	}
	return Point{
		Algo:      algo.Name,
		Threads:   threads,
		Ops:       total,
		OpsPerSec: float64(total) / (float64(sc.DurationNS) / 1e9),
		Metrics:   sys.Metrics().Snapshot().Sub(base).Wire(),
	}, nil
}

// WriteTable renders points as the paper's series: one row per thread
// count, one column per algorithm.
func WriteTable(w io.Writer, fig Figure, points []Point) {
	fmt.Fprintf(w, "\n%s — %s (ops/sec)\n", fig.ID, fig.Title)
	byAlgo := map[string]map[int]float64{}
	threadSet := map[int]bool{}
	var algos []string
	for _, p := range points {
		if byAlgo[p.Algo] == nil {
			byAlgo[p.Algo] = map[int]float64{}
			algos = append(algos, p.Algo)
		}
		byAlgo[p.Algo][p.Threads] = p.OpsPerSec
		threadSet[p.Threads] = true
	}
	var threads []int
	for t := range threadSet {
		threads = append(threads, t)
	}
	sort.Ints(threads)
	fmt.Fprintf(w, "%8s", "threads")
	for _, a := range algos {
		fmt.Fprintf(w, " %22s", a)
	}
	fmt.Fprintln(w)
	for _, th := range threads {
		fmt.Fprintf(w, "%8d", th)
		for _, a := range algos {
			fmt.Fprintf(w, " %22.0f", byAlgo[a][th])
		}
		fmt.Fprintln(w)
	}
	if fig.ExpectedShape != "" {
		fmt.Fprintf(w, "expected shape: %s\n", fig.ExpectedShape)
	}
}
