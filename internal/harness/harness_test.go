package harness

import (
	"strings"
	"testing"
)

func TestCatalogCoversEveryFigure(t *testing.T) {
	figs := Catalog(TinyScale())
	for _, id := range []string{
		"fig1a", "fig1b", "fig1c",
		"fig2a", "fig2b", "fig3",
		"fig4a", "fig4b", "fig5a", "fig5b",
		"fig6a", "fig6b",
		"ablation-batching", "ablation-flush", "ablation-flushelide",
	} {
		fig, ok := figs[id]
		if !ok {
			t.Errorf("catalog missing %s", id)
			continue
		}
		if len(fig.Algos) < 2 {
			t.Errorf("%s compares %d algorithms, want ≥ 2", id, len(fig.Algos))
		}
		if fig.ExpectedShape == "" {
			t.Errorf("%s lacks an expected shape", id)
		}
	}
}

func TestRunPointProducesOps(t *testing.T) {
	sc := TinyScale()
	figs := Catalog(sc)
	for _, id := range []string{"fig1a", "fig2a", "fig5a", "fig6a"} {
		fig := figs[id]
		points, err := RunFigure(fig, sc, 1, 1, nil)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(points) != len(fig.Algos)*len(sc.Threads) {
			t.Fatalf("%s produced %d points, want %d", id, len(points), len(fig.Algos)*len(sc.Threads))
		}
		for _, p := range points {
			if p.Ops == 0 {
				t.Errorf("%s %s@%d executed no operations", id, p.Algo, p.Threads)
			}
			if p.OpsPerSec <= 0 {
				t.Errorf("%s %s@%d throughput %f", id, p.Algo, p.Threads, p.OpsPerSec)
			}
		}
	}
}

func TestRunFigureDeterministic(t *testing.T) {
	sc := TinyScale()
	fig := Catalog(sc)["fig1a"]
	a, errA := RunFigure(fig, sc, 42, 1, nil)
	b, errB := RunFigure(fig, sc, 42, 1, nil)
	if errA != nil || errB != nil {
		t.Fatalf("RunFigure: %v / %v", errA, errB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic point %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestWriteTable(t *testing.T) {
	sc := TinyScale()
	fig := Catalog(sc)["fig1a"]
	points, err := RunFigure(fig, sc, 3, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	WriteTable(&sb, fig, points)
	out := sb.String()
	for _, want := range []string{"fig1a", "threads", "PREP-V", "GL", "expected shape"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestScalesValid(t *testing.T) {
	for _, sc := range []Scale{TinyScale(), SmallScale(), PaperScale()} {
		beta := uint64(sc.Topology.ThreadsPerNode)
		if sc.EpsLarge > sc.LogSize-beta-1 {
			t.Errorf("%s: EpsLarge %d violates ε ≤ LogSize−β−1", sc.Name, sc.EpsLarge)
		}
		for _, eps := range sc.EpsSweep {
			if eps > sc.LogSize-beta-1 {
				t.Errorf("%s: sweep ε %d violates bound", sc.Name, eps)
			}
		}
		for _, th := range sc.Threads {
			if th > sc.Topology.TotalThreads() {
				t.Errorf("%s: %d threads exceed topology", sc.Name, th)
			}
		}
	}
}
