package harness

import (
	"bytes"
	"testing"

	"prepuc/internal/sim"
)

// TestRunAheadEquivalenceFig1a runs fig1a cells with the scheduler's
// run-ahead fast path on and off and requires identical points — ops,
// throughput, and the full metrics snapshot (every counter is charged at a
// virtual-time point, so any schedule divergence shows up here).
func TestRunAheadEquivalenceFig1a(t *testing.T) {
	defer func(v bool) { sim.DefaultRunAhead = v }(sim.DefaultRunAhead)
	sc := TinyScale()
	fig := Catalog(sc)["fig1a"]

	sim.DefaultRunAhead = true
	on, err := RunFigure(fig, sc, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim.DefaultRunAhead = false
	off, err := RunFigure(fig, sc, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(on) != len(off) {
		t.Fatalf("point counts differ: %d vs %d", len(on), len(off))
	}
	for i := range on {
		if on[i] != off[i] {
			t.Errorf("point %d diverges with run-ahead:\n  on:  %+v\n  off: %+v", i, on[i], off[i])
		}
	}
}

// TestParallelJobsIdenticalJSON renders the same sweep (a figure plus the
// recovery experiment) through 1 and 8 workers and requires byte-identical
// JSON documents: parallelism must not leak into results or their order.
func TestParallelJobsIdenticalJSON(t *testing.T) {
	sc := TinyScale()
	fig := Catalog(sc)["fig1a"]
	docFor := func(jobs int) []byte {
		points, err := RunFigure(fig, sc, 1, jobs, nil)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := RunRecoveryExperiment(sc, 1, jobs, nil)
		if err != nil {
			t.Fatal(err)
		}
		doc := NewBenchDoc(sc, 1)
		doc.AddFigure(fig, points)
		doc.AddRecovery(rec)
		var buf bytes.Buffer
		if err := doc.WriteBenchJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := docFor(1)
	parallel := docFor(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("-j 1 and -j 8 documents differ:\n-j1: %d bytes\n-j8: %d bytes", len(serial), len(parallel))
	}
}

// TestParallelProgressOrdered checks the ordered-release progress stream: a
// parallel run must print exactly the lines a serial run prints, in the
// same order.
func TestParallelProgressOrdered(t *testing.T) {
	sc := TinyScale()
	fig := Catalog(sc)["fig1a"]
	var serial, parallel bytes.Buffer
	if _, err := RunFigure(fig, sc, 1, 1, &serial); err != nil {
		t.Fatal(err)
	}
	if _, err := RunFigure(fig, sc, 1, 8, &parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("progress output differs:\nserial:\n%s\nparallel:\n%s", serial.String(), parallel.String())
	}
}
