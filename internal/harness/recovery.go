package harness

import (
	"fmt"
	"io"

	"prepuc/internal/core"
	"prepuc/internal/nvm"
	"prepuc/internal/onll"
	"prepuc/internal/par"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// RecoveryPoint is one measurement of the recovery-time extension
// experiment: how long (in virtual time) recovery takes after a crash, as a
// function of the persistence design.
type RecoveryPoint struct {
	System     string `json:"system"`
	Param      string `json:"param"` // ε for PREP, history length for ONLL
	UpdatesRun uint64 `json:"updates_run"`
	Replayed   uint64 `json:"replayed"`
	VirtualNS  uint64 `json:"recovery_virtual_ns"`
	// Restarts counts partially built generations the (re-entrant) recovery
	// skipped; Holes counts not-fully-persisted log entries below the
	// completed tail it stepped over. Both are zero on a clean single crash.
	Restarts uint64 `json:"recovery_restarts"`
	Holes    uint64 `json:"replay_holes"`
}

// RunRecoveryExperiment contrasts checkpoint-based recovery (PREP-Durable:
// replay at most one ε window on top of the stable replica) with log-only
// recovery (ONLL: replay the entire history). The paper motivates PREP-UC's
// persistent replicas precisely as the device that keeps the log — and
// hence recovery — finite (§4.1); this experiment quantifies it. Every cell
// is an independent run-then-crash-then-recover simulation, so up to jobs
// cells run concurrently with points and progress kept in cell order.
func RunRecoveryExperiment(sc Scale, seed int64, jobs int, w io.Writer) ([]RecoveryPoint, error) {
	histories := []uint64{1000, 2000, 4000, 8000}
	run := make([]func() (RecoveryPoint, error), 0, len(sc.EpsSweep)+len(histories))
	for _, eps := range sc.EpsSweep {
		eps := eps
		run = append(run, func() (RecoveryPoint, error) { return prepRecoveryPoint(sc, seed, eps) })
	}
	for _, hist := range histories {
		hist := hist
		run = append(run, func() (RecoveryPoint, error) { return onllRecoveryPoint(sc, seed, hist) })
	}

	points := make([]RecoveryPoint, len(run))
	errs := make([]error, len(run))
	var seqOut par.Seq
	par.Do(par.Jobs(jobs), len(run), func(i int) {
		pt, err := run[i]()
		points[i], errs[i] = pt, err
		seqOut.Done(i, func() {
			if w == nil || err != nil {
				return
			}
			fmt.Fprintf(w, "  %-14s %-10s replayed=%-6d recovery=%.3fms(virtual)\n",
				pt.System, pt.Param, pt.Replayed, float64(pt.VirtualNS)/1e6)
		})
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}

// prepRecoveryPoint runs PREP-Durable with the given ε window, crashes it,
// and measures recovery.
func prepRecoveryPoint(sc Scale, seed int64, eps uint64) (RecoveryPoint, error) {
	const workers = 8
	topoSmall := sc.Topology
	updates := uint64(4000)
	cfg := core.Config{
		Mode: core.Durable, Topology: topoSmall, Workers: workers,
		LogSize: sc.LogSize, Epsilon: eps,
		Factory:  seq.HashMapFactory(1024),
		Attacher: seq.HashMapAttacher, HeapWords: 1 << 22,
	}
	bootSch := sim.New(seed)
	sys := nvm.NewSystem(bootSch, nvm.Config{Costs: sc.Costs, Seed: uint64(seed), NoFlushElision: sc.NoFlushElision})
	var p *core.PREP
	var err error
	bootSch.Spawn("boot", 0, 0, func(t *sim.Thread) { p, err = core.New(t, sys, cfg) })
	bootSch.Run()
	if err != nil {
		return RecoveryPoint{}, fmt.Errorf("harness: recovery: PREP-Durable e=%d: build: %w", eps, err)
	}
	runSch := sim.New(seed + 1)
	sys.SetScheduler(runSch)
	p.SpawnPersistence(0)
	remaining := workers
	for tid := 0; tid < workers; tid++ {
		tid := tid
		runSch.Spawn("w", topoSmall.NodeOf(tid), 0, func(t *sim.Thread) {
			defer func() {
				remaining--
				if remaining == 0 {
					p.StopPersistence(t)
				}
			}()
			for i := uint64(0); i < updates/uint64(workers); i++ {
				p.Execute(t, tid, uc.Insert(uint64(tid)<<32 | i, i))
			}
		})
	}
	runSch.Run()
	recSch := sim.New(seed + 2)
	recSys := sys.Recover(recSch)
	var report *core.RecoveryReport
	var recNS uint64
	recSch.Spawn("rec", 0, 0, func(t *sim.Thread) {
		start := t.Clock()
		_, report, err = core.Recover(t, recSys, cfg)
		recNS = t.Clock() - start
	})
	recSch.Run()
	if err != nil {
		return RecoveryPoint{}, fmt.Errorf("harness: recovery: PREP-Durable e=%d: recover: %w", eps, err)
	}
	ms := recSys.Metrics().Snapshot()
	return RecoveryPoint{
		System: "PREP-Durable", Param: fmt.Sprintf("e=%d", eps),
		UpdatesRun: updates, Replayed: report.Replayed, VirtualNS: recNS,
		Restarts: ms.RecoveryRestarts, Holes: ms.ReplayHoles,
	}, nil
}

// onllRecoveryPoint runs ONLL to the given history length, crashes it, and
// measures the full-history replay.
func onllRecoveryPoint(sc Scale, seed int64, hist uint64) (RecoveryPoint, error) {
	const workers = 8
	topoSmall := sc.Topology
	cfg := onll.Config{
		Workers: workers, Factory: seq.HashMapFactory(1024),
		HeapWords: 1 << 22, LogEntries: hist + 64,
	}
	bootSch := sim.New(seed + 10)
	sys := nvm.NewSystem(bootSch, nvm.Config{Costs: sc.Costs, Seed: uint64(seed), NoFlushElision: sc.NoFlushElision})
	var o *onll.ONLL
	var err error
	bootSch.Spawn("boot", 0, 0, func(t *sim.Thread) { o, err = onll.New(t, sys, cfg) })
	bootSch.Run()
	if err != nil {
		return RecoveryPoint{}, fmt.Errorf("harness: recovery: ONLL hist=%d: build: %w", hist, err)
	}
	runSch := sim.New(seed + 11)
	sys.SetScheduler(runSch)
	for tid := 0; tid < workers; tid++ {
		tid := tid
		runSch.Spawn("w", topoSmall.NodeOf(tid), 0, func(t *sim.Thread) {
			for i := uint64(0); i < hist/uint64(workers); i++ {
				o.Execute(t, tid, uc.Insert(uint64(tid)<<32 | i, i))
			}
		})
	}
	runSch.Run()
	recSch := sim.New(seed + 12)
	recSys := sys.Recover(recSch)
	var replayed, recNS uint64
	recSch.Spawn("rec", 0, 0, func(t *sim.Thread) {
		start := t.Clock()
		_, replayed, err = onll.Recover(t, recSys, cfg)
		recNS = t.Clock() - start
	})
	recSch.Run()
	if err != nil {
		return RecoveryPoint{}, fmt.Errorf("harness: recovery: ONLL hist=%d: recover: %w", hist, err)
	}
	ms := recSys.Metrics().Snapshot()
	return RecoveryPoint{
		System: "ONLL", Param: fmt.Sprintf("hist=%d", hist),
		UpdatesRun: hist, Replayed: replayed, VirtualNS: recNS,
		Restarts: ms.RecoveryRestarts, Holes: ms.ReplayHoles,
	}, nil
}
