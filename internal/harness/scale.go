package harness

import (
	"prepuc/internal/numa"
	"prepuc/internal/sim"
)

// Scale groups the size parameters of a full evaluation run. Small is the
// default (CI-friendly, minutes); Paper reproduces the evaluation's sizes
// (1M keys, 1M-entry log, 96 hardware threads) and takes correspondingly
// longer and more memory.
type Scale struct {
	Name     string
	Topology numa.Topology
	Costs    sim.Costs
	// Threads is the sweep of worker counts (the figures' x axis).
	Threads []int
	// DurationNS is the measured virtual time per point (the paper measures
	// 10 wall seconds; virtual time is deterministic so shorter suffices).
	DurationNS uint64
	// KeyRange is the set workloads' key universe (paper: 1M).
	KeyRange uint64
	// LogSize is the shared log capacity (paper: 1M).
	LogSize uint64
	// EpsSmall and EpsLarge are the two ε values of Figure 2 (paper: 100
	// and 10000 = 1% of the log).
	EpsSmall, EpsLarge uint64
	// EpsSweep is Figure 3's ε axis.
	EpsSweep []uint64
	// PQSmall/PQLarge are Figure 4's priority-queue prefills (paper: 50k
	// and 500k) with their ε values.
	PQSmall, PQLarge       uint64
	PQSmallEps, PQLargeEps uint64
	// StackSmall/StackLarge are Figure 5's stack prefills (paper: 500, 50k).
	// StackEps is the figure's ε (paper: 10000); StackSmallEps adds the
	// small-ε series showing §6's "when ε is small CX-PUC outperforms
	// PREP-UC" crossover on the tiny stack.
	StackSmall, StackLarge  uint64
	StackEps, StackSmallEps uint64
	// SoftSmallBuckets/SoftLargeBuckets are Figure 6's SOFT variants
	// (paper: 1k and 10k buckets).
	SoftSmallBuckets, SoftLargeBuckets uint64
	// CXCapReplicas bounds CX-PUC's replica count (0 = the original 2n).
	CXCapReplicas int
	// CXQueueCap sizes CX-PUC's operation queue for the run.
	CXQueueCap uint64
	// ONLLLogEntries sizes ONLL's per-thread persistent logs for the run.
	ONLLLogEntries uint64
	// NoFlushElision disables the substrate's FliT-style clean-line flush
	// elision for every cell of the run (reference cost model; see
	// nvm.Config.NoFlushElision). The zero value keeps elision on.
	NoFlushElision bool
}

// SmallScale is the default: every structural feature of the evaluation at
// 1/64th the size, so the whole figure suite runs in minutes.
func SmallScale() Scale {
	return Scale{
		Name:             "small",
		Topology:         numa.Topology{Nodes: 2, ThreadsPerNode: 8},
		Costs:            sim.DefaultCosts(),
		Threads:          []int{1, 2, 4, 8, 12, 16},
		DurationNS:       2_000_000, // 2 virtual ms
		KeyRange:         1 << 14,
		LogSize:          1 << 14,
		EpsSmall:         100,
		EpsLarge:         2048,
		EpsSweep:         []uint64{100, 512, 2048, 8192},
		PQSmall:          1 << 10,
		PQLarge:          1 << 13,
		PQSmallEps:       100,
		PQLargeEps:       2048,
		StackSmall:       64,
		StackLarge:       1 << 10,
		StackEps:         2048,
		StackSmallEps:    32,
		SoftSmallBuckets: 64,
		SoftLargeBuckets: 1024,
		CXCapReplicas:    8,
		CXQueueCap:       1 << 21,
		ONLLLogEntries:   1 << 14,
	}
}

// PaperScale mirrors the evaluation's published parameters. Expect a long
// run and several GB of simulated memory.
func PaperScale() Scale {
	return Scale{
		Name:             "paper",
		Topology:         numa.Paper(),
		Costs:            sim.DefaultCosts(),
		Threads:          []int{1, 8, 16, 24, 48, 72, 95},
		DurationNS:       10_000_000, // 10 virtual ms
		KeyRange:         1 << 20,
		LogSize:          1 << 20,
		EpsSmall:         100,
		EpsLarge:         10_000,
		EpsSweep:         []uint64{100, 1000, 10_000, 100_000},
		PQSmall:          50_000,
		PQLarge:          500_000,
		PQSmallEps:       1000,
		PQLargeEps:       10_000,
		StackSmall:       500,
		StackLarge:       50_000,
		StackEps:         10_000,
		StackSmallEps:    100,
		SoftSmallBuckets: 1000,
		SoftLargeBuckets: 10_000,
		CXCapReplicas:    4,
		CXQueueCap:       1 << 24,
		ONLLLogEntries:   1 << 15,
	}
}

// TinyScale is for the repository's testing.B benchmarks: one data point
// must finish in well under a second.
func TinyScale() Scale {
	sc := SmallScale()
	sc.Name = "tiny"
	sc.Topology = numa.Topology{Nodes: 2, ThreadsPerNode: 4}
	sc.Threads = []int{4}
	sc.DurationNS = 300_000
	sc.KeyRange = 1 << 10
	sc.LogSize = 1 << 10
	sc.EpsSmall = 32
	sc.EpsLarge = 256
	sc.EpsSweep = []uint64{32, 128, 512}
	sc.PQSmall = 256
	sc.PQLarge = 1024
	sc.PQSmallEps = 32
	sc.PQLargeEps = 256
	sc.StackSmall = 32
	sc.StackLarge = 256
	sc.StackEps = 256
	sc.StackSmallEps = 16
	sc.SoftSmallBuckets = 32
	sc.SoftLargeBuckets = 256
	sc.CXCapReplicas = 4
	sc.CXQueueCap = 1 << 18
	sc.ONLLLogEntries = 1 << 12
	return sc
}

// setHeapWords sizes a per-replica heap for a key-set structure.
func (sc Scale) setHeapWords() uint64 {
	w := sc.KeyRange * 40
	if w < 1<<16 {
		w = 1 << 16
	}
	return w
}

// containerHeapWords sizes a heap for a container prefilled with n items.
func containerHeapWords(n uint64) uint64 {
	w := n * 24
	if w < 1<<16 {
		w = 1 << 16
	}
	return w
}
