package harness

// serve.go drives the asynchronous service front-end (internal/svc) with an
// open-loop arrival schedule (internal/openloop): per-shard injector threads
// release operations at their pre-generated arrival instants into the
// submission rings, consumer threads drain them in batches, and every
// completion's latency (DoneNS − ArrivalNS) lands in a log-linear histogram —
// so a stalled server accumulates queueing delay against the percentiles
// instead of silently thinning the arrival stream (no coordinated omission).
//
// The crash scenario freezes the whole machine at a fixed virtual instant
// while the open-loop load is running, recovers the construction, rebuilds
// the (volatile) service rings, and resumes injection where the pre-crash
// completion prefix ended. How the in-flight window (submitted but not
// completed at the cut) resumes depends on the driver:
//
//   - detectable drivers (PREP with operation descriptors) query recovery's
//     resolved map: an operation resolved as committed has its recorded
//     result delivered at the resume instant and is never resubmitted —
//     exactly-once; one resolved as never-applied is resubmitted, which the
//     verdict proves cannot double-apply;
//   - non-detectable drivers blindly retry the whole window (at-least-once,
//     as a real client with a dead connection would).
//
// Arrivals that fell into the outage window are submitted immediately at
// resume with their original arrival stamps, so the outage is fully charged
// to their latencies. The report carries the recovery stall window, how
// long the accumulated backlog took to drain, and — for detectable drivers
// — the resolution tallies plus a measured duplicates_applied count.
//
// With ServeConfig.Check the run is additionally verified for (buffered)
// durable linearizability: one epoch per service generation, with the
// crash-cut epoch's in-flight operations classified by recovery's verdicts
// (InFlightCommitted / InFlightNever for detectable drivers, plain InFlight
// otherwise) and the recovered state probed between the epochs.

import (
	"fmt"

	"prepuc/internal/core"
	"prepuc/internal/cxpuc"
	"prepuc/internal/fault"
	"prepuc/internal/linearize"
	"prepuc/internal/numa"
	"prepuc/internal/nvm"
	"prepuc/internal/onll"
	"prepuc/internal/openloop"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/soft"
	"prepuc/internal/svc"
	"prepuc/internal/uc"
)

// ServeDriver adapts one construction to the service harness: boot on a
// fresh system, recover from a crashed one. Boot and Recover return the
// engine the service front-end should drive; constructors keep the current
// engine in a closure so SpawnAux/StopAux always address the live one.
type ServeDriver struct {
	Name string
	Boot func(t *sim.Thread, sys *nvm.System) (uc.UC, error)
	// SpawnAux spawns auxiliary threads (PREP's persistence thread) on the
	// system's current scheduler; StopAux is called by the last consumer to
	// retire them. Either may be nil.
	SpawnAux func()
	StopAux  func(t *sim.Thread)
	// Recover rebuilds the engine on a recovered system and reports what
	// recovery found.
	Recover func(t *sim.Thread, recSys *nvm.System) (uc.UC, RecoverInfo, error)
	// Detect marks a driver whose engine records operation descriptors: the
	// service stamps invocation ids and the crash resume deduplicates the
	// in-flight window against RecoverInfo.Resolved.
	Detect bool
	// Buffered marks a driver whose recovered state may lose a completed
	// suffix (PREP-Buffered); Epsilon is its checkpoint interval, from which
	// the linearize check's loss allowance is derived.
	Buffered bool
	Epsilon  uint64
}

// RecoverInfo is what ServeDriver.Recover reports back to the harness.
type RecoverInfo struct {
	// Replayed is the number of log entries recovery re-applied.
	Replayed uint64
	// Resolved maps invocation id → result for every in-flight operation
	// recovery proved committed (nil for non-detectable drivers). An id
	// absent from the map definitely never applied.
	Resolved map[uint64]uint64
}

// ServeConfig parameterizes one service run.
type ServeConfig struct {
	// Shards is the number of submission rings / consumer threads (also the
	// engine's worker count).
	Shards int
	// RingSize is the per-shard ring capacity (power of two).
	RingSize uint64
	// MaxBatch caps one drain's batch.
	MaxBatch int
	// Batched selects the batched submission path where the engine supports
	// it; false forces the per-op baseline.
	Batched bool
	// Open is the arrival schedule.
	Open openloop.Config
	// CrashAtNS, when nonzero, freezes the machine at that virtual instant
	// and runs the crash-and-recover-under-load scenario. It must lie inside
	// the load's lifetime (before the last completion drains).
	CrashAtNS uint64
	// Seed derives every scheduler seed of the run.
	Seed int64
	// Policy is the crash-time fault-adversary spec (internal/fault syntax:
	// "", "persistall", "dropall", "coinflip[=p]", "targeted[=n]"). It
	// decides the fate of flushed-but-unfenced lines at the crash cut.
	Policy string
	// Check verifies the run against the set's sequential specification
	// (the serve workload is always the hashmap): per-service-generation
	// linearize epochs with probed boundary states, in-flight operations
	// classified by the driver's recovery verdicts. The result lands in
	// ServeResult.Check; probing perturbs virtual timings, so checked and
	// unchecked runs are not figure-comparable.
	Check bool
}

// LatencyNS summarizes a latency histogram in virtual nanoseconds.
type LatencyNS struct {
	P50  uint64  `json:"p50"`
	P99  uint64  `json:"p99"`
	P999 uint64  `json:"p999"`
	Max  uint64  `json:"max"`
	Mean float64 `json:"mean"`
}

// RingStats reports the submission-ring counters of the run (both phases).
type RingStats struct {
	Submits    uint64  `json:"submits"`
	FullStalls uint64  `json:"full_stalls"`
	Batches    uint64  `json:"batches"`
	BatchedOps uint64  `json:"batched_ops"`
	MeanBatch  float64 `json:"mean_batch"`
}

// CrashStats reports the crash scenario's recovery economics.
type CrashStats struct {
	// CrashAtNS is the crash instant; RecoveryVirtualNS the construction's
	// recovery procedure time; Replayed its replayed log entries.
	CrashAtNS         uint64 `json:"crash_at_ns"`
	RecoveryVirtualNS uint64 `json:"recovery_virtual_ns"`
	Replayed          uint64 `json:"replayed"`
	// StallNS is the client-visible outage: first post-crash completion
	// minus the crash instant.
	StallNS uint64 `json:"stall_ns"`
	// LostInflight counts operations submitted but not completed at the cut.
	LostInflight uint64 `json:"lost_inflight"`
	// BacklogAtResume counts arrivals that piled up before service resumed;
	// BacklogDrainNS is how long past resume the last of them completed.
	BacklogAtResume uint64 `json:"backlog_at_resume"`
	BacklogDrainNS  uint64 `json:"backlog_drain_ns"`
	// Detectable reports whether the driver resolved its in-flight window
	// through operation descriptors. When true, InFlightResolved counts
	// in-flight operations recovery answered definitely — committed or
	// never-applied; for a detectable driver that is the whole window.
	// ResolvedCompleted counts the committed ones, whose recorded results
	// were delivered at resume without resubmission (each is a completion
	// and a dedup hit).
	Detectable        bool   `json:"detectable"`
	InFlightResolved  uint64 `json:"in_flight_resolved"`
	ResolvedCompleted uint64 `json:"resolved_completed"`
	// DuplicatesApplied measures, over the operations the resume actually
	// resubmitted, how many recovery had proved committed — each would be a
	// double apply. Exactly-once resume keeps this at zero; the field is
	// omitted (nil) for non-detectable drivers, whose blind retry has no
	// verdicts to count against.
	DuplicatesApplied *uint64 `json:"duplicates_applied,omitempty"`
}

// CheckStats is the linearize verdict of a checked run.
type CheckStats struct {
	Mode string `json:"mode"`
	OK   bool   `json:"ok"`
	// Epochs is the number of linearize epochs checked (one per service
	// generation); Ops the total recorded operations across them; Lost the
	// completed operations the buffered allowance had to absorb.
	Epochs int `json:"epochs"`
	Ops    int `json:"ops"`
	Lost   int `json:"lost"`
	// InFlightCommitted / InFlightNever count the crash-cut operations
	// checked under each resolved classification.
	InFlightCommitted uint64 `json:"in_flight_committed"`
	InFlightNever     uint64 `json:"in_flight_never"`
	FailedEpoch       int    `json:"failed_epoch"`
	FailedPartition   string `json:"failed_partition,omitempty"`
	Reason            string `json:"reason,omitempty"`
}

// ServeResult is one system's record in the prepuc-serve document. The
// sharded fields are set only on aggregate records produced by
// RunShardedServe; single-machine records (and each entry under Shards)
// leave them empty.
type ServeResult struct {
	System    string      `json:"system"`
	Submitted uint64      `json:"submitted"`
	Completed uint64      `json:"completed"`
	OpsPerSec float64     `json:"ops_per_sec"`
	Latency   LatencyNS   `json:"latency_ns"`
	Ring      RingStats   `json:"ring"`
	Crash     *CrashStats `json:"crash,omitempty"`
	Check     *CheckStats `json:"check,omitempty"`
	// Route is the key-partitioning policy of a sharded run. Imbalance is
	// the hottest machine's completed share relative to a perfectly even
	// split (1.0 = balanced; Zipf-skewed range partitions run hot).
	Route     string  `json:"route,omitempty"`
	Imbalance float64 `json:"imbalance,omitempty"`
	// Shards holds the per-machine breakdowns; Composition the cross-shard
	// composition verdict of a checked sharded run.
	Shards      []*ShardServeResult `json:"shards,omitempty"`
	Composition *CompositionStats   `json:"composition,omitempty"`
}

// serveTopo sizes the machine: consumers occupy worker slots, so the
// topology must cover Shards tids across two nodes (minimum 2 per node so
// auxiliary threads have somewhere to live).
func serveTopo(shards int) numa.Topology {
	per := (shards + 1) / 2
	if per < 2 {
		per = 2
	}
	return numa.Topology{Nodes: 2, ThreadsPerNode: per}
}

// tally accumulates completions host-side through the service's OnComplete
// hook. Everything here is measurement state: recording costs no virtual
// time.
type tally struct {
	hist  openloop.Histogram
	endNS uint64 // latest completion instant (run length for throughput)

	// Crash-scenario fields, active during phase B only.
	phaseB     bool
	resumeNS   uint64
	firstB     uint64 // first post-crash completion instant (0 = none yet)
	backlogMax uint64 // latest completion of a pre-resume arrival

	// Completion records per shard, kept only when the linearize check is
	// on (nil otherwise). Per-shard completion order equals submission
	// order equals arrival order, so index k zips with the k-th operation
	// of the shard's (phase-specific) arrival slice.
	recA, recB [][]compRec
}

// compRec is one completion's check-relevant fields. exec is the drain
// instant: the linearize check uses [exec, done] as the operation's window —
// sound (execution starts after the drain) and far tighter than the arrival
// window, which under backlog would make thousands of operations look
// mutually concurrent and blow up the search.
type compRec struct{ result, exec, done uint64 }

func (ta *tally) onComplete(shard int, f *svc.Future) {
	ta.hist.Record(f.DoneNS - f.ArrivalNS)
	if f.DoneNS > ta.endNS {
		ta.endNS = f.DoneNS
	}
	rec := ta.recA
	if ta.phaseB {
		if ta.firstB == 0 {
			ta.firstB = f.DoneNS
		}
		if f.ArrivalNS < ta.resumeNS && f.DoneNS > ta.backlogMax {
			ta.backlogMax = f.DoneNS
		}
		rec = ta.recB
	}
	if rec != nil {
		rec[shard] = append(rec[shard], compRec{f.Result, f.ExecNS, f.DoneNS})
	}
}

// resolvedDelivery accounts one descriptor-resolved in-flight operation
// whose pre-crash result is handed back at the resume instant: it completes
// (latency charged from arrival to resume) without ever being resubmitted.
func (ta *tally) resolvedDelivery(doneNS, arrivalNS uint64) {
	ta.hist.Record(doneNS - arrivalNS)
	if doneNS > ta.endNS {
		ta.endNS = doneNS
	}
	if ta.firstB == 0 {
		ta.firstB = doneNS
	}
	if arrivalNS < ta.resumeNS && doneNS > ta.backlogMax {
		ta.backlogMax = doneNS
	}
}

// inject releases arrivals[start:] into the client at their scheduled
// instants. A full ring never blocks the arrival timeline: rejected
// operations queue host-side in FIFO order (they already "arrived"; the
// injector keeps offering them ahead of newer arrivals) and their original
// stamps ride along, so ring backpressure shows up as latency.
func inject(t *sim.Thread, c *svc.Client, arrivals []openloop.Arrival, start int) {
	var overflow []openloop.Arrival
	offer := func() {
		for len(overflow) > 0 {
			if _, ok := c.TrySubmit(t, overflow[0].Op, overflow[0].At); !ok {
				return
			}
			overflow = overflow[1:]
		}
	}
	for _, a := range arrivals[start:] {
		if a.At > t.Clock() {
			t.Step(a.At - t.Clock())
		}
		offer()
		if len(overflow) > 0 {
			overflow = append(overflow, a)
			continue
		}
		if _, ok := c.TrySubmit(t, a.Op, a.At); !ok {
			overflow = append(overflow, a)
		}
	}
	for len(overflow) > 0 {
		offer()
		if len(overflow) > 0 {
			t.Step(serveRetryNS)
		}
	}
}

// serveRetryNS is the injector's poll interval while draining its overflow
// queue against a full ring.
const serveRetryNS = 512

// RunServe executes one open-loop service run — steady-state, or
// crash-and-recover-under-load when cfg.CrashAtNS is set — and returns the
// measured record.
func RunServe(d *ServeDriver, cfg ServeConfig) (*ServeResult, error) {
	arrivals, err := openloop.Generate(cfg.Open)
	if err != nil {
		return nil, err
	}
	res, _, err := runServeArrivals(d, cfg, arrivals)
	return res, err
}

// serveRun exposes one machine's post-run internals to the sharded harness:
// the final system and engine (post-recovery on crash runs) for state
// probing, the measurement tally for histogram/endpoint merging, and the
// ring-partitioned arrival schedule for zipping completion records back to
// operations.
type serveRun struct {
	sys      *nvm.System
	eng      uc.UC
	ta       *tally
	perShard [][]openloop.Arrival
}

// runServeArrivals is RunServe on a pre-generated arrival schedule: the
// sharded harness partitions one global schedule across machines and runs
// each machine through here.
func runServeArrivals(d *ServeDriver, cfg ServeConfig, arrivals []openloop.Arrival) (*ServeResult, *serveRun, error) {
	if len(arrivals) == 0 {
		return nil, nil, fmt.Errorf("serve: empty arrival schedule")
	}
	// Shard the schedule by client (order within a shard stays time-sorted).
	perShard := make([][]openloop.Arrival, cfg.Shards)
	for _, a := range arrivals {
		s := int(a.Client) % cfg.Shards
		perShard[s] = append(perShard[s], a)
	}
	tp := serveTopo(cfg.Shards)
	ta := &tally{}
	if cfg.Check {
		ta.recA = make([][]compRec, cfg.Shards)
		ta.recB = make([][]compRec, cfg.Shards)
	}
	pol, err := fault.Parse(cfg.Policy, uint64(cfg.Seed)+11)
	if err != nil {
		return nil, nil, err
	}

	// Boot: construction plus generation-0 service rings.
	bootSch := sim.New(cfg.Seed)
	sys := nvm.NewSystem(bootSch, nvm.Config{
		Costs: sim.UnitCosts(), BGFlushOneIn: 128, Seed: uint64(cfg.Seed) + 7,
	})
	if pol != nil {
		sys.SetFaultPolicy(pol)
	}
	var s *svc.Service
	var engA uc.UC
	bootSch.Spawn("boot", 0, 0, func(t *sim.Thread) {
		if engA, err = d.Boot(t, sys); err != nil {
			return
		}
		s, err = svc.New(t, sys, svc.Config{
			Engine: engA, Topology: tp, Shards: cfg.Shards,
			RingSize: cfg.RingSize, MaxBatch: cfg.MaxBatch,
			NamePrefix: "svc0", Batched: cfg.Batched,
			OnComplete: ta.onComplete,
			Detect:     d.Detect, InvidEpoch: 0,
		})
	})
	bootSch.Run()
	if err != nil {
		return nil, nil, fmt.Errorf("serve: boot %s: %w", d.Name, err)
	}

	// Phase A: open-loop load, optionally cut short by the crash.
	sch := sim.New(cfg.Seed + 1)
	sys.SetScheduler(sch)
	if d.SpawnAux != nil {
		d.SpawnAux()
	}
	spawnServicePhase(sch, tp, s, d, cfg, perShard, make([]int, cfg.Shards), 0)
	if cfg.CrashAtNS > 0 {
		sch.Spawn("crasher", 0, 0, func(t *sim.Thread) {
			t.Step(cfg.CrashAtNS)
			sch.CrashNow()
		})
	}
	sch.Run()

	res := &ServeResult{System: d.Name}
	if cfg.CrashAtNS == 0 || !sch.Frozen() {
		if cfg.CrashAtNS > 0 {
			return nil, nil, fmt.Errorf("serve: %s: crash at %d ns never fired (load drained first)", d.Name, cfg.CrashAtNS)
		}
		finish(res, cfg.Shards, s, nil, sys, ta, 0)
		if cfg.Check {
			res.Check = steadyCheck(d, cfg, sys, engA, perShard, ta)
		}
		return res, &serveRun{sys: sys, eng: engA, ta: ta, perShard: perShard}, nil
	}

	// Crash cut: read the generation-0 tallies. Completion order equals
	// submission order per shard, so each shard's completed count is the
	// resume index into its arrival list; everything submitted beyond it was
	// in flight at the cut.
	crash := &CrashStats{CrashAtNS: cfg.CrashAtNS, Detectable: d.Detect}
	resume := make([]int, cfg.Shards)
	submitted := make([]int, cfg.Shards)
	drained := make([]int, cfg.Shards)
	for shard := 0; shard < cfg.Shards; shard++ {
		c := s.Client(shard)
		crash.LostInflight += c.Submitted() - c.Completed()
		resume[shard] = int(c.Completed())
		submitted[shard] = int(c.Submitted())
		drained[shard] = int(c.Drained())
	}

	// Recover the construction and rebuild the service (the rings are
	// volatile; generation 1 needs fresh memory names). Recovery is retried
	// if it is itself cut down (none is armed here, but the loop keeps the
	// harness honest about re-entrancy).
	cur := sys
	var s2 *svc.Service
	var engB uc.UC
	var info RecoverInfo
	var resumeDelta uint64
	for attempt := 0; ; attempt++ {
		recSch := sim.New(cfg.Seed + 3 + int64(attempt)*17)
		cur = cur.Recover(recSch)
		recSch.Spawn("recover", 0, 0, func(t *sim.Thread) {
			start := t.Clock()
			engB, info, err = d.Recover(t, cur)
			crash.Replayed = info.Replayed
			crash.RecoveryVirtualNS = t.Clock() - start
			if err != nil {
				return
			}
			s2, err = svc.New(t, cur, svc.Config{
				Engine: engB, Topology: tp, Shards: cfg.Shards,
				RingSize: cfg.RingSize, MaxBatch: cfg.MaxBatch,
				NamePrefix: "svc1", Batched: cfg.Batched,
				OnComplete: ta.onComplete,
				Detect:     d.Detect, InvidEpoch: 1,
			})
			resumeDelta = t.Clock()
		})
		recSch.Run()
		if recSch.Frozen() {
			continue
		}
		if err != nil {
			return nil, nil, fmt.Errorf("serve: recover %s: %w", d.Name, err)
		}
		break
	}
	resumeNS := cfg.CrashAtNS + resumeDelta
	ta.phaseB, ta.resumeNS = true, resumeNS

	// Resume plan: for a detectable driver the in-flight window splits by
	// recovery's verdicts — resolved-committed operations complete right
	// here with their recorded results (exactly-once), everything else is
	// resubmitted; a non-detectable driver resubmits the whole window.
	// resubSeq keeps each resubmitted window operation's original submission
	// sequence number so the duplicate audit below can re-check the final
	// plan against the verdict map independently of how it was built.
	phaseB := make([][]openloop.Arrival, cfg.Shards)
	resubSeq := make([][]int, cfg.Shards)
	for shard := 0; shard < cfg.Shards; shard++ {
		all := perShard[shard]
		win := all[resume[shard]:submitted[shard]]
		if !d.Detect {
			phaseB[shard] = all[resume[shard]:]
			continue
		}
		crash.InFlightResolved += uint64(len(win))
		lst := make([]openloop.Arrival, 0, len(all)-resume[shard])
		for k, a := range win {
			seq := resume[shard] + k
			if _, committed := info.Resolved[svc.InvocationID(0, shard, uint64(seq))]; committed {
				crash.ResolvedCompleted++
				ta.resolvedDelivery(resumeNS, a.At)
				continue
			}
			lst = append(lst, a)
			resubSeq[shard] = append(resubSeq[shard], seq)
		}
		phaseB[shard] = append(lst, all[submitted[shard]:]...)
	}
	if d.Detect {
		// Audit the plan: a resubmission recovery proved committed would be
		// a double apply. This re-derives the verdict per planned entry, so
		// a dedup regression shows up here as a nonzero count.
		dup := uint64(0)
		for shard, seqs := range resubSeq {
			for _, seq := range seqs {
				if _, committed := info.Resolved[svc.InvocationID(0, shard, uint64(seq))]; committed {
					dup++
				}
			}
		}
		crash.DuplicatesApplied = &dup
		cur.Metrics().DedupHits += crash.ResolvedCompleted
	}
	for shard := 0; shard < cfg.Shards; shard++ {
		for _, a := range phaseB[shard] {
			if a.At < resumeNS {
				crash.BacklogAtResume++
			}
		}
	}

	// The linearize check needs the recovered state before phase B mutates
	// it: probe it key by key on a throwaway timeline.
	var recState map[uint64]uint64
	if cfg.Check {
		recState = probeServeState(cur, engB, cfg.Open.Keys, cfg.Seed+901)
	}

	// Phase B: resume the load on the recovered machine. Every thread starts
	// at the resume instant; backlog arrivals submit immediately with their
	// original stamps, so their latencies absorb the outage.
	schB := sim.New(cfg.Seed + 5)
	cur.SetScheduler(schB)
	if d.SpawnAux != nil {
		d.SpawnAux()
	}
	spawnServicePhase(schB, tp, s2, d, cfg, phaseB, make([]int, cfg.Shards), resumeNS)
	schB.Run()
	if schB.Frozen() {
		return nil, nil, fmt.Errorf("serve: %s: phase B froze unexpectedly", d.Name)
	}

	if ta.firstB > cfg.CrashAtNS {
		crash.StallNS = ta.firstB - cfg.CrashAtNS
	}
	if ta.backlogMax > resumeNS {
		crash.BacklogDrainNS = ta.backlogMax - resumeNS
	}
	finish(res, cfg.Shards, s, s2, cur, ta, crash.ResolvedCompleted)
	res.Crash = crash
	if cfg.Check {
		res.Check = crashCheck(d, cfg, cur, engB, perShard, phaseB, resume, submitted, drained, info, recState, ta)
	}
	return res, &serveRun{sys: cur, eng: engB, ta: ta, perShard: perShard}, nil
}

// spawnServicePhase spawns one phase's consumers and injectors: consumer
// shard runs as worker tid shard on its home node; the last finishing
// injector stops the service, the last finishing consumer retires the
// auxiliary threads.
func spawnServicePhase(sch *sim.Scheduler, tp numa.Topology, s *svc.Service,
	d *ServeDriver, cfg ServeConfig, perShard [][]openloop.Arrival,
	resume []int, startNS uint64) {
	consumersLive := cfg.Shards
	injectorsLive := cfg.Shards
	for shard := 0; shard < cfg.Shards; shard++ {
		shard := shard
		sch.Spawn("serve", tp.NodeOf(shard), startNS, func(t *sim.Thread) {
			s.Serve(t, shard)
			consumersLive--
			if consumersLive == 0 && d.StopAux != nil {
				d.StopAux(t)
			}
		})
		sch.Spawn("inject", tp.NodeOf(shard), startNS, func(t *sim.Thread) {
			inject(t, s.Client(shard), perShard[shard], resume[shard])
			injectorsLive--
			if injectorsLive == 0 {
				s.Stop()
			}
		})
	}
}

// finish fills the throughput, latency and ring blocks from the run's
// tallies. s2 is the post-crash service generation (nil on steady runs);
// resolved counts descriptor-resolved deliveries, completions that passed
// through neither generation's ring.
func finish(res *ServeResult, shards int, s, s2 *svc.Service, sys *nvm.System, ta *tally, resolved uint64) {
	for shard := 0; shard < shards; shard++ {
		c := s.Client(shard)
		res.Submitted += c.Submitted()
		res.Completed += c.Completed()
		if s2 != nil {
			c2 := s2.Client(shard)
			res.Submitted += c2.Submitted()
			res.Completed += c2.Completed()
		}
	}
	res.Completed += resolved
	if ta.endNS > 0 {
		res.OpsPerSec = float64(res.Completed) * 1e9 / float64(ta.endNS)
	}
	res.Latency = LatencyNS{
		P50:  ta.hist.Quantile(0.50),
		P99:  ta.hist.Quantile(0.99),
		P999: ta.hist.Quantile(0.999),
		Max:  ta.hist.Max(),
		Mean: ta.hist.Mean(),
	}
	ms := sys.Metrics().Snapshot()
	res.Ring = RingStats{
		Submits:    ms.RingSubmits,
		FullStalls: ms.RingFullStalls,
		Batches:    ms.RingBatches,
		BatchedOps: ms.RingBatchedOps,
	}
	if ms.RingBatches > 0 {
		res.Ring.MeanBatch = float64(ms.RingBatchedOps) / float64(ms.RingBatches)
	}
}

// probeServeState reads the hashmap's live state through one Get per key on
// a throwaway timeline — the serve harness's recovered/final state
// observation for the linearize check.
func probeServeState(sys *nvm.System, eng uc.UC, keys uint64, seed int64) map[uint64]uint64 {
	state := map[uint64]uint64{}
	sch := sim.New(seed)
	sys.SetScheduler(sch)
	sch.Spawn("probe", 0, 0, func(t *sim.Thread) {
		for k := uint64(0); k < keys; k++ {
			if v := eng.Execute(t, 0, uc.Get(k)); v != uc.NotFound {
				state[k] = v
			}
		}
	})
	sch.Run()
	return state
}

// serveOptions is the crash-cut epoch's correctness condition: buffered
// durable with the driver's loss allowance, or strict durable. The bound is
// ε plus one full batch per consumer minus one — each of the Shards
// consumers can hold one combiner session of up to MaxBatch completed
// operations past the last checkpoint.
func serveOptions(d *ServeDriver, cfg ServeConfig) linearize.Options {
	if !d.Buffered {
		return linearize.Options{}
	}
	return linearize.Options{
		Buffered:  true,
		Allowance: int(d.Epsilon) + cfg.Shards*cfg.MaxBatch - 1,
	}
}

// completedOps zips one shard's completion records with its arrival slice:
// per-shard completion order equals arrival order, so record k's operation
// is arr[k]. The window is [drain, done], not [arrival, done]: execution
// cannot start before the consumer drains the batch, so the tighter stamp is
// sound, and it keeps the check's concurrency at the real consumer count
// instead of the queue depth.
func completedOps(shard int, arr []openloop.Arrival, recs []compRec) []linearize.Op {
	ops := make([]linearize.Op, 0, len(recs))
	for k, r := range recs {
		a := arr[k]
		ops = append(ops, linearize.Op{
			Client: shard, Code: a.Op.Code, A0: a.Op.A0, A1: a.Op.A1,
			Result: r.result, Invoke: r.exec, Return: r.done,
			Class: linearize.Completed,
		})
	}
	return ops
}

// applyCheck folds one epoch's linearize result into the run's verdict.
func applyCheck(cb *CheckStats, epoch int, r linearize.Result) {
	cb.Ops += r.Ops
	cb.Lost += r.Lost
	if cb.OK && !r.OK {
		cb.OK = false
		cb.FailedEpoch = epoch
		cb.FailedPartition = r.FailedPartition
		cb.Reason = r.Reason
	}
}

// steadyCheck verifies a crash-free run: one epoch of completed operations
// against the engine's final probed state. The live probe sees every
// completed effect, so the condition is strict even for buffered drivers.
func steadyCheck(d *ServeDriver, cfg ServeConfig, sys *nvm.System, eng uc.UC,
	perShard [][]openloop.Arrival, ta *tally) *CheckStats {
	cb := &CheckStats{Mode: "linearize", OK: true, Epochs: 1, FailedEpoch: -1}
	var ops []linearize.Op
	for shard := range perShard {
		ops = append(ops, completedOps(shard, perShard[shard], ta.recA[shard])...)
	}
	final := probeServeState(sys, eng, cfg.Open.Keys, cfg.Seed+903)
	applyCheck(cb, 0, linearize.CheckEpoch(linearize.SetModel(), nil, ops, final, linearize.Options{}))
	return cb
}

// crashCheck verifies a crash run as two epochs. Epoch 0 is the pre-crash
// generation: its completed prefix plus the in-flight window, the latter
// classified by the driver's recovery verdicts — resolved-committed
// operations must linearize with the resolved result and cannot be lost,
// resolved-never-applied ones must not take effect — against the probed
// recovered state. A non-detectable driver's window splits on the drained
// cursor instead: operations the consumer never drained provably never
// reached the engine (InFlightNever for any driver), only the drained tail
// stays genuinely unknown (at-most-once InFlight). Epoch 1 is the resumed
// generation from that state to the final probe; a duplicate apply slipping
// through the resume plan shows up there as an inexplicable response or
// state.
func crashCheck(d *ServeDriver, cfg ServeConfig, cur *nvm.System, eng uc.UC,
	perShard, phaseB [][]openloop.Arrival, resume, submitted, drained []int,
	info RecoverInfo, recState map[uint64]uint64, ta *tally) *CheckStats {
	cb := &CheckStats{Mode: "linearize", OK: true, Epochs: 2, FailedEpoch: -1}
	var epoch1 []linearize.Op
	for shard := range perShard {
		epoch1 = append(epoch1, completedOps(shard, perShard[shard], ta.recA[shard])...)
		for k, a := range perShard[shard][resume[shard]:submitted[shard]] {
			seq := resume[shard] + k
			op := linearize.Op{
				Client: shard, Code: a.Op.Code, A0: a.Op.A0, A1: a.Op.A1,
				Invoke: a.At, Return: ^uint64(0), Class: linearize.InFlight,
			}
			switch {
			case d.Detect:
				if r, ok := info.Resolved[svc.InvocationID(0, shard, uint64(seq))]; ok {
					op.Class, op.Result = linearize.InFlightCommitted, r
					cb.InFlightCommitted++
				} else {
					op.Class = linearize.InFlightNever
					cb.InFlightNever++
				}
			case seq >= drained[shard]:
				// Still queued in the (volatile) ring at the cut: the engine
				// never saw it, so its effect cannot be in the recovered state.
				op.Class = linearize.InFlightNever
			}
			epoch1 = append(epoch1, op)
		}
	}
	applyCheck(cb, 0, linearize.CheckEpoch(linearize.SetModel(), nil, epoch1, recState, serveOptions(d, cfg)))

	var epoch2 []linearize.Op
	for shard := range phaseB {
		epoch2 = append(epoch2, completedOps(shard, phaseB[shard], ta.recB[shard])...)
	}
	final := probeServeState(cur, eng, cfg.Open.Keys, cfg.Seed+903)
	init2 := make(map[uint64]uint64, len(recState))
	for k, v := range recState {
		init2[k] = v
	}
	applyCheck(cb, 1, linearize.CheckEpoch(linearize.SetModel(), init2, epoch2, final, linearize.Options{}))
	return cb
}

// ServeDrivers builds the five recoverable-construction drivers at the
// given shard count (= engine worker count). Configurations mirror
// cmd/crashtest's so the serve and crash harnesses measure the same
// machines.
func ServeDrivers(shards int, epsilon uint64) []*ServeDriver {
	hashmap := seq.HashMapType(256)
	return []*ServeDriver{
		prepServeDriver("PREP-Durable", core.Durable, shards, epsilon, hashmap),
		prepServeDriver("PREP-Buffered", core.Buffered, shards, epsilon, hashmap),
		cxServeDriver(shards, hashmap),
		softServeDriver(),
		onllServeDriver(shards, hashmap),
	}
}

// ServeSystem names one construction the sharded harness can deploy. New
// builds a fresh driver per machine: driver closures hold per-machine engine
// state (SpawnAux/StopAux address the live engine), so independent machines
// can never share a driver instance.
type ServeSystem struct {
	Name string
	// SteadyOnly marks a construction without a recovery path (PREP-Volatile,
	// the scaling headline's engine): it cannot be placed in a crash set.
	SteadyOnly bool
	New        func(shards int, epsilon uint64) *ServeDriver
}

// ServeSystems lists every construction the sharded serve harness can run:
// the five recoverable ServeDrivers plus PREP-Volatile. (ServeDrivers keeps
// returning exactly the five recoverable ones — the single-machine crash
// matrix is unchanged.)
func ServeSystems() []ServeSystem {
	hashmap := seq.HashMapType(256)
	return []ServeSystem{
		{Name: "PREP-Volatile", SteadyOnly: true, New: func(shards int, _ uint64) *ServeDriver {
			return prepVolatileServeDriver(shards, hashmap)
		}},
		{Name: "PREP-Durable", New: func(shards int, epsilon uint64) *ServeDriver {
			return prepServeDriver("PREP-Durable", core.Durable, shards, epsilon, hashmap)
		}},
		{Name: "PREP-Buffered", New: func(shards int, epsilon uint64) *ServeDriver {
			return prepServeDriver("PREP-Buffered", core.Buffered, shards, epsilon, hashmap)
		}},
		{Name: "CX-PUC", New: func(shards int, _ uint64) *ServeDriver {
			return cxServeDriver(shards, hashmap)
		}},
		{Name: "SOFT", New: func(_ int, _ uint64) *ServeDriver {
			return softServeDriver()
		}},
		{Name: "ONLL", New: func(shards int, _ uint64) *ServeDriver {
			return onllServeDriver(shards, hashmap)
		}},
	}
}

// prepVolatileServeDriver wires volatile-mode PREP-UC: no persistence
// thread, no descriptors, no recovery — the pure combiner pipeline whose
// aggregate throughput the sharded scaling figure measures.
func prepVolatileServeDriver(shards int, obj uc.ObjectType) *ServeDriver {
	cfg := core.Config{
		Mode: core.Volatile, Topology: serveTopo(shards), Workers: shards,
		LogSize: 4096,
		Factory: obj.New, Attacher: obj.Attach, HeapWords: 1 << 21,
	}
	d := &ServeDriver{Name: "PREP-Volatile"}
	d.Boot = func(t *sim.Thread, sys *nvm.System) (uc.UC, error) {
		return core.New(t, sys, cfg)
	}
	d.Recover = func(t *sim.Thread, recSys *nvm.System) (uc.UC, RecoverInfo, error) {
		return nil, RecoverInfo{}, fmt.Errorf("serve: PREP-Volatile cannot recover")
	}
	return d
}

// prepServeDriver wires PREP-UC: the only driver with auxiliary threads
// (the persistence loop), the only engine implementing svc.Batcher — so it
// is where the batched submission path engages — and the only detectable
// one: operation descriptors are on, so the crash resume gets exactly-once
// semantics from recovery's resolved map.
func prepServeDriver(name string, mode core.Mode, shards int, epsilon uint64, obj uc.ObjectType) *ServeDriver {
	cfg := core.Config{
		Mode: mode, Topology: serveTopo(shards), Workers: shards,
		LogSize: 4096, Epsilon: epsilon,
		Factory: obj.New, Attacher: obj.Attach, HeapWords: 1 << 21,
		Detect: true,
	}
	d := &ServeDriver{
		Name: name, Detect: true,
		Buffered: mode == core.Buffered, Epsilon: epsilon,
	}
	var cur *core.PREP
	d.SpawnAux = func() { cur.SpawnPersistence(0) }
	d.StopAux = func(t *sim.Thread) { cur.StopPersistence(t) }
	d.Boot = func(t *sim.Thread, sys *nvm.System) (uc.UC, error) {
		p, err := core.New(t, sys, cfg)
		if err != nil {
			return nil, err
		}
		cur = p
		return p, nil
	}
	d.Recover = func(t *sim.Thread, recSys *nvm.System) (uc.UC, RecoverInfo, error) {
		rec, report, err := core.Recover(t, recSys, cfg)
		if err != nil {
			return nil, RecoverInfo{}, err
		}
		cur = rec
		return rec, RecoverInfo{Replayed: report.Replayed, Resolved: report.Resolved}, nil
	}
	return d
}

func cxServeDriver(shards int, obj uc.ObjectType) *ServeDriver {
	cfg := cxpuc.Config{
		Workers: shards, Factory: obj.New, Attacher: obj.Attach,
		HeapWords: 1 << 20, QueueCapacity: 1 << 18, CapReplicas: 8,
	}
	d := &ServeDriver{Name: "CX-PUC"}
	d.Boot = func(t *sim.Thread, sys *nvm.System) (uc.UC, error) {
		return cxpuc.New(t, sys, cfg)
	}
	d.Recover = func(t *sim.Thread, recSys *nvm.System) (uc.UC, RecoverInfo, error) {
		rec, err := cxpuc.Recover(t, recSys, cfg)
		return rec, RecoverInfo{}, err
	}
	return d
}

func softServeDriver() *ServeDriver {
	cfg := soft.Config{Buckets: 512, VolatileWords: 1 << 20, PersistentWords: 1 << 20}
	d := &ServeDriver{Name: "SOFT"}
	d.Boot = func(t *sim.Thread, sys *nvm.System) (uc.UC, error) {
		return soft.New(t, sys, cfg), nil
	}
	d.Recover = func(t *sim.Thread, recSys *nvm.System) (uc.UC, RecoverInfo, error) {
		rec, replayed, err := soft.Recover(t, recSys, cfg)
		return rec, RecoverInfo{Replayed: replayed}, err
	}
	return d
}

func onllServeDriver(shards int, obj uc.ObjectType) *ServeDriver {
	cfg := onll.Config{
		Workers: shards, Factory: obj.New,
		HeapWords: 1 << 21, LogEntries: 1 << 13,
	}
	d := &ServeDriver{Name: "ONLL"}
	d.Boot = func(t *sim.Thread, sys *nvm.System) (uc.UC, error) {
		return onll.New(t, sys, cfg)
	}
	d.Recover = func(t *sim.Thread, recSys *nvm.System) (uc.UC, RecoverInfo, error) {
		rec, replayed, err := onll.Recover(t, recSys, cfg)
		return rec, RecoverInfo{Replayed: replayed}, err
	}
	return d
}
