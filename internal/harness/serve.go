package harness

// serve.go drives the asynchronous service front-end (internal/svc) with an
// open-loop arrival schedule (internal/openloop): per-shard injector threads
// release operations at their pre-generated arrival instants into the
// submission rings, consumer threads drain them in batches, and every
// completion's latency (DoneNS − ArrivalNS) lands in a log-linear histogram —
// so a stalled server accumulates queueing delay against the percentiles
// instead of silently thinning the arrival stream (no coordinated omission).
//
// The crash scenario freezes the whole machine at a fixed virtual instant
// while the open-loop load is running, recovers the construction, rebuilds
// the (volatile) service rings, and resumes injection where the pre-crash
// completion prefix ended: operations that were in flight at the cut are
// retried (at-least-once, as a real client with a dead connection would),
// and arrivals that fell into the outage window are submitted immediately at
// resume with their original arrival stamps, so the outage is fully charged
// to their latencies. The report carries the recovery stall window and how
// long the accumulated backlog took to drain.

import (
	"fmt"

	"prepuc/internal/core"
	"prepuc/internal/cxpuc"
	"prepuc/internal/numa"
	"prepuc/internal/nvm"
	"prepuc/internal/onll"
	"prepuc/internal/openloop"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/soft"
	"prepuc/internal/svc"
	"prepuc/internal/uc"
)

// ServeDriver adapts one construction to the service harness: boot on a
// fresh system, recover from a crashed one. Boot and Recover return the
// engine the service front-end should drive; constructors keep the current
// engine in a closure so SpawnAux/StopAux always address the live one.
type ServeDriver struct {
	Name string
	Boot func(t *sim.Thread, sys *nvm.System) (uc.UC, error)
	// SpawnAux spawns auxiliary threads (PREP's persistence thread) on the
	// system's current scheduler; StopAux is called by the last consumer to
	// retire them. Either may be nil.
	SpawnAux func()
	StopAux  func(t *sim.Thread)
	// Recover rebuilds the engine on a recovered system and reports how many
	// log entries it replayed.
	Recover func(t *sim.Thread, recSys *nvm.System) (uc.UC, uint64, error)
}

// ServeConfig parameterizes one service run.
type ServeConfig struct {
	// Shards is the number of submission rings / consumer threads (also the
	// engine's worker count).
	Shards int
	// RingSize is the per-shard ring capacity (power of two).
	RingSize uint64
	// MaxBatch caps one drain's batch.
	MaxBatch int
	// Batched selects the batched submission path where the engine supports
	// it; false forces the per-op baseline.
	Batched bool
	// Open is the arrival schedule.
	Open openloop.Config
	// CrashAtNS, when nonzero, freezes the machine at that virtual instant
	// and runs the crash-and-recover-under-load scenario. It must lie inside
	// the load's lifetime (before the last completion drains).
	CrashAtNS uint64
	// Seed derives every scheduler seed of the run.
	Seed int64
}

// LatencyNS summarizes a latency histogram in virtual nanoseconds.
type LatencyNS struct {
	P50  uint64  `json:"p50"`
	P99  uint64  `json:"p99"`
	P999 uint64  `json:"p999"`
	Max  uint64  `json:"max"`
	Mean float64 `json:"mean"`
}

// RingStats reports the submission-ring counters of the run (both phases).
type RingStats struct {
	Submits    uint64  `json:"submits"`
	FullStalls uint64  `json:"full_stalls"`
	Batches    uint64  `json:"batches"`
	BatchedOps uint64  `json:"batched_ops"`
	MeanBatch  float64 `json:"mean_batch"`
}

// CrashStats reports the crash scenario's recovery economics.
type CrashStats struct {
	// CrashAtNS is the crash instant; RecoveryVirtualNS the construction's
	// recovery procedure time; Replayed its replayed log entries.
	CrashAtNS         uint64 `json:"crash_at_ns"`
	RecoveryVirtualNS uint64 `json:"recovery_virtual_ns"`
	Replayed          uint64 `json:"replayed"`
	// StallNS is the client-visible outage: first post-crash completion
	// minus the crash instant.
	StallNS uint64 `json:"stall_ns"`
	// LostInflight counts operations submitted but not completed at the cut
	// (retried after recovery).
	LostInflight uint64 `json:"lost_inflight"`
	// BacklogAtResume counts arrivals that piled up before service resumed;
	// BacklogDrainNS is how long past resume the last of them completed.
	BacklogAtResume uint64 `json:"backlog_at_resume"`
	BacklogDrainNS  uint64 `json:"backlog_drain_ns"`
}

// ServeResult is one system's record in the prepuc-serve document.
type ServeResult struct {
	System    string      `json:"system"`
	Submitted uint64      `json:"submitted"`
	Completed uint64      `json:"completed"`
	OpsPerSec float64     `json:"ops_per_sec"`
	Latency   LatencyNS   `json:"latency_ns"`
	Ring      RingStats   `json:"ring"`
	Crash     *CrashStats `json:"crash,omitempty"`
}

// serveTopo sizes the machine: consumers occupy worker slots, so the
// topology must cover Shards tids across two nodes (minimum 2 per node so
// auxiliary threads have somewhere to live).
func serveTopo(shards int) numa.Topology {
	per := (shards + 1) / 2
	if per < 2 {
		per = 2
	}
	return numa.Topology{Nodes: 2, ThreadsPerNode: per}
}

// tally accumulates completions host-side through the service's OnComplete
// hook. Everything here is measurement state: recording costs no virtual
// time.
type tally struct {
	hist  openloop.Histogram
	endNS uint64 // latest completion instant (run length for throughput)

	// Crash-scenario fields, active during phase B only.
	phaseB     bool
	resumeNS   uint64
	firstB     uint64 // first post-crash completion instant (0 = none yet)
	backlogMax uint64 // latest completion of a pre-resume arrival
}

func (ta *tally) onComplete(shard int, f *svc.Future) {
	ta.hist.Record(f.DoneNS - f.ArrivalNS)
	if f.DoneNS > ta.endNS {
		ta.endNS = f.DoneNS
	}
	if ta.phaseB {
		if ta.firstB == 0 {
			ta.firstB = f.DoneNS
		}
		if f.ArrivalNS < ta.resumeNS && f.DoneNS > ta.backlogMax {
			ta.backlogMax = f.DoneNS
		}
	}
}

// inject releases arrivals[start:] into the client at their scheduled
// instants. A full ring never blocks the arrival timeline: rejected
// operations queue host-side in FIFO order (they already "arrived"; the
// injector keeps offering them ahead of newer arrivals) and their original
// stamps ride along, so ring backpressure shows up as latency.
func inject(t *sim.Thread, c *svc.Client, arrivals []openloop.Arrival, start int) {
	var overflow []openloop.Arrival
	offer := func() {
		for len(overflow) > 0 {
			if _, ok := c.TrySubmit(t, overflow[0].Op, overflow[0].At); !ok {
				return
			}
			overflow = overflow[1:]
		}
	}
	for _, a := range arrivals[start:] {
		if a.At > t.Clock() {
			t.Step(a.At - t.Clock())
		}
		offer()
		if len(overflow) > 0 {
			overflow = append(overflow, a)
			continue
		}
		if _, ok := c.TrySubmit(t, a.Op, a.At); !ok {
			overflow = append(overflow, a)
		}
	}
	for len(overflow) > 0 {
		offer()
		if len(overflow) > 0 {
			t.Step(serveRetryNS)
		}
	}
}

// serveRetryNS is the injector's poll interval while draining its overflow
// queue against a full ring.
const serveRetryNS = 512

// RunServe executes one open-loop service run — steady-state, or
// crash-and-recover-under-load when cfg.CrashAtNS is set — and returns the
// measured record.
func RunServe(d *ServeDriver, cfg ServeConfig) (*ServeResult, error) {
	arrivals, err := openloop.Generate(cfg.Open)
	if err != nil {
		return nil, err
	}
	if len(arrivals) == 0 {
		return nil, fmt.Errorf("serve: empty arrival schedule")
	}
	// Shard the schedule by client (order within a shard stays time-sorted).
	perShard := make([][]openloop.Arrival, cfg.Shards)
	for _, a := range arrivals {
		s := int(a.Client) % cfg.Shards
		perShard[s] = append(perShard[s], a)
	}
	tp := serveTopo(cfg.Shards)
	ta := &tally{}

	// Boot: construction plus generation-0 service rings.
	bootSch := sim.New(cfg.Seed)
	sys := nvm.NewSystem(bootSch, nvm.Config{
		Costs: sim.UnitCosts(), BGFlushOneIn: 128, Seed: uint64(cfg.Seed) + 7,
	})
	var s *svc.Service
	bootSch.Spawn("boot", 0, 0, func(t *sim.Thread) {
		var engine uc.UC
		if engine, err = d.Boot(t, sys); err != nil {
			return
		}
		s, err = svc.New(t, sys, svc.Config{
			Engine: engine, Topology: tp, Shards: cfg.Shards,
			RingSize: cfg.RingSize, MaxBatch: cfg.MaxBatch,
			NamePrefix: "svc0", Batched: cfg.Batched,
			OnComplete: ta.onComplete,
		})
	})
	bootSch.Run()
	if err != nil {
		return nil, fmt.Errorf("serve: boot %s: %w", d.Name, err)
	}

	// Phase A: open-loop load, optionally cut short by the crash.
	sch := sim.New(cfg.Seed + 1)
	sys.SetScheduler(sch)
	if d.SpawnAux != nil {
		d.SpawnAux()
	}
	spawnServicePhase(sch, tp, s, d, cfg, perShard, make([]int, cfg.Shards), 0)
	if cfg.CrashAtNS > 0 {
		sch.Spawn("crasher", 0, 0, func(t *sim.Thread) {
			t.Step(cfg.CrashAtNS)
			sch.CrashNow()
		})
	}
	sch.Run()

	res := &ServeResult{System: d.Name}
	if cfg.CrashAtNS == 0 || !sch.Frozen() {
		if cfg.CrashAtNS > 0 {
			return nil, fmt.Errorf("serve: %s: crash at %d ns never fired (load drained first)", d.Name, cfg.CrashAtNS)
		}
		finish(res, cfg.Shards, s, nil, sys, ta)
		return res, nil
	}

	// Crash cut: read the generation-0 tallies. Completion order equals
	// submission order per shard, so each shard's completed count is the
	// resume index into its arrival list; everything submitted beyond it was
	// in flight and is retried.
	crash := &CrashStats{CrashAtNS: cfg.CrashAtNS}
	resume := make([]int, cfg.Shards)
	for shard := 0; shard < cfg.Shards; shard++ {
		c := s.Client(shard)
		crash.LostInflight += c.Submitted() - c.Completed()
		resume[shard] = int(c.Completed())
	}

	// Recover the construction and rebuild the service (the rings are
	// volatile; generation 1 needs fresh memory names). Recovery is retried
	// if it is itself cut down (none is armed here, but the loop keeps the
	// harness honest about re-entrancy).
	cur := sys
	var s2 *svc.Service
	var resumeDelta uint64
	for attempt := 0; ; attempt++ {
		recSch := sim.New(cfg.Seed + 3 + int64(attempt)*17)
		cur = cur.Recover(recSch)
		recSch.Spawn("recover", 0, 0, func(t *sim.Thread) {
			start := t.Clock()
			var engine uc.UC
			engine, crash.Replayed, err = d.Recover(t, cur)
			crash.RecoveryVirtualNS = t.Clock() - start
			if err != nil {
				return
			}
			s2, err = svc.New(t, cur, svc.Config{
				Engine: engine, Topology: tp, Shards: cfg.Shards,
				RingSize: cfg.RingSize, MaxBatch: cfg.MaxBatch,
				NamePrefix: "svc1", Batched: cfg.Batched,
				OnComplete: ta.onComplete,
			})
			resumeDelta = t.Clock()
		})
		recSch.Run()
		if recSch.Frozen() {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("serve: recover %s: %w", d.Name, err)
		}
		break
	}
	resumeNS := cfg.CrashAtNS + resumeDelta
	ta.phaseB, ta.resumeNS = true, resumeNS
	for shard := 0; shard < cfg.Shards; shard++ {
		for _, a := range perShard[shard][resume[shard]:] {
			if a.At < resumeNS {
				crash.BacklogAtResume++
			}
		}
	}

	// Phase B: resume the load on the recovered machine. Every thread starts
	// at the resume instant; backlog arrivals submit immediately with their
	// original stamps, so their latencies absorb the outage.
	schB := sim.New(cfg.Seed + 5)
	cur.SetScheduler(schB)
	if d.SpawnAux != nil {
		d.SpawnAux()
	}
	spawnServicePhase(schB, tp, s2, d, cfg, perShard, resume, resumeNS)
	schB.Run()
	if schB.Frozen() {
		return nil, fmt.Errorf("serve: %s: phase B froze unexpectedly", d.Name)
	}

	if ta.firstB > cfg.CrashAtNS {
		crash.StallNS = ta.firstB - cfg.CrashAtNS
	}
	if ta.backlogMax > resumeNS {
		crash.BacklogDrainNS = ta.backlogMax - resumeNS
	}
	finish(res, cfg.Shards, s, s2, cur, ta)
	res.Crash = crash
	return res, nil
}

// spawnServicePhase spawns one phase's consumers and injectors: consumer
// shard runs as worker tid shard on its home node; the last finishing
// injector stops the service, the last finishing consumer retires the
// auxiliary threads.
func spawnServicePhase(sch *sim.Scheduler, tp numa.Topology, s *svc.Service,
	d *ServeDriver, cfg ServeConfig, perShard [][]openloop.Arrival,
	resume []int, startNS uint64) {
	consumersLive := cfg.Shards
	injectorsLive := cfg.Shards
	for shard := 0; shard < cfg.Shards; shard++ {
		shard := shard
		sch.Spawn("serve", tp.NodeOf(shard), startNS, func(t *sim.Thread) {
			s.Serve(t, shard)
			consumersLive--
			if consumersLive == 0 && d.StopAux != nil {
				d.StopAux(t)
			}
		})
		sch.Spawn("inject", tp.NodeOf(shard), startNS, func(t *sim.Thread) {
			inject(t, s.Client(shard), perShard[shard], resume[shard])
			injectorsLive--
			if injectorsLive == 0 {
				s.Stop()
			}
		})
	}
}

// finish fills the throughput, latency and ring blocks from the run's
// tallies. s2 is the post-crash service generation (nil on steady runs).
func finish(res *ServeResult, shards int, s, s2 *svc.Service, sys *nvm.System, ta *tally) {
	for shard := 0; shard < shards; shard++ {
		c := s.Client(shard)
		res.Submitted += c.Submitted()
		res.Completed += c.Completed()
		if s2 != nil {
			c2 := s2.Client(shard)
			res.Submitted += c2.Submitted()
			res.Completed += c2.Completed()
		}
	}
	if ta.endNS > 0 {
		res.OpsPerSec = float64(res.Completed) * 1e9 / float64(ta.endNS)
	}
	res.Latency = LatencyNS{
		P50:  ta.hist.Quantile(0.50),
		P99:  ta.hist.Quantile(0.99),
		P999: ta.hist.Quantile(0.999),
		Max:  ta.hist.Max(),
		Mean: ta.hist.Mean(),
	}
	ms := sys.Metrics().Snapshot()
	res.Ring = RingStats{
		Submits:    ms.RingSubmits,
		FullStalls: ms.RingFullStalls,
		Batches:    ms.RingBatches,
		BatchedOps: ms.RingBatchedOps,
	}
	if ms.RingBatches > 0 {
		res.Ring.MeanBatch = float64(ms.RingBatchedOps) / float64(ms.RingBatches)
	}
}

// ServeDrivers builds the five recoverable-construction drivers at the
// given shard count (= engine worker count). Configurations mirror
// cmd/crashtest's so the serve and crash harnesses measure the same
// machines.
func ServeDrivers(shards int, epsilon uint64) []*ServeDriver {
	hashmap := seq.HashMapType(256)
	return []*ServeDriver{
		prepServeDriver("PREP-Durable", core.Durable, shards, epsilon, hashmap),
		prepServeDriver("PREP-Buffered", core.Buffered, shards, epsilon, hashmap),
		cxServeDriver(shards, hashmap),
		softServeDriver(),
		onllServeDriver(shards, hashmap),
	}
}

// prepServeDriver wires PREP-UC: the only driver with auxiliary threads
// (the persistence loop) and the only engine implementing svc.Batcher, so
// it is where the batched submission path engages.
func prepServeDriver(name string, mode core.Mode, shards int, epsilon uint64, obj uc.ObjectType) *ServeDriver {
	cfg := core.Config{
		Mode: mode, Topology: serveTopo(shards), Workers: shards,
		LogSize: 4096, Epsilon: epsilon,
		Factory: obj.New, Attacher: obj.Attach, HeapWords: 1 << 21,
	}
	d := &ServeDriver{Name: name}
	var cur *core.PREP
	d.SpawnAux = func() { cur.SpawnPersistence(0) }
	d.StopAux = func(t *sim.Thread) { cur.StopPersistence(t) }
	d.Boot = func(t *sim.Thread, sys *nvm.System) (uc.UC, error) {
		p, err := core.New(t, sys, cfg)
		if err != nil {
			return nil, err
		}
		cur = p
		return p, nil
	}
	d.Recover = func(t *sim.Thread, recSys *nvm.System) (uc.UC, uint64, error) {
		rec, report, err := core.Recover(t, recSys, cfg)
		if err != nil {
			return nil, 0, err
		}
		cur = rec
		return rec, report.Replayed, nil
	}
	return d
}

func cxServeDriver(shards int, obj uc.ObjectType) *ServeDriver {
	cfg := cxpuc.Config{
		Workers: shards, Factory: obj.New, Attacher: obj.Attach,
		HeapWords: 1 << 20, QueueCapacity: 1 << 18, CapReplicas: 8,
	}
	d := &ServeDriver{Name: "CX-PUC"}
	d.Boot = func(t *sim.Thread, sys *nvm.System) (uc.UC, error) {
		return cxpuc.New(t, sys, cfg)
	}
	d.Recover = func(t *sim.Thread, recSys *nvm.System) (uc.UC, uint64, error) {
		rec, err := cxpuc.Recover(t, recSys, cfg)
		return rec, 0, err
	}
	return d
}

func softServeDriver() *ServeDriver {
	cfg := soft.Config{Buckets: 512, VolatileWords: 1 << 20, PersistentWords: 1 << 20}
	d := &ServeDriver{Name: "SOFT"}
	d.Boot = func(t *sim.Thread, sys *nvm.System) (uc.UC, error) {
		return soft.New(t, sys, cfg), nil
	}
	d.Recover = func(t *sim.Thread, recSys *nvm.System) (uc.UC, uint64, error) {
		rec, replayed, err := soft.Recover(t, recSys, cfg)
		return rec, replayed, err
	}
	return d
}

func onllServeDriver(shards int, obj uc.ObjectType) *ServeDriver {
	cfg := onll.Config{
		Workers: shards, Factory: obj.New,
		HeapWords: 1 << 21, LogEntries: 1 << 13,
	}
	d := &ServeDriver{Name: "ONLL"}
	d.Boot = func(t *sim.Thread, sys *nvm.System) (uc.UC, error) {
		return onll.New(t, sys, cfg)
	}
	d.Recover = func(t *sim.Thread, recSys *nvm.System) (uc.UC, uint64, error) {
		rec, replayed, err := onll.Recover(t, recSys, cfg)
		return rec, replayed, err
	}
	return d
}
