package harness

// Tests for the detectable crash resume: the PREP drivers run with
// operation descriptors, so RunServe's recovery must resolve the whole
// in-flight window, deliver committed results without resubmitting, and
// never double-apply — across fault adversaries, and verified end to end by
// the strengthened linearize check.

import (
	"encoding/json"
	"testing"

	"prepuc/internal/openloop"
)

// detectConfig is serveTestConfig with a higher-pressure crash instant so
// the in-flight window is routinely nonempty.
func detectConfig(crashAt uint64, policy string, check bool) ServeConfig {
	cfg := serveTestConfig(crashAt)
	cfg.Policy = policy
	cfg.Check = check
	return cfg
}

// TestRunServeDetectableExactlyOnce: with descriptors on, every arrival
// completes exactly once — the schedule total — and the resume plan
// resubmits nothing recovery proved committed.
func TestRunServeDetectableExactlyOnce(t *testing.T) {
	drivers := ServeDrivers(2, 64)
	for _, d := range drivers[:2] { // PREP-Durable, PREP-Buffered
		d := d
		t.Run(d.Name, func(t *testing.T) {
			cfg := detectConfig(200_000, "", false)
			arrivals, err := openloop.Generate(cfg.Open)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunServe(d, cfg)
			if err != nil {
				t.Fatal(err)
			}
			c := res.Crash
			if !c.Detectable {
				t.Fatal("PREP driver not marked detectable")
			}
			if c.InFlightResolved != c.LostInflight {
				t.Errorf("resolved %d of %d in-flight operations; detectability must answer all",
					c.InFlightResolved, c.LostInflight)
			}
			if c.DuplicatesApplied == nil {
				t.Fatal("detectable driver reported no duplicates_applied")
			}
			if *c.DuplicatesApplied != 0 {
				t.Errorf("duplicates_applied = %d, want 0", *c.DuplicatesApplied)
			}
			if c.ResolvedCompleted > c.InFlightResolved {
				t.Errorf("resolved_completed %d exceeds in_flight_resolved %d",
					c.ResolvedCompleted, c.InFlightResolved)
			}
			// Exactly-once conservation: every scheduled arrival completes
			// once — through a ring or through a resolved delivery.
			if res.Completed != uint64(len(arrivals)) {
				t.Errorf("completed %d, want exactly the %d scheduled arrivals",
					res.Completed, len(arrivals))
			}
			if res.Submitted+c.ResolvedCompleted != uint64(len(arrivals)) {
				t.Errorf("submitted %d + resolved %d ≠ schedule %d",
					res.Submitted, c.ResolvedCompleted, len(arrivals))
			}
		})
	}
}

// TestRunServeCrashCheckAllSystems: the two-epoch linearize check passes for
// every driver under the fault adversaries — the PREP drivers with their
// in-flight windows classified by descriptor verdicts, the others under
// plain at-most-once InFlight semantics.
func TestRunServeCrashCheckAllSystems(t *testing.T) {
	for _, policy := range []string{"", "coinflip", "targeted"} {
		for _, d := range ServeDrivers(2, 64) {
			d, policy := d, policy
			t.Run(d.Name+"/"+orDefault(policy), func(t *testing.T) {
				res, err := RunServe(d, detectConfig(200_000, policy, true))
				if err != nil {
					t.Fatal(err)
				}
				cb := res.Check
				if cb == nil {
					t.Fatal("check requested but no check block")
				}
				if !cb.OK {
					t.Fatalf("linearize check failed: epoch %d, %s: %s",
						cb.FailedEpoch, cb.FailedPartition, cb.Reason)
				}
				if cb.Epochs != 2 || cb.Ops == 0 {
					t.Errorf("implausible check block: %+v", cb)
				}
				if d.Detect && res.Crash.InFlightResolved !=
					cb.InFlightCommitted+cb.InFlightNever {
					t.Errorf("classified %d+%d in-flight ops, resolved %d",
						cb.InFlightCommitted, cb.InFlightNever, res.Crash.InFlightResolved)
				}
			})
		}
	}
}

func orDefault(policy string) string {
	if policy == "" {
		return "default"
	}
	return policy
}

// TestRunServeSteadyCheck: the crash-free checked run is a single strict
// epoch and passes for every driver.
func TestRunServeSteadyCheck(t *testing.T) {
	for _, d := range ServeDrivers(2, 64) {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			res, err := RunServe(d, detectConfig(0, "", true))
			if err != nil {
				t.Fatal(err)
			}
			cb := res.Check
			if cb == nil || !cb.OK || cb.Epochs != 1 {
				t.Fatalf("steady check: %+v", cb)
			}
			if cb.InFlightCommitted != 0 || cb.InFlightNever != 0 {
				t.Errorf("steady run classified in-flight ops: %+v", cb)
			}
		})
	}
}

// TestRunServeCrashDeterministic: the crash scenario — including recovery,
// descriptor resolution, the resume plan and the check — is a pure function
// of the config.
func TestRunServeCrashDeterministic(t *testing.T) {
	run := func() string {
		res, err := RunServe(ServeDrivers(2, 64)[0], detectConfig(200_000, "coinflip", true))
		if err != nil {
			t.Fatal(err)
		}
		j, _ := json.Marshal(res)
		return string(j)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same config, different results:\n%s\n%s", a, b)
	}
}

// TestRunServeCrashStride sweeps the crash instant at a fine stride across
// the load's ramp so the cut lands at many distinct machine states — mid
// batch, mid combiner session, mid persistence cycle — and asserts the
// exactly-once invariants at every offset.
func TestRunServeCrashStride(t *testing.T) {
	if testing.Short() {
		t.Skip("stride sweep is slow")
	}
	for _, d := range ServeDrivers(2, 64)[:2] {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			for crashAt := uint64(120_000); crashAt <= 240_000; crashAt += 7_001 {
				res, err := RunServe(d, detectConfig(crashAt, "coinflip", true))
				if err != nil {
					t.Fatalf("crash@%d: %v", crashAt, err)
				}
				c := res.Crash
				if c.InFlightResolved != c.LostInflight {
					t.Errorf("crash@%d: resolved %d of %d", crashAt, c.InFlightResolved, c.LostInflight)
				}
				if c.DuplicatesApplied == nil || *c.DuplicatesApplied != 0 {
					t.Errorf("crash@%d: duplicates %v", crashAt, c.DuplicatesApplied)
				}
				if !res.Check.OK {
					t.Errorf("crash@%d: check failed: %s", crashAt, res.Check.Reason)
				}
			}
		})
	}
}
