package harness

import (
	"encoding/json"
	"testing"

	"prepuc/internal/openloop"
)

func serveTestConfig(crashAt uint64) ServeConfig {
	return ServeConfig{
		Shards: 2, RingSize: 256, MaxBatch: 32, Batched: true, Seed: 5,
		CrashAtNS: crashAt,
		Open: openloop.Config{
			Clients: 20_000, Keys: 1 << 12, KeySkew: 1.2, ReadPct: 80,
			Rate: 2e6, DurationNS: 400_000, ThinkNS: 20_000,
			BurstEveryNS: 100_000, BurstLenNS: 20_000, BurstFactor: 4,
			Seed: 99,
		},
	}
}

// TestRunServeSteadyDeterministic: the whole measurement — throughput,
// every percentile, every ring counter — is a pure function of the config.
func TestRunServeSteadyDeterministic(t *testing.T) {
	run := func() *ServeResult {
		res, err := RunServe(ServeDrivers(2, 64)[0], serveTestConfig(0))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("same config, different results:\n%s\n%s", aj, bj)
	}
	if a.Completed == 0 || a.Completed != a.Submitted {
		t.Fatalf("steady run left work behind: completed=%d submitted=%d", a.Completed, a.Submitted)
	}
	if a.Latency.P50 == 0 || a.Latency.P999 < a.Latency.P50 {
		t.Fatalf("implausible latency summary: %+v", a.Latency)
	}
}

// TestRunServeCrashAllSystems: every recoverable construction survives the
// crash-under-load scenario and eventually retires the full schedule, with
// a nonzero recovery window reported.
func TestRunServeCrashAllSystems(t *testing.T) {
	for _, d := range ServeDrivers(2, 64) {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			res, err := RunServe(d, serveTestConfig(200_000))
			if err != nil {
				t.Fatal(err)
			}
			c := res.Crash
			if c == nil {
				t.Fatal("crash scenario reported no crash block")
			}
			if c.RecoveryVirtualNS == 0 {
				t.Error("zero recovery time")
			}
			if c.StallNS < c.RecoveryVirtualNS {
				t.Errorf("stall %d ns shorter than recovery %d ns", c.StallNS, c.RecoveryVirtualNS)
			}
			if c.BacklogAtResume == 0 {
				t.Error("no backlog accumulated across the outage")
			}
			// Every completion passed through a ring submission, except
			// descriptor-resolved deliveries (completed without resubmission).
			resolved := uint64(0)
			if c.Detectable {
				resolved = c.ResolvedCompleted
			}
			if res.Submitted+resolved < res.Completed {
				t.Errorf("submitted %d + resolved %d < completed %d",
					res.Submitted, resolved, res.Completed)
			}
			if res.Completed == 0 {
				t.Error("nothing completed")
			}
			if res.Latency.P999 <= res.Latency.P50 {
				t.Errorf("outage left no latency tail: %+v", res.Latency)
			}
		})
	}
}
