package harness

// shardserve.go drives the sharded multi-instance deployment: S fully
// independent PREP machines — each with its own scheduler, NVM system,
// engine, rings and recovery state machine — behind one key-space router.
// One global open-loop arrival schedule is partitioned by shard.Router at
// submission time (routing is a pure function of the op's key), each
// machine runs the ordinary single-machine serve harness over its slice,
// and the harness aggregates: throughput against the latest completion
// instant across machines, one merged latency histogram, ring counters via
// metrics.Snapshot.Add.
//
// Machines fail independently. CrashShards names the subset whose sub-run
// arms the crash-and-recover scenario; survivors run their load start to
// finish uninterrupted — there is no global freeze, because each machine
// owns a private sim.Scheduler and sim.CrashNow unwinds only that
// machine's threads. Each crashed shard reports its own recovery stall and
// backlog drain, and the aggregate crash block sums/maxes them.
//
// Checking composes per-machine verdicts: every machine's history passes
// its own CheckEpoch (steady or two-epoch crash check, per the
// single-machine harness), and linearize.CheckComposition audits the
// routing invariant — no op recorded against shard s keys to shard t, no
// key in shard s's probed state belongs to shard t. On fully steady runs a
// union epoch re-checks all machines' completed operations against the
// merged final state, which is sound despite per-machine virtual clocks:
// the checker partitions by key, every key's sub-history lives inside one
// machine's coherent timeline, and set semantics impose no cross-key
// ordering obligation.
//
// Determinism: each machine's sub-run derives every seed from its own
// slot (Seed + shardIdx*1009) and writes into its own result index, so the
// document is byte-identical at any host parallelism (-j).

import (
	"fmt"

	"prepuc/internal/linearize"
	"prepuc/internal/metrics"
	"prepuc/internal/openloop"
	"prepuc/internal/par"
	"prepuc/internal/shard"
)

// ShardedServeConfig parameterizes one sharded service run.
type ShardedServeConfig struct {
	// Instances is S, the number of independent machines.
	Instances int
	// Route selects the partitioning policy ("hash" or "range").
	Route string
	// TotalWorkers is the total consumer-ring count across all machines; it
	// must divide evenly so scaling runs compare fixed total resources.
	TotalWorkers int
	// RingSize, MaxBatch, Batched, Open, Seed, Policy, Check mirror
	// ServeConfig, applied per machine (Open is partitioned, not copied).
	RingSize uint64
	MaxBatch int
	Batched  bool
	Open     openloop.Config
	Seed     int64
	Policy   string
	Check    bool
	// CrashAtNS with CrashShards arms the crash scenario on exactly that
	// subset of machines; the rest run steady.
	CrashAtNS   uint64
	CrashShards []int
	// Jobs caps host-side parallelism across machine sub-runs (par.Jobs).
	Jobs int
}

// ShardServeResult is one machine's record inside a sharded run.
type ShardServeResult struct {
	Shard    int          `json:"shard"`
	Workers  int          `json:"workers"`
	Crashed  bool         `json:"crashed"`
	Arrivals uint64       `json:"arrivals"`
	Result   *ServeResult `json:"result"`
}

// CompositionStats is the cross-shard composition verdict: the
// linearize.CheckComposition audit plus, on fully steady runs, the union
// epoch over all machines' completed operations.
type CompositionStats struct {
	linearize.CompositionResult
	UnionChecked bool   `json:"union_checked"`
	UnionOps     int    `json:"union_ops,omitempty"`
	UnionReason  string `json:"union_reason,omitempty"`
}

// subSeedStride separates consecutive machines' seed spaces; the
// single-machine harness derives every scheduler seed within +0..+1000 of
// its base.
const subSeedStride = 1009

// RunShardedServe executes one sharded service run: mk builds a fresh
// driver per machine (never share driver instances across machines), cfg
// says how to partition and what to crash. The returned aggregate record
// carries the per-machine breakdowns under Shards.
func RunShardedServe(mk func() *ServeDriver, cfg ShardedServeConfig) (*ServeResult, error) {
	if cfg.Instances <= 0 {
		return nil, fmt.Errorf("sharded serve: Instances must be positive, got %d", cfg.Instances)
	}
	per := cfg.TotalWorkers / cfg.Instances
	if per <= 0 || per*cfg.Instances != cfg.TotalWorkers {
		return nil, fmt.Errorf("sharded serve: TotalWorkers %d does not divide across %d instances",
			cfg.TotalWorkers, cfg.Instances)
	}
	pol, err := shard.ParsePolicy(cfg.Route)
	if err != nil {
		return nil, err
	}
	crashed := make([]bool, cfg.Instances)
	for _, s := range cfg.CrashShards {
		if s < 0 || s >= cfg.Instances {
			return nil, fmt.Errorf("sharded serve: crash shard %d out of range [0,%d)", s, cfg.Instances)
		}
		crashed[s] = true
	}
	if (len(cfg.CrashShards) > 0) != (cfg.CrashAtNS > 0) {
		return nil, fmt.Errorf("sharded serve: CrashShards and CrashAtNS must be set together")
	}

	arrivals, err := openloop.Generate(cfg.Open)
	if err != nil {
		return nil, err
	}
	router, err := shard.NewRouter(pol, cfg.Instances, cfg.Open.Keys)
	if err != nil {
		return nil, err
	}
	parts := router.Partition(arrivals)

	// Every machine runs independently; slot i owns all of machine i's
	// state, so completion order across host goroutines never shows.
	subRes := make([]*ServeResult, cfg.Instances)
	subRun := make([]*serveRun, cfg.Instances)
	subErr := make([]error, cfg.Instances)
	par.Do(par.Jobs(cfg.Jobs), cfg.Instances, func(i int) {
		sub := ServeConfig{
			Shards: per, RingSize: cfg.RingSize, MaxBatch: cfg.MaxBatch,
			Batched: cfg.Batched, Open: cfg.Open,
			Seed: cfg.Seed + int64(i)*subSeedStride, Policy: cfg.Policy,
			Check: cfg.Check,
		}
		if crashed[i] {
			sub.CrashAtNS = cfg.CrashAtNS
		}
		subRes[i], subRun[i], subErr[i] = runServeArrivals(mk(), sub, parts[i])
	})
	for i, e := range subErr {
		if e != nil {
			return nil, fmt.Errorf("sharded serve: shard %d: %w", i, e)
		}
	}

	agg := &ServeResult{System: subRes[0].System, Route: cfg.Route}
	var hist openloop.Histogram
	var endNS uint64
	var snap metrics.Snapshot
	var maxCompleted uint64
	for i := 0; i < cfg.Instances; i++ {
		r, run := subRes[i], subRun[i]
		agg.Submitted += r.Submitted
		agg.Completed += r.Completed
		if r.Completed > maxCompleted {
			maxCompleted = r.Completed
		}
		hist.Merge(&run.ta.hist)
		if run.ta.endNS > endNS {
			endNS = run.ta.endNS
		}
		snap = snap.Add(run.sys.Metrics().Snapshot())
		agg.Shards = append(agg.Shards, &ShardServeResult{
			Shard: i, Workers: per, Crashed: crashed[i],
			Arrivals: uint64(len(parts[i])), Result: r,
		})
	}
	// Aggregate throughput is total completions over the longest machine's
	// run: the deployment is only as finished as its slowest shard, so
	// hot-shard imbalance shows up here, not just in Imbalance.
	if endNS > 0 {
		agg.OpsPerSec = float64(agg.Completed) * 1e9 / float64(endNS)
	}
	agg.Latency = LatencyNS{
		P50:  hist.Quantile(0.50),
		P99:  hist.Quantile(0.99),
		P999: hist.Quantile(0.999),
		Max:  hist.Max(),
		Mean: hist.Mean(),
	}
	agg.Ring = RingStats{
		Submits:    snap.RingSubmits,
		FullStalls: snap.RingFullStalls,
		Batches:    snap.RingBatches,
		BatchedOps: snap.RingBatchedOps,
	}
	if snap.RingBatches > 0 {
		agg.Ring.MeanBatch = float64(snap.RingBatchedOps) / float64(snap.RingBatches)
	}
	if agg.Completed > 0 {
		agg.Imbalance = float64(maxCompleted) * float64(cfg.Instances) / float64(agg.Completed)
	}
	if len(cfg.CrashShards) > 0 {
		agg.Crash = aggregateCrash(subRes, crashed)
	}
	if cfg.Check {
		agg.Check, agg.Composition = shardedCheck(cfg, router, per, parts, subRes, subRun, crashed)
	}
	return agg, nil
}

// aggregateCrash folds the crashed machines' recovery economics into one
// block: additive tallies sum, duration-like fields take the worst shard.
func aggregateCrash(subRes []*ServeResult, crashed []bool) *CrashStats {
	agg := &CrashStats{Detectable: true}
	var dup uint64
	detectable := true
	for i, r := range subRes {
		if !crashed[i] || r.Crash == nil {
			continue
		}
		c := r.Crash
		agg.CrashAtNS = c.CrashAtNS
		if c.RecoveryVirtualNS > agg.RecoveryVirtualNS {
			agg.RecoveryVirtualNS = c.RecoveryVirtualNS
		}
		if c.StallNS > agg.StallNS {
			agg.StallNS = c.StallNS
		}
		if c.BacklogDrainNS > agg.BacklogDrainNS {
			agg.BacklogDrainNS = c.BacklogDrainNS
		}
		agg.Replayed += c.Replayed
		agg.LostInflight += c.LostInflight
		agg.BacklogAtResume += c.BacklogAtResume
		agg.InFlightResolved += c.InFlightResolved
		agg.ResolvedCompleted += c.ResolvedCompleted
		if c.Detectable && c.DuplicatesApplied != nil {
			dup += *c.DuplicatesApplied
		} else {
			detectable = false
		}
	}
	agg.Detectable = detectable
	if detectable {
		agg.DuplicatesApplied = &dup
	}
	return agg
}

// shardedCheck composes the per-machine verdicts and runs the cross-shard
// audits. Per-machine epoch checks already ran inside runServeArrivals;
// here their stats fold together, the routing invariant is audited from
// the recorded data, and — when no machine crashed — a union epoch
// re-checks everything against the merged final state.
func shardedCheck(cfg ShardedServeConfig, router *shard.Router, per int,
	parts [][]openloop.Arrival, subRes []*ServeResult, subRun []*serveRun,
	crashed []bool) (*CheckStats, *CompositionStats) {
	cb := &CheckStats{Mode: "linearize", OK: true, FailedEpoch: -1}
	for i, r := range subRes {
		c := r.Check
		cb.Epochs += c.Epochs
		cb.Ops += c.Ops
		cb.Lost += c.Lost
		cb.InFlightCommitted += c.InFlightCommitted
		cb.InFlightNever += c.InFlightNever
		if cb.OK && !c.OK {
			cb.OK = false
			cb.FailedEpoch = c.FailedEpoch
			cb.FailedPartition = c.FailedPartition
			cb.Reason = fmt.Sprintf("shard %d: %s", i, c.Reason)
		}
	}

	// Routing audit: every machine's full recorded traffic (the arrival
	// slice it was handed — completed, in-flight and never-drained alike)
	// plus its probed final state.
	anyCrashed := false
	histories := make([]linearize.ShardHistory, len(subRun))
	var unionOps []linearize.Op
	unionFinal := map[uint64]uint64{}
	for i, run := range subRun {
		sh := linearize.ShardHistory{Shard: i}
		for _, a := range parts[i] {
			sh.Ops = append(sh.Ops, linearize.Op{Client: i, Code: a.Op.Code, A0: a.Op.A0})
		}
		sh.Final = probeServeState(run.sys, run.eng,
			cfg.Open.Keys, cfg.Seed+int64(i)*subSeedStride+977)
		histories[i] = sh
		if crashed[i] {
			anyCrashed = true
			continue
		}
		// Steady machines contribute to the union epoch: completed records
		// zip with the per-ring arrival order, clients offset per machine.
		for s := range run.perShard {
			ops := completedOps(s, run.perShard[s], run.ta.recA[s])
			for j := range ops {
				ops[j].Client = i*per + s
			}
			unionOps = append(unionOps, ops...)
		}
		for k, v := range sh.Final {
			unionFinal[k] = v
		}
	}
	comp := &CompositionStats{
		CompositionResult: linearize.CheckComposition(router.Route, histories),
	}
	if !anyCrashed {
		comp.UnionChecked = true
		comp.UnionOps = len(unionOps)
		if r := linearize.CheckEpoch(linearize.SetModel(), nil, unionOps, unionFinal, linearize.Options{}); !r.OK {
			comp.OK = false
			comp.UnionReason = fmt.Sprintf("union epoch: %s: %s", r.FailedPartition, r.Reason)
		}
	}
	if cb.OK && !comp.OK {
		cb.OK = false
		cb.Reason = "cross-shard composition failed"
	}
	return cb, comp
}
