package harness

import (
	"encoding/json"
	"testing"

	"prepuc/internal/openloop"
)

func shardedTestConfig(instances int, crashAt uint64, crash []int) ShardedServeConfig {
	return ShardedServeConfig{
		Instances: instances, Route: "hash", TotalWorkers: 4,
		RingSize: 256, MaxBatch: 32, Batched: true, Seed: 5,
		CrashAtNS: crashAt, CrashShards: crash,
		Open: openloop.Config{
			Clients: 20_000, Keys: 1 << 12, KeySkew: 1.2, ReadPct: 80,
			Rate: 4e6, DurationNS: 400_000, ThinkNS: 20_000,
			Seed: 99,
		},
	}
}

func durableFactory(per int) func() *ServeDriver {
	return func() *ServeDriver { return ServeDrivers(per, 64)[0] }
}

// TestShardedServeDeterministicAcrossJobs: the sharded document is a pure
// function of the config at any host parallelism — each machine's sub-run
// owns its seeds and result slot, so -j never shows in the bytes.
func TestShardedServeDeterministicAcrossJobs(t *testing.T) {
	run := func(jobs int) []byte {
		cfg := shardedTestConfig(4, 0, nil)
		cfg.Jobs = jobs
		cfg.Check = true
		res, err := RunShardedServe(durableFactory(1), cfg)
		if err != nil {
			t.Fatal(err)
		}
		j, _ := json.Marshal(res)
		return j
	}
	a, b := run(1), run(8)
	if string(a) != string(b) {
		t.Fatalf("-j 1 and -j 8 disagree:\n%s\n%s", a, b)
	}
}

// TestShardedServeSteady checks the aggregate record's accounting: shard
// breakdowns partition the schedule and the totals, the composition audit
// (including the union epoch) passes, and the Zipf-skewed load shows up as
// measurable imbalance.
func TestShardedServeSteady(t *testing.T) {
	cfg := shardedTestConfig(4, 0, nil)
	cfg.Check = true
	res, err := RunShardedServe(durableFactory(1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shards) != 4 || res.Route != "hash" {
		t.Fatalf("breakdown shape: %d shards, route %q", len(res.Shards), res.Route)
	}
	var sumC, sumS, sumA uint64
	for i, sh := range res.Shards {
		if sh.Shard != i || sh.Crashed || sh.Workers != 1 {
			t.Errorf("shard %d entry: %+v", i, sh)
		}
		if sh.Result.Completed == 0 || sh.Result.Completed != sh.Result.Submitted {
			t.Errorf("shard %d left work behind: %d/%d", i, sh.Result.Completed, sh.Result.Submitted)
		}
		if sh.Result.Check == nil || !sh.Result.Check.OK {
			t.Errorf("shard %d epoch check: %+v", i, sh.Result.Check)
		}
		sumC += sh.Result.Completed
		sumS += sh.Result.Submitted
		sumA += sh.Arrivals
	}
	if sumC != res.Completed || sumS != res.Submitted {
		t.Errorf("totals: aggregate %d/%d, shard sums %d/%d",
			res.Completed, res.Submitted, sumC, sumS)
	}
	if sumA != res.Completed {
		t.Errorf("schedule not conserved: %d arrivals, %d completed", sumA, res.Completed)
	}
	if res.Imbalance < 1.0 {
		t.Errorf("imbalance %f below the balanced floor", res.Imbalance)
	}
	if res.Check == nil || !res.Check.OK {
		t.Fatalf("aggregate check: %+v", res.Check)
	}
	comp := res.Composition
	if comp == nil || !comp.OK || !comp.UnionChecked {
		t.Fatalf("composition: %+v", comp)
	}
	if comp.KeysProbed == 0 || comp.UnionOps != int(res.Completed) {
		t.Errorf("composition audit sizing: %+v (completed %d)", comp, res.Completed)
	}
}

// TestShardedServePartialCrash crashes a proper subset of machines while
// the others keep serving: survivors never see a crash block, crashed
// shards recover with exactly-once resume (duplicates_applied == 0), and
// both the per-shard epoch checks and the cross-shard composition audit
// pass. Both adversary policies of the acceptance bar run.
func TestShardedServePartialCrash(t *testing.T) {
	for _, policy := range []string{"targeted", "coinflip"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			cfg := shardedTestConfig(4, 200_000, []int{0, 2})
			cfg.Check = true
			cfg.Policy = policy
			res, err := RunShardedServe(durableFactory(1), cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, sh := range res.Shards {
				wantCrash := i == 0 || i == 2
				if sh.Crashed != wantCrash {
					t.Errorf("shard %d crashed=%v, want %v", i, sh.Crashed, wantCrash)
				}
				if gotCrash := sh.Result.Crash != nil; gotCrash != wantCrash {
					t.Errorf("shard %d crash block present=%v, want %v", i, gotCrash, wantCrash)
				}
				if wantCrash {
					c := sh.Result.Crash
					if !c.Detectable || c.DuplicatesApplied == nil || *c.DuplicatesApplied != 0 {
						t.Errorf("shard %d resume not exactly-once: %+v", i, c)
					}
					if c.StallNS == 0 {
						t.Errorf("shard %d reported no recovery stall", i)
					}
				}
				if sh.Result.Check == nil || !sh.Result.Check.OK {
					t.Errorf("shard %d epoch check: %+v", i, sh.Result.Check)
				}
			}
			if res.Crash == nil || res.Crash.DuplicatesApplied == nil || *res.Crash.DuplicatesApplied != 0 {
				t.Fatalf("aggregate crash block: %+v", res.Crash)
			}
			if res.Crash.StallNS == 0 || res.Crash.BacklogAtResume == 0 {
				t.Errorf("aggregate recovery economics empty: %+v", res.Crash)
			}
			if res.Check == nil || !res.Check.OK {
				t.Fatalf("aggregate check: %+v", res.Check)
			}
			comp := res.Composition
			if comp == nil || !comp.OK || comp.UnionChecked {
				t.Fatalf("composition (crash runs skip the union epoch): %+v", comp)
			}
		})
	}
}

// TestShardedServeConfigValidation rejects the configurations the flag
// parser cannot.
func TestShardedServeConfigValidation(t *testing.T) {
	mk := durableFactory(1)
	bad := []func(*ShardedServeConfig){
		func(c *ShardedServeConfig) { c.Instances = 0 },
		func(c *ShardedServeConfig) { c.TotalWorkers = 3 },
		func(c *ShardedServeConfig) { c.Route = "modulo" },
		func(c *ShardedServeConfig) { c.CrashShards = []int{4}; c.CrashAtNS = 1 },
		func(c *ShardedServeConfig) { c.CrashShards = []int{1} },
		func(c *ShardedServeConfig) { c.CrashAtNS = 200_000 },
	}
	for i, mut := range bad {
		cfg := shardedTestConfig(4, 0, nil)
		mut(&cfg)
		if _, err := RunShardedServe(mk, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
