package harness

import (
	"testing"

	"prepuc/internal/core"
	"prepuc/internal/numa"
	"prepuc/internal/nvm"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// BenchmarkNestedCrashSweep measures the host-side cost of the crash-sweep
// inner loop at a realistic heap size (the crashtest engines run 1<<21-word
// heaps): clone the frozen post-crash machine, arm a crash inside recovery,
// run to the freeze, materialize the nested crash, then recover fully. The
// workload that produced the machine runs once, in setup; each iteration
// sweeps a fixed set of crash points, so ns/op tracks exactly the work the
// -nested and -sweep modes of cmd/crashtest repeat per crash point. With
// deep-copy snapshots this is O(heap words) per point; with copy-on-write
// pages it is O(pages recovery actually touches).
func BenchmarkNestedCrashSweep(b *testing.B) {
	b.ReportAllocs()
	const (
		workers = 4
		seed    = int64(42)
		updates = uint64(2000)
		points  = 8
	)
	cfg := core.Config{
		Mode: core.Durable, Topology: numa.Topology{Nodes: 1, ThreadsPerNode: workers}, Workers: workers,
		LogSize: 1 << 12, Epsilon: 128,
		Factory:  seq.HashMapFactory(1024),
		Attacher: seq.HashMapAttacher, HeapWords: 1 << 21,
	}

	bootSch := sim.New(seed)
	sys := nvm.NewSystem(bootSch, nvm.Config{Costs: sim.UnitCosts(), BGFlushOneIn: 64, Seed: uint64(seed)})
	var p *core.PREP
	var err error
	bootSch.Spawn("boot", 0, 0, func(t *sim.Thread) { p, err = core.New(t, sys, cfg) })
	bootSch.Run()
	if err != nil {
		b.Fatal(err)
	}
	runSch := sim.New(seed + 1)
	runSch.CrashAtEvent(400_000)
	sys.SetScheduler(runSch)
	p.SpawnPersistence(0)
	for tid := 0; tid < workers; tid++ {
		tid := tid
		runSch.Spawn("w", 0, 0, func(t *sim.Thread) {
			for i := uint64(0); i < updates; i++ {
				p.Execute(t, tid, uc.Insert(uint64(tid)<<32 | i, i))
			}
		})
	}
	runSch.Run()
	if !runSch.Frozen() {
		b.Fatal("workload finished without crashing")
	}
	base := sys.Recover(sim.New(seed + 2))

	// Probe once for the recovery event ceiling, then spread the sweep's
	// crash points across it.
	probeSch := sim.New(seed + 3)
	probe := base.Clone(probeSch)
	probe.SetScheduler(probeSch)
	probeSch.Spawn("probe", 0, 0, func(t *sim.Thread) {
		if _, _, err := core.Recover(t, probe, cfg); err != nil {
			panic(err)
		}
	})
	probeSch.Run()
	ceiling := probeSch.Events()
	if ceiling < points {
		b.Fatalf("recovery too short to sweep: %d events", ceiling)
	}
	stride := ceiling / points

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := uint64(1); k <= points; k++ {
			trialSch := sim.New(seed + 3)
			trialSch.CrashAtEvent(k * stride)
			trial := base.Clone(trialSch)
			trial.SetScheduler(trialSch)
			trialSch.Spawn("recover", 0, 0, func(t *sim.Thread) {
				core.Recover(t, trial, cfg)
			})
			trialSch.Run()
			if !trialSch.Frozen() {
				b.Fatalf("point %d: recovery finished before armed crash", k)
			}
			afterSch := sim.New(seed + 4)
			after := trial.Recover(afterSch)
			afterSch.Spawn("recover2", 0, 0, func(t *sim.Thread) {
				if _, _, err := core.Recover(t, after, cfg); err != nil {
					panic(err)
				}
			})
			afterSch.Run()
		}
	}
}
