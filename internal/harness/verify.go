package harness

import (
	"fmt"

	"prepuc/internal/linearize"
	"prepuc/internal/nvm"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
	"prepuc/internal/workload"
)

// ModelFor returns the linearize specification matching a workload spec:
// the partitioned set model for Set workloads, and the queue / stack /
// priority-queue model selected by the Pairs update codes.
func ModelFor(spec workload.Spec) (linearize.Model, error) {
	switch spec.Kind {
	case workload.Set:
		return linearize.SetModel(), nil
	case workload.Pairs:
		switch {
		case spec.PushCode == uc.OpPush:
			return linearize.StackModel(), nil
		case spec.PushCode == uc.OpEnqueue && spec.PopCode == uc.OpDequeue:
			return linearize.QueueModel(), nil
		case spec.PushCode == uc.OpEnqueue && spec.PopCode == uc.OpDeleteMin:
			return linearize.PQueueModel(), nil
		}
	}
	return nil, fmt.Errorf("harness: no sequential model for workload %+v", spec)
}

// VerifyPoint rebuilds one (algo, threads) cell exactly like a measured
// point — boot, prefill, background threads — then drives opsPerWorker
// operations per worker through a linearize.Recorder and checks the
// recorded history (plus the probed final state) for linearizability
// against the workload's sequential model. It is how the evaluation
// workloads themselves get correctness coverage: the same ExecuteConcurrent
// call path the throughput harness measures, verified instead of timed.
//
// The workload's KeyRange should be small (≤ a few hundred) so the final
// set state can be probed key by key.
func VerifyPoint(fig Figure, sc Scale, algo AlgoSpec, threads int, seed int64, opsPerWorker int) (linearize.Result, error) {
	model, err := ModelFor(fig.Workload)
	if err != nil {
		return linearize.Result{}, err
	}
	prefill := fig.Workload.PrefillOps(seed)
	init := linearize.Replay(model, nil, prefill)

	// Boot phase, mirroring runPoint.
	bootSch := sim.New(seed)
	sys := nvm.NewSystem(bootSch, nvm.Config{Costs: sc.Costs, Seed: uint64(seed) + 1, NoFlushElision: sc.NoFlushElision})
	var sysImpl System
	bootSch.Spawn("boot", 0, 0, func(t *sim.Thread) {
		sysImpl, err = algo.Build(t, sys, sc, threads)
		if err != nil {
			return
		}
		sysImpl.Prefill(t, prefill)
	})
	bootSch.Run()
	if err != nil {
		return linearize.Result{}, fmt.Errorf("build: %w", err)
	}

	// Recorded workload phase.
	rec := linearize.NewRecorder(threads)
	sch := sim.New(seed + 7)
	sys.SetScheduler(sch)
	if bg, ok := sysImpl.(Background); ok {
		bg.SpawnBackground()
	}
	remaining := threads
	for tid := 0; tid < threads; tid++ {
		tid := tid
		sch.Spawn("worker", sc.Topology.NodeOf(tid), 0, func(t *sim.Thread) {
			defer func() {
				remaining--
				if remaining == 0 {
					if bg, ok := sysImpl.(Background); ok {
						bg.StopBackground(t)
					}
				}
			}()
			gen := workload.NewGen(fig.Workload, seed+13, tid)
			for i := 0; i < opsPerWorker; i++ {
				op := gen.Next()
				rec.Exec(t, tid, op, func() uint64 {
					return sysImpl.Execute(t, tid, op)
				})
			}
		})
	}
	sch.Run()

	// Probe phase: observe the final state on a fresh timeline.
	final, err := probeState(sys, sysImpl, fig.Workload, seed+1000)
	if err != nil {
		return linearize.Result{}, err
	}
	return linearize.CheckEpoch(model, init, rec.Ops(), final, linearize.Options{}), nil
}

// probeState reads the object's final state through Execute: key-by-key
// Gets for set workloads, a destructive drain for pairs workloads (the
// drained sequence is the container's content in canonical order). The
// pairs drain issues updates, which on the PREP variants block on the
// background persister for buffer space — so the probe phase runs with
// background threads alive, like the measured phase.
func probeState(sys *nvm.System, s System, spec workload.Spec, seed int64) (any, error) {
	sch := sim.New(seed)
	sys.SetScheduler(sch)
	if bg, ok := s.(Background); ok {
		bg.SpawnBackground()
	}
	var state any
	sch.Spawn("probe", 0, 0, func(t *sim.Thread) {
		defer func() {
			if bg, ok := s.(Background); ok {
				bg.StopBackground(t)
			}
		}()
		switch spec.Kind {
		case workload.Set:
			m := map[uint64]uint64{}
			for k := uint64(0); k < spec.KeyRange; k++ {
				if v := s.Execute(t, 0, uc.Get(k)); v != uc.NotFound {
					m[k] = v
				}
			}
			state = m
		case workload.Pairs:
			state = drain(t, s, spec.PushCode, spec.PopCode)
		}
	})
	sch.Run()
	if state == nil {
		return nil, fmt.Errorf("harness: cannot probe workload kind %d", spec.Kind)
	}
	return state, nil
}

// drain pops until empty and returns the content as the model's canonical
// state: FIFO order for queues, bottom-first for stacks (pop order
// reversed), ascending for priority queues (DeleteMin drains sorted).
func drain(t *sim.Thread, s System, pushCode, popCode uint64) []uint64 {
	var popped []uint64
	for {
		v := s.Execute(t, 0, uc.Op{Code: popCode, A0: 0})
		if v == uc.NotFound {
			break
		}
		popped = append(popped, v)
	}
	if pushCode == uc.OpPush { // stack: pop order is top-first
		for i, j := 0, len(popped)-1; i < j; i, j = i+1, j-1 {
			popped[i], popped[j] = popped[j], popped[i]
		}
	}
	if popped == nil {
		popped = []uint64{}
	}
	return popped
}
