package harness

import (
	"testing"

	"prepuc/internal/core"
	"prepuc/internal/seq"
	"prepuc/internal/uc"
	"prepuc/internal/workload"
)

// verifyScale is TinyScale with a probe-friendly key range: the verifier
// reads the final set state back key by key.
func verifyScale() Scale {
	sc := TinyScale()
	sc.KeyRange = 96
	return sc
}

func heap21(Scale) uint64 { return 1 << 21 }

// TestVerifyPointSetWorkload checks the recorded mixed set workload of
// every construction the evaluation compares — the same ExecuteConcurrent
// call path RunFigure measures, verified for linearizability instead of
// timed.
func TestVerifyPointSetWorkload(t *testing.T) {
	sc := verifyScale()
	fig := Figure{
		ID:       "verify-set",
		Workload: workload.SetSpec(30, sc.KeyRange),
		Algos: []AlgoSpec{
			{"GL", GLBuilder(seq.HashMapType(64), heap21)},
			{"PREP-V", PREPBuilder(core.Volatile, 0, seq.HashMapType(64), heap21)},
			{"PREP-Buffered", PREPBuilder(core.Buffered, sc.EpsSmall, seq.HashMapType(64), heap21)},
			{"PREP-Durable", PREPBuilder(core.Durable, sc.EpsSmall, seq.HashMapType(64), heap21)},
			{"CX-PUC", CXBuilder(seq.HashMapType(64), heap21)},
			{"ONLL", ONLLBuilder(seq.HashMapType(64), heap21)},
			{"SOFT", SOFTBuilder(func(Scale) uint64 { return 64 })},
		},
	}
	for _, algo := range fig.Algos {
		algo := algo
		t.Run(algo.Name, func(t *testing.T) {
			res, err := VerifyPoint(fig, sc, algo, 4, 11, 120)
			if err != nil {
				t.Fatal(err)
			}
			if !res.OK {
				t.Fatalf("%s: %s", algo.Name, res)
			}
			t.Logf("%s: %s", algo.Name, res)
		})
	}
}

// TestVerifyPointPairsWorkloads checks the queue, stack and priority-queue
// pair workloads on the universal constructions (SOFT is a fixed-function
// hashtable and has no container form).
func TestVerifyPointPairsWorkloads(t *testing.T) {
	sc := verifyScale()
	cases := []struct {
		name string
		spec workload.Spec
		obj  uc.ObjectType
	}{
		{"queue", workload.PairsSpec(uc.OpEnqueue, uc.OpDequeue, 24), seq.QueueType()},
		{"stack", workload.PairsSpec(uc.OpPush, uc.OpPop, 24), seq.StackType()},
		{"pqueue", workload.PairsSpec(uc.OpEnqueue, uc.OpDeleteMin, 24), seq.PQueueType()},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			fig := Figure{
				ID:       "verify-" + tc.name,
				Workload: tc.spec,
				Algos: []AlgoSpec{
					{"GL", GLBuilder(tc.obj, heap21)},
					{"PREP-Buffered", PREPBuilder(core.Buffered, sc.EpsSmall, tc.obj, heap21)},
					{"PREP-Durable", PREPBuilder(core.Durable, sc.EpsSmall, tc.obj, heap21)},
					{"CX-PUC", CXBuilder(tc.obj, heap21)},
					{"ONLL", ONLLBuilder(tc.obj, heap21)},
				},
			}
			for _, algo := range fig.Algos {
				res, err := VerifyPoint(fig, sc, algo, 4, 23, 100)
				if err != nil {
					t.Fatal(err)
				}
				if !res.OK {
					t.Fatalf("%s: %s", algo.Name, res)
				}
				t.Logf("%s: %s", algo.Name, res)
			}
		})
	}
}

func TestModelForRejectsUnknown(t *testing.T) {
	if _, err := ModelFor(workload.Spec{Kind: workload.Pairs, PushCode: uc.OpInsert}); err == nil {
		t.Fatal("expected error for unknown pair codes")
	}
	if m, err := ModelFor(workload.SetSpec(50, 10)); err != nil || m.Name() != "set" {
		t.Fatalf("set model: %v %v", m, err)
	}
}
