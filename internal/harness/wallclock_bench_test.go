package harness

import "testing"

// BenchmarkFig1aCell runs one fig1a experiment cell (PREP-V, 8 workers,
// small-scale duration) end to end: boot, prefill, measure. It is the
// harness-level wall-clock benchmark recorded in BENCH_wallclock.json, and
// its allocs/op is how the combiner batch-scratch and flusher-dedup reuse
// are held in place.
func BenchmarkFig1aCell(b *testing.B) {
	b.ReportAllocs()
	sc := SmallScale()
	fig := Catalog(sc)["fig1a"]
	algo := fig.Algos[0]
	for i := 0; i < b.N; i++ {
		if _, err := runPoint(fig, sc, algo, 8, 1); err != nil {
			b.Fatal(err)
		}
	}
}
