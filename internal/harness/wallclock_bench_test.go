package harness

import (
	"testing"

	"prepuc/internal/openloop"
)

// BenchmarkFig1aCell runs one fig1a experiment cell (PREP-V, 8 workers,
// small-scale duration) end to end: boot, prefill, measure. It is the
// harness-level wall-clock benchmark recorded in BENCH_wallclock.json, and
// its allocs/op is how the combiner batch-scratch and flusher-dedup reuse
// are held in place.
func BenchmarkFig1aCell(b *testing.B) {
	b.ReportAllocs()
	sc := SmallScale()
	fig := Catalog(sc)["fig1a"]
	algo := fig.Algos[0]
	for i := 0; i < b.N; i++ {
		if _, err := runPoint(fig, sc, algo, 8, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedServeCell runs one sharded serve cell end to end — a
// 4-machine PREP-Durable deployment absorbing the steady open-loop
// schedule serially (Jobs=1, so ns/op is the real per-cell host cost, not
// divided across cores). It is the wall-clock price of the sharded
// harness recorded in BENCH_wallclock.json and guarded by the CI
// bench-smoke at the same 2x threshold.
func BenchmarkShardedServeCell(b *testing.B) {
	b.ReportAllocs()
	cfg := ShardedServeConfig{
		Instances: 4, Route: "hash", TotalWorkers: 4,
		RingSize: 256, MaxBatch: 32, Batched: true, Seed: 5, Jobs: 1,
		Open: openloop.Config{
			Clients: 20_000, Keys: 1 << 12, KeySkew: 1.2, ReadPct: 80,
			Rate: 4e6, DurationNS: 400_000, ThinkNS: 20_000, Seed: 99,
		},
	}
	mk := func() *ServeDriver { return ServeDrivers(1, 64)[0] }
	for i := 0; i < b.N; i++ {
		if _, err := RunShardedServe(mk, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
