// Package history verifies crash-recovery outcomes against the correctness
// conditions of Izraelevitz et al.: durable linearizability (every completed
// operation survives) and buffered durable linearizability (the recovered
// state is a prefix of the completed history, with PREP-Buffered's ε+β−1
// loss bound).
//
// The verification protocol (used by the crash tests and cmd/crashtest):
// every worker inserts a per-worker sequence of distinct keys and records,
// host-side, how many of its operations completed (Execute returned) before
// the crash. Because one worker's operations enter the shared log in program
// order, the recovered key set restricted to one worker must be a prefix of
// that worker's insertion order — regardless of how workers interleave.
package history

import "fmt"

// Key encodes worker tid's i-th key. Workers must insert Key(tid, 0),
// Key(tid, 1), … in order.
func Key(tid int, i uint64) uint64 { return uint64(tid)<<32 | i }

// Report summarizes a crash-recovery check.
type Report struct {
	Workers          int
	Completed        uint64 // ops whose Execute returned before the crash
	Recovered        uint64 // of those, found after recovery
	LostCompleted    uint64 // completed but missing
	ExtraRecovered   uint64 // recovered beyond the completed count (in-flight ops)
	PrefixViolations int    // workers whose recovered keys are not a prefix
}

// Check evaluates recovered key presence against per-worker completion
// counts. keys[tid][i] reports whether Key(tid, i) survived recovery;
// keys[tid] should extend past completed[tid] to detect in-flight ops.
func Check(keys [][]bool, completed []uint64) Report {
	r := Report{Workers: len(keys)}
	for tid := range keys {
		r.Completed += completed[tid]
		firstMissing := uint64(len(keys[tid]))
		for i, ok := range keys[tid] {
			if !ok {
				firstMissing = uint64(i)
				break
			}
		}
		prefixOK := true
		for i := firstMissing; i < uint64(len(keys[tid])); i++ {
			if keys[tid][i] {
				prefixOK = false
				break
			}
		}
		if !prefixOK {
			r.PrefixViolations++
		}
		if completed[tid] > firstMissing {
			r.LostCompleted += completed[tid] - firstMissing
			r.Recovered += firstMissing
		} else {
			r.Recovered += completed[tid]
			r.ExtraRecovered += firstMissing - completed[tid]
		}
	}
	return r
}

// DurableOK reports whether the outcome satisfies durable linearizability.
func (r Report) DurableOK() bool {
	return r.LostCompleted == 0 && r.PrefixViolations == 0
}

// BufferedOK reports whether the outcome satisfies buffered durable
// linearizability with PREP-Buffered's loss bound for the given ε and β.
func (r Report) BufferedOK(epsilon, beta uint64) bool {
	return r.PrefixViolations == 0 && r.LostCompleted <= epsilon+beta-1
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("workers=%d completed=%d recovered=%d lost=%d extra=%d prefix-violations=%d",
		r.Workers, r.Completed, r.Recovered, r.LostCompleted, r.ExtraRecovered, r.PrefixViolations)
}

// EpochKey encodes worker tid's i-th key of crash epoch e (the workload run
// between the e-th and e+1-th crash of a multi-crash torture cycle). Epochs
// get disjoint key ranges so a later epoch's survivors can never masquerade
// as an earlier epoch's. Bounds: e < 2^16, tid < 2^16, i < 2^32.
func EpochKey(e int, tid int, i uint64) uint64 {
	return uint64(e)<<48 | uint64(tid)<<32 | i
}

// Epoch is one crash epoch's observation: per-worker completion counts
// recorded before that epoch's crash, and per-worker key survival probed
// after the FINAL recovery (keys[tid][i] ⇔ EpochKey(e, tid, i) survived).
type Epoch struct {
	Completed []uint64
	Keys      [][]bool
}

// MultiReport aggregates per-epoch reports across K consecutive crashes.
type MultiReport struct {
	Epochs []Report
}

// CheckEpochs evaluates a K-crash history: epochs[e] holds epoch e's
// observations, all probed against the state recovered after the last crash.
// Every epoch must independently satisfy the per-worker prefix property —
// an epoch-e key insert that completed cannot reappear after being lost, and
// losses within each epoch must be a per-worker suffix.
func CheckEpochs(epochs []Epoch) MultiReport {
	var mr MultiReport
	for _, e := range epochs {
		mr.Epochs = append(mr.Epochs, Check(e.Keys, e.Completed))
	}
	return mr
}

// DurableOK reports durable linearizability across every epoch: no completed
// operation of any epoch is missing from the final recovered state.
func (mr MultiReport) DurableOK() bool {
	for _, r := range mr.Epochs {
		if !r.DurableOK() {
			return false
		}
	}
	return true
}

// BufferedOK reports buffered durable linearizability across K crashes: each
// epoch independently loses at most a suffix of ε+β−1 completed operations,
// which bounds the total loss by K·(ε+β−1).
func (mr MultiReport) BufferedOK(epsilon, beta uint64) bool {
	for _, r := range mr.Epochs {
		if !r.BufferedOK(epsilon, beta) {
			return false
		}
	}
	return true
}

// TotalLost sums lost completed operations across epochs (≤ K·(ε+β−1) when
// BufferedOK holds).
func (mr MultiReport) TotalLost() uint64 {
	var n uint64
	for _, r := range mr.Epochs {
		n += r.LostCompleted
	}
	return n
}

// String renders one line per epoch.
func (mr MultiReport) String() string {
	s := ""
	for e, r := range mr.Epochs {
		if e > 0 {
			s += "; "
		}
		s += fmt.Sprintf("epoch%d: %s", e, r.String())
	}
	return s
}
