package history

import "testing"

func mk(pattern []bool) [][]bool { return [][]bool{pattern} }

func TestAllCompletedRecovered(t *testing.T) {
	r := Check(mk([]bool{true, true, true, false, false}), []uint64{3})
	if !r.DurableOK() {
		t.Errorf("expected durable OK: %s", r)
	}
	if r.Recovered != 3 || r.LostCompleted != 0 {
		t.Errorf("report %s", r)
	}
}

func TestLossCounted(t *testing.T) {
	r := Check(mk([]bool{true, false, false, false, false}), []uint64{4})
	if r.DurableOK() {
		t.Error("lost ops but durable OK")
	}
	if r.LostCompleted != 3 {
		t.Errorf("lost = %d, want 3", r.LostCompleted)
	}
	if !r.BufferedOK(4, 1) {
		t.Error("loss 3 within ε+β−1 = 4 should pass buffered")
	}
	if r.BufferedOK(2, 1) {
		t.Error("loss 3 beyond ε+β−1 = 2 should fail buffered")
	}
}

func TestPrefixViolationDetected(t *testing.T) {
	r := Check(mk([]bool{true, false, true}), []uint64{3})
	if r.PrefixViolations != 1 {
		t.Errorf("prefix violations = %d, want 1", r.PrefixViolations)
	}
	if r.DurableOK() || r.BufferedOK(100, 100) {
		t.Error("prefix violation must fail both conditions")
	}
}

func TestExtraRecoveredInFlight(t *testing.T) {
	// 2 completed, 4 recovered: the 2 extra were in flight — legal.
	r := Check(mk([]bool{true, true, true, true, false}), []uint64{2})
	if !r.DurableOK() {
		t.Errorf("in-flight extras must not violate durability: %s", r)
	}
	if r.ExtraRecovered != 2 {
		t.Errorf("extra = %d, want 2", r.ExtraRecovered)
	}
}

func TestMultiWorkerAggregation(t *testing.T) {
	keys := [][]bool{
		{true, true, false, false},
		{true, false, false, false},
	}
	r := Check(keys, []uint64{2, 3})
	if r.Completed != 5 || r.Recovered != 3 || r.LostCompleted != 2 {
		t.Errorf("report %s", r)
	}
	if r.Workers != 2 {
		t.Errorf("workers = %d", r.Workers)
	}
}

func TestKeyEncoding(t *testing.T) {
	if Key(3, 7) != 3<<32|7 {
		t.Error("key encoding changed")
	}
	if Key(0, 5) == Key(1, 5) {
		t.Error("keys collide across workers")
	}
}

func TestEpochKeyEncoding(t *testing.T) {
	if EpochKey(0, 3, 7) != Key(3, 7) {
		t.Error("epoch 0 must coincide with the single-crash encoding")
	}
	if EpochKey(2, 3, 7) != 2<<48|3<<32|7 {
		t.Error("epoch key encoding changed")
	}
	if EpochKey(1, 0, 5) == EpochKey(2, 0, 5) {
		t.Error("keys collide across epochs")
	}
}

func TestCheckEpochsDurable(t *testing.T) {
	// K=2: every completed op of both epochs survived the final recovery.
	mr := CheckEpochs([]Epoch{
		{Completed: []uint64{3}, Keys: mk([]bool{true, true, true, false})},
		{Completed: []uint64{2}, Keys: mk([]bool{true, true, false, false})},
	})
	if !mr.DurableOK() {
		t.Errorf("expected durable OK: %s", mr)
	}
	if mr.TotalLost() != 0 {
		t.Errorf("total lost = %d, want 0", mr.TotalLost())
	}
}

func TestCheckEpochsPerEpochBound(t *testing.T) {
	// K=3, ε+β−1 = 2 per epoch: each epoch loses exactly 2 — within the
	// per-epoch bound, so the total K·(ε+β−1) = 6 bound holds too.
	mr := CheckEpochs([]Epoch{
		{Completed: []uint64{4}, Keys: mk([]bool{true, true, false, false})},
		{Completed: []uint64{3}, Keys: mk([]bool{true, false, false, false})},
		{Completed: []uint64{2}, Keys: mk([]bool{false, false, false, false})},
	})
	if mr.DurableOK() {
		t.Error("lost ops but durable OK")
	}
	if !mr.BufferedOK(2, 1) {
		t.Errorf("per-epoch loss 2 within ε+β−1 = 2 should pass: %s", mr)
	}
	if mr.TotalLost() != 6 {
		t.Errorf("total lost = %d, want 6", mr.TotalLost())
	}
	// Concentrating 3 losses in one epoch breaks the per-epoch bound even
	// though the total stays below K·(ε+β−1).
	mr = CheckEpochs([]Epoch{
		{Completed: []uint64{4}, Keys: mk([]bool{true, false, false, false})},
		{Completed: []uint64{3}, Keys: mk([]bool{true, true, true, false})},
		{Completed: []uint64{2}, Keys: mk([]bool{true, true, false, false})},
	})
	if mr.BufferedOK(2, 1) {
		t.Errorf("epoch loss 3 beyond ε+β−1 = 2 should fail: %s", mr)
	}
}

func TestCheckEpochsPrefixViolation(t *testing.T) {
	// A key resurfacing after a hole in ANY epoch fails both conditions.
	mr := CheckEpochs([]Epoch{
		{Completed: []uint64{2}, Keys: mk([]bool{true, true, false})},
		{Completed: []uint64{3}, Keys: mk([]bool{true, false, true})},
	})
	if mr.DurableOK() || mr.BufferedOK(100, 100) {
		t.Errorf("prefix violation in epoch 1 must fail both conditions: %s", mr)
	}
}
