package history

import "testing"

func mk(pattern []bool) [][]bool { return [][]bool{pattern} }

func TestAllCompletedRecovered(t *testing.T) {
	r := Check(mk([]bool{true, true, true, false, false}), []uint64{3})
	if !r.DurableOK() {
		t.Errorf("expected durable OK: %s", r)
	}
	if r.Recovered != 3 || r.LostCompleted != 0 {
		t.Errorf("report %s", r)
	}
}

func TestLossCounted(t *testing.T) {
	r := Check(mk([]bool{true, false, false, false, false}), []uint64{4})
	if r.DurableOK() {
		t.Error("lost ops but durable OK")
	}
	if r.LostCompleted != 3 {
		t.Errorf("lost = %d, want 3", r.LostCompleted)
	}
	if !r.BufferedOK(4, 1) {
		t.Error("loss 3 within ε+β−1 = 4 should pass buffered")
	}
	if r.BufferedOK(2, 1) {
		t.Error("loss 3 beyond ε+β−1 = 2 should fail buffered")
	}
}

func TestPrefixViolationDetected(t *testing.T) {
	r := Check(mk([]bool{true, false, true}), []uint64{3})
	if r.PrefixViolations != 1 {
		t.Errorf("prefix violations = %d, want 1", r.PrefixViolations)
	}
	if r.DurableOK() || r.BufferedOK(100, 100) {
		t.Error("prefix violation must fail both conditions")
	}
}

func TestExtraRecoveredInFlight(t *testing.T) {
	// 2 completed, 4 recovered: the 2 extra were in flight — legal.
	r := Check(mk([]bool{true, true, true, true, false}), []uint64{2})
	if !r.DurableOK() {
		t.Errorf("in-flight extras must not violate durability: %s", r)
	}
	if r.ExtraRecovered != 2 {
		t.Errorf("extra = %d, want 2", r.ExtraRecovered)
	}
}

func TestMultiWorkerAggregation(t *testing.T) {
	keys := [][]bool{
		{true, true, false, false},
		{true, false, false, false},
	}
	r := Check(keys, []uint64{2, 3})
	if r.Completed != 5 || r.Recovered != 3 || r.LostCompleted != 2 {
		t.Errorf("report %s", r)
	}
	if r.Workers != 2 {
		t.Errorf("workers = %d", r.Workers)
	}
}

func TestKeyEncoding(t *testing.T) {
	if Key(3, 7) != 3<<32|7 {
		t.Error("key encoding changed")
	}
	if Key(0, 5) == Key(1, 5) {
		t.Error("keys collide across workers")
	}
}
