package history

// Metamorphic properties of Check/CheckEpochs: relations between a check's
// verdict on an outcome and its verdict on a systematically transformed
// version of the same outcome. These do not need ground truth for any
// single input — only that the transformation provably should (or should
// not) change the answer.

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genOutcome builds a random prefix-shaped recovery outcome: per worker a
// completion count and a survivor prefix, with some probe slack past both.
func genOutcome(rng *rand.Rand, workers int) (keys [][]bool, completed []uint64) {
	keys = make([][]bool, workers)
	completed = make([]uint64, workers)
	for tid := 0; tid < workers; tid++ {
		completed[tid] = uint64(rng.Intn(48))
		prefix := uint64(rng.Intn(48))
		n := completed[tid]
		if prefix > n {
			n = prefix
		}
		keys[tid] = make([]bool, n+uint64(rng.Intn(8)))
		for i := uint64(0); i < prefix; i++ {
			keys[tid][i] = true
		}
	}
	return keys, completed
}

func reportsEqual(a, b Report) bool { return a == b }

// Metamorphic relation: the check is symmetric in workers. Permuting the
// worker order leaves every aggregate of the report unchanged.
func TestCheckWorkerPermutationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		workers := 1 + rng.Intn(6)
		keys, completed := genOutcome(rng, workers)
		base := Check(keys, completed)

		perm := rng.Perm(workers)
		pk := make([][]bool, workers)
		pc := make([]uint64, workers)
		for i, j := range perm {
			pk[i], pc[i] = keys[j], completed[j]
		}
		return reportsEqual(base, Check(pk, pc))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Metamorphic relation: shrinking the probe window never manufactures loss.
// Truncating any worker's key observations to a length still covering its
// completion count cannot turn a passing report into LostCompleted > 0 —
// the probe slack beyond the completed count only detects in-flight
// survivors, it never feeds the loss accounting.
func TestCheckProbeTruncationNeverAddsLoss(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		workers := 1 + rng.Intn(6)
		keys, completed := genOutcome(rng, workers)
		base := Check(keys, completed)

		cut := make([][]bool, workers)
		for tid := range keys {
			lo, hi := completed[tid], uint64(len(keys[tid]))
			n := lo
			if hi > lo {
				n += uint64(rng.Int63n(int64(hi-lo) + 1))
			}
			cut[tid] = keys[tid][:n]
		}
		trunc := Check(cut, completed)
		if trunc.LostCompleted > base.LostCompleted {
			return false
		}
		return !base.DurableOK() || trunc.DurableOK()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Metamorphic relation: weakening the completion evidence weakens the
// obligation. Lowering any worker's completed count (claiming fewer ops
// returned before the crash) never increases LostCompleted, so a passing
// report stays passing.
func TestCheckCompletedMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		workers := 1 + rng.Intn(6)
		keys, completed := genOutcome(rng, workers)
		base := Check(keys, completed)

		weaker := make([]uint64, workers)
		for tid, c := range completed {
			if c > 0 {
				weaker[tid] = uint64(rng.Int63n(int64(c) + 1))
			}
		}
		w := Check(keys, weaker)
		if w.LostCompleted > base.LostCompleted {
			return false
		}
		return !base.DurableOK() || w.DurableOK()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// genEpochs builds a random multi-crash history.
func genEpochs(rng *rand.Rand) []Epoch {
	epochs := make([]Epoch, 1+rng.Intn(4))
	for e := range epochs {
		workers := 1 + rng.Intn(4)
		keys, completed := genOutcome(rng, workers)
		epochs[e] = Epoch{Completed: completed, Keys: keys}
	}
	return epochs
}

// Metamorphic relation: epochs are judged independently, so reordering them
// permutes the per-epoch reports and leaves every aggregate verdict —
// DurableOK, BufferedOK at any bound, TotalLost — unchanged.
func TestCheckEpochsPermutationInvariant(t *testing.T) {
	f := func(seed int64, eps, beta uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		epochs := genEpochs(rng)
		base := CheckEpochs(epochs)

		perm := rng.Perm(len(epochs))
		shuffled := make([]Epoch, len(epochs))
		for i, j := range perm {
			shuffled[i] = epochs[j]
		}
		got := CheckEpochs(shuffled)
		for i, j := range perm {
			if !reportsEqual(got.Epochs[i], base.Epochs[j]) {
				return false
			}
		}
		e, b := uint64(eps%16)+1, uint64(beta%8)+1
		return got.DurableOK() == base.DurableOK() &&
			got.BufferedOK(e, b) == base.BufferedOK(e, b) &&
			got.TotalLost() == base.TotalLost()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Metamorphic relation: dropping a suffix of epochs never turns a passing
// multi-crash report into a failing one, and appending a clean epoch (all
// completed ops recovered, nothing beyond) to a passing history keeps it
// passing with TotalLost unchanged.
func TestCheckEpochsSuffixAndExtension(t *testing.T) {
	f := func(seed int64, eps, beta uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		epochs := genEpochs(rng)
		base := CheckEpochs(epochs)
		e, b := uint64(eps%16)+1, uint64(beta%8)+1

		cut := CheckEpochs(epochs[:rng.Intn(len(epochs)+1)])
		if base.DurableOK() && !cut.DurableOK() {
			return false
		}
		if base.BufferedOK(e, b) && !cut.BufferedOK(e, b) {
			return false
		}
		if cut.TotalLost() > base.TotalLost() {
			return false
		}

		n := uint64(rng.Intn(32))
		clean := make([]bool, n)
		for i := range clean {
			clean[i] = true
		}
		ext := CheckEpochs(append(append([]Epoch{}, epochs...),
			Epoch{Completed: []uint64{n}, Keys: [][]bool{clean}}))
		if base.DurableOK() != ext.DurableOK() {
			return false
		}
		if base.BufferedOK(e, b) != ext.BufferedOK(e, b) {
			return false
		}
		return ext.TotalLost() == base.TotalLost()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Metamorphic relation: the buffered verdict is monotone in both bound
// parameters — relaxing ε or β can only turn a failing verdict into a
// passing one, and durable linearizability implies every buffered bound.
func TestBufferedBoundMonotone(t *testing.T) {
	f := func(seed int64, eps, beta uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		mr := CheckEpochs(genEpochs(rng))
		e, b := uint64(eps%32)+1, uint64(beta%8)+1
		if mr.BufferedOK(e, b) && !mr.BufferedOK(e+1, b) {
			return false
		}
		if mr.BufferedOK(e, b) && !mr.BufferedOK(e, b+1) {
			return false
		}
		return !mr.DurableOK() || mr.BufferedOK(1, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
