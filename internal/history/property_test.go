package history

import (
	"testing"
	"testing/quick"
)

// Property: for any prefix-shaped recovery outcome, the report's accounting
// balances — recovered + lost = completed when the prefix is shorter than
// completion, and extras only appear beyond it — and the bound predicate is
// monotone in ε.
func TestCheckAccountingProperty(t *testing.T) {
	f := func(prefixSeed, completedSeed uint8) bool {
		prefix := uint64(prefixSeed % 64)
		completed := uint64(completedSeed % 64)
		n := prefix
		if completed > n {
			n = completed
		}
		keys := make([]bool, n+8)
		for i := uint64(0); i < prefix; i++ {
			keys[i] = true
		}
		r := Check([][]bool{keys}, []uint64{completed})
		if r.PrefixViolations != 0 {
			return false
		}
		if prefix >= completed {
			if r.LostCompleted != 0 || r.Recovered != completed || r.ExtraRecovered != prefix-completed {
				return false
			}
			if !r.DurableOK() {
				return false
			}
		} else {
			if r.Recovered != prefix || r.LostCompleted != completed-prefix {
				return false
			}
			if r.DurableOK() {
				return false
			}
		}
		// Monotonicity of the buffered bound in ε.
		okSmall := r.BufferedOK(1, 1)
		okLarge := r.BufferedOK(1<<20, 1)
		return (!okSmall || okLarge) && okLarge
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: any non-prefix pattern is flagged, regardless of where the hole
// sits.
func TestPrefixViolationProperty(t *testing.T) {
	f := func(holeSeed, tailSeed uint8) bool {
		hole := uint64(holeSeed%30) + 1
		tail := hole + 1 + uint64(tailSeed%30)
		keys := make([]bool, tail+1)
		for i := range keys {
			keys[i] = true
		}
		keys[hole] = false // hole with recovered keys after it
		r := Check([][]bool{keys}, []uint64{tail})
		return r.PrefixViolations == 1 && !r.DurableOK() && !r.BufferedOK(1<<30, 1<<30)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
