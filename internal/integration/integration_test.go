// Package integration cross-checks the universal constructions against each
// other and against sequential models:
//
//   - differential testing: a single worker drives the identical operation
//     stream through the global-lock UC (the trivially correct reference),
//     PREP-V, PREP-Buffered, PREP-Durable and CX-PUC; every response of
//     every system must match the reference exactly;
//   - commuting-workload equivalence: many workers inserting disjoint keys
//     must leave every system with the same final state regardless of the
//     linearization each one chose;
//   - crash-point sweeps: the same workload is crashed at a grid of event
//     indexes and every recovery must satisfy its system's correctness
//     condition.
package integration

import (
	"testing"

	"prepuc/internal/core"
	"prepuc/internal/cxpuc"
	"prepuc/internal/gluc"
	"prepuc/internal/history"
	"prepuc/internal/numa"
	"prepuc/internal/nvm"
	"prepuc/internal/onll"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
	"prepuc/internal/workload"
)

func topo() numa.Topology { return numa.Topology{Nodes: 2, ThreadsPerNode: 4} }

// sys is the common face of every construction under test.
type sys interface {
	Execute(t *sim.Thread, tid int, op uc.Op) uint64
}

type built struct {
	name string
	nsys *nvm.System
	s    sys
	prep *core.PREP // non-nil for PREP variants (persistence lifecycle)
}

// buildAll constructs every system around the same sequential object.
func buildAll(t *testing.T, factory uc.Factory, attacher uc.Attacher, seed int64, workers int) []built {
	t.Helper()
	var out []built
	add := func(name string, f func(th *sim.Thread, ns *nvm.System) (sys, *core.PREP, error)) {
		sch := sim.New(seed)
		ns := nvm.NewSystem(sch, nvm.Config{Costs: sim.UnitCosts()})
		var s sys
		var p *core.PREP
		var err error
		sch.Spawn("boot", 0, 0, func(th *sim.Thread) { s, p, err = f(th, ns) })
		sch.Run()
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		out = append(out, built{name, ns, s, p})
	}
	prepCfg := func(mode core.Mode) core.Config {
		return core.Config{
			Mode: mode, Topology: topo(), Workers: workers,
			LogSize: 512, Epsilon: 64,
			Factory: factory, Attacher: attacher, HeapWords: 1 << 21,
		}
	}
	add("GL", func(th *sim.Thread, ns *nvm.System) (sys, *core.PREP, error) {
		return gluc.New(th, ns, gluc.Config{Factory: factory, HeapWords: 1 << 21}), nil, nil
	})
	add("PREP-V", func(th *sim.Thread, ns *nvm.System) (sys, *core.PREP, error) {
		cfg := prepCfg(core.Volatile)
		cfg.Epsilon = 0
		p, err := core.New(th, ns, cfg)
		return p, p, err
	})
	add("PREP-Buffered", func(th *sim.Thread, ns *nvm.System) (sys, *core.PREP, error) {
		p, err := core.New(th, ns, prepCfg(core.Buffered))
		return p, p, err
	})
	add("PREP-Durable", func(th *sim.Thread, ns *nvm.System) (sys, *core.PREP, error) {
		p, err := core.New(th, ns, prepCfg(core.Durable))
		return p, p, err
	})
	add("CX-PUC", func(th *sim.Thread, ns *nvm.System) (sys, *core.PREP, error) {
		cx, err := cxpuc.New(th, ns, cxpuc.Config{
			Workers: workers, Factory: factory, Attacher: attacher,
			HeapWords: 1 << 21, QueueCapacity: 1 << 16, CapReplicas: 6,
		})
		return cx, nil, err
	})
	add("ONLL", func(th *sim.Thread, ns *nvm.System) (sys, *core.PREP, error) {
		o, err := onll.New(th, ns, onll.Config{
			Workers: workers, Factory: factory, HeapWords: 1 << 21, LogEntries: 1 << 13,
		})
		return o, nil, err
	})
	return out
}

// runSingle drives ops through one system on one worker and returns every
// response.
func runSingle(b built, seed int64, ops []uc.Op) []uint64 {
	sch := sim.New(seed)
	b.nsys.SetScheduler(sch)
	if b.prep != nil && b.prep.Config().Mode.Persistent() {
		b.prep.SpawnPersistence(0)
	}
	res := make([]uint64, len(ops))
	sch.Spawn("w", 0, 0, func(th *sim.Thread) {
		defer func() {
			if b.prep != nil && b.prep.Config().Mode.Persistent() {
				b.prep.StopPersistence(th)
			}
		}()
		for i, op := range ops {
			res[i] = b.s.Execute(th, 0, op)
		}
	})
	sch.Run()
	return res
}

// differential runs the same stream through every system and compares
// responses against the global-lock reference.
func differential(t *testing.T, factory uc.Factory, attacher uc.Attacher, ops []uc.Op, seed int64) {
	t.Helper()
	systems := buildAll(t, factory, attacher, seed, 1)
	ref := runSingle(systems[0], seed+100, ops)
	for _, b := range systems[1:] {
		got := runSingle(b, seed+100, ops)
		for i := range ops {
			if got[i] != ref[i] {
				t.Fatalf("%s response %d for %s(%d,%d): got %d, reference %d",
					b.name, i, uc.OpName(ops[i].Code), ops[i].A0, ops[i].A1, got[i], ref[i])
			}
		}
	}
}

func randomSetOps(seed int64, n int, keyRange uint64) []uc.Op {
	g := workload.NewGen(workload.SetSpec(40, keyRange), seed, 0)
	ops := make([]uc.Op, n)
	for i := range ops {
		ops[i] = g.Next()
	}
	return ops
}

func TestDifferentialHashMap(t *testing.T) {
	differential(t, seq.HashMapFactory(64), seq.HashMapAttacher, randomSetOps(1, 800, 100), 10)
}

func TestDifferentialRBTree(t *testing.T) {
	differential(t, seq.RBTreeFactory(), seq.RBTreeAttacher, randomSetOps(2, 800, 100), 20)
}

func TestDifferentialSkipList(t *testing.T) {
	differential(t, seq.SkipListFactory(), seq.SkipListAttacher, randomSetOps(3, 800, 100), 30)
}

func TestDifferentialListSet(t *testing.T) {
	differential(t, seq.ListSetFactory(), seq.ListSetAttacher, randomSetOps(4, 600, 60), 40)
}

func TestDifferentialStack(t *testing.T) {
	g := workload.NewGen(workload.PairsSpec(uc.OpPush, uc.OpPop, 0), 5, 0)
	ops := make([]uc.Op, 600)
	for i := range ops {
		ops[i] = g.Next()
	}
	differential(t, seq.StackFactory(), seq.StackAttacher, ops, 50)
}

func TestDifferentialPQueue(t *testing.T) {
	g := workload.NewGen(workload.PairsSpec(uc.OpEnqueue, uc.OpDeleteMin, 0), 6, 0)
	ops := make([]uc.Op, 600)
	for i := range ops {
		ops[i] = g.Next()
	}
	differential(t, seq.PQueueFactory(), seq.PQueueAttacher, ops, 60)
}

// TestCommutingWorkloadConverges runs 8 workers inserting disjoint keys on
// every system; all final states must agree.
func TestCommutingWorkloadConverges(t *testing.T) {
	const workers, per = 8, 40
	systems := buildAll(t, seq.HashMapFactory(64), seq.HashMapAttacher, 7, workers)
	var ref map[uint64]uint64
	for _, b := range systems {
		sch := sim.New(70)
		b.nsys.SetScheduler(sch)
		if b.prep != nil && b.prep.Config().Mode.Persistent() {
			b.prep.SpawnPersistence(0)
		}
		remaining := workers
		for tid := 0; tid < workers; tid++ {
			tid := tid
			sch.Spawn("w", topo().NodeOf(tid), 0, func(th *sim.Thread) {
				defer func() {
					remaining--
					if remaining == 0 && b.prep != nil && b.prep.Config().Mode.Persistent() {
						b.prep.StopPersistence(th)
					}
				}()
				for i := uint64(0); i < per; i++ {
					k := uint64(tid)*1000 + i
					b.s.Execute(th, tid, uc.Insert(k, k * 7))
				}
			})
		}
		sch.Run()

		state := map[uint64]uint64{}
		sch2 := sim.New(71)
		b.nsys.SetScheduler(sch2)
		sch2.Spawn("read", 0, 0, func(th *sim.Thread) {
			for tid := 0; tid < workers; tid++ {
				for i := uint64(0); i < per; i++ {
					k := uint64(tid)*1000 + i
					state[k] = b.s.Execute(th, 0, uc.Get(k))
				}
			}
		})
		sch2.Run()
		if ref == nil {
			ref = state
			continue
		}
		for k, v := range ref {
			if state[k] != v {
				t.Errorf("%s: key %d = %d, reference %d", b.name, k, state[k], v)
			}
		}
	}
}

// TestCrashPointSweep crashes PREP at a grid of event indexes and checks
// the correctness condition at every point — schedule-coverage for the
// recovery protocol.
func TestCrashPointSweep(t *testing.T) {
	const workers = 8
	beta := uint64(topo().ThreadsPerNode)
	for _, mode := range []core.Mode{core.Buffered, core.Durable} {
		cfg := core.Config{
			Mode: mode, Topology: topo(), Workers: workers,
			LogSize: 128, Epsilon: 32,
			Factory: seq.HashMapFactory(64), Attacher: seq.HashMapAttacher,
			HeapWords: 1 << 20,
		}
		for crashAt := uint64(5_000); crashAt <= 155_000; crashAt += 10_000 {
			bootSch := sim.New(int64(crashAt))
			ns := nvm.NewSystem(bootSch, nvm.Config{
				Costs: sim.UnitCosts(), BGFlushOneIn: 200, Seed: crashAt + 3,
			})
			var p *core.PREP
			var err error
			bootSch.Spawn("boot", 0, 0, func(th *sim.Thread) { p, err = core.New(th, ns, cfg) })
			bootSch.Run()
			if err != nil {
				t.Fatal(err)
			}
			sch := sim.New(int64(crashAt) + 1)
			sch.CrashAtEvent(crashAt)
			ns.SetScheduler(sch)
			p.SpawnPersistence(0)
			completed := make([]uint64, workers)
			for tid := 0; tid < workers; tid++ {
				tid := tid
				sch.Spawn("w", topo().NodeOf(tid), 0, func(th *sim.Thread) {
					defer func() {
						if r := recover(); r != nil && !sim.Crashed(r) {
							panic(r)
						}
					}()
					for i := uint64(0); ; i++ {
						p.Execute(th, tid, uc.Insert(history.Key(tid, i), i))
						completed[tid] = i + 1
					}
				})
			}
			sch.Run()
			if !sch.Frozen() {
				t.Fatalf("crashAt=%d did not crash", crashAt)
			}
			recSch := sim.New(int64(crashAt) + 2)
			recSys := ns.Recover(recSch)
			var rec *core.PREP
			recSch.Spawn("rec", 0, 0, func(th *sim.Thread) {
				rec, _, err = core.Recover(th, recSys, cfg)
			})
			recSch.Run()
			if err != nil {
				t.Fatalf("crashAt=%d recover: %v", crashAt, err)
			}
			keys := make([][]bool, workers)
			chkSch := sim.New(int64(crashAt) + 3)
			recSys.SetScheduler(chkSch)
			chkSch.Spawn("probe", 0, 0, func(th *sim.Thread) {
				for tid := 0; tid < workers; tid++ {
					n := completed[tid] + 16
					keys[tid] = make([]bool, n)
					for i := uint64(0); i < n; i++ {
						keys[tid][i] = rec.Execute(th, 0, uc.Get(history.Key(tid, i))) != uc.NotFound
					}
				}
			})
			chkSch.Run()
			rep := history.Check(keys, completed)
			switch mode {
			case core.Durable:
				if !rep.DurableOK() {
					t.Errorf("%s crashAt=%d: %s", mode, crashAt, rep)
				}
			case core.Buffered:
				if !rep.BufferedOK(cfg.Epsilon, beta) {
					t.Errorf("%s crashAt=%d: %s", mode, crashAt, rep)
				}
			}
		}
	}
}

// TestDurableRecoveryPreservesEveryStructure round-trips each sequential
// structure through a clean crash (all operations completed) and compares
// dumps.
func TestDurableRecoveryPreservesEveryStructure(t *testing.T) {
	cases := []struct {
		name     string
		factory  uc.Factory
		attacher uc.Attacher
		ops      []uc.Op
	}{
		{"hashmap", seq.HashMapFactory(32), seq.HashMapAttacher, randomSetOps(11, 400, 80)},
		{"rbtree", seq.RBTreeFactory(), seq.RBTreeAttacher, randomSetOps(12, 400, 80)},
		{"skiplist", seq.SkipListFactory(), seq.SkipListAttacher, randomSetOps(13, 400, 80)},
		{"listset", seq.ListSetFactory(), seq.ListSetAttacher, randomSetOps(14, 300, 50)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := core.Config{
				Mode: core.Durable, Topology: topo(), Workers: 4,
				LogSize: 1 << 12, Epsilon: 128,
				Factory: tc.factory, Attacher: tc.attacher, HeapWords: 1 << 21,
			}
			bootSch := sim.New(99)
			ns := nvm.NewSystem(bootSch, nvm.Config{Costs: sim.UnitCosts()})
			var p *core.PREP
			var err error
			bootSch.Spawn("boot", 0, 0, func(th *sim.Thread) { p, err = core.New(th, ns, cfg) })
			bootSch.Run()
			if err != nil {
				t.Fatal(err)
			}
			var before [][3]uint64
			sch := sim.New(100)
			ns.SetScheduler(sch)
			p.SpawnPersistence(0)
			sch.Spawn("w", 0, 0, func(th *sim.Thread) {
				defer p.StopPersistence(th)
				for _, op := range tc.ops {
					p.Execute(th, 0, op)
				}
			})
			sch.Run()
			// Dump the reference state through a read snapshot: rebuild from
			// responses of gets over the key range.
			sch1b := sim.New(101)
			ns.SetScheduler(sch1b)
			sch1b.Spawn("snap", 0, 0, func(th *sim.Thread) {
				for k := uint64(0); k < 100; k++ {
					v := p.Execute(th, 0, uc.Get(k))
					before = append(before, [3]uint64{k, v, 0})
				}
			})
			sch1b.Run()

			recSch := sim.New(102)
			recSys := ns.Recover(recSch)
			var rec *core.PREP
			recSch.Spawn("rec", 0, 0, func(th *sim.Thread) {
				rec, _, err = core.Recover(th, recSys, cfg)
			})
			recSch.Run()
			if err != nil {
				t.Fatal(err)
			}
			chkSch := sim.New(103)
			recSys.SetScheduler(chkSch)
			chkSch.Spawn("chk", 0, 0, func(th *sim.Thread) {
				for _, kv := range before {
					if got := rec.Execute(th, 0, uc.Get(kv[0])); got != kv[1] {
						t.Errorf("key %d: recovered %d, want %d", kv[0], got, kv[1])
					}
				}
			})
			chkSch.Run()
		})
	}
}
