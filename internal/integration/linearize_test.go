package integration

// Crash-aware linearizability of the persistent constructions: every system
// runs a recorded mixed workload, crashes mid-flight under the `targeted`
// fault adversary, recovers, and the recorded invoke/response history plus
// the probed recovered state must satisfy the system's durable-
// linearizability condition (buffered for PREP-Buffered, with the ε+β−1
// completed-loss allowance). Two crash/recover cycles chain — each epoch's
// probed state is the next epoch's initial state — followed by a crash-free
// epoch checked strictly.

import (
	"fmt"
	"testing"

	"prepuc/internal/core"
	"prepuc/internal/cxpuc"
	"prepuc/internal/fault"
	"prepuc/internal/linearize"
	"prepuc/internal/nvm"
	"prepuc/internal/onll"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/soft"
	"prepuc/internal/uc"
	"prepuc/internal/workload"
)

const (
	linWorkers = 4
	linEpsilon = 32
	linLogSize = 256
	// linAllowance is PREP-Buffered's completed-loss budget ε+β−1 with
	// β = ThreadsPerNode of topo() at linWorkers workers.
	linAllowance = linEpsilon + linWorkers/2 - 1
)

// linDriver adapts one persistent construction to the recorded
// crash/recover epochs.
type linDriver struct {
	name     string
	buffered bool
	pairs    bool // supports the container workloads (SOFT is set-only)
	boot     func(t *sim.Thread, sys *nvm.System) error
	spawnAux func()              // respawn background threads on the current scheduler
	stop     func(t *sim.Thread) // ask them to exit; may be nil
	recov    func(t *sim.Thread, recSys *nvm.System) error
	exec     func(t *sim.Thread, tid int, op uc.Op) uint64
}

func linPREPDriver(mode core.Mode) func(factory uc.Factory, attacher uc.Attacher) *linDriver {
	return func(factory uc.Factory, attacher uc.Attacher) *linDriver {
		cfg := core.Config{
			Mode: mode, Topology: topo(), Workers: linWorkers,
			LogSize: linLogSize, Epsilon: linEpsilon,
			Factory: factory, Attacher: attacher, HeapWords: 1 << 21,
		}
		name := "PREP-Durable"
		if mode == core.Buffered {
			name = "PREP-Buffered"
		}
		d := &linDriver{name: name, buffered: mode == core.Buffered, pairs: true}
		var cur *core.PREP
		d.boot = func(t *sim.Thread, sys *nvm.System) error {
			p, err := core.New(t, sys, cfg)
			cur = p
			return err
		}
		d.spawnAux = func() { cur.SpawnPersistence(0) }
		d.stop = func(t *sim.Thread) { cur.StopPersistence(t) }
		d.recov = func(t *sim.Thread, recSys *nvm.System) error {
			rec, _, err := core.Recover(t, recSys, cfg)
			if err == nil {
				cur = rec
			}
			return err
		}
		d.exec = func(t *sim.Thread, tid int, op uc.Op) uint64 { return cur.Execute(t, tid, op) }
		return d
	}
}

func linCXDriver(factory uc.Factory, attacher uc.Attacher) *linDriver {
	cfg := cxpuc.Config{
		Workers: linWorkers, Factory: factory, Attacher: attacher,
		HeapWords: 1 << 20, QueueCapacity: 1 << 18, CapReplicas: 8,
	}
	d := &linDriver{name: "CX-PUC", pairs: true}
	var cur *cxpuc.CX
	d.boot = func(t *sim.Thread, sys *nvm.System) error {
		cx, err := cxpuc.New(t, sys, cfg)
		cur = cx
		return err
	}
	d.recov = func(t *sim.Thread, recSys *nvm.System) error {
		rec, err := cxpuc.Recover(t, recSys, cfg)
		if err == nil {
			cur = rec
		}
		return err
	}
	d.exec = func(t *sim.Thread, tid int, op uc.Op) uint64 { return cur.Execute(t, tid, op) }
	return d
}

func linONLLDriver(factory uc.Factory, _ uc.Attacher) *linDriver {
	cfg := onll.Config{
		Workers: linWorkers, Factory: factory, HeapWords: 1 << 21, LogEntries: 1 << 13,
	}
	d := &linDriver{name: "ONLL", pairs: true}
	var cur *onll.ONLL
	d.boot = func(t *sim.Thread, sys *nvm.System) error {
		o, err := onll.New(t, sys, cfg)
		cur = o
		return err
	}
	d.recov = func(t *sim.Thread, recSys *nvm.System) error {
		rec, _, err := onll.Recover(t, recSys, cfg)
		if err == nil {
			cur = rec
		}
		return err
	}
	d.exec = func(t *sim.Thread, tid int, op uc.Op) uint64 { return cur.Execute(t, tid, op) }
	return d
}

func linSOFTDriver(uc.Factory, uc.Attacher) *linDriver {
	cfg := soft.Config{Buckets: 256, VolatileWords: 1 << 20, PersistentWords: 1 << 20}
	d := &linDriver{name: "SOFT"}
	var cur *soft.Soft
	d.boot = func(t *sim.Thread, sys *nvm.System) error {
		cur = soft.New(t, sys, cfg)
		return nil
	}
	d.recov = func(t *sim.Thread, recSys *nvm.System) error {
		rec, _, err := soft.Recover(t, recSys, cfg)
		if err == nil {
			cur = rec
		}
		return err
	}
	d.exec = func(t *sim.Thread, tid int, op uc.Op) uint64 { return cur.Execute(t, tid, op) }
	return d
}

// linDrivers enumerates the five persistent systems.
func linDrivers(factory uc.Factory, attacher uc.Attacher) []*linDriver {
	return []*linDriver{
		linPREPDriver(core.Durable)(factory, attacher),
		linPREPDriver(core.Buffered)(factory, attacher),
		linCXDriver(factory, attacher),
		linONLLDriver(factory, attacher),
		linSOFTDriver(factory, attacher),
	}
}

// runLinEpochs drives a system through crashes crash/recover cycles and one
// crash-free tail epoch, checking every epoch's recorded history against
// the model. Crashing epochs use the targeted fault adversary, sweeping the
// dropped-line index with the epoch.
func runLinEpochs(t *testing.T, d *linDriver, model linearize.Model, spec workload.Spec,
	seed int64, crashes int, crashAt uint64, tailOps int) {
	t.Helper()
	bootSch := sim.New(seed)
	sys := nvm.NewSystem(bootSch, nvm.Config{
		Costs: sim.UnitCosts(), BGFlushOneIn: 128, Seed: uint64(seed) + 7,
	})
	var err error
	bootSch.Spawn("boot", 0, 0, func(th *sim.Thread) { err = d.boot(th, sys) })
	bootSch.Run()
	if err != nil {
		t.Fatalf("%s boot: %v", d.name, err)
	}

	cur := sys
	init := model.Empty()
	totalOps := 0
	for epoch := 0; epoch <= crashes; epoch++ {
		crashing := epoch < crashes
		pol, perr := fault.Parse(fmt.Sprintf("targeted=%d", epoch), uint64(seed)+uint64(epoch)*13)
		if perr != nil {
			t.Fatal(perr)
		}
		cur.SetFaultPolicy(pol)

		sch := sim.New(seed + int64(epoch)*29 + 1)
		if crashing {
			sch.CrashAtEvent(crashAt + uint64(epoch)*7_777)
		}
		cur.SetScheduler(sch)
		if d.spawnAux != nil {
			d.spawnAux()
		}
		rec := linearize.NewRecorder(linWorkers)
		remaining := linWorkers
		for tid := 0; tid < linWorkers; tid++ {
			tid := tid
			sch.Spawn("worker", topo().NodeOf(tid), 0, func(th *sim.Thread) {
				defer func() {
					if r := recover(); r != nil && !sim.Crashed(r) {
						panic(r)
					}
					remaining--
					if remaining == 0 && !sch.Frozen() && d.spawnAux != nil {
						// Crash-free epoch: the last worker out stops the
						// background threads (a crash just unwinds them).
						d.stopAux(th)
					}
				}()
				gen := workload.NewGen(spec, seed+int64(epoch)*101+17, tid)
				for i := 0; crashing || i < tailOps; i++ {
					op := gen.Next()
					rec.Exec(th, tid, op, func() uint64 { return d.exec(th, tid, op) })
				}
			})
		}
		sch.Run()

		if crashing {
			if !sch.Frozen() {
				t.Fatalf("%s epoch %d: crash at %d never fired", d.name, epoch, crashAt)
			}
			for attempt := 0; ; attempt++ {
				if attempt > 8 {
					t.Fatalf("%s epoch %d: recovery did not complete", d.name, epoch)
				}
				recSch := sim.New(seed + int64(epoch)*29 + 2 + int64(attempt)*17)
				cur = cur.Recover(recSch)
				recSch.Spawn("recover", 0, 0, func(th *sim.Thread) { err = d.recov(th, cur) })
				recSch.Run()
				if recSch.Frozen() {
					continue
				}
				if err != nil {
					t.Fatalf("%s epoch %d recover: %v", d.name, epoch, err)
				}
				break
			}
		}

		recovered := linProbe(t, d, cur, spec, seed+int64(epoch)*29+900)
		opt := linearize.Options{}
		if crashing && d.buffered {
			opt = linearize.Options{Buffered: true, Allowance: linAllowance}
		}
		res := linearize.CheckEpoch(model, init, rec.Ops(), recovered, opt)
		if !res.OK {
			t.Fatalf("%s epoch %d (crashing=%v): %s", d.name, epoch, crashing, res)
		}
		totalOps += res.Ops
		if !crashing && res.Lost != 0 {
			t.Fatalf("%s crash-free epoch lost %d completed ops", d.name, res.Lost)
		}
		if spec.Kind == workload.Pairs {
			// The probe drained the container: the next epoch starts empty.
			init = model.Empty()
		} else {
			init = recovered
		}
	}
	t.Logf("%s: %d recorded ops over %d crash/recover cycles linearizable", d.name, totalOps, crashes)
}

// stopAux stops PREP's persistence thread; other systems have no background
// threads.
func (d *linDriver) stopAux(t *sim.Thread) {
	if d.stop != nil {
		d.stop(t)
	}
}

// linProbe observes the recovered state on a fresh timeline: key-by-key
// Gets for sets, a destructive drain for containers (drain updates need the
// background threads alive on the PREP variants).
func linProbe(t *testing.T, d *linDriver, cur *nvm.System, spec workload.Spec, seed int64) any {
	t.Helper()
	sch := sim.New(seed)
	cur.SetScheduler(sch)
	if d.spawnAux != nil {
		d.spawnAux()
	}
	var state any
	sch.Spawn("probe", 0, 0, func(th *sim.Thread) {
		defer func() {
			if d.spawnAux != nil {
				d.stopAux(th)
			}
		}()
		switch spec.Kind {
		case workload.Set:
			m := map[uint64]uint64{}
			for k := uint64(0); k < spec.KeyRange; k++ {
				if v := d.exec(th, 0, uc.Get(k)); v != uc.NotFound {
					m[k] = v
				}
			}
			state = m
		case workload.Pairs:
			var vs []uint64
			for {
				v := d.exec(th, 0, uc.Op{Code: spec.PopCode})
				if v == uc.NotFound {
					break
				}
				vs = append(vs, v)
			}
			if spec.PushCode == uc.OpPush { // stack drains top-first
				for i, j := 0, len(vs)-1; i < j; i, j = i+1, j-1 {
					vs[i], vs[j] = vs[j], vs[i]
				}
			}
			if vs == nil {
				vs = []uint64{}
			}
			state = vs
		}
	})
	sch.Run()
	return state
}

// TestLinearizeCrashRecoverSet chains two targeted-fault crash/recover
// cycles plus a crash-free epoch of the mixed set workload on all five
// persistent systems and checks durable linearizability of every epoch.
func TestLinearizeCrashRecoverSet(t *testing.T) {
	spec := workload.SetSpec(30, 64)
	spec.Prefill = 0
	for i, d := range linDrivers(seq.HashMapFactory(64), seq.HashMapAttacher) {
		d := d
		seed := int64(9100 + i*500)
		t.Run(d.name, func(t *testing.T) {
			runLinEpochs(t, d, linearize.SetModel(), spec, seed, 2, 18_000, 80)
		})
	}
}

// TestLinearizeCrashRecoverPairs does the same over the container
// workloads on the universal constructions (SOFT is a fixed-function
// hashtable and has no container form).
func TestLinearizeCrashRecoverPairs(t *testing.T) {
	cases := []struct {
		name     string
		spec     workload.Spec
		model    linearize.Model
		factory  uc.Factory
		attacher uc.Attacher
	}{
		{"queue", workload.PairsSpec(uc.OpEnqueue, uc.OpDequeue, 0), linearize.QueueModel(), seq.QueueFactory(), seq.QueueAttacher},
		{"stack", workload.PairsSpec(uc.OpPush, uc.OpPop, 0), linearize.StackModel(), seq.StackFactory(), seq.StackAttacher},
		{"pqueue", workload.PairsSpec(uc.OpEnqueue, uc.OpDeleteMin, 0), linearize.PQueueModel(), seq.PQueueFactory(), seq.PQueueAttacher},
	}
	for ci, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for i, d := range linDrivers(tc.factory, tc.attacher) {
				if !d.pairs {
					continue
				}
				d := d
				seed := int64(31000 + ci*2000 + i*500)
				t.Run(d.name, func(t *testing.T) {
					runLinEpochs(t, d, tc.model, tc.spec, seed, 2, 14_000, 60)
				})
			}
		})
	}
}
