package integration

import (
	"sort"
	"testing"

	"prepuc/internal/core"
	"prepuc/internal/cxpuc"
	"prepuc/internal/fault"
	"prepuc/internal/history"
	"prepuc/internal/nvm"
	"prepuc/internal/onll"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// sortTriples orders a flat (code, a0, a1) dump so states can be compared
// across recovery generations (hashmap chains reverse order under Dump/
// Execute cloning, so raw dump order is not canonical).
func sortTriples(d []uint64) [][3]uint64 {
	out := make([][3]uint64, 0, len(d)/3)
	for i := 0; i+2 < len(d); i += 3 {
		out = append(out, [3]uint64{d[i], d[i+1], d[i+2]})
	}
	sort.Slice(out, func(a, b int) bool {
		x, y := out[a], out[b]
		if x[0] != y[0] {
			return x[0] < y[0]
		}
		if x[1] != y[1] {
			return x[1] < y[1]
		}
		return x[2] < y[2]
	})
	return out
}

func equalTriples(a, b [][3]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDoubleRecoveryIdempotent checks, for every persistent construction:
// recover, crash again IMMEDIATELY (no operation in between), recover again
// — the two recovered states must be identical. The second crash runs under
// DropAll, so any line the first recovery left unfenced is lost: a
// difference between the dumps means recovery's committed state was not
// fully persisted before the commit record flipped.
func TestDoubleRecoveryIdempotent(t *testing.T) {
	const workers, crashAt = 4, 40_000

	type instance struct {
		dump func(th *sim.Thread) []uint64
	}
	cases := []struct {
		name string
		// build boots the system, returning a workload driver.
		build func(t *testing.T, th *sim.Thread, ns *nvm.System) sys
		// recover reruns recovery on a recovered nvm system with the BOOT
		// configuration (the commit record, not the caller, must resolve the
		// source generation) and returns the state dump hook.
		recover func(t *testing.T, th *sim.Thread, ns *nvm.System) instance
	}{
		{
			name: "PREP-Durable",
			build: func(t *testing.T, th *sim.Thread, ns *nvm.System) sys {
				p, err := core.New(th, ns, prepIdemCfg(core.Durable, workers))
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			recover: func(t *testing.T, th *sim.Thread, ns *nvm.System) instance {
				p, _, err := core.Recover(th, ns, prepIdemCfg(core.Durable, workers))
				if err != nil {
					t.Fatal(err)
				}
				return instance{dump: p.DumpState}
			},
		},
		{
			name: "PREP-Buffered",
			build: func(t *testing.T, th *sim.Thread, ns *nvm.System) sys {
				p, err := core.New(th, ns, prepIdemCfg(core.Buffered, workers))
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			recover: func(t *testing.T, th *sim.Thread, ns *nvm.System) instance {
				p, _, err := core.Recover(th, ns, prepIdemCfg(core.Buffered, workers))
				if err != nil {
					t.Fatal(err)
				}
				return instance{dump: p.DumpState}
			},
		},
		{
			name: "CX-PUC",
			build: func(t *testing.T, th *sim.Thread, ns *nvm.System) sys {
				cx, err := cxpuc.New(th, ns, cxIdemCfg(workers))
				if err != nil {
					t.Fatal(err)
				}
				return cx
			},
			recover: func(t *testing.T, th *sim.Thread, ns *nvm.System) instance {
				cx, err := cxpuc.Recover(th, ns, cxIdemCfg(workers))
				if err != nil {
					t.Fatal(err)
				}
				return instance{dump: cx.DumpState}
			},
		},
		{
			name: "ONLL",
			build: func(t *testing.T, th *sim.Thread, ns *nvm.System) sys {
				o, err := onll.New(th, ns, onllIdemCfg(workers))
				if err != nil {
					t.Fatal(err)
				}
				return o
			},
			recover: func(t *testing.T, th *sim.Thread, ns *nvm.System) instance {
				o, _, err := onll.Recover(th, ns, onllIdemCfg(workers))
				if err != nil {
					t.Fatal(err)
				}
				return instance{dump: o.DumpState}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bootSch := sim.New(17)
			ns := nvm.NewSystem(bootSch, nvm.Config{Costs: sim.UnitCosts(), BGFlushOneIn: 256, Seed: 23})
			var s sys
			bootSch.Spawn("boot", 0, 0, func(th *sim.Thread) { s = tc.build(t, th, ns) })
			bootSch.Run()

			// Workload until the crash.
			sch := sim.New(18)
			sch.CrashAtEvent(crashAt)
			ns.SetScheduler(sch)
			if p, ok := s.(*core.PREP); ok {
				p.SpawnPersistence(0)
			}
			for tid := 0; tid < workers; tid++ {
				tid := tid
				sch.Spawn("w", topo().NodeOf(tid), 0, func(th *sim.Thread) {
					defer func() {
						if r := recover(); r != nil && !sim.Crashed(r) {
							panic(r)
						}
					}()
					for i := uint64(0); ; i++ {
						s.Execute(th, tid, uc.Insert(history.Key(tid, i), i))
					}
				})
			}
			sch.Run()
			if !sch.Frozen() {
				t.Fatal("workload did not crash")
			}

			// First recovery.
			rSch1 := sim.New(19)
			sys1 := ns.Recover(rSch1)
			var inst1 instance
			rSch1.Spawn("rec1", 0, 0, func(th *sim.Thread) { inst1 = tc.recover(t, th, sys1) })
			rSch1.Run()
			var dump1 []uint64
			dSch1 := sim.New(20)
			sys1.SetScheduler(dSch1)
			dSch1.Spawn("dump1", 0, 0, func(th *sim.Thread) { dump1 = inst1.dump(th) })
			dSch1.Run()

			// Immediate second crash — not one operation ran — under the most
			// adversarial persistence policy, then recover again with the
			// ORIGINAL boot configuration.
			sys1.SetFaultPolicy(fault.DropAll())
			rSch2 := sim.New(21)
			sys2 := sys1.Recover(rSch2)
			var inst2 instance
			rSch2.Spawn("rec2", 0, 0, func(th *sim.Thread) { inst2 = tc.recover(t, th, sys2) })
			rSch2.Run()
			var dump2 []uint64
			dSch2 := sim.New(22)
			sys2.SetScheduler(dSch2)
			dSch2.Spawn("dump2", 0, 0, func(th *sim.Thread) { dump2 = inst2.dump(th) })
			dSch2.Run()

			a, b := sortTriples(dump1), sortTriples(dump2)
			if len(a) == 0 {
				t.Fatal("first recovery produced an empty state; workload too short to be meaningful")
			}
			if !equalTriples(a, b) {
				t.Errorf("recovered states differ: first has %d ops, second %d", len(a), len(b))
			}
		})
	}
}

func prepIdemCfg(mode core.Mode, workers int) core.Config {
	return core.Config{
		Mode: mode, Topology: topo(), Workers: workers,
		LogSize: 256, Epsilon: 32,
		Factory: seq.HashMapFactory(64), Attacher: seq.HashMapAttacher,
		HeapWords: 1 << 20,
	}
}

func cxIdemCfg(workers int) cxpuc.Config {
	return cxpuc.Config{
		Workers: workers, Factory: seq.HashMapFactory(64), Attacher: seq.HashMapAttacher,
		HeapWords: 1 << 20, QueueCapacity: 1 << 16, CapReplicas: 4,
	}
}

func onllIdemCfg(workers int) onll.Config {
	return onll.Config{
		Workers: workers, Factory: seq.HashMapFactory(64),
		HeapWords: 1 << 20, LogEntries: 1 << 13,
	}
}

// TestMultiCrashEpochs drives K consecutive crash/recover cycles through
// PREP, giving each epoch a disjoint key range, and verifies the final state
// against every epoch at once: durable mode must preserve every epoch's
// completed ops; buffered mode must lose at most ε+β−1 per epoch (total
// K·(ε+β−1)). The durable variant runs under DropAll — strictly more
// adversarial than the default coin.
func TestMultiCrashEpochs(t *testing.T) {
	const workers = 4
	beta := uint64(topo().ThreadsPerNode)
	for _, tc := range []struct {
		name   string
		mode   core.Mode
		k      int
		policy fault.Policy
	}{
		{"durable-k2-dropall", core.Durable, 2, fault.DropAll()},
		{"durable-k3-dropall", core.Durable, 3, fault.DropAll()},
		{"buffered-k2", core.Buffered, 2, nil},
		{"buffered-k3", core.Buffered, 3, nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := prepIdemCfg(tc.mode, workers)
			bootSch := sim.New(31)
			ns := nvm.NewSystem(bootSch, nvm.Config{Costs: sim.UnitCosts(), BGFlushOneIn: 256, Seed: 37})
			if tc.policy != nil {
				ns.SetFaultPolicy(tc.policy)
			}
			var p *core.PREP
			var err error
			bootSch.Spawn("boot", 0, 0, func(th *sim.Thread) { p, err = core.New(th, ns, cfg) })
			bootSch.Run()
			if err != nil {
				t.Fatal(err)
			}

			epochs := make([]history.Epoch, tc.k)
			for e := 0; e < tc.k; e++ {
				crashAt := uint64(30_000 + e*7_000)
				sch := sim.New(int64(100*e) + 41)
				sch.CrashAtEvent(crashAt)
				ns.SetScheduler(sch)
				p.SpawnPersistence(0)
				completed := make([]uint64, workers)
				e := e
				for tid := 0; tid < workers; tid++ {
					tid := tid
					sch.Spawn("w", topo().NodeOf(tid), 0, func(th *sim.Thread) {
						defer func() {
							if r := recover(); r != nil && !sim.Crashed(r) {
								panic(r)
							}
						}()
						for i := uint64(0); ; i++ {
							p.Execute(th, tid, uc.Insert(history.EpochKey(e, tid, i), i))
							completed[tid] = i + 1
						}
					})
				}
				sch.Run()
				if !sch.Frozen() {
					t.Fatalf("epoch %d did not crash", e)
				}
				epochs[e].Completed = completed

				recSch := sim.New(int64(100*e) + 42)
				ns = ns.Recover(recSch)
				recSch.Spawn("rec", 0, 0, func(th *sim.Thread) {
					// Always the BOOT config: the commit record resolves the
					// actual source generation across all K crashes.
					p, _, err = core.Recover(th, ns, cfg)
				})
				recSch.Run()
				if err != nil {
					t.Fatalf("epoch %d recover: %v", e, err)
				}
			}

			// Probe every epoch's keys against the FINAL recovered state.
			probeSch := sim.New(43)
			ns.SetScheduler(probeSch)
			probeSch.Spawn("probe", 0, 0, func(th *sim.Thread) {
				for e := 0; e < tc.k; e++ {
					epochs[e].Keys = make([][]bool, workers)
					for tid := 0; tid < workers; tid++ {
						n := epochs[e].Completed[tid] + 16
						epochs[e].Keys[tid] = make([]bool, n)
						for i := uint64(0); i < n; i++ {
							got := p.Execute(th, 0, uc.Get(history.EpochKey(e, tid, i)))
							epochs[e].Keys[tid][i] = got != uc.NotFound
						}
					}
				}
			})
			probeSch.Run()

			mr := history.CheckEpochs(epochs)
			switch tc.mode {
			case core.Durable:
				if !mr.DurableOK() {
					t.Errorf("multi-crash durable violation: %s", mr)
				}
			case core.Buffered:
				if !mr.BufferedOK(cfg.Epsilon, beta) {
					t.Errorf("multi-crash buffered violation (per-epoch bound %d): %s",
						cfg.Epsilon+beta-1, mr)
				}
				if limit := uint64(tc.k) * (cfg.Epsilon + beta - 1); mr.TotalLost() > limit {
					t.Errorf("total loss %d exceeds K·(ε+β−1) = %d", mr.TotalLost(), limit)
				}
			}
		})
	}
}
