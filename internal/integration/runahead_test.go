package integration

import (
	"reflect"
	"testing"

	"prepuc/internal/core"
	"prepuc/internal/history"
	"prepuc/internal/metrics"
	"prepuc/internal/nvm"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// cycleTrace is everything one crash/recover cycle observed that could
// betray a schedule difference: per-worker completion counts, the event
// counts of every scheduler phase, the recovered-system metrics, and the
// key-by-key probe of the recovered state.
type cycleTrace struct {
	completed  []uint64
	workEvents uint64
	recEvents  uint64
	metrics    metrics.Snapshot
	keys       [][]bool
}

// runCrashCycle is a crashtest cycle in miniature: boot PREP-Durable, crash
// the insert workload at a fixed event index, recover, probe.
func runCrashCycle(t *testing.T, crashAt uint64) cycleTrace {
	t.Helper()
	const workers = 8
	cfg := core.Config{
		Mode: core.Durable, Topology: topo(), Workers: workers,
		LogSize: 128, Epsilon: 32,
		Factory: seq.HashMapFactory(64), Attacher: seq.HashMapAttacher,
		HeapWords: 1 << 20,
	}
	bootSch := sim.New(11)
	ns := nvm.NewSystem(bootSch, nvm.Config{
		Costs: sim.UnitCosts(), BGFlushOneIn: 200, Seed: 13,
	})
	var p *core.PREP
	var err error
	bootSch.Spawn("boot", 0, 0, func(th *sim.Thread) { p, err = core.New(th, ns, cfg) })
	bootSch.Run()
	if err != nil {
		t.Fatal(err)
	}

	sch := sim.New(12)
	sch.CrashAtEvent(crashAt)
	ns.SetScheduler(sch)
	p.SpawnPersistence(0)
	tr := cycleTrace{completed: make([]uint64, workers)}
	for tid := 0; tid < workers; tid++ {
		tid := tid
		sch.Spawn("w", topo().NodeOf(tid), 0, func(th *sim.Thread) {
			defer func() {
				if r := recover(); r != nil && !sim.Crashed(r) {
					panic(r)
				}
			}()
			for i := uint64(0); ; i++ {
				p.Execute(th, tid, uc.Insert(history.Key(tid, i), i))
				tr.completed[tid] = i + 1
			}
		})
	}
	sch.Run()
	if !sch.Frozen() {
		t.Fatalf("crashAt=%d did not crash", crashAt)
	}
	tr.workEvents = sch.Events()

	recSch := sim.New(13)
	recSys := ns.Recover(recSch)
	var rec *core.PREP
	recSch.Spawn("rec", 0, 0, func(th *sim.Thread) {
		rec, _, err = core.Recover(th, recSys, cfg)
	})
	recSch.Run()
	if err != nil {
		t.Fatal(err)
	}
	tr.recEvents = recSch.Events()
	tr.metrics = recSys.Metrics().Snapshot()

	tr.keys = make([][]bool, workers)
	chkSch := sim.New(14)
	recSys.SetScheduler(chkSch)
	chkSch.Spawn("probe", 0, 0, func(th *sim.Thread) {
		for tid := 0; tid < workers; tid++ {
			n := tr.completed[tid] + 16
			tr.keys[tid] = make([]bool, n)
			for i := uint64(0); i < n; i++ {
				tr.keys[tid][i] = rec.Execute(th, 0, uc.Get(history.Key(tid, i))) != uc.NotFound
			}
		}
	})
	chkSch.Run()
	return tr
}

// TestRunAheadEquivalenceCrashCycle runs the identical crash/recover cycle
// with the run-ahead fast path on and off. The crash lands mid-schedule, so
// any divergence in dispatch order changes which operations completed, what
// recovery replays, and every virtual-time-charged counter — all of which
// must match exactly.
func TestRunAheadEquivalenceCrashCycle(t *testing.T) {
	defer func(v bool) { sim.DefaultRunAhead = v }(sim.DefaultRunAhead)
	for _, crashAt := range []uint64{5_000, 60_000, 155_000} {
		sim.DefaultRunAhead = true
		on := runCrashCycle(t, crashAt)
		sim.DefaultRunAhead = false
		off := runCrashCycle(t, crashAt)
		if !reflect.DeepEqual(on, off) {
			t.Errorf("crashAt=%d: cycle diverges with run-ahead:\n  on:  %+v\n  off: %+v", crashAt, on, off)
		}
	}
}
