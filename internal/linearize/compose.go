package linearize

// compose.go — the cross-shard composition check for the sharded
// deployment. Each shard of a sharded PREP-UC is a fully independent
// machine whose own history passes CheckEpoch; composing those verdicts
// into one for the whole deployment needs exactly one extra invariant: the
// router is a pure function of the key and every effect lives on the key's
// owner. Then the composed history decomposes into disjoint per-key
// sub-histories, each wholly inside one shard's already-checked timeline,
// and per-key-independent semantics (the set models) impose no cross-shard
// ordering obligation — composition needs no global fence or merged clock.
// CheckComposition audits that invariant from the recorded data: no
// operation recorded against shard s keys to shard t, and no key probed
// from shard s's final state belongs to shard t.

import "fmt"

// ShardHistory is one shard's contribution to a composition check.
type ShardHistory struct {
	// Shard is the index the router is expected to map this history's keys
	// to.
	Shard int
	// Ops is every operation recorded against the shard (any Class); the
	// audit consults only the key, Op.A0 — callers use key-partitioned
	// models where A0 is the key of every routed operation.
	Ops []Op
	// Final is the shard's probed final (or recovered) state, key → value.
	Final map[uint64]uint64
}

// CompositionResult is CheckComposition's verdict.
type CompositionResult struct {
	OK     bool `json:"ok"`
	Shards int  `json:"shards"`
	// OpsAudited / KeysProbed size the audit.
	OpsAudited int `json:"ops_audited"`
	KeysProbed int `json:"keys_probed"`
	// MisroutedOps counts operations recorded against a shard the router
	// does not own their key on — traffic that leaked past the router.
	MisroutedOps int `json:"misrouted_ops"`
	// ForeignKeys counts keys present in a shard's final state that the
	// router assigns to a different shard — an op routed to shard s whose
	// effect shard t's state explains.
	ForeignKeys int    `json:"foreign_keys"`
	Reason      string `json:"reason,omitempty"`
}

// CheckComposition verifies the sharded deployment's composition invariant
// over per-shard histories that have each already passed their own epoch
// checks: every recorded operation keys to its recording shard, and every
// key in a shard's probed state is owned by that shard. route must be the
// deployment's actual routing function (pure in the key).
func CheckComposition(route func(key uint64) int, shards []ShardHistory) CompositionResult {
	res := CompositionResult{OK: true, Shards: len(shards)}
	for _, sh := range shards {
		for i := range sh.Ops {
			res.OpsAudited++
			if route(sh.Ops[i].A0) != sh.Shard {
				res.MisroutedOps++
			}
		}
		for k := range sh.Final {
			res.KeysProbed++
			if route(k) != sh.Shard {
				res.ForeignKeys++
			}
		}
	}
	if res.MisroutedOps > 0 || res.ForeignKeys > 0 {
		res.OK = false
		res.Reason = fmt.Sprintf("%d misrouted ops, %d foreign keys",
			res.MisroutedOps, res.ForeignKeys)
	}
	return res
}
