package linearize

import (
	"strings"
	"testing"

	"prepuc/internal/uc"
)

func composeFixture() (func(uint64) int, []ShardHistory) {
	route := func(k uint64) int { return int(k % 2) }
	mk := func(shard int, keys ...uint64) ShardHistory {
		sh := ShardHistory{Shard: shard, Final: map[uint64]uint64{}}
		for i, k := range keys {
			sh.Ops = append(sh.Ops, Op{
				Client: shard, Code: uc.OpInsert, A0: k, A1: k + 1,
				Invoke: uint64(i), Return: uint64(i) + 1, Class: Completed,
			})
			sh.Final[k] = k + 1
		}
		return sh
	}
	return route, []ShardHistory{mk(0, 0, 2, 4), mk(1, 1, 3, 5)}
}

func TestCompositionClean(t *testing.T) {
	route, shards := composeFixture()
	res := CheckComposition(route, shards)
	if !res.OK {
		t.Fatalf("clean composition rejected: %+v", res)
	}
	if res.Shards != 2 || res.OpsAudited != 6 || res.KeysProbed != 6 {
		t.Errorf("audit sizing: %+v", res)
	}
	if res.MisroutedOps != 0 || res.ForeignKeys != 0 || res.Reason != "" {
		t.Errorf("clean run reported violations: %+v", res)
	}
}

// TestCompositionForeignKey plants the exact failure the ISSUE names: an op
// routed to shard s whose effect is explained by shard t's state.
func TestCompositionForeignKey(t *testing.T) {
	route, shards := composeFixture()
	shards[1].Final[8] = 9 // even key in the odd shard's state
	res := CheckComposition(route, shards)
	if res.OK || res.ForeignKeys != 1 || res.MisroutedOps != 0 {
		t.Fatalf("planted foreign key not caught: %+v", res)
	}
	if !strings.Contains(res.Reason, "1 foreign key") {
		t.Errorf("reason %q does not name the foreign key", res.Reason)
	}
}

func TestCompositionMisroutedOp(t *testing.T) {
	route, shards := composeFixture()
	shards[0].Ops = append(shards[0].Ops, Op{
		Client: 0, Code: uc.OpGet, A0: 7, Invoke: 9, Return: 10, Class: Completed,
	})
	res := CheckComposition(route, shards)
	if res.OK || res.MisroutedOps != 1 || res.ForeignKeys != 0 {
		t.Fatalf("planted misrouted op not caught: %+v", res)
	}
}
