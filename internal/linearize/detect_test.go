package linearize

// Tests for the detectable-recoverability classes: in-flight operations
// recovery resolved to a definite verdict (InFlightCommitted /
// InFlightNever). Positive cases pin down the intended semantics; mutation
// cases guard that the strengthened checker actually rejects double-applies
// and mis-reported verdicts — without them, a recovery bug that replays a
// "never applied" operation or fabricates a result would sail through.

import (
	"testing"

	"prepuc/internal/uc"
)

// cm builds an in-flight operation recovery resolved as committed with res.
func cm(client int, code, a0, a1, res, inv uint64) Op {
	return Op{Client: client, Code: code, A0: a0, A1: a1, Result: res,
		Invoke: inv, Return: ^uint64(0), Class: InFlightCommitted}
}

// nv builds an in-flight operation recovery resolved as never applied.
func nv(client int, code, a0, a1, inv uint64) Op {
	return Op{Client: client, Code: code, A0: a0, A1: a1,
		Invoke: inv, Return: ^uint64(0), Class: InFlightNever}
}

// A resolved-committed insert must appear in the recovered state, with the
// resolved result.
func TestInFlightCommittedMustTakeEffect(t *testing.T) {
	ops := []Op{cm(0, uc.OpInsert, 3, 33, 1, 5)}
	mustOK(t, CheckEpoch(SetModel(), nil, ops, setState(3, 33), Options{}))
	// Effect missing from the recovered state → recovery lied.
	mustFail(t, CheckEpoch(SetModel(), nil, ops, setState(), Options{}))
	// Unlike a plain Completed op, a loss allowance does not excuse it:
	// the descriptor verdict says the effect is inside the recovered state.
	mustFail(t, CheckEpoch(SetModel(), nil, ops, setState(),
		Options{Buffered: true, Allowance: 8}))
}

// A resolved-committed operation's result must match what a linearization
// can produce: an insert resolved as "fresh" (1) over an existing key is a
// mis-reported verdict.
func TestInFlightCommittedWrongResult(t *testing.T) {
	init := setState(3, 30)
	ops := []Op{cm(0, uc.OpInsert, 3, 33, 1, 5)} // claims key 3 was absent
	mustFail(t, CheckEpoch(SetModel(), init, ops, setState(3, 33), Options{}))
	// With the consistent result (0: key present) it passes.
	ops[0].Result = 0
	mustOK(t, CheckEpoch(SetModel(), init, ops, setState(3, 33), Options{}))
}

// A resolved-never-applied operation must not take effect: its value
// surfacing in the recovered state is a double-apply in the making (the
// client was told to resubmit).
func TestInFlightNeverMustNotTakeEffect(t *testing.T) {
	ops := []Op{nv(0, uc.OpInsert, 3, 33, 5)}
	mustOK(t, CheckEpoch(SetModel(), nil, ops, setState(), Options{}))
	mustFail(t, CheckEpoch(SetModel(), nil, ops, setState(3, 33), Options{}))
	// Plain InFlight would have accepted either outcome.
	ops[0].Class = InFlight
	mustOK(t, CheckEpoch(SetModel(), nil, ops, setState(3, 33), Options{}))
}

// The queue double-apply: recovery resolved an enqueue as committed, and
// then the resumed client's retry (or a buggy replay) enqueued it again.
func TestMutationQueueDoubleApply(t *testing.T) {
	ops := []Op{cm(0, uc.OpEnqueue, 7, 0, 1, 5)}
	mustOK(t, CheckEpoch(QueueModel(), nil, ops, []uint64{7}, Options{}))
	mustFail(t, CheckEpoch(QueueModel(), nil, ops, []uint64{7, 7}, Options{}))

	// Same violation observed through dequeues instead of the final state.
	ops2 := []Op{
		cm(0, uc.OpEnqueue, 7, 0, 1, 5),
		co(1, uc.OpDequeue, 0, 0, 7, 10, 20),
		co(1, uc.OpDequeue, 0, 0, 7, 30, 40),
	}
	mustFail(t, CheckEpoch(QueueModel(), nil, ops2, nil, Options{}))
	// A single dequeue claiming the committed enqueue is fine.
	mustOK(t, CheckEpoch(QueueModel(), nil, ops2[:2], nil, Options{}))
}

// In buffered mode the crash cut may lose completed operations, but never a
// resolved-committed one: the resolution horizon is the recovered state's
// own persisted tail.
func TestInFlightCommittedNotLosable(t *testing.T) {
	ops := []Op{
		co(0, uc.OpInsert, 1, 11, 1, 0, 10),
		cm(1, uc.OpInsert, 2, 22, 1, 12),
	}
	// Both effects present: fine.
	mustOK(t, CheckEpoch(SetModel(), nil, ops, setState(1, 11, 2, 22),
		Options{Buffered: true, Allowance: 2}))
	// The completed insert may fall into the lost suffix...
	mustOK(t, CheckEpoch(SetModel(), nil, ops, setState(2, 22),
		Options{Buffered: true, Allowance: 2}))
	// ...the resolved-committed one may not, whatever the allowance.
	mustFail(t, CheckEpoch(SetModel(), nil, ops, setState(1, 11),
		Options{Buffered: true, Allowance: 8}))
}

// Mixed verdicts across one client's in-flight window: the committed prefix
// must be in the state, the never-applied suffix must not.
func TestResolvedWindowMixedVerdicts(t *testing.T) {
	ops := []Op{
		cm(0, uc.OpInsert, 1, 11, 1, 0),
		cm(0, uc.OpInsert, 2, 22, 1, 1),
		nv(0, uc.OpInsert, 3, 33, 2),
	}
	mustOK(t, CheckEpoch(SetModel(), nil, ops, setState(1, 11, 2, 22), Options{}))
	mustFail(t, CheckEpoch(SetModel(), nil, ops, setState(1, 11, 2, 22, 3, 33), Options{}))
	mustFail(t, CheckEpoch(SetModel(), nil, ops, setState(1, 11), Options{}))
}

// FIFO ranking covers resolved-committed dequeues too: a deep prefilled
// queue drained by a client whose last dequeues were cut off but resolved.
func TestFIFORankWithCommittedDequeues(t *testing.T) {
	var pre []uc.Op
	var init any = QueueModel().Empty()
	for v := uint64(1); v <= 20; v++ {
		pre = append(pre, uc.Op{Code: uc.OpEnqueue, A0: v})
	}
	init = Replay(QueueModel(), init, pre)
	var ops []Op
	ts := uint64(0)
	for v := uint64(1); v <= 18; v++ {
		ops = append(ops, co(0, uc.OpDequeue, 0, 0, v, ts, ts+5))
		ts += 10
	}
	ops = append(ops, cm(1, uc.OpDequeue, 0, 0, 19, ts))
	mustOK(t, CheckEpoch(QueueModel(), init, ops, []uint64{20}, Options{}))
	// And the committed dequeue's resolved value must be consistent: 18
	// dequeues took 1..18, so the resolved one cannot have seen 5 again.
	ops[len(ops)-1].Result = 5
	mustFail(t, CheckEpoch(QueueModel(), init, ops, []uint64{19, 20}, Options{}))
}
