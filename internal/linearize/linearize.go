// Package linearize verifies recorded invoke/response histories against
// pluggable sequential specifications — a Wing&Gong/Lowe (WGL) checker in
// the style of Porcupine, extended with the crash-aware obligations of
// Izraelevitz et al.'s durable linearizability definitions:
//
//   - every operation whose response was observed before a crash
//     (Completed) must take effect exactly once;
//   - an operation that was invoked but cut off by the crash (InFlight) may
//     take effect at most once — it either linearizes or vanishes;
//   - an in-flight operation recovery resolved via detectable execution has
//     a definite, queryable answer the post-crash state must corroborate:
//     resolved-committed (InFlightCommitted) operations must linearize with
//     exactly the resolved result and never fall into a buffered lost
//     suffix; resolved-never-applied (InFlightNever) operations must not
//     take effect at all;
//   - the recovered state must be the state of a legal linearization
//     (durable), or of a prefix of one with at most Allowance completed
//     operations lost to the crash (buffered durable, PREP-Buffered's
//     ε+β−1 suffix-loss bound).
//
// Histories are recorded by Recorder (record.go) with the simulator's
// virtual clock: timestamps are cheap, deterministic, and consistent with
// the scheduler's real-time order (the dispatcher always runs the
// minimum-clock thread, so an operation that returned before another was
// invoked has the smaller clock). Two operations with equal timestamps are
// treated as concurrent, which can only admit more linearizations, never
// reject a legal history.
//
// Tractability: Model.Partition splits a history into independently
// checkable sub-problems — the set models partition by key, collapsing the
// exponential WGL search into many trivial per-key searches — and the
// search memoizes (linearized-set, state) configurations à la Lowe.
package linearize

import (
	"fmt"
	"sort"

	"prepuc/internal/uc"
)

// Class says how an operation relates to the epoch's crash.
type Class uint8

const (
	// Completed operations returned before the crash; their results were
	// observed and they must take effect.
	Completed Class = iota
	// InFlight operations were invoked but never returned (the crash
	// unwound them). They may take effect at most once, with any result.
	InFlight
	// InFlightCommitted operations were cut off by the crash, but recovery
	// resolved them as committed with a definite result (detectable
	// execution's operation descriptors). They must take effect exactly
	// once, with exactly that result — and because the descriptor protocol
	// resolves only operations whose effect is inside the recovered state,
	// they can never fall after a buffered crash cut.
	InFlightCommitted
	// InFlightNever operations were cut off by the crash and recovery
	// resolved them as never applied. They must not take effect: a
	// recovered state explicable only by such an operation's effect is a
	// detectability violation (the client was told "safe to resubmit").
	InFlightNever
)

// Op is one recorded operation.
type Op struct {
	// Client identifies the invoking worker; one client's operations must
	// not overlap in time.
	Client int
	// Code, A0, A1 encode the operation as in uc.Op.
	Code, A0, A1 uint64
	// Result is the observed response (meaningful only when Completed or
	// InFlightCommitted — for the latter it is the result recovery's
	// descriptor scan reported).
	Result uint64
	// Invoke and Return are virtual-clock timestamps. Return is ignored
	// for InFlight operations (they never returned).
	Invoke, Return uint64
	// Class is Completed or InFlight.
	Class Class
}

// Problem is one independently checkable sub-history produced by
// Model.Partition: its operations, boundary states, and the sequential
// step semantics for the partition's state representation.
type Problem struct {
	// Label names the partition in failure reports (e.g. "key=17").
	Label string
	// Ops is the partition's slice of the history.
	Ops []Op
	// Init is the partition's state at the start of the epoch.
	Init any
	// Recovered is the observed state after the epoch; only meaningful
	// when HasRecovered. Without an observation the final state is
	// unconstrained and only response legality is checked.
	Recovered    any
	HasRecovered bool
	// Step applies one operation to an immutable state and returns the
	// successor state and the operation's result.
	Step func(s any, code, a0, a1 uint64) (any, uint64)
	// Key returns a canonical encoding of a state for memoization. Two
	// states must encode equal iff they are equal (no lossy hashing — a
	// collision could prune a branch that would have succeeded).
	Key func(s any) string
	// Equal compares two states.
	Equal func(a, b any) bool
	// Rank optionally orders candidate exploration (lower ranks tried
	// first). It is a search heuristic only — it changes which branch the
	// DFS tries first, never which histories are accepted. The queue model
	// uses it to try concurrent enqueues in the order their values are
	// later dequeued: a wrong enqueue order is only refuted when the value
	// surfaces, queue-depth steps later, so the unranked search backtracks
	// exponentially in the prefill depth.
	Rank func(op *Op) int
}

// Model is a pluggable sequential specification.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// Empty returns the model's empty full state.
	Empty() any
	// Apply runs one operation against a full state (sequentially — used
	// by Replay to compute prefill and expected states). It may mutate and
	// return s.
	Apply(s any, code, a0, a1 uint64) (any, uint64)
	// Partition splits an epoch into independent sub-problems. init is the
	// epoch's initial full state; recovered the observed final full state
	// (ignored unless hasRecovered). It returns an error for operations
	// the model does not understand, or for state changes no operation can
	// explain (e.g. an untouched key whose value changed).
	Partition(ops []Op, init, recovered any, hasRecovered bool) ([]Problem, error)
}

// Options selects the correctness condition for one epoch.
type Options struct {
	// Buffered selects buffered durable linearizability: the recovered
	// state may reflect only a prefix of the linearization, losing up to
	// Allowance completed operations (PREP-Buffered's ε+β−1). When false,
	// the check is strict durable linearizability: the recovered state
	// must reflect every completed operation.
	Buffered bool
	// Allowance is the completed-operation loss budget (Buffered only).
	Allowance int
}

// Result is the outcome of checking one epoch.
type Result struct {
	// OK reports whether a legal linearization exists.
	OK bool
	// Ops and Partitions count what was checked.
	Ops, Partitions int
	// Lost is the minimal number of completed operations that had to be
	// declared lost (0 unless Buffered).
	Lost int
	// FailedPartition and Reason describe the first failing partition.
	FailedPartition string
	Reason          string
}

// String renders the result.
func (r Result) String() string {
	if r.OK {
		return fmt.Sprintf("ok: %d ops in %d partitions, lost=%d", r.Ops, r.Partitions, r.Lost)
	}
	return fmt.Sprintf("FAIL at %s: %s (%d ops in %d partitions)",
		r.FailedPartition, r.Reason, r.Ops, r.Partitions)
}

// CheckEpoch verifies one epoch of recorded operations against the model.
// init is the full state at the start of the epoch (nil = Model.Empty());
// recovered is the observed full state after the epoch — pass nil to leave
// the final state unconstrained (crash-free checking of responses only).
//
// The Allowance budget is global: partitions consume it greedily by their
// individual minimum loss, which sums to the global minimum because
// partitions are independent.
func CheckEpoch(m Model, init any, ops []Op, recovered any, opt Options) Result {
	if init == nil {
		init = m.Empty()
	}
	problems, err := m.Partition(ops, init, recovered, recovered != nil)
	if err != nil {
		return Result{OK: false, Ops: len(ops), FailedPartition: m.Name(), Reason: err.Error()}
	}
	res := Result{OK: true, Ops: len(ops), Partitions: len(problems)}
	remaining := 0
	if opt.Buffered {
		remaining = opt.Allowance
	}
	for i := range problems {
		p := &problems[i]
		lost, ok := checkProblem(p, opt.Buffered, remaining)
		if !ok {
			return Result{
				OK: false, Ops: len(ops), Partitions: len(problems),
				Lost: res.Lost, FailedPartition: p.Label,
				Reason: fmt.Sprintf("no linearization of %d ops within loss budget %d",
					len(p.Ops), remaining),
			}
		}
		res.Lost += lost
		remaining -= lost
	}
	return res
}

// Replay applies ops sequentially to a full state (nil = empty) and
// returns the resulting state — how callers compute an epoch's expected
// initial state from prefill operations.
func Replay(m Model, init any, ops []uc.Op) any {
	s := init
	if s == nil {
		s = m.Empty()
	}
	for _, op := range ops {
		s, _ = m.Apply(s, op.Code, op.A0, op.A1)
	}
	return s
}

// checkProblem finds the minimal completed-operation loss with which the
// partition linearizes, bounded by budget. In strict (non-buffered) mode
// the loss is always 0 and a single search decides.
func checkProblem(p *Problem, buffered bool, budget int) (lost int, ok bool) {
	if !buffered {
		return 0, newSearch(p, false, 0).run()
	}
	// Iterate the budget upward: the first feasible k is the partition's
	// minimum loss. Most partitions succeed immediately at k=0.
	for k := 0; k <= budget; k++ {
		if newSearch(p, true, k).run() {
			return k, true
		}
	}
	return 0, false
}

// entry is one operation in the invoke-sorted working list.
type entry struct {
	op         *Op
	idx        int // bit index in the linearized set
	ret        uint64
	rank       int // exploration priority from Problem.Rank (0 if none)
	prev, next *entry
}

// search is one WGL run over a partition with a fixed loss budget.
type search struct {
	p        *Problem
	buffered bool
	budget   int
	ranked   bool
	head     *entry // sentinel; list holds unlinearized entries, invoke-sorted
	bits     []uint64
	nbits    int
	memo     map[string]struct{}
}

func newSearch(p *Problem, buffered bool, budget int) *search {
	n := 0
	for i := range p.Ops {
		// InFlightNever operations are excluded from the working list: they
		// must not linearize, and — having never returned — they cannot
		// block any other operation either. If the recovered state needs
		// their effect, no linearization of the remaining operations reaches
		// it and the search fails, which is exactly the violation.
		if p.Ops[i].Class != InFlightNever {
			n++
		}
	}
	entries := make([]entry, n)
	order := make([]*entry, 0, n)
	for i := range p.Ops {
		op := &p.Ops[i]
		if op.Class == InFlightNever {
			continue
		}
		ret := op.Return
		if op.Class != Completed {
			ret = ^uint64(0) // never returned: blocks nothing
		}
		rank := 0
		if p.Rank != nil {
			rank = p.Rank(op)
		}
		idx := len(order)
		entries[idx] = entry{op: op, idx: idx, ret: ret, rank: rank}
		order = append(order, &entries[idx])
	}
	sort.SliceStable(order, func(a, b int) bool {
		if order[a].op.Invoke != order[b].op.Invoke {
			return order[a].op.Invoke < order[b].op.Invoke
		}
		return order[a].op.Client < order[b].op.Client
	})
	head := &entry{}
	cur := head
	for _, e := range order {
		cur.next = e
		e.prev = cur
		cur = e
	}
	return &search{
		p: p, buffered: buffered, budget: budget, ranked: p.Rank != nil,
		head: head, bits: make([]uint64, (n+63)/64), nbits: n,
		memo: make(map[string]struct{}),
	}
}

func (s *search) run() bool {
	// Obligations: operations that must linearize. Completed ones observed
	// their response; InFlightCommitted ones have a recovery-issued verdict
	// the post-crash state must corroborate.
	completed := 0
	for i := range s.p.Ops {
		if c := s.p.Ops[i].Class; c == Completed || c == InFlightCommitted {
			completed++
		}
	}
	return s.dfs(s.p.Init, false, 0, completed)
}

// dfs explores linearization extensions from the current configuration:
// state is the sequential state after the linearized set (s.bits),
// cutTaken and lost track the buffered crash cut, completedLeft counts
// completed operations not yet linearized.
func (s *search) dfs(state any, cutTaken bool, lost int, completedLeft int) bool {
	stateOK := !s.p.HasRecovered || s.p.Equal(state, s.p.Recovered)
	if completedLeft == 0 {
		if s.buffered {
			// The cut may sit here, at the very end, if the state matches.
			if cutTaken || stateOK {
				return true
			}
		} else if stateOK {
			return true
		}
		// State mismatch: in-flight operations may still need to take
		// effect (or, buffered, the cut may come later) — keep searching.
	}
	if !s.memoAdd(cutTaken, lost, state) {
		return false
	}
	// Buffered: take the crash cut here if the observed recovered state
	// matches; everything linearized afterwards is lost to the crash.
	if s.buffered && !cutTaken && stateOK {
		if s.dfs(state, true, lost, completedLeft) {
			return true
		}
	}
	// Candidates: unlinearized ops x, scanned in invoke order, such that no
	// other unlinearized y has ret(y) < inv(x). Only earlier-invoked
	// entries can block x, so a running minimum of scanned returns decides,
	// and once it drops below the next invoke every later entry is blocked.
	var cbuf [16]*entry
	cands := cbuf[:0]
	minRet := ^uint64(0)
	for e := s.head.next; e != nil; e = e.next {
		if e.op.Invoke > minRet {
			break
		}
		cands = append(cands, e)
		if e.ret < minRet {
			minRet = e.ret
		}
	}
	if s.ranked {
		// Stable insertion sort by rank: candidate sets are tiny (bounded
		// by thread count) and mostly already ordered.
		for i := 1; i < len(cands); i++ {
			for j := i; j > 0 && cands[j-1].rank > cands[j].rank; j-- {
				cands[j-1], cands[j] = cands[j], cands[j-1]
			}
		}
	}
	for _, e := range cands {
		if cutTaken && e.op.Class == InFlightCommitted {
			// A resolved-committed operation's effect is inside the
			// recovered state by construction; it cannot land in the lost
			// suffix after the crash cut.
			continue
		}
		s2, res := s.p.Step(state, e.op.Code, e.op.A0, e.op.A1)
		legal := e.op.Class == InFlight || res == e.op.Result
		if legal {
			lost2 := lost
			if cutTaken && e.op.Class == Completed {
				lost2++
			}
			if !cutTaken || lost2 <= s.budget {
				left2 := completedLeft
				if c := e.op.Class; c == Completed || c == InFlightCommitted {
					left2--
				}
				e.prev.next = e.next
				if e.next != nil {
					e.next.prev = e.prev
				}
				s.bits[e.idx>>6] |= 1 << (uint(e.idx) & 63)
				ok := s.dfs(s2, cutTaken, lost2, left2)
				s.bits[e.idx>>6] &^= 1 << (uint(e.idx) & 63)
				e.prev.next = e
				if e.next != nil {
					e.next.prev = e
				}
				if ok {
					return true
				}
			}
		}
	}
	return false
}

// memoAdd records the configuration, reporting false if it was already
// explored.
func (s *search) memoAdd(cutTaken bool, lost int, state any) bool {
	key := make([]byte, 0, len(s.bits)*8+len(s.p.Ops)/4+10)
	for _, w := range s.bits {
		key = append(key, byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	cut := byte(0)
	if cutTaken {
		cut = 1
	}
	key = append(key, cut, byte(lost), byte(lost>>8))
	k := string(key) + s.p.Key(state)
	if _, seen := s.memo[k]; seen {
		return false
	}
	s.memo[k] = struct{}{}
	return true
}
