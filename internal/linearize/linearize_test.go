package linearize

import (
	"math/rand"
	"testing"
	"time"

	"prepuc/internal/uc"
)

// co builds a completed op, io an in-flight one.
func co(client int, code, a0, a1, res, inv, ret uint64) Op {
	return Op{Client: client, Code: code, A0: a0, A1: a1, Result: res,
		Invoke: inv, Return: ret, Class: Completed}
}

func io(client int, code, a0, a1, inv uint64) Op {
	return Op{Client: client, Code: code, A0: a0, A1: a1,
		Invoke: inv, Return: ^uint64(0), Class: InFlight}
}

func mustOK(t *testing.T, r Result) {
	t.Helper()
	if !r.OK {
		t.Fatalf("expected pass, got: %s", r)
	}
}

func mustFail(t *testing.T, r Result) {
	t.Helper()
	if r.OK {
		t.Fatalf("expected fail, got: %s", r)
	}
}

func setState(kv ...uint64) map[uint64]uint64 {
	m := map[uint64]uint64{}
	for i := 0; i < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

func TestSequentialSetHistoryPasses(t *testing.T) {
	ops := []Op{
		co(0, uc.OpInsert, 7, 70, 1, 0, 10),
		co(0, uc.OpGet, 7, 0, 70, 20, 30),
		co(0, uc.OpDelete, 7, 0, 1, 40, 50),
		co(0, uc.OpContains, 7, 0, 0, 60, 70),
	}
	mustOK(t, CheckEpoch(SetModel(), nil, ops, setState(), Options{}))
}

func TestWrongResultRejected(t *testing.T) {
	ops := []Op{
		co(0, uc.OpInsert, 7, 70, 1, 0, 10),
		co(0, uc.OpGet, 7, 0, 71, 20, 30), // wrong value
	}
	mustFail(t, CheckEpoch(SetModel(), nil, ops, nil, Options{}))
}

func TestConcurrentInsertGetAmbiguity(t *testing.T) {
	// Get overlaps the insert: both "not yet" and "already" responses are
	// legal, but only those two.
	for _, tc := range []struct {
		res uint64
		ok  bool
	}{{uc.NotFound, true}, {70, true}, {71, false}} {
		ops := []Op{
			co(0, uc.OpInsert, 7, 70, 1, 10, 30),
			co(1, uc.OpGet, 7, 0, tc.res, 15, 25),
		}
		r := CheckEpoch(SetModel(), nil, ops, nil, Options{})
		if r.OK != tc.ok {
			t.Errorf("concurrent Get -> %d: got %v, want %v", tc.res, r.OK, tc.ok)
		}
	}
}

func TestInFlightTakesEffectOrNot(t *testing.T) {
	ops := []Op{
		co(0, uc.OpInsert, 1, 11, 1, 0, 10),
		io(1, uc.OpInsert, 2, 22, 5),
	}
	// In-flight effect lost entirely: fine.
	mustOK(t, CheckEpoch(SetModel(), nil, ops, setState(1, 11), Options{}))
	// In-flight effect survived: fine.
	mustOK(t, CheckEpoch(SetModel(), nil, ops, setState(1, 11, 2, 22), Options{}))
	// In-flight op surfaced with a value it never wrote: not fine.
	mustFail(t, CheckEpoch(SetModel(), nil, ops, setState(1, 11, 2, 99), Options{}))
	// The completed insert must survive (durable).
	mustFail(t, CheckEpoch(SetModel(), nil, ops, setState(2, 22), Options{}))
}

func TestBufferedAllowance(t *testing.T) {
	// Insert completed, then a Get of the same key observed it; a crash
	// lost both. The cut must sit before the insert, losing 2 completed
	// ops — legal iff the allowance covers both.
	ops := []Op{
		co(0, uc.OpInsert, 5, 50, 1, 0, 10),
		co(1, uc.OpGet, 5, 0, 50, 20, 30),
	}
	empty := setState()
	mustFail(t, CheckEpoch(SetModel(), nil, ops, empty, Options{}))
	mustFail(t, CheckEpoch(SetModel(), nil, ops, empty, Options{Buffered: true, Allowance: 1}))
	r := CheckEpoch(SetModel(), nil, ops, empty, Options{Buffered: true, Allowance: 2})
	mustOK(t, r)
	if r.Lost != 2 {
		t.Fatalf("lost = %d, want 2", r.Lost)
	}
}

func TestBufferedLossMustBeSuffixWithinPartition(t *testing.T) {
	// The insert's effect is present but a LATER completed delete of the
	// same key is missing from the recovered state — legal: cut after the
	// insert, delete lost. The reverse (insert lost, delete survived) has
	// no cut: rejected even with a generous allowance.
	ops := []Op{
		co(0, uc.OpInsert, 5, 50, 1, 0, 10),
		co(0, uc.OpDelete, 5, 0, 1, 20, 30),
	}
	mustOK(t, CheckEpoch(SetModel(), nil, ops, setState(5, 50), Options{Buffered: true, Allowance: 1}))
	// Recovered state says the delete happened but the insert didn't:
	// impossible in any prefix.
	ops2 := []Op{
		co(0, uc.OpInsert, 5, 50, 1, 0, 10),
		co(0, uc.OpInsert, 6, 60, 1, 20, 30),
	}
	mustFail(t, CheckEpoch(SetModel(), nil, ops2, setState(5, 51, 6, 60), Options{Buffered: true, Allowance: 8}))
}

func TestUntouchedKeyMustNotChange(t *testing.T) {
	ops := []Op{co(0, uc.OpInsert, 1, 11, 1, 0, 10)}
	init := setState(9, 90)
	mustFail(t, CheckEpoch(SetModel(), init, ops, setState(1, 11), Options{}))
	mustOK(t, CheckEpoch(SetModel(), init, ops, setState(1, 11, 9, 90), Options{}))
}

func TestQueueFIFOOrder(t *testing.T) {
	// Sequential enqueues 1 then 2; dequeues must return them in order.
	enq := []Op{
		co(0, uc.OpEnqueue, 1, 0, 1, 0, 10),
		co(0, uc.OpEnqueue, 2, 0, 1, 20, 30),
	}
	good := append(append([]Op{}, enq...),
		co(1, uc.OpDequeue, 0, 0, 1, 40, 50),
		co(1, uc.OpDequeue, 0, 0, 2, 60, 70))
	mustOK(t, CheckEpoch(QueueModel(), nil, good, []uint64{}, Options{}))

	// Concurrent enqueues may land in either order.
	conc := []Op{
		co(0, uc.OpEnqueue, 1, 0, 1, 0, 30),
		co(1, uc.OpEnqueue, 2, 0, 1, 5, 25),
		co(0, uc.OpDequeue, 0, 0, 2, 40, 50),
		co(0, uc.OpDequeue, 0, 0, 1, 60, 70),
	}
	mustOK(t, CheckEpoch(QueueModel(), nil, conc, []uint64{}, Options{}))
}

func TestStackLIFO(t *testing.T) {
	ops := []Op{
		co(0, uc.OpPush, 1, 0, 1, 0, 10),
		co(0, uc.OpPush, 2, 0, 1, 20, 30),
		co(0, uc.OpPop, 0, 0, 2, 40, 50),
		co(0, uc.OpPop, 0, 0, 1, 60, 70),
		co(0, uc.OpPop, 0, 0, uc.NotFound, 80, 90),
	}
	mustOK(t, CheckEpoch(StackModel(), nil, ops, []uint64{}, Options{}))
}

func TestPQueueMinOrder(t *testing.T) {
	ops := []Op{
		co(0, uc.OpEnqueue, 9, 0, 1, 0, 10),
		co(0, uc.OpEnqueue, 3, 0, 1, 20, 30),
		co(0, uc.OpDeleteMin, 0, 0, 3, 40, 50),
		co(0, uc.OpMin, 0, 0, 9, 60, 70),
	}
	mustOK(t, CheckEpoch(PQueueModel(), nil, ops, []uint64{9}, Options{}))
	bad := append(append([]Op{}, ops[:2]...), co(0, uc.OpDeleteMin, 0, 0, 9, 40, 50))
	mustFail(t, CheckEpoch(PQueueModel(), nil, bad, nil, Options{}))
}

func TestReplayBuildsPrefillState(t *testing.T) {
	ops := []uc.Op{
		{Code: uc.OpInsert, A0: 1, A1: 10},
		{Code: uc.OpInsert, A0: 2, A1: 20},
		{Code: uc.OpDelete, A0: 1},
	}
	s := Replay(SetModel(), nil, ops).(map[uint64]uint64)
	if len(s) != 1 || s[2] != 20 {
		t.Fatalf("replayed state = %v", s)
	}
}

// genConcurrentSetHistory synthesizes a valid concurrent history: a random
// sequential execution is computed first, then each operation's interval
// is widened around its linearization point without violating per-client
// program order.
func genConcurrentSetHistory(seed int64, clients, n int, keyRange uint64) []Op {
	rng := rand.New(rand.NewSource(seed))
	state := map[uint64]uint64{}
	lastReturn := make([]uint64, clients)
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		c := rng.Intn(clients)
		lin := uint64(i*16 + 8)
		if lin <= lastReturn[c] {
			lin = lastReturn[c] + 1
		}
		inv := lin - uint64(rng.Intn(24))
		if inv <= lastReturn[c] {
			inv = lastReturn[c] + 1
		}
		if inv > lin {
			inv = lin
		}
		ret := lin + uint64(rng.Intn(24))
		lastReturn[c] = ret

		k := rng.Uint64() % keyRange
		var op Op
		switch rng.Intn(4) {
		case 0:
			v := rng.Uint64() % 1000
			res := uint64(1)
			if _, ok := state[k]; ok {
				res = 0
			}
			state[k] = v
			op = co(c, uc.OpInsert, k, v, res, inv, ret)
		case 1:
			res := uint64(0)
			if _, ok := state[k]; ok {
				res = 1
			}
			delete(state, k)
			op = co(c, uc.OpDelete, k, 0, res, inv, ret)
		case 2:
			res, ok := state[k]
			if !ok {
				res = uc.NotFound
			}
			op = co(c, uc.OpGet, k, 0, res, inv, ret)
		default:
			res := uint64(0)
			if _, ok := state[k]; ok {
				res = 1
			}
			op = co(c, uc.OpContains, k, 0, res, inv, ret)
		}
		ops = append(ops, op)
	}
	return ops
}

// TestLargeMixedHistoryUnderBudget is the acceptance-criterion check: a
// 4-thread, 2k-op mixed set history must verify in well under 5 seconds
// (key partitioning keeps every WGL sub-search tiny).
func TestLargeMixedHistoryUnderBudget(t *testing.T) {
	ops := genConcurrentSetHistory(42, 4, 2000, 128)
	start := time.Now()
	r := CheckEpoch(SetModel(), nil, ops, nil, Options{})
	elapsed := time.Since(start)
	mustOK(t, r)
	if elapsed > 5*time.Second {
		t.Fatalf("2k-op check took %v, budget 5s", elapsed)
	}
	t.Logf("checked %d ops in %d partitions in %v", r.Ops, r.Partitions, elapsed)
}

func TestGeneratedHistoriesManySeeds(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		ops := genConcurrentSetHistory(seed, 4, 400, 64)
		if r := CheckEpoch(SetModel(), nil, ops, nil, Options{}); !r.OK {
			t.Fatalf("seed %d: %s", seed, r)
		}
	}
}

func TestRecorderClasses(t *testing.T) {
	r := NewRecorder(2)
	if got := r.Completed(); got != 0 {
		t.Fatalf("fresh Completed = %d", got)
	}
	r.logs[0] = append(r.logs[0], io(0, uc.OpInsert, 1, 1, 5))
	r.logs[1] = append(r.logs[1], co(1, uc.OpGet, 1, 0, 1, 0, 10))
	if r.Completed() != 1 || r.InFlight() != 1 || len(r.Ops()) != 2 {
		t.Fatalf("counts wrong: completed=%d inflight=%d ops=%d",
			r.Completed(), r.InFlight(), len(r.Ops()))
	}
	r.Reset()
	if len(r.Ops()) != 0 {
		t.Fatal("Reset left ops behind")
	}
}
