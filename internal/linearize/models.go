// Sequential specification models mirroring internal/seq: the map/set
// family (hashmap, rbtree, skiplist, listset all share the set semantics),
// the FIFO queue, the LIFO stack and the min-priority queue. Each model's
// result conventions match the corresponding seq implementation exactly
// (Put returns 1 on fresh insert and 0 on overwrite, removals return the
// removed value or uc.NotFound, and so on).
package linearize

import (
	"fmt"
	"sort"

	"prepuc/internal/uc"
)

// --- set (map) model, partitioned by key ---

type setModel struct{}

// SetModel returns the specification of the key/value set structures
// (hashmap, rbtree, skiplist, listset). Its full state is a
// map[uint64]uint64; checking partitions by key, so each sub-problem's
// state is just that key's value (uc.NotFound = absent).
func SetModel() Model { return setModel{} }

func (setModel) Name() string { return "set" }

func (setModel) Empty() any { return map[uint64]uint64{} }

func (setModel) Apply(s any, code, a0, a1 uint64) (any, uint64) {
	m := s.(map[uint64]uint64)
	old, present := m[a0]
	switch code {
	case uc.OpInsert:
		m[a0] = a1
		if present {
			return m, 0
		}
		return m, 1
	case uc.OpDelete:
		delete(m, a0)
		if present {
			return m, 1
		}
		return m, 0
	case uc.OpGet:
		if !present {
			return m, uc.NotFound
		}
		return m, old
	case uc.OpContains:
		if present {
			return m, 1
		}
		return m, 0
	case uc.OpSize:
		return m, uint64(len(m))
	default:
		panic(fmt.Sprintf("linearize: set model cannot apply %s", uc.OpName(code)))
	}
}

// setKeyStep is the per-partition step: the state is the key's value as a
// bare uint64, uc.NotFound meaning absent.
func setKeyStep(s any, code, _, a1 uint64) (any, uint64) {
	v := s.(uint64)
	present := v != uc.NotFound
	switch code {
	case uc.OpInsert:
		if present {
			return a1, 0
		}
		return a1, 1
	case uc.OpDelete:
		if present {
			return uc.NotFound, 1
		}
		return uc.NotFound, 0
	case uc.OpGet:
		return v, v
	case uc.OpContains:
		if present {
			return v, 1
		}
		return v, 0
	}
	panic("unreachable: Partition rejects other codes")
}

func u64Key(s any) string {
	v := s.(uint64)
	return string([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24),
		byte(v >> 32), byte(v >> 40), byte(v >> 48), byte(v >> 56)})
}

func u64Equal(a, b any) bool { return a.(uint64) == b.(uint64) }

func (setModel) Partition(ops []Op, init, recovered any, hasRecovered bool) ([]Problem, error) {
	im := init.(map[uint64]uint64)
	var rm map[uint64]uint64
	if hasRecovered {
		rm = recovered.(map[uint64]uint64)
	}
	byKey := map[uint64][]Op{}
	for _, op := range ops {
		switch op.Code {
		case uc.OpInsert, uc.OpDelete, uc.OpGet, uc.OpContains:
			byKey[op.A0] = append(byKey[op.A0], op)
		default:
			return nil, fmt.Errorf("set model: %s is not key-partitionable", uc.OpName(op.Code))
		}
	}
	keys := map[uint64]bool{}
	for k := range byKey {
		keys[k] = true
	}
	for k := range im {
		keys[k] = true
	}
	for k := range rm {
		keys[k] = true
	}
	sorted := make([]uint64, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })

	valueOr := func(m map[uint64]uint64, k uint64) uint64 {
		if v, ok := m[k]; ok {
			return v
		}
		return uc.NotFound
	}
	var problems []Problem
	for _, k := range sorted {
		iv := valueOr(im, k)
		if len(byKey[k]) == 0 {
			// No operation touched this key: its value cannot have changed.
			if hasRecovered && valueOr(rm, k) != iv {
				return nil, fmt.Errorf("set model: key %d changed %d -> %d with no operation on it",
					k, iv, valueOr(rm, k))
			}
			continue
		}
		p := Problem{
			Label: fmt.Sprintf("key=%d", k),
			Ops:   byKey[k],
			Init:  iv,
			Step:  setKeyStep, Key: u64Key, Equal: u64Equal,
		}
		if hasRecovered {
			p.Recovered, p.HasRecovered = valueOr(rm, k), true
		}
		problems = append(problems, p)
	}
	return problems, nil
}

// --- sequence-state helpers shared by queue/stack/pqueue ---

func sliceKey(s any) string {
	vs := s.([]uint64)
	b := make([]byte, 0, len(vs)*8)
	for _, v := range vs {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return string(b)
}

func sliceEqual(a, b any) bool {
	x, y := a.([]uint64), b.([]uint64)
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// copyWithout returns a copy of vs with index i removed; copyWith a copy
// with v appended. States are immutable values shared across search
// branches, so every mutation copies.
func copyWithout(vs []uint64, i int) []uint64 {
	out := make([]uint64, 0, len(vs)-1)
	out = append(out, vs[:i]...)
	return append(out, vs[i+1:]...)
}

func copyWith(vs []uint64, v uint64) []uint64 {
	out := make([]uint64, 0, len(vs)+1)
	out = append(out, vs...)
	return append(out, v)
}

type seqKind int

const (
	fifo seqKind = iota
	lifo
	minHeap
)

// pairsModel covers the three ordered-container specs; only the step
// dispatch differs.
type pairsModel struct {
	name string
	kind seqKind
}

// QueueModel returns the FIFO queue specification (OpEnqueue, OpDequeue,
// OpPeek). State is the queued values, oldest first.
func QueueModel() Model { return pairsModel{"queue", fifo} }

// StackModel returns the LIFO stack specification (OpPush, OpPop, OpTop,
// OpPeek). State is the stacked values, bottom first.
func StackModel() Model { return pairsModel{"stack", lifo} }

// PQueueModel returns the min-priority-queue specification (OpEnqueue/
// OpInsert, OpDeleteMin/OpDequeue, OpMin/OpPeek). State is the sorted
// multiset of keys.
func PQueueModel() Model { return pairsModel{"pqueue", minHeap} }

func (m pairsModel) Name() string { return m.name }

func (m pairsModel) Empty() any { return []uint64{} }

func (m pairsModel) step(s any, code, a0 uint64) (any, uint64, bool) {
	vs := s.([]uint64)
	switch m.kind {
	case fifo:
		switch code {
		case uc.OpEnqueue:
			return copyWith(vs, a0), 1, true
		case uc.OpDequeue:
			if len(vs) == 0 {
				return vs, uc.NotFound, true
			}
			return copyWithout(vs, 0), vs[0], true
		case uc.OpPeek:
			if len(vs) == 0 {
				return vs, uc.NotFound, true
			}
			return vs, vs[0], true
		}
	case lifo:
		switch code {
		case uc.OpPush:
			return copyWith(vs, a0), 1, true
		case uc.OpPop:
			if len(vs) == 0 {
				return vs, uc.NotFound, true
			}
			return copyWithout(vs, len(vs)-1), vs[len(vs)-1], true
		case uc.OpTop, uc.OpPeek:
			if len(vs) == 0 {
				return vs, uc.NotFound, true
			}
			return vs, vs[len(vs)-1], true
		}
	case minHeap:
		switch code {
		case uc.OpEnqueue, uc.OpInsert:
			i := sort.Search(len(vs), func(j int) bool { return vs[j] >= a0 })
			out := make([]uint64, 0, len(vs)+1)
			out = append(out, vs[:i]...)
			out = append(out, a0)
			return append(out, vs[i:]...), 1, true
		case uc.OpDequeue, uc.OpDeleteMin:
			if len(vs) == 0 {
				return vs, uc.NotFound, true
			}
			return copyWithout(vs, 0), vs[0], true
		case uc.OpMin, uc.OpPeek:
			if len(vs) == 0 {
				return vs, uc.NotFound, true
			}
			return vs, vs[0], true
		}
	}
	if code == uc.OpSize {
		return vs, uint64(len(vs)), true
	}
	return vs, 0, false
}

func (m pairsModel) Apply(s any, code, a0, _ uint64) (any, uint64) {
	s2, res, ok := m.step(s, code, a0)
	if !ok {
		panic(fmt.Sprintf("linearize: %s model cannot apply %s", m.name, uc.OpName(code)))
	}
	return s2, res
}

func (m pairsModel) Partition(ops []Op, init, recovered any, hasRecovered bool) ([]Problem, error) {
	for _, op := range ops {
		if _, _, ok := m.step(m.Empty(), op.Code, op.A0); !ok {
			return nil, fmt.Errorf("%s model: unsupported op %s", m.name, uc.OpName(op.Code))
		}
		if op.Code == uc.OpSize {
			return nil, fmt.Errorf("%s model: Size is not checkable", m.name)
		}
	}
	p := Problem{
		Label: m.name,
		Ops:   ops,
		Init:  init,
		Step: func(s any, code, a0, _ uint64) (any, uint64) {
			s2, res, _ := m.step(s, code, a0)
			return s2, res
		},
		Key: sliceKey, Equal: sliceEqual,
	}
	if hasRecovered {
		p.Recovered, p.HasRecovered = recovered, true
	}
	if m.kind == fifo {
		p.Rank = fifoRank(ops, recovered, hasRecovered)
	}
	return []Problem{p}, nil
}

// fifoRank builds the queue model's exploration hint: in any legal
// linearization the enqueue order of the dequeued values equals their
// dequeue order, and the values still queued at the end sit in recovered
// order behind them. Ranking enqueues by that target position (and forced
// moves — dequeues/peeks — first) lets the DFS walk straight down the
// correct branch of a valid history instead of refuting wrong enqueue
// interleavings queue-depth steps later.
func fifoRank(ops []Op, recovered any, hasRecovered bool) func(op *Op) int {
	deqs := make([]Op, 0, len(ops))
	for _, op := range ops {
		if op.Code == uc.OpDequeue && op.Result != uc.NotFound &&
			(op.Class == Completed || op.Class == InFlightCommitted) {
			deqs = append(deqs, op)
		}
	}
	sort.SliceStable(deqs, func(a, b int) bool { return deqs[a].Invoke < deqs[b].Invoke })
	pos := make(map[uint64]int, len(deqs))
	n := 0
	for _, d := range deqs {
		if _, seen := pos[d.Result]; !seen {
			pos[d.Result] = n
			n++
		}
	}
	if hasRecovered {
		for _, v := range recovered.([]uint64) {
			if _, seen := pos[v]; !seen {
				pos[v] = n
				n++
			}
		}
	}
	unmatched := n + 1
	return func(op *Op) int {
		if op.Code != uc.OpEnqueue {
			return -1 // dequeues/peeks are forced moves: try them first
		}
		if r, ok := pos[op.A0]; ok {
			return r
		}
		return unmatched // value never observed again (e.g. vanished in-flight)
	}
}
