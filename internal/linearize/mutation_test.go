package linearize

// Mutation self-tests: hand-crafted illegal histories the checker must
// reject. These guard the checker itself — a checker that accepts
// everything would make every integration test meaningless.

import (
	"testing"

	"prepuc/internal/uc"
)

// A completed update whose effect is missing from the recovered state:
// the canonical durable-linearizability violation.
func TestMutationLostCompletedUpdate(t *testing.T) {
	ops := []Op{
		co(0, uc.OpInsert, 3, 33, 1, 0, 10),
		co(1, uc.OpInsert, 4, 44, 1, 0, 12),
	}
	rec := setState(4, 44) // key 3's completed insert vanished
	mustFail(t, CheckEpoch(SetModel(), nil, ops, rec, Options{}))
	// Buffered with a zero allowance must reject too...
	mustFail(t, CheckEpoch(SetModel(), nil, ops, rec, Options{Buffered: true, Allowance: 0}))
	// ...and accept once the loss fits the ε+β−1 budget.
	mustOK(t, CheckEpoch(SetModel(), nil, ops, rec, Options{Buffered: true, Allowance: 1}))
}

// A read that returns a value no operation had written yet: the insert of
// 70 was invoked strictly after the read returned.
func TestMutationValueFromTheFutureRead(t *testing.T) {
	ops := []Op{
		co(0, uc.OpGet, 7, 0, 70, 0, 10),
		co(1, uc.OpInsert, 7, 70, 1, 20, 30),
	}
	mustFail(t, CheckEpoch(SetModel(), nil, ops, nil, Options{}))
	mustFail(t, CheckEpoch(SetModel(), nil, ops, setState(7, 70), Options{Buffered: true, Allowance: 8}))
}

// Dequeues observing two sequentially ordered enqueues in reverse order.
func TestMutationFIFOInversion(t *testing.T) {
	ops := []Op{
		co(0, uc.OpEnqueue, 1, 0, 1, 0, 10),
		co(0, uc.OpEnqueue, 2, 0, 1, 20, 30),
		co(1, uc.OpDequeue, 0, 0, 2, 40, 50),
		co(1, uc.OpDequeue, 0, 0, 1, 60, 70),
	}
	mustFail(t, CheckEpoch(QueueModel(), nil, ops, []uint64{}, Options{}))
	mustFail(t, CheckEpoch(QueueModel(), nil, ops, []uint64{}, Options{Buffered: true, Allowance: 8}))
}

// An in-flight operation may take effect at most once. Observing its
// effect twice — in the recovered state, or through two dequeues — means
// recovery replayed it.
func TestMutationDuplicatedInFlightEffect(t *testing.T) {
	// The drained recovered queue contains the in-flight enqueue's value
	// twice.
	ops := []Op{
		io(0, uc.OpEnqueue, 7, 0, 5),
	}
	mustFail(t, CheckEpoch(QueueModel(), nil, ops, []uint64{7, 7}, Options{}))
	mustOK(t, CheckEpoch(QueueModel(), nil, ops, []uint64{7}, Options{}))
	mustOK(t, CheckEpoch(QueueModel(), nil, ops, []uint64{}, Options{}))

	// Two completed dequeues both claim the single in-flight enqueue.
	ops2 := []Op{
		io(0, uc.OpEnqueue, 7, 0, 5),
		co(1, uc.OpDequeue, 0, 0, 7, 10, 20),
		co(1, uc.OpDequeue, 0, 0, 7, 30, 40),
	}
	mustFail(t, CheckEpoch(QueueModel(), nil, ops2, nil, Options{}))
	mustFail(t, CheckEpoch(QueueModel(), nil, ops2, nil, Options{Buffered: true, Allowance: 8}))
}

// A duplicated completed effect on the set: the same fresh-insert response
// twice with no delete between them.
func TestMutationDuplicatedFreshInsert(t *testing.T) {
	ops := []Op{
		co(0, uc.OpInsert, 9, 90, 1, 0, 10),
		co(0, uc.OpInsert, 9, 90, 1, 20, 30), // must have returned 0
	}
	mustFail(t, CheckEpoch(SetModel(), nil, ops, nil, Options{}))
}

// A stack pop observing a value that a sequentially later push wrote.
func TestMutationStackFutureValue(t *testing.T) {
	ops := []Op{
		co(0, uc.OpPop, 0, 0, 5, 0, 10),
		co(1, uc.OpPush, 5, 0, 1, 20, 30),
	}
	mustFail(t, CheckEpoch(StackModel(), nil, ops, nil, Options{}))
}
