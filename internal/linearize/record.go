package linearize

import (
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// Recorder captures an invoke/response history from concurrently executing
// workers. Each worker owns a private log, so recording adds no shared
// state to the measured path; timestamps come from the simulator's virtual
// clock, which the scheduler keeps consistent with real-time order across
// threads (minimum-clock-first dispatch).
//
// Crash safety: Invoke appends the operation as InFlight before the
// construction runs it. If a simulated crash unwinds the worker
// mid-operation the entry simply stays InFlight; the worker's recover
// handler never needs to touch the recorder.
type Recorder struct {
	logs [][]Op
}

// NewRecorder creates a recorder for the given number of clients.
func NewRecorder(clients int) *Recorder {
	return &Recorder{logs: make([][]Op, clients)}
}

// Exec records one operation around exec: the invoke timestamp before, the
// response and return timestamp after. It returns exec's result.
func (r *Recorder) Exec(t *sim.Thread, client int, op uc.Op, exec func() uint64) uint64 {
	log := &r.logs[client]
	*log = append(*log, Op{
		Client: client,
		Code:   op.Code, A0: op.A0, A1: op.A1,
		Invoke: t.Clock(), Return: ^uint64(0),
		Class: InFlight,
	})
	res := exec()
	rec := &(*log)[len(*log)-1]
	rec.Result = res
	rec.Return = t.Clock()
	rec.Class = Completed
	return res
}

// Ops returns every recorded operation, grouped by client. The checker
// does not care about inter-client order; timestamps carry it.
func (r *Recorder) Ops() []Op {
	var all []Op
	for _, log := range r.logs {
		all = append(all, log...)
	}
	return all
}

// Completed counts operations whose responses were observed.
func (r *Recorder) Completed() int {
	n := 0
	for _, log := range r.logs {
		for i := range log {
			if log[i].Class == Completed {
				n++
			}
		}
	}
	return n
}

// InFlight counts operations cut off by a crash.
func (r *Recorder) InFlight() int {
	n := 0
	for _, log := range r.logs {
		for i := range log {
			if log[i].Class == InFlight {
				n++
			}
		}
	}
	return n
}

// Reset clears the logs for the next epoch, keeping the client count.
func (r *Recorder) Reset() {
	for i := range r.logs {
		r.logs[i] = nil
	}
}
