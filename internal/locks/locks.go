// Package locks provides the spin locks used by the universal
// constructions: the combiner trylock and reader–writer lock of node
// replication, and the strong try reader–writer lock of CX-PUC.
//
// Lock state lives in simulated memory words so that acquisitions are
// charged NUMA-aware access costs, contention is visible to the virtual-time
// scheduler, and state evaporates at a crash exactly like real lock words in
// volatile cache/DRAM.
//
// Every successful acquisition is recorded in the system's metrics registry
// (metrics.LockAcquisitions); locks constructed once and shared (the
// combiner TryLock, the RW locks) additionally record hand-offs — a
// successful acquisition by a different thread than the previous holder,
// the event that makes a lock line migrate between caches. The hand-off
// state is host-side and costs no virtual time.
package locks

import (
	"prepuc/internal/nvm"
	"prepuc/internal/sim"
)

// holder tracks the last thread to successfully acquire a lock, for
// hand-off accounting. It is shared by every by-value copy of the lock.
type holder struct{ last int32 }

const noHolder = int32(-1)

// recordAcquire counts one successful exclusive acquisition, and a hand-off
// when the acquirer differs from the previous holder.
func (h *holder) recordAcquire(t *sim.Thread, m *nvm.Memory) {
	met := m.Metrics()
	met.LockAcquisitions++
	if h == nil {
		return
	}
	if h.last != noHolder && h.last != int32(t.ID()) {
		met.LockHandoffs++
	}
	h.last = int32(t.ID())
}

// TryLock is a test-and-set lock with no blocking acquire; node replication
// uses one per replica as the combiner lock.
type TryLock struct {
	m   *nvm.Memory
	off uint64
	h   *holder
}

// NewTryLock wraps the word at off in m (the word must be zero-initialized).
func NewTryLock(m *nvm.Memory, off uint64) TryLock {
	return TryLock{m, off, &holder{last: noHolder}}
}

// TryAcquire attempts to take the lock; it never blocks.
func (l TryLock) TryAcquire(t *sim.Thread) bool {
	// Test-and-test-and-set: avoid hammering CAS on a held lock.
	if l.m.Load(t, l.off) != 0 {
		return false
	}
	if !l.m.CAS(t, l.off, 0, 1) {
		return false
	}
	l.h.recordAcquire(t, l.m)
	return true
}

// Release unlocks. Only the holder may call it.
func (l TryLock) Release(t *sim.Thread) { l.m.Store(t, l.off, 0) }

// Held reports whether some thread holds the lock (racy snapshot).
func (l TryLock) Held(t *sim.Thread) bool { return l.m.Load(t, l.off) != 0 }

// RWLock is a word-based reader–writer spin lock. The word holds the reader
// count; the writer bit is the top bit.
type RWLock struct {
	m   *nvm.Memory
	off uint64
	h   *holder
}

const writerBit = uint64(1) << 63

// NewRWLock wraps the word at off in m (the word must be zero-initialized).
func NewRWLock(m *nvm.Memory, off uint64) RWLock {
	return RWLock{m, off, &holder{last: noHolder}}
}

// ReadLock blocks (spins in virtual time) until no writer holds the lock.
func (l RWLock) ReadLock(t *sim.Thread) {
	for {
		w := l.m.Load(t, l.off)
		if w&writerBit == 0 && l.m.CAS(t, l.off, w, w+1) {
			l.m.Metrics().LockAcquisitions++
			return
		}
		t.Step(spinCost(t))
	}
}

// ReadUnlock releases one reader.
func (l RWLock) ReadUnlock(t *sim.Thread) {
	for {
		w := l.m.Load(t, l.off)
		if l.m.CAS(t, l.off, w, w-1) {
			return
		}
		t.Step(spinCost(t))
	}
}

// WriteLock blocks until the lock is completely free, then takes it
// exclusively.
func (l RWLock) WriteLock(t *sim.Thread) {
	for {
		if l.m.Load(t, l.off) == 0 && l.m.CAS(t, l.off, 0, writerBit) {
			l.h.recordAcquire(t, l.m)
			return
		}
		t.Step(spinCost(t))
	}
}

// WriteUnlock releases the exclusive lock.
func (l RWLock) WriteUnlock(t *sim.Thread) { l.m.Store(t, l.off, 0) }

// TryWriteLock attempts exclusive acquisition without blocking. CX-PUC's
// strong try reader–writer lock exposes this.
func (l RWLock) TryWriteLock(t *sim.Thread) bool {
	if l.m.Load(t, l.off) == 0 && l.m.CAS(t, l.off, 0, writerBit) {
		l.h.recordAcquire(t, l.m)
		return true
	}
	return false
}

// TryReadLock attempts shared acquisition without blocking.
func (l RWLock) TryReadLock(t *sim.Thread) bool {
	w := l.m.Load(t, l.off)
	if w&writerBit == 0 && l.m.CAS(t, l.off, w, w+1) {
		l.m.Metrics().LockAcquisitions++
		return true
	}
	return false
}

// spinCost is the virtual-time price of one failed acquisition loop
// iteration (a PAUSE instruction plus scheduling slack).
func spinCost(t *sim.Thread) uint64 {
	// The costs table lives on the nvm system; locks only see memories, so
	// the spin price rides on the thread via a fixed small constant. Memory
	// accesses in the loop already dominate the charged time.
	return 8
}

// DistRWLock is the distributed reader–writer lock of node replication:
// each reader thread owns a whole cache line for its reader flag, so
// read-lock acquisition touches only thread-private state plus a shared
// load of the writer word — no line ping-pong between readers, which is
// what lets NR's read-only operations scale. Writers raise the writer word
// and wait for every reader flag to drain.
//
// Layout starting at off: writer word (one line), then one line per reader
// slot.
type DistRWLock struct {
	m     *nvm.Memory
	off   uint64
	slots int
	h     *holder
}

// DistRWLockWords returns the region size needed for a lock with the given
// number of reader slots.
func DistRWLockWords(slots int) uint64 {
	return uint64(1+slots) * nvm.WordsPerLine
}

// NewDistRWLock wraps the region at off in m (must be zero-initialized and
// DistRWLockWords(slots) long).
func NewDistRWLock(m *nvm.Memory, off uint64, slots int) DistRWLock {
	return DistRWLock{m: m, off: off, slots: slots, h: &holder{last: noHolder}}
}

func (l DistRWLock) writerOff() uint64 { return l.off }
func (l DistRWLock) slotOff(slot int) uint64 {
	return l.off + uint64(1+slot)*nvm.WordsPerLine
}

// ReadLock acquires the lock in shared mode for the given reader slot.
func (l DistRWLock) ReadLock(t *sim.Thread, slot int) {
	for {
		l.m.Store(t, l.slotOff(slot), 1)
		if l.m.Load(t, l.writerOff()) == 0 {
			l.m.Metrics().LockAcquisitions++
			return
		}
		// A writer is active or arriving: stand down and wait.
		l.m.Store(t, l.slotOff(slot), 0)
		for l.m.Load(t, l.writerOff()) != 0 {
			t.Step(spinCost(t))
		}
	}
}

// ReadUnlock releases the reader slot.
func (l DistRWLock) ReadUnlock(t *sim.Thread, slot int) {
	l.m.Store(t, l.slotOff(slot), 0)
}

// WriteLock acquires the lock exclusively: raise the writer word, then wait
// for every reader flag to drain.
func (l DistRWLock) WriteLock(t *sim.Thread) {
	for !l.m.CAS(t, l.writerOff(), 0, 1) {
		t.Step(spinCost(t))
	}
	for s := 0; s < l.slots; s++ {
		for l.m.Load(t, l.slotOff(s)) != 0 {
			t.Step(spinCost(t))
		}
	}
	l.h.recordAcquire(t, l.m)
}

// WriteUnlock releases the exclusive lock.
func (l DistRWLock) WriteUnlock(t *sim.Thread) {
	l.m.Store(t, l.writerOff(), 0)
}
