package locks

import (
	"testing"

	"prepuc/internal/nvm"
	"prepuc/internal/sim"
)

func newMem(sch *sim.Scheduler) *nvm.Memory {
	sys := nvm.NewSystem(sch, nvm.Config{Costs: sim.UnitCosts()})
	return sys.NewMemory("m", nvm.Volatile, 0, 64)
}

func TestTryLockMutualExclusion(t *testing.T) {
	sch := sim.New(1)
	m := newMem(sch)
	l := NewTryLock(m, 0)
	inCS := 0
	maxInCS := 0
	const n, per = 8, 100
	acquired := 0
	for w := 0; w < n; w++ {
		sch.Spawn("w", w%2, 0, func(th *sim.Thread) {
			for i := 0; i < per; i++ {
				if l.TryAcquire(th) {
					inCS++
					if inCS > maxInCS {
						maxInCS = inCS
					}
					acquired++
					th.Step(5) // critical section work
					inCS--
					l.Release(th)
				} else {
					th.Step(3)
				}
			}
		})
	}
	sch.Run()
	if maxInCS != 1 {
		t.Errorf("max threads in critical section = %d, want 1", maxInCS)
	}
	if acquired == 0 {
		t.Error("no thread ever acquired the trylock")
	}
}

func TestTryLockFailsWhenHeld(t *testing.T) {
	sch := sim.New(1)
	m := newMem(sch)
	l := NewTryLock(m, 0)
	sch.Spawn("t", 0, 0, func(th *sim.Thread) {
		if !l.TryAcquire(th) {
			t.Error("initial acquire failed")
		}
		if l.TryAcquire(th) {
			t.Error("second acquire of held trylock succeeded")
		}
		if !l.Held(th) {
			t.Error("Held = false while held")
		}
		l.Release(th)
		if !l.TryAcquire(th) {
			t.Error("acquire after release failed")
		}
	})
	sch.Run()
}

func TestRWLockWriterExcludesAll(t *testing.T) {
	sch := sim.New(2)
	m := newMem(sch)
	l := NewRWLock(m, 8)
	writers, readers := 0, 0
	bad := false
	for w := 0; w < 3; w++ {
		sch.Spawn("writer", 0, 0, func(th *sim.Thread) {
			for i := 0; i < 50; i++ {
				l.WriteLock(th)
				writers++
				if writers != 1 || readers != 0 {
					bad = true
				}
				th.Step(7)
				writers--
				l.WriteUnlock(th)
				th.Step(3)
			}
		})
	}
	for r := 0; r < 5; r++ {
		sch.Spawn("reader", 1, 0, func(th *sim.Thread) {
			for i := 0; i < 50; i++ {
				l.ReadLock(th)
				readers++
				if writers != 0 {
					bad = true
				}
				th.Step(4)
				readers--
				l.ReadUnlock(th)
				th.Step(2)
			}
		})
	}
	sch.Run()
	if bad {
		t.Error("reader/writer exclusion violated")
	}
}

func TestRWLockReadersShare(t *testing.T) {
	sch := sim.New(3)
	m := newMem(sch)
	l := NewRWLock(m, 8)
	concurrent := 0
	maxConcurrent := 0
	for r := 0; r < 6; r++ {
		sch.Spawn("reader", 0, 0, func(th *sim.Thread) {
			l.ReadLock(th)
			concurrent++
			if concurrent > maxConcurrent {
				maxConcurrent = concurrent
			}
			for i := 0; i < 30; i++ {
				th.Step(5)
			}
			concurrent--
			l.ReadUnlock(th)
		})
	}
	sch.Run()
	if maxConcurrent < 2 {
		t.Errorf("max concurrent readers = %d, want ≥ 2", maxConcurrent)
	}
}

func TestTryWriteLock(t *testing.T) {
	sch := sim.New(4)
	m := newMem(sch)
	l := NewRWLock(m, 8)
	sch.Spawn("t", 0, 0, func(th *sim.Thread) {
		if !l.TryWriteLock(th) {
			t.Error("TryWriteLock on free lock failed")
		}
		if l.TryWriteLock(th) {
			t.Error("TryWriteLock on held lock succeeded")
		}
		if l.TryReadLock(th) {
			t.Error("TryReadLock while write-held succeeded")
		}
		l.WriteUnlock(th)
		if !l.TryReadLock(th) {
			t.Error("TryReadLock on free lock failed")
		}
		if l.TryWriteLock(th) {
			t.Error("TryWriteLock while read-held succeeded")
		}
		if !l.TryReadLock(th) {
			t.Error("second TryReadLock failed")
		}
		l.ReadUnlock(th)
		l.ReadUnlock(th)
		if !l.TryWriteLock(th) {
			t.Error("TryWriteLock after all readers left failed")
		}
	})
	sch.Run()
}

func TestWriteLockWaitsForReaders(t *testing.T) {
	sch := sim.New(5)
	m := newMem(sch)
	l := NewRWLock(m, 8)
	readerDone := false
	var writerEntered bool
	sch.Spawn("reader", 0, 0, func(th *sim.Thread) {
		l.ReadLock(th)
		for i := 0; i < 100; i++ {
			th.Step(10)
		}
		readerDone = true
		l.ReadUnlock(th)
	})
	sch.Spawn("writer", 0, 0, func(th *sim.Thread) {
		th.Step(5) // let the reader in first
		l.WriteLock(th)
		writerEntered = true
		if !readerDone {
			t.Error("writer entered while reader held the lock")
		}
		l.WriteUnlock(th)
	})
	sch.Run()
	if !writerEntered {
		t.Error("writer never entered")
	}
}
