// Package metrics is the engine-wide observability layer: a flat set of
// event counters and virtual-time phase accumulators recorded inline by the
// instrumented packages (nvm, oplog, locks, core) and exposed as immutable
// snapshots through uc.Instrumented and the harness bench output.
//
// Counters are host-side Go integers, not simulated memory: incrementing one
// performs no sim.Thread.Step and therefore costs zero *virtual* time, so
// instrumentation can never perturb a measured figure — Volatile-mode
// throughput with the counters live is bit-identical to the uninstrumented
// engine. The simulator's cooperative scheduling (one runnable thread at a
// time) also means plain increments need no atomics.
//
// Phase timers follow the same rule: callers sample sim.Thread.Clock()
// around a waiting phase and add the delta to an accumulator, measuring
// virtual time without spending any.
package metrics

import "reflect"

// BatchHistBuckets is the number of power-of-two batch-size histogram
// buckets: bucket i counts combined batches of size [2^i, 2^(i+1)) with the
// last bucket open-ended.
const BatchHistBuckets = 8

// Counters is every raw, monotonically increasing event counter of one
// simulated machine. Each field is incremented at its single source of
// truth; see the package comments of nvm, oplog, locks and core for exactly
// where. JSON tags define the wire names of the bench output schema.
type Counters struct {
	// Simulated-memory traffic (internal/nvm).
	Loads  uint64 `json:"loads"`
	Stores uint64 `json:"stores"`
	CASes  uint64 `json:"cas_ops"`

	// Persistence-instruction traffic (internal/nvm). FlushAsync counts
	// CLWB/CLFLUSHOPT issues that actually reached the write-back path
	// (including the per-line charges of bulk region flushes), FlushSync
	// counts blocking CLFLUSHes, Fences counts SFENCEs.
	// FlushElisionChecks counts every flush request that consulted the
	// per-line dirty state (all of them, in elision mode); FlushesElided
	// counts the subset found clean (or already pending on the issuing
	// thread) whose write-back was skipped — the FliT-style saving. In the
	// reference no-elision mode both stay zero and every request lands in
	// FlushAsync/FlushSync.
	FlushAsync         uint64 `json:"flush_async"`
	FlushSync          uint64 `json:"flush_sync"`
	FlushElisionChecks uint64 `json:"flush_elision_checks"`
	FlushesElided      uint64 `json:"flushes_elided"`
	Fences             uint64 `json:"fences"`
	WBINVDs            uint64 `json:"wbinvd_count"`
	WBINVDLines        uint64 `json:"wbinvd_lines"`
	BGFlushes          uint64 `json:"bg_flushes"`
	LinesWrittenBack   uint64 `json:"lines_written_back"`

	// Coherence-cost events (internal/nvm): how often an access paid an
	// intra-node cache-to-cache transfer (or sharer invalidation) vs a
	// cross-socket transfer.
	CoherenceLocal  uint64 `json:"coherence_local"`
	CoherenceRemote uint64 `json:"coherence_remote"`

	// Crash-time fault injection (internal/nvm, internal/fault): the fate of
	// flushed-but-unfenced lines at each crash materialization, cumulative
	// across the machine's crash lineage (the registry survives Recover).
	CrashLinesPersisted uint64 `json:"crash_lines_persisted"`
	CrashLinesDropped   uint64 `json:"crash_lines_dropped"`

	// Snapshot machinery (internal/nvm). Host-side substrate work, not
	// simulated-hardware events, so these are excluded from the wire format
	// (`json:"-"`): adding them must not change any byte of the bench or
	// crashtest documents. Clones counts System.Clone calls; PagesCopied
	// counts COW pages privatized on first write after a Clone/Recover;
	// LinesScannedAtCrash counts pending (flushed-but-unfenced) lines
	// examined by crash materializations — with an empty pending set,
	// Recover short-circuits and the counter shows exactly zero scan work.
	Clones              uint64 `json:"-"`
	PagesCopied         uint64 `json:"-"`
	LinesScannedAtCrash uint64 `json:"-"`

	// Recovery (internal/core and the other constructions' Recover paths).
	// RecoveryRestarts counts partially built generations a re-entrant
	// recovery had to skip over (one per crash that hit a recovery run);
	// ReplayHoles counts not-fully-persisted log entries skipped below a
	// persisted completedTail — always zero unless the flush protocol is
	// violated.
	RecoveryRestarts uint64 `json:"recovery_restarts"`
	ReplayHoles      uint64 `json:"replay_holes"`

	// Shared operation log (internal/oplog).
	LogTailCASAttempts uint64 `json:"logtail_cas_attempts"`
	LogTailCASFailures uint64 `json:"logtail_cas_failures"`
	LogWraps           uint64 `json:"log_wraps"`

	// Locks (internal/locks). A hand-off is a successful combiner-lock
	// acquisition by a different thread than the previous holder.
	LockAcquisitions uint64 `json:"lock_acquisitions"`
	LockHandoffs     uint64 `json:"lock_handoffs"`

	// Engine (internal/core).
	Updates              uint64                   `json:"updates"`
	Reads                uint64                   `json:"reads"`
	CombinerAcquisitions uint64                   `json:"combiner_acquisitions"`
	CombinedOps          uint64                   `json:"combined_ops"`
	BatchHist            [BatchHistBuckets]uint64 `json:"batch_hist"`
	FlushBoundaryStallNS uint64                   `json:"flush_boundary_stall_ns"`
	PersistCycles        uint64                   `json:"persist_cycles"`
	PersistCycleNS       uint64                   `json:"persist_cycle_ns"`
	BoundaryReductions   uint64                   `json:"boundary_reductions"`
	CrossNodeHelps       uint64                   `json:"cross_node_helps"`
	UpdateNowServices    uint64                   `json:"update_now_services"`

	// Async submission layer (internal/svc, internal/core ExecuteBatch).
	// Excluded from the wire format like the snapshot counters above: the
	// bench and crashtest documents predate the service layer and their
	// goldens must not change. prepserve reads these from live snapshots.
	RingSubmits    uint64 `json:"-"` // ops accepted into a submission ring
	RingFullStalls uint64 `json:"-"` // TrySubmit rejections on a full ring
	RingBatches    uint64 `json:"-"` // ExecuteBatch calls from ring consumers
	RingBatchedOps uint64 `json:"-"` // ops carried by those calls

	// Detectable execution (internal/core desc.go, internal/harness resume).
	// Wire-excluded like the ring counters: the bench/crashtest goldens
	// predate descriptors. DescriptorWrites counts operation descriptors
	// written by combiners; DescriptorFlushes counts the explicit per-line
	// descriptor flushes of the durable path (zero in Volatile and Buffered
	// modes, whose descriptors ride the checkpoint WBINVD); DedupHits counts
	// in-flight operations a post-crash resume resolved as already committed
	// and therefore did not resubmit.
	DescriptorWrites  uint64 `json:"-"`
	DescriptorFlushes uint64 `json:"-"`
	DedupHits         uint64 `json:"-"`
}

// Wire returns the counters with the host-side substrate fields (`json:"-"`,
// see above) zeroed: exactly what survives a marshal/unmarshal round-trip.
// Document builders use it so a point carries only simulated-hardware
// counters — host-side work is not part of the machine being measured.
func (c Counters) Wire() Counters {
	c.Clones, c.PagesCopied, c.LinesScannedAtCrash = 0, 0, 0
	c.RingSubmits, c.RingFullStalls, c.RingBatches, c.RingBatchedOps = 0, 0, 0, 0
	c.DescriptorWrites, c.DescriptorFlushes, c.DedupHits = 0, 0, 0
	return c
}

// Registry is the live, mutable counter set of one simulated machine
// (one nvm.System owns exactly one). Instrumented packages increment the
// embedded Counters fields directly.
type Registry struct {
	Counters
}

// NewRegistry returns a zeroed registry.
func NewRegistry() *Registry { return &Registry{} }

// ObserveBatch records one combined batch of n operations.
func (r *Registry) ObserveBatch(n uint64) {
	r.CombinerAcquisitions++
	r.CombinedOps += n
	r.BatchHist[batchBucket(n)]++
}

// batchBucket maps a batch size to its power-of-two histogram bucket.
func batchBucket(n uint64) int {
	b := 0
	for n > 1 && b < BatchHistBuckets-1 {
		n >>= 1
		b++
	}
	return b
}

// Snapshot is an immutable copy of the counters at one instant plus derived
// quantities. Snapshots of one registry taken at two instants can be
// subtracted to isolate a measurement phase. Snapshot is comparable (no
// slices or maps), so points carrying one still support == in tests.
type Snapshot struct {
	Counters
	// Flushes is FlushAsync + FlushSync: every explicit cache-line
	// write-back instruction issued.
	Flushes uint64 `json:"flushes"`
	// MeanBatchSize is CombinedOps / CombinerAcquisitions (0 when no
	// batches were combined).
	MeanBatchSize float64 `json:"mean_batch_size"`
}

// Snapshot copies the current counters and computes the derived fields.
func (r *Registry) Snapshot() Snapshot { return finish(r.Counters) }

// Sub returns the counter deltas s − base with derived fields recomputed
// over the delta. base must be an earlier snapshot of the same registry.
func (s Snapshot) Sub(base Snapshot) Snapshot {
	return finish(subCounters(s.Counters, base.Counters))
}

// Add returns the field-wise sum s + other with derived fields recomputed
// over the sum — the cross-instance aggregation primitive of the sharded
// harness: S independent machines each own a registry, and the aggregate
// record is the Add-fold of their snapshots. Like Sub it is field-complete
// by reflection, so a newly added counter can never silently be dropped
// from aggregates.
func (s Snapshot) Add(other Snapshot) Snapshot {
	return finish(addCounters(s.Counters, other.Counters))
}

// Wire is Counters.Wire lifted to a snapshot: the result survives a JSON
// round-trip unchanged.
func (s Snapshot) Wire() Snapshot {
	s.Counters = s.Counters.Wire()
	return s
}

func finish(c Counters) Snapshot {
	snap := Snapshot{Counters: c, Flushes: c.FlushAsync + c.FlushSync}
	if c.CombinerAcquisitions > 0 {
		snap.MeanBatchSize = float64(c.CombinedOps) / float64(c.CombinerAcquisitions)
	}
	return snap
}

// subCounters subtracts b from a field-wise. Counters is a flat struct of
// uint64s and uint64 arrays; reflection keeps the subtraction in lockstep
// with the field list (a new counter can never be forgotten here). This is a
// cold path — once per measured point — so reflection cost is irrelevant.
func subCounters(a, b Counters) Counters {
	return combineCounters(a, b, func(x, y uint64) uint64 { return x - y })
}

// addCounters sums a and b field-wise, with the same reflection-enforced
// field completeness as subCounters.
func addCounters(a, b Counters) Counters {
	return combineCounters(a, b, func(x, y uint64) uint64 { return x + y })
}

func combineCounters(a, b Counters, op func(x, y uint64) uint64) Counters {
	va := reflect.ValueOf(&a).Elem()
	vb := reflect.ValueOf(b)
	for i := 0; i < va.NumField(); i++ {
		fa, fb := va.Field(i), vb.Field(i)
		switch fa.Kind() {
		case reflect.Uint64:
			fa.SetUint(op(fa.Uint(), fb.Uint()))
		case reflect.Array:
			for j := 0; j < fa.Len(); j++ {
				fa.Index(j).SetUint(op(fa.Index(j).Uint(), fb.Index(j).Uint()))
			}
		default:
			panic("metrics: unsupported Counters field kind " + fa.Kind().String())
		}
	}
	return a
}
