package metrics

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestSnapshotDerivedFields(t *testing.T) {
	r := NewRegistry()
	r.FlushAsync = 10
	r.FlushSync = 3
	r.ObserveBatch(4)
	r.ObserveBatch(2)
	s := r.Snapshot()
	if s.Flushes != 13 {
		t.Errorf("Flushes = %d, want 13", s.Flushes)
	}
	if s.MeanBatchSize != 3.0 {
		t.Errorf("MeanBatchSize = %f, want 3.0", s.MeanBatchSize)
	}
	if s.CombinerAcquisitions != 2 || s.CombinedOps != 6 {
		t.Errorf("batch counters = (%d, %d), want (2, 6)", s.CombinerAcquisitions, s.CombinedOps)
	}
}

func TestBatchBuckets(t *testing.T) {
	cases := []struct {
		n    uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{15, 3}, {16, 4}, {128, 7}, {1 << 40, 7},
	}
	for _, c := range cases {
		if got := batchBucket(c.n); got != c.want {
			t.Errorf("batchBucket(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	r := NewRegistry()
	r.ObserveBatch(5)
	if r.BatchHist[2] != 1 {
		t.Errorf("ObserveBatch(5) landed in %v", r.BatchHist)
	}
}

func TestSnapshotSub(t *testing.T) {
	r := NewRegistry()
	r.Fences = 5
	r.Loads = 100
	r.ObserveBatch(3)
	base := r.Snapshot()
	r.Fences = 9
	r.Loads = 250
	r.ObserveBatch(3)
	r.ObserveBatch(1)
	d := r.Snapshot().Sub(base)
	if d.Fences != 4 || d.Loads != 150 {
		t.Errorf("delta = fences %d loads %d, want 4, 150", d.Fences, d.Loads)
	}
	if d.CombinerAcquisitions != 2 || d.CombinedOps != 4 {
		t.Errorf("delta batches = (%d, %d), want (2, 4)", d.CombinerAcquisitions, d.CombinedOps)
	}
	if d.MeanBatchSize != 2.0 {
		t.Errorf("delta mean batch = %f, want 2.0", d.MeanBatchSize)
	}
	if d.BatchHist[1] != 1 || d.BatchHist[0] != 1 {
		t.Errorf("delta hist = %v", d.BatchHist)
	}
}

// TestSubCoversEveryField guards the reflection-based subtraction: a
// snapshot minus itself must be identically zero, whatever fields Counters
// grows.
func TestSubCoversEveryField(t *testing.T) {
	r := NewRegistry()
	r.Loads, r.Stores, r.CASes = 1, 2, 3
	r.Fences, r.WBINVDs, r.LogWraps = 4, 5, 6
	r.ObserveBatch(7)
	s := r.Snapshot()
	if d := s.Sub(s); d != (Snapshot{}) {
		t.Errorf("s.Sub(s) = %+v, want zero", d)
	}
}

// TestAddIsFieldComplete proves Add sums *every* Counters field exactly,
// via reflection: each scalar field (and array element) of the operands is
// set to a distinct nonzero value, and the sum is verified field by field.
// A field Add skipped would surface as its a-value instead of a+b — so a
// future counter cannot silently be dropped from cross-shard aggregates.
func TestAddIsFieldComplete(t *testing.T) {
	var a, b Counters
	va := reflect.ValueOf(&a).Elem()
	vb := reflect.ValueOf(&b).Elem()
	next := uint64(1)
	fill := func(v reflect.Value) {
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			switch f.Kind() {
			case reflect.Uint64:
				f.SetUint(next)
				next++
			case reflect.Array:
				for j := 0; j < f.Len(); j++ {
					f.Index(j).SetUint(next)
					next++
				}
			default:
				t.Fatalf("unsupported Counters field kind %v", f.Kind())
			}
		}
	}
	fill(va)
	fill(vb)

	sum := Snapshot{Counters: a}.Add(Snapshot{Counters: b})
	vs := reflect.ValueOf(sum.Counters)
	fields := 0
	for i := 0; i < vs.NumField(); i++ {
		fs, fa, fb := vs.Field(i), va.Field(i), vb.Field(i)
		name := vs.Type().Field(i).Name
		switch fs.Kind() {
		case reflect.Uint64:
			fields++
			if fs.Uint() != fa.Uint()+fb.Uint() {
				t.Errorf("%s = %d, want %d+%d", name, fs.Uint(), fa.Uint(), fb.Uint())
			}
		case reflect.Array:
			for j := 0; j < fs.Len(); j++ {
				fields++
				if fs.Index(j).Uint() != fa.Index(j).Uint()+fb.Index(j).Uint() {
					t.Errorf("%s[%d] = %d, want %d+%d", name, j,
						fs.Index(j).Uint(), fa.Index(j).Uint(), fb.Index(j).Uint())
				}
			}
		}
	}
	if want := int(next - 1); fields*2 != want {
		t.Errorf("verified %d scalar slots, but %d were filled", fields*2, want)
	}

	// Derived fields are recomputed over the sum, not added.
	if sum.Flushes != sum.FlushAsync+sum.FlushSync {
		t.Errorf("Flushes = %d, want %d", sum.Flushes, sum.FlushAsync+sum.FlushSync)
	}
	if want := float64(sum.CombinedOps) / float64(sum.CombinerAcquisitions); sum.MeanBatchSize != want {
		t.Errorf("MeanBatchSize = %f, want %f", sum.MeanBatchSize, want)
	}
}

// TestAddSubRoundTrip: (a+b)−b must be exactly a for every field.
func TestAddSubRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Loads, r.Fences, r.DedupHits = 10, 20, 30
	r.ObserveBatch(4)
	a := r.Snapshot()
	r2 := NewRegistry()
	r2.Loads, r2.Stores, r2.RingSubmits = 7, 8, 9
	r2.ObserveBatch(2)
	b := r2.Snapshot()
	if got := a.Add(b).Sub(b); got != a {
		t.Errorf("(a+b)-b = %+v, want %+v", got, a)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Fences = 2
	r.WBINVDs = 1
	r.CoherenceLocal = 7
	r.CoherenceRemote = 9
	r.FlushAsync = 11
	r.ObserveBatch(4)
	s := r.Snapshot()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	// The wire names the bench schema promises must be present.
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"flushes", "fences", "wbinvd_count", "coherence_local",
		"coherence_remote", "combiner_acquisitions", "mean_batch_size",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("snapshot JSON missing key %q", key)
		}
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, s)
	}
}
