// Package numa models the NUMA topology and thread-pinning policy of the
// paper's evaluation machine: worker thread IDs fill node 0 completely
// before spilling onto node 1, matching "all available processors on a NUMA
// node are utilized before utilizing processors on other nodes" (§6).
package numa

// Topology describes a machine with Nodes NUMA nodes and ThreadsPerNode
// hardware threads on each (the paper's β).
type Topology struct {
	Nodes          int
	ThreadsPerNode int
}

// Paper is the evaluation machine: 2 sockets × 48 hardware threads.
func Paper() Topology { return Topology{Nodes: 2, ThreadsPerNode: 48} }

// TotalThreads returns the machine's hardware-thread count.
func (tp Topology) TotalThreads() int { return tp.Nodes * tp.ThreadsPerNode }

// NodeOf maps worker tid to its NUMA node under fill-first pinning.
func (tp Topology) NodeOf(tid int) int {
	n := tid / tp.ThreadsPerNode
	if n >= tp.Nodes {
		panic("numa: thread id beyond machine capacity")
	}
	return n
}

// SlotOf maps worker tid to its per-node slot index (its position in the
// flat-combining batch of its node's replica).
func (tp Topology) SlotOf(tid int) int { return tid % tp.ThreadsPerNode }

// NodesFor returns how many nodes a run with the given worker count
// populates (replicas are only instantiated for populated nodes).
func (tp Topology) NodesFor(workers int) int {
	if workers <= 0 {
		return 0
	}
	n := (workers + tp.ThreadsPerNode - 1) / tp.ThreadsPerNode
	if n > tp.Nodes {
		panic("numa: more workers than hardware threads")
	}
	return n
}

// PersistenceNode returns the node the dedicated persistence thread is
// pinned to: the last node, where the paper leaves one hardware thread free
// (it uses at most 95 of 96 threads as workers).
func (tp Topology) PersistenceNode() int { return tp.Nodes - 1 }
