package numa

import "testing"

func TestFillFirstPinning(t *testing.T) {
	tp := Topology{Nodes: 2, ThreadsPerNode: 4}
	wantNodes := []int{0, 0, 0, 0, 1, 1, 1, 1}
	for tid, want := range wantNodes {
		if got := tp.NodeOf(tid); got != want {
			t.Errorf("NodeOf(%d) = %d, want %d", tid, got, want)
		}
	}
}

func TestSlotOf(t *testing.T) {
	tp := Topology{Nodes: 2, ThreadsPerNode: 4}
	for tid := 0; tid < 8; tid++ {
		if got := tp.SlotOf(tid); got != tid%4 {
			t.Errorf("SlotOf(%d) = %d", tid, got)
		}
	}
}

func TestNodesFor(t *testing.T) {
	tp := Topology{Nodes: 2, ThreadsPerNode: 48}
	cases := map[int]int{0: 0, 1: 1, 24: 1, 48: 1, 49: 2, 95: 2, 96: 2}
	for workers, want := range cases {
		if got := tp.NodesFor(workers); got != want {
			t.Errorf("NodesFor(%d) = %d, want %d", workers, got, want)
		}
	}
}

func TestNodeOfBeyondCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Topology{Nodes: 2, ThreadsPerNode: 2}.NodeOf(4)
}

func TestPaperTopology(t *testing.T) {
	tp := Paper()
	if tp.TotalThreads() != 96 {
		t.Errorf("paper machine has %d threads, want 96", tp.TotalThreads())
	}
	if tp.PersistenceNode() != 1 {
		t.Errorf("persistence node = %d, want 1", tp.PersistenceNode())
	}
}
