package nvm

import (
	"testing"

	"prepuc/internal/sim"
)

func TestFlushRegionPersistsRange(t *testing.T) {
	runOne(t, Config{}, 0, func(th *sim.Thread, sys *System) {
		m := sys.NewMemory("m", NVM, 0, 256)
		for w := uint64(0); w < 256; w++ {
			m.Store(th, w, w+1)
		}
		m.FlushRegion(th, 16, 80)
		for w := uint64(0); w < 256; w++ {
			got := m.PersistedLoad(w)
			// Lines intersecting [16,80) cover words 16..79 exactly (both
			// bounds line-aligned here).
			if w >= 16 && w < 80 {
				if got != w+1 {
					t.Errorf("word %d = %d, want persisted", w, got)
				}
			} else if got != 0 {
				t.Errorf("word %d = %d, want untouched", w, got)
			}
		}
	})
}

func TestFlushRegionUnalignedCoversPartialLines(t *testing.T) {
	runOne(t, Config{}, 0, func(th *sim.Thread, sys *System) {
		m := sys.NewMemory("m", NVM, 0, 64)
		for w := uint64(0); w < 64; w++ {
			m.Store(th, w, w+1)
		}
		m.FlushRegion(th, 10, 13) // inside line 1
		for w := uint64(8); w < 16; w++ {
			if got := m.PersistedLoad(w); got != w+1 {
				t.Errorf("word %d of covering line not persisted", w)
			}
		}
		if got := m.PersistedLoad(0); got != 0 {
			t.Error("line 0 persisted unexpectedly")
		}
	})
}

func TestFlushRegionCostScalesWithLines(t *testing.T) {
	costs := sim.Costs{FlushLine: 10, Fence: 5, FencePerPending: 2}
	var small, large uint64
	runOne(t, Config{Costs: costs}, 0, func(th *sim.Thread, sys *System) {
		m := sys.NewMemory("m", NVM, 0, 4096)
		// Dirty the whole region so elision has nothing to skip: the scaling
		// under test is the per-written-back-line charge.
		for w := uint64(0); w < 4096; w += WordsPerLine {
			m.Store(th, w, w+1)
		}
		before := th.Clock()
		m.FlushRegion(th, 0, 8)
		small = th.Clock() - before
		// Re-dirty the line the small flush cleaned.
		m.Store(th, 0, 7)
		before = th.Clock()
		m.FlushRegion(th, 0, 4096)
		large = th.Clock() - before
	})
	if large <= small*10 {
		t.Errorf("512-line flush (%d) not much costlier than 1-line (%d)", large, small)
	}
}

func TestFlushRegionElidesCleanLines(t *testing.T) {
	costs := sim.Costs{FlushLine: 10, FlushCheck: 1, Fence: 5, FencePerPending: 2}
	runOne(t, Config{Costs: costs}, 0, func(th *sim.Thread, sys *System) {
		m := sys.NewMemory("m", NVM, 0, 64) // 8 lines
		m.Store(th, 0, 1)                   // line 0 dirty
		m.Store(th, 40, 2)                  // line 5 dirty
		base := sys.Metrics().Snapshot()
		before := th.Clock()
		m.FlushRegion(th, 0, 64)
		cost := th.Clock() - before
		d := sys.Metrics().Snapshot().Sub(base)
		if d.FlushAsync != 2 || d.FlushesElided != 6 || d.FlushElisionChecks != 8 {
			t.Errorf("region flush: async=%d elided=%d checks=%d, want 2,6,8",
				d.FlushAsync, d.FlushesElided, d.FlushElisionChecks)
		}
		// 2 write-backs + 6 checks + fence + 8 per-pending (the fence drain
		// walks every region line, written back or not).
		if want := uint64(2*10 + 6*1 + 5 + 8*2); cost != want {
			t.Errorf("region flush cost = %d, want %d", cost, want)
		}
		if m.PersistedLoad(0) != 1 || m.PersistedLoad(40) != 2 {
			t.Error("dirty lines not persisted by region flush")
		}
	})
}

func TestFlushRegionEmptyRangeJustFences(t *testing.T) {
	runOne(t, Config{}, 0, func(th *sim.Thread, sys *System) {
		m := sys.NewMemory("m", NVM, 0, 64)
		fences := sys.Fences()
		m.FlushRegion(th, 10, 10)
		if sys.Fences() != fences+1 {
			t.Error("empty-range FlushRegion did not fence")
		}
	})
}

func TestFlushRegionClampsToMemoryEnd(t *testing.T) {
	runOne(t, Config{}, 0, func(th *sim.Thread, sys *System) {
		m := sys.NewMemory("m", NVM, 0, 64)
		m.Store(th, 63, 7)
		m.FlushRegion(th, 0, 10_000) // beyond end: clamped, no panic
		if got := m.PersistedLoad(63); got != 7 {
			t.Errorf("last word = %d, want 7", got)
		}
	})
}

func TestFlushAllDirtyPersistsExactlyDirty(t *testing.T) {
	runOne(t, Config{}, 0, func(th *sim.Thread, sys *System) {
		m := sys.NewMemory("m", NVM, 0, 512)
		m.Store(th, 0, 1)   // line 0
		m.Store(th, 100, 2) // line 12
		m.FlushAllDirty(th)
		if m.PersistedLoad(0) != 1 || m.PersistedLoad(100) != 2 {
			t.Error("dirty lines not persisted")
		}
		if m.DirtyLines() != 0 {
			t.Errorf("dirty lines = %d after FlushAllDirty", m.DirtyLines())
		}
	})
}

func TestFlushAllDirtyCheaperThanWBINVDWhenFewDirty(t *testing.T) {
	costs := sim.Costs{FlushLine: 40, Fence: 120, FencePerPending: 350,
		WBINVDBase: 150_000, WBINVDPerLine: 40}
	var perLine, wbinvd uint64
	runOne(t, Config{Costs: costs}, 0, func(th *sim.Thread, sys *System) {
		m1 := sys.NewMemory("m1", NVM, 0, 512)
		m1.Store(th, 0, 1)
		before := th.Clock()
		m1.FlushAllDirty(th)
		perLine = th.Clock() - before
		m2 := sys.NewMemory("m2", NVM, 0, 512)
		m2.Store(th, 0, 1)
		before = th.Clock()
		sys.WBINVD(th, m2)
		wbinvd = th.Clock() - before
	})
	if perLine >= wbinvd {
		t.Errorf("per-line flush (%d) not cheaper than WBINVD (%d) for one dirty line — the trade-off the paper discusses is inverted", perLine, wbinvd)
	}
}

func TestBulkFlushOnVolatilePanics(t *testing.T) {
	for _, name := range []string{"region", "alldirty"} {
		name := name
		sch := sim.New(1)
		sys := NewSystem(sch, Config{})
		m := sys.NewMemory("v", Volatile, 0, 64)
		panicked := false
		sch.Spawn("t", 0, 0, func(th *sim.Thread) {
			defer func() {
				if recover() != nil {
					panicked = true
				}
			}()
			if name == "region" {
				m.FlushRegion(th, 0, 8)
			} else {
				m.FlushAllDirty(th)
			}
		})
		sch.Run()
		if !panicked {
			t.Errorf("%s flush on volatile memory did not panic", name)
		}
	}
}
