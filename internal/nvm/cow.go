package nvm

import "sync/atomic"

// Copy-on-write slabs back every Memory view (data, persisted, ownership,
// dirty state) so that creating, cloning and crash-recovering a System costs
// O(page tables) instead of O(words). A slab is a table of fixed-size
// reference-counted pages; a fresh slab's entries all alias one pinned
// all-zero page, a clone's entries alias the parent's pages, and either way
// a page is privatized the first time its slab writes to it.
//
// Reference counts are the only cross-goroutine state: crash-sweep harnesses
// run clones of one parent on concurrent host goroutines, and two clones may
// race to privatize the same shared page. Each copies, installs its private
// page in its own table, and atomically drops the shared count; the last
// table referencing a page sees ref==1 and writes in place. All other slab
// state (tables, vals of owned pages) is per-System and protected by the
// simulator's cooperative scheduling. share() itself mutates reference
// counts of pages the parent is using and must not run concurrently with
// parent access — Clone and Recover are host-side operations on a drained
// scheduler, which guarantees that.
const (
	pageWords = 512 // elements per page; multiple of WordsPerLine so lines never straddle pages
	pageShift = 9
	pageMask  = pageWords - 1
)

// page is one refcounted chunk of a slab. ref counts how many slab tables
// reference it; a slab may write vals in place only while its table is the
// sole referencer (ref==1).
type page[T any] struct {
	ref  int32
	vals []T
}

// slab is a COW array of T. The zero slab (nil table) is the "absent" state
// used for the persisted view of volatile memories.
type slab[T any] struct {
	pages []*page[T]
	// copied points at the owning system's PagesCopied metrics counter;
	// bumped once per page privatized on write.
	copied *uint64
}

// zeroPinned is the reference count of the shared all-zero page: large
// enough that writable() can never observe 1 and write to it, so the page
// stays zero for the lifetime of the slabs referencing it (decrements on
// privatization only ever drift it down by the number of table entries).
const zeroPinned = 1 << 30

// newZeroSlab returns an all-zero slab whose table entries all reference one
// pinned zero page, so creating it costs O(pages) table setup instead of
// O(n) zeroing. Fresh memories are all-zero by definition; pages materialize
// only as they are first written. The dominant host-side cost of booting
// (and crash-recovering) a machine with a large, sparsely touched heap is
// otherwise exactly this zeroing.
func newZeroSlab[T any](n uint64, copied *uint64) slab[T] {
	zero := &page[T]{ref: zeroPinned, vals: make([]T, pageWords)}
	pages := make([]*page[T], (n+pageWords-1)/pageWords)
	for i := range pages {
		pages[i] = zero
	}
	// A short final page aliases the full zero page too: slab indices stay
	// below n, so the surplus elements are simply never addressed.
	return slab[T]{pages: pages, copied: copied}
}

func (s *slab[T]) load(i uint64) T {
	return s.pages[i>>pageShift].vals[i&pageMask]
}

func (s *slab[T]) store(i uint64, v T) {
	p := s.pages[i>>pageShift]
	if atomic.LoadInt32(&p.ref) != 1 {
		p = s.privatize(i >> pageShift)
	}
	p.vals[i&pageMask] = v
}

// line returns n elements starting at base for reading. base must be
// line-aligned so the run cannot straddle a page (pageWords%WordsPerLine==0).
func (s *slab[T]) line(base, n uint64) []T {
	off := base & pageMask
	return s.pages[base>>pageShift].vals[off : off+n]
}

// wline is line for writing: the containing page is privatized first.
func (s *slab[T]) wline(base, n uint64) []T {
	p := s.pages[base>>pageShift]
	if atomic.LoadInt32(&p.ref) != 1 {
		p = s.privatize(base >> pageShift)
	}
	off := base & pageMask
	return p.vals[off : off+n]
}

// privatize replaces the shared page pi with a private copy. The copy
// completes before the old page's count is dropped, so a sibling that then
// observes ref==1 may write the old page in place without racing the copy.
func (s *slab[T]) privatize(pi uint64) *page[T] {
	p := s.pages[pi]
	np := &page[T]{ref: 1, vals: append([]T(nil), p.vals...)}
	s.pages[pi] = np
	atomic.AddInt32(&p.ref, -1)
	*s.copied++
	return np
}

// share returns a new slab referencing this slab's pages. The child records
// page copies into the given counter. Host-side only; must not race with
// simulated access to s.
func (s *slab[T]) share(copied *uint64) slab[T] {
	if s.pages == nil {
		return slab[T]{}
	}
	for _, p := range s.pages {
		atomic.AddInt32(&p.ref, 1)
	}
	return slab[T]{pages: append([]*page[T](nil), s.pages...), copied: copied}
}
