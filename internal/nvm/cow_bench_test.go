package nvm

import (
	"testing"

	"prepuc/internal/sim"
)

// The substrate's two snapshot-heavy host-side costs, recorded in
// BENCH_wallclock.json and guarded by the CI bench-smoke job:
//
//   - BenchmarkSystemClone: materializing one crash-sweep copy of a machine
//     with a large, mostly clean heap. Copy-on-write page sharing makes this
//     O(pages) table work instead of O(words) slab copies.
//   - BenchmarkPersistCycle: one persistence-thread checkpoint (WBINVD +
//     fence) over the same heap shape. The dirty-line list makes the sweep
//     O(dirty) instead of an O(lines) bitmap scan.

// cloneBenchWords sizes the benchmark heap like a crashtest engine heap
// (cmd/crashtest uses HeapWords 1<<21); only a small working set is dirty,
// which is exactly the persistence-thread steady state between checkpoints.
const cloneBenchWords = 1 << 21

// dirtySomeLines stores into a spread of lines so the dirty set is non-empty
// but far smaller than the heap.
func dirtySomeLines(t *sim.Thread, m *Memory, lines uint64) {
	stride := m.Words() / lines
	stride -= stride % WordsPerLine
	for i := uint64(0); i < lines; i++ {
		m.Store(t, i*stride, i+1)
	}
}

func BenchmarkSystemClone(b *testing.B) {
	b.ReportAllocs()
	sch := sim.New(1)
	sys := NewSystem(sch, Config{Costs: sim.UnitCosts(), Seed: 7})
	var m *Memory
	sch.Spawn("t", 0, 0, func(t *sim.Thread) {
		m = sys.NewMemory("heap", NVM, 0, cloneBenchWords)
		sys.NewMemory("dram", Volatile, 0, cloneBenchWords/2)
		f := sys.NewFlusher()
		dirtySomeLines(t, m, 1024)
		// Leave a few lines flushed-but-unfenced so the pending set is
		// carried into every clone, as in a real crash snapshot.
		for l := uint64(0); l < 8; l++ {
			f.FlushLine(t, m, l*WordsPerLine)
		}
	})
	sch.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Clone(sim.New(int64(i) + 2))
	}
}

func BenchmarkPersistCycle(b *testing.B) {
	b.ReportAllocs()
	sch := sim.New(1)
	sys := NewSystem(sch, Config{Costs: sim.DefaultCosts(), Seed: 7})
	n := b.N
	sch.Spawn("t", 0, 0, func(t *sim.Thread) {
		m := sys.NewMemory("heap", NVM, 0, cloneBenchWords)
		f := sys.NewFlusher()
		b.ResetTimer()
		for i := 0; i < n; i++ {
			// One ε window's worth of updates lands on 64 lines, then the
			// persistence thread writes the whole cache back and fences.
			for l := uint64(0); l < 64; l++ {
				off := ((uint64(i)*64 + l) * WordsPerLine) % cloneBenchWords
				m.Store(t, off, uint64(i))
			}
			sys.WBINVD(t, m)
			f.Fence(t)
		}
	})
	sch.Run()
}
