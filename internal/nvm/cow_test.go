package nvm

import (
	"fmt"
	"sync"
	"testing"

	"prepuc/internal/sim"
)

// countSlabRefs tallies, per page, how many table entries of s reference it.
func countSlabRefs[T any](s *slab[T], counts map[*page[T]]int32) {
	for _, p := range s.pages {
		counts[p]++
	}
}

// checkPageRefs asserts the reference-count invariant over every page
// reachable from the tracked systems: a regular page's count must equal the
// number of table entries referencing it (greater means a leak, smaller a
// double-release that would let two machines scribble on one page), and a
// pinned zero page must still be pinned.
func checkPageRefs[T any](t *testing.T, counts map[*page[T]]int32, label string) {
	t.Helper()
	for p, n := range counts {
		ref := p.ref // schedulers drained; no concurrent access
		if ref >= zeroPinned/2 {
			continue // shared zero page, pinned by construction
		}
		if ref != n {
			t.Errorf("%s: page with %d table references has ref %d", label, n, ref)
		}
	}
}

// auditSystems runs the refcount audit across every slab of every memory of
// the given systems. The set must be closed: every live system sharing pages
// with a listed one must itself be listed.
func auditSystems(t *testing.T, label string, systems ...*System) {
	t.Helper()
	u64 := map[*page[uint64]]int32{}
	i32 := map[*page[int32]]int32{}
	u8 := map[*page[uint8]]int32{}
	for _, s := range systems {
		for _, m := range s.order {
			countSlabRefs(&m.data, u64)
			countSlabRefs(&m.persisted, u64)
			countSlabRefs(&m.owner, i32)
			countSlabRefs(&m.ownerNode, i32)
			countSlabRefs(&m.dstate, u8)
		}
	}
	checkPageRefs(t, u64, label+"/words")
	checkPageRefs(t, i32, label+"/owners")
	checkPageRefs(t, u8, label+"/dstate")
}

// TestCloneCOWStress is the -j sweep pattern under the race detector: one
// parent machine is cloned N times (host-side, sequential — Clone mutates
// shared reference counts against parent access), then the parent and every
// clone run workloads concurrently on their own host goroutines, racing to
// privatize the same shared pages. Afterwards every machine must see exactly
// its own writes, and the page reference counts must balance: each page
// either uniquely owned or counted once per referencing table.
func TestCloneCOWStress(t *testing.T) {
	const (
		clones   = 8
		memWords = 1 << 15
	)
	boot := sim.New(1)
	parent := NewSystem(boot, Config{Costs: sim.UnitCosts(), BGFlushOneIn: 16, Seed: 1})
	heap := parent.NewMemory("heap", NVM, 0, memWords)
	parent.NewMemory("dram", Volatile, 0, memWords/4)
	boot.Spawn("init", 0, 0, func(th *sim.Thread) {
		f := parent.NewFlusher()
		for i := uint64(0); i < memWords; i += WordsPerLine / 2 {
			heap.Store(th, i, i)
		}
		for i := uint64(0); i < 32; i++ {
			f.FlushLine(th, heap, i*WordsPerLine)
		}
	})
	boot.Run()

	sys := make([]*System, clones+1)
	sys[0] = parent
	for i := 1; i <= clones; i++ {
		sys[i] = parent.Clone(sim.New(int64(i) + 10))
	}

	// Every machine stores its own id over the same stripe of lines, so all
	// of them race to privatize the same shared pages; each then crashes
	// with pending flushes and recovers (COW-sharing its persisted pages
	// into the recovered machine) and probes its state.
	recovered := make([]*System, clones+1)
	var wg sync.WaitGroup
	for id := range sys {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := sys[id]
			sch := sim.New(int64(id) + 300)
			s.SetScheduler(sch)
			h := s.Memory("heap")
			sch.Spawn("mut", 0, 0, func(th *sim.Thread) {
				f := s.NewFlusher()
				for i := uint64(0); i < memWords; i += WordsPerLine {
					h.Store(th, i, uint64(id)<<32|i)
				}
				for i := uint64(0); i < 16; i++ {
					f.FlushLine(th, h, (i*3)*WordsPerLine)
				}
				s.Crash()
			})
			sch.Run()
			rec := s.Recover(sim.New(int64(id) + 100))
			recovered[id] = rec
			rsch := sim.New(int64(id) + 200)
			rec.SetScheduler(rsch)
			rh := rec.Memory("heap")
			rsch.Spawn("probe", 0, 0, func(th *sim.Thread) {
				for i := uint64(0); i < 256; i++ {
					rh.Store(th, i*WordsPerLine+1, uint64(id))
				}
				rec.WBINVD(th, rh)
			})
			rsch.Run()
		}()
	}
	wg.Wait()

	// Isolation: every recovered machine's persisted view carries its own
	// id in every surviving stripe word, never a sibling's.
	for id, rec := range recovered {
		h := rec.Memory("heap")
		for i := uint64(0); i < 256; i++ {
			if got := h.PersistedLoad(i*WordsPerLine + 1); got != uint64(id) {
				t.Fatalf("machine %d: persisted probe word %d = %d, want %d", id, i, got, id)
			}
		}
	}

	all := append(append([]*System{}, sys...), recovered...)
	auditSystems(t, fmt.Sprintf("%d clones post-run", clones), all...)
}

// TestCloneRefcountsBalanceAfterChain audits a deep clone/recover chain —
// the shape a bisecting crash harness produces — including slabs that were
// never written (still fully aliasing their source or the zero page).
func TestCloneRefcountsBalanceAfterChain(t *testing.T) {
	sch := sim.New(3)
	sys := NewSystem(sch, Config{Costs: sim.UnitCosts(), Seed: 3})
	m := sys.NewMemory("m", NVM, 0, 1<<14)
	sch.Spawn("w", 0, 0, func(th *sim.Thread) {
		for i := uint64(0); i < 1<<12; i++ {
			m.Store(th, i, i)
		}
		sys.WBINVD(th, m)
	})
	sch.Run()

	chain := []*System{sys}
	cur := sys
	for i := 0; i < 5; i++ {
		c := cur.Clone(sim.New(int64(i) + 50))
		chain = append(chain, c)
		csch := c.Scheduler()
		cm := c.Memory("m")
		touched := i%2 == 0
		csch.Spawn("w", 0, 0, func(th *sim.Thread) {
			if touched {
				for j := uint64(0); j < 128; j++ {
					cm.Store(th, j*WordsPerLine, uint64(i))
				}
			}
			c.Crash()
		})
		csch.Run()
		cur = c.Recover(sim.New(int64(i) + 150))
		chain = append(chain, cur)
	}
	auditSystems(t, "clone/recover chain", chain...)

	snap := cur.Metrics().Snapshot()
	if snap.Clones == 0 || snap.PagesCopied == 0 {
		t.Errorf("chain recorded clones=%d pages_copied=%d, want both nonzero", snap.Clones, snap.PagesCopied)
	}
}
