package nvm

import "prepuc/internal/sim"

// Crash freezes the machine, modelling a power failure: every simulated
// thread is unwound from its next memory access. The persisted state is
// materialized lazily by Recover.
func (s *System) Crash() { s.sch.CrashNow() }

// Recover materializes the machine's post-crash persistent state and returns
// a fresh System, attached to the given (new) scheduler, that contains only
// the NVM memories — each with its current view re-read from the persisted
// media. Volatile memories are gone; recovery code recreates them.
//
// Materialization applies the hardware's undefined behaviours:
//   - every line issued via FlushLine but not yet fenced is persisted with
//     probability 1/2 (independent coin flips, seeded);
//   - every merely-dirty line is lost (its last persisted value remains).
//
// Recover must only be called after the crashed scheduler has fully drained
// (sim.Scheduler.Run returned).
func (s *System) Recover(sch *sim.Scheduler) *System {
	// Coin-flip unfenced asynchronous flushes.
	for _, f := range s.flushers {
		for _, p := range f.pending {
			if s.nextRand()&1 == 0 {
				p.m.persistLine(p.line)
			}
		}
		f.pending = nil
	}
	ns := &System{
		sch:      sch,
		costs:    s.costs,
		mems:     make(map[string]*Memory),
		bgProb:   s.bgProb,
		rngState: s.nextRand() | 1,
		// The metrics registry survives the crash: counters are host-side
		// observability state, not machine state, and carrying it over lets a
		// crash harness see recovery-time replay work in the same snapshot
		// stream as pre-crash execution.
		met: s.met,
	}
	for _, m := range s.order {
		if m.kind != NVM {
			continue
		}
		nm := &Memory{
			name:      m.name,
			kind:      NVM,
			home:      m.home,
			sys:       ns,
			data:      make([]uint64, len(m.persisted)),
			persisted: make([]uint64, len(m.persisted)),
			dirty:     make([]bool, len(m.dirty)),
			owner:     make([]int32, len(m.owner)),
			ownerNode: make([]int32, len(m.ownerNode)),
			bgState:   ns.nextRand() | 1,
		}
		for i := range nm.owner {
			nm.owner[i] = ownerShared
		}
		copy(nm.data, m.persisted)
		copy(nm.persisted, m.persisted)
		ns.mems[nm.name] = nm
		ns.order = append(ns.order, nm)
	}
	return ns
}
