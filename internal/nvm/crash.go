package nvm

import "prepuc/internal/sim"

// Crash freezes the machine, modelling a power failure: every simulated
// thread is unwound from its next memory access. The persisted state is
// materialized lazily by Recover.
func (s *System) Crash() { s.sch.CrashNow() }

// Recover materializes the machine's post-crash persistent state and returns
// a fresh System, attached to the given (new) scheduler, that contains only
// the NVM memories — each with its current view re-read from the persisted
// media. Volatile memories are gone; recovery code recreates them.
//
// Materialization applies the hardware's undefined behaviours:
//   - every line issued via FlushLine but not yet fenced is persisted
//     according to the installed fault.Policy — or, with no policy, with
//     probability 1/2 (independent coin flips, seeded);
//   - every merely-dirty line is lost (its last persisted value remains).
//
// The per-line outcomes are tallied in the metrics registry
// (crash_lines_persisted / crash_lines_dropped), and the policy is carried
// into the recovered system so an iterating adversary (fault.Targeted) keeps
// its sweep state across nested crashes.
//
// The recovered memories share the crashed machine's persisted pages
// copy-on-write, so materialization is O(pending lines + pages), not
// O(heap). With an empty pending set no line is touched at all — the policy
// still observes the (zero-length) crash so stateful adversaries advance —
// and lines_scanned_at_crash counts the lines actually examined.
//
// Recover must only be called after the crashed scheduler has fully drained
// (sim.Scheduler.Run returned).
func (s *System) Recover(sch *sim.Scheduler) *System {
	// Materialize unfenced asynchronous flushes. Pending lines are visited
	// in flusher-creation then issue order, which is deterministic, so a
	// policy's per-index decisions reproduce from the run's seed.
	var total int
	for _, f := range s.flushers {
		total += len(f.pending)
	}
	s.met.LinesScannedAtCrash += uint64(total)
	switch {
	case s.policy == nil:
		for _, f := range s.flushers {
			for _, p := range f.pending {
				if s.nextRand()&1 == 0 {
					p.m.persistLine(p.line)
					s.met.CrashLinesPersisted++
				} else {
					s.met.CrashLinesDropped++
				}
			}
			f.pending = nil
		}
	case total == 0:
		// Nothing to materialize, but a stateful policy (fault.Targeted)
		// must still see this crash: its per-crash state advances even over
		// an empty pending set.
		s.policy.BeginCrash(0)
	default:
		pending := make([]pendingFlush, 0, total)
		for _, f := range s.flushers {
			pending = append(pending, f.pending...)
			f.pending = nil
		}
		s.policy.BeginCrash(len(pending))
		for i, p := range pending {
			if s.policy.PersistPending(i) {
				p.m.persistLine(p.line)
				s.met.CrashLinesPersisted++
			} else {
				s.met.CrashLinesDropped++
			}
		}
	}
	ns := &System{
		sch:      sch,
		costs:    s.costs,
		mems:     make(map[string]*Memory),
		bgProb:   s.bgProb,
		rngState: s.nextRand() | 1,
		policy:   s.policy,
		elide:    s.elide,
		// The metrics registry survives the crash: counters are host-side
		// observability state, not machine state, and carrying it over lets a
		// crash harness see recovery-time replay work in the same snapshot
		// stream as pre-crash execution.
		met: s.met,
	}
	for _, m := range s.order {
		if m.kind != NVM {
			continue
		}
		lines := m.words / WordsPerLine
		nm := &Memory{
			name: m.name,
			kind: NVM,
			home: m.home,
			sys:  ns,
			// Both views re-read the persisted media: two COW references to
			// the crashed memory's persisted pages. Dirty, ownership and list
			// state is volatile and restarts empty (all-zero slabs are fresh
			// allocations, free at this granularity).
			words:     m.words,
			data:      m.persisted.share(&ns.met.PagesCopied),
			persisted: m.persisted.share(&ns.met.PagesCopied),
			dstate:    newZeroSlab[uint8](lines, &ns.met.PagesCopied),
			owner:     newZeroSlab[int32](lines, &ns.met.PagesCopied),
			ownerNode: newZeroSlab[int32](lines, &ns.met.PagesCopied),
			bgState:   ns.nextRand() | 1,
		}
		ns.mems[nm.name] = nm
		ns.order = append(ns.order, nm)
	}
	return ns
}

// Clone snapshots the machine — every memory's current and persisted views,
// dirty and ownership state, pending flush sets, RNG states and a private
// copy of the metrics registry — attached to the given scheduler. Memory
// views are shared with the parent copy-on-write, so a clone costs O(page
// tables), not O(words); pages privatize as either machine writes. Crash-
// sweep harnesses use it to materialize the same frozen machine many times,
// arming a different crash point inside recovery on each copy, without
// re-running the workload that produced the state.
//
// Clone itself must not run concurrently with simulated access to the
// parent (it repacks the parent's views into shared pages), but the
// returned clone may then run on a different host goroutine than the parent
// and its siblings — the page reference counts are the only shared state.
func (s *System) Clone(sch *sim.Scheduler) *System {
	s.met.Clones++
	met := *s.met
	ns := &System{
		sch:      sch,
		costs:    s.costs,
		mems:     make(map[string]*Memory),
		bgProb:   s.bgProb,
		rngState: s.rngState,
		fences:   s.fences,
		wbinvds:  s.wbinvds,
		policy:   s.policy,
		elide:    s.elide,
		met:      &met,
	}
	for _, m := range s.order {
		nm := &Memory{
			name:      m.name,
			kind:      m.kind,
			home:      m.home,
			sys:       ns,
			words:     m.words,
			data:      m.data.share(&met.PagesCopied),
			owner:     m.owner.share(&met.PagesCopied),
			ownerNode: m.ownerNode.share(&met.PagesCopied),
			bgState:   m.bgState,
			stats:     m.stats,
		}
		if m.kind == NVM {
			nm.persisted = m.persisted.share(&met.PagesCopied)
			nm.dstate = m.dstate.share(&met.PagesCopied)
			nm.dirtyList = append([]uint64(nil), m.dirtyList...)
		}
		ns.mems[nm.name] = nm
		ns.order = append(ns.order, nm)
	}
	for _, f := range s.flushers {
		nf := &Flusher{sys: ns, seen: make(map[pendingFlush]uint64, len(f.pending)), gen: 1}
		for _, p := range f.pending {
			np := pendingFlush{ns.mems[p.m.name], p.line}
			nf.pending = append(nf.pending, np)
			nf.seen[np] = nf.gen
		}
		ns.flushers = append(ns.flushers, nf)
	}
	return ns
}
