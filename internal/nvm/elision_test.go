package nvm

import (
	"testing"

	"prepuc/internal/fault"
	"prepuc/internal/sim"
)

// This file pins the flush-elision tentpole: skipping the write-back of a
// clean line (persisted view already equals the current view) must be
// invisible to everything except the cost model and the elision counters.
// The randomized equivalence workload runs under every fault policy with
// elision on and with the reference always-write-back model, and the two
// runs must agree on every persisted word, every crash outcome, and the
// flush-count algebra: each request is either written back or elided, never
// both, never neither.

// TestFlushElisionEquivalence compares elision-on against the reference
// no-elision mode across fault policies and seeds. Under sim.UnitCosts a
// FlushCheck costs the same one step as a FlushLine, so the two modes run
// the exact same schedule and the comparison is word-for-word. The raw
// metrics JSON is deliberately NOT compared: the modes split the same
// requests differently between flush_async and flushes_elided — the
// invariant is the sum, checked explicitly below.
func TestFlushElisionEquivalence(t *testing.T) {
	policies := map[string]func() fault.Policy{
		"nil":        func() fault.Policy { return nil },
		"persistall": func() fault.Policy { return fault.PersistAll() },
		"dropall":    func() fault.Policy { return fault.DropAll() },
		"coinflip":   func() fault.Policy { return fault.CoinFlip(0.5, 99) },
		"targeted":   func() fault.Policy { return fault.Targeted(0) },
	}
	for name, mk := range policies {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				on := equivWorkload(seed, mk(), false)
				off := equivWorkload(seed, mk(), true)

				if on.events != off.events {
					t.Fatalf("seed %d: event counts diverge: elide %v, reference %v", seed, on.events, off.events)
				}
				for _, mn := range []string{"a", "b"} {
					if on.dirty[mn] != off.dirty[mn] {
						t.Fatalf("seed %d: memory %s DirtyLines: elide %d, reference %d", seed, mn, on.dirty[mn], off.dirty[mn])
					}
					ov, fv := on.persisted[mn], off.persisted[mn]
					for w := range ov {
						if ov[w] != fv[w] {
							t.Fatalf("seed %d: memory %s persisted word %d: elide %#x, reference %#x", seed, mn, w, ov[w], fv[w])
						}
					}
				}
				// Reference mode never elides; elision mode conserves the
				// request count, moving clean-line requests out of the
				// write-back tallies one-for-one.
				if off.snap.FlushesElided != 0 || off.snap.FlushElisionChecks != 0 {
					t.Fatalf("seed %d: reference mode counted elision: elided=%d checks=%d",
						seed, off.snap.FlushesElided, off.snap.FlushElisionChecks)
				}
				onTotal := on.snap.FlushAsync + on.snap.FlushSync + on.snap.FlushesElided
				offTotal := off.snap.FlushAsync + off.snap.FlushSync
				if onTotal != offTotal {
					t.Fatalf("seed %d: flush requests not conserved: elide %d+%d+%d=%d, reference %d+%d=%d",
						seed, on.snap.FlushAsync, on.snap.FlushSync, on.snap.FlushesElided, onTotal,
						off.snap.FlushAsync, off.snap.FlushSync, offTotal)
				}
				// The pending sets are identical by construction, so crash
				// materialization must have drawn identical policy verdicts.
				if on.snap.CrashLinesPersisted != off.snap.CrashLinesPersisted ||
					on.snap.CrashLinesDropped != off.snap.CrashLinesDropped {
					t.Fatalf("seed %d: crash fates diverge: elide %d/%d, reference %d/%d",
						seed, on.snap.CrashLinesPersisted, on.snap.CrashLinesDropped,
						off.snap.CrashLinesPersisted, off.snap.CrashLinesDropped)
				}
				if on.snap.Fences != off.snap.Fences {
					t.Fatalf("seed %d: fences diverge: elide %d, reference %d", seed, on.snap.Fences, off.snap.Fences)
				}
			}
		})
	}
}

// TestFlushLineSyncDropsPending pins the satellite fix in both modes: a
// synchronous flush retires the line's own pending entry AND its epoch-dedup
// mark, so the next fence neither double-persists the line nor overcharges
// FencePerPending, while a fresh store later in the same epoch is tracked
// anew.
func TestFlushLineSyncDropsPending(t *testing.T) {
	for _, mode := range []struct {
		name    string
		noElide bool
	}{{"elide", false}, {"reference", true}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			runOne(t, Config{NoFlushElision: mode.noElide}, 0, func(th *sim.Thread, sys *System) {
				m := sys.NewMemory("m", NVM, 0, 64)
				f := sys.NewFlusher()
				m.Store(th, 0, 1)             // line 0
				m.Store(th, WordsPerLine, 2)  // line 1
				f.FlushLine(th, m, 0)
				f.FlushLine(th, m, WordsPerLine)
				if got := f.Pending(); got != 2 {
					t.Fatalf("pending = %d after two dirty flushes, want 2", got)
				}
				f.FlushLineSync(th, m, 0)
				if got := f.Pending(); got != 1 {
					t.Fatalf("pending = %d after sync flush, want 1 (stale entry kept)", got)
				}
				if got := m.PersistedLoad(0); got != 1 {
					t.Fatalf("sync-flushed word = %d, want 1", got)
				}
				// Same epoch, fresh store: the dedup mark must be gone so the
				// new value is tracked and the fence persists it.
				m.Store(th, 0, 3)
				f.FlushLine(th, m, 0)
				if got := f.Pending(); got != 2 {
					t.Fatalf("pending = %d after re-store+re-flush, want 2 (dedup mark not dropped)", got)
				}
				f.Fence(th)
				if got := f.Pending(); got != 0 {
					t.Fatalf("pending = %d after fence, want 0", got)
				}
				if got := m.PersistedLoad(0); got != 3 {
					t.Fatalf("word 0 = %d after fence, want 3", got)
				}
				if got := m.PersistedLoad(WordsPerLine); got != 2 {
					t.Fatalf("word %d = %d after fence, want 2", WordsPerLine, got)
				}
			})
		})
	}
}

// TestElisionCleanAndPendingElsewhere pins the two soundness edges of the
// clean-line check. A line flushed on thread-context fa but not yet fenced
// is still *dirty* (its persisted view lags), so a flush through a second
// flusher fb must NOT be elided — fb's caller needs its own fence to cover
// the line, and fa might never fence. Only once some fence actually persists
// the line does a further flush of it become elidable.
func TestElisionCleanAndPendingElsewhere(t *testing.T) {
	runOne(t, Config{}, 0, func(th *sim.Thread, sys *System) {
		m := sys.NewMemory("m", NVM, 0, 64)
		fa, fb := sys.NewFlusher(), sys.NewFlusher()
		m.Store(th, 0, 7)

		base := sys.Metrics().Snapshot()
		fa.FlushLine(th, m, 0)
		if d := sys.Metrics().Snapshot().Sub(base); d.FlushesElided != 0 || d.FlushAsync != 1 {
			t.Fatalf("dirty-line flush: elided=%d async=%d, want 0,1", d.FlushesElided, d.FlushAsync)
		}

		// Pending on fa only — still dirty, so fb's flush is real and tracked.
		base = sys.Metrics().Snapshot()
		fb.FlushLine(th, m, 0)
		if d := sys.Metrics().Snapshot().Sub(base); d.FlushesElided != 0 || d.FlushAsync != 1 {
			t.Fatalf("pending-elsewhere flush: elided=%d async=%d, want 0,1 (must not be elided)", d.FlushesElided, d.FlushAsync)
		}
		if fb.Pending() != 1 {
			t.Fatalf("fb pending = %d, want 1: fb's fence must cover the line itself", fb.Pending())
		}

		fa.Fence(th) // persists the line: now genuinely clean
		base = sys.Metrics().Snapshot()
		fb.FlushLine(th, m, 0) // dedup: already tracked this epoch on fb
		fb.Fence(th)
		fb.FlushLine(th, m, 0) // fresh epoch, clean line: elided
		if d := sys.Metrics().Snapshot().Sub(base); d.FlushesElided != 2 || d.FlushAsync != 0 {
			t.Fatalf("clean/deduped flushes: elided=%d async=%d, want 2,0", d.FlushesElided, d.FlushAsync)
		}
		if got := m.PersistedLoad(0); got != 7 {
			t.Fatalf("persisted word = %d, want 7", got)
		}
	})
}
