package nvm

import (
	"encoding/json"
	"testing"

	"prepuc/internal/fault"
	"prepuc/internal/metrics"
	"prepuc/internal/sim"
)

// This file pins the tentpole equivalence claim: the dirty-line list drives
// WBINVD, FlushAllDirty and DirtyLines over only the lines dirtied since the
// last sweep, in list order rather than index order — and that must be
// indistinguishable from the reference full-bitmap scan. A randomized
// workload (stores, CASes, flushes, fences, bulk sweeps, background flushes)
// runs to a crash and through recovery twice per fault policy, once per
// strategy, and everything observable must match: every persisted word, the
// virtual event count, and the full metrics snapshot.

// equivResult is everything observable about one workload run.
type equivResult struct {
	events    [3]uint64 // per-phase scheduler event counts
	persisted map[string][]uint64
	dirty     map[string]uint64
	metrics   string           // JSON-marshaled snapshot (wire-format counters)
	snap      metrics.Snapshot // raw snapshot for cross-mode counter algebra
}

// equivWorkload drives a mixed randomized workload on two NVM memories and
// one volatile memory to an armed crash, recovers, runs a second phase on
// the recovered machine, crashes and recovers again (so stateful policies
// see multiple crashes), and returns the observable outcome. noElide selects
// the reference always-write-back flush cost model over FliT-style elision.
func equivWorkload(seed uint64, policy fault.Policy, noElide bool) equivResult {
	const (
		memWordsA = 4096
		memWordsB = 1024
	)
	res := equivResult{persisted: map[string][]uint64{}, dirty: map[string]uint64{}}

	sch := sim.New(int64(seed))
	sys := NewSystem(sch, Config{Costs: sim.UnitCosts(), BGFlushOneIn: 32, Seed: seed, Policy: policy, NoFlushElision: noElide})
	a := sys.NewMemory("a", NVM, 0, memWordsA)
	b := sys.NewMemory("b", NVM, 0, memWordsB)
	v := sys.NewMemory("v", Volatile, 0, 512)

	phase := func(crashAt uint64, threads int) {
		sch.CrashAtEvent(crashAt)
		for tid := 0; tid < threads; tid++ {
			tid := tid
			rng := seed*0x9E37_79B9_7F4A_7C15 + uint64(tid) | 1
			next := func() uint64 {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return rng
			}
			sch.Spawn("w", tid%2, 0, func(t *sim.Thread) {
				f := sys.NewFlusher()
				for {
					m := a
					if next()%3 == 0 {
						m = b
					}
					off := next() % m.Words()
					switch next() % 16 {
					case 0, 1, 2, 3, 4, 5:
						m.Store(t, off, next())
					case 6, 7:
						m.CAS(t, off, m.Load(t, off), next())
					case 8, 9:
						_ = m.Load(t, off)
						_ = v.Load(t, off%v.Words())
					case 10, 11:
						f.FlushLine(t, m, off)
					case 12:
						f.Fence(t)
					case 13:
						f.FlushLineSync(t, m, off)
					case 14:
						if next()%4 == 0 {
							m.FlushAllDirty(t)
						} else {
							from := off &^ (WordsPerLine - 1)
							m.FlushRegion(t, from, from+4*WordsPerLine)
						}
					case 15:
						if next()%8 == 0 {
							sys.WBINVD(t, a, b)
						} else {
							v.Store(t, off%v.Words(), next())
						}
					}
				}
			})
		}
		sch.Run()
	}

	phase(5_000, 2)
	res.events[0] = sch.Events()

	sch = sim.New(int64(seed) + 100)
	sys = sys.Recover(sch)
	a, b = sys.Memory("a"), sys.Memory("b")
	v = sys.NewMemory("v", Volatile, 0, 512)
	phase(3_000, 2)
	res.events[1] = sch.Events()

	sch = sim.New(int64(seed) + 200)
	sys = sys.Recover(sch)
	a, b = sys.Memory("a"), sys.Memory("b")
	// A drained final pass sweeps what remains so the sweep machinery runs
	// once more on post-recovery dirty state.
	sch.Spawn("sweep", 0, 0, func(t *sim.Thread) {
		for i := uint64(0); i < 64; i++ {
			a.Store(t, (i*17)%a.Words(), i)
			b.Store(t, (i*13)%b.Words(), i)
		}
		res.dirty["a"] = a.DirtyLines()
		res.dirty["b"] = b.DirtyLines()
		sys.WBINVD(t, a, b)
	})
	sch.Run()
	res.events[2] = sch.Events()

	for _, m := range []*Memory{a, b} {
		view := make([]uint64, m.Words())
		for w := uint64(0); w < m.Words(); w++ {
			view[w] = m.PersistedLoad(w)
		}
		res.persisted[m.Name()] = view
	}
	// The wire-format snapshot covers every simulated-hardware counter;
	// host-side snapshot counters (json:"-") are excluded by construction —
	// they measure the substrate implementation, not the machine.
	res.snap = sys.Metrics().Snapshot()
	js, err := json.Marshal(res.snap)
	if err != nil {
		panic(err)
	}
	res.metrics = string(js)
	return res
}

// TestDirtyListEquivalence runs the randomized workload under every fault
// policy with the dirty-list strategy and with the reference full scan, and
// requires bit-identical outcomes.
func TestDirtyListEquivalence(t *testing.T) {
	policies := map[string]func() fault.Policy{
		"nil":        func() fault.Policy { return nil },
		"persistall": func() fault.Policy { return fault.PersistAll() },
		"dropall":    func() fault.Policy { return fault.DropAll() },
		"coinflip":   func() fault.Policy { return fault.CoinFlip(0.5, 99) },
		"targeted":   func() fault.Policy { return fault.Targeted(0) },
	}
	for name, mk := range policies {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				// Fresh policy per run: stateful policies must see the same
				// crash sequence in both strategies.
				debugFullScan = false
				list := equivWorkload(seed, mk(), false)
				debugFullScan = true
				full := equivWorkload(seed, mk(), false)
				debugFullScan = false

				if list.events != full.events {
					t.Fatalf("seed %d: event counts diverge: list %v, full scan %v", seed, list.events, full.events)
				}
				if list.metrics != full.metrics {
					t.Fatalf("seed %d: metrics diverge:\nlist: %s\nfull: %s", seed, list.metrics, full.metrics)
				}
				for _, mn := range []string{"a", "b"} {
					if list.dirty[mn] != full.dirty[mn] {
						t.Fatalf("seed %d: memory %s DirtyLines: list %d, full scan %d", seed, mn, list.dirty[mn], full.dirty[mn])
					}
					lv, fv := list.persisted[mn], full.persisted[mn]
					for w := range lv {
						if lv[w] != fv[w] {
							t.Fatalf("seed %d: memory %s persisted word %d: list %#x, full scan %#x", seed, mn, w, lv[w], fv[w])
						}
					}
				}
			}
		})
	}
}

// TestRecoverShortCircuitsEmptyPending pins the satellite fix: with no
// flushed-but-unfenced lines at the crash, materialization examines zero
// lines (lines_scanned_at_crash stays 0) — but a stateful policy still
// observes the crash, so its sweep state advances exactly as before.
func TestRecoverShortCircuitsEmptyPending(t *testing.T) {
	run := func(policy fault.Policy, fenceBeforeCrash bool) (*System, uint64) {
		sch := sim.New(7)
		sys := NewSystem(sch, Config{Costs: sim.UnitCosts(), Seed: 7, Policy: policy})
		m := sys.NewMemory("m", NVM, 0, 64*WordsPerLine)
		sch.Spawn("w", 0, 0, func(t *sim.Thread) {
			f := sys.NewFlusher()
			for i := uint64(0); i < 8; i++ {
				m.Store(t, i*WordsPerLine, i+1)
				f.FlushLine(t, m, i*WordsPerLine)
			}
			if fenceBeforeCrash {
				f.Fence(t)
			}
			sys.Crash()
		})
		sch.Run()
		rec := sys.Recover(sim.New(8))
		return rec, rec.Metrics().Snapshot().LinesScannedAtCrash
	}

	if _, scanned := run(fault.DropAll(), true); scanned != 0 {
		t.Errorf("empty pending set: scanned %d lines at crash, want 0", scanned)
	}
	if _, scanned := run(fault.DropAll(), false); scanned != 8 {
		t.Errorf("8 pending lines: scanned %d at crash, want 8", scanned)
	}

	// Targeted's drop index advances on every crash, pending or not: a
	// lineage with an interposed empty crash must drop a different line at
	// the next real crash than a lineage without one.
	recA, _ := run(fault.Targeted(0), true) // crash 0: empty pending
	// Crash the recovered machine again, now with pending lines; the drop
	// index must reflect that this is the policy's SECOND crash.
	var m *Memory
	sch := sim.New(9)
	recA.SetScheduler(sch)
	m = recA.Memory("m")
	sch.Spawn("w", 0, 0, func(t *sim.Thread) {
		f := recA.NewFlusher()
		for i := uint64(0); i < 3; i++ {
			m.Store(t, i*WordsPerLine, 100+i)
			f.FlushLine(t, m, i*WordsPerLine)
		}
		recA.Crash()
	})
	sch.Run()
	recB := recA.Recover(sim.New(10))
	mb := recB.Memory("m")
	// Targeted(0): crash 0 (empty) consumed sweep index 0, so crash 1 drops
	// pending index 1%3 == 1 — word at line 1 keeps its pre-store value.
	if got := mb.PersistedLoad(0 * WordsPerLine); got != 100 {
		t.Errorf("line 0 = %d, want 100 (persisted)", got)
	}
	if got := mb.PersistedLoad(1 * WordsPerLine); got == 101 {
		t.Errorf("line 1 = %d: dropped index did not advance past the empty crash", got)
	}
	if got := mb.PersistedLoad(2 * WordsPerLine); got != 102 {
		t.Errorf("line 2 = %d, want 102 (persisted)", got)
	}
}
