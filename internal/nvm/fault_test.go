package nvm

import (
	"testing"

	"prepuc/internal/fault"
	"prepuc/internal/sim"
)

// pendingLines builds a system with n stored-and-flushed-but-unfenced lines.
func pendingLines(n uint64, p fault.Policy) *System {
	sch := sim.New(1)
	sys := NewSystem(sch, Config{Seed: 7})
	sys.SetFaultPolicy(p)
	sch.Spawn("t", 0, 0, func(th *sim.Thread) {
		m := sys.NewMemory("m", NVM, 0, n*WordsPerLine)
		f := sys.NewFlusher()
		for l := uint64(0); l < n; l++ {
			m.Store(th, l*WordsPerLine, l+1)
			f.FlushLine(th, m, l*WordsPerLine)
		}
		// no fence: every line's fate is the policy's decision
	})
	sch.Run()
	return sys
}

func countPersisted(rec *System, n uint64) uint64 {
	m := rec.Memory("m")
	var persisted uint64
	for l := uint64(0); l < n; l++ {
		if m.PersistedLoad(l*WordsPerLine) == l+1 {
			persisted++
		}
	}
	return persisted
}

func TestDropAllPolicy(t *testing.T) {
	const n = 50
	sys := pendingLines(n, fault.DropAll())
	rec := sys.Recover(sim.New(2))
	if got := countPersisted(rec, n); got != 0 {
		t.Errorf("DropAll persisted %d of %d lines, want 0", got, n)
	}
	snap := rec.Metrics().Snapshot()
	if snap.CrashLinesDropped != n || snap.CrashLinesPersisted != 0 {
		t.Errorf("counters: dropped=%d persisted=%d, want %d/0",
			snap.CrashLinesDropped, snap.CrashLinesPersisted, n)
	}
}

func TestPersistAllPolicy(t *testing.T) {
	const n = 50
	sys := pendingLines(n, fault.PersistAll())
	rec := sys.Recover(sim.New(2))
	if got := countPersisted(rec, n); got != n {
		t.Errorf("PersistAll persisted %d of %d lines, want all", got, n)
	}
	snap := rec.Metrics().Snapshot()
	if snap.CrashLinesPersisted != n || snap.CrashLinesDropped != 0 {
		t.Errorf("counters: dropped=%d persisted=%d, want 0/%d",
			snap.CrashLinesDropped, snap.CrashLinesPersisted, n)
	}
}

func TestTargetedDropsExactlyOneAndSweeps(t *testing.T) {
	// Crash k of a Targeted lineage drops pending index k mod n. Two
	// independent systems with the same policy object model two consecutive
	// crashes of one torture cycle.
	const n = 10
	pol := fault.Targeted(0)
	sysA := pendingLines(n, pol)
	recA := sysA.Recover(sim.New(2))
	if got := countPersisted(recA, n); got != n-1 {
		t.Fatalf("first Targeted crash persisted %d of %d lines, want %d", got, n, n-1)
	}
	if recA.Memory("m").PersistedLoad(0) != 0 {
		t.Error("first Targeted crash should drop pending index 0")
	}
	sysB := pendingLines(n, pol)
	recB := sysB.Recover(sim.New(2))
	if recB.Memory("m").PersistedLoad(0) == 0 {
		t.Error("second Targeted crash dropped index 0 again; sweep did not advance")
	}
	if recB.Memory("m").PersistedLoad(WordsPerLine) != 0 {
		t.Error("second Targeted crash should drop pending index 1")
	}
}

func TestPolicyCarriedIntoRecoveredSystem(t *testing.T) {
	sys := pendingLines(4, fault.DropAll())
	rec := sys.Recover(sim.New(2))
	if rec.FaultPolicy() == nil || rec.FaultPolicy().Name() != "dropall" {
		t.Error("fault policy not carried across Recover")
	}
}

func TestDefaultCoinCountsOutcomes(t *testing.T) {
	sys := pendingLines(100, nil)
	rec := sys.Recover(sim.New(2))
	snap := rec.Metrics().Snapshot()
	if snap.CrashLinesPersisted+snap.CrashLinesDropped != 100 {
		t.Errorf("coin-flip counters sum to %d, want 100",
			snap.CrashLinesPersisted+snap.CrashLinesDropped)
	}
	if snap.CrashLinesPersisted == 0 || snap.CrashLinesDropped == 0 {
		t.Errorf("fair coin produced a degenerate split: persisted=%d dropped=%d",
			snap.CrashLinesPersisted, snap.CrashLinesDropped)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	// A clone must replicate current and persisted views plus pending
	// flushes, and diverge independently afterwards.
	sch := sim.New(1)
	sys := NewSystem(sch, Config{Seed: 3})
	sch.Spawn("t", 0, 0, func(th *sim.Thread) {
		m := sys.NewMemory("m", NVM, 0, 4*WordsPerLine)
		f := sys.NewFlusher()
		m.Store(th, 0, 11)
		f.FlushLineSync(th, m, 0) // persisted in both views
		m.Store(th, WordsPerLine, 22)
		f.FlushLine(th, m, WordsPerLine) // pending, unfenced
	})
	sch.Run()

	clone := sys.Clone(sim.New(2))
	cm := clone.Memory("m")
	if cm.PersistedLoad(0) != 11 {
		t.Error("clone lost the persisted view")
	}
	// Mutate the clone; the original must not see it.
	csch := clone.Scheduler()
	csch.Spawn("t", 0, 0, func(th *sim.Thread) {
		cm.Store(th, 0, 99)
	})
	csch.Run()
	if got := sys.Memory("m").PersistedLoad(0); got != 11 {
		t.Errorf("mutating the clone changed the original (persisted=%d)", got)
	}
	// The pending unfenced line must have been carried: with PersistAll it
	// materializes at the clone's crash.
	clone.SetFaultPolicy(fault.PersistAll())
	rec := clone.Recover(sim.New(4))
	if got := rec.Memory("m").PersistedLoad(WordsPerLine); got != 22 {
		t.Errorf("pending flush not carried into clone (persisted=%d, want 22)", got)
	}
}
