package nvm

import "prepuc/internal/sim"

// pendingFlush identifies one line awaiting a fence.
type pendingFlush struct {
	m    *Memory
	line uint64
}

// Flusher models one hardware thread's view of in-flight asynchronous
// write-backs. CLWB/CLFLUSHOPT order only against a subsequent SFENCE on the
// same thread, so each simulated thread owns a Flusher; lines it has flushed
// but not fenced are in an undefined persistence state if a crash hits.
//
// seen dedups FliT-style: a line already tracked in the current fence epoch
// is not tracked again. Entries are generation-stamped — an entry belongs to
// the current epoch iff its value equals gen — so Fence invalidates the
// whole set by incrementing gen instead of clearing the map.
type Flusher struct {
	sys     *System
	pending []pendingFlush
	seen    map[pendingFlush]uint64
	gen     uint64
}

// NewFlusher creates a per-thread flusher registered for crash accounting.
func (s *System) NewFlusher() *Flusher {
	f := &Flusher{
		sys:     s,
		pending: make([]pendingFlush, 0, 32),
		seen:    make(map[pendingFlush]uint64, 32),
		gen:     1, // zero-value map entries must never match the epoch
	}
	s.flushers = append(s.flushers, f)
	return f
}

// FlushLine issues an asynchronous write-back (CLWB) of the line containing
// off. The line is not persisted until the next Fence — or, at a crash, with
// 50% probability.
func (f *Flusher) FlushLine(t *sim.Thread, m *Memory, off uint64) {
	if m.kind != NVM {
		panic("nvm: FlushLine on volatile memory " + m.name)
	}
	t.Step(f.sys.costs.FlushLine)
	m.stats.FlushAsync++
	f.sys.met.FlushAsync++
	p := pendingFlush{m, off / WordsPerLine}
	if f.seen[p] == f.gen {
		return
	}
	f.seen[p] = f.gen
	f.pending = append(f.pending, p)
}

// FlushLineSync executes a blocking flush (CLFLUSH) of the line containing
// off; the line is persisted before FlushLineSync returns.
func (f *Flusher) FlushLineSync(t *sim.Thread, m *Memory, off uint64) {
	if m.kind != NVM {
		panic("nvm: FlushLineSync on volatile memory " + m.name)
	}
	t.Step(f.sys.costs.FlushSync)
	m.stats.FlushSync++
	f.sys.met.FlushSync++
	m.persistLine(off / WordsPerLine)
}

// Fence executes an SFENCE: every line previously issued through FlushLine
// on this flusher is persisted before Fence returns.
func (f *Flusher) Fence(t *sim.Thread) {
	n := uint64(len(f.pending))
	t.Step(f.sys.costs.Fence + f.sys.costs.FencePerPending*n)
	f.sys.fences++
	f.sys.met.Fences++
	for _, p := range f.pending {
		p.m.persistLine(p.line)
	}
	f.pending = f.pending[:0]
	f.gen++ // invalidates every seen entry without touching the map
}

// Pending returns the number of lines issued but not yet fenced.
func (f *Flusher) Pending() int { return len(f.pending) }
