package nvm

import "prepuc/internal/sim"

// pendingFlush identifies one line awaiting a fence.
type pendingFlush struct {
	m    *Memory
	line uint64
}

// Flusher models one hardware thread's view of in-flight asynchronous
// write-backs. CLWB/CLFLUSHOPT order only against a subsequent SFENCE on the
// same thread, so each simulated thread owns a Flusher; lines it has flushed
// but not fenced are in an undefined persistence state if a crash hits.
//
// seen dedups FliT-style: a line already tracked in the current fence epoch
// is not tracked again. Entries are generation-stamped — an entry belongs to
// the current epoch iff its value equals gen — so Fence invalidates the
// whole set by incrementing gen instead of clearing the map.
type Flusher struct {
	sys     *System
	pending []pendingFlush
	seen    map[pendingFlush]uint64
	gen     uint64
}

// NewFlusher creates a per-thread flusher registered for crash accounting.
func (s *System) NewFlusher() *Flusher {
	f := &Flusher{
		sys:     s,
		pending: make([]pendingFlush, 0, 32),
		seen:    make(map[pendingFlush]uint64, 32),
		gen:     1, // zero-value map entries must never match the epoch
	}
	s.flushers = append(s.flushers, f)
	return f
}

// FlushLine issues an asynchronous write-back (CLWB) of the line containing
// off. The line is not persisted until the next Fence — or, at a crash,
// according to the installed fault policy.
//
// The flush samples the line's dirty state at issue (before the cost step
// yields) in both elision modes: a clean line never enters the pending set —
// a CLWB of a clean line writes back nothing, and a store issued after it is
// NOT covered by it — and a line already tracked this fence epoch is not
// tracked again. A line that is dirty but pending only on *another* thread's
// flusher is still tracked here: the other thread's flush persists only at
// that thread's fence. With elision on, the skipped cases charge just
// Costs.FlushCheck (the FliT-style per-line state lookup) instead of a full
// FlushLine, and are tallied as FlushesElided; with elision off the full
// FlushLine cost and FlushAsync count apply regardless. The pending sets are
// identical in both modes, so crash materialization draws the same policy
// sequence and the persisted views are byte-identical.
func (f *Flusher) FlushLine(t *sim.Thread, m *Memory, off uint64) {
	if m.kind != NVM {
		panic("nvm: FlushLine on volatile memory " + m.name)
	}
	line := off / WordsPerLine
	p := pendingFlush{m, line}
	track := m.dstate.load(line)&lineDirty != 0 && f.seen[p] != f.gen
	m.announce(t, AccFlush, line, track)
	if f.sys.elide {
		f.sys.met.FlushElisionChecks++
		if !track {
			t.Step(f.sys.costs.FlushCheck)
			m.stats.FlushesElided++
			f.sys.met.FlushesElided++
			return
		}
	}
	t.Step(f.sys.costs.FlushLine)
	m.stats.FlushAsync++
	f.sys.met.FlushAsync++
	if !track {
		return
	}
	f.seen[p] = f.gen
	f.pending = append(f.pending, p)
}

// FlushLineSync executes a blocking flush (CLFLUSH) of the line containing
// off; the line is persisted before FlushLineSync returns. Like FlushLine it
// samples the dirty state at issue: a clean line's write-back is skipped in
// both modes (it is a state no-op), charged as FlushCheck with elision on
// and as a full FlushSync with elision off. In either case the line's own
// pending entry, if any, is retired — the line is persisted *now*, so
// draining it again at the next fence would double-persist it and inflate
// the fence's FencePerPending charge.
func (f *Flusher) FlushLineSync(t *sim.Thread, m *Memory, off uint64) {
	if m.kind != NVM {
		panic("nvm: FlushLineSync on volatile memory " + m.name)
	}
	line := off / WordsPerLine
	p := pendingFlush{m, line}
	dirty := m.dstate.load(line)&lineDirty != 0
	m.announce(t, AccFlushSync, line, false)
	if f.sys.elide && !dirty {
		f.sys.met.FlushElisionChecks++
		t.Step(f.sys.costs.FlushCheck)
		m.stats.FlushesElided++
		f.sys.met.FlushesElided++
		f.dropPending(p)
		return
	}
	if f.sys.elide {
		f.sys.met.FlushElisionChecks++
	}
	t.Step(f.sys.costs.FlushSync)
	m.stats.FlushSync++
	f.sys.met.FlushSync++
	if dirty {
		m.persistLine(line)
	}
	f.dropPending(p)
}

// dropPending retires the line's pending entry on this flusher (if any)
// after a synchronous flush, preserving the issue order of the remaining
// entries. The epoch-dedup mark is removed too, so a store followed by a
// FlushLine of the same line later in this fence epoch is tracked afresh.
func (f *Flusher) dropPending(p pendingFlush) {
	if f.seen[p] != f.gen {
		return
	}
	delete(f.seen, p)
	for i, q := range f.pending {
		if q == p {
			f.pending = append(f.pending[:i], f.pending[i+1:]...)
			break
		}
	}
}

// Fence executes an SFENCE: every line previously issued through FlushLine
// on this flusher is persisted before Fence returns.
func (f *Flusher) Fence(t *sim.Thread) {
	f.sys.announce(Access{Thread: t.ID(), Kind: AccFence, Mem: "", Line: NoLine, NVM: true})
	n := uint64(len(f.pending))
	t.Step(f.sys.costs.Fence + f.sys.costs.FencePerPending*n)
	f.sys.fences++
	f.sys.met.Fences++
	for _, p := range f.pending {
		p.m.persistLine(p.line)
	}
	f.pending = f.pending[:0]
	f.gen++ // invalidates every seen entry without touching the map
}

// Pending returns the number of lines issued but not yet fenced.
func (f *Flusher) Pending() int { return len(f.pending) }
