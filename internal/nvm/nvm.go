// Package nvm simulates byte-addressable non-volatile memory with a volatile
// cache in front of it, as found on the paper's evaluation machine (Intel
// Optane DCPMM behind volatile CPU caches).
//
// A Memory is a word-addressable region (1 word = 8 bytes, 1 cache line = 8
// words). Every Memory has a current view, playing the role of the cache
// hierarchy plus DRAM, and — for NVM-kind memories — a persisted view,
// playing the role of the 3D-XPoint media. Only the persisted view survives
// a crash.
//
// Data moves from the current view to the persisted view through:
//
//   - Flusher.FlushLine + Flusher.Fence  (CLWB/CLFLUSHOPT … SFENCE)
//   - Flusher.FlushLineSync              (CLFLUSH)
//   - System.WBINVD                      (whole-cache write-back)
//   - background flushes: every store to an NVM memory may, with small
//     probability, be written back immediately by the cache-coherence
//     protocol — without the program's knowledge. This reproduces the §4.1
//     hazard that forces PREP-UC to keep two dedicated persistent replicas.
//
// Asynchronous flushes that were issued but not yet fenced when the crash
// hits are persisted with 50% probability each, modelling their undefined
// ordering on real hardware.
//
// All operations charge virtual time through the sim scheduler, which also
// guarantees mutual exclusion, so the package needs no atomics of its own.
package nvm

import (
	"fmt"

	"prepuc/internal/fault"
	"prepuc/internal/metrics"
	"prepuc/internal/sim"
)

// WordsPerLine is the number of 8-byte words in a simulated cache line.
const WordsPerLine = 8

// Kind distinguishes volatile (DRAM-backed) from non-volatile memories.
type Kind int

const (
	// Volatile memory is lost entirely at a crash. Flush operations on it
	// are a programming error and panic.
	Volatile Kind = iota
	// NVM memory keeps its persisted view across a crash.
	NVM
)

func (k Kind) String() string {
	if k == NVM {
		return "nvm"
	}
	return "volatile"
}

// Interleaved is the home value for memories striped across all NUMA nodes
// (such as the shared operation log). Home placement is descriptive
// metadata: access costs are driven by the per-line coherence state (who
// wrote the line last, and from which node), which is what dominates on
// real NUMA machines for the hot lines these algorithms fight over.
const Interleaved = -1

// Stats counts simulated-hardware events for one Memory.
type Stats struct {
	Loads, Stores, CASes   uint64
	FlushAsync, FlushSync  uint64
	FlushesElided          uint64 // clean-line flush requests skipped (FliT)
	BGFlushes              uint64
	LinesWrittenBack       uint64 // by any mechanism
	WBINVDLinesWrittenBack uint64
}

// Memory is one simulated region. Offsets are word indices. All views live
// in copy-on-write slabs (see cow.go) so cloning and crash recovery share
// pages with the source machine instead of copying the region.
type Memory struct {
	name      string
	kind      Kind
	home      int // NUMA node, or Interleaved (metadata; see access costs)
	sys       *System
	words     uint64
	data      slab[uint64] // current (cache/DRAM) view
	persisted slab[uint64] // NVM view; absent for volatile memories
	// Dirty-line tracking (NVM only): dstate holds per-line lineDirty and
	// lineListed bits; dirtyList records every line dirtied since the last
	// full sweep, appended exactly once (the listed bit is membership).
	// Individual write-backs clear only the dirty bit — their list entries
	// go stale and are skipped by the next sweep — so WBINVD, FlushAllDirty
	// and DirtyLines are O(lines dirtied since the last sweep), never
	// O(region lines).
	dstate    slab[uint8]
	dirtyList []uint64
	// MSI-style per-line ownership for coherence cost accounting: the
	// thread id of the last writer, or ownerShared after a foreign load
	// downgraded the line. Mutated-elsewhere lines charge a transfer on
	// access; this is what makes contended locks expensive and per-node
	// replicas cheap — the effect node replication exploits.
	owner     slab[int32]
	ownerNode slab[int32]
	bgState   uint64 // xorshift state for background-flush draws
	stats     Stats
}

// ownerShared marks a line readable by everyone without transfer cost. It is
// the zero value so fresh owner slabs need no initialization pass; owned
// lines store thread id + 1 (see ownerOf).
const ownerShared = int32(0)

// ownerOf encodes thread id t as a non-shared owner value.
func ownerOf(t int) int32 { return int32(t) + 1 }

// Per-line dirty-state bits.
const (
	lineDirty  = 1 << 0 // current view ahead of persisted view
	lineListed = 1 << 1 // line has an entry in dirtyList
)

// debugFullScan switches DirtyLines and the dirty sweeps back to the
// reference full-bitmap scan in index order. Test-only: the equivalence
// suite runs every workload both ways and requires identical persisted
// views, metrics and virtual clocks.
var debugFullScan = false

// System owns a set of memories and flushers, the latency model, and the
// crash machinery. One System models one machine between two crashes.
type System struct {
	sch      *sim.Scheduler
	costs    sim.Costs
	mems     map[string]*Memory
	order    []*Memory
	flushers []*Flusher
	bgProb   uint64 // background flush: 1-in-bgProb stores; 0 disables
	rngState uint64
	fences   uint64
	wbinvds  uint64
	// policy decides the fate of flushed-but-unfenced lines at a crash; nil
	// selects the built-in fair coin (see Recover).
	policy fault.Policy
	// elide enables FliT-style flush elision: a flush request whose target
	// line is clean charges only Costs.FlushCheck and skips the write-back.
	// Elision never changes which lines enter the pending sets — clean lines
	// are excluded in both modes (a CLWB of a clean line writes back
	// nothing, and a store after it is NOT covered by it) — so crash
	// materialization is identical either way; the knob only switches the
	// cost model and the FlushAsync/FlushSync vs FlushesElided accounting.
	elide bool
	// met is the machine-wide metrics registry; memory, flusher, lock, log
	// and engine events all record into it. Increments are host-side only
	// and cost no virtual time (see package metrics).
	met *metrics.Registry
	// accHook / peHook are the exhaustive explorer's event taps (see
	// trace.go). Both nil outside exploration; neither costs virtual time.
	accHook func(Access)
	peHook  func(thread int)
}

// Config parameterizes a System.
type Config struct {
	Costs sim.Costs
	// BGFlushOneIn enables background flushes on NVM stores with probability
	// 1/BGFlushOneIn. Zero disables them.
	BGFlushOneIn uint64
	// Seed drives crash-time persistence coin flips and background flushes.
	Seed uint64
	// Policy overrides the crash-time materialization of pending (flushed
	// but unfenced) lines. Nil keeps the substrate's default fair coin.
	Policy fault.Policy
	// NoFlushElision disables the FliT-style clean-line flush elision and
	// restores the reference cost model where every flush request charges a
	// full FlushLine/FlushSync. The persisted views are identical in both
	// modes; equivalence and ablation runs use this as the baseline.
	NoFlushElision bool
}

// NewSystem creates a machine attached to the given scheduler.
func NewSystem(sch *sim.Scheduler, cfg Config) *System {
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x1234_5678_9ABC_DEF1
	}
	return &System{
		sch:      sch,
		costs:    cfg.Costs,
		mems:     make(map[string]*Memory),
		bgProb:   cfg.BGFlushOneIn,
		rngState: seed,
		policy:   cfg.Policy,
		elide:    !cfg.NoFlushElision,
		met:      metrics.NewRegistry(),
	}
}

// SetFlushElision switches FliT-style clean-line flush elision on or off.
// Engine ablations call it after boot; the setting is carried through
// Recover and Clone.
func (s *System) SetFlushElision(on bool) { s.elide = on }

// FlushElision reports whether clean-line flush elision is enabled.
func (s *System) FlushElision() bool { return s.elide }

// SetFaultPolicy replaces the crash-time persistence adversary. A nil policy
// restores the default fair coin. The policy applies to this system's next
// Recover and is carried into the recovered system.
func (s *System) SetFaultPolicy(p fault.Policy) { s.policy = p }

// FaultPolicy returns the installed crash-time adversary (nil = fair coin).
func (s *System) FaultPolicy() fault.Policy { return s.policy }

// SetBGFlushOneIn overrides the background write-back rate (one store in n
// leaks its line to the persisted view; 0 disables). Crash harnesses raise
// the rate for a recovery phase to stress write-back hazards that the
// workload's rate would hit only rarely.
func (s *System) SetBGFlushOneIn(n uint64) { s.bgProb = n }

// Scheduler returns the sim scheduler this system runs on.
func (s *System) Scheduler() *sim.Scheduler { return s.sch }

// SetScheduler rebinds the system to a new scheduler. Recovery runs in
// phases (boot, then workers), each on its own scheduler; the memories
// themselves are scheduler-agnostic but Crash must freeze the active one.
func (s *System) SetScheduler(sch *sim.Scheduler) { s.sch = sch }

// Costs returns the latency model.
func (s *System) Costs() sim.Costs { return s.costs }

// Metrics returns the machine-wide metrics registry.
func (s *System) Metrics() *metrics.Registry { return s.met }

// Fences returns the number of fences executed system-wide.
func (s *System) Fences() uint64 { return s.fences }

// WBINVDs returns the number of whole-cache write-backs executed.
func (s *System) WBINVDs() uint64 { return s.wbinvds }

// NewMemory allocates a region of the given size in words. Names must be
// unique within a System; NVM memories are recovered by name after a crash.
func (s *System) NewMemory(name string, kind Kind, home int, words uint64) *Memory {
	if _, dup := s.mems[name]; dup {
		panic(fmt.Sprintf("nvm: duplicate memory name %q", name))
	}
	if words%WordsPerLine != 0 {
		words += WordsPerLine - words%WordsPerLine
	}
	lines := words / WordsPerLine
	m := &Memory{
		name:      name,
		kind:      kind,
		home:      home,
		sys:       s,
		words:     words,
		data:      newZeroSlab[uint64](words, &s.met.PagesCopied),
		owner:     newZeroSlab[int32](lines, &s.met.PagesCopied),
		ownerNode: newZeroSlab[int32](lines, &s.met.PagesCopied),
		bgState:   s.nextRand() | 1,
	}
	if kind == NVM {
		m.persisted = newZeroSlab[uint64](words, &s.met.PagesCopied)
		m.dstate = newZeroSlab[uint8](lines, &s.met.PagesCopied)
	}
	s.mems[name] = m
	s.order = append(s.order, m)
	return m
}

// Memory looks up a region by name (used by recovery code).
func (s *System) Memory(name string) *Memory {
	m, ok := s.mems[name]
	if !ok {
		panic(fmt.Sprintf("nvm: no memory named %q", name))
	}
	return m
}

// HasMemory reports whether a region with this name exists.
func (s *System) HasMemory(name string) bool {
	_, ok := s.mems[name]
	return ok
}

func (s *System) nextRand() uint64 {
	x := s.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rngState = x
	return x
}

// Name returns the region's name.
func (m *Memory) Name() string { return m.name }

// Kind returns whether the region is volatile or NVM.
func (m *Memory) Kind() Kind { return m.kind }

// Words returns the region size in words.
func (m *Memory) Words() uint64 { return m.words }

// Stats returns a copy of the region's event counters.
func (m *Memory) Stats() Stats { return m.stats }

// Metrics returns the owning system's metrics registry; packages that only
// hold a Memory (oplog, locks) record their events through it.
func (m *Memory) Metrics() *metrics.Registry { return m.sys.met }

// transferCost prices acquiring a line currently owned by another thread:
// an intra-node cache-to-cache transfer or a cross-socket one.
func (m *Memory) transferCost(t *sim.Thread, line uint64) uint64 {
	if int(m.ownerNode.load(line)) == t.Node() {
		m.sys.met.CoherenceLocal++
		return m.sys.costs.CoherenceLocal
	}
	m.sys.met.CoherenceRemote++
	return m.sys.costs.CoherenceRemote
}

// loadCost prices a load of the line from thread t and downgrades foreign
// exclusively-owned lines to shared (MSI's M→S on a remote read).
func (m *Memory) loadCost(t *sim.Thread, line uint64) uint64 {
	cost := m.sys.costs.LocalAccess
	if m.kind == NVM {
		cost += m.sys.costs.NVMLoadExtra
	}
	if own := m.owner.load(line); own != ownerShared && own != ownerOf(t.ID()) {
		cost += m.transferCost(t, line)
		m.owner.store(line, ownerShared)
	}
	return cost
}

// storeCost prices a store (or CAS) and takes exclusive ownership: stores to
// shared lines pay an invalidation, stores to foreign-owned lines a
// transfer (MSI's S/M→M elsewhere → M here).
func (m *Memory) storeCost(t *sim.Thread, line uint64) uint64 {
	cost := m.sys.costs.LocalAccess
	if m.kind == NVM {
		cost += m.sys.costs.NVMStoreExtra
	}
	switch own := m.owner.load(line); {
	case own == ownerOf(t.ID()):
		// already exclusive; ownership state is already exactly what the
		// stores below would write, so skip them (a same-owner store must
		// not privatize shared COW pages)
		return cost
	case own == ownerShared:
		cost += m.sys.costs.CoherenceLocal // invalidate sharers
		m.sys.met.CoherenceLocal++
	default:
		cost += m.transferCost(t, line)
	}
	m.owner.store(line, ownerOf(t.ID()))
	m.ownerNode.store(line, int32(t.Node()))
	return cost
}

// Load reads the word at off.
func (m *Memory) Load(t *sim.Thread, off uint64) uint64 {
	m.announce(t, AccLoad, off/WordsPerLine, false)
	t.Step(m.loadCost(t, off/WordsPerLine))
	m.stats.Loads++
	m.sys.met.Loads++
	return m.data.load(off)
}

// markDirty sets the line's dirty bit and enrolls it in the dirty list the
// first time it is dirtied since the last full sweep.
func (m *Memory) markDirty(line uint64) {
	st := m.dstate.load(line)
	if st&lineDirty != 0 {
		return
	}
	if st&lineListed == 0 {
		m.dirtyList = append(m.dirtyList, line)
	}
	m.dstate.store(line, lineDirty|lineListed)
}

// Store writes v to the word at off. For NVM memories the store dirties the
// containing line and may trigger a background write-back.
func (m *Memory) Store(t *sim.Thread, off uint64, v uint64) {
	line := off / WordsPerLine
	m.announce(t, AccStore, line, false)
	t.Step(m.storeCost(t, line))
	m.stats.Stores++
	m.sys.met.Stores++
	m.data.store(off, v)
	if m.kind == NVM {
		m.markDirty(line)
		bg := m.sys.bgProb != 0 && m.nextBG()%m.sys.bgProb == 0
		if bg {
			m.persistLine(line)
			m.stats.BGFlushes++
			m.sys.met.BGFlushes++
		}
		if h := m.sys.peHook; h != nil && (bg || m.linePending(line)) {
			h(t.ID())
		}
	}
}

// linePending reports whether the line sits in some flusher's pending set. A
// store to such a line is persist-relevant even without a background
// write-back: the pending entry persists the line's content as of the crash,
// not as of the flush, so the store changes what a crash materializes. Only
// consulted when the explorer's persist-effect hook is installed.
func (m *Memory) linePending(line uint64) bool {
	p := pendingFlush{m, line}
	for _, f := range m.sys.flushers {
		if f.seen[p] == f.gen {
			return true
		}
	}
	return false
}

// CAS atomically compares and swaps the word at off. Failed CASes still
// acquire the line exclusively, as on real hardware.
func (m *Memory) CAS(t *sim.Thread, off, old, new uint64) bool {
	line := off / WordsPerLine
	m.announce(t, AccCAS, line, false)
	t.Step(m.storeCost(t, line))
	m.stats.CASes++
	m.sys.met.CASes++
	if m.data.load(off) != old {
		return false
	}
	m.data.store(off, new)
	if m.kind == NVM {
		m.markDirty(line)
		bg := m.sys.bgProb != 0 && m.nextBG()%m.sys.bgProb == 0
		if bg {
			m.persistLine(line)
			m.stats.BGFlushes++
			m.sys.met.BGFlushes++
		}
		if h := m.sys.peHook; h != nil && (bg || m.linePending(line)) {
			h(t.ID())
		}
	}
	return true
}

func (m *Memory) nextBG() uint64 {
	x := m.bgState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	m.bgState = x
	return x
}

// copyLine copies one line from the current view to the persisted view and
// bumps the write-back counters, leaving dirty state to the caller.
func (m *Memory) copyLine(line uint64) {
	base := line * WordsPerLine
	copy(m.persisted.wline(base, WordsPerLine), m.data.line(base, WordsPerLine))
	m.stats.LinesWrittenBack++
	m.sys.met.LinesWrittenBack++
}

// persistLine copies one line from the current view to the persisted view.
// The line's dirty-list entry (if any) is left in place and skipped by the
// next sweep.
func (m *Memory) persistLine(line uint64) {
	if m.kind != NVM {
		panic("nvm: persistLine on volatile memory " + m.name)
	}
	m.copyLine(line)
	if st := m.dstate.load(line); st&lineDirty != 0 {
		m.dstate.store(line, st&^uint8(lineDirty))
	}
}

// PersistedLoad reads the persisted view directly. Only recovery code and
// tests may use it; live algorithm code must go through Load.
func (m *Memory) PersistedLoad(off uint64) uint64 {
	if m.kind != NVM {
		panic("nvm: PersistedLoad on volatile memory " + m.name)
	}
	return m.persisted.load(off)
}

// DirtyLines returns the number of lines modified since their last
// write-back (NVM memories only). The dirty list holds every candidate, so
// the count walks only lines dirtied since the last sweep; entries whose
// line was individually written back in the meantime are stale and skipped.
func (m *Memory) DirtyLines() uint64 {
	var n uint64
	if debugFullScan {
		for line := uint64(0); line < m.words/WordsPerLine; line++ {
			if m.dstate.load(line)&lineDirty != 0 {
				n++
			}
		}
		return n
	}
	for _, line := range m.dirtyList {
		if m.dstate.load(line)&lineDirty != 0 {
			n++
		}
	}
	return n
}

// sweepDirty writes back every dirty line, calling onLine per line written,
// and resets the dirty list: after a sweep every line's dirty state is zero
// and the list is empty. List order differs from index order, but per-line
// write-backs are independent and draw no randomness, so the resulting
// machine state is identical either way (the equivalence tests pin this).
func (m *Memory) sweepDirty(onLine func()) {
	if debugFullScan {
		for line := uint64(0); line < m.words/WordsPerLine; line++ {
			st := m.dstate.load(line)
			if st&lineDirty != 0 {
				m.copyLine(line)
				if onLine != nil {
					onLine()
				}
			}
			if st != 0 {
				m.dstate.store(line, 0)
			}
		}
		m.dirtyList = m.dirtyList[:0]
		return
	}
	for _, line := range m.dirtyList {
		if m.dstate.load(line)&lineDirty != 0 {
			m.copyLine(line)
			if onLine != nil {
				onLine()
			}
		}
		m.dstate.store(line, 0)
	}
	m.dirtyList = m.dirtyList[:0]
}

// FlushRegion write-backs every line intersecting words [from, to) and
// fences, as one bulk event charged lines*FlushLine + Fence. CX-PUC uses it
// to persist a replica's whole address range after an update; issuing the
// CLWBs one by one would model the same cost at far more simulator events.
func (m *Memory) FlushRegion(t *sim.Thread, from, to uint64) {
	if m.kind != NVM {
		panic("nvm: FlushRegion on volatile memory " + m.name)
	}
	m.announce(t, AccFlushRegion, NoLine, false)
	if to > m.Words() {
		to = m.Words()
	}
	if from >= to {
		t.Step(m.sys.costs.Fence)
		m.sys.fences++
		m.sys.met.Fences++
		return
	}
	first := from / WordsPerLine
	last := (to - 1) / WordsPerLine
	lines := last - first + 1
	if m.sys.elide {
		// FliT-style elision: only the dirty lines in the range are written
		// back and charged; clean lines cost one state check each. The
		// persisted view is identical either way (persisting a clean line is
		// a no-op), so only the cost model and accounting change. The cost is
		// priced from the pre-Step dirty count and the write-back happens
		// after the Step, mirroring the reference branch's charge-then-act
		// order so both modes observe the same post-yield line state.
		// FencePerPending is charged for every line in the range, not just
		// the written-back subset: the trailing fence's drain walk covers the
		// whole region either way — and it keeps a region flush the same
		// number of unit-cost steps in both modes, so elision-on and
		// reference runs stay schedule-identical under sim.UnitCosts (the
		// property the on/off equivalence suite pins word-for-word).
		var dirty uint64
		for line := first; line <= last; line++ {
			if m.dstate.load(line)&lineDirty != 0 {
				dirty++
			}
		}
		t.Step(m.sys.costs.FlushLine*dirty + m.sys.costs.FlushCheck*(lines-dirty) +
			m.sys.costs.Fence + m.sys.costs.FencePerPending*lines)
		m.sys.fences++
		m.sys.met.Fences++
		var wrote uint64
		for line := first; line <= last; line++ {
			if m.dstate.load(line)&lineDirty != 0 {
				m.persistLine(line)
				wrote++
			}
		}
		m.stats.FlushAsync += wrote
		m.sys.met.FlushAsync += wrote
		m.stats.FlushesElided += lines - wrote
		m.sys.met.FlushesElided += lines - wrote
		m.sys.met.FlushElisionChecks += lines
		return
	}
	t.Step(m.sys.costs.FlushLine*lines + m.sys.costs.Fence + m.sys.costs.FencePerPending*lines)
	m.sys.fences++
	m.sys.met.Fences++
	for line := first; line <= last; line++ {
		m.persistLine(line)
	}
	m.stats.FlushAsync += lines
	m.sys.met.FlushAsync += lines
}

// FlushAllDirty write-backs every currently dirty line and fences, as one
// bulk event. It is the "track writes and flush only modified lines"
// strategy that a black-box PUC cannot implement (the ablation benchmark
// uses it to quantify what write tracking would buy PREP-UC over WBINVD).
func (m *Memory) FlushAllDirty(t *sim.Thread) {
	if m.kind != NVM {
		panic("nvm: FlushAllDirty on volatile memory " + m.name)
	}
	m.announce(t, AccFlushAllDirty, NoLine, false)
	lines := m.DirtyLines()
	t.Step(m.sys.costs.FlushLine*lines + m.sys.costs.Fence + m.sys.costs.FencePerPending*lines)
	m.sys.fences++
	m.sys.met.Fences++
	m.sweepDirty(nil)
	m.stats.FlushAsync += lines
	m.sys.met.FlushAsync += lines
}

// WBINVD writes back every dirty line of the given memories, modelling the
// privileged whole-cache write-back executed by the persistence thread. The
// paper invokes WBINVD on one processor, which writes back all dirty data in
// that processor's cache; since the persistence thread is the only writer of
// the persistent replicas, the affected dirty lines are exactly those of the
// memories it writes, which the caller passes here. Cost is a large fixed
// base plus a per-line charge.
func (s *System) WBINVD(t *sim.Thread, mems ...*Memory) {
	s.announce(Access{Thread: t.ID(), Kind: AccWBINVD, Mem: "", Line: NoLine, NVM: true})
	var lines uint64
	for _, m := range mems {
		if m.kind != NVM {
			panic("nvm: WBINVD over volatile memory " + m.name)
		}
		lines += m.DirtyLines()
	}
	t.Step(s.costs.WBINVDBase + s.costs.WBINVDPerLine*lines)
	s.wbinvds++
	s.met.WBINVDs++
	for _, m := range mems {
		m := m
		m.sweepDirty(func() {
			m.stats.WBINVDLinesWrittenBack++
			s.met.WBINVDLines++
		})
	}
}
