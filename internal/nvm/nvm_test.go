package nvm

import (
	"testing"

	"prepuc/internal/sim"
)

// runOne executes fn on a single simulated thread pinned to node.
func runOne(t *testing.T, cfg Config, node int, fn func(*sim.Thread, *System)) {
	t.Helper()
	sch := sim.New(1)
	sys := NewSystem(sch, cfg)
	sch.Spawn("t", node, 0, func(th *sim.Thread) { fn(th, sys) })
	sch.Run()
}

func TestStoreLoadRoundTrip(t *testing.T) {
	runOne(t, Config{}, 0, func(th *sim.Thread, sys *System) {
		m := sys.NewMemory("m", Volatile, 0, 64)
		m.Store(th, 5, 42)
		if got := m.Load(th, 5); got != 42 {
			t.Errorf("Load = %d, want 42", got)
		}
	})
}

func TestCASSemantics(t *testing.T) {
	runOne(t, Config{}, 0, func(th *sim.Thread, sys *System) {
		m := sys.NewMemory("m", Volatile, 0, 64)
		m.Store(th, 0, 10)
		if m.CAS(th, 0, 11, 20) {
			t.Error("CAS with wrong expected value succeeded")
		}
		if !m.CAS(th, 0, 10, 20) {
			t.Error("CAS with right expected value failed")
		}
		if got := m.Load(th, 0); got != 20 {
			t.Errorf("after CAS, Load = %d, want 20", got)
		}
	})
}

func TestUnflushedStoreNotPersisted(t *testing.T) {
	runOne(t, Config{}, 0, func(th *sim.Thread, sys *System) {
		m := sys.NewMemory("m", NVM, 0, 64)
		m.Store(th, 3, 77)
		if got := m.PersistedLoad(3); got != 0 {
			t.Errorf("persisted view = %d before any flush, want 0", got)
		}
	})
}

func TestFlushLineRequiresFence(t *testing.T) {
	runOne(t, Config{}, 0, func(th *sim.Thread, sys *System) {
		m := sys.NewMemory("m", NVM, 0, 64)
		f := sys.NewFlusher()
		m.Store(th, 3, 77)
		f.FlushLine(th, m, 3)
		if got := m.PersistedLoad(3); got != 0 {
			t.Errorf("persisted = %d after unfenced CLWB, want 0", got)
		}
		f.Fence(th)
		if got := m.PersistedLoad(3); got != 77 {
			t.Errorf("persisted = %d after fence, want 77", got)
		}
	})
}

func TestFlushLineSyncPersistsImmediately(t *testing.T) {
	runOne(t, Config{}, 0, func(th *sim.Thread, sys *System) {
		m := sys.NewMemory("m", NVM, 0, 64)
		f := sys.NewFlusher()
		m.Store(th, 9, 5)
		f.FlushLineSync(th, m, 9)
		if got := m.PersistedLoad(9); got != 5 {
			t.Errorf("persisted = %d after CLFLUSH, want 5", got)
		}
	})
}

func TestFlushWholeLine(t *testing.T) {
	// Flushing any word of a line persists the whole line.
	runOne(t, Config{}, 0, func(th *sim.Thread, sys *System) {
		m := sys.NewMemory("m", NVM, 0, 64)
		f := sys.NewFlusher()
		for w := uint64(8); w < 16; w++ {
			m.Store(th, w, w*10)
		}
		f.FlushLineSync(th, m, 8) // first word of line 1
		for w := uint64(8); w < 16; w++ {
			if got := m.PersistedLoad(w); got != w*10 {
				t.Errorf("word %d persisted = %d, want %d", w, got, w*10)
			}
		}
	})
}

func TestFlushDeduplicatesPendingLines(t *testing.T) {
	runOne(t, Config{}, 0, func(th *sim.Thread, sys *System) {
		m := sys.NewMemory("m", NVM, 0, 64)
		f := sys.NewFlusher()
		m.Store(th, 0, 1)
		f.FlushLine(th, m, 0)
		f.FlushLine(th, m, 3) // same line (words 0..7)
		if f.Pending() != 1 {
			t.Errorf("pending = %d, want 1 (same line deduped)", f.Pending())
		}
	})
}

func TestWBINVDWritesBackAllDirty(t *testing.T) {
	runOne(t, Config{}, 0, func(th *sim.Thread, sys *System) {
		m := sys.NewMemory("m", NVM, 0, 1024)
		for w := uint64(0); w < 1024; w += 17 {
			m.Store(th, w, w+1)
		}
		if m.DirtyLines() == 0 {
			t.Fatal("expected dirty lines before WBINVD")
		}
		sys.WBINVD(th, m)
		if m.DirtyLines() != 0 {
			t.Errorf("dirty lines = %d after WBINVD, want 0", m.DirtyLines())
		}
		for w := uint64(0); w < 1024; w += 17 {
			if got := m.PersistedLoad(w); got != w+1 {
				t.Errorf("word %d persisted = %d, want %d", w, got, w+1)
			}
		}
		if sys.WBINVDs() != 1 {
			t.Errorf("WBINVDs = %d, want 1", sys.WBINVDs())
		}
	})
}

func TestWBINVDCostScalesWithDirtyLines(t *testing.T) {
	costs := sim.Costs{WBINVDBase: 1000, WBINVDPerLine: 10}
	var fewDirty, manyDirty uint64
	runOne(t, Config{Costs: costs}, 0, func(th *sim.Thread, sys *System) {
		m := sys.NewMemory("m", NVM, 0, 4096)
		m.Store(th, 0, 1)
		before := th.Clock()
		sys.WBINVD(th, m)
		fewDirty = th.Clock() - before
		for w := uint64(0); w < 4096; w += WordsPerLine {
			m.Store(th, w, 2)
		}
		before = th.Clock()
		sys.WBINVD(th, m)
		manyDirty = th.Clock() - before
	})
	if manyDirty <= fewDirty {
		t.Errorf("WBINVD with many dirty lines (%d ns) not costlier than few (%d ns)", manyDirty, fewDirty)
	}
}

func TestCrashLosesUnflushedData(t *testing.T) {
	sch := sim.New(1)
	sys := NewSystem(sch, Config{})
	sch.Spawn("t", 0, 0, func(th *sim.Thread) {
		m := sys.NewMemory("m", NVM, 0, 64)
		f := sys.NewFlusher()
		m.Store(th, 0, 100)
		f.FlushLineSync(th, m, 0)
		m.Store(th, 8, 200) // separate line, never flushed
	})
	sch.Run()
	rec := sys.Recover(sim.New(2))
	m := rec.Memory("m")
	sch2 := rec.Scheduler()
	var flushed, lost uint64
	sch2.Spawn("r", 0, 0, func(th *sim.Thread) {
		flushed = m.Load(th, 0)
		lost = m.Load(th, 8)
	})
	sch2.Run()
	if flushed != 100 {
		t.Errorf("flushed word = %d after crash, want 100", flushed)
	}
	if lost != 0 {
		t.Errorf("unflushed word = %d after crash, want 0 (lost)", lost)
	}
}

func TestCrashKeepsOldPersistedValueNotZero(t *testing.T) {
	sch := sim.New(1)
	sys := NewSystem(sch, Config{})
	sch.Spawn("t", 0, 0, func(th *sim.Thread) {
		m := sys.NewMemory("m", NVM, 0, 64)
		f := sys.NewFlusher()
		m.Store(th, 0, 1)
		f.FlushLineSync(th, m, 0)
		m.Store(th, 0, 2) // overwrite, never flushed
	})
	sch.Run()
	rec := sys.Recover(sim.New(2))
	if got := rec.Memory("m").PersistedLoad(0); got != 1 {
		t.Errorf("persisted = %d, want old value 1 (not the lost overwrite)", got)
	}
}

func TestVolatileMemoryGoneAfterCrash(t *testing.T) {
	sch := sim.New(1)
	sys := NewSystem(sch, Config{})
	sys.NewMemory("v", Volatile, 0, 64)
	sys.NewMemory("p", NVM, 0, 64)
	sch.Run()
	rec := sys.Recover(sim.New(2))
	if rec.HasMemory("v") {
		t.Error("volatile memory survived crash")
	}
	if !rec.HasMemory("p") {
		t.Error("NVM memory lost at crash")
	}
}

func TestUnfencedFlushesCoinFlipAtCrash(t *testing.T) {
	// With many independent unfenced lines, roughly half must persist.
	sch := sim.New(1)
	sys := NewSystem(sch, Config{Seed: 7})
	const lines = 400
	sch.Spawn("t", 0, 0, func(th *sim.Thread) {
		m := sys.NewMemory("m", NVM, 0, lines*WordsPerLine)
		f := sys.NewFlusher()
		for l := uint64(0); l < lines; l++ {
			m.Store(th, l*WordsPerLine, l+1)
			f.FlushLine(th, m, l*WordsPerLine)
		}
		// no fence: crash leaves all lines in undefined state
	})
	sch.Run()
	rec := sys.Recover(sim.New(2))
	m := rec.Memory("m")
	persisted := 0
	for l := uint64(0); l < lines; l++ {
		if m.PersistedLoad(l*WordsPerLine) == l+1 {
			persisted++
		}
	}
	if persisted < lines/4 || persisted > lines*3/4 {
		t.Errorf("persisted %d of %d unfenced lines; want roughly half", persisted, lines)
	}
}

func TestBackgroundFlushesHappen(t *testing.T) {
	runOne(t, Config{BGFlushOneIn: 16, Seed: 3}, 0, func(th *sim.Thread, sys *System) {
		m := sys.NewMemory("m", NVM, 0, 8192)
		for w := uint64(0); w < 8192; w++ {
			m.Store(th, w, 1)
		}
		if m.Stats().BGFlushes == 0 {
			t.Error("no background flushes after 8192 NVM stores with 1/16 probability")
		}
	})
}

func TestBackgroundFlushesDisabledByDefault(t *testing.T) {
	runOne(t, Config{}, 0, func(th *sim.Thread, sys *System) {
		m := sys.NewMemory("m", NVM, 0, 8192)
		for w := uint64(0); w < 8192; w++ {
			m.Store(th, w, 1)
		}
		if got := m.Stats().BGFlushes; got != 0 {
			t.Errorf("BGFlushes = %d with feature disabled, want 0", got)
		}
	})
}

func TestBackgroundFlushCanLeakMidUpdateState(t *testing.T) {
	// The §4.1 hazard: with background flushes on, an unflushed store can
	// nonetheless appear in the persisted view.
	sch := sim.New(1)
	sys := NewSystem(sch, Config{BGFlushOneIn: 4, Seed: 11})
	var leaked bool
	sch.Spawn("t", 0, 0, func(th *sim.Thread) {
		m := sys.NewMemory("m", NVM, 0, 4096)
		for w := uint64(0); w < 4096; w++ {
			m.Store(th, w, 99)
			if m.PersistedLoad(w) == 99 {
				leaked = true
			}
		}
	})
	sch.Run()
	if !leaked {
		t.Error("no store leaked to NVM despite aggressive background flushing")
	}
}

func TestCoherenceTransferCosts(t *testing.T) {
	// MSI accounting: a load of a line another thread wrote pays a transfer
	// (same-node cheaper than cross-node); re-loads of shared lines and the
	// owner's own accesses are plain cache hits.
	costs := sim.Costs{LocalAccess: 10, CoherenceLocal: 40, CoherenceRemote: 100}
	var writerStore, sameNodeLoad, crossNodeLoad, reload, ownerReload uint64
	sch := sim.New(1)
	sys := NewSystem(sch, Config{Costs: costs})
	m := sys.NewMemory("m", Volatile, 0, 128)
	step := 0
	sch.Spawn("writer-n0", 0, 0, func(th *sim.Thread) {
		before := th.Clock()
		m.Store(th, 0, 1) // line 0: shared→M upgrade
		writerStore = th.Clock() - before
		m.Store(th, 64, 1) // line 8 for the cross-node case
		step = 1
		for step < 3 {
			th.Step(5)
		}
		before = th.Clock()
		m.Load(th, 64) // line downgraded to shared by reader: plain hit? it
		// was read by n1 (shared now): owner's reload is a hit.
		ownerReload = th.Clock() - before
	})
	sch.Spawn("reader-n0", 0, 0, func(th *sim.Thread) {
		for step < 1 {
			th.Step(5)
		}
		before := th.Clock()
		m.Load(th, 0) // owned by writer on same node
		sameNodeLoad = th.Clock() - before
		before = th.Clock()
		m.Load(th, 0) // now shared
		reload = th.Clock() - before
		step = 2
	})
	sch.Spawn("reader-n1", 1, 0, func(th *sim.Thread) {
		for step < 2 {
			th.Step(5)
		}
		before := th.Clock()
		m.Load(th, 64) // owned by writer on node 0, we are node 1
		crossNodeLoad = th.Clock() - before
		step = 3
	})
	sch.Run()
	if writerStore != 50 { // 10 + CoherenceLocal upgrade from shared
		t.Errorf("first store = %d, want 50", writerStore)
	}
	if sameNodeLoad != 50 { // 10 + 40
		t.Errorf("same-node foreign load = %d, want 50", sameNodeLoad)
	}
	if crossNodeLoad != 110 { // 10 + 100
		t.Errorf("cross-node foreign load = %d, want 110", crossNodeLoad)
	}
	if reload != 10 {
		t.Errorf("shared reload = %d, want 10", reload)
	}
	if ownerReload != 10 {
		t.Errorf("owner reload of shared line = %d, want 10", ownerReload)
	}
}

func TestContendedLineCostlierThanPrivate(t *testing.T) {
	// Two threads alternately storing to one line pay transfers every time;
	// a thread storing to its private line pays only once.
	costs := sim.Costs{LocalAccess: 10, CoherenceLocal: 40, CoherenceRemote: 100}
	sch := sim.New(1)
	sys := NewSystem(sch, Config{Costs: costs})
	m := sys.NewMemory("m", Volatile, 0, 128)
	var pingPong, private uint64
	sch.Spawn("a", 0, 0, func(th *sim.Thread) {
		start := th.Clock()
		for i := 0; i < 50; i++ {
			m.Store(th, 0, uint64(i))
		}
		pingPong = th.Clock() - start
	})
	sch.Spawn("b", 1, 0, func(th *sim.Thread) {
		for i := 0; i < 50; i++ {
			m.Store(th, 0, uint64(i))
		}
	})
	sch.Spawn("c", 0, 0, func(th *sim.Thread) {
		start := th.Clock()
		for i := 0; i < 50; i++ {
			m.Store(th, 64, uint64(i))
		}
		private = th.Clock() - start
	})
	sch.Run()
	if pingPong <= private*2 {
		t.Errorf("contended line (%d) not much costlier than private (%d)", pingPong, private)
	}
}

func TestNVMAccessExtraCost(t *testing.T) {
	costs := sim.Costs{LocalAccess: 10, NVMStoreExtra: 40, NVMLoadExtra: 20}
	var storeCost, loadCost uint64
	runOne(t, Config{Costs: costs}, 0, func(th *sim.Thread, sys *System) {
		m := sys.NewMemory("m", NVM, 0, 64)
		before := th.Clock()
		m.Store(th, 0, 1)
		storeCost = th.Clock() - before
		before = th.Clock()
		m.Load(th, 0)
		loadCost = th.Clock() - before
	})
	if storeCost != 50 {
		t.Errorf("NVM store cost = %d, want 50", storeCost)
	}
	if loadCost != 30 {
		t.Errorf("NVM load cost = %d, want 30", loadCost)
	}
}

func TestFlushOnVolatilePanics(t *testing.T) {
	sch := sim.New(1)
	sys := NewSystem(sch, Config{})
	m := sys.NewMemory("v", Volatile, 0, 64)
	f := sys.NewFlusher()
	panicked := false
	sch.Spawn("t", 0, 0, func(th *sim.Thread) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		f.FlushLine(th, m, 0)
	})
	sch.Run()
	if !panicked {
		t.Error("expected panic flushing volatile memory")
	}
}

func TestDuplicateMemoryNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate name")
		}
	}()
	sys := NewSystem(sim.New(1), Config{})
	sys.NewMemory("x", Volatile, 0, 64)
	sys.NewMemory("x", Volatile, 0, 64)
}

func TestSizeRoundedToLine(t *testing.T) {
	sys := NewSystem(sim.New(1), Config{})
	m := sys.NewMemory("m", Volatile, 0, 13)
	if m.Words() != 16 {
		t.Errorf("Words = %d, want 16 (rounded to line)", m.Words())
	}
}

func TestStatsCounters(t *testing.T) {
	runOne(t, Config{}, 0, func(th *sim.Thread, sys *System) {
		m := sys.NewMemory("m", NVM, 0, 64)
		f := sys.NewFlusher()
		m.Store(th, 0, 1)
		m.Load(th, 0)
		m.CAS(th, 0, 1, 2)
		f.FlushLine(th, m, 0)
		f.Fence(th)
		m.Store(th, 0, 3) // re-dirty: a sync flush of a clean line is elided
		f.FlushLineSync(th, m, 0)
		st := m.Stats()
		if st.Stores != 2 || st.Loads != 1 || st.CASes != 1 {
			t.Errorf("stats = %+v", st)
		}
		if st.FlushAsync != 1 || st.FlushSync != 1 {
			t.Errorf("flush stats = %+v", st)
		}
		if sys.Fences() != 1 {
			t.Errorf("fences = %d, want 1", sys.Fences())
		}
	})
}

func TestConcurrentStoresFromManyThreads(t *testing.T) {
	sch := sim.New(5)
	sys := NewSystem(sch, Config{Costs: sim.UnitCosts()})
	m := sys.NewMemory("m", Volatile, Interleaved, 8*WordsPerLine)
	const n = 8
	for w := 0; w < n; w++ {
		w := uint64(w)
		sch.Spawn("w", int(w)%2, 0, func(th *sim.Thread) {
			for i := 0; i < 100; i++ {
				m.Store(th, w, m.Load(th, w)+1)
			}
		})
	}
	sch.Run()
	sch2 := sim.New(6)
	_ = sch2
	// verify final values directly (scheduler drained)
	for w := uint64(0); w < n; w++ {
		if got := m.data.load(w); got != 100 {
			t.Errorf("word %d = %d, want 100", w, got)
		}
	}
}

func TestCASContention(t *testing.T) {
	// Many threads CAS-increment one counter; the total must be exact.
	sch := sim.New(9)
	sys := NewSystem(sch, Config{Costs: sim.UnitCosts()})
	m := sys.NewMemory("m", Volatile, Interleaved, WordsPerLine)
	const n, per = 10, 50
	for w := 0; w < n; w++ {
		sch.Spawn("w", w%2, 0, func(th *sim.Thread) {
			for i := 0; i < per; i++ {
				for {
					old := m.Load(th, 0)
					if m.CAS(th, 0, old, old+1) {
						break
					}
				}
			}
		})
	}
	sch.Run()
	if got := m.data.load(0); got != n*per {
		t.Errorf("counter = %d, want %d", got, n*per)
	}
}
