package nvm

// Event tracing for the exhaustive explorer (internal/explore).
//
// Every memory-system operation announces itself through the system's access
// hook immediately before it charges its sim.Thread.Step — i.e. before the
// scheduler may hand the baton away. Under the simulator's execution model
// the operation's *effect* (the data movement) runs when the announcing
// thread next resumes, so at any scheduling decision point each thread's
// last announced access is exactly the operation it will perform when
// dispatched. That is the co-enabled-transition information DPOR needs, and
// the flush-class announcements delimit the crash-point equivalence classes
// (two crash points with the same set of executed persist effects
// materialize identically).

import (
	"hash/fnv"

	"prepuc/internal/sim"
)

// AccessKind classifies one announced memory-system operation.
type AccessKind uint8

const (
	// AccLoad / AccStore / AccCAS are word accesses on a single line.
	AccLoad AccessKind = iota
	AccStore
	AccCAS
	// AccFlush is an asynchronous Flusher.FlushLine (CLWB): no persist
	// effect of its own, but when Tracked it enrolls the line in the
	// flusher's pending set, changing what a crash can materialize.
	AccFlush
	// AccFlushSync is a synchronous Flusher.FlushLineSync (CLFLUSH): the
	// line is persisted by the effect.
	AccFlushSync
	// AccFence is a Flusher.Fence (SFENCE): the effect persists every
	// pending line of the announcing thread's flusher.
	AccFence
	// AccFlushRegion / AccFlushAllDirty are Memory-level bulk write-backs.
	AccFlushRegion
	AccFlushAllDirty
	// AccWBINVD is the whole-cache write-back.
	AccWBINVD
)

// String names the kind for traces and counterexample dumps.
func (k AccessKind) String() string {
	switch k {
	case AccLoad:
		return "load"
	case AccStore:
		return "store"
	case AccCAS:
		return "cas"
	case AccFlush:
		return "flush"
	case AccFlushSync:
		return "flush-sync"
	case AccFence:
		return "fence"
	case AccFlushRegion:
		return "flush-region"
	case AccFlushAllDirty:
		return "flush-all-dirty"
	case AccWBINVD:
		return "wbinvd"
	default:
		return "unknown"
	}
}

// NoLine is the Line value of whole-memory / whole-machine accesses (fences,
// bulk flushes, WBINVD).
const NoLine = ^uint64(0)

// Access is one announced memory-system operation.
type Access struct {
	// Thread is the announcing thread's scheduler id.
	Thread int
	// Kind classifies the operation.
	Kind AccessKind
	// Mem is the target memory's name ("" for machine-wide AccWBINVD).
	Mem string
	// Line is the target cache line index, or NoLine for bulk operations.
	Line uint64
	// NVM reports whether the target memory is non-volatile.
	NVM bool
	// Tracked is set on AccFlush announcements whose line will enter the
	// pending set (dirty and not already tracked this fence epoch): only
	// tracked flushes change crash materialization.
	Tracked bool
}

// PersistEffect reports whether the access's effect can change the
// machine's crash materialization: the persisted views or the pending
// flush sets. Loads, volatile stores, and untracked flushes cannot.
// NVM stores are persist-relevant only through background write-backs or
// stores to already-pending lines, both of which fire the persist-effect
// hook from inside the effect — so they are not persist effects here.
func (a Access) PersistEffect() bool {
	switch a.Kind {
	case AccFlush:
		return a.Tracked
	case AccFlushSync, AccFence, AccFlushRegion, AccFlushAllDirty, AccWBINVD:
		return true
	default:
		return false
	}
}

// SetAccessHook installs (or with nil removes) the announce-time access
// hook. The hook runs on the announcing thread's goroutine, before the
// operation's cost step — so before the baton can move — and must not
// access the machine. Tracing costs nothing when no hook is installed.
// Hooks are per-machine wiring, not machine state: Clone and Recover do not
// carry them over, each phase installs its own.
func (s *System) SetAccessHook(h func(Access)) { s.accHook = h }

// SetPersistEffectHook installs (or with nil removes) the store-effect
// persist hook: it fires inside a store/CAS *effect* (after the announce,
// before the thread's next announce) whenever that effect changes the
// machine's crash image — the store's 1-in-bgProb background write-back drew
// a persist, or the stored line sits in some flusher's pending set (the
// pending entry persists the line's content as of the crash, so the store
// altered what a crash materializes). Announce-time classification cannot see
// either condition, so the explorer derives its store-originated crash
// branch points from this hook instead of from Access.PersistEffect.
func (s *System) SetPersistEffectHook(h func(thread int)) { s.peHook = h }

func (s *System) announce(a Access) {
	if s.accHook != nil {
		s.accHook(a)
	}
}

func (m *Memory) announce(t *sim.Thread, kind AccessKind, line uint64, tracked bool) {
	if h := m.sys.accHook; h != nil {
		h(Access{
			Thread: t.ID(), Kind: kind, Mem: m.name, Line: line,
			NVM: m.kind == NVM, Tracked: tracked,
		})
	}
}

// PendingLines returns the total number of flushed-but-unfenced lines
// across every flusher: the size of the crash materialization choice a
// fault policy faces right now. Exhaustive explorers use it to size the
// persist-subset enumeration per crash branch.
func (s *System) PendingLines() int {
	n := 0
	for _, f := range s.flushers {
		n += len(f.pending)
	}
	return n
}

// PersistedFingerprint hashes every NVM memory's persisted view (with its
// name and size) into one 64-bit FNV-1a digest: two machines with equal
// fingerprints hold the same crash-surviving state. Memories are visited in
// creation order, which recovery reproduces, so fingerprints are comparable
// across a machine and its clones and recoveries. The walk is O(words) —
// meant for the explorer's small machines, not production-sized heaps.
func (s *System) PersistedFingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		buf[0] = byte(v >> 56)
		buf[1] = byte(v >> 48)
		buf[2] = byte(v >> 40)
		buf[3] = byte(v >> 32)
		buf[4] = byte(v >> 24)
		buf[5] = byte(v >> 16)
		buf[6] = byte(v >> 8)
		buf[7] = byte(v)
		h.Write(buf[:])
	}
	for _, m := range s.order {
		if m.kind != NVM {
			continue
		}
		h.Write([]byte(m.name))
		h.Write([]byte{0})
		word(m.words)
		for base := uint64(0); base < m.words; base += WordsPerLine {
			for _, v := range m.persisted.line(base, WordsPerLine) {
				word(v)
			}
		}
	}
	return h.Sum64()
}
