// Package onll implements ONLL ("Order Now, Linearize Later", Cohen,
// Guerraoui and Zablotchi, SPAA '18), the other persistent universal
// construction discussed in the paper's related work (§2.3). It is included
// as an extension baseline: a log-only durable PUC with per-operation
// persistence, contrasting with PREP-UC's checkpoint-based design — most
// visibly in the recovery-time experiment, since ONLL must replay its whole
// history while PREP-UC replays at most one ε window.
//
// Faithful properties:
//
//   - updates are linearized through a global order before being written,
//     together with every not-yet-guaranteed-persistent predecessor (at most
//     n of them, one in-flight per thread), into the invoking thread's
//     per-thread persistent log: one variable-length entry, flushed, and one
//     fence per update — then the operation completes (durable
//     linearizability);
//   - read-only operations perform no flushes and no fences;
//   - recovery takes the union of all per-thread log entries, orders by
//     linearization index, and replays the longest gap-free prefix; every
//     completed operation is below any gap by construction.
//
// Simplifications (documented in DESIGN.md): the lock-free global queue is a
// ticket taken under the object's writer lock (the flush/fence profile —
// the property under evaluation — is unchanged), and per-thread logs are
// sized for the run instead of being truncated by checkpoints.
package onll

import (
	"fmt"
	"sort"

	"prepuc/internal/locks"
	"prepuc/internal/metrics"
	"prepuc/internal/nvm"
	"prepuc/internal/pmem"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// Config parameterizes an ONLL instance.
type Config struct {
	Workers int
	Factory uc.Factory
	// HeapWords sizes the single volatile object's heap.
	HeapWords uint64
	// LogEntries is each thread's persistent log capacity in entries.
	LogEntries uint64
	// Generation disambiguates memory names across crashes.
	Generation int
}

// Control memory layout: the distributed reader–writer lock region starts
// at word 0 (one line per reader slot, so ONLL's flush-free reads also stay
// coherence-quiet), followed by the linearization counter and the per-thread
// in-flight operation slots.
const (
	ctrlLock  = 0 // distributed reader–writer lock region
	slotWords = nvm.WordsPerLine
	slotIndex = 0 // 0 = no pending op
	slotCode  = 1
	slotA0    = 2
	slotA1    = 3
)

// Log entry layout: [0] checksum, [1] count, then count × (index, code,
// a0, a1). Entries are line-aligned; size accommodates n ops.
const (
	entChecksum = 0
	entCount    = 1
	entOps      = 2
	opRecWords  = 4
)

// commitMemName is ONLL's generation-commit record (uc.CommitCell). Recovery
// replays the committed generation's logs into a fresh generation's logs
// (one re-logged entry per replayed op); a nested crash mid-replay leaves
// the new generation's logs holding only a prefix, so the record flips to
// the new generation only after replay completes — keeping the full source
// logs authoritative for the next recovery attempt.
const commitMemName = "onll.commit"

// ONLL is one instance of the construction.
type ONLL struct {
	cfg       Config
	sys       *nvm.System
	heap      *nvm.Memory
	alloc     *pmem.Allocator
	ds        uc.DataStructure
	ctrl      *nvm.Memory
	lock      locks.DistRWLock
	ticketOff uint64
	slotsOff  uint64
	logs      []*nvm.Memory
	flushers  []*nvm.Flusher
	logPos    []uint64 // next entry slot per thread (volatile bookkeeping)
	entrySize uint64
	commit    uc.CommitCell
}

var (
	_ uc.UC           = (*ONLL)(nil)
	_ uc.Instrumented = (*ONLL)(nil)
)

// Stats snapshots the machine-wide metrics registry (uc.Instrumented).
func (o *ONLL) Stats() metrics.Snapshot { return o.sys.Metrics().Snapshot() }

func (c Config) memName(s string) string { return fmt.Sprintf("onll.g%d.%s", c.Generation, s) }

// entryWords returns the line-rounded entry footprint for n ops.
func entryWords(n int) uint64 {
	w := uint64(entOps + n*opRecWords)
	if rem := w % nvm.WordsPerLine; rem != 0 {
		w += nvm.WordsPerLine - rem
	}
	return w
}

// Config returns the instance's (normalized) configuration; recovery
// harnesses feed it back to Recover after a crash.
func (o *ONLL) Config() Config { return o.cfg }

// New builds an ONLL instance inside sys and commits its generation, so a
// crash right after boot recovers the empty object.
func New(t *sim.Thread, sys *nvm.System, cfg Config) (*ONLL, error) {
	o, err := newEngine(t, sys, cfg)
	if err != nil {
		return nil, err
	}
	o.commit.Commit(t, o.cfg.Generation)
	return o, nil
}

// newEngine builds the instance without committing its generation (see
// commitMemName; Recover commits only after replay completes).
func newEngine(t *sim.Thread, sys *nvm.System, cfg Config) (*ONLL, error) {
	if cfg.Workers <= 0 || cfg.Factory == nil || cfg.HeapWords == 0 {
		return nil, fmt.Errorf("onll: incomplete config")
	}
	if cfg.LogEntries == 0 {
		cfg.LogEntries = 1 << 16
	}
	o := &ONLL{cfg: cfg, sys: sys, entrySize: entryWords(cfg.Workers)}
	o.heap = sys.NewMemory(cfg.memName("heap"), nvm.Volatile, nvm.Interleaved, cfg.HeapWords)
	o.alloc = pmem.New(t, o.heap)
	o.ds = cfg.Factory(t, o.alloc)
	o.ticketOff = ctrlLock + locks.DistRWLockWords(cfg.Workers)
	o.slotsOff = o.ticketOff + nvm.WordsPerLine
	o.ctrl = sys.NewMemory(cfg.memName("ctrl"), nvm.Volatile, nvm.Interleaved,
		o.slotsOff+uint64(cfg.Workers)*slotWords)
	o.lock = locks.NewDistRWLock(o.ctrl, ctrlLock, cfg.Workers)
	o.commit = uc.EnsureCommitCell(sys, commitMemName, nvm.Interleaved)
	o.logPos = make([]uint64, cfg.Workers)
	for tid := 0; tid < cfg.Workers; tid++ {
		o.logs = append(o.logs, sys.NewMemory(cfg.memName(fmt.Sprintf("log%d", tid)),
			nvm.NVM, nvm.Interleaved, cfg.LogEntries*o.entrySize))
		o.flushers = append(o.flushers, sys.NewFlusher())
	}
	return o, nil
}

// opRec is one (index, operation) record.
type opRec struct {
	index, code, a0, a1 uint64
}

func checksum(recs []opRec) uint64 {
	h := uint64(0x9E3779B97F4A7C15) ^ uint64(len(recs))
	for _, r := range recs {
		for _, w := range [4]uint64{r.index, r.code, r.a0, r.a1} {
			h ^= w
			h *= 0x100000001B3
		}
	}
	h |= 1 // never zero, so a zeroed entry can't validate
	return h
}

// Execute implements the universal construction interface.
func (o *ONLL) Execute(t *sim.Thread, tid int, op uc.Op) uint64 {
	t.Step(o.sys.Costs().OpBase)
	if o.ds.IsReadOnly(op.Code) {
		// ONLL's hallmark: reads neither flush nor fence.
		o.lock.ReadLock(t, tid)
		res := o.ds.Execute(t, op.Code, op.A0, op.A1)
		o.lock.ReadUnlock(t, tid)
		return res
	}
	return o.update(t, tid, op)
}

func (o *ONLL) update(t *sim.Thread, tid int, op uc.Op) uint64 {
	// Order now: take the next linearization index and apply, publishing
	// the op as in-flight (not yet guaranteed persistent).
	o.lock.WriteLock(t)
	idx := o.ctrl.Load(t, o.ticketOff) + 1
	o.ctrl.Store(t, o.ticketOff, idx)
	so := o.slotsOff + uint64(tid)*slotWords
	o.ctrl.Store(t, so+slotCode, op.Code)
	o.ctrl.Store(t, so+slotA0, op.A0)
	o.ctrl.Store(t, so+slotA1, op.A1)
	o.ctrl.Store(t, so+slotIndex, idx)
	res := o.ds.Execute(t, op.Code, op.A0, op.A1)
	// Snapshot every in-flight predecessor (≤ one per thread) plus our op.
	recs := make([]opRec, 0, o.cfg.Workers)
	for w := 0; w < o.cfg.Workers; w++ {
		wo := o.slotsOff + uint64(w)*slotWords
		if i := o.ctrl.Load(t, wo+slotIndex); i != 0 && i <= idx {
			recs = append(recs, opRec{
				index: i,
				code:  o.ctrl.Load(t, wo+slotCode),
				a0:    o.ctrl.Load(t, wo+slotA0),
				a1:    o.ctrl.Load(t, wo+slotA1),
			})
		}
	}
	o.lock.WriteUnlock(t)

	// Linearize later: persist the entry, then complete.
	o.appendEntry(t, tid, recs)
	o.ctrl.Store(t, so+slotIndex, 0)
	return res
}

// appendEntry writes one log entry (ops + checksum), flushes its lines and
// fences — the one fence ONLL pays per update.
func (o *ONLL) appendEntry(t *sim.Thread, tid int, recs []opRec) {
	pos := o.logPos[tid]
	if pos >= o.cfg.LogEntries {
		panic(fmt.Sprintf("onll: thread %d exhausted its %d-entry log; size the run accordingly",
			tid, o.cfg.LogEntries))
	}
	o.logPos[tid] = pos + 1
	log := o.logs[tid]
	base := pos * o.entrySize
	for i, r := range recs {
		off := base + entOps + uint64(i)*opRecWords
		log.Store(t, off+0, r.index)
		log.Store(t, off+1, r.code)
		log.Store(t, off+2, r.a0)
		log.Store(t, off+3, r.a1)
	}
	log.Store(t, base+entCount, uint64(len(recs)))
	log.Store(t, base+entChecksum, checksum(recs))
	f := o.flushers[tid]
	used := entryWords(len(recs))
	for line := uint64(0); line < used; line += nvm.WordsPerLine {
		f.FlushLine(t, log, base+line)
	}
	f.Fence(t)
}

// Prefill applies ops directly to the volatile object without logging,
// modelling history that a production ONLL would already have truncated
// into a checkpoint. (The real system bounds its logs with periodic
// checkpoints; this reproduction sizes logs for the measured run instead —
// so prefilled state is not crash-recoverable, which no experiment relies
// on.)
func (o *ONLL) Prefill(t *sim.Thread, ops []uc.Op) {
	for _, op := range ops {
		o.ds.Execute(t, op.Code, op.A0, op.A1)
	}
}

// Recover rebuilds an ONLL instance after a crash: the union of the
// committed generation's valid persisted log entries, replayed in
// linearization order up to the first gap. Returns the instance and the
// number of replayed operations. oldCfg may carry any generation of the
// crashed lineage; the persisted commit record selects the source logs, and
// the record flips to the rebuilt generation only after replay completes —
// so Recover killed at any event re-runs from the same source.
func Recover(t *sim.Thread, recSys *nvm.System, oldCfg Config) (*ONLL, uint64, error) {
	srcCfg := oldCfg
	srcCfg.Generation = uc.CommittedGeneration(recSys, commitMemName, oldCfg.Generation)
	entrySize := entryWords(srcCfg.Workers)
	byIndex := map[uint64]opRec{}
	for tid := 0; tid < srcCfg.Workers; tid++ {
		log := recSys.Memory(srcCfg.memName(fmt.Sprintf("log%d", tid)))
		for base := uint64(0); base+entrySize <= log.Words(); base += entrySize {
			count := log.Load(t, base+entCount)
			if count == 0 || count > uint64(oldCfg.Workers) {
				break // end of this thread's log (or torn final entry)
			}
			recs := make([]opRec, count)
			for i := uint64(0); i < count; i++ {
				off := base + entOps + i*opRecWords
				recs[i] = opRec{
					index: log.Load(t, off+0),
					code:  log.Load(t, off+1),
					a0:    log.Load(t, off+2),
					a1:    log.Load(t, off+3),
				}
			}
			if log.Load(t, base+entChecksum) != checksum(recs) {
				break // torn final entry: its op never completed
			}
			for _, r := range recs {
				byIndex[r.index] = r
			}
		}
	}
	indexes := make([]uint64, 0, len(byIndex))
	for i := range byIndex {
		indexes = append(indexes, i)
	}
	sort.Slice(indexes, func(a, b int) bool { return indexes[a] < indexes[b] })

	// Skip generations a crashed earlier recovery attempt left behind (their
	// logs hold only a replay prefix).
	met := recSys.Metrics()
	ncfg := srcCfg
	ncfg.Generation++
	for recSys.HasMemory(ncfg.memName("log0")) {
		ncfg.Generation++
		met.RecoveryRestarts++
	}
	o, err := newEngine(t, recSys, ncfg)
	if err != nil {
		return nil, 0, err
	}
	var replayed uint64
	next := uint64(1)
	for _, i := range indexes {
		if i != next {
			break // gap: everything beyond was in flight, never completed
		}
		r := byIndex[i]
		o.update(t, 0, uc.Op{Code: r.code, A0: r.a0, A1: r.a1})
		replayed++
		next++
	}
	o.commit.Commit(t, ncfg.Generation)
	return o, replayed, nil
}

// DumpState returns the object's state as the flat (code, a0, a1) triples
// its Dump emits. Tests compare dumps across recovery attempts for
// idempotence.
func (o *ONLL) DumpState(t *sim.Thread) []uint64 {
	var out []uint64
	o.ds.Dump(t, func(code, a0, a1 uint64) {
		out = append(out, code, a0, a1)
	})
	return out
}
