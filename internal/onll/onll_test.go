package onll

import (
	"testing"

	"prepuc/internal/history"
	"prepuc/internal/nvm"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

func testCfg(workers int) Config {
	return Config{
		Workers:    workers,
		Factory:    seq.HashMapFactory(128),
		HeapWords:  1 << 20,
		LogEntries: 1 << 12,
	}
}

type world struct {
	sys *nvm.System
	o   *ONLL
}

func build(t *testing.T, cfg Config, nvmCfg nvm.Config, seed int64) *world {
	t.Helper()
	sch := sim.New(seed)
	sys := nvm.NewSystem(sch, nvmCfg)
	w := &world{sys: sys}
	var err error
	sch.Spawn("boot", 0, 0, func(th *sim.Thread) { w.o, err = New(th, sys, cfg) })
	sch.Run()
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func (w *world) run(workers int, crashAt uint64, seed int64, fn func(*sim.Thread, int)) *sim.Scheduler {
	sch := sim.New(seed)
	if crashAt != 0 {
		sch.CrashAtEvent(crashAt)
	}
	w.sys.SetScheduler(sch)
	for tid := 0; tid < workers; tid++ {
		tid := tid
		sch.Spawn("w", tid%2, 0, func(th *sim.Thread) {
			defer func() {
				if r := recover(); r != nil && !sim.Crashed(r) {
					panic(r)
				}
			}()
			fn(th, tid)
		})
	}
	sch.Run()
	return sch
}

func TestSequentialSemantics(t *testing.T) {
	w := build(t, testCfg(1), nvm.Config{}, 1)
	w.run(1, 0, 100, func(th *sim.Thread, tid int) {
		for k := uint64(0); k < 40; k++ {
			if got := w.o.Execute(th, tid, uc.Insert(k, k * 2)); got != 1 {
				t.Errorf("insert = %d", got)
			}
		}
		for k := uint64(0); k < 40; k++ {
			if got := w.o.Execute(th, tid, uc.Get(k)); got != k*2 {
				t.Errorf("get(%d) = %d", k, got)
			}
		}
		if got := w.o.Execute(th, tid, uc.Delete(3)); got != 1 {
			t.Errorf("delete = %d", got)
		}
	})
}

func TestReadsDoNotFlushOrFence(t *testing.T) {
	w := build(t, testCfg(2), nvm.Config{Costs: sim.UnitCosts()}, 2)
	w.run(1, 0, 200, func(th *sim.Thread, tid int) {
		for k := uint64(0); k < 20; k++ {
			w.o.Execute(th, tid, uc.Insert(k, k))
		}
	})
	before := w.sys.Fences()
	w.run(1, 0, 201, func(th *sim.Thread, tid int) {
		for k := uint64(0); k < 100; k++ {
			w.o.Execute(th, tid, uc.Get(k % 20))
		}
	})
	if got := w.sys.Fences(); got != before {
		t.Errorf("reads executed %d fences; ONLL reads must not fence", got-before)
	}
}

func TestOneFencePerUpdate(t *testing.T) {
	w := build(t, testCfg(1), nvm.Config{Costs: sim.UnitCosts()}, 3)
	before := w.sys.Fences()
	const updates = 30
	w.run(1, 0, 300, func(th *sim.Thread, tid int) {
		for k := uint64(0); k < updates; k++ {
			w.o.Execute(th, tid, uc.Insert(k, k))
		}
	})
	if got := w.sys.Fences() - before; got != updates {
		t.Errorf("%d fences for %d updates, want one each", got, updates)
	}
}

func TestConcurrentDistinctKeys(t *testing.T) {
	const workers, per = 6, 40
	w := build(t, testCfg(workers), nvm.Config{Costs: sim.UnitCosts()}, 4)
	w.run(workers, 0, 400, func(th *sim.Thread, tid int) {
		for i := uint64(0); i < per; i++ {
			k := uint64(tid)*1000 + i
			if got := w.o.Execute(th, tid, uc.Insert(k, k)); got != 1 {
				t.Errorf("insert = %d", got)
			}
		}
	})
	w.run(1, 0, 401, func(th *sim.Thread, tid int) {
		for tid2 := 0; tid2 < workers; tid2++ {
			for i := uint64(0); i < per; i++ {
				k := uint64(tid2)*1000 + i
				if got := w.o.Execute(th, 0, uc.Get(k)); got != k {
					t.Errorf("get(%d) = %d", k, got)
				}
			}
		}
	})
}

func TestCrashLosesNoCompletedOp(t *testing.T) {
	const workers = 6
	for _, crashAt := range []uint64{30_000, 90_000, 250_000} {
		cfg := testCfg(workers)
		w := build(t, cfg, nvm.Config{Costs: sim.UnitCosts(), BGFlushOneIn: 128, Seed: crashAt}, int64(crashAt))
		completed := make([]uint64, workers)
		sch := w.run(workers, crashAt, int64(crashAt)+1, func(th *sim.Thread, tid int) {
			for i := uint64(0); ; i++ {
				w.o.Execute(th, tid, uc.Insert(history.Key(tid, i), i))
				completed[tid] = i + 1
			}
		})
		if !sch.Frozen() {
			t.Fatal("did not crash")
		}
		recSch := sim.New(int64(crashAt) + 2)
		recSys := w.sys.Recover(recSch)
		var rec *ONLL
		var err error
		recSch.Spawn("rec", 0, 0, func(th *sim.Thread) {
			rec, _, err = Recover(th, recSys, cfg)
		})
		recSch.Run()
		if err != nil {
			t.Fatal(err)
		}
		keys := make([][]bool, workers)
		chk := sim.New(int64(crashAt) + 3)
		recSys.SetScheduler(chk)
		chk.Spawn("probe", 0, 0, func(th *sim.Thread) {
			for tid := 0; tid < workers; tid++ {
				n := completed[tid] + 16
				keys[tid] = make([]bool, n)
				for i := uint64(0); i < n; i++ {
					keys[tid][i] = rec.Execute(th, 0, uc.Get(history.Key(tid, i))) != uc.NotFound
				}
			}
		})
		chk.Run()
		rep := history.Check(keys, completed)
		if !rep.DurableOK() {
			t.Errorf("crashAt=%d: %s", crashAt, rep)
		}
	}
}

func TestRecoveredInstanceUsableAndRecrashable(t *testing.T) {
	cfg := testCfg(4)
	w := build(t, cfg, nvm.Config{Costs: sim.UnitCosts()}, 9)
	w.run(4, 0, 900, func(th *sim.Thread, tid int) {
		for i := uint64(0); i < 25; i++ {
			w.o.Execute(th, tid, uc.Insert(history.Key(tid, i), i))
		}
	})
	recSch := sim.New(901)
	recSys := w.sys.Recover(recSch)
	var rec *ONLL
	var replayed uint64
	var err error
	recSch.Spawn("rec", 0, 0, func(th *sim.Thread) {
		rec, replayed, err = Recover(th, recSys, cfg)
	})
	recSch.Run()
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 100 {
		t.Errorf("replayed %d ops, want 100", replayed)
	}
	// Use it, crash again, recover again.
	sch := sim.New(902)
	recSys.SetScheduler(sch)
	sch.Spawn("w", 0, 0, func(th *sim.Thread) {
		for i := uint64(0); i < 10; i++ {
			rec.Execute(th, 0, uc.Insert(1<<40 | i, i))
		}
	})
	sch.Run()
	rec2Sch := sim.New(903)
	recSys2 := recSys.Recover(rec2Sch)
	var rec2 *ONLL
	cfg2 := rec.cfg
	rec2Sch.Spawn("rec2", 0, 0, func(th *sim.Thread) {
		rec2, _, err = Recover(th, recSys2, cfg2)
	})
	rec2Sch.Run()
	if err != nil {
		t.Fatal(err)
	}
	chk := sim.New(904)
	recSys2.SetScheduler(chk)
	chk.Spawn("chk", 0, 0, func(th *sim.Thread) {
		for i := uint64(0); i < 10; i++ {
			if got := rec2.Execute(th, 0, uc.Get(1<<40 | i)); got != i {
				t.Errorf("second recovery lost op %d", i)
			}
		}
	})
	chk.Run()
}

func TestChecksumDetectsTornEntry(t *testing.T) {
	recs := []opRec{{index: 1, code: 2, a0: 3, a1: 4}}
	c := checksum(recs)
	recs[0].a0 = 99
	if checksum(recs) == c {
		t.Error("checksum insensitive to op mutation")
	}
	if checksum(nil) == 0 {
		t.Error("empty checksum must not be zero (zeroed NVM must not validate)")
	}
}

func TestEntryWordsLineAligned(t *testing.T) {
	for n := 1; n <= 16; n++ {
		if w := entryWords(n); w%nvm.WordsPerLine != 0 {
			t.Errorf("entryWords(%d) = %d not line aligned", n, w)
		}
	}
}
