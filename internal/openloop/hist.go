package openloop

import "math/bits"

// Histogram is a fixed-size log-linear latency histogram (HdrHistogram
// style): values below 64 get exact unit buckets; above, each power-of-two
// octave splits into 64 sub-buckets, bounding the relative quantile error at
// 1/64 ≈ 1.6% across the full uint64 range. Recording is O(1) with no
// allocation, so the harness can record millions of virtual-time latencies
// host-side without perturbing the simulation.
type Histogram struct {
	buckets [histBuckets]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// 64 unit buckets + 57 octaves ([2^6,2^7) .. [2^62,2^63]) × 64 sub-buckets.
// bucketOf(1<<63 - 1) = 57*64 + 127 = 3775, so 3776 covers every uint64 the
// simulator can produce as a latency.
const histBuckets = 3776

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	if v < 64 {
		return int(v)
	}
	e := bits.Len64(v) - 7
	return e*64 + int(v>>uint(e))
}

// bucketUpper is the largest value mapping to bucket b.
func bucketUpper(b int) uint64 {
	if b < 64 {
		return uint64(b)
	}
	e := uint(b/64 - 1)
	m := uint64(b%64 + 64)
	return ((m + 1) << e) - 1
}

// Record adds one sample.
func (h *Histogram) Record(v uint64) {
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Merge folds other into h (per-shard histograms merging into a machine
// total).
func (h *Histogram) Merge(other *Histogram) {
	for i, n := range other.buckets {
		h.buckets[i] += n
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Count, Max and Mean report the exact tallies.
func (h *Histogram) Count() uint64 { return h.count }
func (h *Histogram) Max() uint64   { return h.max }
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the upper bound of the bucket holding the q-quantile
// sample — the smallest bucket boundary v such that at least ⌈q·count⌉
// samples are ≤ v — clamped to the recorded maximum so no reported
// percentile exceeds Max. Exact for values below 64; within 1/64 relative
// error above. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++ // ceil
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	cum := uint64(0)
	for b, n := range h.buckets {
		cum += n
		if cum >= rank {
			if v := bucketUpper(b); v < h.max {
				return v
			}
			return h.max
		}
	}
	return h.max
}
