// Package openloop generates open-loop (arrival-driven) workloads for the
// service harness: a large simulated client population emits operations on a
// Poisson arrival process with optional bursts, Zipfian key skew and
// per-client think times, independent of how fast the system under test
// retires them. Latency measured from these arrival stamps is free of
// coordinated omission: a stalled server keeps accumulating arrivals, and
// every queued operation's wait counts against the percentiles.
//
// Generation is deterministic: the schedule is a pure function of the
// config (same seed ⇒ identical arrival stream), so two runs — or a run and
// its crash-recovery replay — agree on every arrival instant.
package openloop

import (
	"fmt"
	"math/rand"

	"prepuc/internal/uc"
)

// Config parameterizes one arrival schedule.
type Config struct {
	// Clients is the simulated client population (10^5–10^6 is the intended
	// range; each arrival is attributed to one client).
	Clients int
	// Keys is the key-space size for set operations.
	Keys uint64
	// KeySkew > 1 draws keys from a Zipf distribution with that exponent;
	// 0 (or anything ≤ 1) draws uniformly.
	KeySkew float64
	// ReadPct is the percentage of read-only (Get) operations.
	ReadPct int
	// Rate is the aggregate arrival rate in operations per virtual second.
	Rate float64
	// DurationNS is the schedule horizon in virtual nanoseconds.
	DurationNS uint64
	// ThinkNS is the per-client think time: a client that issued an
	// operation at t is not eligible again before t+ThinkNS.
	ThinkNS uint64
	// BurstEveryNS/BurstLenNS/BurstFactor overlay periodic bursts: within
	// the first BurstLenNS of every BurstEveryNS window the arrival rate is
	// multiplied by BurstFactor. Zero BurstEveryNS disables bursts.
	BurstEveryNS uint64
	BurstLenNS   uint64
	BurstFactor  float64
	// Seed fixes the schedule.
	Seed int64
}

// Arrival is one scheduled operation.
type Arrival struct {
	// At is the arrival instant in virtual nanoseconds.
	At uint64
	// Client is the issuing client's id in [0, Clients).
	Client uint32
	// Op is the operation.
	Op uc.Op
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Clients <= 0 {
		return fmt.Errorf("openloop: Clients must be positive, got %d", c.Clients)
	}
	if c.Keys == 0 {
		return fmt.Errorf("openloop: Keys must be positive")
	}
	if c.Rate <= 0 {
		return fmt.Errorf("openloop: Rate must be positive, got %g", c.Rate)
	}
	if c.DurationNS == 0 {
		return fmt.Errorf("openloop: DurationNS must be positive")
	}
	if c.BurstEveryNS > 0 && (c.BurstLenNS == 0 || c.BurstLenNS > c.BurstEveryNS || c.BurstFactor <= 0) {
		return fmt.Errorf("openloop: burst window %d/%d factor %g invalid",
			c.BurstLenNS, c.BurstEveryNS, c.BurstFactor)
	}
	return nil
}

// thinkProbe bounds the linear probe for a think-time-eligible client; past
// it the originally drawn client is used regardless (the population is large
// enough that saturation means the offered load exceeds Clients/ThinkNS, a
// misconfiguration the schedule should surface as queueing, not mask).
const thinkProbe = 64

// Generate materializes the full arrival schedule, sorted by arrival time.
func Generate(cfg Config) ([]Arrival, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var zipf *rand.Zipf
	if cfg.KeySkew > 1 {
		zipf = rand.NewZipf(rng, cfg.KeySkew, 1, cfg.Keys-1)
	}
	key := func() uint64 {
		if zipf != nil {
			return zipf.Uint64()
		}
		return uint64(rng.Int63n(int64(cfg.Keys)))
	}
	nextFree := make([]uint64, cfg.Clients)

	var out []Arrival
	now := float64(0)
	for {
		rate := cfg.Rate
		if cfg.BurstEveryNS > 0 && uint64(now)%cfg.BurstEveryNS < cfg.BurstLenNS {
			rate *= cfg.BurstFactor
		}
		dt := rng.ExpFloat64() / rate * 1e9
		if dt < 1 {
			dt = 1
		}
		now += dt
		at := uint64(now)
		if at >= cfg.DurationNS {
			break
		}

		// Attribute the arrival to a thinking-done client: draw one, probe
		// forward past clients still in their think window.
		c := rng.Intn(cfg.Clients)
		for probe := 0; probe < thinkProbe && nextFree[c] > at; probe++ {
			c = (c + 1) % cfg.Clients
		}
		nextFree[c] = at + cfg.ThinkNS

		var op uc.Op
		k := key()
		switch {
		case rng.Intn(100) < cfg.ReadPct:
			op = uc.Get(k)
		case rng.Intn(2) == 0:
			op = uc.Insert(k, rng.Uint64())
		default:
			op = uc.Delete(k)
		}
		out = append(out, Arrival{At: at, Client: uint32(c), Op: op})
	}
	return out, nil
}
