package openloop

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"prepuc/internal/uc"
)

func testConfig() Config {
	return Config{
		Clients:      100_000,
		Keys:         1 << 16,
		KeySkew:      1.2,
		ReadPct:      80,
		Rate:         5e6,
		DurationNS:   2_000_000,
		ThinkNS:      50_000,
		BurstEveryNS: 500_000,
		BurstLenNS:   100_000,
		BurstFactor:  4,
		Seed:         42,
	}
}

// TestGenerateDeterministic: the schedule is a pure function of the config.
func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different schedules")
	}
	cfg := testConfig()
	cfg.Seed++
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestGenerateShape: arrivals are sorted, in-horizon, respect think times,
// honour the read mix roughly, and bursts lift the in-window rate.
func TestGenerateShape(t *testing.T) {
	cfg := testConfig()
	arr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nextFree := make(map[uint32]uint64)
	reads := 0
	var inBurst, outBurst int
	for i, a := range arr {
		if i > 0 && a.At < arr[i-1].At {
			t.Fatalf("arrival %d out of order", i)
		}
		if a.At >= cfg.DurationNS {
			t.Fatalf("arrival %d beyond horizon", i)
		}
		if free, ok := nextFree[a.Client]; ok && a.At < free {
			t.Fatalf("arrival %d violates client %d's think time", i, a.Client)
		}
		nextFree[a.Client] = a.At + cfg.ThinkNS
		if a.Op.Code == uc.OpGet {
			reads++
		}
		if a.At%cfg.BurstEveryNS < cfg.BurstLenNS {
			inBurst++
		} else {
			outBurst++
		}
	}
	frac := float64(reads) / float64(len(arr))
	if frac < 0.75 || frac > 0.85 {
		t.Fatalf("read fraction %f far from configured 0.80", frac)
	}
	// Burst windows are 1/5 of the time at 4x rate: expect roughly half the
	// arrivals inside them (4 / (4+4) of the mass).
	burstFrac := float64(inBurst) / float64(len(arr))
	if burstFrac < 0.35 || burstFrac > 0.65 {
		t.Fatalf("burst-window arrival fraction %f; bursts not visible", burstFrac)
	}
}

// TestGenerateZipfSkew: with skew on, the hottest key should dominate far
// beyond its uniform share.
func TestGenerateZipfSkew(t *testing.T) {
	cfg := testConfig()
	cfg.KeySkew = 1.5
	arr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]int{}
	for _, a := range arr {
		counts[a.Op.A0]++
	}
	top := 0
	for _, n := range counts {
		if n > top {
			top = n
		}
	}
	uniformShare := float64(len(arr)) / float64(cfg.Keys)
	if float64(top) < 20*uniformShare {
		t.Fatalf("hottest key %d arrivals, expected ≫ uniform share %f", top, uniformShare)
	}
}

// TestHistogramExactQuantiles compares every quantile against a sorted
// reference using the histogram's own rank rule: Quantile(q) must equal the
// upper bound of the bucket containing the ⌈q·n⌉-th smallest sample.
func TestHistogramExactQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	var ref []uint64
	for i := 0; i < 50_000; i++ {
		// Mix of magnitudes: exact-range values, mid-range, heavy tail.
		var v uint64
		switch rng.Intn(3) {
		case 0:
			v = uint64(rng.Intn(64))
		case 1:
			v = uint64(rng.Intn(100_000))
		default:
			v = uint64(rng.Int63n(1 << 40))
		}
		h.Record(v)
		ref = append(ref, v)
	}
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	for _, q := range []float64{0, 0.001, 0.25, 0.5, 0.9, 0.99, 0.999, 0.9999, 1} {
		rank := uint64(q * float64(len(ref)))
		if float64(rank) < q*float64(len(ref)) {
			rank++
		}
		if rank < 1 {
			rank = 1
		}
		want := bucketUpper(bucketOf(ref[rank-1]))
		if m := ref[len(ref)-1]; want > m {
			want = m // Quantile clamps to the recorded max
		}
		if got := h.Quantile(q); got != want {
			t.Fatalf("Quantile(%g) = %d, sorted reference bucket upper = %d", q, got, want)
		}
		// Error bound: the reported value is within 1/64 above the true one.
		exact := ref[rank-1]
		if got := h.Quantile(q); got < exact || float64(got-exact) > float64(exact)/64+1 {
			t.Fatalf("Quantile(%g) = %d outside error bound of exact %d", q, got, exact)
		}
	}
	if h.Max() != ref[len(ref)-1] {
		t.Fatalf("Max %d != %d", h.Max(), ref[len(ref)-1])
	}
	if h.Count() != uint64(len(ref)) {
		t.Fatalf("Count %d != %d", h.Count(), len(ref))
	}
}

// TestHistogramSmallValuesExact: values under 64 land in unit buckets.
func TestHistogramSmallValuesExact(t *testing.T) {
	var h Histogram
	for v := uint64(0); v < 64; v++ {
		h.Record(v)
	}
	for i := 1; i <= 64; i++ {
		q := float64(i) / 64
		if got := h.Quantile(q); got != uint64(i-1) {
			t.Fatalf("Quantile(%g) = %d, want %d", q, got, i-1)
		}
	}
}

// TestHistogramMerge: merging shards equals recording everything into one.
func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a, b, all Histogram
	for i := 0; i < 10_000; i++ {
		v := uint64(rng.Int63n(1 << 30))
		all.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a != all {
		t.Fatal("merged histogram differs from directly recorded one")
	}
}
