// Package oplog implements the shared operation log of node replication
// (§3, Table 1): a circular buffer of update operations with three
// monotonically increasing indexes —
//
//	logTail        next free entry (reserved by CAS)
//	completedTail  last entry applied to some replica
//	logMin         entry before which all entries have been applied to every
//	               replica and may be reused
//
// Each entry carries an emptyBit whose meaning alternates every time the log
// wraps: on even passes 1 means full, on odd passes 0 means full. A reader
// expecting absolute index i therefore knows whether the entry content
// belongs to i or to a previous pass, so entries are reused without
// ambiguity and a thread never executes an operation with stale or
// incomplete arguments.
//
// The log can live in volatile memory (NR-UC, PREP-Buffered) or NVM
// (PREP-Durable); the flushing protocol belongs to the universal
// construction, which reaches the underlying words via the offset helpers.
package oplog

import (
	"prepuc/internal/metrics"
	"prepuc/internal/nvm"
	"prepuc/internal/sim"
)

// Control-word offsets. Each control word sits on its own cache line.
const (
	offCompletedTail = 0
	offLogTail       = 8
	offLogMin        = 16
	entryBase        = 64
)

// EntryWords is the size of one log entry: one cache line.
const EntryWords = nvm.WordsPerLine

// Entry field offsets within an entry.
const (
	entEmpty = 0
	entCode  = 1
	entA0    = 2
	entA1    = 3
)

// WordsFor returns the memory size needed for a log with the given number
// of entries.
func WordsFor(entries uint64) uint64 { return entryBase + entries*EntryWords }

// Log is a view over a memory region laid out as above.
type Log struct {
	mem  *nvm.Memory
	size uint64 // entries
	met  *metrics.Registry
}

// New formats a log with size entries in mem. The region must be at least
// WordsFor(size) words and zeroed (fresh memories are).
func New(t *sim.Thread, mem *nvm.Memory, size uint64) *Log {
	if mem.Words() < WordsFor(size) {
		panic("oplog: memory too small for log")
	}
	l := &Log{mem: mem, size: size, met: mem.Metrics()}
	mem.Store(t, offCompletedTail, 0)
	mem.Store(t, offLogTail, 0)
	mem.Store(t, offLogMin, size-1)
	return l
}

// Attach re-opens an existing log (durable recovery).
func Attach(mem *nvm.Memory, size uint64) *Log {
	return &Log{mem: mem, size: size, met: mem.Metrics()}
}

// Mem exposes the backing memory (for flush protocols owned by the UC).
func (l *Log) Mem() *nvm.Memory { return l.mem }

// Size returns the number of entries.
func (l *Log) Size() uint64 { return l.size }

// EntryOff returns the word offset of the entry for absolute index idx.
func (l *Log) EntryOff(idx uint64) uint64 { return entryBase + (idx%l.size)*EntryWords }

// FullMark returns the emptyBit value that means "full" for absolute index
// idx: 1 on the first pass over the buffer, 0 on the second, alternating.
func (l *Log) FullMark(idx uint64) uint64 { return 1 - (idx/l.size)%2 }

// WriteArgs stores the operation code and arguments of entry idx without
// touching the emptyBit. The paper's combiner writes all batch arguments
// first, flushes, fences, and only then sets emptyBits.
func (l *Log) WriteArgs(t *sim.Thread, idx, code, a0, a1 uint64) {
	off := l.EntryOff(idx)
	l.mem.Store(t, off+entA0, a0)
	l.mem.Store(t, off+entA1, a1)
	l.mem.Store(t, off+entCode, code)
}

// SetFull flips entry idx's emptyBit to the full mark for idx.
func (l *Log) SetFull(t *sim.Thread, idx uint64) {
	l.mem.Store(t, l.EntryOff(idx)+entEmpty, l.FullMark(idx))
}

// IsFull reports whether entry idx currently holds the operation for
// absolute index idx (as opposed to a previous pass or nothing).
func (l *Log) IsFull(t *sim.Thread, idx uint64) bool {
	return l.mem.Load(t, l.EntryOff(idx)+entEmpty) == l.FullMark(idx)
}

// ReadEntry returns the operation stored for absolute index idx. Callers
// must have observed IsFull(idx).
func (l *Log) ReadEntry(t *sim.Thread, idx uint64) (code, a0, a1 uint64) {
	off := l.EntryOff(idx)
	return l.mem.Load(t, off+entCode), l.mem.Load(t, off+entA0), l.mem.Load(t, off+entA1)
}

// LogTail loads the next-free-entry index.
func (l *Log) LogTail(t *sim.Thread) uint64 { return l.mem.Load(t, offLogTail) }

// CASLogTail reserves entries [old, new) if no other combiner won the race.
// Attempts, failures and buffer wrap-arounds are recorded: logTail CAS
// failure rate is the direct measure of combiner contention on the shared
// log, and wraps mark where entry reuse (and its reservation gating) kicks
// in.
func (l *Log) CASLogTail(t *sim.Thread, old, new uint64) bool {
	l.met.LogTailCASAttempts++
	if !l.mem.CAS(t, offLogTail, old, new) {
		l.met.LogTailCASFailures++
		return false
	}
	if old/l.size != new/l.size {
		l.met.LogWraps++
	}
	return true
}

// CompletedTail loads the applied-up-to index.
func (l *Log) CompletedTail(t *sim.Thread) uint64 {
	return l.mem.Load(t, offCompletedTail)
}

// CASCompletedTail advances completedTail from old to new. It returns false
// if completedTail was not old.
func (l *Log) CASCompletedTail(t *sim.Thread, old, new uint64) bool {
	return l.mem.CAS(t, offCompletedTail, old, new)
}

// CompletedTailOff returns the word offset of completedTail so the UC can
// flush its line.
func (l *Log) CompletedTailOff() uint64 { return offCompletedTail }

// PersistCompletedTail makes the current completedTail durable. The paper's
// §5.2 flush-elision optimization — a CASing thread skips its CLFLUSH when a
// later value is already persisted — falls out of the substrate's FliT-style
// clean-line tracking: a combiner that lost the persist race finds the line
// clean (the winner's sync flush persisted it and no store followed) and the
// flush is elided there, so the log no longer keeps its own dirty tag on the
// word. Sound because completedTail is monotonic and recovery only needs a
// lower bound — eliding is only ever done when the persisted word already
// equals the current one.
func (l *Log) PersistCompletedTail(t *sim.Thread, f *nvm.Flusher) {
	f.FlushLineSync(t, l.mem, offCompletedTail)
}

// PersistedCompletedTail reads completedTail's persisted value (recovery).
func (l *Log) PersistedCompletedTail() uint64 {
	return l.mem.PersistedLoad(offCompletedTail)
}

// LogMin loads the reuse horizon.
func (l *Log) LogMin(t *sim.Thread) uint64 { return l.mem.Load(t, offLogMin) }

// SetLogMin advances the reuse horizon.
func (l *Log) SetLogMin(t *sim.Thread, v uint64) { l.mem.Store(t, offLogMin, v) }

// AdvanceLogMin moves logMin forward to v if v is larger, using CAS so a
// delayed combiner holding a stale localTail scan can never move the reuse
// horizon backwards. It returns the resulting logMin.
func (l *Log) AdvanceLogMin(t *sim.Thread, v uint64) uint64 {
	for {
		cur := l.mem.Load(t, offLogMin)
		if v <= cur {
			return cur
		}
		if l.mem.CAS(t, offLogMin, cur, v) {
			return v
		}
	}
}

// PersistedIsFull checks an entry's full mark in the persisted view
// (durable recovery).
func (l *Log) PersistedIsFull(idx uint64) bool {
	return l.mem.PersistedLoad(l.EntryOff(idx)+entEmpty) == l.FullMark(idx)
}

// PersistedReadEntry reads an entry from the persisted view (durable
// recovery).
func (l *Log) PersistedReadEntry(idx uint64) (code, a0, a1 uint64) {
	off := l.EntryOff(idx)
	return l.mem.PersistedLoad(off + entCode), l.mem.PersistedLoad(off + entA0), l.mem.PersistedLoad(off + entA1)
}
