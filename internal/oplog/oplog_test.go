package oplog

import (
	"testing"

	"prepuc/internal/nvm"
	"prepuc/internal/sim"
)

func runLog(t *testing.T, kind nvm.Kind, size uint64, fn func(*sim.Thread, *nvm.System, *Log)) {
	t.Helper()
	sch := sim.New(1)
	sys := nvm.NewSystem(sch, nvm.Config{})
	m := sys.NewMemory("log", kind, nvm.Interleaved, WordsFor(size))
	sch.Spawn("t", 0, 0, func(th *sim.Thread) {
		fn(th, sys, New(th, m, size))
	})
	sch.Run()
}

func TestFullMarkAlternatesPerPass(t *testing.T) {
	runLog(t, nvm.Volatile, 4, func(th *sim.Thread, _ *nvm.System, l *Log) {
		// pass 0 (idx 0..3): full = 1; pass 1 (idx 4..7): full = 0; pass 2: 1.
		for idx := uint64(0); idx < 4; idx++ {
			if got := l.FullMark(idx); got != 1 {
				t.Errorf("FullMark(%d) = %d, want 1", idx, got)
			}
		}
		for idx := uint64(4); idx < 8; idx++ {
			if got := l.FullMark(idx); got != 0 {
				t.Errorf("FullMark(%d) = %d, want 0", idx, got)
			}
		}
		if got := l.FullMark(8); got != 1 {
			t.Errorf("FullMark(8) = %d, want 1", got)
		}
	})
}

func TestFreshEntriesAreEmpty(t *testing.T) {
	runLog(t, nvm.Volatile, 8, func(th *sim.Thread, _ *nvm.System, l *Log) {
		for idx := uint64(0); idx < 8; idx++ {
			if l.IsFull(th, idx) {
				t.Errorf("fresh entry %d reports full", idx)
			}
		}
	})
}

func TestWriteThenSetFullRoundTrip(t *testing.T) {
	runLog(t, nvm.Volatile, 8, func(th *sim.Thread, _ *nvm.System, l *Log) {
		l.WriteArgs(th, 3, 7, 100, 200)
		if l.IsFull(th, 3) {
			t.Error("entry full before SetFull")
		}
		l.SetFull(th, 3)
		if !l.IsFull(th, 3) {
			t.Error("entry not full after SetFull")
		}
		code, a0, a1 := l.ReadEntry(th, 3)
		if code != 7 || a0 != 100 || a1 != 200 {
			t.Errorf("ReadEntry = %d,%d,%d", code, a0, a1)
		}
	})
}

func TestReusedEntryNotFullForNextPass(t *testing.T) {
	runLog(t, nvm.Volatile, 4, func(th *sim.Thread, _ *nvm.System, l *Log) {
		l.WriteArgs(th, 1, 9, 0, 0)
		l.SetFull(th, 1)
		// Index 5 maps to the same slot but belongs to pass 1: the stale
		// pass-0 mark must read as empty for index 5.
		if l.IsFull(th, 5) {
			t.Error("stale pass-0 entry reads full for pass-1 index")
		}
		l.WriteArgs(th, 5, 10, 0, 0)
		l.SetFull(th, 5)
		if !l.IsFull(th, 5) {
			t.Error("pass-1 entry not full after SetFull")
		}
		// And a pass-2 reader of the same slot must see empty again.
		if l.IsFull(th, 9) {
			t.Error("pass-1 mark reads full for pass-2 index")
		}
	})
}

func TestLogTailCASReservation(t *testing.T) {
	runLog(t, nvm.Volatile, 8, func(th *sim.Thread, _ *nvm.System, l *Log) {
		if l.LogTail(th) != 0 {
			t.Error("fresh logTail != 0")
		}
		if !l.CASLogTail(th, 0, 3) {
			t.Error("CAS from 0 failed")
		}
		if l.CASLogTail(th, 0, 5) {
			t.Error("stale CAS succeeded")
		}
		if l.LogTail(th) != 3 {
			t.Errorf("logTail = %d, want 3", l.LogTail(th))
		}
	})
}

func TestCompletedTailCASMonotonic(t *testing.T) {
	runLog(t, nvm.Volatile, 8, func(th *sim.Thread, _ *nvm.System, l *Log) {
		if !l.CASCompletedTail(th, 0, 4) {
			t.Error("CAS 0->4 failed")
		}
		if l.CASCompletedTail(th, 0, 6) {
			t.Error("stale CAS succeeded")
		}
		if got := l.CompletedTail(th); got != 4 {
			t.Errorf("completedTail = %d, want 4", got)
		}
	})
}

func TestPersistCompletedTail(t *testing.T) {
	runLog(t, nvm.NVM, 8, func(th *sim.Thread, sys *nvm.System, l *Log) {
		f := sys.NewFlusher()
		l.CASCompletedTail(th, 0, 5)
		if got := l.PersistedCompletedTail(); got != 0 {
			t.Errorf("persisted completedTail = %d before flush", got)
		}
		l.PersistCompletedTail(th, f)
		if got := l.PersistedCompletedTail(); got != 5 {
			t.Errorf("persisted completedTail = %d, want 5", got)
		}
	})
}

func TestPersistCompletedTailElision(t *testing.T) {
	// The §5.2 elision — a combiner that lost the persist race skips its
	// CLFLUSH — now comes from the substrate: after the winner's sync flush
	// the line is clean, so a second PersistCompletedTail is elided.
	runLog(t, nvm.NVM, 8, func(th *sim.Thread, sys *nvm.System, l *Log) {
		f := sys.NewFlusher()
		l.CASCompletedTail(th, 0, 5)
		base := sys.Metrics().Snapshot()
		l.PersistCompletedTail(th, f)
		d := sys.Metrics().Snapshot().Sub(base)
		if d.FlushSync != 1 || d.FlushesElided != 0 {
			t.Errorf("winner persist: FlushSync=%d FlushesElided=%d, want 1,0", d.FlushSync, d.FlushesElided)
		}
		// A slower combiner re-persisting the (clean) word is elided.
		base = sys.Metrics().Snapshot()
		l.PersistCompletedTail(th, f)
		d = sys.Metrics().Snapshot().Sub(base)
		if d.FlushSync != 0 || d.FlushesElided != 1 {
			t.Errorf("loser persist: FlushSync=%d FlushesElided=%d, want 0,1", d.FlushSync, d.FlushesElided)
		}
		if got := l.PersistedCompletedTail(); got != 5 {
			t.Errorf("persisted completedTail = %d, want 5", got)
		}
	})
}

func TestPersistCompletedTailNoElisionMode(t *testing.T) {
	// With elision disabled every persist pays a full sync flush; the
	// persisted view is the same either way.
	sch := sim.New(1)
	sys := nvm.NewSystem(sch, nvm.Config{NoFlushElision: true})
	m := sys.NewMemory("log", nvm.NVM, nvm.Interleaved, WordsFor(8))
	sch.Spawn("t", 0, 0, func(th *sim.Thread) {
		l := New(th, m, 8)
		f := sys.NewFlusher()
		l.CASCompletedTail(th, 0, 5)
		l.PersistCompletedTail(th, f)
		l.PersistCompletedTail(th, f)
		d := sys.Metrics().Snapshot()
		if d.FlushSync != 2 || d.FlushesElided != 0 || d.FlushElisionChecks != 0 {
			t.Errorf("no-elision persists: FlushSync=%d FlushesElided=%d checks=%d, want 2,0,0",
				d.FlushSync, d.FlushesElided, d.FlushElisionChecks)
		}
		if got := l.PersistedCompletedTail(); got != 5 {
			t.Errorf("persisted completedTail = %d, want 5", got)
		}
	})
	sch.Run()
}

func TestLogMin(t *testing.T) {
	runLog(t, nvm.Volatile, 16, func(th *sim.Thread, _ *nvm.System, l *Log) {
		if got := l.LogMin(th); got != 15 {
			t.Errorf("fresh logMin = %d, want size-1", got)
		}
		l.SetLogMin(th, 20)
		if got := l.LogMin(th); got != 20 {
			t.Errorf("logMin = %d, want 20", got)
		}
	})
}

func TestEntryOffWraps(t *testing.T) {
	runLog(t, nvm.Volatile, 4, func(th *sim.Thread, _ *nvm.System, l *Log) {
		if l.EntryOff(1) != l.EntryOff(5) || l.EntryOff(1) != l.EntryOff(9) {
			t.Error("wrapped indexes do not share a slot")
		}
		if l.EntryOff(1) == l.EntryOff(2) {
			t.Error("distinct indexes share a slot")
		}
	})
}

func TestDurableLogSurvivesCrash(t *testing.T) {
	sch := sim.New(1)
	sys := nvm.NewSystem(sch, nvm.Config{})
	m := sys.NewMemory("log", nvm.NVM, nvm.Interleaved, WordsFor(8))
	sch.Spawn("t", 0, 0, func(th *sim.Thread) {
		l := New(th, m, 8)
		f := sys.NewFlusher()
		// Durable append protocol: args, flush, fence, emptyBit, flush, fence.
		l.WriteArgs(th, 0, 42, 7, 8)
		f.FlushLine(th, m, l.EntryOff(0))
		f.Fence(th)
		l.SetFull(th, 0)
		f.FlushLine(th, m, l.EntryOff(0))
		f.Fence(th)
		l.CASCompletedTail(th, 0, 1)
		l.PersistCompletedTail(th, f)
		// Entry 1: args written and fenced but emptyBit never set — must be
		// recoverable as empty.
		l.WriteArgs(th, 1, 43, 9, 10)
		f.FlushLine(th, m, l.EntryOff(1))
		f.Fence(th)
	})
	sch.Run()
	rec := sys.Recover(sim.New(2))
	l := Attach(rec.Memory("log"), 8)
	if got := l.PersistedCompletedTail(); got != 1 {
		t.Errorf("recovered completedTail = %d, want 1", got)
	}
	if !l.PersistedIsFull(0) {
		t.Error("entry 0 not recovered as full")
	}
	code, a0, a1 := l.PersistedReadEntry(0)
	if code != 42 || a0 != 7 || a1 != 8 {
		t.Errorf("recovered entry 0 = %d,%d,%d", code, a0, a1)
	}
	if l.PersistedIsFull(1) {
		t.Error("half-written entry 1 recovered as full")
	}
}

func TestConcurrentReservations(t *testing.T) {
	// Combiners racing on CASLogTail must produce disjoint contiguous ranges.
	sch := sim.New(3)
	sys := nvm.NewSystem(sch, nvm.Config{Costs: sim.UnitCosts()})
	m := sys.NewMemory("log", nvm.Volatile, nvm.Interleaved, WordsFor(4096))
	var l *Log
	ranges := make(map[uint64]int) // entry -> owner
	sch.Spawn("init", 0, 0, func(th *sim.Thread) {
		l = New(th, m, 4096)
	})
	sch.Run()

	sch2 := sim.New(4)
	for w := 0; w < 6; w++ {
		w := w
		sch2.Spawn("c", w%2, 0, func(th *sim.Thread) {
			for i := 0; i < 50; i++ {
				n := uint64(th.Rand().Intn(4) + 1)
				for {
					tail := l.LogTail(th)
					if l.CASLogTail(th, tail, tail+n) {
						for k := uint64(0); k < n; k++ {
							if owner, dup := ranges[tail+k]; dup {
								t.Errorf("entry %d reserved by %d and %d", tail+k, owner, w)
							}
							ranges[tail+k] = w
						}
						break
					}
					th.Step(1)
				}
			}
		})
	}
	sch2.Run()
	// The reserved prefix must be contiguous from 0.
	total := uint64(len(ranges))
	for i := uint64(0); i < total; i++ {
		if _, ok := ranges[i]; !ok {
			t.Fatalf("gap in reservations at %d", i)
		}
	}
}
