package oplog

import (
	"testing"
	"testing/quick"

	"prepuc/internal/nvm"
	"prepuc/internal/sim"
)

// Property: for any log size and index, the full mark alternates exactly at
// wrap boundaries — index i and i+size never share a mark, i and i+2*size
// always do, and marks are always 0 or 1.
func TestFullMarkParityProperty(t *testing.T) {
	f := func(sizeSeed uint16, idxSeed uint32) bool {
		size := uint64(sizeSeed%1024) + 2
		idx := uint64(idxSeed)
		l := &Log{size: size}
		m0 := l.FullMark(idx)
		if m0 != 0 && m0 != 1 {
			return false
		}
		return l.FullMark(idx+size) == 1-m0 && l.FullMark(idx+2*size) == m0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: entries that share a slot are exactly those whose indexes are
// congruent modulo the log size, and slots never collide otherwise.
func TestEntryOffProperty(t *testing.T) {
	f := func(sizeSeed uint16, a, b uint32) bool {
		size := uint64(sizeSeed%512) + 2
		l := &Log{size: size}
		ia, ib := uint64(a), uint64(b)
		same := l.EntryOff(ia) == l.EntryOff(ib)
		return same == (ia%size == ib%size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a write-then-mark round trip at any index yields IsFull true
// for that index, IsFull false for the same slot one pass later, and the
// stored operation reads back intact.
func TestWriteReadRoundTripProperty(t *testing.T) {
	sch := sim.New(1)
	sys := nvm.NewSystem(sch, nvm.Config{})
	m := sys.NewMemory("log", nvm.Volatile, nvm.Interleaved, WordsFor(64))
	var l *Log
	type probe struct{ idx, code, a0, a1 uint64 }
	var probes []probe
	f := func(idxSeed uint16, code, a0, a1 uint64) bool {
		probes = append(probes, probe{uint64(idxSeed), code, a0, a1})
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	ok := true
	sch.Spawn("t", 0, 0, func(th *sim.Thread) {
		l = New(th, m, 64)
		for _, p := range probes {
			l.WriteArgs(th, p.idx, p.code, p.a0, p.a1)
			l.SetFull(th, p.idx)
			if !l.IsFull(th, p.idx) {
				ok = false
				return
			}
			if l.IsFull(th, p.idx+64) {
				ok = false
				return
			}
			c, x, y := l.ReadEntry(th, p.idx)
			if c != p.code || x != p.a0 || y != p.a1 {
				ok = false
				return
			}
		}
	})
	sch.Run()
	if !ok {
		t.Error("write/read round trip violated a property")
	}
}
