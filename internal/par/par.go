// Package par is the tiny worker pool that fans independent experiment
// cells out across host CPUs. Every cell of a figure (algo × thread-count)
// and every crashtest cycle owns a private sim.Scheduler and nvm.System, so
// cells can run on real goroutines in parallel without sharing anything;
// determinism is preserved by making each job write into its own index of a
// pre-allocated result slice and by serializing progress output in index
// order (Seq), so neither results nor output depend on completion order.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Jobs normalizes a -j flag value: n <= 0 selects GOMAXPROCS.
func Jobs(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Do runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns when all calls have finished. Each invocation owns index i
// exclusively, so fn typically writes its result into slot i of a
// pre-allocated slice — completion order never shows in the results. With
// workers <= 1 (or n <= 1) the calls run serially on the calling
// goroutine, exactly as the plain loop they replace.
func Do(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Seq releases per-index side effects in index order: a parallel sweep
// prints the same progress stream a serial one would, each index's lines
// appearing as soon as every earlier index has finished. The zero value is
// ready to use.
type Seq struct {
	mu   sync.Mutex
	next int
	held map[int]func()
}

// Done marks index i finished. Its emit callback (nil is allowed) runs
// once all indices below i are done; any directly unblocked successors are
// flushed in the same call. Each index must be completed exactly once.
func (s *Seq) Done(i int, emit func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.held == nil {
		s.held = make(map[int]func())
	}
	s.held[i] = emit
	for {
		e, ok := s.held[s.next]
		if !ok {
			return
		}
		delete(s.held, s.next)
		s.next++
		if e != nil {
			e()
		}
	}
}
