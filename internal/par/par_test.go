package par

import (
	"runtime"
	"testing"
)

func TestJobs(t *testing.T) {
	if got := Jobs(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Jobs(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Jobs(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Jobs(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Jobs(5); got != 5 {
		t.Errorf("Jobs(5) = %d", got)
	}
}

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 257
		counts := make([]int, n)
		Do(workers, n, func(i int) { counts[i]++ })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestDoZeroJobs(t *testing.T) {
	ran := false
	Do(8, 0, func(int) { ran = true })
	if ran {
		t.Error("Do ran a job for n=0")
	}
}

// TestSeqReleasesInOrder hammers Seq from a parallel Do and checks the emit
// callbacks fired exactly in index order regardless of completion order.
func TestSeqReleasesInOrder(t *testing.T) {
	const n = 500
	var seq Seq
	var order []int
	Do(8, n, func(i int) {
		// Uneven spin skews completion order across goroutines.
		for k := 0; k < (i%13)*50; k++ {
			_ = k * k
		}
		seq.Done(i, func() { order = append(order, i) })
	})
	if len(order) != n {
		t.Fatalf("emitted %d of %d", len(order), n)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("emit %d was index %d, want %d", i, v, i)
		}
	}
}

// TestSeqNilEmit checks indexes may complete without an emit callback.
func TestSeqNilEmit(t *testing.T) {
	var seq Seq
	fired := false
	seq.Done(1, func() { fired = true })
	seq.Done(0, nil)
	if !fired {
		t.Error("emit for index 1 never fired after index 0 completed")
	}
}
