// Package pmem implements a simple size-segregated free-list allocator over
// a simulated memory region, standing in for the persistent memory
// allocators used by the paper (the free-list allocator of Correia et al.
// and PMDK's libvmmalloc).
//
// A PUC needs two guarantees from its allocator (§5.1 of the paper):
//
//  1. allocator operations never corrupt allocated objects if a crash hits
//     mid-allocation — satisfied here because blocks are carved by a bump
//     pointer and recycled through free lists that never overlap live data;
//  2. allocated objects keep their addresses across a crash — satisfied
//     because offsets within an nvm.Memory are stable by construction (the
//     simulated analogue of mapping the persistent memory file at a fixed
//     virtual address).
//
// The same allocator also serves volatile replicas (over a Volatile-kind
// memory); this mirrors PREP-UC's allocator-swapping wrapper, which routes a
// thread's allocations to either the system allocator or the persistent
// allocator without modifying the sequential data structure: here, the data
// structure receives an *Allocator and is oblivious to the kind of memory
// behind it.
//
// An Allocator is single-writer: callers must serialize Alloc/Free (the
// universal constructions do so under their combiner or writer locks; SOFT
// does so under a dedicated allocation lock). Concurrent mutation corrupts
// the free lists.
package pmem

import (
	"fmt"

	"prepuc/internal/nvm"
	"prepuc/internal/sim"
)

// Layout of the heap header (word offsets).
const (
	offMagic   = 0
	offHeapTop = 1
	offRoot0   = 2  // 8 root slots: words 2..9
	offBin0    = 10 // numClasses bin heads: words 10..10+numClasses-1
	headerEnd  = 10 + numClasses
	// dataStart is where blocks begin, line-aligned past the header.
	dataStart = (headerEnd + nvm.WordsPerLine - 1) / nvm.WordsPerLine * nvm.WordsPerLine
)

// NumRoots is the number of persistent root slots.
const NumRoots = 8

const magic = 0x9E12_EC0B_5EED_0001

// numClasses size classes: payload capacity 2^c words for c in [0,numClasses).
const numClasses = 22

// Allocator carves blocks out of one memory region. Every block has a
// one-word header holding its size class, so Free needs only the offset.
type Allocator struct {
	m *nvm.Memory
}

// New formats a fresh heap in m and returns its allocator.
func New(t *sim.Thread, m *nvm.Memory) *Allocator {
	a := &Allocator{m: m}
	a.m.Store(t, offMagic, magic)
	a.m.Store(t, offHeapTop, dataStart)
	for i := 0; i < NumRoots; i++ {
		a.m.Store(t, offRoot0+uint64(i), 0)
	}
	for c := 0; c < numClasses; c++ {
		a.m.Store(t, offBin0+uint64(c), 0)
	}
	return a
}

// Attach opens an already-formatted heap (for example after a crash).
func Attach(t *sim.Thread, m *nvm.Memory) *Allocator {
	a := &Allocator{m: m}
	if got := a.m.Load(t, offMagic); got != magic {
		panic(fmt.Sprintf("pmem: memory %q holds no heap (magic %#x)", m.Name(), got))
	}
	return a
}

// Memory returns the region the heap lives in.
func (a *Allocator) Memory() *nvm.Memory { return a.m }

// classFor returns the smallest class whose payload fits words.
func classFor(words uint64) int {
	if words == 0 {
		words = 1
	}
	c := 0
	cap := uint64(1)
	for cap < words {
		cap <<= 1
		c++
	}
	if c >= numClasses {
		panic(fmt.Sprintf("pmem: allocation of %d words exceeds largest class", words))
	}
	return c
}

// Alloc returns the offset of a zeroed block with capacity for the requested
// number of words. It panics if the heap is exhausted (the harness sizes
// heaps generously, mirroring the paper's 64 GB persistent memory file).
func (a *Allocator) Alloc(t *sim.Thread, words uint64) uint64 {
	c := classFor(words)
	binOff := offBin0 + uint64(c)
	head := a.m.Load(t, binOff)
	if head != 0 {
		next := a.m.Load(t, head) // freed block's payload word 0 links the list
		a.m.Store(t, binOff, next)
		a.zero(t, head, uint64(1)<<uint(c))
		return head
	}
	blockWords := (uint64(1) << uint(c)) + 1 // +1 header word
	top := a.m.Load(t, offHeapTop)
	if top+blockWords > a.m.Words() {
		panic(fmt.Sprintf("pmem: out of memory in %q (top=%d, need=%d, size=%d)",
			a.m.Name(), top, blockWords, a.m.Words()))
	}
	a.m.Store(t, offHeapTop, top+blockWords)
	a.m.Store(t, top, uint64(c)) // block header: size class
	return top + 1
}

// zero clears a recycled block's payload. Fresh bump-allocated blocks are
// already zero.
func (a *Allocator) zero(t *sim.Thread, off, words uint64) {
	for i := uint64(0); i < words; i++ {
		a.m.Store(t, off+i, 0)
	}
}

// Free returns the block at off (as returned by Alloc) to its bin.
func (a *Allocator) Free(t *sim.Thread, off uint64) {
	if off == 0 {
		return
	}
	c := a.m.Load(t, off-1)
	if c >= numClasses {
		panic(fmt.Sprintf("pmem: Free(%d): corrupt block header %d", off, c))
	}
	binOff := offBin0 + c
	head := a.m.Load(t, binOff)
	a.m.Store(t, off, head)
	a.m.Store(t, binOff, off)
}

// SetRoot stores a value into a persistent root slot.
func (a *Allocator) SetRoot(t *sim.Thread, slot int, v uint64) {
	if slot < 0 || slot >= NumRoots {
		panic("pmem: root slot out of range")
	}
	a.m.Store(t, offRoot0+uint64(slot), v)
}

// Root loads a persistent root slot.
func (a *Allocator) Root(t *sim.Thread, slot int) uint64 {
	if slot < 0 || slot >= NumRoots {
		panic("pmem: root slot out of range")
	}
	return a.m.Load(t, offRoot0+uint64(slot))
}

// RootOffset returns the word offset of a root slot so callers can flush
// the line containing it.
func RootOffset(slot int) uint64 { return offRoot0 + uint64(slot) }

// HeapTop returns the bump pointer (for tests and capacity accounting).
func (a *Allocator) HeapTop(t *sim.Thread) uint64 { return a.m.Load(t, offHeapTop) }
