package pmem

import (
	"testing"
	"testing/quick"

	"prepuc/internal/nvm"
	"prepuc/internal/sim"
)

// run executes fn on one simulated thread with a fresh heap of the given size.
func run(t *testing.T, words uint64, fn func(*sim.Thread, *Allocator)) {
	t.Helper()
	sch := sim.New(1)
	sys := nvm.NewSystem(sch, nvm.Config{})
	m := sys.NewMemory("heap", nvm.Volatile, 0, words)
	sch.Spawn("t", 0, 0, func(th *sim.Thread) {
		fn(th, New(th, m))
	})
	sch.Run()
}

func TestAllocReturnsDistinctBlocks(t *testing.T) {
	run(t, 1<<16, func(th *sim.Thread, a *Allocator) {
		seen := map[uint64]bool{}
		for i := 0; i < 100; i++ {
			off := a.Alloc(th, 4)
			if off == 0 {
				t.Fatal("Alloc returned null")
			}
			if seen[off] {
				t.Fatalf("Alloc returned %d twice", off)
			}
			seen[off] = true
		}
	})
}

func TestAllocZeroed(t *testing.T) {
	run(t, 1<<16, func(th *sim.Thread, a *Allocator) {
		off := a.Alloc(th, 8)
		for i := uint64(0); i < 8; i++ {
			a.Memory().Store(th, off+i, 999)
		}
		a.Free(th, off)
		off2 := a.Alloc(th, 8)
		if off2 != off {
			t.Fatalf("expected recycled block %d, got %d", off, off2)
		}
		for i := uint64(0); i < 8; i++ {
			if got := a.Memory().Load(th, off2+i); got != 0 {
				t.Fatalf("recycled word %d = %d, want 0", i, got)
			}
		}
	})
}

func TestFreeRecyclesSameClass(t *testing.T) {
	run(t, 1<<16, func(th *sim.Thread, a *Allocator) {
		off := a.Alloc(th, 16)
		a.Free(th, off)
		if got := a.Alloc(th, 16); got != off {
			t.Errorf("Alloc after Free = %d, want recycled %d", got, off)
		}
	})
}

func TestFreeListLIFO(t *testing.T) {
	run(t, 1<<16, func(th *sim.Thread, a *Allocator) {
		x := a.Alloc(th, 4)
		y := a.Alloc(th, 4)
		a.Free(th, x)
		a.Free(th, y)
		if got := a.Alloc(th, 4); got != y {
			t.Errorf("first realloc = %d, want LIFO head %d", got, y)
		}
		if got := a.Alloc(th, 4); got != x {
			t.Errorf("second realloc = %d, want %d", got, x)
		}
	})
}

func TestSizeClassesDoNotMix(t *testing.T) {
	run(t, 1<<16, func(th *sim.Thread, a *Allocator) {
		small := a.Alloc(th, 2)
		a.Free(th, small)
		big := a.Alloc(th, 64)
		if big == small {
			t.Error("64-word alloc reused a 2-word block")
		}
	})
}

func TestBlocksDoNotOverlap(t *testing.T) {
	run(t, 1<<18, func(th *sim.Thread, a *Allocator) {
		type blk struct{ off, words uint64 }
		var blks []blk
		sizes := []uint64{1, 2, 3, 7, 8, 15, 31, 64}
		for i := 0; i < 50; i++ {
			w := sizes[i%len(sizes)]
			blks = append(blks, blk{a.Alloc(th, w), w})
		}
		// Write a unique pattern in every block, then verify none clobbered.
		for i, b := range blks {
			for j := uint64(0); j < b.words; j++ {
				a.Memory().Store(th, b.off+j, uint64(i)<<32|j)
			}
		}
		for i, b := range blks {
			for j := uint64(0); j < b.words; j++ {
				if got := a.Memory().Load(th, b.off+j); got != uint64(i)<<32|j {
					t.Fatalf("block %d word %d corrupted: %#x", i, j, got)
				}
			}
		}
	})
}

func TestFreeNullIsNoop(t *testing.T) {
	run(t, 1<<12, func(th *sim.Thread, a *Allocator) {
		a.Free(th, 0) // must not panic
	})
}

func TestRootSlots(t *testing.T) {
	run(t, 1<<12, func(th *sim.Thread, a *Allocator) {
		for s := 0; s < NumRoots; s++ {
			a.SetRoot(th, s, uint64(s)*11+1)
		}
		for s := 0; s < NumRoots; s++ {
			if got := a.Root(th, s); got != uint64(s)*11+1 {
				t.Errorf("root %d = %d", s, got)
			}
		}
	})
}

func TestOOMPanics(t *testing.T) {
	run(t, 256, func(th *sim.Thread, a *Allocator) {
		defer func() {
			if recover() == nil {
				t.Error("expected OOM panic")
			}
		}()
		for i := 0; i < 1000; i++ {
			a.Alloc(th, 32)
		}
	})
}

func TestAttachAfterCrashSeesRoots(t *testing.T) {
	sch := sim.New(1)
	sys := nvm.NewSystem(sch, nvm.Config{})
	m := sys.NewMemory("heap", nvm.NVM, 0, 1<<12)
	sch.Spawn("t", 0, 0, func(th *sim.Thread) {
		a := New(th, m)
		f := sys.NewFlusher()
		off := a.Alloc(th, 4)
		a.Memory().Store(th, off, 1234)
		a.SetRoot(th, 0, off)
		// Persist the header line (magic + root) and the block.
		f.FlushLineSync(th, m, offMagic)
		f.FlushLineSync(th, m, RootOffset(0))
		f.FlushLineSync(th, m, off)
	})
	sch.Run()
	rec := sys.Recover(sim.New(2))
	m2 := rec.Memory("heap")
	rec.Scheduler().Spawn("r", 0, 0, func(th *sim.Thread) {
		a := Attach(th, m2)
		off := a.Root(th, 0)
		if off == 0 {
			t.Error("root lost after crash")
			return
		}
		if got := a.Memory().Load(th, off); got != 1234 {
			t.Errorf("persisted block word = %d, want 1234", got)
		}
	})
	rec.Scheduler().Run()
}

func TestAttachUnformattedPanics(t *testing.T) {
	sch := sim.New(1)
	sys := nvm.NewSystem(sch, nvm.Config{})
	m := sys.NewMemory("heap", nvm.Volatile, 0, 1<<12)
	panicked := false
	sch.Spawn("t", 0, 0, func(th *sim.Thread) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		Attach(th, m)
	})
	sch.Run()
	if !panicked {
		t.Error("Attach on unformatted memory did not panic")
	}
}

func TestClassForProperty(t *testing.T) {
	// Property: a class always fits the request and is minimal.
	f := func(n uint16) bool {
		words := uint64(n%2048) + 1
		c := classFor(words)
		cap := uint64(1) << uint(c)
		if cap < words {
			return false
		}
		return c == 0 || uint64(1)<<uint(c-1) < words
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocFreeChurnProperty(t *testing.T) {
	// Property: arbitrary alloc/free sequences never hand out overlapping
	// live blocks.
	run(t, 1<<20, func(th *sim.Thread, a *Allocator) {
		rng := th.Rand()
		type blk struct{ off, words uint64 }
		var live []blk
		overlap := func(x, y blk) bool {
			return x.off < y.off+y.words && y.off < x.off+x.words
		}
		for i := 0; i < 2000; i++ {
			if len(live) > 0 && rng.Intn(2) == 0 {
				k := rng.Intn(len(live))
				a.Free(th, live[k].off)
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			w := uint64(rng.Intn(60) + 1)
			nb := blk{a.Alloc(th, w), w}
			for _, lb := range live {
				if overlap(nb, lb) {
					t.Fatalf("block %+v overlaps live %+v", nb, lb)
				}
			}
			live = append(live, nb)
		}
	})
}
