// Package prof wires the conventional -cpuprofile/-memprofile flags for the
// repository's command-line tools, so perf work on the simulator is measured
// with pprof rather than guessed at.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (empty disables it) and returns a
// stop function that ends the CPU profile and, when memPath is non-empty,
// writes a heap profile after a final GC. Call stop exactly once, after the
// measured work and before exit.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuF *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
		cpuF = f
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle live-heap numbers before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		return nil
	}, nil
}
