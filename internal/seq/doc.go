// Package seq implements the sequential data structures used as black-box
// inputs to the universal constructions: a resizable chained hashmap, a
// red-black tree, a binary-heap priority queue, a stack, and a FIFO queue —
// the five objects of the paper's evaluation (§6).
//
// Every structure stores its state exclusively inside a pmem.Allocator heap
// and refers to its own nodes by word offsets, never Go pointers. One
// implementation therefore serves both volatile replicas (heap over a
// Volatile memory) and persistent replicas (heap over an NVM memory), which
// is the simulated counterpart of PREP-UC's allocator-swapping wrapper: the
// sequential code is identical in both roles and performs no flushes or
// fences of its own.
//
// Each structure registers its header block in the allocator's root slot 0,
// so an instance can be re-attached to a heap that survived a crash.
package seq

import "prepuc/internal/sim"

// rootSlot is the allocator root slot every structure keeps its header in.
const rootSlot = 0

// splitmix64 is the hash function for hashmap bucket selection.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// unknownOp panics uniformly for unsupported operation codes.
func unknownOp(ds string, code uint64) uint64 {
	panic("seq: " + ds + ": unsupported operation code")
}

var _ = sim.Crash{} // keep the sim import pinned for doc reference
