package seq

// Differential fuzzing of every sequential structure against the trivial
// reference models in internal/linearize (a plain map for the set family,
// plain slices for the containers). Each fuzz input decodes into an
// operation stream; structure and model must agree on every single
// response, and the structure's Dump must replay back to the model's
// state. This is a two-way contract: it catches bugs in the pmem-backed
// structures AND pins the linearizability checker's sequential specs to
// the implementations they claim to mirror.
//
// The seed corpus (deterministic pseudo-random streams of several sizes)
// runs under plain `go test`; `go test -fuzz FuzzHashMapVsModel` etc.
// explores further.

import (
	"fmt"
	"testing"

	"prepuc/internal/linearize"
	"prepuc/internal/pmem"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// fuzzSeed generates a deterministic corpus entry.
func fuzzSeed(seed, n int) []byte {
	b := make([]byte, n)
	s := uint32(seed)*2654435761 + 1
	for i := range b {
		s = s*1664525 + 1013904223
		b[i] = byte(s >> 24)
	}
	return b
}

// maxFuzzOps bounds decoded streams so adversarial inputs cannot exhaust
// the test heap.
const maxFuzzOps = 1024

// decodeSetOps maps bytes onto the set family's op mix over a small key
// range (collisions and re-inserts are the interesting cases).
func decodeSetOps(data []byte) []uc.Op {
	ops := make([]uc.Op, 0, len(data)/2)
	for i := 0; i+1 < len(data) && len(ops) < maxFuzzOps; i += 2 {
		sel, kb := data[i], data[i+1]
		key := uint64(kb % 24)
		switch sel % 8 {
		case 0, 1, 2:
			ops = append(ops, uc.Insert(key, uint64(i+1)*131 + uint64(sel)))
		case 3, 4:
			ops = append(ops, uc.Delete(key))
		case 5:
			ops = append(ops, uc.Get(key))
		case 6:
			ops = append(ops, uc.Contains(key))
		case 7:
			ops = append(ops, uc.Size())
		}
	}
	return ops
}

// decodePairOps maps bytes onto a container's op mix. Values repeat
// (mod 16) on purpose: duplicate elements stress the priority queue's
// equal-key ordering and the containers' value-independent shape.
func decodePairOps(data []byte, push, pop, peek uint64) []uc.Op {
	ops := make([]uc.Op, 0, len(data)/2)
	for i := 0; i+1 < len(data) && len(ops) < maxFuzzOps; i += 2 {
		sel, vb := data[i], data[i+1]
		switch sel % 8 {
		case 0, 1, 2:
			ops = append(ops, uc.Op{Code: push, A0: uint64(vb % 16)})
		case 3, 4, 5:
			ops = append(ops, uc.Op{Code: pop})
		case 6:
			ops = append(ops, uc.Op{Code: peek})
		case 7:
			ops = append(ops, uc.Size())
		}
	}
	return ops
}

// modelStateEqual compares two full model states (map for sets, slice for
// containers).
func modelStateEqual(a, b any) bool {
	switch x := a.(type) {
	case map[uint64]uint64:
		y := b.(map[uint64]uint64)
		if len(x) != len(y) {
			return false
		}
		for k, v := range x {
			if got, ok := y[k]; !ok || got != v {
				return false
			}
		}
		return true
	case []uint64:
		y := b.([]uint64)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return false
}

// diffRun drives the op stream through a fresh structure and the reference
// model in lockstep, comparing every response, then checks the Dump
// round-trip: replaying the structure's dump into an empty model must land
// exactly on the model's final state.
func diffRun(t *testing.T, factory uc.Factory, model linearize.Model, ops []uc.Op) {
	t.Helper()
	run(t, 1<<20, func(th *sim.Thread, a *pmem.Allocator) {
		ds := factory(th, a)
		state := model.Empty()
		for i, op := range ops {
			var want uint64
			state, want = model.Apply(state, op.Code, op.A0, op.A1)
			if got := ds.Execute(th, op.Code, op.A0, op.A1); got != want {
				t.Fatalf("op %d %s(%d,%d): structure returned %d, model %d",
					i, uc.OpName(op.Code), op.A0, op.A1, got, want)
			}
		}
		var dumped []uc.Op
		ds.Dump(th, func(code, a0, a1 uint64) {
			dumped = append(dumped, uc.Op{Code: code, A0: a0, A1: a1})
		})
		if replayed := linearize.Replay(model, nil, dumped); !modelStateEqual(state, replayed) {
			t.Fatalf("Dump round-trip diverged after %d ops:\n dump replay %v\n model state %v",
				len(ops), replayed, state)
		}
	})
}

func fuzzSet(f *testing.F, factory uc.Factory) {
	for s := 0; s < 6; s++ {
		f.Add(fuzzSeed(s, 64+s*300))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		diffRun(t, factory, linearize.SetModel(), decodeSetOps(data))
	})
}

func fuzzPairs(f *testing.F, factory uc.Factory, model linearize.Model, push, pop, peek uint64) {
	for s := 0; s < 6; s++ {
		f.Add(fuzzSeed(100+s, 64+s*300))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		diffRun(t, factory, model, decodePairOps(data, push, pop, peek))
	})
}

func FuzzHashMapVsModel(f *testing.F)  { fuzzSet(f, HashMapFactory(4)) } // tiny table: force chains
func FuzzRBTreeVsModel(f *testing.F)   { fuzzSet(f, RBTreeFactory()) }
func FuzzSkipListVsModel(f *testing.F) { fuzzSet(f, SkipListFactory()) }
func FuzzListSetVsModel(f *testing.F)  { fuzzSet(f, ListSetFactory()) }

func FuzzQueueVsModel(f *testing.F) {
	fuzzPairs(f, QueueFactory(), linearize.QueueModel(), uc.OpEnqueue, uc.OpDequeue, uc.OpPeek)
}

func FuzzStackVsModel(f *testing.F) {
	fuzzPairs(f, StackFactory(), linearize.StackModel(), uc.OpPush, uc.OpPop, uc.OpTop)
}

func FuzzPQueueVsModel(f *testing.F) {
	fuzzPairs(f, PQueueFactory(), linearize.PQueueModel(), uc.OpInsert, uc.OpDeleteMin, uc.OpMin)
}

// TestDifferentialLongStreams runs larger deterministic streams than the
// fuzz seed corpus through every structure/model pair — the always-on
// version of the differential contract.
func TestDifferentialLongStreams(t *testing.T) {
	for s := 0; s < 4; s++ {
		data := fuzzSeed(1000+s, 2048)
		t.Run(fmt.Sprintf("seed%d", s), func(t *testing.T) {
			diffRun(t, HashMapFactory(4), linearize.SetModel(), decodeSetOps(data))
			diffRun(t, RBTreeFactory(), linearize.SetModel(), decodeSetOps(data))
			diffRun(t, SkipListFactory(), linearize.SetModel(), decodeSetOps(data))
			diffRun(t, ListSetFactory(), linearize.SetModel(), decodeSetOps(data))
			diffRun(t, QueueFactory(), linearize.QueueModel(),
				decodePairOps(data, uc.OpEnqueue, uc.OpDequeue, uc.OpPeek))
			diffRun(t, StackFactory(), linearize.StackModel(),
				decodePairOps(data, uc.OpPush, uc.OpPop, uc.OpTop))
			diffRun(t, PQueueFactory(), linearize.PQueueModel(),
				decodePairOps(data, uc.OpInsert, uc.OpDeleteMin, uc.OpMin))
		})
	}
}
