package seq

import (
	"prepuc/internal/pmem"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// HashMap is a resizable hashmap with chained buckets — the paper's
// "resizable linked list based hashmap". Keys and values are words.
//
// Heap layout:
//
//	header (4 words): [0] buckets array offset, [1] bucket count, [2] size
//	node   (4 words): [0] key, [1] value, [2] next
type HashMap struct {
	a   *pmem.Allocator
	hdr uint64
}

const (
	hmBuckets = 0
	hmNBucket = 1
	hmSize    = 2
	hmHdrLen  = 4

	hnKey   = 0
	hnVal   = 1
	hnNext  = 2
	hnWords = 4
)

// NewHashMap creates an empty map with the given initial bucket count
// (rounded up to at least 4) and records it in the heap's root slot.
func NewHashMap(t *sim.Thread, a *pmem.Allocator, initialBuckets uint64) *HashMap {
	if initialBuckets < 4 {
		initialBuckets = 4
	}
	h := &HashMap{a: a}
	h.hdr = a.Alloc(t, hmHdrLen)
	buckets := a.Alloc(t, initialBuckets)
	m := a.Memory()
	m.Store(t, h.hdr+hmBuckets, buckets)
	m.Store(t, h.hdr+hmNBucket, initialBuckets)
	m.Store(t, h.hdr+hmSize, 0)
	a.SetRoot(t, rootSlot, h.hdr)
	return h
}

// AttachHashMap re-opens a map previously created in this heap.
func AttachHashMap(t *sim.Thread, a *pmem.Allocator) *HashMap {
	return &HashMap{a: a, hdr: a.Root(t, rootSlot)}
}

// HashMapFactory returns a uc.Factory creating maps with the given initial
// bucket count.
func HashMapFactory(initialBuckets uint64) uc.Factory {
	return func(t *sim.Thread, a *pmem.Allocator) uc.DataStructure {
		return NewHashMap(t, a, initialBuckets)
	}
}

// HashMapAttacher is the uc.Attacher for HashMapFactory heaps.
func HashMapAttacher(t *sim.Thread, a *pmem.Allocator) uc.DataStructure {
	return AttachHashMap(t, a)
}

// Size returns the number of keys.
func (h *HashMap) Size(t *sim.Thread) uint64 {
	return h.a.Memory().Load(t, h.hdr+hmSize)
}

func (h *HashMap) bucketFor(t *sim.Thread, key uint64) uint64 {
	m := h.a.Memory()
	n := m.Load(t, h.hdr+hmNBucket)
	return m.Load(t, h.hdr+hmBuckets) + splitmix64(key)%n
}

// Get returns the value for key, or uc.NotFound.
func (h *HashMap) Get(t *sim.Thread, key uint64) uint64 {
	m := h.a.Memory()
	node := m.Load(t, h.bucketFor(t, key))
	for node != 0 {
		if m.Load(t, node+hnKey) == key {
			return m.Load(t, node+hnVal)
		}
		node = m.Load(t, node+hnNext)
	}
	return uc.NotFound
}

// Contains reports (as 0/1) whether key is present.
func (h *HashMap) Contains(t *sim.Thread, key uint64) uint64 {
	if h.Get(t, key) == uc.NotFound {
		return 0
	}
	return 1
}

// Put inserts or updates key. It returns 1 if the key was newly inserted,
// 0 if an existing value was replaced.
func (h *HashMap) Put(t *sim.Thread, key, val uint64) uint64 {
	m := h.a.Memory()
	slot := h.bucketFor(t, key)
	node := m.Load(t, slot)
	for n := node; n != 0; n = m.Load(t, n+hnNext) {
		if m.Load(t, n+hnKey) == key {
			m.Store(t, n+hnVal, val)
			return 0
		}
	}
	nn := h.a.Alloc(t, hnWords)
	m.Store(t, nn+hnKey, key)
	m.Store(t, nn+hnVal, val)
	m.Store(t, nn+hnNext, node)
	m.Store(t, slot, nn)
	size := m.Load(t, h.hdr+hmSize) + 1
	m.Store(t, h.hdr+hmSize, size)
	if size > 2*m.Load(t, h.hdr+hmNBucket) {
		h.resize(t)
	}
	return 1
}

// Delete removes key, returning 1 if it was present.
func (h *HashMap) Delete(t *sim.Thread, key uint64) uint64 {
	m := h.a.Memory()
	slot := h.bucketFor(t, key)
	prev := uint64(0)
	node := m.Load(t, slot)
	for node != 0 {
		next := m.Load(t, node+hnNext)
		if m.Load(t, node+hnKey) == key {
			if prev == 0 {
				m.Store(t, slot, next)
			} else {
				m.Store(t, prev+hnNext, next)
			}
			h.a.Free(t, node)
			m.Store(t, h.hdr+hmSize, m.Load(t, h.hdr+hmSize)-1)
			return 1
		}
		prev = node
		node = next
	}
	return 0
}

// resize doubles the bucket array and relinks every node.
func (h *HashMap) resize(t *sim.Thread) {
	m := h.a.Memory()
	oldBuckets := m.Load(t, h.hdr+hmBuckets)
	oldN := m.Load(t, h.hdr+hmNBucket)
	newN := oldN * 2
	newBuckets := h.a.Alloc(t, newN)
	for b := uint64(0); b < oldN; b++ {
		node := m.Load(t, oldBuckets+b)
		for node != 0 {
			next := m.Load(t, node+hnNext)
			slot := newBuckets + splitmix64(m.Load(t, node+hnKey))%newN
			m.Store(t, node+hnNext, m.Load(t, slot))
			m.Store(t, slot, node)
			node = next
		}
	}
	m.Store(t, h.hdr+hmBuckets, newBuckets)
	m.Store(t, h.hdr+hmNBucket, newN)
	h.a.Free(t, oldBuckets)
}

// Buckets returns the current bucket count (for tests).
func (h *HashMap) Buckets(t *sim.Thread) uint64 {
	return h.a.Memory().Load(t, h.hdr+hmNBucket)
}

// Execute dispatches an encoded operation (the paper's Execute switch).
func (h *HashMap) Execute(t *sim.Thread, code, a0, a1 uint64) uint64 {
	switch code {
	case uc.OpGet:
		return h.Get(t, a0)
	case uc.OpContains:
		return h.Contains(t, a0)
	case uc.OpInsert:
		return h.Put(t, a0, a1)
	case uc.OpDelete:
		return h.Delete(t, a0)
	case uc.OpSize:
		return h.Size(t)
	default:
		return unknownOp("hashmap", code)
	}
}

// IsReadOnly implements uc.DataStructure.
func (h *HashMap) IsReadOnly(code uint64) bool {
	return code == uc.OpGet || code == uc.OpContains || code == uc.OpSize
}

// Dump emits one insert per key/value pair.
func (h *HashMap) Dump(t *sim.Thread, emit func(code, a0, a1 uint64)) {
	m := h.a.Memory()
	buckets := m.Load(t, h.hdr+hmBuckets)
	n := m.Load(t, h.hdr+hmNBucket)
	for b := uint64(0); b < n; b++ {
		for node := m.Load(t, buckets+b); node != 0; node = m.Load(t, node+hnNext) {
			emit(uc.OpInsert, m.Load(t, node+hnKey), m.Load(t, node+hnVal))
		}
	}
}
