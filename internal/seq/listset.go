package seq

import (
	"prepuc/internal/pmem"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// ListSet is a sorted singly-linked-list map — the simplest sequential set
// and the classic worst case for coarse constructions (O(n) operations make
// the construction overhead proportionally small, which is the regime where
// universal constructions shine).
//
// Heap layout:
//
//	header (2 words): [0] head, [1] size
//	node   (4 words): [0] key, [1] value, [2] next
type ListSet struct {
	a   *pmem.Allocator
	hdr uint64
}

const (
	lsHead   = 0
	lsSize   = 1
	lsHdrLen = 2
)

// NewListSet creates an empty list and records it in the heap's root slot.
func NewListSet(t *sim.Thread, a *pmem.Allocator) *ListSet {
	l := &ListSet{a: a}
	l.hdr = a.Alloc(t, lsHdrLen)
	m := a.Memory()
	m.Store(t, l.hdr+lsHead, 0)
	m.Store(t, l.hdr+lsSize, 0)
	a.SetRoot(t, rootSlot, l.hdr)
	return l
}

// AttachListSet re-opens a list previously created in this heap.
func AttachListSet(t *sim.Thread, a *pmem.Allocator) *ListSet {
	return &ListSet{a: a, hdr: a.Root(t, rootSlot)}
}

// ListSetFactory is the uc.Factory for sorted linked lists.
func ListSetFactory() uc.Factory {
	return func(t *sim.Thread, a *pmem.Allocator) uc.DataStructure {
		return NewListSet(t, a)
	}
}

// ListSetAttacher is the uc.Attacher for ListSetFactory heaps.
func ListSetAttacher(t *sim.Thread, a *pmem.Allocator) uc.DataStructure {
	return AttachListSet(t, a)
}

// Size returns the number of keys.
func (l *ListSet) Size(t *sim.Thread) uint64 {
	return l.a.Memory().Load(t, l.hdr+lsSize)
}

// locate returns (pred, node) where node is the first node with key ≥ key
// and pred its predecessor (0 = the header position).
func (l *ListSet) locate(t *sim.Thread, key uint64) (pred, node uint64) {
	m := l.a.Memory()
	node = m.Load(t, l.hdr+lsHead)
	for node != 0 && m.Load(t, node+hnKey) < key {
		pred = node
		node = m.Load(t, node+hnNext)
	}
	return pred, node
}

// Get returns the value for key, or uc.NotFound.
func (l *ListSet) Get(t *sim.Thread, key uint64) uint64 {
	m := l.a.Memory()
	_, n := l.locate(t, key)
	if n != 0 && m.Load(t, n+hnKey) == key {
		return m.Load(t, n+hnVal)
	}
	return uc.NotFound
}

// Contains reports (as 0/1) whether key is present.
func (l *ListSet) Contains(t *sim.Thread, key uint64) uint64 {
	if l.Get(t, key) == uc.NotFound {
		return 0
	}
	return 1
}

// Put inserts or updates key. Returns 1 if newly inserted, 0 if replaced.
func (l *ListSet) Put(t *sim.Thread, key, val uint64) uint64 {
	m := l.a.Memory()
	pred, n := l.locate(t, key)
	if n != 0 && m.Load(t, n+hnKey) == key {
		m.Store(t, n+hnVal, val)
		return 0
	}
	nn := l.a.Alloc(t, hnWords)
	m.Store(t, nn+hnKey, key)
	m.Store(t, nn+hnVal, val)
	m.Store(t, nn+hnNext, n)
	if pred == 0 {
		m.Store(t, l.hdr+lsHead, nn)
	} else {
		m.Store(t, pred+hnNext, nn)
	}
	m.Store(t, l.hdr+lsSize, m.Load(t, l.hdr+lsSize)+1)
	return 1
}

// Delete removes key, returning 1 if it was present.
func (l *ListSet) Delete(t *sim.Thread, key uint64) uint64 {
	m := l.a.Memory()
	pred, n := l.locate(t, key)
	if n == 0 || m.Load(t, n+hnKey) != key {
		return 0
	}
	next := m.Load(t, n+hnNext)
	if pred == 0 {
		m.Store(t, l.hdr+lsHead, next)
	} else {
		m.Store(t, pred+hnNext, next)
	}
	l.a.Free(t, n)
	m.Store(t, l.hdr+lsSize, m.Load(t, l.hdr+lsSize)-1)
	return 1
}

// Execute dispatches an encoded operation.
func (l *ListSet) Execute(t *sim.Thread, code, a0, a1 uint64) uint64 {
	switch code {
	case uc.OpGet:
		return l.Get(t, a0)
	case uc.OpContains:
		return l.Contains(t, a0)
	case uc.OpInsert:
		return l.Put(t, a0, a1)
	case uc.OpDelete:
		return l.Delete(t, a0)
	case uc.OpSize:
		return l.Size(t)
	default:
		return unknownOp("listset", code)
	}
}

// IsReadOnly implements uc.DataStructure.
func (l *ListSet) IsReadOnly(code uint64) bool {
	return code == uc.OpGet || code == uc.OpContains || code == uc.OpSize
}

// Dump emits one insert per key in ascending order.
func (l *ListSet) Dump(t *sim.Thread, emit func(code, a0, a1 uint64)) {
	m := l.a.Memory()
	for n := m.Load(t, l.hdr+lsHead); n != 0; n = m.Load(t, n+hnNext) {
		emit(uc.OpInsert, m.Load(t, n+hnKey), m.Load(t, n+hnVal))
	}
}
