package seq

import (
	"prepuc/internal/pmem"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// PQueue is a binary min-heap priority queue of word keys, the simulated
// counterpart of the C++ standard library priority_queue used in §6.
//
// Heap layout:
//
//	header (4 words): [0] array offset, [1] capacity, [2] size
//	array: capacity words of keys
type PQueue struct {
	a   *pmem.Allocator
	hdr uint64
}

const (
	pqArr    = 0
	pqCap    = 1
	pqSize   = 2
	pqHdrLen = 4

	pqInitialCap = 16
)

// NewPQueue creates an empty priority queue and records it in the heap's
// root slot.
func NewPQueue(t *sim.Thread, a *pmem.Allocator) *PQueue {
	p := &PQueue{a: a}
	p.hdr = a.Alloc(t, pqHdrLen)
	arr := a.Alloc(t, pqInitialCap)
	m := a.Memory()
	m.Store(t, p.hdr+pqArr, arr)
	m.Store(t, p.hdr+pqCap, pqInitialCap)
	m.Store(t, p.hdr+pqSize, 0)
	a.SetRoot(t, rootSlot, p.hdr)
	return p
}

// AttachPQueue re-opens a priority queue previously created in this heap.
func AttachPQueue(t *sim.Thread, a *pmem.Allocator) *PQueue {
	return &PQueue{a: a, hdr: a.Root(t, rootSlot)}
}

// PQueueFactory is the uc.Factory for priority queues.
func PQueueFactory() uc.Factory {
	return func(t *sim.Thread, a *pmem.Allocator) uc.DataStructure {
		return NewPQueue(t, a)
	}
}

// PQueueAttacher is the uc.Attacher for PQueueFactory heaps.
func PQueueAttacher(t *sim.Thread, a *pmem.Allocator) uc.DataStructure {
	return AttachPQueue(t, a)
}

// Size returns the number of queued keys.
func (p *PQueue) Size(t *sim.Thread) uint64 {
	return p.a.Memory().Load(t, p.hdr+pqSize)
}

// Enqueue inserts a key. Always returns 1.
func (p *PQueue) Enqueue(t *sim.Thread, key uint64) uint64 {
	m := p.a.Memory()
	size := m.Load(t, p.hdr+pqSize)
	cap := m.Load(t, p.hdr+pqCap)
	arr := m.Load(t, p.hdr+pqArr)
	if size == cap {
		newCap := cap * 2
		newArr := p.a.Alloc(t, newCap)
		for i := uint64(0); i < size; i++ {
			m.Store(t, newArr+i, m.Load(t, arr+i))
		}
		p.a.Free(t, arr)
		arr = newArr
		m.Store(t, p.hdr+pqArr, arr)
		m.Store(t, p.hdr+pqCap, newCap)
	}
	// sift up
	i := size
	m.Store(t, arr+i, key)
	for i > 0 {
		parent := (i - 1) / 2
		pv := m.Load(t, arr+parent)
		if pv <= key {
			break
		}
		m.Store(t, arr+i, pv)
		m.Store(t, arr+parent, key)
		i = parent
	}
	m.Store(t, p.hdr+pqSize, size+1)
	return 1
}

// Min returns the smallest key without removing it, or uc.NotFound.
func (p *PQueue) Min(t *sim.Thread) uint64 {
	m := p.a.Memory()
	if m.Load(t, p.hdr+pqSize) == 0 {
		return uc.NotFound
	}
	return m.Load(t, m.Load(t, p.hdr+pqArr))
}

// DeleteMin removes and returns the smallest key, or uc.NotFound when empty.
func (p *PQueue) DeleteMin(t *sim.Thread) uint64 {
	m := p.a.Memory()
	size := m.Load(t, p.hdr+pqSize)
	if size == 0 {
		return uc.NotFound
	}
	arr := m.Load(t, p.hdr+pqArr)
	min := m.Load(t, arr)
	last := m.Load(t, arr+size-1)
	size--
	m.Store(t, p.hdr+pqSize, size)
	if size == 0 {
		return min
	}
	// sift down
	i := uint64(0)
	m.Store(t, arr, last)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		sv := m.Load(t, arr+smallest)
		if l < size {
			if lv := m.Load(t, arr+l); lv < sv {
				smallest, sv = l, lv
			}
		}
		if r < size {
			if rv := m.Load(t, arr+r); rv < sv {
				smallest, sv = r, rv
			}
		}
		if smallest == i {
			break
		}
		m.Store(t, arr+smallest, m.Load(t, arr+i))
		m.Store(t, arr+i, sv)
		i = smallest
	}
	return min
}

// Execute dispatches an encoded operation.
func (p *PQueue) Execute(t *sim.Thread, code, a0, a1 uint64) uint64 {
	switch code {
	case uc.OpEnqueue, uc.OpInsert:
		return p.Enqueue(t, a0)
	case uc.OpDequeue, uc.OpDeleteMin:
		return p.DeleteMin(t)
	case uc.OpMin, uc.OpPeek:
		return p.Min(t)
	case uc.OpSize:
		return p.Size(t)
	default:
		return unknownOp("pqueue", code)
	}
}

// IsReadOnly implements uc.DataStructure.
func (p *PQueue) IsReadOnly(code uint64) bool {
	return code == uc.OpMin || code == uc.OpPeek || code == uc.OpSize
}

// Dump emits one enqueue per stored key (heap order; re-inserting in any
// order rebuilds an equivalent priority queue).
func (p *PQueue) Dump(t *sim.Thread, emit func(code, a0, a1 uint64)) {
	m := p.a.Memory()
	arr := m.Load(t, p.hdr+pqArr)
	size := m.Load(t, p.hdr+pqSize)
	for i := uint64(0); i < size; i++ {
		emit(uc.OpEnqueue, m.Load(t, arr+i), 0)
	}
}
