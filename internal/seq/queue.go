package seq

import (
	"prepuc/internal/pmem"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// Queue is a linked FIFO queue of word values (used by Figure 1c's 100%
// update enqueue/dequeue workload).
//
// Heap layout:
//
//	header (4 words): [0] head offset, [1] tail offset, [2] size
//	node   (2 words): [0] value, [1] next
type Queue struct {
	a   *pmem.Allocator
	hdr uint64
}

const (
	quHead   = 0
	quTail   = 1
	quSize   = 2
	quHdrLen = 4
)

// NewQueue creates an empty queue and records it in the heap's root slot.
func NewQueue(t *sim.Thread, a *pmem.Allocator) *Queue {
	q := &Queue{a: a}
	q.hdr = a.Alloc(t, quHdrLen)
	m := a.Memory()
	m.Store(t, q.hdr+quHead, 0)
	m.Store(t, q.hdr+quTail, 0)
	m.Store(t, q.hdr+quSize, 0)
	a.SetRoot(t, rootSlot, q.hdr)
	return q
}

// AttachQueue re-opens a queue previously created in this heap.
func AttachQueue(t *sim.Thread, a *pmem.Allocator) *Queue {
	return &Queue{a: a, hdr: a.Root(t, rootSlot)}
}

// QueueFactory is the uc.Factory for FIFO queues.
func QueueFactory() uc.Factory {
	return func(t *sim.Thread, a *pmem.Allocator) uc.DataStructure {
		return NewQueue(t, a)
	}
}

// QueueAttacher is the uc.Attacher for QueueFactory heaps.
func QueueAttacher(t *sim.Thread, a *pmem.Allocator) uc.DataStructure {
	return AttachQueue(t, a)
}

// Size returns the number of queued values.
func (q *Queue) Size(t *sim.Thread) uint64 {
	return q.a.Memory().Load(t, q.hdr+quSize)
}

// Enqueue appends a value. Always returns 1.
func (q *Queue) Enqueue(t *sim.Thread, val uint64) uint64 {
	m := q.a.Memory()
	n := q.a.Alloc(t, snWords)
	m.Store(t, n+snVal, val)
	m.Store(t, n+snNext, 0)
	tail := m.Load(t, q.hdr+quTail)
	if tail == 0 {
		m.Store(t, q.hdr+quHead, n)
	} else {
		m.Store(t, tail+snNext, n)
	}
	m.Store(t, q.hdr+quTail, n)
	m.Store(t, q.hdr+quSize, m.Load(t, q.hdr+quSize)+1)
	return 1
}

// Dequeue removes and returns the oldest value, or uc.NotFound when empty.
func (q *Queue) Dequeue(t *sim.Thread) uint64 {
	m := q.a.Memory()
	head := m.Load(t, q.hdr+quHead)
	if head == 0 {
		return uc.NotFound
	}
	val := m.Load(t, head+snVal)
	next := m.Load(t, head+snNext)
	m.Store(t, q.hdr+quHead, next)
	if next == 0 {
		m.Store(t, q.hdr+quTail, 0)
	}
	q.a.Free(t, head)
	m.Store(t, q.hdr+quSize, m.Load(t, q.hdr+quSize)-1)
	return val
}

// Peek returns the oldest value without removing it, or uc.NotFound.
func (q *Queue) Peek(t *sim.Thread) uint64 {
	m := q.a.Memory()
	head := m.Load(t, q.hdr+quHead)
	if head == 0 {
		return uc.NotFound
	}
	return m.Load(t, head+snVal)
}

// Execute dispatches an encoded operation.
func (q *Queue) Execute(t *sim.Thread, code, a0, a1 uint64) uint64 {
	switch code {
	case uc.OpEnqueue:
		return q.Enqueue(t, a0)
	case uc.OpDequeue:
		return q.Dequeue(t)
	case uc.OpPeek:
		return q.Peek(t)
	case uc.OpSize:
		return q.Size(t)
	default:
		return unknownOp("queue", code)
	}
}

// IsReadOnly implements uc.DataStructure.
func (q *Queue) IsReadOnly(code uint64) bool {
	return code == uc.OpPeek || code == uc.OpSize
}

// Dump emits enqueues head-to-tail so a replay reconstructs FIFO order.
func (q *Queue) Dump(t *sim.Thread, emit func(code, a0, a1 uint64)) {
	m := q.a.Memory()
	for n := m.Load(t, q.hdr+quHead); n != 0; n = m.Load(t, n+snNext) {
		emit(uc.OpEnqueue, m.Load(t, n+snVal), 0)
	}
}
