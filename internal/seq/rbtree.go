package seq

import (
	"prepuc/internal/pmem"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// RBTree is a red-black tree keyed map (CLRS-style, with an explicit NIL
// sentinel node so rotations and delete fixups need no special cases).
//
// Heap layout:
//
//	header (4 words): [0] root offset, [1] size, [2] sentinel offset
//	node   (8 words): [0] key, [1] value, [2] left, [3] right, [4] parent,
//	                  [5] color (0 = black, 1 = red)
type RBTree struct {
	a   *pmem.Allocator
	hdr uint64
}

const (
	rtRoot   = 0
	rtSize   = 1
	rtNil    = 2
	rtHdrLen = 4

	rnKey    = 0
	rnVal    = 1
	rnLeft   = 2
	rnRight  = 3
	rnParent = 4
	rnColor  = 5
	rnWords  = 8

	black = 0
	red   = 1
)

// NewRBTree creates an empty tree and records it in the heap's root slot.
func NewRBTree(t *sim.Thread, a *pmem.Allocator) *RBTree {
	r := &RBTree{a: a}
	r.hdr = a.Alloc(t, rtHdrLen)
	m := a.Memory()
	sentinel := a.Alloc(t, rnWords) // all-zero: black, self-ish pointers unused
	m.Store(t, r.hdr+rtNil, sentinel)
	m.Store(t, r.hdr+rtRoot, sentinel)
	m.Store(t, r.hdr+rtSize, 0)
	a.SetRoot(t, rootSlot, r.hdr)
	return r
}

// AttachRBTree re-opens a tree previously created in this heap.
func AttachRBTree(t *sim.Thread, a *pmem.Allocator) *RBTree {
	return &RBTree{a: a, hdr: a.Root(t, rootSlot)}
}

// RBTreeFactory is the uc.Factory for red-black trees.
func RBTreeFactory() uc.Factory {
	return func(t *sim.Thread, a *pmem.Allocator) uc.DataStructure {
		return NewRBTree(t, a)
	}
}

// RBTreeAttacher is the uc.Attacher for RBTreeFactory heaps.
func RBTreeAttacher(t *sim.Thread, a *pmem.Allocator) uc.DataStructure {
	return AttachRBTree(t, a)
}

func (r *RBTree) nilNode(t *sim.Thread) uint64 { return r.a.Memory().Load(t, r.hdr+rtNil) }
func (r *RBTree) root(t *sim.Thread) uint64    { return r.a.Memory().Load(t, r.hdr+rtRoot) }
func (r *RBTree) setRoot(t *sim.Thread, n uint64) {
	r.a.Memory().Store(t, r.hdr+rtRoot, n)
}

// Size returns the number of keys.
func (r *RBTree) Size(t *sim.Thread) uint64 {
	return r.a.Memory().Load(t, r.hdr+rtSize)
}

// find returns the node holding key, or the sentinel.
func (r *RBTree) find(t *sim.Thread, key uint64) uint64 {
	m := r.a.Memory()
	nilN := r.nilNode(t)
	n := r.root(t)
	for n != nilN {
		k := m.Load(t, n+rnKey)
		switch {
		case key == k:
			return n
		case key < k:
			n = m.Load(t, n+rnLeft)
		default:
			n = m.Load(t, n+rnRight)
		}
	}
	return nilN
}

// Get returns the value for key, or uc.NotFound.
func (r *RBTree) Get(t *sim.Thread, key uint64) uint64 {
	n := r.find(t, key)
	if n == r.nilNode(t) {
		return uc.NotFound
	}
	return r.a.Memory().Load(t, n+rnVal)
}

// Contains reports (as 0/1) whether key is present.
func (r *RBTree) Contains(t *sim.Thread, key uint64) uint64 {
	if r.find(t, key) == r.nilNode(t) {
		return 0
	}
	return 1
}

func (r *RBTree) rotateLeft(t *sim.Thread, x uint64) {
	m := r.a.Memory()
	nilN := r.nilNode(t)
	y := m.Load(t, x+rnRight)
	yl := m.Load(t, y+rnLeft)
	m.Store(t, x+rnRight, yl)
	if yl != nilN {
		m.Store(t, yl+rnParent, x)
	}
	xp := m.Load(t, x+rnParent)
	m.Store(t, y+rnParent, xp)
	if xp == nilN {
		r.setRoot(t, y)
	} else if m.Load(t, xp+rnLeft) == x {
		m.Store(t, xp+rnLeft, y)
	} else {
		m.Store(t, xp+rnRight, y)
	}
	m.Store(t, y+rnLeft, x)
	m.Store(t, x+rnParent, y)
}

func (r *RBTree) rotateRight(t *sim.Thread, x uint64) {
	m := r.a.Memory()
	nilN := r.nilNode(t)
	y := m.Load(t, x+rnLeft)
	yr := m.Load(t, y+rnRight)
	m.Store(t, x+rnLeft, yr)
	if yr != nilN {
		m.Store(t, yr+rnParent, x)
	}
	xp := m.Load(t, x+rnParent)
	m.Store(t, y+rnParent, xp)
	if xp == nilN {
		r.setRoot(t, y)
	} else if m.Load(t, xp+rnRight) == x {
		m.Store(t, xp+rnRight, y)
	} else {
		m.Store(t, xp+rnLeft, y)
	}
	m.Store(t, y+rnRight, x)
	m.Store(t, x+rnParent, y)
}

// Put inserts or updates key. Returns 1 if newly inserted, 0 if replaced.
func (r *RBTree) Put(t *sim.Thread, key, val uint64) uint64 {
	m := r.a.Memory()
	nilN := r.nilNode(t)
	parent := nilN
	cur := r.root(t)
	for cur != nilN {
		parent = cur
		k := m.Load(t, cur+rnKey)
		switch {
		case key == k:
			m.Store(t, cur+rnVal, val)
			return 0
		case key < k:
			cur = m.Load(t, cur+rnLeft)
		default:
			cur = m.Load(t, cur+rnRight)
		}
	}
	z := r.a.Alloc(t, rnWords)
	m.Store(t, z+rnKey, key)
	m.Store(t, z+rnVal, val)
	m.Store(t, z+rnLeft, nilN)
	m.Store(t, z+rnRight, nilN)
	m.Store(t, z+rnParent, parent)
	m.Store(t, z+rnColor, red)
	if parent == nilN {
		r.setRoot(t, z)
	} else if key < m.Load(t, parent+rnKey) {
		m.Store(t, parent+rnLeft, z)
	} else {
		m.Store(t, parent+rnRight, z)
	}
	r.insertFixup(t, z)
	m.Store(t, r.hdr+rtSize, m.Load(t, r.hdr+rtSize)+1)
	return 1
}

func (r *RBTree) insertFixup(t *sim.Thread, z uint64) {
	m := r.a.Memory()
	for {
		zp := m.Load(t, z+rnParent)
		if m.Load(t, zp+rnColor) != red {
			break
		}
		zpp := m.Load(t, zp+rnParent)
		if zp == m.Load(t, zpp+rnLeft) {
			y := m.Load(t, zpp+rnRight) // uncle
			if m.Load(t, y+rnColor) == red {
				m.Store(t, zp+rnColor, black)
				m.Store(t, y+rnColor, black)
				m.Store(t, zpp+rnColor, red)
				z = zpp
				continue
			}
			if z == m.Load(t, zp+rnRight) {
				z = zp
				r.rotateLeft(t, z)
				zp = m.Load(t, z+rnParent)
				zpp = m.Load(t, zp+rnParent)
			}
			m.Store(t, zp+rnColor, black)
			m.Store(t, zpp+rnColor, red)
			r.rotateRight(t, zpp)
		} else {
			y := m.Load(t, zpp+rnLeft)
			if m.Load(t, y+rnColor) == red {
				m.Store(t, zp+rnColor, black)
				m.Store(t, y+rnColor, black)
				m.Store(t, zpp+rnColor, red)
				z = zpp
				continue
			}
			if z == m.Load(t, zp+rnLeft) {
				z = zp
				r.rotateRight(t, z)
				zp = m.Load(t, z+rnParent)
				zpp = m.Load(t, zp+rnParent)
			}
			m.Store(t, zp+rnColor, black)
			m.Store(t, zpp+rnColor, red)
			r.rotateLeft(t, zpp)
		}
	}
	m.Store(t, r.root(t)+rnColor, black)
}

// transplant replaces subtree u with subtree v.
func (r *RBTree) transplant(t *sim.Thread, u, v uint64) {
	m := r.a.Memory()
	up := m.Load(t, u+rnParent)
	if up == r.nilNode(t) {
		r.setRoot(t, v)
	} else if u == m.Load(t, up+rnLeft) {
		m.Store(t, up+rnLeft, v)
	} else {
		m.Store(t, up+rnRight, v)
	}
	m.Store(t, v+rnParent, up)
}

func (r *RBTree) minimum(t *sim.Thread, n uint64) uint64 {
	m := r.a.Memory()
	nilN := r.nilNode(t)
	for {
		l := m.Load(t, n+rnLeft)
		if l == nilN {
			return n
		}
		n = l
	}
}

// Delete removes key, returning 1 if it was present.
func (r *RBTree) Delete(t *sim.Thread, key uint64) uint64 {
	m := r.a.Memory()
	nilN := r.nilNode(t)
	z := r.find(t, key)
	if z == nilN {
		return 0
	}
	y := z
	yColor := m.Load(t, y+rnColor)
	var x uint64
	if m.Load(t, z+rnLeft) == nilN {
		x = m.Load(t, z+rnRight)
		r.transplant(t, z, x)
	} else if m.Load(t, z+rnRight) == nilN {
		x = m.Load(t, z+rnLeft)
		r.transplant(t, z, x)
	} else {
		y = r.minimum(t, m.Load(t, z+rnRight))
		yColor = m.Load(t, y+rnColor)
		x = m.Load(t, y+rnRight)
		if m.Load(t, y+rnParent) == z {
			m.Store(t, x+rnParent, y) // meaningful even when x is sentinel
		} else {
			r.transplant(t, y, x)
			zr := m.Load(t, z+rnRight)
			m.Store(t, y+rnRight, zr)
			m.Store(t, zr+rnParent, y)
		}
		r.transplant(t, z, y)
		zl := m.Load(t, z+rnLeft)
		m.Store(t, y+rnLeft, zl)
		m.Store(t, zl+rnParent, y)
		m.Store(t, y+rnColor, m.Load(t, z+rnColor))
	}
	r.a.Free(t, z)
	if yColor == black {
		r.deleteFixup(t, x)
	}
	m.Store(t, r.hdr+rtSize, m.Load(t, r.hdr+rtSize)-1)
	return 1
}

func (r *RBTree) deleteFixup(t *sim.Thread, x uint64) {
	m := r.a.Memory()
	for x != r.root(t) && m.Load(t, x+rnColor) == black {
		xp := m.Load(t, x+rnParent)
		if x == m.Load(t, xp+rnLeft) {
			w := m.Load(t, xp+rnRight)
			if m.Load(t, w+rnColor) == red {
				m.Store(t, w+rnColor, black)
				m.Store(t, xp+rnColor, red)
				r.rotateLeft(t, xp)
				w = m.Load(t, xp+rnRight)
			}
			wl := m.Load(t, w+rnLeft)
			wr := m.Load(t, w+rnRight)
			if m.Load(t, wl+rnColor) == black && m.Load(t, wr+rnColor) == black {
				m.Store(t, w+rnColor, red)
				x = xp
				continue
			}
			if m.Load(t, wr+rnColor) == black {
				m.Store(t, wl+rnColor, black)
				m.Store(t, w+rnColor, red)
				r.rotateRight(t, w)
				w = m.Load(t, xp+rnRight)
				wr = m.Load(t, w+rnRight)
			}
			m.Store(t, w+rnColor, m.Load(t, xp+rnColor))
			m.Store(t, xp+rnColor, black)
			m.Store(t, wr+rnColor, black)
			r.rotateLeft(t, xp)
			x = r.root(t)
		} else {
			w := m.Load(t, xp+rnLeft)
			if m.Load(t, w+rnColor) == red {
				m.Store(t, w+rnColor, black)
				m.Store(t, xp+rnColor, red)
				r.rotateRight(t, xp)
				w = m.Load(t, xp+rnLeft)
			}
			wl := m.Load(t, w+rnLeft)
			wr := m.Load(t, w+rnRight)
			if m.Load(t, wr+rnColor) == black && m.Load(t, wl+rnColor) == black {
				m.Store(t, w+rnColor, red)
				x = xp
				continue
			}
			if m.Load(t, wl+rnColor) == black {
				m.Store(t, wr+rnColor, black)
				m.Store(t, w+rnColor, red)
				r.rotateLeft(t, w)
				w = m.Load(t, xp+rnLeft)
				wl = m.Load(t, w+rnLeft)
			}
			m.Store(t, w+rnColor, m.Load(t, xp+rnColor))
			m.Store(t, xp+rnColor, black)
			m.Store(t, wl+rnColor, black)
			r.rotateRight(t, xp)
			x = r.root(t)
		}
	}
	m.Store(t, x+rnColor, black)
}

// Execute dispatches an encoded operation.
func (r *RBTree) Execute(t *sim.Thread, code, a0, a1 uint64) uint64 {
	switch code {
	case uc.OpGet:
		return r.Get(t, a0)
	case uc.OpContains:
		return r.Contains(t, a0)
	case uc.OpInsert:
		return r.Put(t, a0, a1)
	case uc.OpDelete:
		return r.Delete(t, a0)
	case uc.OpSize:
		return r.Size(t)
	default:
		return unknownOp("rbtree", code)
	}
}

// IsReadOnly implements uc.DataStructure.
func (r *RBTree) IsReadOnly(code uint64) bool {
	return code == uc.OpGet || code == uc.OpContains || code == uc.OpSize
}

// Dump emits one insert per key in order (in-order traversal without
// recursion, using parent pointers).
func (r *RBTree) Dump(t *sim.Thread, emit func(code, a0, a1 uint64)) {
	m := r.a.Memory()
	nilN := r.nilNode(t)
	n := r.root(t)
	if n == nilN {
		return
	}
	// descend to minimum
	for m.Load(t, n+rnLeft) != nilN {
		n = m.Load(t, n+rnLeft)
	}
	for n != nilN {
		emit(uc.OpInsert, m.Load(t, n+rnKey), m.Load(t, n+rnVal))
		// successor
		if right := m.Load(t, n+rnRight); right != nilN {
			n = right
			for m.Load(t, n+rnLeft) != nilN {
				n = m.Load(t, n+rnLeft)
			}
		} else {
			p := m.Load(t, n+rnParent)
			for p != nilN && n == m.Load(t, p+rnRight) {
				n = p
				p = m.Load(t, p+rnParent)
			}
			n = p
		}
	}
}

// checkInvariants validates red-black properties (tests only). It returns
// the black height and panics on violations.
func (r *RBTree) checkInvariants(t *sim.Thread) int {
	m := r.a.Memory()
	nilN := r.nilNode(t)
	root := r.root(t)
	if root != nilN && m.Load(t, root+rnColor) != black {
		panic("rbtree: root is red")
	}
	var walk func(n uint64, lo, hi uint64, hasLo, hasHi bool) int
	walk = func(n uint64, lo, hi uint64, hasLo, hasHi bool) int {
		if n == nilN {
			return 1
		}
		k := m.Load(t, n+rnKey)
		if hasLo && k <= lo {
			panic("rbtree: BST order violated (low)")
		}
		if hasHi && k >= hi {
			panic("rbtree: BST order violated (high)")
		}
		c := m.Load(t, n+rnColor)
		l := m.Load(t, n+rnLeft)
		rt := m.Load(t, n+rnRight)
		if c == red {
			if m.Load(t, l+rnColor) == red || m.Load(t, rt+rnColor) == red {
				panic("rbtree: red node with red child")
			}
		}
		lh := walk(l, lo, k, hasLo, true)
		rh := walk(rt, k, hi, true, hasHi)
		if lh != rh {
			panic("rbtree: black height mismatch")
		}
		if c == black {
			return lh + 1
		}
		return lh
	}
	return walk(root, 0, 0, false, false)
}
