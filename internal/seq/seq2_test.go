package seq

import (
	"testing"

	"prepuc/internal/pmem"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// --- SkipList ---

func TestSkipListPutGetDelete(t *testing.T) {
	run(t, 1<<20, func(th *sim.Thread, a *pmem.Allocator) {
		s := NewSkipList(th, a)
		for k := uint64(0); k < 500; k++ {
			if got := s.Put(th, k*3, k); got != 1 {
				t.Fatalf("Put(%d) = %d", k*3, got)
			}
		}
		for k := uint64(0); k < 500; k++ {
			if got := s.Get(th, k*3); got != k {
				t.Fatalf("Get(%d) = %d, want %d", k*3, got, k)
			}
			if got := s.Get(th, k*3+1); got != uc.NotFound {
				t.Fatalf("Get(miss) = %d", got)
			}
		}
		for k := uint64(0); k < 500; k += 2 {
			if got := s.Delete(th, k*3); got != 1 {
				t.Fatalf("Delete(%d) = %d", k*3, got)
			}
		}
		for k := uint64(0); k < 500; k++ {
			want := k
			if k%2 == 0 {
				want = uc.NotFound
			}
			if got := s.Get(th, k*3); got != want {
				t.Fatalf("Get(%d) = %d, want %d", k*3, got, want)
			}
		}
		if got := s.Size(th); got != 250 {
			t.Fatalf("Size = %d", got)
		}
	})
}

func TestSkipListUpdateExisting(t *testing.T) {
	run(t, 1<<16, func(th *sim.Thread, a *pmem.Allocator) {
		s := NewSkipList(th, a)
		s.Put(th, 9, 1)
		if got := s.Put(th, 9, 2); got != 0 {
			t.Errorf("overwrite Put = %d", got)
		}
		if got := s.Get(th, 9); got != 2 {
			t.Errorf("Get = %d", got)
		}
	})
}

func TestSkipListAgainstModel(t *testing.T) {
	run(t, 1<<22, func(th *sim.Thread, a *pmem.Allocator) {
		s := NewSkipList(th, a)
		model := map[uint64]uint64{}
		rng := th.Rand()
		for i := 0; i < 4000; i++ {
			k := uint64(rng.Intn(200))
			switch rng.Intn(3) {
			case 0:
				v := rng.Uint64()
				_, ex := model[k]
				want := uint64(1)
				if ex {
					want = 0
				}
				if got := s.Put(th, k, v); got != want {
					t.Fatalf("Put(%d) = %d, want %d", k, got, want)
				}
				model[k] = v
			case 1:
				_, ex := model[k]
				want := uint64(0)
				if ex {
					want = 1
				}
				if got := s.Delete(th, k); got != want {
					t.Fatalf("Delete(%d) = %d, want %d", k, got, want)
				}
				delete(model, k)
			default:
				want, ex := model[k]
				if !ex {
					want = uc.NotFound
				}
				if got := s.Get(th, k); got != want {
					t.Fatalf("Get(%d) = %d, want %d", k, got, want)
				}
			}
		}
	})
}

func TestSkipListDumpSorted(t *testing.T) {
	run(t, 1<<20, func(th *sim.Thread, a *pmem.Allocator) {
		s := NewSkipList(th, a)
		rng := th.Rand()
		for i := 0; i < 300; i++ {
			s.Put(th, rng.Uint64()%5000, 1)
		}
		var prev uint64
		first := true
		count := uint64(0)
		s.Dump(th, func(code, a0, a1 uint64) {
			if !first && a0 <= prev {
				t.Fatalf("Dump not strictly sorted: %d after %d", a0, prev)
			}
			prev, first = a0, false
			count++
		})
		if count != s.Size(th) {
			t.Fatalf("Dump emitted %d, size %d", count, s.Size(th))
		}
	})
}

func TestSkipListDeterministicShape(t *testing.T) {
	// Two instances fed the same operations converge to identical dumps —
	// replicas built by log replay must agree.
	run(t, 1<<20, func(th *sim.Thread, a *pmem.Allocator) {
		s1 := NewSkipList(th, a)
		s2 := NewSkipList(th, a)
		for i := uint64(0); i < 200; i++ {
			k := (i * 37) % 211
			s1.Execute(th, uc.OpInsert, k, i)
			s2.Execute(th, uc.OpInsert, k, i)
		}
		var d1, d2 [][2]uint64
		s1.Dump(th, func(_, a0, a1 uint64) { d1 = append(d1, [2]uint64{a0, a1}) })
		s2.Dump(th, func(_, a0, a1 uint64) { d2 = append(d2, [2]uint64{a0, a1}) })
		if len(d1) != len(d2) {
			t.Fatalf("dumps differ in length: %d vs %d", len(d1), len(d2))
		}
		for i := range d1 {
			if d1[i] != d2[i] {
				t.Fatalf("dumps diverge at %d", i)
			}
		}
	})
}

// --- ListSet ---

func TestListSetSortedInsertion(t *testing.T) {
	run(t, 1<<18, func(th *sim.Thread, a *pmem.Allocator) {
		l := NewListSet(th, a)
		for _, k := range []uint64{5, 1, 9, 3, 7} {
			if got := l.Put(th, k, k*10); got != 1 {
				t.Fatalf("Put(%d) = %d", k, got)
			}
		}
		var keys []uint64
		l.Dump(th, func(_, a0, _ uint64) { keys = append(keys, a0) })
		want := []uint64{1, 3, 5, 7, 9}
		for i := range want {
			if keys[i] != want[i] {
				t.Fatalf("dump order %v, want %v", keys, want)
			}
		}
	})
}

func TestListSetDeleteHeadMiddleTail(t *testing.T) {
	run(t, 1<<16, func(th *sim.Thread, a *pmem.Allocator) {
		l := NewListSet(th, a)
		for k := uint64(1); k <= 5; k++ {
			l.Put(th, k, k)
		}
		for _, k := range []uint64{1, 3, 5} { // head, middle, tail
			if got := l.Delete(th, k); got != 1 {
				t.Fatalf("Delete(%d) = %d", k, got)
			}
		}
		if got := l.Size(th); got != 2 {
			t.Fatalf("Size = %d", got)
		}
		for _, k := range []uint64{2, 4} {
			if got := l.Get(th, k); got != k {
				t.Fatalf("Get(%d) = %d", k, got)
			}
		}
	})
}

func TestListSetAgainstModel(t *testing.T) {
	run(t, 1<<20, func(th *sim.Thread, a *pmem.Allocator) {
		l := NewListSet(th, a)
		model := map[uint64]uint64{}
		rng := th.Rand()
		for i := 0; i < 2500; i++ {
			k := uint64(rng.Intn(100))
			switch rng.Intn(3) {
			case 0:
				v := rng.Uint64()
				_, ex := model[k]
				want := uint64(1)
				if ex {
					want = 0
				}
				if got := l.Put(th, k, v); got != want {
					t.Fatalf("Put(%d) = %d, want %d", k, got, want)
				}
				model[k] = v
			case 1:
				_, ex := model[k]
				want := uint64(0)
				if ex {
					want = 1
				}
				if got := l.Delete(th, k); got != want {
					t.Fatalf("Delete(%d) = %d, want %d", k, got, want)
				}
				delete(model, k)
			default:
				want, ex := model[k]
				if !ex {
					want = uc.NotFound
				}
				if got := l.Get(th, k); got != want {
					t.Fatalf("Get(%d) = %d, want %d", k, got, want)
				}
			}
		}
	})
}

func TestNewStructuresImplementDataStructure(t *testing.T) {
	var _ uc.DataStructure = (*SkipList)(nil)
	var _ uc.DataStructure = (*ListSet)(nil)
}

func TestSkipListAttach(t *testing.T) {
	run(t, 1<<16, func(th *sim.Thread, a *pmem.Allocator) {
		s := NewSkipList(th, a)
		s.Put(th, 4, 44)
		s2 := AttachSkipList(th, a)
		if got := s2.Get(th, 4); got != 44 {
			t.Errorf("attached Get = %d", got)
		}
	})
}

func TestListSetAttach(t *testing.T) {
	run(t, 1<<16, func(th *sim.Thread, a *pmem.Allocator) {
		l := NewListSet(th, a)
		l.Put(th, 4, 44)
		l2 := AttachListSet(th, a)
		if got := l2.Get(th, 4); got != 44 {
			t.Errorf("attached Get = %d", got)
		}
	})
}
