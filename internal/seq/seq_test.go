package seq

import (
	"sort"
	"testing"

	"prepuc/internal/nvm"
	"prepuc/internal/pmem"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// run executes fn on one simulated thread with a fresh heap.
func run(t *testing.T, words uint64, fn func(*sim.Thread, *pmem.Allocator)) {
	t.Helper()
	sch := sim.New(1)
	sys := nvm.NewSystem(sch, nvm.Config{})
	m := sys.NewMemory("heap", nvm.Volatile, 0, words)
	sch.Spawn("t", 0, 0, func(th *sim.Thread) {
		fn(th, pmem.New(th, m))
	})
	sch.Run()
}

// --- HashMap ---

func TestHashMapPutGet(t *testing.T) {
	run(t, 1<<16, func(th *sim.Thread, a *pmem.Allocator) {
		h := NewHashMap(th, a, 8)
		if got := h.Put(th, 1, 100); got != 1 {
			t.Errorf("fresh Put = %d, want 1", got)
		}
		if got := h.Get(th, 1); got != 100 {
			t.Errorf("Get = %d, want 100", got)
		}
		if got := h.Get(th, 2); got != uc.NotFound {
			t.Errorf("Get missing = %d, want NotFound", got)
		}
	})
}

func TestHashMapUpdateExisting(t *testing.T) {
	run(t, 1<<16, func(th *sim.Thread, a *pmem.Allocator) {
		h := NewHashMap(th, a, 8)
		h.Put(th, 5, 1)
		if got := h.Put(th, 5, 2); got != 0 {
			t.Errorf("overwrite Put = %d, want 0", got)
		}
		if got := h.Get(th, 5); got != 2 {
			t.Errorf("Get after overwrite = %d, want 2", got)
		}
		if got := h.Size(th); got != 1 {
			t.Errorf("Size = %d, want 1", got)
		}
	})
}

func TestHashMapDelete(t *testing.T) {
	run(t, 1<<16, func(th *sim.Thread, a *pmem.Allocator) {
		h := NewHashMap(th, a, 8)
		h.Put(th, 7, 70)
		if got := h.Delete(th, 7); got != 1 {
			t.Errorf("Delete present = %d, want 1", got)
		}
		if got := h.Delete(th, 7); got != 0 {
			t.Errorf("Delete absent = %d, want 0", got)
		}
		if got := h.Contains(th, 7); got != 0 {
			t.Errorf("Contains after delete = %d, want 0", got)
		}
	})
}

func TestHashMapDeleteMiddleOfChain(t *testing.T) {
	run(t, 1<<18, func(th *sim.Thread, a *pmem.Allocator) {
		h := NewHashMap(th, a, 4)
		// Insert enough keys that chains certainly form, then delete every
		// third and verify the rest.
		for k := uint64(0); k < 64; k++ {
			h.Put(th, k, k*2)
		}
		for k := uint64(0); k < 64; k += 3 {
			h.Delete(th, k)
		}
		for k := uint64(0); k < 64; k++ {
			want := uc.NotFound
			if k%3 != 0 {
				want = k * 2
			}
			if got := h.Get(th, k); got != want {
				t.Errorf("Get(%d) = %d, want %d", k, got, want)
			}
		}
	})
}

func TestHashMapResizes(t *testing.T) {
	run(t, 1<<20, func(th *sim.Thread, a *pmem.Allocator) {
		h := NewHashMap(th, a, 4)
		before := h.Buckets(th)
		for k := uint64(0); k < 1000; k++ {
			h.Put(th, k, k)
		}
		if after := h.Buckets(th); after <= before {
			t.Errorf("buckets %d -> %d, expected growth", before, after)
		}
		for k := uint64(0); k < 1000; k++ {
			if got := h.Get(th, k); got != k {
				t.Errorf("Get(%d) = %d after resize", k, got)
			}
		}
		if got := h.Size(th); got != 1000 {
			t.Errorf("Size = %d, want 1000", got)
		}
	})
}

func TestHashMapAgainstModel(t *testing.T) {
	run(t, 1<<22, func(th *sim.Thread, a *pmem.Allocator) {
		h := NewHashMap(th, a, 8)
		model := map[uint64]uint64{}
		rng := th.Rand()
		for i := 0; i < 5000; i++ {
			k := uint64(rng.Intn(300))
			switch rng.Intn(3) {
			case 0:
				v := rng.Uint64()
				_, existed := model[k]
				got := h.Put(th, k, v)
				want := uint64(1)
				if existed {
					want = 0
				}
				if got != want {
					t.Fatalf("Put(%d) = %d, want %d", k, got, want)
				}
				model[k] = v
			case 1:
				_, existed := model[k]
				got := h.Delete(th, k)
				want := uint64(0)
				if existed {
					want = 1
				}
				if got != want {
					t.Fatalf("Delete(%d) = %d, want %d", k, got, want)
				}
				delete(model, k)
			default:
				want, existed := model[k]
				if !existed {
					want = uc.NotFound
				}
				if got := h.Get(th, k); got != want {
					t.Fatalf("Get(%d) = %d, want %d", k, got, want)
				}
			}
		}
		if got := h.Size(th); got != uint64(len(model)) {
			t.Fatalf("Size = %d, model has %d", got, len(model))
		}
	})
}

func TestHashMapDumpRebuilds(t *testing.T) {
	run(t, 1<<20, func(th *sim.Thread, a *pmem.Allocator) {
		h := NewHashMap(th, a, 8)
		for k := uint64(0); k < 200; k++ {
			h.Put(th, k, k+1000)
		}
		var pairs [][2]uint64
		h.Dump(th, func(code, a0, a1 uint64) {
			if code != uc.OpInsert {
				t.Fatalf("Dump emitted code %d", code)
			}
			pairs = append(pairs, [2]uint64{a0, a1})
		})
		if len(pairs) != 200 {
			t.Fatalf("Dump emitted %d pairs, want 200", len(pairs))
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
		for i, p := range pairs {
			if p[0] != uint64(i) || p[1] != uint64(i)+1000 {
				t.Fatalf("pair %d = %v", i, p)
			}
		}
	})
}

func TestHashMapAttach(t *testing.T) {
	run(t, 1<<16, func(th *sim.Thread, a *pmem.Allocator) {
		h := NewHashMap(th, a, 8)
		h.Put(th, 3, 33)
		h2 := AttachHashMap(th, a)
		if got := h2.Get(th, 3); got != 33 {
			t.Errorf("attached Get = %d, want 33", got)
		}
	})
}

func TestHashMapExecuteDispatch(t *testing.T) {
	run(t, 1<<16, func(th *sim.Thread, a *pmem.Allocator) {
		var ds uc.DataStructure = NewHashMap(th, a, 8)
		ds.Execute(th, uc.OpInsert, 9, 90)
		if got := ds.Execute(th, uc.OpGet, 9, 0); got != 90 {
			t.Errorf("Execute(Get) = %d", got)
		}
		if got := ds.Execute(th, uc.OpContains, 9, 0); got != 1 {
			t.Errorf("Execute(Contains) = %d", got)
		}
		if got := ds.Execute(th, uc.OpSize, 0, 0); got != 1 {
			t.Errorf("Execute(Size) = %d", got)
		}
		if got := ds.Execute(th, uc.OpDelete, 9, 0); got != 1 {
			t.Errorf("Execute(Delete) = %d", got)
		}
		if !ds.IsReadOnly(uc.OpGet) || ds.IsReadOnly(uc.OpInsert) {
			t.Error("IsReadOnly misclassifies")
		}
	})
}

// --- RBTree ---

func TestRBTreePutGet(t *testing.T) {
	run(t, 1<<18, func(th *sim.Thread, a *pmem.Allocator) {
		r := NewRBTree(th, a)
		keys := []uint64{50, 20, 80, 10, 30, 70, 90, 25, 35}
		for _, k := range keys {
			if got := r.Put(th, k, k*10); got != 1 {
				t.Errorf("Put(%d) = %d, want 1", k, got)
			}
		}
		for _, k := range keys {
			if got := r.Get(th, k); got != k*10 {
				t.Errorf("Get(%d) = %d, want %d", k, got, k*10)
			}
		}
		if got := r.Get(th, 999); got != uc.NotFound {
			t.Errorf("Get missing = %d", got)
		}
		r.checkInvariants(th)
	})
}

func TestRBTreeSequentialInsertBalanced(t *testing.T) {
	run(t, 1<<20, func(th *sim.Thread, a *pmem.Allocator) {
		r := NewRBTree(th, a)
		for k := uint64(0); k < 1024; k++ {
			r.Put(th, k, k)
		}
		bh := r.checkInvariants(th)
		// A red-black tree of 1024 nodes has black height ≤ ~11.
		if bh > 12 {
			t.Errorf("black height %d suspiciously large", bh)
		}
		if got := r.Size(th); got != 1024 {
			t.Errorf("Size = %d", got)
		}
	})
}

func TestRBTreeDeleteAll(t *testing.T) {
	run(t, 1<<20, func(th *sim.Thread, a *pmem.Allocator) {
		r := NewRBTree(th, a)
		const n = 300
		for k := uint64(0); k < n; k++ {
			r.Put(th, k, k)
		}
		// Delete in a scrambled order, checking invariants as we go.
		for i := uint64(0); i < n; i++ {
			k := (i * 7919) % n
			if got := r.Delete(th, k); got != 1 {
				t.Fatalf("Delete(%d) = %d, want 1", k, got)
			}
			if i%37 == 0 {
				r.checkInvariants(th)
			}
		}
		if got := r.Size(th); got != 0 {
			t.Errorf("Size after deleting all = %d", got)
		}
		r.checkInvariants(th)
	})
}

func TestRBTreeDeleteAbsent(t *testing.T) {
	run(t, 1<<16, func(th *sim.Thread, a *pmem.Allocator) {
		r := NewRBTree(th, a)
		r.Put(th, 1, 1)
		if got := r.Delete(th, 2); got != 0 {
			t.Errorf("Delete absent = %d, want 0", got)
		}
	})
}

func TestRBTreeAgainstModel(t *testing.T) {
	run(t, 1<<22, func(th *sim.Thread, a *pmem.Allocator) {
		r := NewRBTree(th, a)
		model := map[uint64]uint64{}
		rng := th.Rand()
		for i := 0; i < 4000; i++ {
			k := uint64(rng.Intn(250))
			switch rng.Intn(3) {
			case 0:
				v := rng.Uint64()
				_, existed := model[k]
				want := uint64(1)
				if existed {
					want = 0
				}
				if got := r.Put(th, k, v); got != want {
					t.Fatalf("Put(%d) = %d, want %d", k, got, want)
				}
				model[k] = v
			case 1:
				_, existed := model[k]
				want := uint64(0)
				if existed {
					want = 1
				}
				if got := r.Delete(th, k); got != want {
					t.Fatalf("Delete(%d) = %d, want %d", k, got, want)
				}
				delete(model, k)
			default:
				want, existed := model[k]
				if !existed {
					want = uc.NotFound
				}
				if got := r.Get(th, k); got != want {
					t.Fatalf("Get(%d) = %d, want %d", k, got, want)
				}
			}
			if i%500 == 0 {
				r.checkInvariants(th)
			}
		}
		r.checkInvariants(th)
		if got := r.Size(th); got != uint64(len(model)) {
			t.Fatalf("Size = %d, model %d", got, len(model))
		}
	})
}

func TestRBTreeDumpSorted(t *testing.T) {
	run(t, 1<<20, func(th *sim.Thread, a *pmem.Allocator) {
		r := NewRBTree(th, a)
		rng := th.Rand()
		inserted := map[uint64]bool{}
		for i := 0; i < 500; i++ {
			k := rng.Uint64() % 10000
			r.Put(th, k, k)
			inserted[k] = true
		}
		var keys []uint64
		r.Dump(th, func(code, a0, a1 uint64) { keys = append(keys, a0) })
		if len(keys) != len(inserted) {
			t.Fatalf("Dump emitted %d keys, want %d", len(keys), len(inserted))
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Fatalf("Dump not sorted at %d: %d >= %d", i, keys[i-1], keys[i])
			}
		}
	})
}

// --- PQueue ---

func TestPQueueOrdering(t *testing.T) {
	run(t, 1<<18, func(th *sim.Thread, a *pmem.Allocator) {
		p := NewPQueue(th, a)
		input := []uint64{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
		for _, k := range input {
			p.Enqueue(th, k)
		}
		for want := uint64(0); want < 10; want++ {
			if got := p.Min(th); got != want {
				t.Fatalf("Min = %d, want %d", got, want)
			}
			if got := p.DeleteMin(th); got != want {
				t.Fatalf("DeleteMin = %d, want %d", got, want)
			}
		}
		if got := p.DeleteMin(th); got != uc.NotFound {
			t.Errorf("DeleteMin on empty = %d", got)
		}
	})
}

func TestPQueueGrows(t *testing.T) {
	run(t, 1<<20, func(th *sim.Thread, a *pmem.Allocator) {
		p := NewPQueue(th, a)
		for k := uint64(2000); k > 0; k-- {
			p.Enqueue(th, k)
		}
		if got := p.Size(th); got != 2000 {
			t.Fatalf("Size = %d", got)
		}
		for want := uint64(1); want <= 2000; want++ {
			if got := p.DeleteMin(th); got != want {
				t.Fatalf("DeleteMin = %d, want %d", got, want)
			}
		}
	})
}

func TestPQueueDuplicates(t *testing.T) {
	run(t, 1<<16, func(th *sim.Thread, a *pmem.Allocator) {
		p := NewPQueue(th, a)
		for i := 0; i < 5; i++ {
			p.Enqueue(th, 7)
		}
		for i := 0; i < 5; i++ {
			if got := p.DeleteMin(th); got != 7 {
				t.Fatalf("DeleteMin = %d, want 7", got)
			}
		}
	})
}

func TestPQueueAgainstModel(t *testing.T) {
	run(t, 1<<20, func(th *sim.Thread, a *pmem.Allocator) {
		p := NewPQueue(th, a)
		var model []uint64
		rng := th.Rand()
		for i := 0; i < 3000; i++ {
			if len(model) == 0 || rng.Intn(2) == 0 {
				k := rng.Uint64() % 1000
				p.Enqueue(th, k)
				model = append(model, k)
				sort.Slice(model, func(a, b int) bool { return model[a] < model[b] })
			} else {
				if got := p.DeleteMin(th); got != model[0] {
					t.Fatalf("DeleteMin = %d, want %d", got, model[0])
				}
				model = model[1:]
			}
		}
	})
}

func TestPQueueDumpRebuild(t *testing.T) {
	run(t, 1<<18, func(th *sim.Thread, a *pmem.Allocator) {
		p := NewPQueue(th, a)
		for _, k := range []uint64{9, 4, 6, 2, 8} {
			p.Enqueue(th, k)
		}
		p2 := NewPQueue(th, a) // second instance in same heap (tests only)
		p.Dump(th, func(code, a0, a1 uint64) { p2.Execute(th, code, a0, a1) })
		for _, want := range []uint64{2, 4, 6, 8, 9} {
			if got := p2.DeleteMin(th); got != want {
				t.Fatalf("rebuilt DeleteMin = %d, want %d", got, want)
			}
		}
	})
}

// --- Stack ---

func TestStackLIFO(t *testing.T) {
	run(t, 1<<16, func(th *sim.Thread, a *pmem.Allocator) {
		s := NewStack(th, a)
		for v := uint64(1); v <= 5; v++ {
			s.Push(th, v)
		}
		if got := s.Top(th); got != 5 {
			t.Errorf("Top = %d, want 5", got)
		}
		for want := uint64(5); want >= 1; want-- {
			if got := s.Pop(th); got != want {
				t.Fatalf("Pop = %d, want %d", got, want)
			}
		}
		if got := s.Pop(th); got != uc.NotFound {
			t.Errorf("Pop empty = %d", got)
		}
		if got := s.Top(th); got != uc.NotFound {
			t.Errorf("Top empty = %d", got)
		}
	})
}

func TestStackDumpPreservesOrder(t *testing.T) {
	run(t, 1<<16, func(th *sim.Thread, a *pmem.Allocator) {
		s := NewStack(th, a)
		for v := uint64(1); v <= 10; v++ {
			s.Push(th, v)
		}
		s2 := NewStack(th, a)
		s.Dump(th, func(code, a0, a1 uint64) { s2.Execute(th, code, a0, a1) })
		for want := uint64(10); want >= 1; want-- {
			if got := s2.Pop(th); got != want {
				t.Fatalf("rebuilt Pop = %d, want %d", got, want)
			}
		}
	})
}

func TestStackSize(t *testing.T) {
	run(t, 1<<16, func(th *sim.Thread, a *pmem.Allocator) {
		s := NewStack(th, a)
		s.Push(th, 1)
		s.Push(th, 2)
		s.Pop(th)
		if got := s.Size(th); got != 1 {
			t.Errorf("Size = %d, want 1", got)
		}
	})
}

// --- Queue ---

func TestQueueFIFO(t *testing.T) {
	run(t, 1<<16, func(th *sim.Thread, a *pmem.Allocator) {
		q := NewQueue(th, a)
		for v := uint64(1); v <= 5; v++ {
			q.Enqueue(th, v)
		}
		if got := q.Peek(th); got != 1 {
			t.Errorf("Peek = %d, want 1", got)
		}
		for want := uint64(1); want <= 5; want++ {
			if got := q.Dequeue(th); got != want {
				t.Fatalf("Dequeue = %d, want %d", got, want)
			}
		}
		if got := q.Dequeue(th); got != uc.NotFound {
			t.Errorf("Dequeue empty = %d", got)
		}
	})
}

func TestQueueInterleavedEnqDeq(t *testing.T) {
	run(t, 1<<18, func(th *sim.Thread, a *pmem.Allocator) {
		q := NewQueue(th, a)
		var model []uint64
		rng := th.Rand()
		for i := 0; i < 2000; i++ {
			if len(model) == 0 || rng.Intn(2) == 0 {
				v := rng.Uint64()
				q.Enqueue(th, v)
				model = append(model, v)
			} else {
				if got := q.Dequeue(th); got != model[0] {
					t.Fatalf("Dequeue = %d, want %d", got, model[0])
				}
				model = model[1:]
			}
		}
		if got := q.Size(th); got != uint64(len(model)) {
			t.Fatalf("Size = %d, model %d", got, len(model))
		}
	})
}

func TestQueueEmptyAfterDrainReusable(t *testing.T) {
	run(t, 1<<16, func(th *sim.Thread, a *pmem.Allocator) {
		q := NewQueue(th, a)
		q.Enqueue(th, 1)
		q.Dequeue(th)
		q.Enqueue(th, 2) // tail must be rebuilt correctly
		if got := q.Dequeue(th); got != 2 {
			t.Errorf("Dequeue = %d, want 2", got)
		}
	})
}

func TestQueueDumpPreservesOrder(t *testing.T) {
	run(t, 1<<16, func(th *sim.Thread, a *pmem.Allocator) {
		q := NewQueue(th, a)
		for v := uint64(1); v <= 8; v++ {
			q.Enqueue(th, v)
		}
		q2 := NewQueue(th, a)
		q.Dump(th, func(code, a0, a1 uint64) { q2.Execute(th, code, a0, a1) })
		for want := uint64(1); want <= 8; want++ {
			if got := q2.Dequeue(th); got != want {
				t.Fatalf("rebuilt Dequeue = %d, want %d", got, want)
			}
		}
	})
}

// --- Cross-cutting: uc.Clone across heaps ---

func TestCloneAcrossHeaps(t *testing.T) {
	sch := sim.New(1)
	sys := nvm.NewSystem(sch, nvm.Config{})
	m1 := sys.NewMemory("src", nvm.Volatile, 0, 1<<20)
	m2 := sys.NewMemory("dst", nvm.NVM, 0, 1<<20)
	sch.Spawn("t", 0, 0, func(th *sim.Thread) {
		a1 := pmem.New(th, m1)
		a2 := pmem.New(th, m2)
		src := NewHashMap(th, a1, 8)
		for k := uint64(0); k < 100; k++ {
			src.Put(th, k, k*3)
		}
		dst := NewHashMap(th, a2, 8)
		uc.Clone(th, src, dst)
		for k := uint64(0); k < 100; k++ {
			if got := dst.Get(th, k); got != k*3 {
				t.Errorf("cloned Get(%d) = %d, want %d", k, got, k*3)
			}
		}
		if got := dst.Size(th); got != 100 {
			t.Errorf("cloned Size = %d", got)
		}
	})
	sch.Run()
}

func TestAllStructuresImplementDataStructure(t *testing.T) {
	var _ uc.DataStructure = (*HashMap)(nil)
	var _ uc.DataStructure = (*RBTree)(nil)
	var _ uc.DataStructure = (*PQueue)(nil)
	var _ uc.DataStructure = (*Stack)(nil)
	var _ uc.DataStructure = (*Queue)(nil)
}
