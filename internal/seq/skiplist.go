package seq

import (
	"prepuc/internal/pmem"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// SkipList is a sorted map implemented as a skip list. It extends the
// paper's evaluated structures with another classic universal-construction
// input; the harness's extension experiment compares the PUCs over it.
//
// Tower heights come from a deterministic xorshift generator whose state is
// part of the structure (stored in the header), so replicas built by
// replaying the same log converge to identical shapes — a property the
// universal constructions rely on only for determinism of responses, but
// one that also makes cross-replica comparison in tests exact.
//
// Heap layout:
//
//	header (4 words): [0] head node, [1] size, [2] rng state
//	node: [0] key, [1] value, [2] level count, [3…3+levels) next pointers
type SkipList struct {
	a   *pmem.Allocator
	hdr uint64
}

const (
	slHead   = 0
	slSize   = 1
	slRng    = 2
	slHdrLen = 4

	slnKey   = 0
	slnVal   = 1
	slnLvl   = 2
	slnNext0 = 3

	slMaxLevel = 20
)

// NewSkipList creates an empty skip list and records it in the heap's root
// slot.
func NewSkipList(t *sim.Thread, a *pmem.Allocator) *SkipList {
	s := &SkipList{a: a}
	s.hdr = a.Alloc(t, slHdrLen)
	m := a.Memory()
	head := a.Alloc(t, slnNext0+slMaxLevel)
	m.Store(t, head+slnLvl, slMaxLevel)
	m.Store(t, s.hdr+slHead, head)
	m.Store(t, s.hdr+slSize, 0)
	m.Store(t, s.hdr+slRng, 0x243F6A8885A308D3)
	a.SetRoot(t, rootSlot, s.hdr)
	return s
}

// AttachSkipList re-opens a skip list previously created in this heap.
func AttachSkipList(t *sim.Thread, a *pmem.Allocator) *SkipList {
	return &SkipList{a: a, hdr: a.Root(t, rootSlot)}
}

// SkipListFactory is the uc.Factory for skip lists.
func SkipListFactory() uc.Factory {
	return func(t *sim.Thread, a *pmem.Allocator) uc.DataStructure {
		return NewSkipList(t, a)
	}
}

// SkipListAttacher is the uc.Attacher for SkipListFactory heaps.
func SkipListAttacher(t *sim.Thread, a *pmem.Allocator) uc.DataStructure {
	return AttachSkipList(t, a)
}

// Size returns the number of keys.
func (s *SkipList) Size(t *sim.Thread) uint64 {
	return s.a.Memory().Load(t, s.hdr+slSize)
}

// randLevel draws a tower height from the structure's deterministic rng.
func (s *SkipList) randLevel(t *sim.Thread) uint64 {
	m := s.a.Memory()
	x := m.Load(t, s.hdr+slRng)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	m.Store(t, s.hdr+slRng, x)
	lvl := uint64(1)
	for x&3 == 0 && lvl < slMaxLevel { // p = 1/4
		lvl++
		x >>= 2
	}
	return lvl
}

// next returns node n's level-l successor.
func (s *SkipList) next(t *sim.Thread, n, l uint64) uint64 {
	return s.a.Memory().Load(t, n+slnNext0+l)
}

// findPreds fills preds with the last node before key at every level and
// returns the candidate node at level 0 (which may or may not hold key).
func (s *SkipList) findPreds(t *sim.Thread, key uint64, preds *[slMaxLevel]uint64) uint64 {
	m := s.a.Memory()
	n := m.Load(t, s.hdr+slHead)
	for l := int(slMaxLevel) - 1; l >= 0; l-- {
		for {
			nx := s.next(t, n, uint64(l))
			if nx == 0 || m.Load(t, nx+slnKey) >= key {
				break
			}
			n = nx
		}
		preds[l] = n
	}
	return s.next(t, n, 0)
}

// Get returns the value for key, or uc.NotFound.
func (s *SkipList) Get(t *sim.Thread, key uint64) uint64 {
	var preds [slMaxLevel]uint64
	n := s.findPreds(t, key, &preds)
	m := s.a.Memory()
	if n != 0 && m.Load(t, n+slnKey) == key {
		return m.Load(t, n+slnVal)
	}
	return uc.NotFound
}

// Contains reports (as 0/1) whether key is present.
func (s *SkipList) Contains(t *sim.Thread, key uint64) uint64 {
	if s.Get(t, key) == uc.NotFound {
		return 0
	}
	return 1
}

// Put inserts or updates key. Returns 1 if newly inserted, 0 if replaced.
func (s *SkipList) Put(t *sim.Thread, key, val uint64) uint64 {
	m := s.a.Memory()
	var preds [slMaxLevel]uint64
	n := s.findPreds(t, key, &preds)
	if n != 0 && m.Load(t, n+slnKey) == key {
		m.Store(t, n+slnVal, val)
		return 0
	}
	lvl := s.randLevel(t)
	nn := s.a.Alloc(t, slnNext0+lvl)
	m.Store(t, nn+slnKey, key)
	m.Store(t, nn+slnVal, val)
	m.Store(t, nn+slnLvl, lvl)
	for l := uint64(0); l < lvl; l++ {
		m.Store(t, nn+slnNext0+l, s.next(t, preds[l], l))
		m.Store(t, preds[l]+slnNext0+l, nn)
	}
	m.Store(t, s.hdr+slSize, m.Load(t, s.hdr+slSize)+1)
	return 1
}

// Delete removes key, returning 1 if it was present.
func (s *SkipList) Delete(t *sim.Thread, key uint64) uint64 {
	m := s.a.Memory()
	var preds [slMaxLevel]uint64
	n := s.findPreds(t, key, &preds)
	if n == 0 || m.Load(t, n+slnKey) != key {
		return 0
	}
	lvl := m.Load(t, n+slnLvl)
	for l := uint64(0); l < lvl; l++ {
		if s.next(t, preds[l], l) == n {
			m.Store(t, preds[l]+slnNext0+l, s.next(t, n, l))
		}
	}
	s.a.Free(t, n)
	m.Store(t, s.hdr+slSize, m.Load(t, s.hdr+slSize)-1)
	return 1
}

// Execute dispatches an encoded operation.
func (s *SkipList) Execute(t *sim.Thread, code, a0, a1 uint64) uint64 {
	switch code {
	case uc.OpGet:
		return s.Get(t, a0)
	case uc.OpContains:
		return s.Contains(t, a0)
	case uc.OpInsert:
		return s.Put(t, a0, a1)
	case uc.OpDelete:
		return s.Delete(t, a0)
	case uc.OpSize:
		return s.Size(t)
	default:
		return unknownOp("skiplist", code)
	}
}

// IsReadOnly implements uc.DataStructure.
func (s *SkipList) IsReadOnly(code uint64) bool {
	return code == uc.OpGet || code == uc.OpContains || code == uc.OpSize
}

// Dump emits one insert per key in ascending order.
func (s *SkipList) Dump(t *sim.Thread, emit func(code, a0, a1 uint64)) {
	m := s.a.Memory()
	for n := s.next(t, m.Load(t, s.hdr+slHead), 0); n != 0; n = s.next(t, n, 0) {
		emit(uc.OpInsert, m.Load(t, n+slnKey), m.Load(t, n+slnVal))
	}
}
