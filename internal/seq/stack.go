package seq

import (
	"prepuc/internal/pmem"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// Stack is a linked LIFO stack of word values.
//
// Heap layout:
//
//	header (2 words): [0] top offset, [1] size
//	node   (2 words): [0] value, [1] next
type Stack struct {
	a   *pmem.Allocator
	hdr uint64
}

const (
	stTop    = 0
	stSize   = 1
	stHdrLen = 2

	snVal   = 0
	snNext  = 1
	snWords = 2
)

// NewStack creates an empty stack and records it in the heap's root slot.
func NewStack(t *sim.Thread, a *pmem.Allocator) *Stack {
	s := &Stack{a: a}
	s.hdr = a.Alloc(t, stHdrLen)
	m := a.Memory()
	m.Store(t, s.hdr+stTop, 0)
	m.Store(t, s.hdr+stSize, 0)
	a.SetRoot(t, rootSlot, s.hdr)
	return s
}

// AttachStack re-opens a stack previously created in this heap.
func AttachStack(t *sim.Thread, a *pmem.Allocator) *Stack {
	return &Stack{a: a, hdr: a.Root(t, rootSlot)}
}

// StackFactory is the uc.Factory for stacks.
func StackFactory() uc.Factory {
	return func(t *sim.Thread, a *pmem.Allocator) uc.DataStructure {
		return NewStack(t, a)
	}
}

// StackAttacher is the uc.Attacher for StackFactory heaps.
func StackAttacher(t *sim.Thread, a *pmem.Allocator) uc.DataStructure {
	return AttachStack(t, a)
}

// Size returns the number of stacked values.
func (s *Stack) Size(t *sim.Thread) uint64 {
	return s.a.Memory().Load(t, s.hdr+stSize)
}

// Push adds a value. Always returns 1.
func (s *Stack) Push(t *sim.Thread, val uint64) uint64 {
	m := s.a.Memory()
	n := s.a.Alloc(t, snWords)
	m.Store(t, n+snVal, val)
	m.Store(t, n+snNext, m.Load(t, s.hdr+stTop))
	m.Store(t, s.hdr+stTop, n)
	m.Store(t, s.hdr+stSize, m.Load(t, s.hdr+stSize)+1)
	return 1
}

// Pop removes and returns the top value, or uc.NotFound when empty.
func (s *Stack) Pop(t *sim.Thread) uint64 {
	m := s.a.Memory()
	top := m.Load(t, s.hdr+stTop)
	if top == 0 {
		return uc.NotFound
	}
	val := m.Load(t, top+snVal)
	m.Store(t, s.hdr+stTop, m.Load(t, top+snNext))
	s.a.Free(t, top)
	m.Store(t, s.hdr+stSize, m.Load(t, s.hdr+stSize)-1)
	return val
}

// Top returns the top value without removing it, or uc.NotFound.
func (s *Stack) Top(t *sim.Thread) uint64 {
	m := s.a.Memory()
	top := m.Load(t, s.hdr+stTop)
	if top == 0 {
		return uc.NotFound
	}
	return m.Load(t, top+snVal)
}

// Execute dispatches an encoded operation.
func (s *Stack) Execute(t *sim.Thread, code, a0, a1 uint64) uint64 {
	switch code {
	case uc.OpPush:
		return s.Push(t, a0)
	case uc.OpPop:
		return s.Pop(t)
	case uc.OpTop, uc.OpPeek:
		return s.Top(t)
	case uc.OpSize:
		return s.Size(t)
	default:
		return unknownOp("stack", code)
	}
}

// IsReadOnly implements uc.DataStructure.
func (s *Stack) IsReadOnly(code uint64) bool {
	return code == uc.OpTop || code == uc.OpPeek || code == uc.OpSize
}

// Dump emits pushes from the bottom of the stack upward so a replay
// reconstructs the same order.
func (s *Stack) Dump(t *sim.Thread, emit func(code, a0, a1 uint64)) {
	m := s.a.Memory()
	var vals []uint64
	for n := m.Load(t, s.hdr+stTop); n != 0; n = m.Load(t, n+snNext) {
		vals = append(vals, m.Load(t, n+snVal))
	}
	for i := len(vals) - 1; i >= 0; i-- {
		emit(uc.OpPush, vals[i], 0)
	}
}
