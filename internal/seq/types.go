package seq

import "prepuc/internal/uc"

// ObjectType descriptors for every sequential structure in this package:
// the catalog (and any other builder) names a structure once and gets its
// factory, attacher and checker model together instead of threading the
// pieces around as parallel arguments.

// HashMapType describes the resizable hashmap with the given initial bucket
// count.
func HashMapType(initialBuckets uint64) uc.ObjectType {
	return uc.ObjectType{Name: "hashmap", New: HashMapFactory(initialBuckets), Attach: HashMapAttacher, Model: uc.ModelSet}
}

// RBTreeType describes the red-black tree set.
func RBTreeType() uc.ObjectType {
	return uc.ObjectType{Name: "rbtree", New: RBTreeFactory(), Attach: RBTreeAttacher, Model: uc.ModelSet}
}

// SkipListType describes the skip-list set.
func SkipListType() uc.ObjectType {
	return uc.ObjectType{Name: "skiplist", New: SkipListFactory(), Attach: SkipListAttacher, Model: uc.ModelSet}
}

// ListSetType describes the sorted linked-list set.
func ListSetType() uc.ObjectType {
	return uc.ObjectType{Name: "listset", New: ListSetFactory(), Attach: ListSetAttacher, Model: uc.ModelSet}
}

// QueueType describes the FIFO queue.
func QueueType() uc.ObjectType {
	return uc.ObjectType{Name: "queue", New: QueueFactory(), Attach: QueueAttacher, Model: uc.ModelQueue}
}

// StackType describes the stack.
func StackType() uc.ObjectType {
	return uc.ObjectType{Name: "stack", New: StackFactory(), Attach: StackAttacher, Model: uc.ModelStack}
}

// PQueueType describes the priority queue.
func PQueueType() uc.ObjectType {
	return uc.ObjectType{Name: "pqueue", New: PQueueFactory(), Attach: PQueueAttacher, Model: uc.ModelPQueue}
}
