// Package shard routes operations across S fully independent PREP-UC
// instances by partitioning the key space. One universal construction is one
// combiner pipeline — its throughput ceiling is structural — so production
// scale means many: each shard owns its own replicas, oplog, persistent
// generations, descriptor region and recovery state machine, and the router
// is the only thing the shards share.
//
// The routing invariant: every operation on key k is executed by shard
// Route(k) and by no other shard, for the entire lifetime of the deployment
// including crashes and recoveries. Route is a pure function of (policy,
// shards, keys) — no routing table, no rebalancing epoch — so a recovered
// shard resumes exactly the key partition it owned before the crash, and
// cross-shard histories compose without any global coordination (see
// DESIGN.md §14 and linearize.CheckComposition).
package shard

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"prepuc/internal/openloop"
	"prepuc/internal/uc"
)

// Policy selects how keys map to shards.
type Policy int

const (
	// Hash spreads keys by a splitmix64 bit-mix modulo the shard count:
	// adjacent (and therefore Zipf-hot) keys land on different shards, so
	// load balances even under heavy skew.
	Hash Policy = iota
	// Range assigns contiguous key intervals of ⌈Keys/S⌉ to each shard.
	// Under Zipfian skew the low-key range shard absorbs most of the mass —
	// the hot-shard imbalance Range exists to make measurable.
	Range
)

// String returns the -route spelling of the policy.
func (p Policy) String() string {
	if p == Range {
		return "range"
	}
	return "hash"
}

// ParsePolicy parses a -route flag value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "hash":
		return Hash, nil
	case "range":
		return Range, nil
	default:
		return 0, fmt.Errorf("shard: unknown routing policy %q (want hash or range)", s)
	}
}

// Router maps keys in [0, Keys) to shard indexes in [0, Shards). It is pure
// host-side state shared by producers: Route costs no virtual time (the
// simulated machine would compute it in the client library, off the
// measured server path).
type Router struct {
	policy Policy
	shards int
	keys   uint64
	per    uint64 // Range interval width ⌈keys/shards⌉
}

// NewRouter builds a router over a key space of keys entries.
func NewRouter(policy Policy, shards int, keys uint64) (*Router, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("shard: shard count must be positive, got %d", shards)
	}
	if keys == 0 {
		return nil, fmt.Errorf("shard: key-space size must be positive")
	}
	return &Router{
		policy: policy,
		shards: shards,
		keys:   keys,
		per:    (keys + uint64(shards) - 1) / uint64(shards),
	}, nil
}

// Shards returns the shard count S.
func (r *Router) Shards() int { return r.shards }

// Policy returns the routing policy.
func (r *Router) Policy() Policy { return r.policy }

// Route maps a key to its owning shard. Keys at or beyond the declared key
// space are legal (hash routes them like any other; range clamps them to
// the last shard) so callers need not range-check hostile inputs.
func (r *Router) Route(key uint64) int {
	if r.policy == Range {
		s := key / r.per
		if s >= uint64(r.shards) {
			return r.shards - 1
		}
		return int(s)
	}
	return int(mix64(key) % uint64(r.shards))
}

// RouteOp routes an operation by its key operand. Every uc set/map/queue
// operation carries its key in A0 (uc.Get/Insert/Delete constructors), so
// this is the routing hook Client.Submit-level dispatch uses.
func (r *Router) RouteOp(op uc.Op) int { return r.Route(op.A0) }

// Partition splits a time-sorted arrival schedule into per-shard schedules,
// routing each arrival by its operation's key. Order within a shard stays
// time-sorted (the split is stable), so each shard sees a valid open-loop
// schedule — the same schedule a router in front of S independent machines
// would deliver.
func (r *Router) Partition(arrivals []openloop.Arrival) [][]openloop.Arrival {
	per := make([][]openloop.Arrival, r.shards)
	for _, a := range arrivals {
		s := r.RouteOp(a.Op)
		per[s] = append(per[s], a)
	}
	return per
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection on uint64,
// so hash routing is a fixed pseudo-random spread with zero state.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ParseSet parses a comma-separated shard subset spec ("0,2") against the
// shard count: every index must be in range and distinct. The empty spec
// parses to nil (no shards selected). The result is sorted.
func ParseSet(spec string, shards int) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	seen := make(map[int]bool)
	var out []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("shard: bad shard index %q: %v", f, err)
		}
		if n < 0 || n >= shards {
			return nil, fmt.Errorf("shard: shard index %d out of range [0,%d)", n, shards)
		}
		if seen[n] {
			return nil, fmt.Errorf("shard: duplicate shard index %d", n)
		}
		seen[n] = true
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}
