package shard

import (
	"math"
	"testing"

	"prepuc/internal/openloop"
	"prepuc/internal/uc"
)

func TestRouteInRange(t *testing.T) {
	for _, pol := range []Policy{Hash, Range} {
		r, err := NewRouter(pol, 5, 1000)
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(0); k < 2048; k++ { // include keys beyond the key space
			s := r.Route(k)
			if s < 0 || s >= 5 {
				t.Fatalf("%v: Route(%d) = %d out of range", pol, k, s)
			}
		}
	}
}

func TestRangeIntervals(t *testing.T) {
	r, err := NewRouter(Range, 4, 1000) // per = 250
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		key  uint64
		want int
	}{{0, 0}, {249, 0}, {250, 1}, {499, 1}, {500, 2}, {750, 3}, {999, 3}, {5000, 3}}
	for _, c := range cases {
		if got := r.Route(c.key); got != c.want {
			t.Errorf("Range Route(%d) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestHashSpreadsAdjacentKeys(t *testing.T) {
	r, _ := NewRouter(Hash, 8, 1<<16)
	counts := make([]int, 8)
	for k := uint64(0); k < 1<<16; k++ {
		counts[r.Route(k)]++
	}
	per := float64(1<<16) / 8
	for s, n := range counts {
		if math.Abs(float64(n)-per)/per > 0.05 {
			t.Errorf("hash shard %d holds %d keys, want ~%.0f", s, n, per)
		}
	}
}

func TestRouteOpUsesKeyOperand(t *testing.T) {
	r, _ := NewRouter(Hash, 4, 1024)
	for k := uint64(0); k < 64; k++ {
		want := r.Route(k)
		for _, op := range []uc.Op{uc.Get(k), uc.Insert(k, 7), uc.Delete(k)} {
			if got := r.RouteOp(op); got != want {
				t.Fatalf("RouteOp(%v) = %d, want Route(%d) = %d", op, got, k, want)
			}
		}
	}
}

func TestPartitionConservesAndOrders(t *testing.T) {
	arr, err := openloop.Generate(openloop.Config{
		Clients: 1000, Keys: 1 << 10, KeySkew: 1.2, ReadPct: 50,
		Rate: 1e6, DurationNS: 2_000_000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := NewRouter(Hash, 4, 1<<10)
	per := r.Partition(arr)
	total := 0
	for s, lst := range per {
		total += len(lst)
		last := uint64(0)
		for _, a := range lst {
			if r.RouteOp(a.Op) != s {
				t.Fatalf("arrival for key %d landed on shard %d, routes to %d",
					a.Op.A0, s, r.RouteOp(a.Op))
			}
			if a.At < last {
				t.Fatalf("shard %d schedule not time-sorted", s)
			}
			last = a.At
		}
	}
	if total != len(arr) {
		t.Fatalf("partition lost arrivals: %d in, %d out", len(arr), total)
	}
}

func TestParseSet(t *testing.T) {
	cases := []struct {
		spec   string
		shards int
		want   []int
		err    bool
	}{
		{"", 4, nil, false},
		{"0", 4, []int{0}, false},
		{"2,0", 4, []int{0, 2}, false},
		{" 1 , 3 ", 4, []int{1, 3}, false},
		{"4", 4, nil, true},
		{"-1", 4, nil, true},
		{"1,1", 4, nil, true},
		{"x", 4, nil, true},
	}
	for _, c := range cases {
		got, err := ParseSet(c.spec, c.shards)
		if (err != nil) != c.err {
			t.Errorf("ParseSet(%q): err = %v, want err=%v", c.spec, err, c.err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("ParseSet(%q) = %v, want %v", c.spec, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParseSet(%q) = %v, want %v", c.spec, got, c.want)
				break
			}
		}
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, pol := range []Policy{Hash, Range} {
		got, err := ParsePolicy(pol.String())
		if err != nil || got != pol {
			t.Errorf("ParsePolicy(%q) = %v, %v", pol.String(), got, err)
		}
	}
	if _, err := ParsePolicy("rendezvous"); err == nil {
		t.Error("ParsePolicy accepted unknown policy")
	}
}

// zipfMass returns the analytic probability mass of each shard's key
// partition under the generator's Zipf law: openloop draws keys with
// P(k) ∝ (1+k)^(−s) over [0, Keys) (math/rand.NewZipf with v=1), so a
// shard's expected share of the op stream is the sum of the pmf over the
// keys it owns.
func zipfMass(r *Router, keys uint64, skew float64) []float64 {
	mass := make([]float64, r.Shards())
	total := 0.0
	for k := uint64(0); k < keys; k++ {
		p := math.Pow(float64(1+k), -skew)
		mass[r.Route(k)] += p
		total += p
	}
	for s := range mass {
		mass[s] /= total
	}
	return mass
}

// TestRoutingMatchesZipfMass is the KeySkew×routing interaction check: the
// router's observed per-shard op counts over a skewed open-loop schedule
// must match the analytic Zipf mass of each shard's key partition, for both
// policies at two seeds. Range routing concentrates the hot head keys on
// shard 0 (the measurable hot-shard imbalance); hash routing spreads them —
// both are predicted by the same partition-mass computation.
func TestRoutingMatchesZipfMass(t *testing.T) {
	const (
		keys = uint64(1 << 10)
		skew = 1.3
	)
	for _, pol := range []Policy{Hash, Range} {
		for _, seed := range []int64{11, 12} {
			arr, err := openloop.Generate(openloop.Config{
				Clients: 5000, Keys: keys, KeySkew: skew, ReadPct: 50,
				Rate: 4e6, DurationNS: 10_000_000, ThinkNS: 10_000, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			r, _ := NewRouter(pol, 4, keys)
			counts := make([]uint64, 4)
			for _, a := range arr {
				counts[r.RouteOp(a.Op)]++
			}
			want := zipfMass(r, keys, skew)
			for s := range counts {
				obs := float64(counts[s]) / float64(len(arr))
				if math.Abs(obs-want[s]) > 0.02 {
					t.Errorf("%v seed %d: shard %d observed share %.4f, Zipf partition mass %.4f",
						pol, seed, s, obs, want[s])
				}
			}
			if pol == Range {
				// Sanity: the skew is real — the head-key shard dominates.
				if counts[0] < 2*counts[3] {
					t.Errorf("range seed %d: expected hot shard 0 (%v)", seed, counts)
				}
			}
		}
	}
}
