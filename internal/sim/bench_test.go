package sim

import "testing"

// benchSteps runs one scheduler to completion with the given thread count.
// The cost mix mirrors the memory model — mostly cheap (cache-hit) steps
// with occasional expensive (NVM/coherence-miss) ones — which is what gives
// the run-ahead fast path its hits: after a thread pays a big step, the
// minimum thread issues a run of cheap steps without a single handoff.
func benchSteps(b *testing.B, threads int, runahead bool) {
	b.ReportAllocs()
	for iter := 0; iter < b.N; iter += threads * 1000 {
		b.StopTimer()
		s := New(1)
		s.SetRunAhead(runahead)
		for i := 0; i < threads; i++ {
			s.Spawn("w", i%2, 0, func(t *Thread) {
				rng := t.Rand()
				for j := 0; j < 1000; j++ {
					c := uint64(rng.Intn(4)) + 1
					if rng.Intn(16) == 0 {
						c = 300 // an NVM fence / remote-coherence-scale step
					}
					t.Step(c)
				}
			})
		}
		b.StartTimer()
		s.Run()
	}
}

// BenchmarkSimStep is the dispatch-cost benchmark the CI smoke test guards:
// ns reported per Step, 8 simulated threads, run-ahead on (the default).
func BenchmarkSimStep(b *testing.B) { benchSteps(b, 8, true) }

// BenchmarkSimStepReference measures the same workload through the
// full-reinsertion reference dispatch, for before/after comparisons.
func BenchmarkSimStepReference(b *testing.B) { benchSteps(b, 8, false) }
