package sim

// Costs is the virtual-time latency model, in nanoseconds per event. It
// stands in for the memory hierarchy of the paper's evaluation machine
// (2-socket Xeon Gold 5220R + Optane DCPMM). Only the *relative* magnitudes
// matter for reproducing the shape of the evaluation; see DESIGN.md §1.
type Costs struct {
	// LocalAccess is a load/store/CAS on a line already in the caller's
	// cache (own or shared state) — an L1/L2 hit, amortized.
	LocalAccess uint64
	// RemoteAccess is retained for compatibility with fixed-distance cost
	// accounting (interleaved structures' cold misses); the dynamic
	// coherence costs below dominate in practice.
	RemoteAccess uint64
	// CoherenceLocal is the extra cost of acquiring a line last written by
	// another thread on the same NUMA node (an L1-to-L1/L2 transfer).
	// CoherenceRemote is the same across sockets. These model the MESI
	// traffic that makes contended locks slow and per-node replicas fast —
	// the effect node replication exists to exploit.
	CoherenceLocal, CoherenceRemote uint64
	// NVMStoreExtra is the additional cost of a store whose target memory is
	// non-volatile (Optane write-combining buffers absorb part of the
	// latency; the rest surfaces at flush time).
	NVMStoreExtra uint64
	// NVMLoadExtra is the additional cost of a load from non-volatile
	// memory (Optane reads are ~2-3x DRAM).
	NVMLoadExtra uint64
	// FlushLine is issuing an asynchronous write-back (CLWB/CLFLUSHOPT).
	FlushLine uint64
	// FlushSync is a blocking flush (CLFLUSH) of one line.
	FlushSync uint64
	// FlushCheck is the cached per-line state lookup of a FliT-style tracked
	// flush: when elision finds the line clean (or already pending on this
	// thread) the write-back is skipped and only this check is charged.
	FlushCheck uint64
	// Fence is an SFENCE draining all pending asynchronous flushes.
	// Charged once per fence plus FencePerPending for each drained line.
	Fence           uint64
	FencePerPending uint64
	// WBINVDBase is the fixed cost of the privileged whole-cache write-back
	// (issued via a syscall in the paper); WBINVDPerLine is added for each
	// dirty line written back.
	WBINVDBase    uint64
	WBINVDPerLine uint64
	// SpinIter is one iteration of a busy-wait loop (a PAUSE plus a re-read).
	SpinIter uint64
	// OpBase is fixed per-operation overhead outside shared memory
	// (argument marshalling, branch logic) charged once per ExecuteConcurrent.
	OpBase uint64
}

// DefaultCosts returns the calibrated model used by the benchmark harness.
// Values are loosely based on published Optane DCPMM and Xeon measurements:
// DRAM-ish access ~15ns locally, ~120ns across sockets, CLWB+SFENCE to
// Optane ~500ns effective, CLFLUSH ~400ns, WBINVD hundreds of microseconds.
func DefaultCosts() Costs {
	return Costs{
		LocalAccess:     15,
		RemoteAccess:    120,
		CoherenceLocal:  45,
		CoherenceRemote: 130,
		NVMStoreExtra:   60,
		NVMLoadExtra:    30,
		FlushLine:       40,
		FlushSync:       400,
		FlushCheck:      15,
		Fence:           120,
		FencePerPending: 350,
		WBINVDBase:      150_000,
		WBINVDPerLine:   40,
		SpinIter:        12,
		OpBase:          30,
	}
}

// ZeroCosts returns an all-zero model; unit tests use it so logic is
// exercised without virtual-time noise. The scheduler still charges its
// 1ns-per-event floor, so scheduling degenerates to fair round-robin.
func ZeroCosts() Costs { return Costs{} }

// UnitCosts charges one nanosecond per event regardless of kind; tests use
// it when they need clocks to advance deterministically.
func UnitCosts() Costs {
	return Costs{
		LocalAccess: 1, RemoteAccess: 1, CoherenceLocal: 1, CoherenceRemote: 1,
		NVMStoreExtra: 1, NVMLoadExtra: 1,
		FlushLine: 1, FlushSync: 1, FlushCheck: 1, Fence: 1, FencePerPending: 1,
		WBINVDBase: 1, WBINVDPerLine: 1, SpinIter: 1, OpBase: 1,
	}
}
