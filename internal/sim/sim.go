// Package sim provides a deterministic virtual-time scheduler for simulated
// threads.
//
// The reproduction of PREP-UC needs scaling curves for up to ~100 hardware
// threads, crash injection at adversarial points, and a latency model for
// (simulated) non-volatile memory. Real goroutine parallelism cannot supply
// any of these portably, so sim executes the real algorithm code on simulated
// threads under a discrete-event regime:
//
//   - Every simulated thread owns a virtual clock, in nanoseconds. The clock
//     models the time a dedicated hardware thread would have consumed.
//   - Each shared-memory access calls Thread.Step(cost), which advances the
//     clock and then hands control to the thread with the minimum clock.
//     Exactly one simulated thread executes at any real instant, so all
//     shared state touched between Step calls is free of data races by
//     construction, and compare-and-swap is trivially atomic.
//   - Throughput is measured as operations per virtual second, which is
//     independent of the host CPU count and fully reproducible from a seed.
//
// A crash (modelling a power failure) freezes the scheduler: every
// subsequent Step panics with a value recognized by Crashed, unwinding each
// simulated thread out of whatever operation it was executing — so crashes
// land mid-operation, as they do on hardware.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
)

// Crash is the panic value raised by Step once the scheduler is frozen.
// Simulated threads are unwound with it; Spawn's wrapper recovers it.
type Crash struct{}

func (Crash) Error() string { return "sim: system crashed (power failure)" }

// Crashed reports whether a recovered panic value is a simulated crash.
func Crashed(v any) bool {
	_, ok := v.(Crash)
	return ok
}

// State of a simulated thread.
type state int

const (
	ready   state = iota // parked, waiting for its turn
	running              // the single active thread
	done                 // exited
)

// Thread is a simulated hardware thread. All methods must be called from the
// goroutine that was handed the Thread by Spawn.
type Thread struct {
	id    int
	name  string
	node  int // NUMA node the thread is pinned to
	clock uint64
	state state
	idx   int // heap index, -1 when not in heap
	sch   *Scheduler
	wake  chan struct{}
	rng   *rand.Rand
}

// ID returns the thread's scheduler-wide identifier.
func (t *Thread) ID() int { return t.id }

// Name returns the name given at Spawn time.
func (t *Thread) Name() string { return t.name }

// Node returns the NUMA node the thread is pinned to.
func (t *Thread) Node() int { return t.node }

// Clock returns the thread's virtual time in nanoseconds.
func (t *Thread) Clock() uint64 { return t.clock }

// Rand returns the thread's private deterministic random source.
func (t *Thread) Rand() *rand.Rand { return t.rng }

// Scheduler returns the owning scheduler.
func (t *Thread) Scheduler() *Scheduler { return t.sch }

// Scheduler runs simulated threads in virtual-time order.
type Scheduler struct {
	mu      sync.Mutex
	seed    int64
	nextID  int
	heap    threadHeap
	current *Thread
	live    int
	allDone chan struct{}
	events  uint64
	frozen  bool
	crashAt uint64 // event index at which to freeze; 0 = never
	started bool
}

// New creates a scheduler. The seed determines every per-thread random
// source, making whole runs reproducible.
func New(seed int64) *Scheduler {
	return &Scheduler{seed: seed, allDone: make(chan struct{})}
}

// Events returns the number of Step calls executed so far.
func (s *Scheduler) Events() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events
}

// CrashAtEvent arranges for the system to freeze at the given global event
// index (1-based). It may be set at any time before the event fires. A value
// of 0 disables crashing.
func (s *Scheduler) CrashAtEvent(n uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashAt = n
}

// CrashAfter arms a crash n events from now. Harnesses use it to place a
// crash inside a phase whose absolute event index is unknown in advance —
// most importantly inside a recovery run, exercising crash-during-recovery
// schedules. n must be at least 1; 0 disables crashing.
func (s *Scheduler) CrashAfter(n uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n == 0 {
		s.crashAt = 0
		return
	}
	s.crashAt = s.events + n
}

// Frozen reports whether the system has crashed.
func (s *Scheduler) Frozen() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frozen
}

// Spawn registers a simulated thread pinned to the given NUMA node and
// starting at virtual time startClock. The function fn runs on its own
// goroutine but only while the scheduler grants it the baton. Spawn may be
// called before Run or from inside a running simulated thread (in the latter
// case the new thread inherits the spawner's current clock if startClock is
// zero... callers pass the desired clock explicitly).
func (s *Scheduler) Spawn(name string, node int, startClock uint64, fn func(*Thread)) *Thread {
	s.mu.Lock()
	t := &Thread{
		id:    s.nextID,
		name:  name,
		node:  node,
		clock: startClock,
		state: ready,
		idx:   -1,
		sch:   s,
		wake:  make(chan struct{}, 1),
	}
	t.rng = rand.New(rand.NewSource(s.seed + int64(t.id)*int64(0x9E3779B97F4A7C15&0x7FFFFFFFFFFFFFFF)))
	s.nextID++
	s.live++
	heap.Push(&s.heap, t)
	s.mu.Unlock()

	go func() {
		<-t.wake // wait until scheduled for the first time
		defer func() {
			if r := recover(); r != nil && !Crashed(r) {
				// Re-panic real bugs with context; crashes exit quietly.
				panic(fmt.Sprintf("sim thread %q: %v", t.name, r))
			}
			s.exit(t)
		}()
		s.mu.Lock()
		if s.frozen {
			s.mu.Unlock()
			panic(Crash{})
		}
		s.mu.Unlock()
		fn(t)
	}()
	return t
}

// Run starts dispatching and blocks until every spawned thread has exited.
func (s *Scheduler) Run() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		panic("sim: Run called twice")
	}
	s.started = true
	if s.live == 0 {
		s.mu.Unlock()
		return
	}
	next := heap.Pop(&s.heap).(*Thread)
	next.state = running
	s.current = next
	s.mu.Unlock()
	next.wake <- struct{}{}
	<-s.allDone
}

// Step advances the calling thread's virtual clock by cost nanoseconds and
// yields to the minimum-clock runnable thread. It panics with Crash{} if the
// system has frozen (crashed).
func (t *Thread) Step(cost uint64) {
	if cost == 0 {
		// A zero-cost event would let the caller keep the minimum clock and
		// starve every other thread; charge the 1ns floor.
		cost = 1
	}
	s := t.sch
	s.mu.Lock()
	t.clock += cost
	s.events++
	if !s.frozen && s.crashAt != 0 && s.events >= s.crashAt {
		s.frozen = true
	}
	if s.frozen {
		s.mu.Unlock()
		panic(Crash{})
	}
	if len(s.heap.ts) == 0 || !s.heap.ts[0].less(t) {
		// Fast path: the caller is still the minimum-clock thread.
		s.mu.Unlock()
		return
	}
	next := heap.Pop(&s.heap).(*Thread)
	next.state = running
	t.state = ready
	heap.Push(&s.heap, t)
	s.current = next
	s.mu.Unlock()
	next.wake <- struct{}{}
	<-t.wake
	s.mu.Lock()
	frozen := s.frozen
	s.mu.Unlock()
	if frozen {
		panic(Crash{})
	}
}

// exit removes the thread from the scheduler and hands the baton onward.
func (s *Scheduler) exit(t *Thread) {
	s.mu.Lock()
	t.state = done
	s.live--
	if s.live == 0 {
		s.mu.Unlock()
		close(s.allDone)
		return
	}
	if len(s.heap.ts) == 0 {
		// Remaining threads exist but none is runnable: every live thread is
		// blocked inside Step waiting for the baton, which is impossible
		// because Step always re-enqueues before blocking. Treat as a bug.
		s.mu.Unlock()
		panic("sim: no runnable thread but live threads remain")
	}
	next := heap.Pop(&s.heap).(*Thread)
	next.state = running
	s.current = next
	s.mu.Unlock()
	next.wake <- struct{}{}
}

// CrashNow freezes the system from within a simulated thread. The calling
// thread panics with Crash{} on its next Step; parked threads panic when the
// baton reaches them.
func (s *Scheduler) CrashNow() {
	s.mu.Lock()
	s.frozen = true
	s.mu.Unlock()
}

// less orders threads by (clock, id) for deterministic tie-breaking.
func (t *Thread) less(u *Thread) bool {
	if t.clock != u.clock {
		return t.clock < u.clock
	}
	return t.id < u.id
}

type threadHeap struct{ ts []*Thread }

func (h *threadHeap) Len() int           { return len(h.ts) }
func (h *threadHeap) Less(i, j int) bool { return h.ts[i].less(h.ts[j]) }
func (h *threadHeap) Swap(i, j int) {
	h.ts[i], h.ts[j] = h.ts[j], h.ts[i]
	h.ts[i].idx = i
	h.ts[j].idx = j
}
func (h *threadHeap) Push(x any) { t := x.(*Thread); t.idx = len(h.ts); h.ts = append(h.ts, t) }
func (h *threadHeap) Pop() any {
	old := h.ts
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.idx = -1
	h.ts = old[:n-1]
	return t
}
