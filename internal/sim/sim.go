// Package sim provides a deterministic virtual-time scheduler for simulated
// threads.
//
// The reproduction of PREP-UC needs scaling curves for up to ~100 hardware
// threads, crash injection at adversarial points, and a latency model for
// (simulated) non-volatile memory. Real goroutine parallelism cannot supply
// any of these portably, so sim executes the real algorithm code on simulated
// threads under a discrete-event regime:
//
//   - Every simulated thread owns a virtual clock, in nanoseconds. The clock
//     models the time a dedicated hardware thread would have consumed.
//   - Each shared-memory access calls Thread.Step(cost), which advances the
//     clock and then hands control to the thread with the minimum clock.
//     Exactly one simulated thread executes at any real instant, so all
//     shared state touched between Step calls is free of data races by
//     construction, and compare-and-swap is trivially atomic.
//   - Throughput is measured as operations per virtual second, which is
//     independent of the host CPU count and fully reproducible from a seed.
//
// A crash (modelling a power failure) freezes the scheduler: every
// subsequent Step panics with a value recognized by Crashed, unwinding each
// simulated thread out of whatever operation it was executing — so crashes
// land mid-operation, as they do on hardware.
//
// # Concurrency contract
//
// Spawn may be called from the host goroutine before Run, or from a running
// simulated thread; it must not be called from a foreign goroutine while the
// scheduler is dispatching. Control methods (CrashAtEvent, CrashAfter,
// CrashNow, Events, Frozen) may be called from the host goroutine only while
// the scheduler is quiescent (before Run, or after Run returned), or from
// inside a running simulated thread. Under that contract every piece of
// scheduler state is only ever touched by the baton holder (or by the host
// before the first baton is granted / after the last one is returned, both
// ordered by channel operations), so Step needs no locks or atomics: its
// run-ahead fast path is a clock add, a counter increment and one heap-top
// comparison. See DESIGN.md ("Run-ahead scheduling") for the
// schedule-preservation argument.
package sim

import (
	"fmt"
	"math/rand"
)

// Crash is the panic value raised by Step once the scheduler is frozen.
// Simulated threads are unwound with it; Spawn's wrapper recovers it.
type Crash struct{}

func (Crash) Error() string { return "sim: system crashed (power failure)" }

// Crashed reports whether a recovered panic value is a simulated crash.
func Crashed(v any) bool {
	_, ok := v.(Crash)
	return ok
}

// State of a simulated thread.
type state int

const (
	ready   state = iota // parked, waiting for its turn
	running              // the single active thread
	done                 // exited
)

// Thread is a simulated hardware thread. All methods must be called from the
// goroutine that was handed the Thread by Spawn.
type Thread struct {
	id    int
	name  string
	node  int // NUMA node the thread is pinned to
	clock uint64
	state state
	sch   *Scheduler
	wake  chan struct{}
	rng   *rand.Rand
}

// ID returns the thread's scheduler-wide identifier.
func (t *Thread) ID() int { return t.id }

// Name returns the name given at Spawn time.
func (t *Thread) Name() string { return t.name }

// Node returns the NUMA node the thread is pinned to.
func (t *Thread) Node() int { return t.node }

// Clock returns the thread's virtual time in nanoseconds.
func (t *Thread) Clock() uint64 { return t.clock }

// Rand returns the thread's private deterministic random source.
func (t *Thread) Rand() *rand.Rand { return t.rng }

// Scheduler returns the owning scheduler.
func (t *Thread) Scheduler() *Scheduler { return t.sch }

// DefaultRunAhead is the run-ahead setting New installs on fresh schedulers.
// It exists so equivalence tests (and bisection of a suspected scheduler bug)
// can globally fall back to the reference full-reinsertion dispatch without
// threading a knob through every harness layer. Flip it only from tests, and
// restore it; the package default is on.
var DefaultRunAhead = true

// Scheduler runs simulated threads in virtual-time order. All of its state
// is owned by the baton holder; see the package-level concurrency contract.
type Scheduler struct {
	seed     int64
	nextID   int
	heap     threadHeap
	live     int
	allDone  chan struct{}
	started  bool
	runahead bool

	events  uint64
	frozen  bool
	crashAt uint64 // event index at which to freeze; 0 = never

	// chooser, when non-nil, replaces the minimum-(clock,id) dispatch rule:
	// every dispatch decision is delegated to it. cands/cview are the reused
	// candidate scratch buffers.
	chooser Chooser
	cands   []*Thread
	cview   []Candidate
}

// New creates a scheduler. The seed determines every per-thread random
// source, making whole runs reproducible.
func New(seed int64) *Scheduler {
	return &Scheduler{
		seed:     seed,
		allDone:  make(chan struct{}),
		runahead: DefaultRunAhead,
		heap:     threadHeap{ts: make([]*Thread, 0, 16)},
	}
}

// SetRunAhead toggles the run-ahead fast path (on by default). With it off,
// every Step re-inserts the caller into the ready heap and pops the minimum —
// the textbook discrete-event loop. Both modes produce the identical
// schedule (see DESIGN.md); the reference mode exists for the equivalence
// tests that prove it. Call before Run.
func (s *Scheduler) SetRunAhead(on bool) {
	if s.started {
		panic("sim: SetRunAhead after Run")
	}
	s.runahead = on
}

// RunAhead reports whether the run-ahead fast path is enabled.
func (s *Scheduler) RunAhead() bool { return s.runahead }

// Candidate describes one dispatchable thread at a scheduling decision
// point, in the canonical (ascending thread id) candidate order.
type Candidate struct {
	ID    int
	Clock uint64
}

// Chooser overrides the scheduler's dispatch rule. At every decision point —
// each Step, the initial dispatch of Run, and each thread exit — Choose
// receives the dispatchable threads in ascending-id order and returns the
// index of the one to run next. caller is the id of the thread currently
// inside Step (it is itself a candidate: choosing it means "keep running"),
// or -1 for dispatches where no thread is mid-Step (Run's first dispatch and
// exit handoffs).
//
// A Chooser makes the schedule entirely its own responsibility: the built-in
// rule's fairness (minimum virtual clock first) is what lets spin loops
// terminate, so a chooser that starves a lock holder can livelock the
// simulation. Choosers that only want to force a prefix of decisions should
// fall back to MinClock for the rest. Choose runs on the baton holder's
// goroutine and must be deterministic; the candidate slice is reused across
// calls and must not be retained.
type Chooser interface {
	Choose(caller int, cands []Candidate) int
}

// SetChooser installs (or, with nil, removes) a dispatch chooser. Call only
// before Run. While a chooser is installed the run-ahead fast path is
// bypassed: every Step is a full decision point.
func (s *Scheduler) SetChooser(c Chooser) {
	if s.started {
		panic("sim: SetChooser after Run")
	}
	s.chooser = c
}

// MinClock returns the index of the minimum-(clock,id) candidate: the
// decision the built-in dispatch rule would take. Choosers use it as their
// fallback once their forced prefix is exhausted.
func MinClock(cands []Candidate) int {
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].Clock < cands[best].Clock ||
			(cands[i].Clock == cands[best].Clock && cands[i].ID < cands[best].ID) {
			best = i
		}
	}
	return best
}

// chooseNext delegates one dispatch decision to the installed chooser.
// caller is the thread currently inside Step, or nil for Run/exit handoffs
// where every dispatchable thread is in the heap. It returns the chosen
// thread, already removed from the heap if it came from there; if the caller
// itself is chosen it is returned as-is.
func (s *Scheduler) chooseNext(caller *Thread) *Thread {
	s.cands = s.cands[:0]
	if caller != nil {
		s.cands = append(s.cands, caller)
	}
	s.cands = append(s.cands, s.heap.ts...)
	// Canonical ascending-id order (insertion sort: the set is small). Heap
	// array order is deterministic but an implementation detail; id order is
	// the stable contract choosers and traces key on.
	for i := 1; i < len(s.cands); i++ {
		for j := i; j > 0 && s.cands[j].id < s.cands[j-1].id; j-- {
			s.cands[j], s.cands[j-1] = s.cands[j-1], s.cands[j]
		}
	}
	s.cview = s.cview[:0]
	for _, t := range s.cands {
		s.cview = append(s.cview, Candidate{ID: t.id, Clock: t.clock})
	}
	callerID := -1
	if caller != nil {
		callerID = caller.id
	}
	idx := s.chooser.Choose(callerID, s.cview)
	if idx < 0 || idx >= len(s.cands) {
		panic(fmt.Sprintf("sim: chooser returned index %d of %d candidates", idx, len(s.cands)))
	}
	next := s.cands[idx]
	if next != caller {
		s.heap.remove(next)
	}
	return next
}

// Events returns the number of Step calls executed so far. Like Frozen, it
// must be read from a quiescent scheduler or the baton holder.
func (s *Scheduler) Events() uint64 { return s.events }

// CrashAtEvent arranges for the system to freeze at the given global event
// index (1-based). It may be set at any time before the event fires. A value
// of 0 disables crashing.
//
// Arming is last-wins: a crash already armed (by CrashAtEvent or CrashAfter)
// is silently replaced. The previously armed absolute event index is
// returned (0 = none was armed) so harnesses that stack adversaries — the
// exhaustive explorer arms one crash per branch on schedulers it may reuse —
// can detect, restore, or assert on an arm they would otherwise clobber.
func (s *Scheduler) CrashAtEvent(n uint64) (prev uint64) {
	prev = s.crashAt
	s.crashAt = n
	return prev
}

// CrashAfter arms a crash n events from now. Harnesses use it to place a
// crash inside a phase whose absolute event index is unknown in advance —
// most importantly inside a recovery run, exercising crash-during-recovery
// schedules. n must be at least 1; 0 disables crashing.
//
// Like CrashAtEvent, arming is last-wins and the previously armed absolute
// event index is returned (0 = none).
func (s *Scheduler) CrashAfter(n uint64) (prev uint64) {
	prev = s.crashAt
	if n == 0 {
		s.crashAt = 0
		return prev
	}
	s.crashAt = s.events + n
	return prev
}

// Frozen reports whether the system has crashed. Call it from the host only
// while the scheduler is quiescent (before Run or after Run returned), or
// from a running simulated thread.
func (s *Scheduler) Frozen() bool { return s.frozen }

// Spawn registers a simulated thread pinned to the given NUMA node and
// starting at virtual time startClock. The function fn runs on its own
// goroutine but only while the scheduler grants it the baton. Spawn may be
// called before Run or from inside a running simulated thread (in the latter
// case the new thread inherits the spawner's current clock if startClock is
// zero... callers pass the desired clock explicitly).
func (s *Scheduler) Spawn(name string, node int, startClock uint64, fn func(*Thread)) *Thread {
	t := &Thread{
		id:    s.nextID,
		name:  name,
		node:  node,
		clock: startClock,
		state: ready,
		sch:   s,
		wake:  make(chan struct{}, 1),
	}
	t.rng = rand.New(rand.NewSource(s.seed + int64(t.id)*int64(0x9E3779B97F4A7C15&0x7FFFFFFFFFFFFFFF)))
	s.nextID++
	s.live++
	s.heap.push(t)

	go func() {
		<-t.wake // wait until scheduled for the first time
		defer func() {
			if r := recover(); r != nil && !Crashed(r) {
				// Re-panic real bugs with context; crashes exit quietly.
				panic(fmt.Sprintf("sim thread %q: %v", t.name, r))
			}
			s.exit(t)
		}()
		if s.frozen {
			panic(Crash{})
		}
		fn(t)
	}()
	return t
}

// Run starts dispatching and blocks until every spawned thread has exited.
func (s *Scheduler) Run() {
	if s.started {
		panic("sim: Run called twice")
	}
	s.started = true
	if s.live == 0 {
		return
	}
	var next *Thread
	if s.chooser != nil {
		next = s.chooseNext(nil)
	} else {
		next = s.heap.popMin()
	}
	next.state = running
	next.wake <- struct{}{}
	<-s.allDone
}

// Step advances the calling thread's virtual clock by cost nanoseconds and
// yields to the minimum-clock runnable thread. It panics with Crash{} if the
// system has frozen (crashed).
//
// Run-ahead fast path: when no ready thread has a strictly smaller clock than
// the caller's advanced clock — or an equal clock with a smaller id — the
// caller keeps the baton and returns without touching the heap or a channel.
// A handoff swaps the caller with the heap root in a single sift-down
// (replaceMin); because (clock, id) keys are unique, the minimum popped from
// any valid heap arrangement is the same thread, so the schedule is
// identical to the reference mode's full reinsertion (SetRunAhead(false)).
func (t *Thread) Step(cost uint64) {
	if cost == 0 {
		// A zero-cost event would let the caller keep the minimum clock and
		// starve every other thread; charge the 1ns floor.
		cost = 1
	}
	s := t.sch
	t.clock += cost
	s.events++
	if s.crashAt != 0 && s.events >= s.crashAt {
		s.frozen = true
	}
	if s.frozen {
		panic(Crash{})
	}
	if s.chooser != nil {
		next := s.chooseNext(t)
		if next == t {
			return
		}
		s.heap.push(t)
		next.state = running
		t.state = ready
		s.park(t, next)
		return
	}
	if s.runahead {
		if len(s.heap.ts) == 0 || !s.heap.ts[0].less(t) {
			return // still the minimum: run ahead, no heap op, no handoff
		}
		next := s.heap.replaceMin(t)
		next.state = running
		t.state = ready
		s.park(t, next)
		return
	}
	// Reference mode: full reinsertion through the heap.
	s.heap.push(t)
	next := s.heap.popMin()
	if next == t {
		return
	}
	next.state = running
	t.state = ready
	s.park(t, next)
}

// park wakes next and blocks until the baton returns to t, re-raising a
// crash that happened while t was parked.
func (s *Scheduler) park(t, next *Thread) {
	next.wake <- struct{}{}
	<-t.wake
	if s.frozen {
		panic(Crash{})
	}
}

// exit removes the thread from the scheduler and hands the baton onward.
func (s *Scheduler) exit(t *Thread) {
	t.state = done
	s.live--
	if s.live == 0 {
		close(s.allDone)
		return
	}
	if len(s.heap.ts) == 0 {
		// Remaining threads exist but none is runnable: every live thread is
		// blocked inside Step waiting for the baton, which is impossible
		// because Step always re-enqueues before blocking. Treat as a bug.
		panic("sim: no runnable thread but live threads remain")
	}
	var next *Thread
	if s.chooser != nil {
		next = s.chooseNext(nil)
	} else {
		next = s.heap.popMin()
	}
	next.state = running
	next.wake <- struct{}{}
}

// CrashNow freezes the system from within a simulated thread. The calling
// thread panics with Crash{} on its next Step; parked threads panic when the
// baton reaches them.
func (s *Scheduler) CrashNow() { s.frozen = true }

// less orders threads by (clock, id) for deterministic tie-breaking.
func (t *Thread) less(u *Thread) bool {
	if t.clock != u.clock {
		return t.clock < u.clock
	}
	return t.id < u.id
}

// threadHeap is a hand-rolled binary min-heap ordered by Thread.less. It
// replaces container/heap on the dispatch path: no interface boxing, no
// indirect Less/Swap calls, and the backing slice is pre-sized at New and
// reused for the scheduler's lifetime.
type threadHeap struct{ ts []*Thread }

func (h *threadHeap) push(t *Thread) {
	h.ts = append(h.ts, t)
	i := len(h.ts) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.ts[i].less(h.ts[parent]) {
			break
		}
		h.ts[i], h.ts[parent] = h.ts[parent], h.ts[i]
		i = parent
	}
}

func (h *threadHeap) popMin() *Thread {
	ts := h.ts
	min := ts[0]
	n := len(ts) - 1
	ts[0] = ts[n]
	ts[n] = nil
	h.ts = ts[:n]
	h.down(0)
	return min
}

// replaceMin swaps t in for the current minimum in one sift-down: the
// handoff's pop-then-push collapsed into a single heap operation.
func (h *threadHeap) replaceMin(t *Thread) *Thread {
	min := h.ts[0]
	h.ts[0] = t
	h.down(0)
	return min
}

// remove deletes an arbitrary thread from the heap (the chooser's dispatch
// picks threads that are not the minimum). The vacated slot is refilled with
// the last element, which is then sifted in both directions. O(n) for the
// scan; the heap holds at most the thread count, which is tiny.
func (h *threadHeap) remove(t *Thread) {
	ts := h.ts
	for i, u := range ts {
		if u != t {
			continue
		}
		n := len(ts) - 1
		ts[i] = ts[n]
		ts[n] = nil
		h.ts = ts[:n]
		if i < n {
			h.up(i)
			h.down(i)
		}
		return
	}
	panic("sim: remove of thread not in heap")
}

func (h *threadHeap) up(i int) {
	ts := h.ts
	for i > 0 {
		parent := (i - 1) / 2
		if !ts[i].less(ts[parent]) {
			break
		}
		ts[i], ts[parent] = ts[parent], ts[i]
		i = parent
	}
}

func (h *threadHeap) down(i int) {
	ts := h.ts
	n := len(ts)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && ts[r].less(ts[l]) {
			m = r
		}
		if !ts[m].less(ts[i]) {
			break
		}
		ts[i], ts[m] = ts[m], ts[i]
		i = m
	}
}
