package sim

import (
	"testing"
)

func TestSingleThreadRunsToCompletion(t *testing.T) {
	s := New(1)
	ran := false
	s.Spawn("w", 0, 0, func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.Step(10)
		}
		ran = true
	})
	s.Run()
	if !ran {
		t.Fatal("thread did not run")
	}
}

func TestClockAdvances(t *testing.T) {
	s := New(1)
	var final uint64
	s.Spawn("w", 0, 0, func(th *Thread) {
		th.Step(7)
		th.Step(3)
		final = th.Clock()
	})
	s.Run()
	if final != 10 {
		t.Fatalf("clock = %d, want 10", final)
	}
}

func TestMinClockThreadRunsFirst(t *testing.T) {
	// Two threads with different step costs: the cheap-step thread must
	// complete more steps in the same virtual window.
	s := New(1)
	var order []int
	s.Spawn("slow", 0, 0, func(th *Thread) {
		for i := 0; i < 3; i++ {
			th.Step(100)
			order = append(order, 0)
		}
	})
	s.Spawn("fast", 0, 0, func(th *Thread) {
		for i := 0; i < 3; i++ {
			th.Step(10)
			order = append(order, 1)
		}
	})
	s.Run()
	// fast's steps land at t=10,20,30; slow's at 100,200,300. All fast
	// entries must precede all slow entries except slow's first step which
	// happens at t=100 after fast finished (fast done by t=30).
	want := []int{1, 1, 1, 0, 0, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []int {
		s := New(42)
		var order []int
		for w := 0; w < 4; w++ {
			w := w
			s.Spawn("w", 0, 0, func(th *Thread) {
				for i := 0; i < 50; i++ {
					th.Step(uint64(th.Rand().Intn(20) + 1))
					order = append(order, w)
				}
			})
		}
		s.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTieBreakByID(t *testing.T) {
	s := New(1)
	var first int
	recorded := false
	for w := 0; w < 3; w++ {
		w := w
		s.Spawn("w", 0, 0, func(th *Thread) {
			th.Step(5)
			if !recorded {
				first = w
				recorded = true
			}
		})
	}
	s.Run()
	if first != 0 {
		t.Fatalf("first completed step by thread %d, want 0 (lowest ID wins ties)", first)
	}
}

func TestMutualExclusionOfSteps(t *testing.T) {
	// Plain (non-atomic) increments of a shared counter must not be lost:
	// the scheduler guarantees only one thread runs at a time.
	s := New(7)
	counter := 0
	const perThread = 1000
	const nThreads = 8
	for w := 0; w < nThreads; w++ {
		s.Spawn("w", 0, 0, func(th *Thread) {
			for i := 0; i < perThread; i++ {
				th.Step(1)
				counter++
			}
		})
	}
	s.Run()
	if counter != perThread*nThreads {
		t.Fatalf("counter = %d, want %d", counter, perThread*nThreads)
	}
}

func TestCrashAtEventUnwindsAllThreads(t *testing.T) {
	s := New(1)
	s.CrashAtEvent(500)
	completed := 0
	crashed := 0
	for w := 0; w < 4; w++ {
		s.Spawn("w", 0, 0, func(th *Thread) {
			defer func() {
				if r := recover(); r != nil {
					if !Crashed(r) {
						panic(r)
					}
					crashed++
				}
			}()
			for i := 0; i < 1000; i++ {
				th.Step(1)
			}
			completed++
		})
	}
	s.Run()
	if crashed != 4 {
		t.Fatalf("crashed = %d, want 4", crashed)
	}
	if completed != 0 {
		t.Fatalf("completed = %d, want 0", completed)
	}
	if !s.Frozen() {
		t.Fatal("scheduler not frozen after crash")
	}
}

func TestCrashNowFreezesOthers(t *testing.T) {
	s := New(1)
	crashed := 0
	s.Spawn("killer", 0, 0, func(th *Thread) {
		defer func() {
			if r := recover(); r != nil && !Crashed(r) {
				panic(r)
			}
			if r := recover(); r != nil {
				_ = r
			}
		}()
		th.Step(1)
		s.CrashNow()
		defer func() { recover() }()
		th.Step(1) // will panic Crash{}
	})
	for w := 0; w < 3; w++ {
		s.Spawn("victim", 0, 0, func(th *Thread) {
			defer func() {
				if Crashed(recover()) {
					crashed++
				}
			}()
			for i := 0; i < 1000; i++ {
				th.Step(1)
			}
		})
	}
	s.Run()
	if crashed != 3 {
		t.Fatalf("crashed victims = %d, want 3", crashed)
	}
}

func TestSpawnDuringRun(t *testing.T) {
	s := New(1)
	childRan := false
	s.Spawn("parent", 0, 0, func(th *Thread) {
		th.Step(1)
		s.Spawn("child", 1, th.Clock(), func(c *Thread) {
			c.Step(1)
			childRan = true
		})
		for i := 0; i < 10; i++ {
			th.Step(1)
		}
	})
	s.Run()
	if !childRan {
		t.Fatal("dynamically spawned thread did not run")
	}
}

func TestThreadAccessors(t *testing.T) {
	s := New(3)
	s.Spawn("alpha", 2, 100, func(th *Thread) {
		if th.Name() != "alpha" {
			t.Errorf("Name = %q", th.Name())
		}
		if th.Node() != 2 {
			t.Errorf("Node = %d", th.Node())
		}
		if th.Clock() != 100 {
			t.Errorf("start Clock = %d", th.Clock())
		}
		if th.Scheduler() != s {
			t.Error("Scheduler mismatch")
		}
		if th.ID() != 0 {
			t.Errorf("ID = %d", th.ID())
		}
		th.Step(5)
	})
	s.Run()
}

func TestEventsCounted(t *testing.T) {
	s := New(1)
	s.Spawn("w", 0, 0, func(th *Thread) {
		for i := 0; i < 25; i++ {
			th.Step(1)
		}
	})
	s.Run()
	if got := s.Events(); got != 25 {
		t.Fatalf("Events = %d, want 25", got)
	}
}

func TestZeroCostStepsRoundRobin(t *testing.T) {
	// With zero costs, ties are broken by ID so execution must alternate
	// deterministically and still terminate.
	s := New(1)
	total := 0
	for w := 0; w < 3; w++ {
		s.Spawn("w", 0, 0, func(th *Thread) {
			for i := 0; i < 10; i++ {
				th.Step(0)
				total++
			}
		})
	}
	s.Run()
	if total != 30 {
		t.Fatalf("total = %d, want 30", total)
	}
}

func TestDefaultCostsOrdering(t *testing.T) {
	c := DefaultCosts()
	if c.RemoteAccess <= c.LocalAccess {
		t.Error("remote access should cost more than local")
	}
	if c.WBINVDBase <= c.FlushSync {
		t.Error("WBINVD should dwarf a single line flush")
	}
	if c.FlushSync <= c.FlushLine {
		t.Error("synchronous flush should cost more than async issue")
	}
}

func TestManyThreadsStress(t *testing.T) {
	s := New(99)
	const n = 64
	counts := make([]int, n)
	for w := 0; w < n; w++ {
		w := w
		s.Spawn("w", w%4, 0, func(th *Thread) {
			for i := 0; i < 200; i++ {
				th.Step(uint64(1 + th.Rand().Intn(5)))
				counts[w]++
			}
		})
	}
	s.Run()
	for w, c := range counts {
		if c != 200 {
			t.Fatalf("thread %d made %d steps, want 200", w, c)
		}
	}
}

func TestCrashAfterRelative(t *testing.T) {
	// CrashAfter arms relative to the current event count: armed mid-run
	// after 10 events, the 15th Step must be the one that freezes.
	s := New(1)
	steps := 0
	s.Spawn("w", 0, 0, func(th *Thread) {
		defer func() {
			if r := recover(); r != nil && !Crashed(r) {
				panic(r)
			}
		}()
		for i := 0; i < 100; i++ {
			if i == 10 {
				s.CrashAfter(5)
			}
			th.Step(1)
			steps++
		}
	})
	s.Run()
	if !s.Frozen() {
		t.Fatal("scheduler not frozen")
	}
	if steps != 14 {
		t.Fatalf("completed %d steps before the crash, want 14 (crash on the 15th)", steps)
	}
}

func TestCrashAfterZeroDisarms(t *testing.T) {
	s := New(1)
	s.CrashAtEvent(5)
	done := false
	s.Spawn("w", 0, 0, func(th *Thread) {
		defer func() {
			if r := recover(); r != nil && !Crashed(r) {
				panic(r)
			}
		}()
		s.CrashAfter(0) // disarm before the crash fires
		for i := 0; i < 20; i++ {
			th.Step(1)
		}
		done = true
	})
	s.Run()
	if s.Frozen() || !done {
		t.Fatal("CrashAfter(0) did not disarm the pending crash")
	}
}
