package sim

import (
	"encoding/binary"
	"fmt"
)

// ThreadState is one thread's dispatch bookkeeping inside a SchedState.
type ThreadState struct {
	ID    int
	Clock uint64
}

// SchedState is a snapshot of the scheduler's dispatch state: the event
// counter, the armed crash point, the freeze flag, the run-ahead setting,
// and the ready heap's exact array arrangement. It captures everything the
// dispatcher consults — restoring it onto a scheduler with identically
// spawned threads reproduces the identical dispatch sequence — but not
// goroutine stacks: mid-run thread continuations cannot be snapshotted, so
// branching explorers re-execute from the start under a forced schedule and
// use SchedState to pin that the re-executed machine's scheduler is
// byte-identical to the recorded one.
type SchedState struct {
	Events   uint64
	CrashAt  uint64
	Frozen   bool
	RunAhead bool
	// Heap is the ready heap's backing array in storage order. Before Run
	// every spawned thread is ready, so this is the full thread set; from a
	// baton holder it is every thread except the caller.
	Heap []ThreadState
}

// CaptureState snapshots the scheduler's dispatch state. Like the other
// control methods it must be called from the host while the scheduler is
// quiescent, or from the baton holder.
func (s *Scheduler) CaptureState() SchedState {
	st := SchedState{
		Events:   s.events,
		CrashAt:  s.crashAt,
		Frozen:   s.frozen,
		RunAhead: s.runahead,
		Heap:     make([]ThreadState, len(s.heap.ts)),
	}
	for i, t := range s.heap.ts {
		st.Heap[i] = ThreadState{ID: t.id, Clock: t.clock}
	}
	return st
}

// RestoreState overwrites the scheduler's dispatch state with a snapshot
// taken from a scheduler with the same spawned thread set. It may only be
// called before Run (when every spawned thread is still ready, so thread
// continuations carry no state beyond their clock): the snapshot's heap
// entries must name exactly the spawned threads. After a successful restore,
// CaptureState returns a snapshot whose Encode is byte-identical to the
// input's.
func (s *Scheduler) RestoreState(st SchedState) error {
	if s.started {
		return fmt.Errorf("sim: RestoreState after Run")
	}
	if len(st.Heap) != len(s.heap.ts) {
		return fmt.Errorf("sim: RestoreState: snapshot has %d threads, scheduler has %d",
			len(st.Heap), len(s.heap.ts))
	}
	byID := make(map[int]*Thread, len(s.heap.ts))
	for _, t := range s.heap.ts {
		byID[t.id] = t
	}
	ts := make([]*Thread, len(st.Heap))
	for i, e := range st.Heap {
		t, ok := byID[e.ID]
		if !ok {
			return fmt.Errorf("sim: RestoreState: snapshot thread id %d not spawned", e.ID)
		}
		if ts[i] != nil || func() bool { // duplicate id in snapshot
			for j := 0; j < i; j++ {
				if st.Heap[j].ID == e.ID {
					return true
				}
			}
			return false
		}() {
			return fmt.Errorf("sim: RestoreState: duplicate thread id %d in snapshot", e.ID)
		}
		t.clock = e.Clock
		ts[i] = t
	}
	s.heap.ts = ts
	s.events = st.Events
	s.crashAt = st.CrashAt
	s.frozen = st.Frozen
	s.runahead = st.RunAhead
	return nil
}

// schedStateMagic versions the Encode layout.
var schedStateMagic = [4]byte{'S', 'S', '0', '1'}

// Encode renders the snapshot in a canonical binary form: equal snapshots
// encode byte-identically, so encodings can be compared or hashed directly.
// Layout: magic "SS01", then big-endian events, crashAt, a flags byte
// (bit0 frozen, bit1 run-ahead), the heap length as uint32, and per heap
// slot the thread id as uint32 followed by its clock.
func (st SchedState) Encode() []byte {
	buf := make([]byte, 0, 4+8+8+1+4+len(st.Heap)*12)
	buf = append(buf, schedStateMagic[:]...)
	buf = binary.BigEndian.AppendUint64(buf, st.Events)
	buf = binary.BigEndian.AppendUint64(buf, st.CrashAt)
	var flags byte
	if st.Frozen {
		flags |= 1
	}
	if st.RunAhead {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(st.Heap)))
	for _, e := range st.Heap {
		buf = binary.BigEndian.AppendUint32(buf, uint32(e.ID))
		buf = binary.BigEndian.AppendUint64(buf, e.Clock)
	}
	return buf
}

// DecodeSchedState parses an Encode rendering back into a SchedState.
// Encode(DecodeSchedState(b)) == b for every valid b, completing the
// byte-identical round trip.
func DecodeSchedState(b []byte) (SchedState, error) {
	var st SchedState
	if len(b) < 4+8+8+1+4 || [4]byte(b[:4]) != schedStateMagic {
		return st, fmt.Errorf("sim: DecodeSchedState: bad header")
	}
	b = b[4:]
	st.Events = binary.BigEndian.Uint64(b)
	st.CrashAt = binary.BigEndian.Uint64(b[8:])
	flags := b[16]
	st.Frozen = flags&1 != 0
	st.RunAhead = flags&2 != 0
	n := binary.BigEndian.Uint32(b[17:])
	b = b[21:]
	if uint64(len(b)) != uint64(n)*12 {
		return st, fmt.Errorf("sim: DecodeSchedState: truncated heap (%d bytes for %d threads)", len(b), n)
	}
	st.Heap = make([]ThreadState, n)
	for i := range st.Heap {
		st.Heap[i] = ThreadState{
			ID:    int(binary.BigEndian.Uint32(b[i*12:])),
			Clock: binary.BigEndian.Uint64(b[i*12+4:]),
		}
	}
	return st, nil
}
