package sim

import (
	"bytes"
	"testing"
)

// TestCrashArmReturnsPrevious pins the re-arm contract the explorer relies
// on: arming is last-wins, and both arming calls return the previously armed
// absolute event index (0 = none) so a harness stacking adversaries can see
// what it is replacing.
func TestCrashArmReturnsPrevious(t *testing.T) {
	s := New(1)
	if prev := s.CrashAtEvent(10); prev != 0 {
		t.Fatalf("first arm returned prev=%d, want 0", prev)
	}
	if prev := s.CrashAtEvent(5); prev != 10 {
		t.Fatalf("re-arm returned prev=%d, want 10", prev)
	}
	// CrashAfter is relative to the current event counter (0 here) but
	// returns the previous arm as an absolute index.
	if prev := s.CrashAfter(3); prev != 5 {
		t.Fatalf("CrashAfter returned prev=%d, want 5", prev)
	}
	if prev := s.CrashAfter(0); prev != 3 {
		t.Fatalf("disarming CrashAfter returned prev=%d, want 3", prev)
	}
	if prev := s.CrashAtEvent(7); prev != 0 {
		t.Fatalf("arm after disarm returned prev=%d, want 0", prev)
	}
	// Last-wins: the surviving arm is the latest one.
	s.CrashAtEvent(2)
	done := 0
	s.Spawn("w", 0, 0, func(th *Thread) {
		for i := 0; i < 10; i++ {
			th.Step(1)
			done++
		}
	})
	s.Run()
	if !s.Frozen() || done != 1 {
		t.Fatalf("last-wins arm: frozen=%v done=%d, want frozen after event 2 (1 completed step)", s.Frozen(), done)
	}
}

// CrashAfter mid-run must report the pending arm as an absolute index.
func TestCrashAfterMidRunReturnsAbsolutePrev(t *testing.T) {
	s := New(1)
	s.Spawn("w", 0, 0, func(th *Thread) {
		for i := 0; i < 4; i++ {
			th.Step(1)
		}
		s.CrashAtEvent(100)
		if prev := s.CrashAfter(50); prev != 100 {
			t.Errorf("CrashAfter returned prev=%d, want 100", prev)
		}
		if s.Events() != 4 {
			t.Errorf("events=%d, want 4", s.Events())
		}
	})
	s.Run()
}

type chooserFunc func(caller int, cands []Candidate) int

func (f chooserFunc) Choose(caller int, cands []Candidate) int { return f(caller, cands) }

// TestChooserForcesSchedule: a chooser that always picks the highest-id
// candidate runs the threads in reverse spawn order, against the built-in
// rule's interleaving.
func TestChooserForcesSchedule(t *testing.T) {
	var order []int
	s := New(1)
	s.SetChooser(chooserFunc(func(caller int, cands []Candidate) int {
		for i := 1; i < len(cands); i++ {
			if cands[i].ID < cands[i-1].ID {
				t.Errorf("candidates not in ascending id order: %v", cands)
			}
		}
		return len(cands) - 1
	}))
	for id := 0; id < 3; id++ {
		id := id
		s.Spawn("w", 0, 0, func(th *Thread) {
			for i := 0; i < 3; i++ {
				th.Step(1)
				order = append(order, id)
			}
		})
	}
	s.Run()
	want := []int{2, 2, 2, 1, 1, 1, 0, 0, 0}
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

// TestChooserMinClockMatchesDefault: a chooser that always answers with
// MinClock reproduces the built-in schedule exactly.
func TestChooserMinClockMatchesDefault(t *testing.T) {
	run := func(install bool) []int {
		var order []int
		s := New(7)
		if install {
			s.SetChooser(chooserFunc(func(caller int, cands []Candidate) int {
				return MinClock(cands)
			}))
		}
		for id := 0; id < 4; id++ {
			id := id
			s.Spawn("w", 0, 0, func(th *Thread) {
				for i := 0; i < 5; i++ {
					th.Step(uint64(1 + (id+i)%3))
					order = append(order, id)
				}
			})
		}
		s.Run()
		return order
	}
	def, chosen := run(false), run(true)
	if len(def) != len(chosen) {
		t.Fatalf("lengths differ: %d vs %d", len(def), len(chosen))
	}
	for i := range def {
		if def[i] != chosen[i] {
			t.Fatalf("schedules diverge at %d: default %v, chooser %v", i, def, chosen)
		}
	}
}

// TestSchedStateRoundTrip pins the byte-identical capture/restore contract:
// restoring a snapshot onto a scheduler with the same spawned threads makes
// its own capture encode byte-identically, and Encode/Decode invert.
func TestSchedStateRoundTrip(t *testing.T) {
	mk := func(clocks []uint64) *Scheduler {
		s := New(3)
		for i, c := range clocks {
			_ = i
			s.Spawn("w", 0, c, func(th *Thread) {})
		}
		return s
	}
	a := mk([]uint64{5, 2, 9, 2})
	a.CrashAtEvent(40)
	st := a.CaptureState()
	if len(st.Heap) != 4 || st.CrashAt != 40 || st.Frozen {
		t.Fatalf("capture = %+v", st)
	}

	// A scheduler built with different clocks (hence a different heap
	// arrangement) must round-trip to the identical encoding after restore.
	b := mk([]uint64{1, 1, 1, 1})
	if err := b.RestoreState(st); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	got, want := b.CaptureState().Encode(), st.Encode()
	if !bytes.Equal(got, want) {
		t.Fatalf("post-restore capture differs:\n got %x\nwant %x", got, want)
	}

	dec, err := DecodeSchedState(want)
	if err != nil {
		t.Fatalf("DecodeSchedState: %v", err)
	}
	if !bytes.Equal(dec.Encode(), want) {
		t.Fatalf("Encode(Decode(b)) != b")
	}

	// Restored scheduler must also dispatch identically: drain both and
	// compare event counts (threads are empty bodies, one exit each).
	a.Run()
	b.Run()
	if a.Events() != b.Events() {
		t.Fatalf("post-restore run diverged: %d vs %d events", a.Events(), b.Events())
	}

	// Mismatched thread sets are rejected.
	c := mk([]uint64{0, 0})
	if err := c.RestoreState(st); err == nil {
		t.Fatal("RestoreState accepted a snapshot with a different thread count")
	}
}
