// Package soft implements the SOFT hashtable of Zuriel et al. (OOPSLA '19),
// the hand-crafted persistent data structure PREP-UC is framed against in
// Figure 6: "sets with an optimal flushing technique".
//
// What matters for the comparison is SOFT's cost profile:
//
//   - an update persists ONLY the modified words — one persistent node
//     (a single cache line) flushed with one fence;
//   - read-only operations perform no flushes and no fences at all;
//   - data-structure links are never persisted: traversal happens in
//     volatile memory, and recovery reconstructs the table by scanning the
//     persistent nodes.
//
// Each key therefore exists twice, once in a volatile node (with the list
// links) and once in a persistent node (with validity metadata), exactly as
// in the original. One deliberate simplification, documented in DESIGN.md:
// the original's lock-free list operations are replaced by a per-bucket
// spinlock for updates (reads stay lock-free and flush-free), which leaves
// the flush/fence profile — the property under evaluation — unchanged.
package soft

import (
	"fmt"

	"prepuc/internal/locks"
	"prepuc/internal/metrics"
	"prepuc/internal/nvm"
	"prepuc/internal/pmem"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

// Volatile node layout: [key, value, pnode offset, next].
const (
	vnKey   = 0
	vnVal   = 1
	vnPNode = 2
	vnNext  = 3
	vnWords = 4
)

// Persistent node layout (exactly one line, line-aligned so recovery can
// scan the region): [key, value, valid]. valid: 0 = free/deleted,
// 1 = inserted. When a node is on the free list, key holds the next free
// node's offset (the list itself is never persisted; it is rebuilt — in
// fact discarded — at recovery).
const (
	pnKey   = 0
	pnVal   = 1
	pnValid = 2
	pnWords = nvm.WordsPerLine
	// pnBase is where persistent nodes start in their region.
	pnBase = nvm.WordsPerLine
)

// Config parameterizes a SOFT table.
type Config struct {
	// Buckets is the fixed bucket count (the paper compares 1k and 10k).
	Buckets uint64
	// VolatileWords / PersistentWords size the two regions.
	VolatileWords, PersistentWords uint64
	// Generation disambiguates memory names across crashes.
	Generation int
}

// commitMemName is SOFT's generation-commit record (uc.CommitCell).
// Recovery re-inserts the committed generation's surviving persistent nodes
// into a fresh generation's slab; a nested crash mid-scan leaves the new
// slab holding only a subset, so the record flips to the new generation
// only after the scan completes.
const commitMemName = "soft.commit"

// Soft is one SOFT hashtable.
type Soft struct {
	cfg    Config
	sys    *nvm.System
	vmem   *nvm.Memory // buckets, locks, volatile nodes
	valloc *pmem.Allocator
	pmem   *nvm.Memory // persistent node slab
	commit uc.CommitCell
	// Offsets inside vmem.
	bucketsOff, locksOff uint64
	slabOff              uint64 // [0]=bump index, [1]=free-list head, [2]=slab lock
	flushers             []*nvm.Flusher
}

var (
	_ uc.UC           = (*Soft)(nil)
	_ uc.Instrumented = (*Soft)(nil)
)

// Stats snapshots the machine-wide metrics registry (uc.Instrumented).
func (s *Soft) Stats() metrics.Snapshot { return s.sys.Metrics().Snapshot() }

func (c Config) memName(s string) string { return fmt.Sprintf("soft.g%d.%s", c.Generation, s) }

// Config returns the table's (normalized) configuration; recovery harnesses
// feed it back to Recover after a crash.
func (s *Soft) Config() Config { return s.cfg }

// New builds an empty table inside sys and commits its generation, so a
// crash right after boot recovers the empty table.
func New(t *sim.Thread, sys *nvm.System, cfg Config) *Soft {
	s := newEngine(t, sys, cfg)
	s.commit.Commit(t, s.cfg.Generation)
	return s
}

// newEngine builds the table without committing its generation (see
// commitMemName; Recover commits only after its slab scan completes).
func newEngine(t *sim.Thread, sys *nvm.System, cfg Config) *Soft {
	if cfg.Buckets == 0 {
		cfg.Buckets = 1024
	}
	if cfg.VolatileWords == 0 {
		cfg.VolatileWords = 1 << 22
	}
	if cfg.PersistentWords == 0 {
		cfg.PersistentWords = 1 << 22
	}
	s := &Soft{cfg: cfg, sys: sys}
	s.vmem = sys.NewMemory(cfg.memName("volatile"), nvm.Volatile, nvm.Interleaved, cfg.VolatileWords)
	s.valloc = pmem.New(t, s.vmem)
	s.pmem = sys.NewMemory(cfg.memName("persistent"), nvm.NVM, nvm.Interleaved, cfg.PersistentWords)
	s.commit = uc.EnsureCommitCell(sys, commitMemName, nvm.Interleaved)
	s.bucketsOff = s.valloc.Alloc(t, cfg.Buckets)
	s.locksOff = s.valloc.Alloc(t, cfg.Buckets)
	s.slabOff = s.valloc.Alloc(t, 4)
	return s
}

// lockAlloc serializes ALL allocator metadata updates — both the persistent
// node slab and the volatile pmem.Allocator, which is single-writer by
// contract (every other system in this repository serializes allocation
// under its combiner/writer lock; SOFT's fine-grained bucket locks do not).
// The original SOFT uses per-thread allocation pools; a spinlock preserves
// the flush/fence profile, which is the property under evaluation.
func (s *Soft) lockAlloc(t *sim.Thread) locks.TryLock {
	l := locks.NewTryLock(s.vmem, s.slabOff+2)
	var b backoff
	for !l.TryAcquire(t) {
		b.spin(t)
	}
	return l
}

// vnAlloc and vnFree wrap the volatile allocator under the allocation lock.
func (s *Soft) vnAlloc(t *sim.Thread) uint64 {
	l := s.lockAlloc(t)
	defer l.Release(t)
	return s.valloc.Alloc(t, vnWords)
}

func (s *Soft) vnFree(t *sim.Thread, off uint64) {
	l := s.lockAlloc(t)
	defer l.Release(t)
	s.valloc.Free(t, off)
}

// pnAlloc carves a line-aligned persistent node from the slab.
func (s *Soft) pnAlloc(t *sim.Thread) uint64 {
	l := s.lockAlloc(t)
	defer l.Release(t)
	if head := s.vmem.Load(t, s.slabOff+1); head != 0 {
		s.vmem.Store(t, s.slabOff+1, s.pmem.Load(t, head+pnKey))
		return head
	}
	i := s.vmem.Load(t, s.slabOff)
	off := pnBase + i*pnWords
	if off+pnWords > s.pmem.Words() {
		panic("soft: persistent node slab exhausted")
	}
	s.vmem.Store(t, s.slabOff, i+1)
	return off
}

// pnFree pushes a node (already marked invalid and persisted) onto the
// volatile free list.
func (s *Soft) pnFree(t *sim.Thread, off uint64) {
	l := s.lockAlloc(t)
	defer l.Release(t)
	s.pmem.Store(t, off+pnKey, s.vmem.Load(t, s.slabOff+1))
	s.vmem.Store(t, s.slabOff+1, off)
}

func (s *Soft) bucket(key uint64) uint64 { return splitmix64(key) % s.cfg.Buckets }

func (s *Soft) lockBucket(t *sim.Thread, key uint64) locks.TryLock {
	l := locks.NewTryLock(s.vmem, s.locksOff+s.bucket(key))
	var b backoff
	for !l.TryAcquire(t) {
		b.spin(t)
	}
	return l
}

// Get returns the value for key or uc.NotFound. No flushes, no fences, no
// locks.
func (s *Soft) Get(t *sim.Thread, key uint64) uint64 {
	slot := s.bucketsOff + s.bucket(key)
	for n := s.vmem.Load(t, slot); n != 0; n = s.vmem.Load(t, n+vnNext) {
		if s.vmem.Load(t, n+vnKey) == key {
			return s.vmem.Load(t, n+vnVal)
		}
	}
	return uc.NotFound
}

// Contains reports (as 0/1) whether key is present.
func (s *Soft) Contains(t *sim.Thread, key uint64) uint64 {
	if s.Get(t, key) == uc.NotFound {
		return 0
	}
	return 1
}

// Insert adds or updates key. The only persistence work is one line flush
// plus one fence on the key's persistent node.
func (s *Soft) Insert(t *sim.Thread, key, val uint64, f *nvm.Flusher) uint64 {
	l := s.lockBucket(t, key)
	defer l.Release(t)
	slot := s.bucketsOff + s.bucket(key)
	for n := s.vmem.Load(t, slot); n != 0; n = s.vmem.Load(t, n+vnNext) {
		if s.vmem.Load(t, n+vnKey) == key {
			pn := s.vmem.Load(t, n+vnPNode)
			s.pmem.Store(t, pn+pnVal, val)
			f.FlushLine(t, s.pmem, pn)
			f.Fence(t)
			s.vmem.Store(t, n+vnVal, val)
			return 0
		}
	}
	// Persist the node first, then link it into the volatile index.
	pn := s.pnAlloc(t)
	s.pmem.Store(t, pn+pnKey, key)
	s.pmem.Store(t, pn+pnVal, val)
	s.pmem.Store(t, pn+pnValid, 1)
	f.FlushLine(t, s.pmem, pn)
	f.Fence(t)
	vn := s.vnAlloc(t)
	s.vmem.Store(t, vn+vnKey, key)
	s.vmem.Store(t, vn+vnVal, val)
	s.vmem.Store(t, vn+vnPNode, pn)
	s.vmem.Store(t, vn+vnNext, s.vmem.Load(t, slot))
	s.vmem.Store(t, slot, vn)
	return 1
}

// Delete removes key; one line flush plus one fence when present.
func (s *Soft) Delete(t *sim.Thread, key uint64, f *nvm.Flusher) uint64 {
	l := s.lockBucket(t, key)
	defer l.Release(t)
	slot := s.bucketsOff + s.bucket(key)
	prev := uint64(0)
	for n := s.vmem.Load(t, slot); n != 0; {
		next := s.vmem.Load(t, n+vnNext)
		if s.vmem.Load(t, n+vnKey) == key {
			pn := s.vmem.Load(t, n+vnPNode)
			s.pmem.Store(t, pn+pnValid, 0)
			f.FlushLine(t, s.pmem, pn)
			f.Fence(t)
			if prev == 0 {
				s.vmem.Store(t, slot, next)
			} else {
				s.vmem.Store(t, prev+vnNext, next)
			}
			s.vnFree(t, n)
			s.pnFree(t, pn)
			return 1
		}
		prev, n = n, next
	}
	return 0
}

// Size counts keys (tests; not part of SOFT's interface).
func (s *Soft) Size(t *sim.Thread) uint64 {
	var n uint64
	for b := uint64(0); b < s.cfg.Buckets; b++ {
		for v := s.vmem.Load(t, s.bucketsOff+b); v != 0; v = s.vmem.Load(t, v+vnNext) {
			n++
		}
	}
	return n
}

// Execute adapts SOFT to the uc.UC interface so the harness can drive it
// like the universal constructions.
func (s *Soft) Execute(t *sim.Thread, tid int, op uc.Op) uint64 {
	t.Step(s.sys.Costs().OpBase)
	switch op.Code {
	case uc.OpGet:
		return s.Get(t, op.A0)
	case uc.OpContains:
		return s.Contains(t, op.A0)
	case uc.OpInsert:
		return s.Insert(t, op.A0, op.A1, s.flusherFor(tid))
	case uc.OpDelete:
		return s.Delete(t, op.A0, s.flusherFor(tid))
	default:
		panic("soft: unsupported operation")
	}
}

// flusherFor returns worker tid's flusher (CLWB ordering is per hardware
// thread).
func (s *Soft) flusherFor(tid int) *nvm.Flusher {
	for len(s.flushers) <= tid {
		s.flushers = append(s.flushers, nil)
	}
	if s.flushers[tid] == nil {
		s.flushers[tid] = s.sys.NewFlusher()
	}
	return s.flushers[tid]
}

// Prefill inserts through the normal path (SOFT updates are cheap enough
// that prefill needs no shortcut).
func (s *Soft) Prefill(t *sim.Thread, ops []uc.Op) {
	f := s.flusherFor(0)
	for _, op := range ops {
		if op.Code == uc.OpInsert {
			s.Insert(t, op.A0, op.A1, f)
		}
	}
}

// Recover rebuilds a table after a crash by scanning the committed
// generation's persistent node slab — SOFT's actual recovery strategy
// (links are never persisted). Returns the rebuilt table and the number of
// recovered keys. oldCfg may carry any generation of the crashed lineage;
// the persisted commit record selects the source slab, and the record flips
// to the rebuilt generation only after the scan completes — so Recover
// killed at any event re-runs from the same source.
func Recover(t *sim.Thread, recSys *nvm.System, oldCfg Config) (*Soft, uint64, error) {
	srcCfg := oldCfg
	srcCfg.Generation = uc.CommittedGeneration(recSys, commitMemName, oldCfg.Generation)
	old := recSys.Memory(srcCfg.memName("persistent"))
	// Skip generations a crashed earlier recovery attempt left behind (their
	// slabs hold only a subset of the keys).
	met := recSys.Metrics()
	ncfg := srcCfg
	ncfg.Generation++
	for recSys.HasMemory(ncfg.memName("persistent")) {
		ncfg.Generation++
		met.RecoveryRestarts++
	}
	s := newEngine(t, recSys, ncfg)
	f := s.flusherFor(0)
	var recovered uint64
	for off := uint64(pnBase); off+pnWords <= old.Words(); off += pnWords {
		if old.Load(t, off+pnValid) == 1 {
			key := old.Load(t, off+pnKey)
			val := old.Load(t, off+pnVal)
			if s.Insert(t, key, val, f) == 1 {
				recovered++
			}
		}
	}
	s.commit.Commit(t, ncfg.Generation)
	return s, recovered, nil
}

// DebugHeldLocks returns the bucket indexes whose lock word is nonzero
// (tests and tooling only).
func (s *Soft) DebugHeldLocks(t *sim.Thread) []uint64 {
	var held []uint64
	for b := uint64(0); b < s.cfg.Buckets; b++ {
		if s.vmem.Load(t, s.locksOff+b) != 0 {
			held = append(held, b)
		}
	}
	return held
}

// DebugChainLen walks bucket b's volatile chain up to max nodes and returns
// the count (max indicates a probable cycle). Tests and tooling only.
func (s *Soft) DebugChainLen(t *sim.Thread, b, max uint64) uint64 {
	var n uint64
	for v := s.vmem.Load(t, s.bucketsOff+b); v != 0 && n < max; v = s.vmem.Load(t, v+vnNext) {
		n++
	}
	return n
}

type backoff struct{ cur uint64 }

func (b *backoff) spin(t *sim.Thread) {
	if b.cur == 0 {
		b.cur = 16
	}
	t.Step(b.cur)
	if b.cur < 1024 {
		b.cur *= 2
	}
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
