package soft

import (
	"testing"

	"prepuc/internal/nvm"
	"prepuc/internal/sim"
	"prepuc/internal/uc"
)

type world struct {
	sys *nvm.System
	s   *Soft
}

func build(t *testing.T, cfg Config, nvmCfg nvm.Config, seed int64) *world {
	t.Helper()
	sch := sim.New(seed)
	sys := nvm.NewSystem(sch, nvmCfg)
	w := &world{sys: sys}
	sch.Spawn("boot", 0, 0, func(th *sim.Thread) {
		w.s = New(th, sys, cfg)
	})
	sch.Run()
	return w
}

func (w *world) run(workers int, crashAt uint64, seed int64, fn func(*sim.Thread, int)) *sim.Scheduler {
	sch := sim.New(seed)
	if crashAt != 0 {
		sch.CrashAtEvent(crashAt)
	}
	w.sys.SetScheduler(sch)
	for tid := 0; tid < workers; tid++ {
		tid := tid
		sch.Spawn("w", tid%2, 0, func(th *sim.Thread) {
			defer func() {
				if r := recover(); r != nil && !sim.Crashed(r) {
					panic(r)
				}
			}()
			fn(th, tid)
		})
	}
	sch.Run()
	return sch
}

func TestBasicOps(t *testing.T) {
	w := build(t, Config{Buckets: 64}, nvm.Config{}, 1)
	w.run(1, 0, 100, func(th *sim.Thread, tid int) {
		if got := w.s.Execute(th, tid, uc.Insert(1, 10)); got != 1 {
			t.Errorf("insert = %d", got)
		}
		if got := w.s.Execute(th, tid, uc.Get(1)); got != 10 {
			t.Errorf("get = %d", got)
		}
		if got := w.s.Execute(th, tid, uc.Insert(1, 20)); got != 0 {
			t.Errorf("update = %d", got)
		}
		if got := w.s.Execute(th, tid, uc.Get(1)); got != 20 {
			t.Errorf("get after update = %d", got)
		}
		if got := w.s.Execute(th, tid, uc.Delete(1)); got != 1 {
			t.Errorf("delete = %d", got)
		}
		if got := w.s.Execute(th, tid, uc.Get(1)); got != uc.NotFound {
			t.Errorf("get deleted = %d", got)
		}
		if got := w.s.Execute(th, tid, uc.Delete(1)); got != 0 {
			t.Errorf("delete absent = %d", got)
		}
	})
}

func TestReadsDoNotFlushOrFence(t *testing.T) {
	w := build(t, Config{Buckets: 64}, nvm.Config{Costs: sim.UnitCosts()}, 2)
	w.run(1, 0, 200, func(th *sim.Thread, tid int) {
		for k := uint64(0); k < 50; k++ {
			w.s.Execute(th, tid, uc.Insert(k, k))
		}
	})
	fencesBefore := w.sys.Fences()
	statsBefore := w.sys.Scheduler()
	_ = statsBefore
	w.run(1, 0, 201, func(th *sim.Thread, tid int) {
		for k := uint64(0); k < 200; k++ {
			w.s.Execute(th, tid, uc.Get(k % 50))
			w.s.Execute(th, tid, uc.Contains(k % 50))
		}
	})
	if got := w.sys.Fences(); got != fencesBefore {
		t.Errorf("reads executed %d fences; SOFT reads must not fence", got-fencesBefore)
	}
}

func TestOneFlushOneFencePerUpdate(t *testing.T) {
	w := build(t, Config{Buckets: 64}, nvm.Config{Costs: sim.UnitCosts()}, 3)
	before := w.sys.Fences()
	const updates = 40
	w.run(1, 0, 300, func(th *sim.Thread, tid int) {
		for k := uint64(0); k < updates; k++ {
			w.s.Execute(th, tid, uc.Insert(k, k))
		}
	})
	if got := w.sys.Fences() - before; got != updates {
		t.Errorf("%d fences for %d inserts; want exactly one each", got, updates)
	}
}

func TestConcurrentDistinctKeys(t *testing.T) {
	const workers, per = 8, 50
	w := build(t, Config{Buckets: 128}, nvm.Config{Costs: sim.UnitCosts()}, 4)
	w.run(workers, 0, 400, func(th *sim.Thread, tid int) {
		for i := uint64(0); i < per; i++ {
			k := uint64(tid)*1000 + i
			if got := w.s.Execute(th, tid, uc.Insert(k, k + 5)); got != 1 {
				t.Errorf("insert = %d", got)
			}
		}
	})
	w.run(1, 0, 401, func(th *sim.Thread, tid int) {
		if got := w.s.Size(th); got != workers*per {
			t.Errorf("size = %d, want %d", got, workers*per)
		}
		for tid2 := 0; tid2 < workers; tid2++ {
			for i := uint64(0); i < per; i++ {
				k := uint64(tid2)*1000 + i
				if got := w.s.Get(th, k); got != k+5 {
					t.Errorf("get(%d) = %d", k, got)
				}
			}
		}
	})
}

func TestPNodeReuse(t *testing.T) {
	w := build(t, Config{Buckets: 16, PersistentWords: 1 << 12}, nvm.Config{}, 5)
	w.run(1, 0, 500, func(th *sim.Thread, tid int) {
		// Insert/delete cycles far beyond slab capacity must succeed thanks
		// to node reuse. Slab: (4096−8)/8 ≈ 511 nodes; run 2000 cycles.
		for i := uint64(0); i < 2000; i++ {
			if got := w.s.Execute(th, tid, uc.Insert(i, i)); got != 1 {
				t.Fatalf("insert %d = %d", i, got)
			}
			if got := w.s.Execute(th, tid, uc.Delete(i)); got != 1 {
				t.Fatalf("delete %d = %d", i, got)
			}
		}
	})
}

func TestConcurrentMixedWorkloadOverlappingKeys(t *testing.T) {
	// Regression test: concurrent inserts/deletes on overlapping keys from
	// different buckets exercise the shared allocators concurrently; an
	// unserialized allocator corrupts its free lists and eventually hands
	// out blocks overlapping the lock array (the bug showed up as four
	// forever-held consecutive bucket locks).
	const workers, perWorker = 8, 400
	w := build(t, Config{Buckets: 1024}, nvm.Config{Costs: sim.UnitCosts()}, 11)
	w.run(workers, 0, 1100, func(th *sim.Thread, tid int) {
		rng := th.Rand()
		for i := 0; i < perWorker; i++ {
			k := uint64(rng.Intn(512)) // heavy key overlap across workers
			switch rng.Intn(3) {
			case 0:
				w.s.Execute(th, tid, uc.Insert(k, k))
			case 1:
				w.s.Execute(th, tid, uc.Delete(k))
			default:
				w.s.Execute(th, tid, uc.Get(k))
			}
		}
	})
	// The table must still be structurally sound: no lock left held, no
	// cycles, every remaining key in range.
	w.run(1, 0, 1101, func(th *sim.Thread, tid int) {
		if held := w.s.DebugHeldLocks(th); len(held) != 0 {
			t.Errorf("bucket locks still held after quiescence: %v", held)
		}
		for b := uint64(0); b < 1024; b++ {
			if c := w.s.DebugChainLen(th, b, 1<<16); c >= 1<<16 {
				t.Fatalf("bucket %d chain has a cycle", b)
			}
		}
		for k := uint64(0); k < 512; k++ {
			if got := w.s.Get(th, k); got != uc.NotFound && got != k {
				t.Errorf("key %d holds foreign value %d", k, got)
			}
		}
	})
}

func TestCrashRecoversCompletedUpdates(t *testing.T) {
	const workers = 4
	cfg := Config{Buckets: 128}
	w := build(t, cfg, nvm.Config{Costs: sim.UnitCosts(), BGFlushOneIn: 256, Seed: 9}, 6)
	completed := make([]uint64, workers)
	sch := w.run(workers, 40_000, 600, func(th *sim.Thread, tid int) {
		for i := uint64(0); ; i++ {
			k := uint64(tid)<<32 | i
			w.s.Execute(th, tid, uc.Insert(k, k))
			completed[tid] = i + 1
		}
	})
	if !sch.Frozen() {
		t.Fatal("did not crash")
	}
	recSch := sim.New(700)
	recSys := w.sys.Recover(recSch)
	var rec *Soft
	recSch.Spawn("rec", 0, 0, func(th *sim.Thread) {
		rec, _, _ = Recover(th, recSys, cfg)
	})
	recSch.Run()
	sch2 := sim.New(701)
	recSys.SetScheduler(sch2)
	sch2.Spawn("check", 0, 0, func(th *sim.Thread) {
		for tid := 0; tid < workers; tid++ {
			for i := uint64(0); i < completed[tid]; i++ {
				k := uint64(tid)<<32 | i
				if got := rec.Get(th, k); got != k {
					t.Errorf("completed insert (%d,%d) lost after crash", tid, i)
				}
			}
		}
	})
	sch2.Run()
}

func TestDeletedKeysStayDeletedAfterCrash(t *testing.T) {
	cfg := Config{Buckets: 64}
	w := build(t, cfg, nvm.Config{}, 7)
	w.run(1, 0, 800, func(th *sim.Thread, tid int) {
		for k := uint64(0); k < 40; k++ {
			w.s.Execute(th, tid, uc.Insert(k, k))
		}
		for k := uint64(0); k < 40; k += 2 {
			w.s.Execute(th, tid, uc.Delete(k))
		}
	})
	// Clean shutdown then "crash": everything fenced, so recovery must see
	// exactly the odd keys.
	recSch := sim.New(900)
	recSys := w.sys.Recover(recSch)
	var rec *Soft
	var n uint64
	recSch.Spawn("rec", 0, 0, func(th *sim.Thread) {
		rec, n, _ = Recover(th, recSys, cfg)
	})
	recSch.Run()
	if n != 20 {
		t.Errorf("recovered %d keys, want 20", n)
	}
	sch2 := sim.New(901)
	recSys.SetScheduler(sch2)
	sch2.Spawn("check", 0, 0, func(th *sim.Thread) {
		for k := uint64(0); k < 40; k++ {
			want := k
			if k%2 == 0 {
				want = uc.NotFound
			}
			if got := rec.Get(th, k); got != want {
				t.Errorf("get(%d) = %d, want %d", k, got, want)
			}
		}
	})
	sch2.Run()
}
