package svc_test

// Linearizability of histories recorded through the asynchronous API: every
// operation's invoke/response window brackets Submit..Wait, so the checker
// sees exactly what an async client saw — including batching, ring FIFO
// delays and (in the crash test) operations cut down in flight.

import (
	"math/rand"
	"testing"

	"prepuc/internal/core"
	"prepuc/internal/linearize"
	"prepuc/internal/nvm"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/svc"
	"prepuc/internal/uc"
)

const linKeys = 16

// linOp draws one mixed set operation on a small key range (small enough
// that the per-key linearization search stays cheap).
func linOp(rng *rand.Rand, pid, i int) uc.Op {
	k := uint64(rng.Intn(linKeys))
	switch rng.Intn(4) {
	case 0:
		return uc.Insert(k, uint64(pid)<<16|uint64(i))
	case 1:
		return uc.Delete(k)
	default:
		return uc.Get(k)
	}
}

// probeSet reads the engine's full set state on a fresh scheduler.
func probeSet(sys *nvm.System, engine uc.UC, seed int64) map[uint64]uint64 {
	recovered := map[uint64]uint64{}
	sch := sim.New(seed)
	sys.SetScheduler(sch)
	sch.Spawn("probe", 0, 0, func(t *sim.Thread) {
		for k := uint64(0); k < linKeys; k++ {
			if v := engine.Execute(t, 0, uc.Get(k)); v != uc.NotFound {
				recovered[k] = v
			}
		}
	})
	sch.Run()
	return recovered
}

// TestAsyncHistoryLinearizes records a mixed workload submitted through the
// batched async API and requires a legal linearization ending in the probed
// final state.
func TestAsyncHistoryLinearizes(t *testing.T) {
	const producers, per = 6, 40
	w := newWorld(t, core.Durable, 64, 2, true, 21)
	rec := linearize.NewRecorder(producers)
	w.run(2100, producers, func(th *sim.Thread, pid int) {
		c := w.s.Client(pid % 2)
		rng := rand.New(rand.NewSource(int64(pid)*7 + 1))
		for i := 0; i < per; i++ {
			op := linOp(rng, pid, i)
			rec.Exec(th, pid, op, func() uint64 {
				return c.Submit(th, op).Wait(th)
			})
		}
	})
	recovered := probeSet(w.sys, w.p, 2200)
	res := linearize.CheckEpoch(linearize.SetModel(), nil, rec.Ops(), recovered, linearize.Options{})
	if !res.OK {
		t.Fatalf("async history not linearizable: %s", res)
	}
	if res.Ops != producers*per {
		t.Fatalf("checked %d ops, want %d", res.Ops, producers*per)
	}
}

// TestAsyncHistoryLinearizesAcrossCrash crashes the machine under async
// load, recovers PREP-Durable, and requires the recorded history (with its
// in-flight suffix) plus the recovered state to admit a strict durable
// linearization: no acknowledged operation may be lost.
func TestAsyncHistoryLinearizesAcrossCrash(t *testing.T) {
	const shards, producers = 2, 4
	obj := seq.HashMapType(64)
	cfg := core.Config{
		Mode: core.Durable, Topology: topo(), Workers: shards,
		LogSize: 1024, Epsilon: 64,
		Factory: obj.New, Attacher: obj.Attach, HeapWords: 1 << 20,
	}
	bootSch := sim.New(31)
	sys := nvm.NewSystem(bootSch, nvm.Config{
		Costs: sim.UnitCosts(), BGFlushOneIn: 128, Seed: 38,
	})
	var p *core.PREP
	var s *svc.Service
	var err error
	bootSch.Spawn("boot", 0, 0, func(th *sim.Thread) {
		if p, err = core.New(th, sys, cfg); err != nil {
			return
		}
		s, err = svc.New(th, sys, svc.Config{
			Engine: p, Topology: topo(), Shards: shards,
			RingSize: 256, MaxBatch: 32, Batched: true,
		})
	})
	bootSch.Run()
	if err != nil {
		t.Fatalf("boot: %v", err)
	}

	// Load phase, cut down mid-flight: producers and consumers run until
	// the machine freezes (the scheduler's Spawn wrapper absorbs the Crash
	// unwinds; the recorder leaves cut operations in flight).
	sch := sim.New(3100)
	sch.CrashAtEvent(40_000)
	sys.SetScheduler(sch)
	p.SpawnPersistence(0)
	for shard := 0; shard < shards; shard++ {
		shard := shard
		sch.Spawn("consumer", topo().NodeOf(shard), 0, func(th *sim.Thread) {
			s.Serve(th, shard)
		})
	}
	rec := linearize.NewRecorder(producers)
	for pid := 0; pid < producers; pid++ {
		pid := pid
		sch.Spawn("producer", topo().NodeOf(pid%8), 0, func(th *sim.Thread) {
			c := s.Client(pid % shards)
			rng := rand.New(rand.NewSource(int64(pid)*11 + 3))
			for i := 0; ; i++ {
				op := linOp(rng, pid, i)
				rec.Exec(th, pid, op, func() uint64 {
					return c.Submit(th, op).Wait(th)
				})
			}
		})
	}
	sch.Run()
	if !sch.Frozen() {
		t.Fatal("machine never crashed")
	}
	if rec.Completed() == 0 {
		t.Fatal("no operations completed before the crash")
	}

	recSch := sim.New(3200)
	recSys := sys.Recover(recSch)
	var rp *core.PREP
	recSch.Spawn("recover", 0, 0, func(th *sim.Thread) {
		rp, _, err = core.Recover(th, recSys, cfg)
	})
	recSch.Run()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}

	recovered := probeSet(recSys, rp, 3300)
	res := linearize.CheckEpoch(linearize.SetModel(), nil, rec.Ops(), recovered, linearize.Options{})
	if !res.OK {
		t.Fatalf("crash epoch not durably linearizable: %s", res)
	}
	t.Logf("crash epoch: %s (completed=%d, in-flight=%d)", res, rec.Completed(), rec.InFlight())
}
