package svc_test

import (
	"strings"
	"testing"

	"prepuc/internal/core"
	"prepuc/internal/nvm"
	"prepuc/internal/seq"
	"prepuc/internal/sim"
	"prepuc/internal/svc"
	"prepuc/internal/uc"
)

// TestPerRingEngines binds each submission ring to its own engine
// (Config.Engines): two independent volatile PREP instances co-reside on one
// system via core.Config.Instance, ring s drains into engine s, and a routed
// client dispatches each operation by key parity. Afterwards each engine
// must hold exactly the keys routed to it — the routing invariant at the
// single-machine scale.
func TestPerRingEngines(t *testing.T) {
	const producers, per = 4, 60
	route := func(op uc.Op) int { return int(op.A0 % 2) }

	sch := sim.New(31)
	sys := nvm.NewSystem(sch, nvm.Config{Costs: sim.UnitCosts()})
	obj := seq.HashMapType(64)
	engines := make([]*core.PREP, 2)
	var s *svc.Service
	var err error
	sch.Spawn("boot", 0, 0, func(th *sim.Thread) {
		for i := range engines {
			engines[i], err = core.New(th, sys, core.Config{
				Mode: core.Volatile, Topology: topo(), Workers: 2,
				LogSize: 1024,
				Factory: obj.New, Attacher: obj.Attach, HeapWords: 1 << 20,
				Instance: []string{"e0", "e1"}[i],
			})
			if err != nil {
				return
			}
		}
		s, err = svc.New(th, sys, svc.Config{
			Engines: []uc.UC{engines[0], engines[1]}, Topology: topo(),
			Shards: 2, RingSize: 256, MaxBatch: 32, Batched: true,
		})
	})
	sch.Run()
	if err != nil {
		t.Fatalf("boot: %v", err)
	}

	run := sim.New(32)
	sys.SetScheduler(run)
	for shard := 0; shard < 2; shard++ {
		shard := shard
		run.Spawn("consumer", topo().NodeOf(shard), 0, func(th *sim.Thread) {
			s.Serve(th, shard)
		})
	}
	producersLive := producers
	for pid := 0; pid < producers; pid++ {
		pid := pid
		run.Spawn("producer", topo().NodeOf(pid%8), 0, func(th *sim.Thread) {
			rc := s.Routed(route)
			for i := uint64(0); i < per; i++ {
				k := uint64(pid)*1000 + i
				f := rc.Submit(th, uc.Insert(k, k+3))
				if got := f.Wait(th); got != 1 {
					t.Errorf("insert(%d) = %d, want 1", k, got)
				}
			}
			producersLive--
			if producersLive == 0 {
				s.Stop()
			}
		})
	}
	run.Run()

	// Per-ring tallies must cover exactly the routed traffic.
	routed := [2]uint64{}
	for pid := 0; pid < producers; pid++ {
		for i := uint64(0); i < per; i++ {
			routed[(uint64(pid)*1000+i)%2]++
		}
	}
	for shard := 0; shard < 2; shard++ {
		c := s.Client(shard)
		if c.Submitted() != routed[shard] || c.Completed() != routed[shard] {
			t.Errorf("ring %d: submitted/completed = %d/%d, want %d",
				shard, c.Submitted(), c.Completed(), routed[shard])
		}
	}

	// Each engine holds its partition and nothing else.
	check := sim.New(33)
	sys.SetScheduler(check)
	check.Spawn("inspect", 0, 0, func(th *sim.Thread) {
		for e := 0; e < 2; e++ {
			if got := engines[e].Execute(th, 0, uc.Size()); got != routed[e] {
				t.Errorf("engine %d size = %d, want %d", e, got, routed[e])
			}
		}
		for pid := 0; pid < producers; pid++ {
			for i := uint64(0); i < per; i++ {
				k := uint64(pid)*1000 + i
				own, other := engines[k%2], engines[1-k%2]
				if got := own.Execute(th, 0, uc.Get(k)); got != k+3 {
					t.Errorf("owning engine missing key %d: got %d", k, got)
				}
				if got := other.Execute(th, 0, uc.Get(k)); got != uc.NotFound {
					t.Errorf("foreign engine holds key %d", k)
				}
			}
		}
	})
	check.Run()
}

// TestEngineConfigValidation: exactly one of Engine/Engines, with matching
// lengths.
func TestEngineConfigValidation(t *testing.T) {
	sch := sim.New(41)
	sys := nvm.NewSystem(sch, nvm.Config{})
	obj := seq.HashMapType(64)
	var eng *core.PREP
	var err error
	sch.Spawn("boot", 0, 0, func(th *sim.Thread) {
		eng, err = core.New(th, sys, core.Config{
			Mode: core.Volatile, Topology: topo(), Workers: 2,
			LogSize: 64, Factory: obj.New, Attacher: obj.Attach, HeapWords: 1 << 16,
		})
		if err != nil {
			return
		}
		base := svc.Config{Topology: topo(), Shards: 2, RingSize: 16}
		cases := []struct {
			name string
			mut  func(*svc.Config)
		}{
			{"neither", func(c *svc.Config) {}},
			{"both", func(c *svc.Config) { c.Engine = eng; c.Engines = []uc.UC{eng, eng} }},
			{"short", func(c *svc.Config) { c.Engines = []uc.UC{eng} }},
		}
		for _, tc := range cases {
			cfg := base
			tc.mut(&cfg)
			if _, e := svc.New(th, sys, cfg); e == nil {
				t.Errorf("%s: config accepted", tc.name)
			}
		}
		cfg := base
		cfg.Engines = []uc.UC{eng, eng} // a ring group over one engine is legal
		if _, e := svc.New(th, sys, cfg); e != nil {
			t.Errorf("ring group rejected: %v", e)
		}
	})
	sch.Run()
	if err != nil {
		t.Fatalf("boot: %v", err)
	}
}

// TestInvocationIDBounds documents exactly why the packing needs guards: a
// shard or sequence component one past its field ceiling aliases a DIFFERENT
// valid (epoch, shard, seq) triple — two operations, one id — and asserts
// that svc.New rejects configurations that could reach those ceilings.
func TestInvocationIDBounds(t *testing.T) {
	// All-extremes corners stay distinct inside the valid ranges.
	ids := map[uint64]string{}
	for _, e := range []uint64{0, svc.MaxInvidEpoch} {
		for _, s := range []int{0, svc.MaxInvidShard} {
			for _, q := range []uint64{0, svc.MaxInvidSeq} {
				id := svc.InvocationID(e, s, q)
				if id == 0 {
					t.Errorf("InvocationID(%d,%d,%d) = 0 (reserved for non-detectable)", e, s, q)
				}
				if prev, dup := ids[id]; dup {
					t.Errorf("InvocationID(%d,%d,%d) collides with %s", e, s, q, prev)
				}
				ids[id] = "earlier corner"
			}
		}
	}

	// One past the seq field: wraps into a collision with seq 0.
	if svc.InvocationID(0, 0, svc.MaxInvidSeq+2) != svc.InvocationID(0, 0, 0) {
		t.Error("expected seq overflow to alias seq 0 (packing changed? update guards)")
	}
	// Two past the shard field: wraps into a collision with shard 0.
	if svc.InvocationID(0, svc.MaxInvidShard+2, 9) != svc.InvocationID(0, 0, 9) {
		t.Error("expected shard overflow to alias shard 0 (packing changed? update guards)")
	}

	// New refuses detectable configs whose ids could corrupt.
	sch := sim.New(51)
	sys := nvm.NewSystem(sch, nvm.Config{})
	obj := seq.HashMapType(64)
	sch.Spawn("boot", 0, 0, func(th *sim.Thread) {
		eng, err := core.New(th, sys, core.Config{
			Mode: core.Volatile, Topology: topo(), Workers: 2,
			LogSize: 64, Factory: obj.New, Attacher: obj.Attach, HeapWords: 1 << 16,
		})
		if err != nil {
			t.Errorf("core.New: %v", err)
			return
		}
		_, err = svc.New(th, sys, svc.Config{
			Engine: eng, Topology: topo(), Shards: svc.MaxInvidShard + 2,
			RingSize: 16, Detect: true,
		})
		if err == nil || !strings.Contains(err.Error(), "invocation-id") {
			t.Errorf("oversized shard count: err = %v, want invocation-id bound error", err)
		}
		_, err = svc.New(th, sys, svc.Config{
			Engine: eng, Topology: topo(), Shards: 2,
			RingSize: 16, Detect: true, InvidEpoch: svc.MaxInvidEpoch + 1,
		})
		if err == nil || !strings.Contains(err.Error(), "invocation-id") {
			t.Errorf("oversized epoch: err = %v, want invocation-id bound error", err)
		}
		// The same configurations without Detect are legal: no ids are
		// stamped, so the packing cannot corrupt. (Shard count kept small —
		// ring memories are real.)
		_, err = svc.New(th, sys, svc.Config{
			Engine: eng, Topology: topo(), Shards: 2,
			RingSize: 16, InvidEpoch: svc.MaxInvidEpoch + 1,
		})
		if err != nil {
			t.Errorf("non-detect config rejected: %v", err)
		}
	})
	sch.Run()
}
